/**
 * @file
 * Structured tamper detection and recovery policy types.
 *
 * When an authentication check fails, the controller no longer just
 * counts it: it files a TamperReport naming the check that fired (leaf
 * tag, counter authentication, or an interior Merkle-tree node), the
 * victim block, its region, and the detection latency in ticks. What
 * happens next is governed by a TamperPolicy:
 *
 *   Halt              — the controller refuses all further accesses
 *                       (models a machine-check / enclave teardown)
 *   ReportAndContinue — record the report and keep servicing traffic
 *                       (the previous, implicit behaviour)
 *   RetryRefetch      — run the bounded recovery state machine: retry
 *                       the fetch with exponential cycle backoff,
 *                       escalating line-refetch → counter-refetch →
 *                       subtree re-verify; recovers from transient
 *                       (non-persistent) faults
 *   Quarantine        — RetryRefetch, and when the retry budget is
 *                       exhausted the data block is quarantined:
 *                       subsequent accesses return a structured error
 *                       (AccessStatus::Quarantined) instead of data
 *                       until an operator releases the block
 *
 * Each recovery attempt is summarized in the RecoveryReport embedded
 * in the TamperReport: retries consumed, escalation count, deepest
 * stage reached, total backoff ticks, and the outcome.
 *
 * The fault-injection subsystem in src/attack/ drives these paths
 * adversarially; see DESIGN.md "Threat model, fault injection, and
 * failure handling" (and its "Recovery and degradation" subsection).
 */

#ifndef SECMEM_CORE_TAMPER_HH
#define SECMEM_CORE_TAMPER_HH

#include <cstdint>

#include "sim/types.hh"

namespace secmem
{

/** What the controller does when a verification check fails. */
enum class TamperPolicy
{
    Halt,              ///< stop servicing accesses after a detection
    ReportAndContinue, ///< record the report, keep running
    RetryRefetch,      ///< re-fetch from DRAM and re-verify (bounded)
    Quarantine,        ///< RetryRefetch + poison the block on exhaustion
};

/**
 * Escalation ladder of the RetryRefetch/Quarantine recovery state
 * machine. The first retry starts at the stage implied by the failing
 * check; each further failed retry escalates one stage, widening the
 * set of metadata dropped and re-fetched before re-verification.
 */
enum class RecoveryStage
{
    None,           ///< no recovery attempted
    LineRefetch,    ///< re-fetch the data block only
    CounterRefetch, ///< + drop and re-fetch counter / derivative lines
    SubtreeReverify,///< + flush MAC cache: re-walk the whole subtree
};

/** Knobs of the recovery state machine (RetryRefetch / Quarantine). */
struct RecoveryConfig
{
    unsigned maxRetries = 2; ///< retry budget per access
    Tick backoffBase = 32;   ///< cycle delay before the first retry
    Tick backoffCap = 1024;  ///< upper bound on the (doubling) backoff
};

/** What the recovery state machine did for one access. */
struct RecoveryReport
{
    unsigned retries = 0;     ///< retry attempts consumed
    unsigned escalations = 0; ///< stage transitions after the first
    RecoveryStage maxStage = RecoveryStage::None; ///< deepest stage run
    Tick backoffTicks = 0;    ///< total cycle backoff inserted
    bool recovered = false;   ///< a retry re-verified cleanly
    bool quarantined = false; ///< budget exhausted under Quarantine
};

/** Which verification layer caught the tamper. */
enum class TamperCheck
{
    LeafTag,     ///< GCM/SHA-1 tag of the fetched data block
    CounterAuth, ///< counter-block authentication on fetch (paper §4.3)
    TreeNode,    ///< an interior Merkle-tree node failed its check
};

/** Region of the protected address space a block lives in. */
enum class MemRegion
{
    Data,     ///< application data (ciphertext)
    Counter,  ///< direct counter blocks
    Mac,      ///< Merkle-tree MAC blocks
    DerivCtr, ///< derivative freshness counters
    Unknown,
};

const char *toString(TamperPolicy p);
const char *toString(TamperCheck c);
const char *toString(MemRegion r);
const char *toString(RecoveryStage s);

/** One detected integrity violation, as reported by the controller. */
struct TamperReport
{
    bool valid = false;          ///< a detection actually happened
    TamperCheck check = TamperCheck::LeafTag;
    unsigned level = 0;          ///< tree level for TreeNode (1 = level 1)
    Addr victim = kAddrInvalid;  ///< block whose verification failed
    MemRegion region = MemRegion::Unknown;
    Addr accessAddr = kAddrInvalid; ///< address of the triggering access
    bool onWritePath = false;    ///< detected while servicing a write-back
    Tick issued = 0;             ///< tick the triggering access was issued
    Tick detected = 0;           ///< tick the failing check completed
    unsigned retries = 0;        ///< refetch retries consumed (RetryRefetch)
    bool recovered = false;      ///< a retry re-verified cleanly
    RecoveryReport recovery{};   ///< full recovery state-machine outcome

    /** Detection latency in ticks from access issue to failed check. */
    Tick
    latency() const
    {
        return detected >= issued ? detected - issued : 0;
    }
};

} // namespace secmem

#endif // SECMEM_CORE_TAMPER_HH
