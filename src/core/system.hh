/**
 * @file
 * SecureSystem: the full simulated machine below the core — L1D, the
 * unified L2 and the secure memory controller — exposed to the OoO
 * core through the MemorySystem interface.
 *
 * Caches carry real (plaintext) payloads; everything below the L2 is
 * ciphertext + counters + MACs in DRAM. The system enforces L1/L2
 * inclusion and feeds L2 hooks to the controller so split-counter page
 * re-encryption can probe and lazily dirty cached blocks.
 */

#ifndef SECMEM_CORE_SYSTEM_HH
#define SECMEM_CORE_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <unordered_map>

#include "core/controller.hh"
#include "cpu/memory_system.hh"
#include "cpu/ooo_core.hh"
#include "cpu/trace.hh"
#include "mem/cache.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace secmem
{

namespace obs
{
class Sampler;
} // namespace obs

/** Cache hierarchy parameters (paper Section 5). */
struct SystemParams
{
    std::size_t l1Bytes = 16 << 10;
    unsigned l1Assoc = 4;
    Tick l1Latency = 2;
    std::size_t l2Bytes = 1 << 20;
    unsigned l2Assoc = 8;
    Tick l2Latency = 10;
};

/** One processor + memory-hierarchy instance. */
class SecureSystem : public MemorySystem, private L2Probe
{
  public:
    explicit SecureSystem(const SecureMemConfig &cfg,
                          const SystemParams &params = {});

    MemAccess access(Addr addr, bool is_write, Tick now) override;

    /**
     * Dispatch-burst entry point for the batched core loop: performs
     * the burst exactly as n sequential access() calls would, but with
     * one virtual dispatch per burst and the leading L1-hit run probed
     * in a single Cache::accessRun pass.
     */
    void accessRun(MemBurstOp *ops, unsigned n) override;

    /** Pump the event kernel to the core's dispatch frontier. */
    void advanceTo(Tick cycle) override { events_.runUntil(cycle); }

    /** Run a workload on a fresh core attached to this system. */
    CoreRunResult run(WorkloadGenerator &gen, std::uint64_t warmup,
                      std::uint64_t measured,
                      const CoreParams &core_params = {},
                      Tick start_tick = 0);

    SecureMemoryController &controller() { return ctrl_; }
    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    const SystemParams &params() const { return params_; }

    /** L2 demand miss rate over the run so far. */
    double l2MissRate() const;

    /**
     * Register every stats group in the machine — caches, CPU, system
     * request counters, and the whole controller hierarchy — plus the
     * derived rates (l1d/l2 hit rates, l2.miss_rate, cpu.ipc).
     */
    void registerStats(obs::StatRegistry &reg);

    /** Attach (or detach) an event-trace sink; forwarded below L2. */
    void setTraceSink(obs::TraceSink *sink) { ctrl_.setTraceSink(sink); }

    /**
     * Attach a time-series sampler, polled with the simulated time of
     * every memory access (see obs::Sampler). Observation only: one
     * pointer test per access when detached, and the sampled registry
     * paths never feed back into timing.
     */
    void setSampler(obs::Sampler *sampler) { sampler_ = sampler; }

    /** Dump every statistics group (caches, engines, bus, controller). */
    void dumpStats(std::ostream &os) const;

    /**
     * The system's event kernel. Drives completion housekeeping for
     * in-flight L2 fills; pumped to the access frontier on every L2
     * miss. Exposed so tests can drain or inspect it.
     */
    EventQueue &events() { return events_; }

  private:
    // L2Probe: the controller's view of the cache hierarchy during RSR
    // page re-encryption (see core/controller.hh).
    bool
    cacheContains(Addr a) const override
    {
        return l2_.contains(a) || l1_.contains(a);
    }
    void
    cacheMarkDirty(Addr a) override
    {
        l2_.markDirty(a);
        l1_.markDirty(a);
    }
    void fillL1(Addr base, const Block64 &data, bool dirty, Tick now);
    void insertL2(Addr base, const Block64 &data, bool dirty, Tick now);
    /** Stamp store-dependent bytes so ciphertexts stay diverse. */
    static void stampStore(Block64 &line, Addr addr, Tick now);

    // access() split along the L1 probe so accessRun can batch the
    // probe pass and continue a probed miss without re-probing:
    // accessOne = prelude + L1 probe + (l1HitTail | l2Onward).
    MemAccess accessOne(Addr addr, bool is_write, Tick now);
    MemAccess l1HitTail(Block64 *line, Addr base, bool is_write, Tick now);
    MemAccess l2Onward(Addr base, bool is_write, Tick now);

    SystemParams params_;
    SecureMemoryController ctrl_;
    Cache l1_;
    Cache l2_;

    struct Pending
    {
        Addr addr;
        Tick dataReady;
        Tick authDone;
        /** Guards the completion event against entry reuse: eviction +
         * re-miss on the same base makes a stale event's erase wrong. */
        std::uint64_t gen;
    };
    /**
     * In-flight L2 fills, for hit-under-miss merging. A plain vector:
     * the event kernel reclaims completed fills, so only the handful
     * of genuinely outstanding misses are ever live and a linear scan
     * is cheaper than any hash probe.
     */
    std::vector<Pending> l2Inflight_;
    std::uint64_t l2InflightGen_ = 0;

    Pending *
    findInflight(Addr base)
    {
        for (Pending &p : l2Inflight_)
            if (p.addr == base)
                return &p;
        return nullptr;
    }

    /** Swap-pop removal; entry order carries no meaning. */
    void
    eraseInflight(Pending *p)
    {
        *p = l2Inflight_.back();
        l2Inflight_.pop_back();
    }

    EventQueue events_;

    stats::Group stats_;
    // Cached: one of these is bumped on every memory access.
    stats::Counter &loadsStat_ = stats_.counter("loads");
    stats::Counter &storesStat_ = stats_.counter("stores");
    /** Core counters, accumulated across run() calls (see OooCore). */
    stats::Group cpuStats_{"cpu"};
    obs::Sampler *sampler_ = nullptr;
};

} // namespace secmem

#endif // SECMEM_CORE_SYSTEM_HH
