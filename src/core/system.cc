#include "core/system.hh"

#include <algorithm>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "sim/log.hh"

namespace secmem
{

SecureSystem::SecureSystem(const SecureMemConfig &cfg,
                           const SystemParams &params)
    : params_(params),
      ctrl_(cfg),
      l1_("l1d", params.l1Bytes, params.l1Assoc),
      l2_("l2", params.l2Bytes, params.l2Assoc),
      stats_("system")
{
    ctrl_.setL2Probe(this);
}

void
SecureSystem::stampStore(Block64 &line, Addr addr, Tick now)
{
    // Mix the address and time into the stored value: keeps block
    // contents diverse so the crypto path is exercised on non-trivial
    // data during timing runs.
    std::uint64_t v = addr * 0x9e3779b97f4a7c15ull ^ now;
    for (int i = 0; i < 8; ++i)
        line.b[i] ^= static_cast<std::uint8_t>(v >> (8 * i));
}

void
SecureSystem::insertL2(Addr base, const Block64 &data, bool dirty, Tick now)
{
    Eviction ev = l2_.insert(base, data, dirty);
    if (!ev.valid)
        return;
    // Enforce inclusion: the L1 copy (possibly newer) leaves with it.
    Block64 victim = ev.data;
    bool victim_dirty = ev.dirty;
    Eviction l1ev = l1_.invalidate(ev.addr);
    if (l1ev.valid && l1ev.dirty) {
        victim = l1ev.data;
        victim_dirty = true;
    }
    if (victim_dirty)
        ctrl_.writeBlock(ev.addr, victim, now);
    if (Pending *p = findInflight(ev.addr))
        eraseInflight(p);
}

void
SecureSystem::fillL1(Addr base, const Block64 &data, bool dirty, Tick now)
{
    Eviction ev = l1_.insert(base, data, dirty);
    if (!ev.valid || !ev.dirty)
        return;
    // Dirty L1 victim merges into the (inclusive) L2.
    if (Block64 *line = l2_.peek(ev.addr)) {
        *line = ev.data;
        l2_.markDirty(ev.addr);
    } else {
        // Inclusion was broken by a concurrent L2 eviction; write back.
        ctrl_.writeBlock(ev.addr, ev.data, now);
    }
}

MemAccess
SecureSystem::access(Addr addr, bool is_write, Tick now)
{
    return accessOne(addr, is_write, now);
}

void
SecureSystem::accessRun(MemBurstOp *ops, unsigned n)
{
    // One pass per leading L1-hit run: probe the burst through the L1
    // in a single Cache::accessRun call, finish the hits, continue the
    // first miss below the L1 without re-probing it, then re-batch the
    // remainder (whose hit/miss outcome may depend on that miss's
    // fill). Counter increments commute, every probe/fill/stamp runs
    // in the op order the sequential path would use, so results and
    // stats are bit-identical to n access() calls.
    constexpr unsigned kWindow = 8;
    unsigned i = 0;
    while (i < n) {
        unsigned m = std::min(n - i, kWindow);
        // The sampler is polled once per access in issue order. Cap
        // the window just before the first op whose poll would record
        // a row and run that op on the strictly sequential path, so
        // the sample observes exactly the counters a fully sequential
        // run would show; the capped-off ops' polls would all have
        // been no-ops, so skipping them changes nothing.
        if (sampler_) {
            unsigned k = 0;
            while (k < m && !sampler_->wouldSample(ops[i + k].now))
                ++k;
            if (k == 0) {
                ops[i].out =
                    accessOne(ops[i].addr, ops[i].isWrite, ops[i].now);
                ++i;
                continue;
            }
            m = k;
        }
        Addr bases[kWindow];
        std::uint8_t writes[kWindow];
        Block64 *lines[kWindow];
        for (unsigned j = 0; j < m; ++j) {
            bases[j] = blockBase(ops[i + j].addr);
            writes[j] = ops[i + j].isWrite;
            SECMEM_ASSERT(bases[j] < ctrl_.config().memoryBytes,
                          "access outside protected data region: %llx",
                          static_cast<unsigned long long>(ops[i + j].addr));
        }
        unsigned h = l1_.accessRun(bases, writes, lines, m);
        unsigned consumed = std::min(h + 1, m);
        for (unsigned j = 0; j < consumed; ++j)
            (writes[j] ? storesStat_ : loadsStat_).inc();
        for (unsigned j = 0; j < h; ++j)
            ops[i + j].out =
                l1HitTail(lines[j], bases[j], writes[j] != 0, ops[i + j].now);
        if (h < m)
            ops[i + h].out = l2Onward(bases[h], writes[h] != 0, ops[i + h].now);
        i += consumed;
    }
}

MemAccess
SecureSystem::accessOne(Addr addr, bool is_write, Tick now)
{
    Addr base = blockBase(addr);
    SECMEM_ASSERT(base < ctrl_.config().memoryBytes,
                  "access outside protected data region: %llx",
                  static_cast<unsigned long long>(addr));
    (is_write ? storesStat_ : loadsStat_).inc();
    if (sampler_)
        sampler_->maybeSample(now);

    // L1 lookup. A hit on a line whose fill is still in flight must
    // wait for the fill (the line was inserted functionally at request
    // time).
    if (Block64 *line = l1_.access(base, is_write))
        return l1HitTail(line, base, is_write, now);
    return l2Onward(base, is_write, now);
}

MemAccess
SecureSystem::l1HitTail(Block64 *line, Addr base, bool is_write, Tick now)
{
    if (is_write)
        stampStore(*line, base, now);
    Tick done = now + params_.l1Latency;
    Tick auth_done = done;
    // The event kernel reclaims completed fills, so the in-flight
    // list is empty whenever no miss is outstanding — this, the
    // hottest path in the simulator, usually scans nothing.
    if (Pending *p = findInflight(base)) {
        if (p->authDone <= now && p->dataReady <= now) {
            eraseInflight(p);
        } else {
            done = std::max(done, p->dataReady);
            auth_done = std::max(done, p->authDone);
        }
    }
    return {done, auth_done, false};
}

MemAccess
SecureSystem::l2Onward(Addr base, bool is_write, Tick now)
{
    Tick l2_at = now + params_.l1Latency;

    // L2 lookup.
    if (Block64 *line = l2_.access(base, is_write)) {
        Tick ready = l2_at + params_.l2Latency;
        Tick auth_ready = ready;
        if (Pending *p = findInflight(base)) {
            if (p->authDone <= now && p->dataReady <= now) {
                eraseInflight(p);
            } else {
                // Hit under an in-flight fill: merge with it.
                ready = std::max(ready, p->dataReady);
                auth_ready = std::max(auth_ready, p->authDone);
            }
        }
        if (is_write)
            stampStore(*line, base, now);
        fillL1(base, *line, is_write, now);
        return {ready, std::max(ready, auth_ready), false};
    }

    // L2 miss: the secure memory controller takes over.
    Tick issue = l2_at + params_.l2Latency;
    Block64 data;
    AccessTiming timing = ctrl_.readBlock(base, issue, &data);
    if (is_write)
        stampStore(data, base, now);
    insertL2(base, data, is_write, now);
    fillL1(base, data, is_write, now);
    std::uint64_t gen = ++l2InflightGen_;
    if (Pending *p = findInflight(base))
        *p = {base, timing.dataReady, timing.authDone, gen};
    else
        l2Inflight_.push_back({base, timing.dataReady, timing.authDone, gen});
    // Completion housekeeping rides the event kernel: when the fill is
    // done the entry is reclaimed, instead of lingering until the next
    // same-block access or an L2 eviction notices. The pump only runs
    // to the core's dispatch frontier (advanceTo), below which every
    // future access's lazy check would drop the entry anyway, so the
    // event changes nothing observable. Issue ticks themselves are not
    // monotonic, hence the clamp to the kernel's own now.
    Tick done = std::max(timing.dataReady, timing.authDone);
    events_.schedule(std::max(done, events_.now()), [this, base, gen] {
        Pending *p = findInflight(base);
        if (p && p->gen == gen)
            eraseInflight(p);
    });
    return {timing.dataReady, timing.authDone, true};
}

CoreRunResult
SecureSystem::run(WorkloadGenerator &gen, std::uint64_t warmup,
                  std::uint64_t measured, const CoreParams &core_params,
                  Tick start_tick)
{
    OooCore core(core_params, *this, ctrl_.config().authMode, &cpuStats_);
    return core.run(gen, warmup, measured, start_tick);
}

void
SecureSystem::registerStats(obs::StatRegistry &reg)
{
    reg.add("system", stats_);
    reg.add("events", events_.stats());
    reg.add("cpu", cpuStats_);
    reg.add("l1d", l1_.stats());
    reg.add("l2", l2_.stats());
    ctrl_.registerStats(reg);

    reg.addRatio("l1d.hit_rate", "l1d.hits", "l1d.accesses");
    reg.addRatio("l2.hit_rate", "l2.hits", "l2.accesses");
    reg.addRatio("l2.miss_rate", "l2.misses", "l2.accesses");
    reg.addRatio("cpu.ipc", "cpu.instructions", "cpu.cycles");

    // Process-wide SECMEM_WARN rate-limiter state, surfaced so
    // --stats-out dumps show when (and how hard) warning suppression
    // kicked in. Zero on clean runs, so the jobs-1-vs-4 stats diffs in
    // CI stay identical.
    reg.addFormula("log.warn_emitted", "SECMEM_WARN lines printed",
                   [] { return static_cast<double>(
                            log_detail::warnEmitted()); });
    reg.addFormula("log.warn_suppressed",
                   "SECMEM_WARN repeats silenced by the per-site cap",
                   [] { return static_cast<double>(
                            log_detail::warnSuppressed()); });
    reg.addFormula("log.warn_sites", "distinct (file, line) warn sites",
                   [] { return static_cast<double>(
                            log_detail::warnSites()); });
    reg.addFormula("log.warn_suppressed_sites",
                   "warn sites that hit the suppression cap",
                   [] { return static_cast<double>(
                            log_detail::warnSuppressedSites()); });
}

void
SecureSystem::dumpStats(std::ostream &os) const
{
    auto &self = const_cast<SecureSystem &>(*this);
    self.l1_.stats().dump(os);
    self.l2_.stats().dump(os);
    SecureMemoryController &c = self.ctrl_;
    c.ctrCache().stats().dump(os);
    c.macCache().stats().dump(os);
    c.aesEngine().stats().dump(os);
    c.shaEngine().stats().dump(os);
    c.bus().stats().dump(os);
    c.stats().dump(os);
}

double
SecureSystem::l2MissRate() const
{
    std::uint64_t acc = l2_.stats().counterValue("accesses");
    if (!acc)
        return 0.0;
    return static_cast<double>(l2_.stats().counterValue("misses")) /
           static_cast<double>(acc);
}

} // namespace secmem
