/**
 * @file
 * SecureMemory: the library's friendly functional front door.
 *
 * A byte-addressable protected memory implementing the paper's full
 * scheme (split-counter AES counter-mode encryption + GCM Merkle-tree
 * authentication by default, all knobs via SecureMemConfig). Intended
 * for applications and examples that want the security machinery
 * without driving a timing simulation:
 *
 *     SecureMemory mem(SecureMemConfig::splitGcm());
 *     mem.write(0x1000, buf, len);
 *     mem.read(0x1000, buf2, len);       // decrypts + authenticates
 *     mem.dram().tamperXor(0x1000, 3, 1); // hardware attack
 *     mem.read(0x1000, buf2, len);       // detected!
 *
 * Every operation goes through the same SecureMemoryController the
 * timing simulator uses, so DRAM really holds ciphertext, counters and
 * MACs, and the attack API operates on the genuine article.
 */

#ifndef SECMEM_CORE_SECURE_MEMORY_HH
#define SECMEM_CORE_SECURE_MEMORY_HH

#include <cstdint>

#include "core/controller.hh"

namespace secmem
{

/** Byte-level functional API over the secure memory controller. */
class SecureMemory
{
  public:
    explicit SecureMemory(const SecureMemConfig &cfg =
                              SecureMemConfig::splitGcm())
        : ctrl_(cfg)
    {}

    /** Write @p n bytes at @p addr through the secure path. */
    void write(Addr addr, const void *src, std::size_t n);

    /** Read @p n bytes at @p addr; decrypts and authenticates. */
    void read(Addr addr, void *dst, std::size_t n);

    /** Block-granular variants. */
    void writeBlock(Addr addr, const Block64 &data);
    Block64 readBlock(Addr addr);

    /**
     * Whether the most recent read (every block it touched)
     * authenticated cleanly. Backed by the controller's structured
     * per-access verdict; a multi-block read is ok only if all of its
     * blocks verified.
     */
    bool lastAuthOk() const { return lastOpOk_; }
    /** Structured report of the most recent detection (if any). */
    const TamperReport &lastReport() const { return ctrl_.lastReport(); }
    /** Total verification failures observed. */
    std::uint64_t authFailures() const { return ctrl_.authFailures(); }

    /** Select what the controller does on a failed check. */
    void
    setTamperPolicy(TamperPolicy policy, unsigned max_retries = 2)
    {
        ctrl_.setTamperPolicy(policy, max_retries);
    }

    /**
     * Simulated time consumed so far: every operation advances the
     * clock to its completion tick, so successive calls see
     * monotonically increasing time.
     */
    Tick elapsedTicks() const { return tick_; }

    /** The attacker's view: raw DRAM with tamper/snoop/replay calls. */
    Dram &dram() { return ctrl_.dram(); }

    /** Full controller access for advanced scenarios and tests. */
    SecureMemoryController &controller() { return ctrl_; }

    const SecureMemConfig &config() const { return ctrl_.config(); }

  private:
    SecureMemoryController ctrl_;
    Tick tick_ = 0;    ///< simulation clock advanced by each operation
    bool lastOpOk_ = true; ///< aggregate verdict of the last read()
};

} // namespace secmem

#endif // SECMEM_CORE_SECURE_MEMORY_HH
