/**
 * @file
 * Configuration for the secure memory subsystem.
 *
 * One SecureMemConfig describes a complete scheme under study:
 * encryption kind (direct AES, counter mode with monolithic or split
 * counters, counter prediction), authentication kind (GCM or SHA-1
 * Merkle tree), the authentication requirement (lazy / commit / safe),
 * and all structural parameters of the platform. Factory helpers build
 * the named configurations used across the paper's figures.
 */

#ifndef SECMEM_CORE_CONFIG_HH
#define SECMEM_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "crypto/bytes.hh"
#include "mem/bus.hh"
#include "sim/types.hh"

namespace secmem
{

/** Memory encryption scheme. */
enum class EncKind
{
    None,     ///< no encryption (baseline)
    Direct,   ///< direct AES on each block (XOM-style)
    CtrMono,  ///< counter mode, monolithic per-block counters
    CtrSplit, ///< counter mode, split counters (this paper)
    CtrPred,  ///< counter prediction + pad precomputation (Shi et al. [16])
};

/** Memory authentication scheme. */
enum class AuthKind
{
    None, ///< no authentication
    Gcm,  ///< GCM tags over the Merkle tree (this paper)
    Sha1, ///< SHA-1 MACs over the Merkle tree (prior schemes)
};

/** When an authenticated load may proceed (paper Figure 8). */
enum class AuthMode
{
    Lazy,   ///< use and retire immediately; authenticate in background
    Commit, ///< data may be used speculatively, retire waits for auth
    Safe,   ///< data may not even be used until authenticated
};

const char *toString(EncKind k);
const char *toString(AuthKind k);
const char *toString(AuthMode m);

/** Full description of one secure-memory configuration. */
struct SecureMemConfig
{
    // ---- scheme selection --------------------------------------------
    EncKind enc = EncKind::CtrSplit;
    /** Monolithic counter width in bits (8/16/32/64) for CtrMono. */
    unsigned monoBits = 64;
    AuthKind auth = AuthKind::None;
    AuthMode authMode = AuthMode::Commit;
    /** Authenticate all missing tree levels in parallel (paper §3). */
    bool treeParallel = true;
    /** Authentication code size in bits: 128, 64 (default) or 32. */
    unsigned macBits = 64;
    /** Authenticate counter blocks when fetched on-chip (§4.3 fix). */
    bool authenticateCounters = true;

    // ---- structural parameters (paper Section 5) ----------------------
    std::size_t memoryBytes = 512ull << 20; ///< protected memory size
    std::size_t ctrCacheBytes = 32 << 10;
    unsigned ctrCacheAssoc = 8;
    std::size_t macCacheBytes = 256 << 10;
    unsigned macCacheAssoc = 8;

    Tick aesLatency = 80; ///< 16-stage AES pipe, 80-cycle latency
    unsigned aesStages = 16;
    unsigned aesEngines = 1;
    Tick shaLatency = 320; ///< 32-stage SHA-1 pipe (varied in Fig 7)
    unsigned shaStages = 32;
    /** Single-cycle GF(2^128) multiply per 16-byte GHASH chunk. */
    Tick ghashCyclesPerChunk = 1;

    unsigned numRsrs = 8;    ///< re-encryption status registers
    unsigned predDepth = 5;  ///< N precomputed pads for CtrPred

    /**
     * Shadow-execute the untimed reference model (src/ref) alongside
     * the timing simulator and panic with a structured diff on the
     * first functional divergence. Purely observational: simulated
     * results and timing are unchanged, so the flag is excluded from
     * JobSpec canonicalization. Enabled from tests or via
     * `secmem-bench --verify-model`.
     */
    bool verifyModel = false;

    MemTimingParams memTiming{};

    // ---- keys and IVs --------------------------------------------------
    Block16 dataKey{{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                     0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}};
    Block16 macKey{{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                    0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}};
    std::uint8_t eivByte = 0x5a; ///< encryption initialization vector
    std::uint8_t aivByte = 0xa5; ///< authentication initialization vector

    // ---- derived -------------------------------------------------------
    /** True when the scheme maintains per-block counters. */
    bool
    usesCounters() const
    {
        return enc == EncKind::CtrMono || enc == EncKind::CtrSplit ||
               enc == EncKind::CtrPred || auth == AuthKind::Gcm;
    }

    /** True when counters live in cacheable counter blocks. */
    bool
    usesCounterCache() const
    {
        return usesCounters() && enc != EncKind::CtrPred;
    }

    /**
     * Data blocks covered per counter block: the encryption page for
     * split counters, 512/W for W-bit monolithic counters.
     */
    unsigned blocksPerCtrBlock() const;

    /** Human-readable scheme label, e.g. "Split+GCM". */
    std::string schemeName() const;

    /** Abort with a clear message if the combination is unsupported. */
    void validate() const;

    // ---- factories for the paper's named configurations ---------------
    static SecureMemConfig baseline();                  ///< no enc, no auth
    static SecureMemConfig direct();                    ///< Direct AES
    static SecureMemConfig mono(unsigned bits);         ///< Mono{8..64}
    static SecureMemConfig split();                     ///< Split
    static SecureMemConfig pred(unsigned engines = 1);  ///< prediction [16]
    static SecureMemConfig gcmAuthOnly();               ///< Fig 7 GCM
    static SecureMemConfig sha1AuthOnly(Tick latency);  ///< Fig 7 SHA-1
    static SecureMemConfig splitGcm();                  ///< Split+GCM
    static SecureMemConfig monoGcm();                   ///< Mono+GCM
    static SecureMemConfig splitSha();                  ///< Split+SHA
    static SecureMemConfig monoSha();                   ///< Mono+SHA
    static SecureMemConfig xomSha();                    ///< XOM+SHA
};

} // namespace secmem

#endif // SECMEM_CORE_CONFIG_HH
