#include "core/config.hh"

#include "enc/counters.hh"
#include "sim/log.hh"

namespace secmem
{

const char *
toString(EncKind k)
{
    switch (k) {
      case EncKind::None: return "None";
      case EncKind::Direct: return "Direct";
      case EncKind::CtrMono: return "Mono";
      case EncKind::CtrSplit: return "Split";
      case EncKind::CtrPred: return "Pred";
    }
    return "?";
}

const char *
toString(AuthKind k)
{
    switch (k) {
      case AuthKind::None: return "None";
      case AuthKind::Gcm: return "GCM";
      case AuthKind::Sha1: return "SHA1";
    }
    return "?";
}

const char *
toString(AuthMode m)
{
    switch (m) {
      case AuthMode::Lazy: return "lazy";
      case AuthMode::Commit: return "commit";
      case AuthMode::Safe: return "safe";
    }
    return "?";
}

unsigned
SecureMemConfig::blocksPerCtrBlock() const
{
    if (enc == EncKind::CtrMono)
        return 512 / monoBits;
    // Split counters (also the counter structure backing GCM-only auth).
    return kBlocksPerPage;
}

std::string
SecureMemConfig::schemeName() const
{
    std::string name = toString(enc);
    if (enc == EncKind::CtrMono)
        name += std::to_string(monoBits) + "b";
    if (enc == EncKind::CtrPred && aesEngines > 1)
        name += "(" + std::to_string(aesEngines) + "Eng)";
    if (auth != AuthKind::None)
        name += std::string("+") + toString(auth);
    return name;
}

void
SecureMemConfig::validate() const
{
    if (enc == EncKind::CtrMono) {
        SECMEM_ASSERT(monoBits == 8 || monoBits == 16 || monoBits == 32 ||
                          monoBits == 64,
                      "monolithic counter width %u unsupported", monoBits);
    }
    if (enc == EncKind::CtrPred) {
        SECMEM_ASSERT(auth == AuthKind::None,
                      "counter prediction is an encryption-only baseline");
        SECMEM_ASSERT(predDepth >= 1 && predDepth <= 16,
                      "prediction depth %u out of range", predDepth);
    }
    SECMEM_ASSERT(macBits == 128 || macBits == 64 || macBits == 32,
                  "MAC size %u must be 128, 64 or 32", macBits);
    SECMEM_ASSERT(isPowerOfTwo(memoryBytes), "memory size must be 2^k");
    SECMEM_ASSERT(memoryBytes >= (1u << 20), "memory too small");
}

SecureMemConfig
SecureMemConfig::baseline()
{
    SecureMemConfig c;
    c.enc = EncKind::None;
    c.auth = AuthKind::None;
    return c;
}

SecureMemConfig
SecureMemConfig::direct()
{
    SecureMemConfig c;
    c.enc = EncKind::Direct;
    c.auth = AuthKind::None;
    return c;
}

SecureMemConfig
SecureMemConfig::mono(unsigned bits)
{
    SecureMemConfig c;
    c.enc = EncKind::CtrMono;
    c.monoBits = bits;
    c.auth = AuthKind::None;
    return c;
}

SecureMemConfig
SecureMemConfig::split()
{
    SecureMemConfig c;
    c.enc = EncKind::CtrSplit;
    c.auth = AuthKind::None;
    return c;
}

SecureMemConfig
SecureMemConfig::pred(unsigned engines)
{
    SecureMemConfig c;
    c.enc = EncKind::CtrPred;
    c.auth = AuthKind::None;
    c.aesEngines = engines;
    return c;
}

SecureMemConfig
SecureMemConfig::gcmAuthOnly()
{
    SecureMemConfig c;
    c.enc = EncKind::None;
    c.auth = AuthKind::Gcm;
    return c;
}

SecureMemConfig
SecureMemConfig::sha1AuthOnly(Tick latency)
{
    SecureMemConfig c;
    c.enc = EncKind::None;
    c.auth = AuthKind::Sha1;
    c.shaLatency = latency;
    return c;
}

SecureMemConfig
SecureMemConfig::splitGcm()
{
    SecureMemConfig c;
    c.enc = EncKind::CtrSplit;
    c.auth = AuthKind::Gcm;
    return c;
}

SecureMemConfig
SecureMemConfig::monoGcm()
{
    SecureMemConfig c;
    c.enc = EncKind::CtrMono;
    c.monoBits = 64;
    c.auth = AuthKind::Gcm;
    return c;
}

SecureMemConfig
SecureMemConfig::splitSha()
{
    SecureMemConfig c;
    c.enc = EncKind::CtrSplit;
    c.auth = AuthKind::Sha1;
    return c;
}

SecureMemConfig
SecureMemConfig::monoSha()
{
    SecureMemConfig c;
    c.enc = EncKind::CtrMono;
    c.monoBits = 64;
    c.auth = AuthKind::Sha1;
    return c;
}

SecureMemConfig
SecureMemConfig::xomSha()
{
    SecureMemConfig c;
    c.enc = EncKind::Direct;
    c.auth = AuthKind::Sha1;
    return c;
}

} // namespace secmem
