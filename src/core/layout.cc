#include "core/layout.hh"

#include "sim/log.hh"

namespace secmem
{

AddressMap::AddressMap(const SecureMemConfig &cfg)
{
    blocksPerCtr_ = cfg.blocksPerCtrBlock();
    numDataBlocks_ = cfg.memoryBytes / kBlockBytes;
    numCtrBlocks_ = cfg.usesCounterCache()
                        ? (numDataBlocks_ + blocksPerCtr_ - 1) / blocksPerCtr_
                        : 0;
    macSlotBytes_ = cfg.macBits / 8;
    // GCM MAC blocks embed their own 64-bit derivative counter in the
    // leading eight bytes, shrinking the tag capacity (see DESIGN.md);
    // SHA-1 blocks need no freshness counter of their own.
    embeddedDeriv_ = cfg.auth == AuthKind::Gcm;
    arity_ = (static_cast<unsigned>(kBlockBytes) - (embeddedDeriv_ ? 8 : 0)) /
             macSlotBytes_;

    ctrBase_ = static_cast<Addr>(numDataBlocks_) * kBlockBytes;
    Addr cursor = ctrBase_ + numCtrBlocks_ * kBlockBytes;

    // Merkle levels: leaves are data blocks plus direct counter blocks.
    if (cfg.auth != AuthKind::None) {
        std::uint64_t n = numDataBlocks_ + numCtrBlocks_;
        while (n > 1) {
            n = (n + arity_ - 1) / arity_;
            macBase_.push_back(cursor);
            levelCount_.push_back(n);
            cursor += n * kBlockBytes;
        }
        SECMEM_ASSERT(!levelCount_.empty() && levelCount_.back() == 1,
                      "tree did not converge to a single top block");
    }
    if (macBase_.empty()) {
        // Keep region predicates well-defined when auth is off.
        macBase_.push_back(cursor);
    }

    // Derivative counters in their own region exist only for counter
    // block leaves (full 64-byte counter blocks have no room to embed
    // one); MAC blocks embed theirs.
    derivBase_ = cursor;
    std::uint64_t deriv_blocks = (numCtrBlocks_ + 7) / 8;
    end_ = derivBase_ + deriv_blocks * kBlockBytes;
    totalBlocks_ = end_ / kBlockBytes;
}

Addr
AddressMap::ctrBlockAddrFor(Addr data_addr) const
{
    SECMEM_ASSERT(isData(data_addr), "not a data address: %llx",
                  static_cast<unsigned long long>(data_addr));
    std::uint64_t block = data_addr / kBlockBytes;
    return ctrBase_ + (block / blocksPerCtr_) * kBlockBytes;
}

unsigned
AddressMap::ctrSlotFor(Addr data_addr) const
{
    std::uint64_t block = data_addr / kBlockBytes;
    return static_cast<unsigned>(block % blocksPerCtr_);
}

Addr
AddressMap::firstDataBlockOf(Addr ctr_addr) const
{
    SECMEM_ASSERT(isCtr(ctr_addr), "not a counter address");
    std::uint64_t idx = (ctr_addr - ctrBase_) / kBlockBytes;
    return idx * blocksPerCtr_ * kBlockBytes;
}

std::uint64_t
AddressMap::leafIndexOfData(Addr data_addr) const
{
    return data_addr / kBlockBytes;
}

std::uint64_t
AddressMap::leafIndexOfCtrBlock(Addr ctr_addr) const
{
    SECMEM_ASSERT(isCtr(ctr_addr), "not a counter address");
    return numDataBlocks_ + (ctr_addr - ctrBase_) / kBlockBytes;
}

Addr
AddressMap::macBlockAddr(unsigned level, std::uint64_t idx) const
{
    SECMEM_ASSERT(level >= 1 && level <= numLevels(), "bad MAC level %u",
                  level);
    SECMEM_ASSERT(idx < levelCount_[level - 1], "MAC index out of range");
    return macBase_[level - 1] + idx * kBlockBytes;
}

std::pair<unsigned, std::uint64_t>
AddressMap::macLevelOf(Addr mac_addr) const
{
    SECMEM_ASSERT(isMac(mac_addr), "not a MAC address: %llx",
                  static_cast<unsigned long long>(mac_addr));
    for (unsigned level = numLevels(); level >= 1; --level) {
        if (mac_addr >= macBase_[level - 1]) {
            return {level, (mac_addr - macBase_[level - 1]) / kBlockBytes};
        }
    }
    SECMEM_PANIC("unreachable: MAC address classification failed");
}

TagLocation
AddressMap::tagOfLeaf(std::uint64_t leaf_idx) const
{
    TagLocation loc;
    loc.level = 1;
    loc.blockIdx = leaf_idx / arity_;
    loc.slot = static_cast<unsigned>(leaf_idx % arity_);
    loc.blockAddr = macBlockAddr(1, loc.blockIdx);
    loc.pinned = isTopLevel(1);
    return loc;
}

TagLocation
AddressMap::tagOfMacBlock(unsigned level, std::uint64_t idx) const
{
    SECMEM_ASSERT(!isTopLevel(level), "top MAC block has no stored tag");
    TagLocation loc;
    loc.level = level + 1;
    loc.blockIdx = idx / arity_;
    loc.slot = static_cast<unsigned>(idx % arity_);
    loc.blockAddr = macBlockAddr(level + 1, loc.blockIdx);
    loc.pinned = isTopLevel(level + 1);
    return loc;
}

std::uint64_t
AddressMap::derivIdxOfCtrBlock(Addr ctr_addr) const
{
    SECMEM_ASSERT(isCtr(ctr_addr), "not a counter address");
    return (ctr_addr - ctrBase_) / kBlockBytes;
}

Addr
AddressMap::derivCtrBlockAddr(std::uint64_t deriv_idx) const
{
    return derivBase_ + (deriv_idx / 8) * kBlockBytes;
}

} // namespace secmem
