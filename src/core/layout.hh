/**
 * @file
 * Physical address map of the protected memory.
 *
 * The protected space contains, in order:
 *
 *   [data]               application data blocks (ciphertext)
 *   [direct counters]    one counter block per encryption page
 *   [MAC level 1..L]     the Merkle tree (paper Figure 3): level-1
 *                        blocks hold tags of the leaves (data blocks
 *                        AND direct counter blocks); level l+1 holds
 *                        tags of level-l MAC blocks; the single top
 *                        block is pinned on-chip
 *   [derivative ctrs]    64-bit freshness counters for GCM tags of
 *                        non-data blocks (counter blocks and MAC
 *                        blocks), packed eight per block
 *
 * All regions are block-granular and live in the same DRAM, so an
 * attacker on the memory bus can tamper with any of them; only the
 * pinned top level is beyond reach.
 */

#ifndef SECMEM_CORE_LAYOUT_HH
#define SECMEM_CORE_LAYOUT_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/config.hh"
#include "sim/types.hh"

namespace secmem
{

/** Location of one authentication tag inside the tree. */
struct TagLocation
{
    unsigned level = 0;          ///< MAC level holding the tag (1..top)
    std::uint64_t blockIdx = 0;  ///< MAC block index within that level
    unsigned slot = 0;           ///< tag slot within the MAC block
    Addr blockAddr = kAddrInvalid; ///< address of the MAC block
    bool pinned = false;         ///< the MAC block is the on-chip top
};

/** Region/index arithmetic for the protected address space. */
class AddressMap
{
  public:
    explicit AddressMap(const SecureMemConfig &cfg);

    // ---- geometry ------------------------------------------------------
    std::uint64_t numDataBlocks() const { return numDataBlocks_; }
    std::uint64_t numCtrBlocks() const { return numCtrBlocks_; }
    unsigned arity() const { return arity_; }
    /** MAC tree levels, including the pinned top (0 when auth is off). */
    unsigned numLevels() const { return static_cast<unsigned>(levelCount_.size()); }
    std::uint64_t
    macBlocksAtLevel(unsigned level) const
    {
        return levelCount_[level - 1];
    }
    unsigned macSlotBytes() const { return macSlotBytes_; }
    /** Total blocks the map addresses (for sizing sanity checks). */
    std::uint64_t totalBlocks() const { return totalBlocks_; }

    // ---- region classification ----------------------------------------
    bool isData(Addr a) const { return a < ctrBase_; }
    bool isCtr(Addr a) const { return a >= ctrBase_ && a < macBase_.front(); }
    bool isMac(Addr a) const { return a >= macBase_.front() && a < derivBase_; }
    bool isDerivCtr(Addr a) const { return a >= derivBase_ && a < end_; }

    // ---- direct counters ------------------------------------------------
    /** Counter block whose slots cover the data block at @p data_addr. */
    Addr ctrBlockAddrFor(Addr data_addr) const;
    /** Slot of @p data_addr's counter within its counter block. */
    unsigned ctrSlotFor(Addr data_addr) const;
    /** First data-block address covered by counter block @p ctr_addr. */
    Addr firstDataBlockOf(Addr ctr_addr) const;

    // ---- Merkle tree ----------------------------------------------------
    std::uint64_t leafIndexOfData(Addr data_addr) const;
    std::uint64_t leafIndexOfCtrBlock(Addr ctr_addr) const;
    Addr macBlockAddr(unsigned level, std::uint64_t idx) const;
    /** Map a MAC-region address back to (level, block index). */
    std::pair<unsigned, std::uint64_t> macLevelOf(Addr mac_addr) const;
    /** Where the tag of leaf @p leaf_idx is stored. */
    TagLocation tagOfLeaf(std::uint64_t leaf_idx) const;
    /** Where the tag of MAC block (level, idx) is stored. */
    TagLocation tagOfMacBlock(unsigned level, std::uint64_t idx) const;
    /** True iff @p level is the pinned top level. */
    bool isTopLevel(unsigned level) const { return level == numLevels(); }

    /**
     * Byte offset of tag slot @p slot inside a MAC block. With GCM the
     * first eight bytes of every MAC block hold its embedded derivative
     * counter, so tags start at offset 8 and the arity shrinks
     * accordingly; SHA-1 MAC blocks are tags end to end.
     */
    unsigned
    macSlotOffset(unsigned slot) const
    {
        return (embeddedDeriv_ ? 8 : 0) + slot * macSlotBytes_;
    }
    /** True when MAC blocks carry an embedded derivative counter. */
    bool embeddedDeriv() const { return embeddedDeriv_; }

    // ---- derivative counters for counter-block leaves -------------------
    std::uint64_t derivIdxOfCtrBlock(Addr ctr_addr) const;
    Addr derivCtrBlockAddr(std::uint64_t deriv_idx) const;
    unsigned derivSlot(std::uint64_t deriv_idx) const
    {
        return static_cast<unsigned>(deriv_idx % 8);
    }

  private:
    unsigned blocksPerCtr_;
    std::uint64_t numDataBlocks_;
    std::uint64_t numCtrBlocks_;
    unsigned arity_;
    unsigned macSlotBytes_;
    bool embeddedDeriv_;
    Addr ctrBase_;
    std::vector<Addr> macBase_;             ///< per level (1-based - 1)
    std::vector<std::uint64_t> levelCount_; ///< MAC blocks per level
    Addr derivBase_;
    Addr end_;
    std::uint64_t totalBlocks_;
};

} // namespace secmem

#endif // SECMEM_CORE_LAYOUT_HH
