#include "core/secure_memory.hh"

#include <cstring>

#include "sim/log.hh"

namespace secmem
{

void
SecureMemory::writeBlock(Addr addr, const Block64 &data)
{
    Addr base = blockBase(addr);
    SECMEM_ASSERT(base < config().memoryBytes, "address out of range");
    tick_ = ctrl_.writeBlock(base, data, tick_ + 1);
}

Block64
SecureMemory::readBlock(Addr addr)
{
    Addr base = blockBase(addr);
    SECMEM_ASSERT(base < config().memoryBytes, "address out of range");
    Block64 out;
    AccessTiming t = ctrl_.readBlock(base, tick_ + 1, &out);
    tick_ = t.authDone;
    // The controller's structured verdict is authoritative: it already
    // accounts for tamper-policy retries (a recovered transient fault
    // reads ok).
    lastOpOk_ = t.authOk && ctrl_.lastAccessOk();
    return out;
}

void
SecureMemory::write(Addr addr, const void *src, std::size_t n)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(src);
    while (n > 0) {
        Addr base = blockBase(addr);
        std::size_t off = blockOffset(addr);
        std::size_t take = std::min(n, kBlockBytes - off);
        Block64 blk;
        if (take != kBlockBytes) {
            // Partial block: read-modify-write through the secure path.
            blk = readBlock(base);
        }
        std::memcpy(blk.b.data() + off, p, take);
        writeBlock(base, blk);
        addr += take;
        p += take;
        n -= take;
    }
}

void
SecureMemory::read(Addr addr, void *dst, std::size_t n)
{
    std::uint8_t *p = static_cast<std::uint8_t *>(dst);
    bool all_ok = true;
    while (n > 0) {
        Addr base = blockBase(addr);
        std::size_t off = blockOffset(addr);
        std::size_t take = std::min(n, kBlockBytes - off);
        Block64 blk = readBlock(base);
        all_ok = all_ok && lastOpOk_;
        std::memcpy(p, blk.b.data() + off, take);
        addr += take;
        p += take;
        n -= take;
    }
    lastOpOk_ = all_ok;
}

} // namespace secmem
