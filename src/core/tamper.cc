#include "core/tamper.hh"

#include "sim/log.hh"

namespace secmem
{

const char *
toString(TamperPolicy p)
{
    switch (p) {
      case TamperPolicy::Halt:
        return "Halt";
      case TamperPolicy::ReportAndContinue:
        return "ReportAndContinue";
      case TamperPolicy::RetryRefetch:
        return "RetryRefetch";
      case TamperPolicy::Quarantine:
        return "Quarantine";
    }
    SECMEM_PANIC("bad TamperPolicy");
}

const char *
toString(RecoveryStage s)
{
    switch (s) {
      case RecoveryStage::None:
        return "none";
      case RecoveryStage::LineRefetch:
        return "line-refetch";
      case RecoveryStage::CounterRefetch:
        return "counter-refetch";
      case RecoveryStage::SubtreeReverify:
        return "subtree-reverify";
    }
    SECMEM_PANIC("bad RecoveryStage");
}

const char *
toString(TamperCheck c)
{
    switch (c) {
      case TamperCheck::LeafTag:
        return "LeafTag";
      case TamperCheck::CounterAuth:
        return "CounterAuth";
      case TamperCheck::TreeNode:
        return "TreeNode";
    }
    SECMEM_PANIC("bad TamperCheck");
}

const char *
toString(MemRegion r)
{
    switch (r) {
      case MemRegion::Data:
        return "data";
      case MemRegion::Counter:
        return "counter";
      case MemRegion::Mac:
        return "mac";
      case MemRegion::DerivCtr:
        return "derivctr";
      case MemRegion::Unknown:
        return "unknown";
    }
    SECMEM_PANIC("bad MemRegion");
}

} // namespace secmem
