/**
 * @file
 * SecureMemoryController: the paper's combined memory encryption +
 * authentication engine, both functional (bit-exact crypto, real
 * counter/MAC state in DRAM) and timed (bus, DRAM, counter cache,
 * MAC cache, pipelined AES/SHA engines, RSRs).
 *
 * The controller sits below the L2: it services L2 miss fills and L2
 * dirty write-backs. For each operation it
 *
 *  1. performs the real state changes — fetching/updating counter
 *     blocks, generating pads, encrypting/decrypting with AES counter
 *     mode (or direct AES), computing/verifying GCM or SHA-1 tags, and
 *     walking/updating the Merkle tree whose leaves are data blocks and
 *     direct counter blocks (paper Figure 3); and
 *
 *  2. computes when each step finishes on the modelled hardware, using
 *     resource reservations on the shared bus, the DRAM channel and the
 *     crypto pipelines.
 *
 * Reads return a pair of ticks: when the plaintext is usable
 * (dataReady) and when its authentication chain up to the first
 * on-chip tree node is complete (authDone). The CPU model interprets
 * these according to the authentication requirement (lazy / commit /
 * safe).
 *
 * Split-counter page re-encryptions run in the background through
 * re-encryption status register (RSR) windows exactly as in paper
 * Section 4.2: on-chip blocks are lazily re-encrypted by marking them
 * dirty; off-chip blocks are fetched, re-encrypted and written back
 * without polluting the cache.
 */

#ifndef SECMEM_CORE_CONTROLLER_HH
#define SECMEM_CORE_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hh"
#include "core/layout.hh"
#include "core/tamper.hh"
#include "crypto/aes.hh"
#include "crypto/bytes.hh"
#include "crypto/gf128.hh"
#include "enc/counters.hh"
#include "enc/crypto_engine.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/flat_hash.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

namespace obs
{
class StatRegistry;
class TraceSink;
} // namespace obs

namespace ref
{
class ShadowModel;
} // namespace ref

/** Structured outcome of a top-level access. */
enum class AccessStatus
{
    Ok,          ///< verified cleanly (possibly after recovery)
    AuthFailed,  ///< a verification check failed and was not recovered
    Quarantined, ///< the block is quarantined; no data was returned
};

/** Completion times of an L2-miss fill. */
struct AccessTiming
{
    Tick dataReady = 0; ///< plaintext available for use
    Tick authDone = 0;  ///< authentication chain complete
    bool authOk = true; ///< all verified tags matched
    AccessStatus status = AccessStatus::Ok; ///< structured outcome
};

/**
 * Probe into the cache hierarchy for page re-encryption (paper
 * Section 4.2). A bound virtual interface — one indirect call per
 * probe — rather than std::function members, which cost a double
 * indirection (wrapper + target) per invocation on what is a per-block
 * operation during every RSR window.
 */
class L2Probe
{
  public:
    virtual ~L2Probe() = default;
    /** True when the block at @p a is resident anywhere on-chip. */
    virtual bool cacheContains(Addr a) const = 0;
    /** Lazily re-encrypt: mark the cached copy dirty in place. */
    virtual void cacheMarkDirty(Addr a) = 0;
};

/** The combined encryption/authentication memory controller. */
class SecureMemoryController
{
  public:
    explicit SecureMemoryController(const SecureMemConfig &cfg);
    ~SecureMemoryController();

    SecureMemoryController(const SecureMemoryController &) = delete;
    SecureMemoryController &operator=(const SecureMemoryController &) = delete;

    // ---- main datapath -------------------------------------------------
    /**
     * Service an L2 miss for the data block at @p addr, issued at
     * @p now. @p out (optional) receives the decrypted plaintext.
     * Applies the configured TamperPolicy on verification failure.
     */
    AccessTiming readBlock(Addr addr, Tick now, Block64 *out = nullptr);

    /**
     * Service an L2 dirty write-back of plaintext @p data at @p addr,
     * issued at @p now. Fire-and-forget for the CPU; the returned tick
     * (when the ciphertext is in DRAM) is for instrumentation.
     */
    Tick writeBlock(Addr addr, const Block64 &data, Tick now);

    /** Attach the L2 probe used by RSR page re-encryption (not owned). */
    void setL2Probe(L2Probe *probe) { l2_ = probe; }

    // ---- inspection / attack surface ------------------------------------
    /** The DRAM under attack (ciphertext, counters, MACs). */
    Dram &dram() { return dram_; }
    const AddressMap &map() const { return map_; }
    const SecureMemConfig &config() const { return cfg_; }

    /** Number of Merkle/GCM verification failures observed so far. */
    std::uint64_t authFailures() const { return authFailures_; }

    // ---- structured tamper detection and recovery -----------------------
    /** Select the reaction to a failed verification check. */
    void
    setTamperPolicy(TamperPolicy policy, unsigned max_retries = 2)
    {
        policy_ = policy;
        recovery_.maxRetries = max_retries;
    }
    TamperPolicy tamperPolicy() const { return policy_; }

    /** Tune the recovery state machine (budget, backoff schedule). */
    void setRecoveryConfig(const RecoveryConfig &rc) { recovery_ = rc; }
    const RecoveryConfig &recoveryConfig() const { return recovery_; }

    /** True once a detection under TamperPolicy::Halt stopped service. */
    bool halted() const { return halted_; }

    /** Whether the most recent top-level access verified cleanly. */
    bool lastAccessOk() const { return lastAccessOk_; }

    /** Structured outcome of the most recent top-level access. */
    AccessStatus lastAccessStatus() const { return lastStatus_; }

    // ---- quarantine (TamperPolicy::Quarantine) ---------------------------
    /** True when the data block containing @p addr is quarantined. */
    bool
    isQuarantined(Addr addr) const
    {
        return quarantine_.count(blockBase(addr)) != 0;
    }
    /** Number of quarantined data blocks. */
    std::size_t quarantineCount() const { return quarantine_.size(); }
    /** Accesses bounced off quarantined blocks (reads, writes). */
    std::uint64_t quarantineBlockedReads() const { return qBlockedReads_; }
    std::uint64_t quarantineBlockedWrites() const { return qBlockedWrites_; }
    /**
     * Operator repair hook: release the block containing @p addr from
     * quarantine (after the backing storage was fixed / re-imaged).
     * Returns true when the block was quarantined.
     */
    bool releaseQuarantine(Addr addr);
    /** Release every quarantined block. */
    void clearQuarantine();

    /**
     * Most recent detection (valid == false if none yet). Survives
     * subsequent clean accesses, so callers can inspect it after the
     * fact; reports() holds the full history.
     */
    const TamperReport &lastReport() const { return lastReport_; }

    /** All detections so far, oldest first (bounded; see reportsDropped). */
    const std::vector<TamperReport> &reports() const { return reports_; }
    /** Reports discarded after the in-memory cap was reached. */
    std::uint64_t reportsDropped() const { return reportsDropped_; }
    void
    clearReports()
    {
        reports_.clear();
        reportsDropped_ = 0;
        lastReport_ = TamperReport{};
    }

    /** Region of the protected space @p addr falls in. */
    MemRegion regionOf(Addr addr) const;

    /** Current counter value of a data block (functional probe). */
    std::uint64_t counterOf(Addr data_addr);

    /** Force-evict a counter block from the counter cache (tests). */
    void evictCounterBlock(Addr data_addr);
    /** Force-evict all MAC blocks (tests). */
    void flushMacCache();
    /** Force-evict all counter and derivative-counter blocks (tests). */
    void flushCtrCache();

    // ---- statistics -----------------------------------------------------
    /**
     * Register every controller-side stats group (and derived rates)
     * under its canonical dotted path: ctrl, ctrcache, maccache,
     * derivcache, aes, sha1, bus, dram (channel traffic), dram.store
     * (functional-store integrity counters).
     */
    void registerStats(obs::StatRegistry &reg);

    /**
     * Attach (or detach with nullptr) an event-trace sink. Costs one
     * pointer test per instrumented site when detached; never affects
     * simulated timing.
     */
    void setTraceSink(obs::TraceSink *sink) { trace_ = sink; }

    stats::Group &stats() { return stats_; }
    Cache &ctrCache() { return ctrCache_; }
    Cache &macCache() { return macCache_; }
    Cache &derivCache() { return derivCache_; }
    CryptoEngine &aesEngine() { return aes_; }
    CryptoEngine &shaEngine() { return sha_; }
    Bus &bus() { return channel_.bus(); }

    /** Total data-block write-backs serviced. */
    std::uint64_t totalWritebacks() const { return totalWritebacks_; }
    /** Largest number of write-backs any single data block received. */
    std::uint64_t maxBlockWritebacks() const { return maxBlockWritebacks_; }
    /** Whole-memory re-encryption "freezes" (monolithic overflow). */
    std::uint64_t freezeCount() const { return freezes_; }
    /** Split-counter page re-encryptions triggered. */
    std::uint64_t pageReencCount() const { return pageReencs_; }

    // ---- differential correctness oracle (src/ref) ----------------------
    /** The shadow model, when cfg.verifyModel is set (else nullptr). */
    ref::ShadowModel *shadowModel() { return shadow_.get(); }
    /** The pinned on-chip top-of-tree block (oracle / test probe). */
    const Block64 &pinnedTopBlock() const { return pinnedTop_; }
    /** True once the node at @p a has a valid stored tag. */
    bool hasStoredTag(Addr a) const { return hasTag_.count(a) != 0; }

  private:
    // ---- structured tamper detection -------------------------------------
    /** Record a failed check into the current access's report. */
    void noteTamper(TamperCheck check, unsigned level, Addr victim);
    /** Reset per-access detection state (outermost entry only). */
    void beginAccess(Addr addr, Tick now, bool is_write);
    /** Finalize the report and apply the tamper policy. */
    void finishAccess(bool ok, Tick done);
    /** Drop clean (possibly poisoned) metadata before a refetch retry. */
    void dropCleanMetadata(Addr data_addr);

    // ---- recovery state machine (RetryRefetch / Quarantine) --------------
    /** Whether the active policy runs the retry state machine. */
    bool
    recoveryEnabled() const
    {
        return policy_ == TamperPolicy::RetryRefetch ||
               policy_ == TamperPolicy::Quarantine;
    }
    /** Initial recovery stage implied by the failing check. */
    static RecoveryStage initialStageFor(TamperCheck check);
    /** Drop the metadata a retry at @p stage must re-fetch. */
    void applyRecoveryStage(RecoveryStage stage, Addr data_addr);
    /** Run the bounded retry loop after a failed read; updates cur_. */
    AccessTiming runRecovery(Addr addr, AccessTiming timing, Block64 *out);
    /** Poison the data block at @p base (budget exhausted). */
    void quarantineBlock(Addr base, Tick now);
    /** Short-circuit service of an access to a quarantined block. */
    AccessTiming serviceQuarantined(Addr base, Tick now, bool is_write,
                                    Block64 *out);

    /** The read datapath proper (wrapped by readBlock's policy loop). */
    AccessTiming readBlockImpl(Addr addr, Tick now, Block64 *out);
    /** The write datapath proper (wrapped by writeBlock). */
    Tick writeBlockImpl(Addr addr, const Block64 &data, Tick now);

    // ---- node identity in the authentication tree -----------------------
    enum class NodeKind { Data, CtrBlock, MacBlock };

    struct NodeRef
    {
        NodeKind kind;
        Addr addr;           ///< block address in its region
        unsigned level;      ///< MAC level (MacBlock only)
        std::uint64_t index; ///< MAC block index (MacBlock only)
    };

    // ---- counter access --------------------------------------------------
    struct CtrAccess
    {
        Block64 *line = nullptr; ///< counter block payload in the cache
        Tick ready = 0;          ///< content available on-chip
        Tick authDone = 0;       ///< verified (== ready if auth off)
        bool hit = false;
        bool halfMiss = false;
        bool authOk = true;      ///< verification outcome on fill
    };

    /** Get (and if needed fetch + authenticate) a counter block. */
    CtrAccess getCtrBlock(Addr ctr_addr, Tick now, bool for_write);

    /** Get a derivative counter; returns (value-ready tick, value ptr). */
    struct DerivAccess
    {
        Tick ready = 0;
        std::uint64_t value = 0;
    };
    /** Region-stored derivative counters (counter-block leaves only). */
    DerivAccess getDerivCtr(std::uint64_t deriv_idx, Tick now);
    void bumpDerivCtr(std::uint64_t deriv_idx, Tick now);

    /** Embedded derivative counter of a MAC block (leading 8 bytes). */
    static std::uint64_t macEmbeddedCtr(const Block64 &blk);
    static void setMacEmbeddedCtr(Block64 &blk, std::uint64_t v);
    /**
     * On-chip derivative-counter hint table: lets GCM authentication
     * pads for MAC blocks start before the block arrives (the embedded
     * counter itself travels with the block). Direct-mapped.
     */
    Tick derivHintReady(Addr mac_addr, std::uint64_t actual, Tick early,
                        Tick arrive);
    void derivHintUpdate(Addr mac_addr, std::uint64_t value);

    // ---- tree operations --------------------------------------------------
    /**
     * Authenticate @p node whose content arrived on-chip at
     * @p arrive; walks up fetching missing MAC blocks until the first
     * on-chip node (paper Section 3), in parallel or sequentially.
     *
     * @param counter_ready tick at which the node's freshness counter
     *                      (direct or derivative) is known on-chip,
     *                      gating GCM authentication-pad generation
     * @return tick at which the whole chain is verified.
     */
    Tick authenticateFetched(const NodeRef &node, const Block64 &content,
                             std::uint64_t leaf_counter,
                             std::uint8_t leaf_epoch, Tick issue,
                             Tick arrive, Tick counter_ready, bool *ok);

    /** Compute the tag of a node's content (GCM or SHA-1). */
    Block16 nodeTag(const NodeRef &node, const Block64 &content,
                    std::uint64_t counter, std::uint8_t epoch) const;

    /** Expected-tag storage helpers. */
    TagLocation tagLocationOf(const NodeRef &node) const;
    Block16 readTagSlot(const TagLocation &loc) const;
    void writeTagSlot(const TagLocation &loc, const Block16 &tag);
    /**
     * Zero-cost tag store used by lazy boot-time formatting and as the
     * recursion-depth fallback: updates the logical location (pinned
     * top / cached line / DRAM) and functionally refreshes ancestor
     * tags when writing straight to DRAM.
     */
    void functionalTagStore(const TagLocation &loc, const Block16 &tag);

    /**
     * Get a MAC block on-chip for reading/updating; fetches (with
     * authentication) on miss. Returns payload pointer and ready tick.
     */
    struct MacAccess
    {
        Block64 *line = nullptr;
        Tick ready = 0;
        Tick authDone = 0;
        bool hit = false;
    };
    MacAccess getMacBlock(const TagLocation &loc, Tick now, bool for_write,
                          bool authenticate);

    /** Write back a dirty MAC block evicted from the MAC cache. */
    void writebackMacBlock(Addr mac_addr, const Block64 &data, Tick now);
    /** First half of the above: bump embedded counter, write content. */
    void writebackMacContent(Addr mac_addr, const Block64 &data, Tick now);
    /** Second half: recompute this block's tag from current DRAM bits. */
    void writebackMacTag(Addr mac_addr, Tick now);
    /** Write back a dirty counter block evicted from the counter cache. */
    void writebackCtrBlock(Addr ctr_addr, const Block64 &data, Tick now);
    /** Dispatch either of the above based on region. */
    void writebackMetaBlock(Addr addr, const Block64 &data, Tick now);

    /** Update the stored tag of a leaf after its content changed. */
    Tick updateLeafTag(const NodeRef &node, const Block64 &content,
                       std::uint64_t counter, Tick now, Tick content_ready);

    // ---- data-path helpers -------------------------------------------------
    /** Lazily format a data block (plus tags) the first time it is seen. */
    void ensureDataInit(Addr addr);

    std::uint64_t dataCounter(Addr addr, const Block64 &ctr_line) const;
    /** Functional encrypt/decrypt for the configured scheme. */
    Block64 encryptData(Addr addr, const Block64 &pt, std::uint64_t ctr,
                        std::uint8_t epoch) const;
    Block64 decryptData(Addr addr, const Block64 &ct, std::uint64_t ctr,
                        std::uint8_t epoch) const;

    /** Split-counter page re-encryption through an RSR (Section 4.2). */
    Tick triggerPageReenc(Addr ctr_addr, Tick now);

    /** Gate for reads of blocks inside an active re-encryption window. */
    Tick rsrWaitFor(Addr data_addr, Tick now);

    /** Epoch (whole-memory re-encryption generation) of a block. */
    std::uint8_t epochOf(Addr data_addr) const;

    // ---- counter prediction (Shi et al. [16]) -------------------------------
    struct PredResult
    {
        Tick padReady;
        bool predicted;
    };
    PredResult predictPads(Addr addr, std::uint64_t actual_ctr, Tick now);

    // ---- members -------------------------------------------------------------
    SecureMemConfig cfg_;
    AddressMap map_;
    Dram dram_;
    Cache ctrCache_;
    Cache macCache_;
    /**
     * Derivative counters get their own small cache: sharing the direct
     * counter cache would let tree-walk fills evict the counter block a
     * data access is actively using. The paper leaves their placement
     * unspecified (see DESIGN.md).
     */
    Cache derivCache_;
    MemChannel channel_;
    CryptoEngine aes_;
    CryptoEngine sha_;

    Aes128 dataAes_;   ///< data encryption + GCM pads
    Block16 hashSubkey_{}; ///< GCM H = AES_K(0)
    Gf128Table hashTable_; ///< Shoup table for H, built once per run

    L2Probe *l2_ = nullptr;

    /** Pinned on-chip top-of-tree block. */
    Block64 pinnedTop_{};

    /** In-flight fill arrival times (half-miss modelling). */
    std::unordered_map<Addr, Tick> inflight_;

    // The per-block side tables below are insert/lookup-only and sit on
    // the access hot path (ensureDataInit probes initialized_ on every
    // read and write), so they use the flat tables from sim/flat_hash.hh
    // rather than node-based std containers.

    /** Lazily formatted data blocks. */
    FlatAddrSet initialized_;
    /** Nodes whose stored tags are valid (lazy tree format). */
    FlatAddrSet hasTag_;
    /** Tag slot key for leaves that share a MAC block: child address. */

    /** Whole-memory re-encryption epoch per block (monolithic freeze). */
    FlatAddrMap<std::uint8_t> blockEpoch_;
    std::uint8_t epoch_ = 0;

    /** Per-block write-back counts (Table 2 growth rates). */
    FlatAddrMap<std::uint64_t> wbCounts_;
    std::uint64_t totalWritebacks_ = 0;
    std::uint64_t maxBlockWritebacks_ = 0;
    std::uint64_t freezes_ = 0;
    std::uint64_t pageReencs_ = 0;
    std::uint64_t authFailures_ = 0;

    /** Tamper policy state (see core/tamper.hh). */
    TamperPolicy policy_ = TamperPolicy::ReportAndContinue;
    RecoveryConfig recovery_{};
    bool halted_ = false;
    bool lastAccessOk_ = true;
    AccessStatus lastStatus_ = AccessStatus::Ok;
    TamperReport cur_{};        ///< report being built for this access
    TamperReport lastReport_{};
    std::vector<TamperReport> reports_;
    std::uint64_t reportsDropped_ = 0;

    /** Quarantined data blocks (base address -> quarantine tick). */
    std::unordered_map<Addr, Tick> quarantine_;
    std::uint64_t qBlockedReads_ = 0;
    std::uint64_t qBlockedWrites_ = 0;

    /** Derivative-counter hint table (see derivHintReady). */
    struct DerivHint
    {
        Addr addr = kAddrInvalid;
        std::uint64_t value = 0;
    };
    std::vector<DerivHint> derivHints_ = std::vector<DerivHint>(4096);

    /** RSR state: active page re-encryption windows. */
    struct Rsr
    {
        bool valid = false;
        Addr page = kAddrInvalid; ///< first data address of the page
        Tick freeAt = 0;
        std::vector<Tick> blockReady; ///< per in-page block index
    };
    std::vector<Rsr> rsrs_;

    /** Counter-prediction state: per-block counters and page bases. */
    FlatAddrMap<std::uint64_t> predCtr_;
    FlatAddrMap<std::uint64_t> predBase_;

    /** Differential oracle shadow-executing this controller (optional). */
    std::unique_ptr<ref::ShadowModel> shadow_;

    /** mutable: nodeTag() is const but counts GHASH/SHA-1 work. */
    mutable stats::Group stats_;
    // Cached references for the per-access hot path: stats::Group keys
    // by string, and a map lookup per counter bump is measurable at
    // fig9 scale. Cold paths (tamper, recovery, re-enc) still look up.
    stats::Counter &readsStat_ = stats_.counter("reads");
    stats::Counter &writesStat_ = stats_.counter("writes");
    stats::Counter &ctrFetchesStat_ = stats_.counter("ctr_fetches");
    stats::Counter &ctrHalfmissStat_ = stats_.counter("ctr_halfmiss");
    stats::Counter &macFetchesStat_ = stats_.counter("mac_fetches");
    stats::Counter &padTotalStat_ = stats_.counter("pad_total");
    stats::Counter &padTimelyStat_ = stats_.counter("pad_timely");
    stats::Counter &predTotalStat_ = stats_.counter("pred_total");
    stats::Counter &predHitsStat_ = stats_.counter("pred_hits");
    // (references reach non-const members even from const methods)
    stats::Counter &ghashChunksStat_ = stats_.counter("ghash_chunks");
    stats::Counter &sha1BlocksStat_ = stats_.counter("sha1_blocks");
    stats::Gauge &inflightStat_ = stats_.gauge("inflight");
    stats::LogHistogram &readLatencyStat_ =
        stats_.logHistogram("read_latency");
    stats::LogHistogram &writeLatencyStat_ =
        stats_.logHistogram("write_latency");
    stats::LogHistogram &ctrMissPenaltyStat_ =
        stats_.logHistogram("ctr_miss_penalty");
    stats::Counter &derivFetchesStat_ = stats_.counter("deriv_fetches");
    stats::Counter &derivHalfmissStat_ = stats_.counter("deriv_halfmiss");
    stats::Counter &macWritebacksStat_ = stats_.counter("mac_writebacks");
    stats::Counter &macUpdateFetchesStat_ =
        stats_.counter("mac_update_fetches");
    stats::Counter &ctrWritebacksStat_ = stats_.counter("ctr_writebacks");
    stats::Sample &authWalkLevelsStat_ = stats_.sample("auth_walk_levels");
    obs::TraceSink *trace_ = nullptr;
    unsigned updateDepth_ = 0; ///< recursion guard for tree updates
};

} // namespace secmem

#endif // SECMEM_CORE_CONTROLLER_HH
