#include "core/controller.hh"

#include <algorithm>
#include <cstdlib>

#include "crypto/seed.hh"
#include "obs/profiler.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "ref/shadow.hh"
#include "sim/log.hh"

namespace secmem
{

namespace
{

/**
 * Read-only adapter giving the shadow oracle its window onto the
 * controller's architectural state, built strictly from public
 * accessors so the oracle cannot perturb what it observes.
 */
class CtrlShadowView : public ref::ShadowView
{
  public:
    explicit CtrlShadowView(SecureMemoryController &c) : c_(c) {}

    Block64
    dram(Addr a) const override
    {
        return c_.dram().peekBlock(a);
    }
    const Block64 *
    ctrLine(Addr a) const override
    {
        return c_.ctrCache().peek(a);
    }
    const Block64 *
    macLine(Addr a) const override
    {
        return c_.macCache().peek(a);
    }
    const Block64 *
    derivLine(Addr a) const override
    {
        return c_.derivCache().peek(a);
    }
    const Block64 &
    pinnedTop() const override
    {
        return c_.pinnedTopBlock();
    }
    bool
    hasStoredTag(Addr a) const override
    {
        return c_.hasStoredTag(a);
    }
    std::uint64_t
    pageReencCount() const override
    {
        return c_.pageReencCount();
    }
    std::uint64_t
    freezeCount() const override
    {
        return c_.freezeCount();
    }

  private:
    SecureMemoryController &c_;
};

/** Optional stderr trace of every verification failure (debugging). */
bool
authTraceEnabled()
{
    static const bool enabled = std::getenv("SECMEM_AUTH_TRACE") != nullptr;
    return enabled;
}

/** GHASH cycles to absorb one cache block (4 chunks + length block). */
constexpr Tick kGhashBlockCycles = 5;
/** Final XOR / compare cycle. */
constexpr Tick kCompareCycle = 1;
/** Tree-update recursion bound before falling back to functional stores. */
constexpr unsigned kMaxUpdateDepth = 32;
/** In-memory cap on retained TamperReports (campaigns can be long). */
constexpr std::size_t kMaxReports = 1 << 16;

} // namespace

SecureMemoryController::SecureMemoryController(const SecureMemConfig &cfg)
    : cfg_(cfg),
      map_(cfg),
      ctrCache_("ctrcache", cfg.ctrCacheBytes, cfg.ctrCacheAssoc),
      macCache_("maccache", cfg.macCacheBytes, cfg.macCacheAssoc),
      derivCache_("derivcache", 16 << 10, 8),
      channel_(cfg.memTiming),
      aes_("aes", cfg.aesLatency, cfg.aesStages, cfg.aesEngines),
      sha_("sha1", cfg.shaLatency, cfg.shaStages),
      dataAes_(cfg.dataKey),
      rsrs_(cfg.numRsrs),
      stats_("ctrl")
{
    cfg_.validate();
    SECMEM_ASSERT(!(cfg_.auth == AuthKind::Gcm && cfg_.enc == EncKind::Direct),
                  "GCM authentication requires a counter-based layout");
    hashSubkey_ = dataAes_.encrypt(Block16{});
    hashTable_ = Gf128Table(Gf128::fromBlock(hashSubkey_));
    if (cfg_.verifyModel)
        shadow_ = std::make_unique<ref::ShadowModel>(cfg_);

    // Pre-register the headline counters so every configuration dumps a
    // uniform stat set (e.g. ghash_chunks stays visible, at 0, for
    // encryption-only runs that never compute a tag).
    stats_.counter("reads");
    stats_.counter("writes");
    stats_.counter("ctr_fetches");
    stats_.counter("ctr_halfmiss");
    stats_.counter("mac_fetches");
    stats_.counter("pad_total");
    stats_.counter("pad_timely");
    stats_.counter("pred_total");
    stats_.counter("pred_hits");
    stats_.counter("page_reencs");
    stats_.counter("freezes");
    stats_.counter("ghash_chunks");
    stats_.counter("sha1_blocks");
    stats_.counter("auth_failures");
    // Recovery state machine (core/tamper.hh): visible at 0 so fault
    // campaigns and clean runs dump the same stat set.
    stats_.counter("tamper_retries");
    stats_.counter("tamper_recoveries");
    stats_.counter("recovery_escalations");
    stats_.counter("recovery_backoff_ticks");
    stats_.counter("recovery_exhausted");
    stats_.counter("quarantines");
    stats_.counter("quarantine_blocked_reads");
    stats_.counter("quarantine_blocked_writes");
    // Latency distributions (log-bucketed, p50/p90/p99 in dumps) are
    // pre-registered by the cached reference members (readLatencyStat_
    // and friends), keeping the dumped stat set uniform.
    stats_.logHistogram("recovery_retries");
    stats_.gauge("inflight");
}

SecureMemoryController::~SecureMemoryController() = default;

void
SecureMemoryController::registerStats(obs::StatRegistry &reg)
{
    reg.add("ctrl", stats_);
    reg.add("ctrcache", ctrCache_.stats());
    reg.add("maccache", macCache_.stats());
    reg.add("derivcache", derivCache_.stats());
    reg.add("aes", aes_.stats());
    reg.add("sha1", sha_.stats());
    reg.add("bus", channel_.bus().stats());
    reg.add("dram", channel_.stats());
    reg.add("dram.store", dram_.stats());

    reg.addRatio("ctrcache.hit_rate", "ctrcache.hits", "ctrcache.accesses");
    reg.addRatio("maccache.hit_rate", "maccache.hits", "maccache.accesses");
    reg.addRatio("ctrl.pad_timely_rate", "ctrl.pad_timely", "ctrl.pad_total");
    reg.addRatio("ctrl.pred_rate", "ctrl.pred_hits", "ctrl.pred_total");
}

// --------------------------------------------------------------------------
// Helpers: epochs, counters, data crypto
// --------------------------------------------------------------------------

MemRegion
SecureMemoryController::regionOf(Addr addr) const
{
    if (map_.isData(addr))
        return MemRegion::Data;
    if (map_.isCtr(addr))
        return MemRegion::Counter;
    if (map_.isMac(addr))
        return MemRegion::Mac;
    if (map_.isDerivCtr(addr))
        return MemRegion::DerivCtr;
    return MemRegion::Unknown;
}

// --------------------------------------------------------------------------
// Structured tamper detection (see core/tamper.hh)
// --------------------------------------------------------------------------

void
SecureMemoryController::beginAccess(Addr addr, Tick now, bool is_write)
{
    cur_ = TamperReport{};
    cur_.accessAddr = blockBase(addr);
    cur_.issued = now;
    cur_.onWritePath = is_write;
}

void
SecureMemoryController::noteTamper(TamperCheck check, unsigned level,
                                   Addr victim)
{
    ++authFailures_;
    stats_.counter("auth_failures").inc();
    switch (check) {
      case TamperCheck::LeafTag:
        stats_.counter("tamper_detect_leaf").inc();
        break;
      case TamperCheck::CounterAuth:
        stats_.counter("tamper_detect_ctrauth").inc();
        break;
      case TamperCheck::TreeNode:
        stats_.counter("tamper_detect_tree").inc();
        break;
    }
    if (cur_.valid)
        return; // the first failing check owns the access's report
    cur_.valid = true;
    cur_.check = check;
    cur_.level = level;
    cur_.victim = victim;
    cur_.region = regionOf(victim);
}

void
SecureMemoryController::finishAccess(bool ok, Tick done)
{
    lastAccessOk_ = ok;
    if (!cur_.valid)
        return;
    cur_.detected = done;
    stats_.histogram("tamper_latency", 64.0, 32)
        .record(static_cast<double>(cur_.latency()));
    lastReport_ = cur_;
    if (reports_.size() < kMaxReports)
        reports_.push_back(cur_);
    else
        ++reportsDropped_;
    if (!ok && policy_ == TamperPolicy::Halt) {
        halted_ = true;
        stats_.counter("tamper_halts").inc();
    }
    cur_ = TamperReport{};
}

void
SecureMemoryController::dropCleanMetadata(Addr data_addr)
{
    // A corrupted fetch may have parked poisoned — but clean — copies
    // in the metadata caches; drop them so the retry re-fetches from
    // DRAM. Dirty lines hold legitimate local updates: written back.
    if (cfg_.usesCounterCache()) {
        Addr ca = map_.ctrBlockAddrFor(blockBase(data_addr));
        Eviction ev = ctrCache_.invalidate(ca);
        if (ev.valid && ev.dirty)
            writebackCtrBlock(ev.addr, ev.data, 0);
        inflight_.erase(ca);
        if (cfg_.auth == AuthKind::Gcm && cfg_.authenticateCounters) {
            Addr da = map_.derivCtrBlockAddr(map_.derivIdxOfCtrBlock(ca));
            Eviction dev = derivCache_.invalidate(da);
            if (dev.valid && dev.dirty)
                dram_.writeBlock(dev.addr, dev.data);
            inflight_.erase(da);
        }
    }
    if (cfg_.auth != AuthKind::None)
        flushMacCache();
}

// --------------------------------------------------------------------------
// Recovery state machine (RetryRefetch / Quarantine; see core/tamper.hh)
// --------------------------------------------------------------------------

RecoveryStage
SecureMemoryController::initialStageFor(TamperCheck check)
{
    // Start at the narrowest stage that can plausibly clear the failing
    // check: a bad leaf tag may be a corrupted data fetch alone, a bad
    // counter needs the counter path re-fetched, and an interior tree
    // failure requires re-walking the subtree from DRAM.
    switch (check) {
      case TamperCheck::LeafTag:
        return RecoveryStage::LineRefetch;
      case TamperCheck::CounterAuth:
        return RecoveryStage::CounterRefetch;
      case TamperCheck::TreeNode:
        return RecoveryStage::SubtreeReverify;
    }
    return RecoveryStage::LineRefetch;
}

void
SecureMemoryController::applyRecoveryStage(RecoveryStage stage,
                                           Addr data_addr)
{
    switch (stage) {
      case RecoveryStage::None:
      case RecoveryStage::LineRefetch:
        // Data blocks are not cached controller-side; the retry's
        // readBlockImpl re-fetches the line from DRAM by itself.
        return;
      case RecoveryStage::CounterRefetch: {
        // Drop (writeback if dirty) the counter and derivative-counter
        // lines feeding this block so the retry re-fetches and
        // re-authenticates them.
        if (cfg_.usesCounterCache()) {
            Addr ca = map_.ctrBlockAddrFor(blockBase(data_addr));
            Eviction ev = ctrCache_.invalidate(ca);
            if (ev.valid && ev.dirty)
                writebackCtrBlock(ev.addr, ev.data, 0);
            inflight_.erase(ca);
            if (cfg_.auth == AuthKind::Gcm && cfg_.authenticateCounters) {
                Addr da =
                    map_.derivCtrBlockAddr(map_.derivIdxOfCtrBlock(ca));
                Eviction dev = derivCache_.invalidate(da);
                if (dev.valid && dev.dirty)
                    dram_.writeBlock(dev.addr, dev.data);
                inflight_.erase(da);
            }
        }
        return;
      }
      case RecoveryStage::SubtreeReverify:
        // Widest hammer: counter/derivative lines plus the whole MAC
        // cache, forcing a full re-walk of the authentication subtree.
        dropCleanMetadata(data_addr);
        return;
    }
}

AccessTiming
SecureMemoryController::runRecovery(Addr addr, AccessTiming timing,
                                    Block64 *out)
{
    const Addr base = blockBase(addr);
    unsigned tries = 0;
    unsigned escalations = 0;
    Tick backoff_total = 0;
    RecoveryStage stage = RecoveryStage::None;

    while (!timing.authOk && tries < recovery_.maxRetries) {
        RecoveryStage next = stage == RecoveryStage::None
                                 ? initialStageFor(cur_.check)
                                 : stage;
        if (stage != RecoveryStage::None &&
            stage != RecoveryStage::SubtreeReverify) {
            next = stage == RecoveryStage::LineRefetch
                       ? RecoveryStage::CounterRefetch
                       : RecoveryStage::SubtreeReverify;
        }
        if (stage != RecoveryStage::None && next != stage) {
            ++escalations;
            stats_.counter("recovery_escalations").inc();
        }
        stage = next;
        ++tries;
        stats_.counter("tamper_retries").inc();

        // Exponential cycle backoff before re-issuing: transient bus /
        // DRAM glitches are time-correlated, so spacing the retries
        // raises the odds of reading past the disturbance.
        Tick backoff = recovery_.backoffBase << (tries - 1);
        if (backoff > recovery_.backoffCap || backoff < recovery_.backoffBase)
            backoff = recovery_.backoffCap;
        backoff_total += backoff;
        stats_.counter("recovery_backoff_ticks").inc(backoff);

        applyRecoveryStage(stage, base);
        if (trace_) {
            trace_->instant("recovery", toString(stage), timing.authDone,
                            {{"addr", base},
                             {"try", tries},
                             {"backoff", backoff}});
        }
        timing = readBlockImpl(addr, timing.authDone + backoff, out);
    }

    stats_.logHistogram("recovery_retries").record(tries);
    if (cur_.valid) {
        cur_.retries = tries;
        cur_.recovered = timing.authOk;
        cur_.recovery.retries = tries;
        cur_.recovery.escalations = escalations;
        cur_.recovery.maxStage = stage;
        cur_.recovery.backoffTicks = backoff_total;
        cur_.recovery.recovered = timing.authOk;
    }
    if (!timing.authOk) {
        stats_.counter("recovery_exhausted").inc();
        SECMEM_WARN("recovery budget exhausted for block %#llx after %u "
                    "retries (deepest stage: %s)",
                    static_cast<unsigned long long>(base), tries,
                    toString(stage));
        if (policy_ == TamperPolicy::Quarantine) {
            quarantineBlock(base, timing.authDone);
            cur_.recovery.quarantined = true;
        }
    }
    return timing;
}

void
SecureMemoryController::quarantineBlock(Addr base, Tick now)
{
    if (!quarantine_.emplace(base, now).second)
        return;
    stats_.counter("quarantines").inc();
    SECMEM_WARN("quarantining block %#llx (%zu blocks quarantined)",
                static_cast<unsigned long long>(base), quarantine_.size());
    if (trace_) {
        trace_->instant("recovery", "quarantine", now,
                        {{"addr", base},
                         {"total", quarantine_.size()}});
    }
}

AccessTiming
SecureMemoryController::serviceQuarantined(Addr base, Tick now,
                                           bool is_write, Block64 *out)
{
    // Structured error path: no datapath work, no plaintext, no new
    // TamperReport (the exhaustion that quarantined the block already
    // filed one). The caller sees AccessStatus::Quarantined.
    if (is_write) {
        ++qBlockedWrites_;
        stats_.counter("quarantine_blocked_writes").inc();
    } else {
        ++qBlockedReads_;
        stats_.counter("quarantine_blocked_reads").inc();
        if (out)
            *out = Block64{};
    }
    lastAccessOk_ = false;
    lastStatus_ = AccessStatus::Quarantined;
    if (trace_) {
        trace_->instant("recovery", "blocked", now,
                        {{"addr", base}, {"write", is_write ? 1 : 0}});
    }
    AccessTiming timing;
    timing.dataReady = now;
    timing.authDone = now;
    timing.authOk = false;
    timing.status = AccessStatus::Quarantined;
    return timing;
}

bool
SecureMemoryController::releaseQuarantine(Addr addr)
{
    return quarantine_.erase(blockBase(addr)) != 0;
}

void
SecureMemoryController::clearQuarantine()
{
    quarantine_.clear();
}

std::uint8_t
SecureMemoryController::epochOf(Addr data_addr) const
{
    const std::uint8_t *e = blockEpoch_.find(blockBase(data_addr));
    return e ? *e : 0;
}

std::uint64_t
SecureMemoryController::dataCounter(Addr addr, const Block64 &ctr_line) const
{
    unsigned slot = map_.ctrSlotFor(addr);
    if (cfg_.enc == EncKind::CtrMono) {
        return MonoCounterBlock(cfg_.monoBits, ctr_line).counter(slot);
    }
    // Split layout (also backs GCM-only authentication).
    return SplitCounterBlock(ctr_line).counterFor(slot);
}

Block64
SecureMemoryController::encryptData(Addr addr, const Block64 &pt,
                                    std::uint64_t ctr,
                                    std::uint8_t epoch) const
{
    SECMEM_PROF(Crypto);
    switch (cfg_.enc) {
      case EncKind::None:
        return pt;
      case EncKind::Direct: {
        // Direct AES (XOM-style): each 16-byte chunk through the block
        // cipher. No counters; spatial uniqueness only via the data.
        Block64 ct;
        for (unsigned c = 0; c < kChunksPerBlock; ++c)
            ct.setChunk(c, dataAes_.encrypt(pt.chunk(c)));
        return ct;
      }
      default:
        return ctrCrypt(dataAes_, pt, blockBase(addr), ctr,
                        static_cast<std::uint8_t>(cfg_.eivByte ^ epoch));
    }
}

Block64
SecureMemoryController::decryptData(Addr addr, const Block64 &ct,
                                    std::uint64_t ctr,
                                    std::uint8_t epoch) const
{
    SECMEM_PROF(Crypto);
    switch (cfg_.enc) {
      case EncKind::None:
        return ct;
      case EncKind::Direct: {
        Block64 pt;
        for (unsigned c = 0; c < kChunksPerBlock; ++c)
            pt.setChunk(c, dataAes_.decrypt(ct.chunk(c)));
        return pt;
      }
      default:
        return ctrCrypt(dataAes_, ct, blockBase(addr), ctr,
                        static_cast<std::uint8_t>(cfg_.eivByte ^ epoch));
    }
}

// --------------------------------------------------------------------------
// Tag plumbing
// --------------------------------------------------------------------------

Block16
SecureMemoryController::nodeTag(const NodeRef &node, const Block64 &content,
                                std::uint64_t counter,
                                std::uint8_t epoch) const
{
    SECMEM_PROF(Crypto);
    if (cfg_.auth == AuthKind::Gcm) {
        // GHASH absorbs the 4 ciphertext chunks plus the length block.
        ghashChunksStat_.inc(kChunksPerBlock + 1);
        return clipTag(
            gcmBlockTag(dataAes_, hashTable_, content, node.addr, counter,
                        static_cast<std::uint8_t>(cfg_.aivByte ^ epoch)),
            cfg_.macBits);
    }
    sha1BlocksStat_.inc();
    return clipTag(sha1BlockTag(cfg_.macKey, content, node.addr, counter,
                                epoch),
                   cfg_.macBits);
}

TagLocation
SecureMemoryController::tagLocationOf(const NodeRef &node) const
{
    switch (node.kind) {
      case NodeKind::Data:
        return map_.tagOfLeaf(map_.leafIndexOfData(node.addr));
      case NodeKind::CtrBlock:
        return map_.tagOfLeaf(map_.leafIndexOfCtrBlock(node.addr));
      case NodeKind::MacBlock:
        return map_.tagOfMacBlock(node.level, node.index);
    }
    SECMEM_PANIC("bad node kind");
}

Block16
SecureMemoryController::readTagSlot(const TagLocation &loc) const
{
    const Block64 *blk;
    if (loc.pinned) {
        blk = &pinnedTop_;
    } else if (const Block64 *line = macCache_.peek(loc.blockAddr)) {
        blk = line;
    } else {
        static thread_local Block64 tmp;
        tmp = dram_.readBlock(loc.blockAddr);
        blk = &tmp;
    }
    Block16 tag{};
    unsigned bytes = map_.macSlotBytes();
    unsigned off = map_.macSlotOffset(loc.slot);
    for (unsigned i = 0; i < bytes; ++i)
        tag.b[i] = blk->b[off + i];
    return tag;
}

void
SecureMemoryController::writeTagSlot(const TagLocation &loc,
                                     const Block16 &tag)
{
    unsigned bytes = map_.macSlotBytes();
    unsigned off = map_.macSlotOffset(loc.slot);
    if (loc.pinned) {
        for (unsigned i = 0; i < bytes; ++i)
            pinnedTop_.b[off + i] = tag.b[i];
        return;
    }
    Block64 *line = macCache_.peek(loc.blockAddr);
    SECMEM_ASSERT(line, "writeTagSlot: MAC block %llx not on-chip",
                  static_cast<unsigned long long>(loc.blockAddr));
    for (unsigned i = 0; i < bytes; ++i)
        line->b[off + i] = tag.b[i];
    macCache_.markDirty(loc.blockAddr);
}

std::uint64_t
SecureMemoryController::macEmbeddedCtr(const Block64 &blk)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(blk.b[i]) << (8 * i);
    return v;
}

void
SecureMemoryController::setMacEmbeddedCtr(Block64 &blk, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        blk.b[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

Tick
SecureMemoryController::derivHintReady(Addr mac_addr, std::uint64_t actual,
                                       Tick early, Tick arrive)
{
    DerivHint &slot =
        derivHints_[(mac_addr >> log2i(kBlockBytes)) % derivHints_.size()];
    bool hit = slot.addr == mac_addr && slot.value == actual;
    stats_.counter(hit ? "derivhint_hits" : "derivhint_misses").inc();
    slot.addr = mac_addr;
    slot.value = actual;
    return hit ? early : arrive;
}

void
SecureMemoryController::derivHintUpdate(Addr mac_addr, std::uint64_t value)
{
    DerivHint &slot =
        derivHints_[(mac_addr >> log2i(kBlockBytes)) % derivHints_.size()];
    slot.addr = mac_addr;
    slot.value = value;
}

void
SecureMemoryController::functionalTagStore(const TagLocation &loc,
                                           const Block16 &tag)
{
    unsigned bytes = map_.macSlotBytes();
    unsigned off = map_.macSlotOffset(loc.slot);
    if (loc.pinned) {
        for (unsigned i = 0; i < bytes; ++i)
            pinnedTop_.b[off + i] = tag.b[i];
        return;
    }
    if (Block64 *line = macCache_.peek(loc.blockAddr)) {
        for (unsigned i = 0; i < bytes; ++i)
            line->b[off + i] = tag.b[i];
        macCache_.markDirty(loc.blockAddr);
        return;
    }
    // Straight-to-DRAM store: the containing MAC block's own tag must
    // be refreshed so later fetches still verify. The refresh is
    // unconditional — a block holding any tag is itself part of the
    // tree from that moment, otherwise an attacker could replay the
    // whole block and silently roll back every tag it holds.
    Block64 blk = dram_.peekBlock(loc.blockAddr);
    for (unsigned i = 0; i < bytes; ++i)
        blk.b[off + i] = tag.b[i];
    dram_.writeBlock(loc.blockAddr, blk);
    auto [level, idx] = map_.macLevelOf(loc.blockAddr);
    NodeRef node{NodeKind::MacBlock, loc.blockAddr, level, idx};
    std::uint64_t deriv = cfg_.auth == AuthKind::Gcm ? macEmbeddedCtr(blk) : 0;
    functionalTagStore(tagLocationOf(node), nodeTag(node, blk, deriv, 0));
    hasTag_.insert(loc.blockAddr);
}

// --------------------------------------------------------------------------
// Derivative counters
// --------------------------------------------------------------------------

SecureMemoryController::DerivAccess
SecureMemoryController::getDerivCtr(std::uint64_t deriv_idx, Tick now)
{
    Addr addr = map_.derivCtrBlockAddr(deriv_idx);
    unsigned slot = map_.derivSlot(deriv_idx);
    Block64 *line = derivCache_.access(addr, false);
    Tick ready = now;
    if (line) {
        auto it = inflight_.find(addr);
        if (it != inflight_.end()) {
            if (it->second > now) {
                ready = it->second;
                derivHalfmissStat_.inc();
            } else {
                inflight_.erase(it);
            }
        }
    } else {
        // Unauthenticated fetch: derivative counters are not tree leaves
        // (tampering them is detectable denial-of-service only).
        derivFetchesStat_.inc();
        Block64 raw = dram_.readBlock(addr);
        ready = channel_.readBlockTiming(now);
        Eviction ev = derivCache_.insert(addr, raw, false);
        if (ev.valid && ev.dirty) {
            dram_.writeBlock(ev.addr, ev.data);
            channel_.writeBlockTiming(now);
        }
        inflight_[addr] = ready;
        inflightStat_.set(inflight_.size());
        line = derivCache_.peek(addr);
    }
    return {ready, MonoCounterBlock(64, *line).counter(slot)};
}

void
SecureMemoryController::bumpDerivCtr(std::uint64_t deriv_idx, Tick now)
{
    DerivAccess acc = getDerivCtr(deriv_idx, now);
    Addr addr = map_.derivCtrBlockAddr(deriv_idx);
    Block64 *line = derivCache_.peek(addr);
    SECMEM_ASSERT(line, "derivative counter block vanished");
    MonoCounterBlock view(64, *line);
    view.setCounter(map_.derivSlot(deriv_idx), acc.value + 1);
    *line = view.raw();
    derivCache_.markDirty(addr);
}

// --------------------------------------------------------------------------
// Authentication walk (paper Section 3)
// --------------------------------------------------------------------------

Tick
SecureMemoryController::authenticateFetched(const NodeRef &node,
                                            const Block64 &content,
                                            std::uint64_t leaf_counter,
                                            std::uint8_t leaf_epoch,
                                            Tick issue, Tick arrive,
                                            Tick counter_ready, bool *ok)
{
    SECMEM_PROF(MerkleVerify);
    const bool gcm = cfg_.auth == AuthKind::Gcm;

    // Functional check of the node itself against its stored tag.
    if (hasTag_.count(node.addr)) {
        Block16 expect = readTagSlot(tagLocationOf(node));
        Block16 got = nodeTag(node, content, leaf_counter, leaf_epoch);
        if (!(got == expect)) {
            noteTamper(node.kind == NodeKind::Data ? TamperCheck::LeafTag
                       : node.kind == NodeKind::CtrBlock
                           ? TamperCheck::CounterAuth
                           : TamperCheck::TreeNode,
                       node.kind == NodeKind::MacBlock ? node.level : 0,
                       node.addr);
            stats_.counter(node.kind == NodeKind::Data ? "auth_fail_data"
                           : node.kind == NodeKind::CtrBlock
                               ? "auth_fail_ctr"
                               : "auth_fail_mac")
                .inc();
            if (authTraceEnabled()) {
                SECMEM_WARN("auth fail: node kind=%d addr=%llx level=%u "
                            "ctr=%llu epoch=%u depth=%u",
                            static_cast<int>(node.kind),
                            static_cast<unsigned long long>(node.addr),
                            node.level,
                            static_cast<unsigned long long>(leaf_counter),
                            leaf_epoch, updateDepth_);
            }
            if (ok)
                *ok = false;
        }
    }

    // Timing for the node's own hash + pad.
    Tick below_hash = gcm ? arrive + kGhashBlockCycles : sha_.schedule(arrive);
    Tick below_pad = gcm ? aes_.schedule(counter_ready) : 0;

    Tick auth_done = 0;
    Tick fetch_gate = issue; // sequential mode: next fetch waits for verify
    unsigned levels_walked = 0;

    NodeRef below = node;
    while (true) {
        TagLocation loc = tagLocationOf(below);
        ++levels_walked;

        Tick content_ready;
        bool terminal;
        Block64 raw; // the bits as fetched off the bus
        if (loc.pinned) {
            content_ready = issue;
            terminal = true;
        } else if (Block64 *line = macCache_.access(loc.blockAddr, false)) {
            (void)line;
            content_ready = issue;
            auto it = inflight_.find(loc.blockAddr);
            if (it != inflight_.end() && it->second > issue)
                content_ready = it->second;
            terminal = true;
        } else {
            // Fetch the missing MAC block. Verification below uses
            // `raw` — the content as fetched — because nested eviction
            // write-backs may legitimately update the cached copy
            // before we get to the check; its stored tag corresponds
            // to the fetched bits.
            macFetchesStat_.inc();
            Tick fetch_issue = cfg_.treeParallel ? issue : fetch_gate;
            content_ready = channel_.readBlockTiming(fetch_issue);
            raw = dram_.readBlock(loc.blockAddr);
            Eviction ev = macCache_.insert(loc.blockAddr, raw, false);
            if (ev.valid && ev.dirty)
                writebackMacBlock(ev.addr, ev.data, issue);
            inflight_[loc.blockAddr] = content_ready;
            inflightStat_.set(inflight_.size());
            terminal = false;
        }

        // Verify `below` against the tag stored in this level.
        Tick verify =
            std::max({below_hash, below_pad, content_ready}) + kCompareCycle;
        auth_done = std::max(auth_done, verify);
        fetch_gate = verify;

        if (terminal)
            break;

        // This level's block becomes the next `below`: functional check
        // plus hash/pad timing for its own verification.
        auto [level, idx] = map_.macLevelOf(loc.blockAddr);
        NodeRef mac{NodeKind::MacBlock, loc.blockAddr, level, idx};

        std::uint64_t deriv_val = 0;
        Tick deriv_ready = content_ready;
        if (gcm) {
            // Embedded derivative counter: value travels with the
            // block; the hint table lets the pad start early.
            deriv_val = macEmbeddedCtr(raw);
            deriv_ready =
                derivHintReady(loc.blockAddr, deriv_val,
                               cfg_.treeParallel ? issue : fetch_gate,
                               content_ready);
        }

        if (hasTag_.count(loc.blockAddr)) {
            Block16 expect = readTagSlot(tagLocationOf(mac));
            Block16 got = nodeTag(mac, raw, deriv_val, 0);
            if (!(got == expect)) {
                noteTamper(TamperCheck::TreeNode, level, loc.blockAddr);
                stats_.counter("auth_fail_walkmac").inc();
                if (authTraceEnabled()) {
                    SECMEM_WARN("auth fail: walk mac addr=%llx level=%u "
                                "deriv=%llu depth=%u",
                                static_cast<unsigned long long>(
                                    loc.blockAddr),
                                level,
                                static_cast<unsigned long long>(deriv_val),
                                updateDepth_);
                }
                if (ok)
                    *ok = false;
            }
        }

        below_hash = gcm ? content_ready + kGhashBlockCycles
                         : sha_.schedule(content_ready);
        below_pad = gcm ? aes_.schedule(deriv_ready) : 0;
        below = mac;
    }

    authWalkLevelsStat_.record(
        static_cast<double>(levels_walked));
    if (trace_) {
        trace_->complete("auth", "merkle_walk", issue, auth_done,
                         {{"addr", node.addr}, {"levels", levels_walked}});
    }
    return auth_done;
}

// --------------------------------------------------------------------------
// MAC block residency and write-back
// --------------------------------------------------------------------------

SecureMemoryController::MacAccess
SecureMemoryController::getMacBlock(const TagLocation &loc, Tick now,
                                    bool for_write, bool authenticate)
{
    MacAccess acc;
    if (loc.pinned) {
        acc.line = &pinnedTop_;
        acc.ready = now;
        acc.authDone = now;
        acc.hit = true;
        return acc;
    }
    if (Block64 *line = macCache_.access(loc.blockAddr, for_write)) {
        acc.line = line;
        acc.ready = now;
        auto it = inflight_.find(loc.blockAddr);
        if (it != inflight_.end() && it->second > now)
            acc.ready = it->second;
        acc.authDone = acc.ready;
        acc.hit = true;
        return acc;
    }

    macFetchesStat_.inc();
    Block64 raw = dram_.readBlock(loc.blockAddr);
    Tick arrive = channel_.readBlockTiming(now);
    acc.ready = arrive;
    acc.authDone = arrive;
    if (authenticate && cfg_.auth != AuthKind::None &&
        updateDepth_ < kMaxUpdateDepth) {
        auto [level, idx] = map_.macLevelOf(loc.blockAddr);
        NodeRef mac{NodeKind::MacBlock, loc.blockAddr, level, idx};
        std::uint64_t deriv_val = 0;
        Tick deriv_ready = now;
        if (cfg_.auth == AuthKind::Gcm) {
            deriv_val = macEmbeddedCtr(raw);
            deriv_ready =
                derivHintReady(loc.blockAddr, deriv_val, now, arrive);
        }
        ++updateDepth_;
        acc.authDone = authenticateFetched(mac, raw, deriv_val, 0, now,
                                           arrive, deriv_ready, nullptr);
        --updateDepth_;
    }
    // The authentication walk above may itself have brought this block
    // on-chip (via a cascaded eviction's tag update); never overwrite
    // that fresher copy with our stale fetch.
    if (Block64 *resident = macCache_.peek(loc.blockAddr)) {
        acc.line = resident;
        if (for_write)
            macCache_.access(loc.blockAddr, true);
        return acc;
    }
    Eviction ev = macCache_.insert(loc.blockAddr, raw, false);
    if (ev.valid && ev.dirty)
        writebackMacBlock(ev.addr, ev.data, now);
    inflight_[loc.blockAddr] = arrive;
    inflightStat_.set(inflight_.size());
    acc.line = macCache_.peek(loc.blockAddr);
    if (!acc.line) {
        // A cascaded eviction displaced the block we just inserted
        // (possible under deep tree-update recursion); re-insert it.
        Eviction ev2 = macCache_.insert(loc.blockAddr, raw, false);
        if (ev2.valid && ev2.dirty)
            writebackMacBlock(ev2.addr, ev2.data, now);
        acc.line = macCache_.peek(loc.blockAddr);
        SECMEM_ASSERT(acc.line, "MAC block could not be pinned on-chip");
    }
    return acc;
}

void
SecureMemoryController::writebackMacBlock(Addr mac_addr, const Block64 &data,
                                          Tick now)
{
    // The functional update is atomic: DRAM first, then the parent tag
    // through functionalTagStore (which touches the cached parent copy
    // if present and otherwise cascades through DRAM). Re-entrant
    // getMacBlock recursion here is forbidden — it can re-fetch this
    // very block mid-write-back and fork divergent copies.
    writebackMacContent(mac_addr, data, now);
    writebackMacTag(mac_addr, now);
}

void
SecureMemoryController::writebackMacContent(Addr mac_addr,
                                            const Block64 &data, Tick now)
{
    macWritebacksStat_.inc();

    // Bump the embedded derivative counter so the GCM pad for this
    // block's new tag is fresh (GMAC nonce-reuse would be fatal).
    Block64 content = data;
    if (cfg_.auth == AuthKind::Gcm) {
        std::uint64_t deriv_val = macEmbeddedCtr(content) + 1;
        setMacEmbeddedCtr(content, deriv_val);
        derivHintUpdate(mac_addr, deriv_val);
    }
    dram_.writeBlock(mac_addr, content);
    channel_.writeBlockTiming(now);
}

void
SecureMemoryController::writebackMacTag(Addr mac_addr, Tick now)
{
    auto [level, idx] = map_.macLevelOf(mac_addr);
    NodeRef node{NodeKind::MacBlock, mac_addr, level, idx};

    // Compute the tag over the block's current DRAM bits rather than
    // the caller's copy: during a whole-cache flush a sibling's tag
    // cascade may have stored new slots into this block meanwhile.
    Block64 content = dram_.peekBlock(mac_addr);
    std::uint64_t deriv_val =
        cfg_.auth == AuthKind::Gcm ? macEmbeddedCtr(content) : 0;
    Block16 tag = nodeTag(node, content, deriv_val, 0);
    TagLocation loc = tagLocationOf(node);
    functionalTagStore(loc, tag);
    hasTag_.insert(mac_addr);

    // Timing: the tag computation, and (when the parent is off-chip)
    // an update-no-allocate fetch of the parent.
    if (!loc.pinned && !macCache_.contains(loc.blockAddr)) {
        macUpdateFetchesStat_.inc();
        channel_.readBlockTiming(now);
    }
    if (cfg_.auth == AuthKind::Gcm)
        aes_.scheduleBackground(now);
    else
        sha_.scheduleBackground(now);
}

void
SecureMemoryController::writebackCtrBlock(Addr ctr_addr, const Block64 &data,
                                          Tick now)
{
    ctrWritebacksStat_.inc();
    dram_.writeBlock(ctr_addr, data);
    if (cfg_.auth != AuthKind::None && cfg_.authenticateCounters) {
        NodeRef node{NodeKind::CtrBlock, ctr_addr, 0, 0};
        std::uint64_t deriv_val = 0;
        if (cfg_.auth == AuthKind::Gcm) {
            std::uint64_t di = map_.derivIdxOfCtrBlock(ctr_addr);
            bumpDerivCtr(di, now);
            deriv_val = getDerivCtr(di, now).value;
        }
        Block16 tag = nodeTag(node, data, deriv_val, 0);
        TagLocation loc = tagLocationOf(node);
        // Atomic functional update; see writebackMacBlock for why the
        // getMacBlock recursion must be avoided here.
        functionalTagStore(loc, tag);
        hasTag_.insert(ctr_addr);
        if (!loc.pinned && !macCache_.contains(loc.blockAddr)) {
            macUpdateFetchesStat_.inc();
            channel_.readBlockTiming(now);
        }
        if (cfg_.auth == AuthKind::Gcm)
            aes_.scheduleBackground(now);
        else
            sha_.scheduleBackground(now);
    }
    channel_.writeBlockTiming(now);
}

void
SecureMemoryController::writebackMetaBlock(Addr addr, const Block64 &data,
                                           Tick now)
{
    if (map_.isCtr(addr)) {
        writebackCtrBlock(addr, data, now);
    } else if (map_.isMac(addr)) {
        writebackMacBlock(addr, data, now);
    } else if (map_.isDerivCtr(addr)) {
        dram_.writeBlock(addr, data);
        channel_.writeBlockTiming(now);
    } else {
        SECMEM_PANIC("unexpected metadata write-back at %llx",
                     static_cast<unsigned long long>(addr));
    }
}

Tick
SecureMemoryController::updateLeafTag(const NodeRef &node,
                                      const Block64 &content,
                                      std::uint64_t counter, Tick now,
                                      Tick content_ready)
{
    Block16 tag = nodeTag(node, content, counter,
                          node.kind == NodeKind::Data ? epochOf(node.addr)
                                                      : 0);
    TagLocation loc = tagLocationOf(node);
    MacAccess parent = getMacBlock(loc, now, true, true);
    writeTagSlot(loc, tag);
    hasTag_.insert(node.addr);

    Tick tag_done;
    if (cfg_.auth == AuthKind::Gcm) {
        Tick pad = aes_.scheduleBackground(now);
        tag_done = std::max(content_ready + kGhashBlockCycles, pad) +
                   kCompareCycle;
    } else {
        tag_done = sha_.scheduleBackground(content_ready);
    }
    return std::max(tag_done, parent.ready);
}

// --------------------------------------------------------------------------
// Counter block access
// --------------------------------------------------------------------------

SecureMemoryController::CtrAccess
SecureMemoryController::getCtrBlock(Addr ctr_addr, Tick now, bool for_write)
{
    CtrAccess acc;
    if (Block64 *line = ctrCache_.access(ctr_addr, for_write)) {
        acc.line = line;
        acc.ready = now;
        auto it = inflight_.find(ctr_addr);
        if (it != inflight_.end()) {
            if (it->second > now) {
                acc.ready = it->second;
                acc.halfMiss = true;
                ctrHalfmissStat_.inc();
            } else {
                inflight_.erase(it);
            }
        }
        acc.authDone = acc.ready;
        acc.hit = !acc.halfMiss;
        if (trace_) {
            trace_->instant("ctr", acc.halfMiss ? "ctr_halfmiss" : "ctr_hit",
                            now, {{"addr", ctr_addr}});
        }
        return acc;
    }

    ctrFetchesStat_.inc();
    Block64 raw = dram_.readBlock(ctr_addr);
    Tick arrive = channel_.readBlockTiming(now);
    ctrMissPenaltyStat_
        .record(arrive > now ? arrive - now : 0);
    acc.ready = arrive;
    acc.authDone = arrive;

    if (cfg_.auth != AuthKind::None && cfg_.authenticateCounters) {
        NodeRef node{NodeKind::CtrBlock, ctr_addr, 0, 0};
        std::uint64_t deriv_val = 0;
        Tick deriv_ready = now;
        if (cfg_.auth == AuthKind::Gcm) {
            DerivAccess d = getDerivCtr(map_.derivIdxOfCtrBlock(ctr_addr),
                                        now);
            deriv_val = d.value;
            deriv_ready = d.ready;
        }
        bool ok = true;
        acc.authDone = authenticateFetched(node, raw, deriv_val, 0, now,
                                           arrive, deriv_ready, &ok);
        acc.authOk = ok;
    }

    Eviction ev = ctrCache_.insert(ctr_addr, raw, for_write);
    if (ev.valid && ev.dirty)
        writebackMetaBlock(ev.addr, ev.data, now);
    inflight_[ctr_addr] = arrive;
    inflightStat_.set(inflight_.size());
    acc.line = ctrCache_.peek(ctr_addr);
    if (trace_)
        trace_->complete("ctr", "ctr_fetch", now, arrive, {{"addr", ctr_addr}});
    return acc;
}

// --------------------------------------------------------------------------
// Lazy formatting
// --------------------------------------------------------------------------

void
SecureMemoryController::ensureDataInit(Addr addr)
{
    Addr base = blockBase(addr);
    if (initialized_.count(base))
        return;
    initialized_.insert(base);

    // Zero-fill, encrypted under the block's initial counter. All at
    // zero simulated cost: this models boot-time formatting.
    std::uint64_t ctr = 0;
    if (cfg_.usesCounterCache()) {
        Addr ca = map_.ctrBlockAddrFor(base);
        const Block64 *line = ctrCache_.peek(ca);
        Block64 raw = line ? *line : dram_.readBlock(ca);
        ctr = dataCounter(base, raw);
    } else if (cfg_.enc == EncKind::CtrPred) {
        ctr = predCtr_[base];
    }
    Block64 ct = encryptData(base, Block64{}, ctr, 0);
    dram_.writeBlock(base, ct);

    if (cfg_.auth != AuthKind::None) {
        NodeRef node{NodeKind::Data, base, 0, 0};
        functionalTagStore(tagLocationOf(node), nodeTag(node, ct, ctr, 0));
        hasTag_.insert(base);
    }
}

// --------------------------------------------------------------------------
// RSR page re-encryption (paper Section 4.2)
// --------------------------------------------------------------------------

Tick
SecureMemoryController::rsrWaitFor(Addr data_addr, Tick now)
{
    if (cfg_.enc != EncKind::CtrSplit && cfg_.auth != AuthKind::Gcm)
        return 0;
    Addr base = blockBase(data_addr);
    for (Rsr &rsr : rsrs_) {
        if (!rsr.valid)
            continue;
        if (now >= rsr.freeAt) {
            rsr.valid = false;
            continue;
        }
        if (base >= rsr.page && base < rsr.page + kPageBytes) {
            unsigned j = static_cast<unsigned>((base - rsr.page) /
                                               kBlockBytes);
            if (rsr.blockReady[j] > now)
                return rsr.blockReady[j];
        }
    }
    return 0;
}

Tick
SecureMemoryController::triggerPageReenc(Addr ctr_addr, Tick now)
{
    Addr page = map_.firstDataBlockOf(ctr_addr);
    Tick start = now;

    // Stall on a re-encryption already active for this page, and on RSR
    // exhaustion (paper: both handled by stalling the write-back).
    unsigned active = 0;
    Rsr *free_rsr = nullptr;
    Tick earliest_free = kTickNever;
    for (Rsr &rsr : rsrs_) {
        if (rsr.valid && start >= rsr.freeAt)
            rsr.valid = false;
        if (rsr.valid) {
            ++active;
            earliest_free = std::min(earliest_free, rsr.freeAt);
            if (rsr.page == page) {
                start = std::max(start, rsr.freeAt);
                stats_.counter("reenc_page_conflicts").inc();
                rsr.valid = false;
            }
        } else if (!free_rsr) {
            free_rsr = &rsr;
        }
    }
    if (!free_rsr) {
        start = std::max(start, earliest_free);
        stats_.counter("reenc_rsr_stalls").inc();
        for (Rsr &rsr : rsrs_) {
            if (rsr.valid && rsr.freeAt <= start) {
                rsr.valid = false;
                free_rsr = &rsr;
                break;
            }
        }
        SECMEM_ASSERT(free_rsr, "RSR accounting bug");
    }

    ++pageReencs_;
    stats_.counter("page_reencs").inc();
    stats_.sample("reenc_concurrent").record(static_cast<double>(active));

    Block64 *line = ctrCache_.peek(ctr_addr);
    SECMEM_ASSERT(line, "re-encryption without resident counter block");
    SplitCounterBlock cb(*line);
    std::uint64_t old_major = cb.major();
    std::uint64_t new_major = old_major + 1;

    unsigned onchip = 0, offchip = 0;
    Tick last_done = start;
    std::vector<Tick> block_ready(kBlocksPerPage, start);
    std::vector<Addr> lazy_blocks;

    for (unsigned j = 0; j < kBlocksPerPage; ++j) {
        Addr a = page + static_cast<Addr>(j) * kBlockBytes;
        if (!initialized_.count(a))
            continue;
        unsigned old_minor = cb.minor(j);
        if (l2_ && l2_->cacheContains(a)) {
            // Lazy path: the cached copy is simply marked dirty; its
            // natural write-back re-encrypts it under the new major.
            ++onchip;
            l2_->cacheMarkDirty(a);
            if (shadow_)
                lazy_blocks.push_back(a);
            continue;
        }
        ++offchip;
        std::uint64_t old_ctr =
            (old_major << kMinorBits) | old_minor;
        std::uint64_t new_ctr = new_major << kMinorBits;
        Block64 ct_old = dram_.readBlock(a);
        Block64 pt = decryptData(a, ct_old, old_ctr, epochOf(a));
        Block64 ct_new = encryptData(a, pt, new_ctr, epoch_);
        dram_.writeBlock(a, ct_new);
        blockEpoch_[a] = epoch_;

        // Timing: fetch, two pad bursts (decrypt + re-encrypt), write.
        Tick arr = channel_.readBlockTiming(start);
        Tick pad_old = aes_.scheduleBackgroundBurst(start, kChunksPerBlock);
        Tick pad_new = aes_.scheduleBackgroundBurst(start, kChunksPerBlock);
        Tick pt_ready = std::max(arr, pad_old) + 1;
        Tick ct_ready = std::max(pt_ready, pad_new) + 1;
        Tick done = channel_.writeBlockTiming(ct_ready);
        block_ready[j] = pt_ready;
        last_done = std::max(last_done, done);

        if (cfg_.auth != AuthKind::None) {
            NodeRef node{NodeKind::Data, a, 0, 0};
            Tick tag_done =
                updateLeafTag(node, ct_new, new_ctr, start, ct_ready);
            last_done = std::max(last_done, tag_done);
        }
    }

    cb.setMajor(new_major);
    cb.clearMinors();
    *line = cb.raw();
    ctrCache_.markDirty(ctr_addr);

    stats_.counter("reenc_onchip_blocks").inc(onchip);
    stats_.counter("reenc_offchip_blocks").inc(offchip);
    stats_.sample("reenc_duration").record(
        static_cast<double>(last_done - start));

    free_rsr->valid = true;
    free_rsr->page = page;
    free_rsr->freeAt = last_done;
    free_rsr->blockReady = std::move(block_ready);
    if (shadow_) {
        SECMEM_PROF(ShadowOracle);
        // Record only; the enclosing write's shadow event validates and
        // applies the re-encryption once the counter block settles.
        shadow_->onPageReenc(ctr_addr, new_major, std::move(lazy_blocks));
    }
    if (trace_) {
        trace_->complete("reenc", "page_reenc", start, last_done,
                         {{"page", page},
                          {"onchip", onchip},
                          {"offchip", offchip}});
    }
    return start;
}

// --------------------------------------------------------------------------
// Counter prediction (Shi et al. [16])
// --------------------------------------------------------------------------

SecureMemoryController::PredResult
SecureMemoryController::predictPads(Addr addr, std::uint64_t actual_ctr,
                                    Tick now)
{
    Addr page = addr & ~static_cast<Addr>(kPageBytes - 1);
    std::uint64_t base = predBase_[page];
    bool hit = actual_ctr >= base && actual_ctr < base + cfg_.predDepth;
    predTotalStat_.inc();
    if (authTraceEnabled()) {
        SECMEM_WARN("pred addr=%llx actual=%llu base=%llu hit=%d",
                    (unsigned long long)addr, (unsigned long long)actual_ctr,
                    (unsigned long long)base, (int)hit);
    }

    // N speculative pad bursts issue immediately (the N-fold AES
    // bandwidth cost the paper points out).
    Tick pad_ready = kTickNever;
    for (unsigned i = 0; i < cfg_.predDepth; ++i) {
        Tick done = aes_.scheduleBurst(now, kChunksPerBlock);
        if (hit && base + i == actual_ctr)
            pad_ready = done;
    }
    if (hit)
        predHitsStat_.inc();
    return {pad_ready, hit};
}

// --------------------------------------------------------------------------
// Main datapath
// --------------------------------------------------------------------------

AccessTiming
SecureMemoryController::readBlock(Addr addr, Tick now, Block64 *out)
{
    SECMEM_ASSERT(!halted_,
                  "secure memory controller halted by tamper policy");
    if (isQuarantined(addr))
        return serviceQuarantined(blockBase(addr), now, false, out);
    // The oracle cross-checks the decrypted plaintext even when the
    // caller does not ask for it.
    Block64 shadow_pt;
    if (shadow_ && !out)
        out = &shadow_pt;
    beginAccess(addr, now, false);
    AccessTiming timing = readBlockImpl(addr, now, out);

    // A failed verification may stem from a transient fetch fault
    // rather than persistent tampering: run the bounded recovery state
    // machine (retry + backoff + escalation; see core/tamper.hh).
    if (!timing.authOk && recoveryEnabled())
        timing = runRecovery(addr, timing, out);
    if (cur_.valid && timing.authOk)
        stats_.counter("tamper_recoveries").inc();
    timing.status =
        timing.authOk ? AccessStatus::Ok : AccessStatus::AuthFailed;
    lastStatus_ = timing.status;
    finishAccess(timing.authOk, timing.authDone);
    readLatencyStat_
        .record(timing.dataReady > now ? timing.dataReady - now : 0);
    if (shadow_) {
        SECMEM_PROF(ShadowOracle);
        // Only clean accesses are shadow-checked: tamper campaigns
        // exercise the detection machinery, not the oracle.
        if (lastAccessOk_) {
            CtrlShadowView view(*this);
            shadow_->onRead(view, blockBase(addr), *out);
        } else {
            shadow_->dropPending();
        }
    }
    if (trace_) {
        trace_->complete("mem", "read", now, timing.dataReady,
                         {{"addr", blockBase(addr)},
                          {"auth_done", timing.authDone},
                          {"auth_ok", timing.authOk ? 1 : 0}});
    }
    return timing;
}

AccessTiming
SecureMemoryController::readBlockImpl(Addr addr, Tick now, Block64 *out)
{
    Addr base = blockBase(addr);
    ensureDataInit(base);
    readsStat_.inc();

    AccessTiming timing;
    bool ok = true;

    Tick arrive = 0;
    Block64 ct;
    std::uint64_t ctr = 0;
    Tick ctr_ready = now;
    Tick ctr_auth_done = now;

    switch (cfg_.enc) {
      case EncKind::None:
      case EncKind::Direct: {
        ct = dram_.readBlock(base);
        arrive = channel_.readBlockTiming(now);
        if (cfg_.enc == EncKind::Direct) {
            timing.dataReady =
                aes_.scheduleBurst(arrive, kChunksPerBlock);
        } else {
            timing.dataReady = arrive;
        }
        // GCM-only authentication still needs the block's counter.
        if (cfg_.auth == AuthKind::Gcm) {
            CtrAccess ca = getCtrBlock(map_.ctrBlockAddrFor(base), now,
                                       false);
            ctr = dataCounter(base, *ca.line);
            ctr_ready = ca.ready;
            ctr_auth_done = ca.authDone;
            ok = ok && ca.authOk;
        }
        if (out)
            *out = decryptData(base, ct, ctr, epochOf(base));
        break;
      }
      case EncKind::CtrMono:
      case EncKind::CtrSplit: {
        CtrAccess ca = getCtrBlock(map_.ctrBlockAddrFor(base), now, false);
        ctr = dataCounter(base, *ca.line);
        ctr_ready = ca.ready;
        ctr_auth_done = ca.authDone;
        ok = ok && ca.authOk;
        ct = dram_.readBlock(base);
        arrive = channel_.readBlockTiming(now);
        Tick pad = aes_.scheduleBurst(ctr_ready, kChunksPerBlock);
        padTotalStat_.inc();
        if (pad <= arrive)
            padTimelyStat_.inc();
        if (trace_) {
            // Pad generation vs. data fetch overlap: timely == the pad
            // was ready when the ciphertext arrived (latency hidden).
            trace_->complete("gcm", "pad_gen", ctr_ready, pad,
                             {{"addr", base},
                              {"timely", pad <= arrive ? 1 : 0}});
        }
        timing.dataReady = std::max(arrive, pad) + 1;
        if (out)
            *out = decryptData(base, ct, ctr, epochOf(base));
        break;
      }
      case EncKind::CtrPred: {
        ctr = predCtr_[base];
        ct = dram_.readBlock(base);
        // The 64-bit counter travels with the data block (+8 bytes).
        arrive = channel_.readTiming(now, kBlockBytes + 8);
        PredResult pr = predictPads(base, ctr, now);
        Tick pad = pr.predicted ? pr.padReady
                                : aes_.scheduleBurst(arrive,
                                                     kChunksPerBlock);
        padTotalStat_.inc();
        if (pad <= arrive)
            padTimelyStat_.inc();
        if (trace_) {
            trace_->complete("gcm", "pad_gen", now, pad,
                             {{"addr", base},
                              {"timely", pad <= arrive ? 1 : 0},
                              {"predicted", pr.predicted ? 1 : 0}});
        }
        timing.dataReady = std::max(arrive, pad) + 1;
        if (out)
            *out = decryptData(base, ct, ctr, 0);
        break;
      }
    }

    // Authentication of the fetched data block plus tree walk.
    if (cfg_.auth != AuthKind::None) {
        NodeRef node{NodeKind::Data, base, 0, 0};
        Tick walk = authenticateFetched(node, ct, ctr, epochOf(base), now,
                                        arrive, ctr_ready, &ok);
        timing.authDone = std::max(walk, ctr_auth_done);
    } else {
        timing.authDone = timing.dataReady;
    }

    // Blocks inside an active re-encryption window wait for the RSR.
    Tick rsr_gate = rsrWaitFor(base, now);
    if (rsr_gate) {
        stats_.counter("rsr_read_waits").inc();
        timing.dataReady = std::max(timing.dataReady, rsr_gate);
        timing.authDone = std::max(timing.authDone, rsr_gate);
    }

    timing.authDone = std::max(timing.authDone, timing.dataReady);
    timing.authOk = ok;
    return timing;
}

Tick
SecureMemoryController::writeBlock(Addr addr, const Block64 &data, Tick now)
{
    SECMEM_ASSERT(!halted_,
                  "secure memory controller halted by tamper policy");
    if (isQuarantined(addr))
        return serviceQuarantined(blockBase(addr), now, true, nullptr)
            .dataReady;
    beginAccess(addr, now, true);
    Tick done = writeBlockImpl(addr, data, now);
    // Write-path verification failures (e.g. a rolled-back counter
    // block caught on fetch, paper §4.3) surface through the metadata
    // fetches the write performs; no refetch retry is attempted because
    // the counter increment has already been applied on-chip.
    lastStatus_ = cur_.valid ? AccessStatus::AuthFailed : AccessStatus::Ok;
    finishAccess(!cur_.valid, done);
    writeLatencyStat_
        .record(done > now ? done - now : 0);
    if (shadow_) {
        SECMEM_PROF(ShadowOracle);
        if (lastAccessOk_) {
            CtrlShadowView view(*this);
            shadow_->onWrite(view, blockBase(addr), data);
        } else {
            shadow_->dropPending();
        }
    }
    if (trace_) {
        trace_->complete("mem", "write", now, done,
                         {{"addr", blockBase(addr)}});
    }
    return done;
}

Tick
SecureMemoryController::writeBlockImpl(Addr addr, const Block64 &data,
                                       Tick now)
{
    Addr base = blockBase(addr);
    ensureDataInit(base);
    writesStat_.inc();
    ++totalWritebacks_;
    std::uint64_t &wb = wbCounts_[base];
    ++wb;
    maxBlockWritebacks_ = std::max(maxBlockWritebacks_, wb);

    Tick done = now;
    Block64 ct;
    std::uint64_t ctr = 0;
    Tick ct_ready = now;

    switch (cfg_.enc) {
      case EncKind::None: {
        if (cfg_.auth == AuthKind::Gcm) {
            // Counter still advances to keep GCM tags fresh.
            CtrAccess ca = getCtrBlock(map_.ctrBlockAddrFor(base), now,
                                       true);
            Tick t = std::max(now, ca.authDone);
            unsigned slot = map_.ctrSlotFor(base);
            SplitCounterBlock cb(*ca.line);
            if (cb.minor(slot) == SplitCounterBlock::maxMinor()) {
                t = triggerPageReenc(map_.ctrBlockAddrFor(base), t);
                cb = SplitCounterBlock(*ca.line);
            }
            cb.setMinor(slot, cb.minor(slot) + 1);
            *ca.line = cb.raw();
            ctr = cb.counterFor(slot);
            ct_ready = t;
        }
        ct = data;
        dram_.writeBlock(base, ct);
        done = channel_.writeBlockTiming(ct_ready);
        break;
      }
      case EncKind::Direct: {
        ct = encryptData(base, data, 0, epoch_);
        ct_ready = aes_.scheduleBackgroundBurst(now, kChunksPerBlock);
        dram_.writeBlock(base, ct);
        blockEpoch_[base] = epoch_;
        done = channel_.writeBlockTiming(ct_ready);
        break;
      }
      case EncKind::CtrMono: {
        CtrAccess ca = getCtrBlock(map_.ctrBlockAddrFor(base), now, true);
        Tick t = std::max(now, ca.authDone);
        unsigned slot = map_.ctrSlotFor(base);
        MonoCounterBlock cb(cfg_.monoBits, *ca.line);
        if (cb.increment(slot)) {
            // Counter wrap: whole-memory re-encryption. Accounted the
            // way the paper's evaluation does: counted, assumed
            // instantaneous and traffic-free (emulated with epochs).
            ++freezes_;
            stats_.counter("freezes").inc();
            ++epoch_;
        }
        *ca.line = cb.raw();
        ctr = cb.counter(slot);
        Tick pad = aes_.scheduleBackgroundBurst(t, kChunksPerBlock);
        ct = encryptData(base, data, ctr, epoch_);
        blockEpoch_[base] = epoch_;
        dram_.writeBlock(base, ct);
        ct_ready = pad + 1;
        done = channel_.writeBlockTiming(ct_ready);
        break;
      }
      case EncKind::CtrSplit: {
        CtrAccess ca = getCtrBlock(map_.ctrBlockAddrFor(base), now, true);
        Tick t = std::max(now, ca.authDone);
        unsigned slot = map_.ctrSlotFor(base);
        SplitCounterBlock cb(*ca.line);
        if (cb.minor(slot) == SplitCounterBlock::maxMinor()) {
            t = triggerPageReenc(map_.ctrBlockAddrFor(base), t);
            cb = SplitCounterBlock(*ca.line);
        }
        cb.setMinor(slot, cb.minor(slot) + 1);
        *ca.line = cb.raw();
        ctr = cb.counterFor(slot);
        Tick pad = aes_.scheduleBackgroundBurst(t, kChunksPerBlock);
        ct = encryptData(base, data, ctr, epoch_);
        blockEpoch_[base] = epoch_;
        dram_.writeBlock(base, ct);
        ct_ready = pad + 1;
        done = channel_.writeBlockTiming(ct_ready);
        break;
      }
      case EncKind::CtrPred: {
        std::uint64_t c = ++predCtr_[base];
        Addr page = base & ~static_cast<Addr>(kPageBytes - 1);
        std::uint64_t &pb = predBase_[page];
        if (c >= pb + cfg_.predDepth)
            pb = c - (cfg_.predDepth - 1);
        ctr = c;
        Tick pad = aes_.scheduleBackgroundBurst(now, kChunksPerBlock);
        ct = encryptData(base, data, ctr, 0);
        dram_.writeBlock(base, ct);
        ct_ready = pad + 1;
        done = channel_.writeTiming(ct_ready, kBlockBytes + 8);
        break;
      }
    }

    if (cfg_.auth != AuthKind::None) {
        NodeRef node{NodeKind::Data, base, 0, 0};
        Tick tag_done = updateLeafTag(node, ct, ctr, now, ct_ready);
        done = std::max(done, tag_done);
    }
    return done;
}

// --------------------------------------------------------------------------
// Probes
// --------------------------------------------------------------------------

std::uint64_t
SecureMemoryController::counterOf(Addr data_addr)
{
    Addr base = blockBase(data_addr);
    if (cfg_.enc == EncKind::CtrPred)
        return predCtr_[base];
    if (!cfg_.usesCounterCache())
        return 0;
    Addr ca = map_.ctrBlockAddrFor(base);
    const Block64 *line = ctrCache_.peek(ca);
    Block64 raw = line ? *line : dram_.readBlock(ca);
    return dataCounter(base, raw);
}

void
SecureMemoryController::evictCounterBlock(Addr data_addr)
{
    Addr ca = map_.ctrBlockAddrFor(blockBase(data_addr));
    Eviction ev = ctrCache_.invalidate(ca);
    if (ev.valid && ev.dirty)
        writebackCtrBlock(ev.addr, ev.data, 0);
    inflight_.erase(ca);
}

void
SecureMemoryController::flushMacCache()
{
    // Two-phase flush: every block's content reaches DRAM before any
    // parent tag is recomputed. flush() invalidates all lines up
    // front, so a single interleaved pass can lose updates when a
    // block and its parent are both dirty — the child's write-back
    // stores its new tag into the parent's stale straight-to-DRAM
    // copy, and the parent's own later write-back overwrites it.
    std::vector<Eviction> dirty = macCache_.flush();
    for (const Eviction &ev : dirty)
        writebackMacContent(ev.addr, ev.data, 0);
    for (const Eviction &ev : dirty)
        writebackMacTag(ev.addr, 0);
}

void
SecureMemoryController::flushCtrCache()
{
    // Counter write-backs can dirty the derivative cache (GCM bumps the
    // derivative counter), so flush counters first, derivatives second.
    for (const Eviction &ev : ctrCache_.flush())
        writebackCtrBlock(ev.addr, ev.data, 0);
    for (const Eviction &ev : derivCache_.flush())
        dram_.writeBlock(ev.addr, ev.data);
}

} // namespace secmem
