#include "obs/registry.hh"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <utility>
#include <sstream>

#include "sim/log.hh"

namespace secmem::obs
{

namespace
{

bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    char prev = '.';
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok || (c == '.' && prev == '.'))
            return false;
        prev = c;
    }
    return true;
}

std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtShort(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
sampleJson(const stats::Sample &s)
{
    return "{\"mean\": " + fmtExact(s.mean()) +
           ", \"count\": " + std::to_string(s.count()) +
           ", \"min\": " + fmtExact(s.min()) +
           ", \"max\": " + fmtExact(s.max()) + "}";
}

std::string
gaugeJson(const stats::Gauge &g)
{
    return "{\"value\": " + std::to_string(g.value()) +
           ", \"max\": " + std::to_string(g.max()) + "}";
}

std::string
histogramJson(const stats::Histogram &h)
{
    std::string out = "{\"mean\": " + fmtExact(h.sample().mean()) +
                      ", \"count\": " + std::to_string(h.sample().count()) +
                      ", \"bucket_width\": " + fmtExact(h.bucketWidth()) +
                      ", \"buckets\": [";
    const auto &b = h.buckets();
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(b[i]);
    }
    out += "]}";
    return out;
}

std::string
logHistogramJson(const stats::LogHistogram &h)
{
    return "{\"count\": " + std::to_string(h.count()) +
           ", \"mean\": " + fmtExact(h.mean()) +
           ", \"min\": " + std::to_string(h.min()) +
           ", \"p50\": " + std::to_string(h.percentile(0.50)) +
           ", \"p90\": " + std::to_string(h.percentile(0.90)) +
           ", \"p99\": " + std::to_string(h.percentile(0.99)) +
           ", \"max\": " + std::to_string(h.max()) + "}";
}

} // namespace

void
StatRegistry::checkPathFree(const std::string &path) const
{
    SECMEM_ASSERT(validPath(path), "bad stat path '%s'", path.c_str());
    SECMEM_ASSERT(!groups_.count(path),
                  "stat path '%s' already registered as a group",
                  path.c_str());
    SECMEM_ASSERT(!formulas_.count(path),
                  "stat path '%s' already registered as a formula",
                  path.c_str());
}

void
StatRegistry::add(const std::string &path, const stats::Group &group)
{
    checkPathFree(path);
    groups_.emplace(path, &group);
}

void
StatRegistry::addFormula(const std::string &path, std::string description,
                         std::function<double()> fn)
{
    checkPathFree(path);
    formulas_.emplace(path, Formula{std::move(description), std::move(fn)});
}

void
StatRegistry::addRatio(const std::string &path, const std::string &numerator,
                       const std::string &denominator)
{
    addFormula(path, numerator + " / " + denominator,
               [this, numerator, denominator]() {
                   std::uint64_t den = counterValue(denominator);
                   if (!den)
                       return 0.0;
                   return static_cast<double>(counterValue(numerator)) /
                          static_cast<double>(den);
               });
}

std::uint64_t
StatRegistry::counterValue(const std::string &path) const
{
    // Longest registered group prefix owns the trailing counter name;
    // group paths may themselves contain dots ("dram.store").
    std::size_t dot = path.rfind('.');
    while (dot != std::string::npos) {
        auto it = groups_.find(path.substr(0, dot));
        if (it != groups_.end())
            return it->second->counterValue(path.substr(dot + 1));
        dot = dot ? path.rfind('.', dot - 1) : std::string::npos;
    }
    return 0;
}

double
StatRegistry::formulaValue(const std::string &path) const
{
    auto it = formulas_.find(path);
    return it == formulas_.end() ? 0.0 : it->second.fn();
}

std::vector<std::string>
StatRegistry::statNames() const
{
    std::vector<std::string> names;
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            names.push_back(path + "." + kv.first + " counter");
        for (const auto &kv : group->gauges())
            names.push_back(path + "." + kv.first + " gauge");
        for (const auto &kv : group->samples())
            names.push_back(path + "." + kv.first + " sample");
        for (const auto &kv : group->histograms())
            names.push_back(path + "." + kv.first + " histogram");
        for (const auto &kv : group->logHistograms())
            names.push_back(path + "." + kv.first + " loghistogram");
    }
    for (const auto &[path, formula] : formulas_)
        names.push_back(path + " formula (" + formula.description + ")");
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<FlatStat>
StatRegistry::flattened() const
{
    std::vector<FlatStat> out;
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            out.push_back({path + "." + kv.first,
                           static_cast<double>(kv.second.value()), true});
        for (const auto &kv : group->gauges()) {
            out.push_back({path + "." + kv.first + ".value",
                           static_cast<double>(kv.second.value()), true});
            out.push_back({path + "." + kv.first + ".max",
                           static_cast<double>(kv.second.max()), true});
        }
        for (const auto &kv : group->samples())
            out.push_back({path + "." + kv.first + ".mean",
                           kv.second.mean(), false});
        for (const auto &kv : group->histograms())
            out.push_back({path + "." + kv.first + ".mean",
                           kv.second.sample().mean(), false});
        for (const auto &kv : group->logHistograms()) {
            out.push_back({path + "." + kv.first + ".mean",
                           kv.second.mean(), false});
            out.push_back({path + "." + kv.first + ".p50",
                           static_cast<double>(kv.second.percentile(0.50)),
                           true});
            out.push_back({path + "." + kv.first + ".p99",
                           static_cast<double>(kv.second.percentile(0.99)),
                           true});
        }
    }
    for (const auto &[path, formula] : formulas_)
        out.push_back({path, formula.fn(), false});
    std::sort(out.begin(), out.end(),
              [](const FlatStat &a, const FlatStat &b) {
                  return a.path < b.path;
              });
    return out;
}

void
StatRegistry::dumpText(std::ostream &os) const
{
    for (const FlatStat &s : flattened()) {
        if (s.integral)
            os << s.path << ' '
               << static_cast<std::uint64_t>(s.value) << '\n';
        else
            os << s.path << ' ' << fmtShort(s.value) << '\n';
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    // Collect pre-serialized (path, value) leaves, then emit the
    // nested-object dump in one sorted pass. Every valid path
    // character collates after '.', so a plain lexicographic sort of
    // the dotted paths visits leaves in exactly the order the old
    // map-of-maps tree walk did — byte-identical output without the
    // per-leaf node and substring allocations, which at one dump per
    // experiment job added up to real per-job overhead (~0.4 ms).
    std::vector<std::pair<std::string, std::string>> leaves;
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            leaves.emplace_back(path + "." + kv.first,
                                std::to_string(kv.second.value()));
        for (const auto &kv : group->gauges())
            leaves.emplace_back(path + "." + kv.first, gaugeJson(kv.second));
        for (const auto &kv : group->samples())
            leaves.emplace_back(path + "." + kv.first,
                                sampleJson(kv.second));
        for (const auto &kv : group->histograms())
            leaves.emplace_back(path + "." + kv.first,
                                histogramJson(kv.second));
        for (const auto &kv : group->logHistograms())
            leaves.emplace_back(path + "." + kv.first,
                                logHistogramJson(kv.second));
    }
    for (const auto &[path, formula] : formulas_)
        leaves.emplace_back(path, fmtExact(formula.fn()));
    std::sort(leaves.begin(), leaves.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    auto splitSegs = [](const std::string &p) {
        std::vector<std::string_view> segs;
        std::string_view sv(p);
        std::size_t start = 0;
        while (true) {
            std::size_t dot = sv.find('.', start);
            if (dot == std::string_view::npos) {
                segs.push_back(sv.substr(start));
                break;
            }
            segs.push_back(sv.substr(start, dot - start));
            start = dot + 1;
        }
        return segs;
    };

    std::string out;
    out.reserve(leaves.size() * 48 + 2);
    out.push_back('{');
    std::vector<std::string_view> prev;
    for (const auto &[path, value] : leaves) {
        std::vector<std::string_view> segs = splitSegs(path);
        if (!prev.empty()) {
            bool prevIsPrefix =
                prev.size() <= segs.size() &&
                std::equal(prev.begin(), prev.end(), segs.begin());
            SECMEM_ASSERT(!(prevIsPrefix && prev.size() == segs.size()),
                          "stat path '%s' collides with an existing entry",
                          path.c_str());
            SECMEM_ASSERT(!prevIsPrefix,
                          "stat path '%s' descends through a scalar stat",
                          path.c_str());
        }
        // Shared interior segments stay open; close the rest of the
        // previous leaf's objects and separate siblings exactly as the
        // recursive writer did.
        std::size_t maxCommon =
            prev.empty() ? 0 : std::min(prev.size(), segs.size()) - 1;
        std::size_t common = 0;
        while (common < maxCommon && prev[common] == segs[common])
            ++common;
        if (!prev.empty()) {
            out.append(prev.size() - 1 - common, '}');
            out += ", ";
        }
        for (std::size_t i = common; i + 1 < segs.size(); ++i) {
            out += '"';
            out += segs[i];
            out += "\": {";
        }
        out += '"';
        out += segs.back();
        out += "\": ";
        out += value;
        prev = std::move(segs);
    }
    if (!prev.empty())
        out.append(prev.size() - 1, '}');
    out.push_back('}');
    os << out;
}

std::string
StatRegistry::jsonString() const
{
    std::ostringstream os;
    dumpJson(os);
    return os.str();
}

} // namespace secmem::obs
