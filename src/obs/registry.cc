#include "obs/registry.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sim/log.hh"

namespace secmem::obs
{

namespace
{

bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    char prev = '.';
    for (char c : path) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '.';
        if (!ok || (c == '.' && prev == '.'))
            return false;
        prev = c;
    }
    return true;
}

std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
fmtShort(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * JSON tree assembled from dotted paths: interior nodes are objects,
 * leaves carry a pre-serialized JSON value. Insertion order within an
 * object is lexicographic (std::map), so dumps are deterministic.
 */
struct JsonNode
{
    std::map<std::string, JsonNode> children;
    std::string leaf; ///< serialized value; empty = interior object

    void
    write(std::ostream &os) const
    {
        if (!leaf.empty()) {
            os << leaf;
            return;
        }
        os << '{';
        bool first = true;
        for (const auto &[key, child] : children) {
            if (!first)
                os << ", ";
            first = false;
            os << '"' << key << "\": ";
            child.write(os);
        }
        os << '}';
    }
};

void
insertLeaf(JsonNode &root, const std::string &path, std::string value)
{
    JsonNode *node = &root;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = path.find('.', start);
        std::string seg = path.substr(start, dot - start);
        SECMEM_ASSERT(node->leaf.empty(),
                      "stat path '%s' descends through a scalar stat",
                      path.c_str());
        node = &node->children[seg];
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    SECMEM_ASSERT(node->leaf.empty() && node->children.empty(),
                  "stat path '%s' collides with an existing entry",
                  path.c_str());
    node->leaf = std::move(value);
}

std::string
sampleJson(const stats::Sample &s)
{
    return "{\"mean\": " + fmtExact(s.mean()) +
           ", \"count\": " + std::to_string(s.count()) +
           ", \"min\": " + fmtExact(s.min()) +
           ", \"max\": " + fmtExact(s.max()) + "}";
}

std::string
gaugeJson(const stats::Gauge &g)
{
    return "{\"value\": " + std::to_string(g.value()) +
           ", \"max\": " + std::to_string(g.max()) + "}";
}

std::string
histogramJson(const stats::Histogram &h)
{
    std::string out = "{\"mean\": " + fmtExact(h.sample().mean()) +
                      ", \"count\": " + std::to_string(h.sample().count()) +
                      ", \"bucket_width\": " + fmtExact(h.bucketWidth()) +
                      ", \"buckets\": [";
    const auto &b = h.buckets();
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(b[i]);
    }
    out += "]}";
    return out;
}

std::string
logHistogramJson(const stats::LogHistogram &h)
{
    return "{\"count\": " + std::to_string(h.count()) +
           ", \"mean\": " + fmtExact(h.mean()) +
           ", \"min\": " + std::to_string(h.min()) +
           ", \"p50\": " + std::to_string(h.percentile(0.50)) +
           ", \"p90\": " + std::to_string(h.percentile(0.90)) +
           ", \"p99\": " + std::to_string(h.percentile(0.99)) +
           ", \"max\": " + std::to_string(h.max()) + "}";
}

} // namespace

void
StatRegistry::checkPathFree(const std::string &path) const
{
    SECMEM_ASSERT(validPath(path), "bad stat path '%s'", path.c_str());
    SECMEM_ASSERT(!groups_.count(path),
                  "stat path '%s' already registered as a group",
                  path.c_str());
    SECMEM_ASSERT(!formulas_.count(path),
                  "stat path '%s' already registered as a formula",
                  path.c_str());
}

void
StatRegistry::add(const std::string &path, const stats::Group &group)
{
    checkPathFree(path);
    groups_.emplace(path, &group);
}

void
StatRegistry::addFormula(const std::string &path, std::string description,
                         std::function<double()> fn)
{
    checkPathFree(path);
    formulas_.emplace(path, Formula{std::move(description), std::move(fn)});
}

void
StatRegistry::addRatio(const std::string &path, const std::string &numerator,
                       const std::string &denominator)
{
    addFormula(path, numerator + " / " + denominator,
               [this, numerator, denominator]() {
                   std::uint64_t den = counterValue(denominator);
                   if (!den)
                       return 0.0;
                   return static_cast<double>(counterValue(numerator)) /
                          static_cast<double>(den);
               });
}

std::uint64_t
StatRegistry::counterValue(const std::string &path) const
{
    // Longest registered group prefix owns the trailing counter name;
    // group paths may themselves contain dots ("dram.store").
    std::size_t dot = path.rfind('.');
    while (dot != std::string::npos) {
        auto it = groups_.find(path.substr(0, dot));
        if (it != groups_.end())
            return it->second->counterValue(path.substr(dot + 1));
        dot = dot ? path.rfind('.', dot - 1) : std::string::npos;
    }
    return 0;
}

double
StatRegistry::formulaValue(const std::string &path) const
{
    auto it = formulas_.find(path);
    return it == formulas_.end() ? 0.0 : it->second.fn();
}

std::vector<std::string>
StatRegistry::statNames() const
{
    std::vector<std::string> names;
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            names.push_back(path + "." + kv.first + " counter");
        for (const auto &kv : group->gauges())
            names.push_back(path + "." + kv.first + " gauge");
        for (const auto &kv : group->samples())
            names.push_back(path + "." + kv.first + " sample");
        for (const auto &kv : group->histograms())
            names.push_back(path + "." + kv.first + " histogram");
        for (const auto &kv : group->logHistograms())
            names.push_back(path + "." + kv.first + " loghistogram");
    }
    for (const auto &[path, formula] : formulas_)
        names.push_back(path + " formula (" + formula.description + ")");
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<FlatStat>
StatRegistry::flattened() const
{
    std::vector<FlatStat> out;
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            out.push_back({path + "." + kv.first,
                           static_cast<double>(kv.second.value()), true});
        for (const auto &kv : group->gauges()) {
            out.push_back({path + "." + kv.first + ".value",
                           static_cast<double>(kv.second.value()), true});
            out.push_back({path + "." + kv.first + ".max",
                           static_cast<double>(kv.second.max()), true});
        }
        for (const auto &kv : group->samples())
            out.push_back({path + "." + kv.first + ".mean",
                           kv.second.mean(), false});
        for (const auto &kv : group->histograms())
            out.push_back({path + "." + kv.first + ".mean",
                           kv.second.sample().mean(), false});
        for (const auto &kv : group->logHistograms()) {
            out.push_back({path + "." + kv.first + ".mean",
                           kv.second.mean(), false});
            out.push_back({path + "." + kv.first + ".p50",
                           static_cast<double>(kv.second.percentile(0.50)),
                           true});
            out.push_back({path + "." + kv.first + ".p99",
                           static_cast<double>(kv.second.percentile(0.99)),
                           true});
        }
    }
    for (const auto &[path, formula] : formulas_)
        out.push_back({path, formula.fn(), false});
    std::sort(out.begin(), out.end(),
              [](const FlatStat &a, const FlatStat &b) {
                  return a.path < b.path;
              });
    return out;
}

void
StatRegistry::dumpText(std::ostream &os) const
{
    for (const FlatStat &s : flattened()) {
        if (s.integral)
            os << s.path << ' '
               << static_cast<std::uint64_t>(s.value) << '\n';
        else
            os << s.path << ' ' << fmtShort(s.value) << '\n';
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    JsonNode root;
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            insertLeaf(root, path + "." + kv.first,
                       std::to_string(kv.second.value()));
        for (const auto &kv : group->gauges())
            insertLeaf(root, path + "." + kv.first, gaugeJson(kv.second));
        for (const auto &kv : group->samples())
            insertLeaf(root, path + "." + kv.first, sampleJson(kv.second));
        for (const auto &kv : group->histograms())
            insertLeaf(root, path + "." + kv.first,
                       histogramJson(kv.second));
        for (const auto &kv : group->logHistograms())
            insertLeaf(root, path + "." + kv.first,
                       logHistogramJson(kv.second));
    }
    for (const auto &[path, formula] : formulas_)
        insertLeaf(root, path, fmtExact(formula.fn()));
    root.write(os);
}

std::string
StatRegistry::jsonString() const
{
    std::ostringstream os;
    dumpJson(os);
    return os.str();
}

} // namespace secmem::obs
