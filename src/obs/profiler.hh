/**
 * @file
 * Wall-clock zone profiler with cheap scoped probes.
 *
 * `SECMEM_PROF(Zone)` drops an RAII probe into a scope; when profiling
 * is enabled the probe attributes the scope's wall-clock *self* time
 * (elapsed minus time spent in nested probes) to its zone on a
 * thread-local accumulator. When profiling is disabled a probe costs a
 * single relaxed atomic load and nothing else — no clock reads, no
 * TLS traffic — so instrumented hot paths stay hot.
 *
 * Wall-clock time never feeds back into the simulation: the profiler
 * is pure observation, and a profiled run's simulated results are
 * bit-identical to an unprofiled run's (tested).
 *
 * Aggregation model: each thread accumulates self-nanoseconds and hit
 * counts per zone plus the span [first probe start, last probe end].
 * Exiting threads flush into a process-global accumulator;
 * Profiler::report() merges flushed totals with still-live threads.
 * Because self times within one thread are disjoint sub-intervals of
 * that thread's span, zone shares computed against the summed spans
 * are <= 100% by construction. Call report()/reset() only while
 * worker threads are quiesced (after the pool has joined).
 */

#ifndef SECMEM_OBS_PROFILER_HH
#define SECMEM_OBS_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace secmem::obs
{

/** Instrumented zones; keep profZoneName() in sync. */
enum class ProfZone : unsigned
{
    Core = 0,       ///< OooCore cycle loop
    EventQueue,     ///< sim::EventQueue pop/dispatch
    CacheLookup,    ///< mem::Cache tag lookup + fill
    Crypto,         ///< AES pad/ECB + GHASH/SHA-1 invocations
    MerkleVerify,   ///< authentication tree walk
    ShadowOracle,   ///< differential reference-model cross-check
    EngineSchedule, ///< experiment engine + work-stealing pool overhead
    kCount
};

constexpr std::size_t kProfZones = static_cast<std::size_t>(ProfZone::kCount);

const char *profZoneName(ProfZone z);

struct ZoneReport
{
    std::string name;
    double selfSeconds = 0.0;
    std::uint64_t hits = 0;
    double share = 0.0; ///< selfSeconds / trackedSeconds, in [0, 1]
};

struct ProfReport
{
    std::vector<ZoneReport> zones; ///< by selfSeconds descending
    double trackedSeconds = 0.0;   ///< sum of per-thread probe spans
};

class Profiler
{
  public:
    static void setEnabled(bool on);

    static bool
    enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Merge flushed + live thread accumulators. Quiesced threads only. */
    static ProfReport report();

    /** Drop all accumulated data (for tests). Quiesced threads only. */
    static void reset();

  private:
    static std::atomic<bool> enabled_;
};

namespace prof_detail
{

/**
 * Raw timestamp in profiler ticks. On x86-64 this is the TSC — a
 * fraction of the cost of a clock_gettime call, which matters because
 * probes sit on paths hit hundreds of thousands of times per run.
 * Ticks are converted to nanoseconds only when a report is built, via
 * a (steady_clock, TSC) anchor pair captured at first use: the ratio
 * is measured over the whole run, so calibration costs nothing up
 * front and converges to the true TSC rate. Elsewhere ticks ARE
 * nanoseconds (steady_clock fallback).
 */
std::uint64_t nowStamp();

struct ThreadProf
{
    /** All accumulators below are in raw nowStamp() ticks. */
    std::uint64_t selfTicks[kProfZones] = {};
    std::uint64_t hits[kProfZones] = {};
    std::uint64_t firstTick = 0; ///< 0 = no probe seen yet
    std::uint64_t lastTick = 0;

    ThreadProf();
    ~ThreadProf();
};

ThreadProf &threadProf();

} // namespace prof_detail

/** RAII probe; use via SECMEM_PROF, not directly. */
class ProfScope
{
  public:
    explicit ProfScope(ProfZone zone)
    {
        if (!Profiler::enabled())
            return;
        begin(zone);
    }

    ~ProfScope()
    {
        if (active_)
            end();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    void begin(ProfZone zone);
    void end();

    ProfZone zone_ = ProfZone::Core;
    std::uint64_t startTick_ = 0;
    std::uint64_t childTicks_ = 0; ///< wall time of directly nested probes
    ProfScope *parent_ = nullptr;
    bool active_ = false;
};

} // namespace secmem::obs

#define SECMEM_PROF_CAT2(a, b) a##b
#define SECMEM_PROF_CAT(a, b) SECMEM_PROF_CAT2(a, b)
#define SECMEM_PROF(zone)                                                   \
    ::secmem::obs::ProfScope SECMEM_PROF_CAT(secmem_prof_scope_, __LINE__)( \
        ::secmem::obs::ProfZone::zone)

#endif // SECMEM_OBS_PROFILER_HH
