#include "obs/profiler.hh"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace secmem::obs
{

std::atomic<bool> Profiler::enabled_{false};

namespace prof_detail
{

namespace
{

/**
 * Process-global accumulator: totals flushed by exited threads plus a
 * registry of live per-thread accumulators so report() can see the
 * main thread (which never exits) and any still-attached workers.
 */
struct GlobalProf
{
    std::mutex mu;
    std::uint64_t selfNs[kProfZones] = {};
    std::uint64_t hits[kProfZones] = {};
    std::uint64_t spanNs = 0;
    std::vector<ThreadProf *> live;

    static GlobalProf &
    instance()
    {
        static GlobalProf g;
        return g;
    }
};

thread_local ProfScope *tlsTop = nullptr;

} // namespace

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ThreadProf::ThreadProf()
{
    auto &g = GlobalProf::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    g.live.push_back(this);
}

ThreadProf::~ThreadProf()
{
    auto &g = GlobalProf::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t z = 0; z < kProfZones; ++z) {
        g.selfNs[z] += selfNs[z];
        g.hits[z] += hits[z];
    }
    if (lastNs > firstNs)
        g.spanNs += lastNs - firstNs;
    g.live.erase(std::remove(g.live.begin(), g.live.end(), this),
                 g.live.end());
}

ThreadProf &
threadProf()
{
    thread_local ThreadProf tp;
    return tp;
}

} // namespace prof_detail

const char *
profZoneName(ProfZone z)
{
    switch (z) {
      case ProfZone::Core: return "core";
      case ProfZone::EventQueue: return "event_queue";
      case ProfZone::CacheLookup: return "cache_lookup";
      case ProfZone::Crypto: return "crypto";
      case ProfZone::MerkleVerify: return "merkle_verify";
      case ProfZone::ShadowOracle: return "shadow_oracle";
      case ProfZone::EngineSchedule: return "engine_schedule";
      case ProfZone::kCount: break;
    }
    return "?";
}

void
Profiler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

ProfReport
Profiler::report()
{
    using prof_detail::GlobalProf;
    auto &g = GlobalProf::instance();
    std::uint64_t selfNs[kProfZones] = {};
    std::uint64_t hits[kProfZones] = {};
    std::uint64_t spanNs = 0;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        for (std::size_t z = 0; z < kProfZones; ++z) {
            selfNs[z] = g.selfNs[z];
            hits[z] = g.hits[z];
        }
        spanNs = g.spanNs;
        for (const auto *tp : g.live) {
            for (std::size_t z = 0; z < kProfZones; ++z) {
                selfNs[z] += tp->selfNs[z];
                hits[z] += tp->hits[z];
            }
            if (tp->lastNs > tp->firstNs)
                spanNs += tp->lastNs - tp->firstNs;
        }
    }

    ProfReport rep;
    rep.trackedSeconds = static_cast<double>(spanNs) * 1e-9;
    for (std::size_t z = 0; z < kProfZones; ++z) {
        if (!hits[z])
            continue;
        ZoneReport zr;
        zr.name = profZoneName(static_cast<ProfZone>(z));
        zr.selfSeconds = static_cast<double>(selfNs[z]) * 1e-9;
        zr.hits = hits[z];
        zr.share = spanNs ? static_cast<double>(selfNs[z]) /
                                static_cast<double>(spanNs)
                          : 0.0;
        rep.zones.push_back(std::move(zr));
    }
    std::sort(rep.zones.begin(), rep.zones.end(),
              [](const ZoneReport &a, const ZoneReport &b) {
                  if (a.selfSeconds != b.selfSeconds)
                      return a.selfSeconds > b.selfSeconds;
                  return a.name < b.name;
              });
    return rep;
}

void
Profiler::reset()
{
    using prof_detail::GlobalProf;
    auto &g = GlobalProf::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t z = 0; z < kProfZones; ++z) {
        g.selfNs[z] = 0;
        g.hits[z] = 0;
    }
    g.spanNs = 0;
    for (auto *tp : g.live) {
        for (std::size_t z = 0; z < kProfZones; ++z) {
            tp->selfNs[z] = 0;
            tp->hits[z] = 0;
        }
        tp->firstNs = tp->lastNs = 0;
    }
}

void
ProfScope::begin(ProfZone zone)
{
    auto &tp = prof_detail::threadProf();
    zone_ = zone;
    parent_ = prof_detail::tlsTop;
    prof_detail::tlsTop = this;
    startNs_ = prof_detail::nowNs();
    if (!tp.firstNs)
        tp.firstNs = startNs_;
    active_ = true;
}

void
ProfScope::end()
{
    std::uint64_t endNs = prof_detail::nowNs();
    std::uint64_t elapsed = endNs - startNs_;
    std::uint64_t self = elapsed > childNs_ ? elapsed - childNs_ : 0;
    auto &tp = prof_detail::threadProf();
    std::size_t z = static_cast<std::size_t>(zone_);
    tp.selfNs[z] += self;
    ++tp.hits[z];
    tp.lastNs = endNs;
    if (parent_)
        parent_->childNs_ += elapsed;
    prof_detail::tlsTop = parent_;
}

} // namespace secmem::obs
