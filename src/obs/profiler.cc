#include "obs/profiler.hh"

#include <algorithm>
#include <chrono>
#include <mutex>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace secmem::obs
{

std::atomic<bool> Profiler::enabled_{false};

namespace prof_detail
{

namespace
{

std::uint64_t
chronoNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Process-global accumulator: totals flushed by exited threads plus a
 * registry of live per-thread accumulators so report() can see the
 * main thread (which never exits) and any still-attached workers.
 * Also holds the tick->ns calibration anchor (captured at first use,
 * i.e. when the first probe fires).
 */
struct GlobalProf
{
    std::mutex mu;
    std::uint64_t selfTicks[kProfZones] = {};
    std::uint64_t hits[kProfZones] = {};
    std::uint64_t spanTicks = 0;
    std::vector<ThreadProf *> live;
    std::uint64_t anchorNs = 0;
    std::uint64_t anchorTick = 0;

    GlobalProf()
    {
        anchorNs = chronoNs();
        anchorTick = nowStamp();
    }

    static GlobalProf &
    instance()
    {
        static GlobalProf g;
        return g;
    }

    /**
     * Nanoseconds per tick, measured from the anchor to now. The
     * baseline spans the whole profiled run by report time, so the
     * ratio is far more accurate than any up-front spin calibration.
     */
    double
    nsPerTick() const
    {
#if defined(__x86_64__)
        std::uint64_t now_tick = nowStamp();
        if (now_tick <= anchorTick)
            return 1.0;
        return static_cast<double>(chronoNs() - anchorNs) /
               static_cast<double>(now_tick - anchorTick);
#else
        return 1.0; // ticks are already nanoseconds
#endif
    }
};

thread_local ProfScope *tlsTop = nullptr;

} // namespace

std::uint64_t
nowStamp()
{
#if defined(__x86_64__)
    return __rdtsc();
#else
    return chronoNs();
#endif
}

ThreadProf::ThreadProf()
{
    auto &g = GlobalProf::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    g.live.push_back(this);
}

ThreadProf::~ThreadProf()
{
    auto &g = GlobalProf::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t z = 0; z < kProfZones; ++z) {
        g.selfTicks[z] += selfTicks[z];
        g.hits[z] += hits[z];
    }
    if (lastTick > firstTick)
        g.spanTicks += lastTick - firstTick;
    g.live.erase(std::remove(g.live.begin(), g.live.end(), this),
                 g.live.end());
}

ThreadProf &
threadProf()
{
    thread_local ThreadProf tp;
    return tp;
}

} // namespace prof_detail

const char *
profZoneName(ProfZone z)
{
    switch (z) {
      case ProfZone::Core: return "core";
      case ProfZone::EventQueue: return "event_queue";
      case ProfZone::CacheLookup: return "cache_lookup";
      case ProfZone::Crypto: return "crypto";
      case ProfZone::MerkleVerify: return "merkle_verify";
      case ProfZone::ShadowOracle: return "shadow_oracle";
      case ProfZone::EngineSchedule: return "engine_schedule";
      case ProfZone::kCount: break;
    }
    return "?";
}

void
Profiler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

ProfReport
Profiler::report()
{
    using prof_detail::GlobalProf;
    auto &g = GlobalProf::instance();
    std::uint64_t selfTicks[kProfZones] = {};
    std::uint64_t hits[kProfZones] = {};
    std::uint64_t spanTicks = 0;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        for (std::size_t z = 0; z < kProfZones; ++z) {
            selfTicks[z] = g.selfTicks[z];
            hits[z] = g.hits[z];
        }
        spanTicks = g.spanTicks;
        for (const auto *tp : g.live) {
            for (std::size_t z = 0; z < kProfZones; ++z) {
                selfTicks[z] += tp->selfTicks[z];
                hits[z] += tp->hits[z];
            }
            if (tp->lastTick > tp->firstTick)
                spanTicks += tp->lastTick - tp->firstTick;
        }
    }
    double ns_per_tick = g.nsPerTick();

    ProfReport rep;
    rep.trackedSeconds =
        static_cast<double>(spanTicks) * ns_per_tick * 1e-9;
    for (std::size_t z = 0; z < kProfZones; ++z) {
        if (!hits[z])
            continue;
        ZoneReport zr;
        zr.name = profZoneName(static_cast<ProfZone>(z));
        zr.selfSeconds =
            static_cast<double>(selfTicks[z]) * ns_per_tick * 1e-9;
        zr.hits = hits[z];
        zr.share = spanTicks ? static_cast<double>(selfTicks[z]) /
                                   static_cast<double>(spanTicks)
                             : 0.0;
        rep.zones.push_back(std::move(zr));
    }
    std::sort(rep.zones.begin(), rep.zones.end(),
              [](const ZoneReport &a, const ZoneReport &b) {
                  if (a.selfSeconds != b.selfSeconds)
                      return a.selfSeconds > b.selfSeconds;
                  return a.name < b.name;
              });
    return rep;
}

void
Profiler::reset()
{
    using prof_detail::GlobalProf;
    auto &g = GlobalProf::instance();
    std::lock_guard<std::mutex> lock(g.mu);
    for (std::size_t z = 0; z < kProfZones; ++z) {
        g.selfTicks[z] = 0;
        g.hits[z] = 0;
    }
    g.spanTicks = 0;
    for (auto *tp : g.live) {
        for (std::size_t z = 0; z < kProfZones; ++z) {
            tp->selfTicks[z] = 0;
            tp->hits[z] = 0;
        }
        tp->firstTick = tp->lastTick = 0;
    }
}

void
ProfScope::begin(ProfZone zone)
{
    auto &tp = prof_detail::threadProf();
    zone_ = zone;
    parent_ = prof_detail::tlsTop;
    prof_detail::tlsTop = this;
    startTick_ = prof_detail::nowStamp();
    if (!tp.firstTick)
        tp.firstTick = startTick_;
    active_ = true;
}

void
ProfScope::end()
{
    std::uint64_t end_tick = prof_detail::nowStamp();
    std::uint64_t elapsed = end_tick - startTick_;
    std::uint64_t self = elapsed > childTicks_ ? elapsed - childTicks_ : 0;
    auto &tp = prof_detail::threadProf();
    std::size_t z = static_cast<std::size_t>(zone_);
    tp.selfTicks[z] += self;
    ++tp.hits[z];
    tp.lastTick = end_tick;
    if (parent_)
        parent_->childTicks_ += elapsed;
    prof_detail::tlsTop = parent_;
}

} // namespace secmem::obs
