#include "obs/trace.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/atomic_file.hh"
#include "sim/log.hh"

namespace secmem::obs
{

void
TraceSink::noteDrop()
{
    if (++dropped_ == 1) {
        SECMEM_WARN("trace buffer full (%zu events); further events are "
                    "counted as dropped_events trace metadata",
                    maxEvents_);
    }
}

void
TraceSink::writeChromeJson(std::ostream &os) const
{
    // Lane numbers per category, in first-appearance order.
    std::map<std::string, unsigned> lanes;
    auto laneOf = [&](const char *cat) {
        auto it = lanes.find(cat);
        if (it == lanes.end())
            it = lanes.emplace(cat, static_cast<unsigned>(lanes.size()))
                     .first;
        return it->second;
    };

    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    // Thread-name metadata so the viewer labels each lane.
    for (const TraceEvent &e : events_)
        laneOf(e.category);
    for (const auto &[cat, lane] : lanes) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << lane
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \"" << cat
           << "\"}}";
    }
    if (dropped_) {
        // Instant marker at the wrap point so the viewer shows where
        // the record stops being complete.
        Tick wrap = events_.empty() ? 0 : events_.back().start;
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"cat\": "
              "\"trace\", \"name\": \"buffer_full\", \"ts\": "
           << wrap << ", \"s\": \"g\", \"args\": {\"dropped_events\": "
           << dropped_ << "}}";
    }
    for (const TraceEvent &e : events_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\": \"" << (e.dur < 0 ? 'i' : 'X')
           << "\", \"pid\": 1, \"tid\": " << laneOf(e.category)
           << ", \"cat\": \"" << e.category << "\", \"name\": \"" << e.name
           << "\", \"ts\": " << e.start;
        if (e.dur >= 0)
            os << ", \"dur\": " << e.dur;
        else
            os << ", \"s\": \"t\"";
        if (!e.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t i = 0; i < e.args.size(); ++i) {
                if (i)
                    os << ", ";
                os << '"' << e.args[i].key << "\": " << e.args[i].value;
            }
            os << '}';
        }
        os << '}';
    }
    os << "\n]";
    if (dropped_)
        os << ", \"otherData\": {\"dropped_events\": " << dropped_ << "}";
    os << "}\n";
}

bool
TraceSink::writeChromeJsonFile(const std::string &path) const
{
    // Temp-file + rename: a killed run never leaves a half-written
    // trace that chrome://tracing would reject.
    std::ostringstream os;
    writeChromeJson(os);
    return atomicWriteFile(path, os.str());
}

} // namespace secmem::obs
