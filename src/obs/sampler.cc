#include "obs/sampler.hh"

#include <sstream>

#include "obs/registry.hh"

namespace secmem::obs
{

Sampler::Sampler(std::uint64_t everyCycles, std::vector<std::string> paths)
    : every_(everyCycles), next_(everyCycles), paths_(std::move(paths))
{
    if (paths_.empty())
        paths_ = defaultPaths();
}

std::vector<std::string>
Sampler::defaultPaths()
{
    // Counters that advance continuously during a run. cpu.* are
    // deliberately absent: OooCore writes them once at run end, so
    // mid-run snapshots would read 0.
    return {"system.loads", "system.stores", "l2.misses",
            "ctrcache.hits", "ctrl.reads",   "ctrl.writes"};
}

void
Sampler::sampleOnce()
{
    Row row;
    row.cycle = next_;
    row.values.reserve(paths_.size());
    for (const auto &p : paths_)
        row.values.push_back(reg_->counterValue(p));
    rows_.push_back(std::move(row));
    next_ += every_;
}

void
Sampler::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const auto &p : paths_)
        os << ',' << p;
    os << '\n';
    for (const Row &row : rows_) {
        os << row.cycle;
        for (std::uint64_t v : row.values)
            os << ',' << v;
        os << '\n';
    }
}

std::string
Sampler::csvString() const
{
    std::ostringstream os;
    writeCsv(os);
    return os.str();
}

std::string
Sampler::jsonString() const
{
    std::ostringstream os;
    os << "{\"every\": " << every_ << ", \"paths\": [";
    for (std::size_t i = 0; i < paths_.size(); ++i)
        os << (i ? ", " : "") << '"' << paths_[i] << '"';
    os << "], \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        os << (i ? ", " : "") << '[' << rows_[i].cycle;
        for (std::uint64_t v : rows_[i].values)
            os << ", " << v;
        os << ']';
    }
    os << "]}";
    return os.str();
}

} // namespace secmem::obs
