/**
 * @file
 * Time-series sampler over the stat registry.
 *
 * Snapshots a fixed set of dotted counter paths every N *simulated*
 * cycles into an in-memory time-series, dumpable as CSV or JSON. The
 * trigger is simulated time, so the series is bit-identical across
 * `--jobs 1` and `--jobs N` runs of the same job (tested) — wall
 * clock never enters the data. Intended for warm-up and phase
 * analysis: plot counter-cache hits or L2 misses against cycles and
 * the warm-up knee is visible directly.
 *
 * One sampler observes one job: the experiment engine attaches it to
 * the first actually-simulated job, the same deterministic choice the
 * trace sink uses.
 */

#ifndef SECMEM_OBS_SAMPLER_HH
#define SECMEM_OBS_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace secmem::obs
{

class StatRegistry;

class Sampler
{
  public:
    struct Row
    {
        std::uint64_t cycle = 0;
        std::vector<std::uint64_t> values;
    };

    /** @p everyCycles == 0 disables sampling entirely. */
    Sampler(std::uint64_t everyCycles, std::vector<std::string> paths);

    /** Counter paths that stay live during a run (cpu.* do not). */
    static std::vector<std::string> defaultPaths();

    /** Attach the registry to read from; call before the run starts. */
    void bind(const StatRegistry *reg) { reg_ = reg; }

    /**
     * Record one row per elapsed sampling boundary. Rows are labelled
     * with the boundary cycle, so a burst of simulated time crossing
     * several boundaries yields several (identical-valued) rows and
     * the series shape is independent of access-stream batching.
     */
    void
    maybeSample(std::uint64_t now)
    {
        while (reg_ && every_ && now >= next_)
            sampleOnce();
    }

    /**
     * True iff maybeSample(@p now) would record at least one row.
     * Lets batched access paths poll cheaply: ops strictly before the
     * first would-sample op can skip their (no-op) polls entirely.
     */
    bool
    wouldSample(std::uint64_t now) const
    {
        return reg_ && every_ && now >= next_;
    }

    std::uint64_t every() const { return every_; }
    const std::vector<std::string> &paths() const { return paths_; }
    const std::vector<Row> &rows() const { return rows_; }

    /** `cycle,path...` header plus one line per row. */
    void writeCsv(std::ostream &os) const;
    std::string csvString() const;

    /** `{"every": N, "paths": [...], "rows": [[cycle, v...], ...]}`. */
    std::string jsonString() const;

  private:
    void sampleOnce();

    const StatRegistry *reg_ = nullptr;
    std::uint64_t every_;
    std::uint64_t next_;
    std::vector<std::string> paths_;
    std::vector<Row> rows_;
};

} // namespace secmem::obs

#endif // SECMEM_OBS_SAMPLER_HH
