/**
 * @file
 * Cycle-level event tracing with Chrome trace-viewer output.
 *
 * A TraceSink records timestamped simulator events — memory requests,
 * counter-cache fills, page re-encryptions, GCM pad generation, Merkle
 * authentication walks — and serializes them as Chrome
 * `chrome://tracing` / Perfetto compatible JSON ("traceEvents" array
 * of complete/instant events). Timestamps are simulated core ticks
 * reported in the trace's microsecond field, so one trace microsecond
 * equals one core cycle.
 *
 * Components hold a `TraceSink *` that is null by default: the
 * instrumentation sites compile down to one pointer test when tracing
 * is off, which keeps --jobs sweeps at full speed. The sink is bounded
 * (default 4M events); events past the cap are counted, not stored,
 * and the emitted JSON carries the loss as `otherData.dropped_events`
 * plus an instant marker at the wrap point, so a truncated trace is
 * never mistaken for a complete one.
 *
 * Each event category gets its own lane (Chrome "tid"), assigned in
 * first-appearance order, so related events stack in one track.
 */

#ifndef SECMEM_OBS_TRACE_HH
#define SECMEM_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace secmem::obs
{

/** One integer event argument ("addr", "levels", "timely"). */
struct TraceArg
{
    const char *key;
    std::uint64_t value;
};

/** A recorded event: complete span (dur >= 0) or instant (dur < 0). */
struct TraceEvent
{
    const char *category; ///< static string: lane + Chrome "cat"
    const char *name;     ///< static string: event label
    Tick start = 0;
    std::int64_t dur = -1; ///< span length in ticks; -1 = instant
    std::vector<TraceArg> args;
};

class TraceSink
{
  public:
    explicit TraceSink(std::size_t max_events = std::size_t(4) << 20)
        : maxEvents_(max_events)
    {}

    /** Record a span covering [start, end] (clamped to >= 1 tick). */
    void
    complete(const char *category, const char *name, Tick start, Tick end,
             std::initializer_list<TraceArg> args = {})
    {
        if (events_.size() >= maxEvents_) {
            noteDrop();
            return;
        }
        std::int64_t dur =
            end > start ? static_cast<std::int64_t>(end - start) : 1;
        events_.push_back({category, name, start, dur, args});
    }

    /** Record a point-in-time event. */
    void
    instant(const char *category, const char *name, Tick at,
            std::initializer_list<TraceArg> args = {})
    {
        if (events_.size() >= maxEvents_) {
            noteDrop();
            return;
        }
        events_.push_back({category, name, at, -1, args});
    }

    std::size_t size() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }
    const std::vector<TraceEvent> &events() const { return events_; }

    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /**
     * Emit the Chrome trace-event JSON object. Lanes (tids) are
     * assigned per category in order of first appearance, so output is
     * deterministic for a deterministic simulation.
     */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson() into a file; returns false on I/O failure. */
    bool writeChromeJsonFile(const std::string &path) const;

  private:
    /** Count an overflowed event; warns (rate-limited) on first drop. */
    void noteDrop();

    std::size_t maxEvents_;
    std::vector<TraceEvent> events_;
    std::uint64_t dropped_ = 0;
};

} // namespace secmem::obs

#endif // SECMEM_OBS_TRACE_HH
