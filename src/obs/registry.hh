/**
 * @file
 * Hierarchical statistics registry (gem5-style dotted stat tree).
 *
 * Components keep owning their stats::Group — the hot-path increment
 * stays a single add on a pre-existing counter and costs nothing extra
 * when nobody dumps. A StatRegistry is a *directory* built after (or
 * alongside) a simulation: each component registers its group under a
 * dotted path ("ctrcache", "dram.store"), and derived formula stats
 * (hit rates, IPC) are registered as closures evaluated only at dump
 * time. dumpJson() emits one nested JSON object per dotted segment;
 * dumpText() emits flat "path value" lines suitable for diffing.
 *
 * Registration is strict: two groups (or a group and a formula) under
 * the same path is a programming error and panics, so the hierarchy
 * stays unambiguous as components are added.
 */

#ifndef SECMEM_OBS_REGISTRY_HH
#define SECMEM_OBS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace secmem::obs
{

/** One flattened (dotted path, value) stat, for tests and tables. */
struct FlatStat
{
    std::string path;
    double value = 0.0;
    bool integral = false; ///< true for counters/gauges (exact uint64)
};

class StatRegistry
{
  public:
    /**
     * Register @p group's stats under dotted @p path. The group must
     * outlive the registry (registries are per-run directories, built
     * next to the system they describe). Panics on an empty/ill-formed
     * path or when the path is already taken.
     */
    void add(const std::string &path, const stats::Group &group);

    /**
     * Register a derived stat at dotted @p path, evaluated lazily at
     * dump/lookup time. Panics when the path is already taken.
     */
    void addFormula(const std::string &path, std::string description,
                    std::function<double()> fn);

    /**
     * Convenience ratio formula: value = num / den over two registered
     * counter paths, 0 when the denominator is 0. Counter paths are
     * resolved lazily, so the counters may be registered (or first
     * touched) after the formula.
     */
    void addRatio(const std::string &path, const std::string &numerator,
                  const std::string &denominator);

    /** Number of registered groups. */
    std::size_t numGroups() const { return groups_.size(); }
    /** Number of registered formulas. */
    std::size_t numFormulas() const { return formulas_.size(); }

    /**
     * Value of the counter at dotted @p path ("ctrcache.hits"): the
     * longest registered group prefix owns the remainder as the
     * counter name. 0 when the group or counter does not exist.
     */
    std::uint64_t counterValue(const std::string &path) const;

    /** Evaluate the formula at @p path; 0 when absent. */
    double formulaValue(const std::string &path) const;

    /**
     * Every stat path currently visible, sorted: counters, gauges,
     * sample and histogram summaries, and formulas. Lines are
     * "path <kind>" where kind is counter|gauge|sample|histogram|
     * formula, with the formula's description appended when present.
     */
    std::vector<std::string> statNames() const;

    /**
     * Flattened scalar view: counters, gauge value/max pairs, sample
     * means, formula values.
     */
    std::vector<FlatStat> flattened() const;

    /** Flat "path value" lines (counters exact, doubles %.6g). */
    void dumpText(std::ostream &os) const;

    /**
     * Hierarchical JSON: dotted segments become nested objects;
     * counters are integers, gauges {"value", "max"} integer objects,
     * samples/histograms objects, formulas doubles (%.17g, so dumps
     * round-trip exactly).
     */
    void dumpJson(std::ostream &os) const;

    /** dumpJson() into a string. */
    std::string jsonString() const;

  private:
    struct Formula
    {
        std::string description;
        std::function<double()> fn;
    };

    void checkPathFree(const std::string &path) const;

    std::map<std::string, const stats::Group *> groups_;
    std::map<std::string, Formula> formulas_;
};

} // namespace secmem::obs

#endif // SECMEM_OBS_REGISTRY_HH
