/**
 * @file
 * Flat open-addressing hash containers keyed by block address.
 *
 * The functional model keeps several per-block side tables that sit on
 * the per-access hot path (DRAM backing store, the initialized-block
 * set, the stored-tag set, the counter-prediction tables). They share
 * three properties: keys are block-aligned addresses, entries are only
 * ever inserted and looked up (never erased, never iterated), and the
 * node-based std::unordered_* containers behind them showed up in
 * profiles as malloc traffic, rehash copies and pointer-chasing probes.
 *
 * These replacements use a single power-of-two table with linear
 * probing and kAddrInvalid as the empty sentinel (block addresses are
 * bounded by the memory size, so the all-ones address can never be a
 * key). Lookups touch one contiguous cache line in the common case and
 * the containers free exactly one allocation at teardown.
 */

#ifndef SECMEM_SIM_FLAT_HASH_HH
#define SECMEM_SIM_FLAT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace secmem
{

namespace flat_hash_detail
{

/** splitmix64 finalizer: block addresses are highly regular, so the
 *  table index needs real avalanche, not identity hashing. */
inline std::uint64_t
mixAddr(std::uint64_t v)
{
    v += 0x9e3779b97f4a7c15ULL;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31);
}

} // namespace flat_hash_detail

/** Insert/lookup-only set of block addresses. */
class FlatAddrSet
{
  public:
    bool
    contains(Addr key) const
    {
        if (keys_.empty())
            return false;
        std::size_t mask = keys_.size() - 1;
        std::size_t i = flat_hash_detail::mixAddr(key) & mask;
        while (keys_[i] != kAddrInvalid) {
            if (keys_[i] == key)
                return true;
            i = (i + 1) & mask;
        }
        return false;
    }

    /** Insert @p key; returns true iff it was newly added. */
    bool
    insert(Addr key)
    {
        if (keys_.size() - count_ <= keys_.size() / 4)
            rehash(keys_.empty() ? kInitialSlots : keys_.size() * 2);
        std::size_t mask = keys_.size() - 1;
        std::size_t i = flat_hash_detail::mixAddr(key) & mask;
        while (keys_[i] != kAddrInvalid) {
            if (keys_[i] == key)
                return false;
            i = (i + 1) & mask;
        }
        keys_[i] = key;
        ++count_;
        return true;
    }

    /** unordered_set-compatible membership count (0 or 1). */
    std::size_t count(Addr key) const { return contains(key) ? 1 : 0; }

    std::size_t size() const { return count_; }

    void
    clear()
    {
        keys_.clear();
        count_ = 0;
    }

  private:
    static constexpr std::size_t kInitialSlots = 64;

    void
    rehash(std::size_t n)
    {
        std::vector<Addr> old;
        old.swap(keys_);
        keys_.assign(n, kAddrInvalid);
        std::size_t mask = n - 1;
        for (Addr k : old) {
            if (k == kAddrInvalid)
                continue;
            std::size_t i = flat_hash_detail::mixAddr(k) & mask;
            while (keys_[i] != kAddrInvalid)
                i = (i + 1) & mask;
            keys_[i] = k;
        }
    }

    std::vector<Addr> keys_; ///< kAddrInvalid = empty slot
    std::size_t count_ = 0;
};

/** Insert/lookup-only map from block address to @p V. */
template <typename V>
class FlatAddrMap
{
  public:
    const V *
    find(Addr key) const
    {
        if (keys_.empty())
            return nullptr;
        std::size_t mask = keys_.size() - 1;
        std::size_t i = flat_hash_detail::mixAddr(key) & mask;
        while (keys_[i] != kAddrInvalid) {
            if (keys_[i] == key)
                return &vals_[i];
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    V *
    find(Addr key)
    {
        return const_cast<V *>(
            static_cast<const FlatAddrMap *>(this)->find(key));
    }

    /** Reference to the value for @p key, default-constructing it. */
    V &
    operator[](Addr key)
    {
        if (keys_.size() - count_ <= keys_.size() / 4)
            rehash(keys_.empty() ? kInitialSlots : keys_.size() * 2);
        std::size_t mask = keys_.size() - 1;
        std::size_t i = flat_hash_detail::mixAddr(key) & mask;
        while (keys_[i] != kAddrInvalid) {
            if (keys_[i] == key)
                return vals_[i];
            i = (i + 1) & mask;
        }
        keys_[i] = key;
        vals_[i] = V{};
        ++count_;
        return vals_[i];
    }

    std::size_t size() const { return count_; }

    /** Pre-size the table (power-of-two slots) to skip growth rehashes
     *  when the rough population is known up front. */
    void
    reserveSlots(std::size_t n)
    {
        if (n > keys_.size())
            rehash(n);
    }

    void
    clear()
    {
        keys_.clear();
        vals_.clear();
        count_ = 0;
    }

  private:
    static constexpr std::size_t kInitialSlots = 64;

    void
    rehash(std::size_t n)
    {
        std::vector<Addr> old_keys;
        std::vector<V> old_vals;
        old_keys.swap(keys_);
        old_vals.swap(vals_);
        keys_.assign(n, kAddrInvalid);
        vals_.assign(n, V{});
        std::size_t mask = n - 1;
        for (std::size_t j = 0; j < old_keys.size(); ++j) {
            if (old_keys[j] == kAddrInvalid)
                continue;
            std::size_t i = flat_hash_detail::mixAddr(old_keys[j]) & mask;
            while (keys_[i] != kAddrInvalid)
                i = (i + 1) & mask;
            keys_[i] = old_keys[j];
            vals_[i] = old_vals[j];
        }
    }

    std::vector<Addr> keys_; ///< kAddrInvalid = empty slot
    std::vector<V> vals_;    ///< value for the key at the same index
    std::size_t count_ = 0;
};

} // namespace secmem

#endif // SECMEM_SIM_FLAT_HASH_HH
