/**
 * @file
 * Cooperative cancellation for long-running simulation jobs.
 *
 * A CancelToken is a one-way flag an overseer (the experiment engine's
 * watchdog) raises from another thread; the simulation thread installs
 * the token with a CancelScope and polls it from its hot loops via
 * pollCancellation(), which throws JobCancelled once the flag is up.
 * The throw unwinds the job cleanly (all simulator state is owned by
 * the job), so a wedged or overlong job is reclaimed without taking
 * down the worker thread or the pool.
 *
 * Polling is cheap: a thread-local pointer test plus, when a token is
 * installed, one relaxed atomic load. Hot loops batch the poll (every
 * few thousand iterations) to keep even that off the critical path.
 */

#ifndef SECMEM_SIM_CANCEL_HH
#define SECMEM_SIM_CANCEL_HH

#include <atomic>

namespace secmem
{

/** Raised by pollCancellation() when the installed token is cancelled. */
struct JobCancelled
{
};

/** One-way cancellation flag, settable from any thread. */
class CancelToken
{
  public:
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

namespace cancel_detail
{
/** The calling thread's installed token (nullptr when none). */
CancelToken *&currentToken();
} // namespace cancel_detail

/** RAII: install @p token as the calling thread's cancellation point. */
class CancelScope
{
  public:
    explicit CancelScope(CancelToken *token)
        : prev_(cancel_detail::currentToken())
    {
        cancel_detail::currentToken() = token;
    }

    ~CancelScope() { cancel_detail::currentToken() = prev_; }

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    CancelToken *prev_;
};

/** Throw JobCancelled if the calling thread's token has been raised. */
inline void
pollCancellation()
{
    CancelToken *token = cancel_detail::currentToken();
    if (token && token->cancelled())
        throw JobCancelled{};
}

} // namespace secmem

#endif // SECMEM_SIM_CANCEL_HH
