/**
 * @file
 * Slab allocator for event-kernel nodes.
 *
 * Events are tiny, extremely frequent, and have stack-like lifetimes in
 * aggregate (everything scheduled is eventually executed), which is the
 * textbook slab case: nodes are carved from chunk arrays and recycled
 * through an intrusive free list, so the steady-state event loop does
 * zero heap allocation. Freed nodes are poisoned (payload overwritten
 * with kPoisonByte, live flag cleared) so use-after-free of a recycled
 * event is caught by the kernel's own asserts in debug builds and by
 * ASan region poisoning in sanitized builds, instead of silently
 * executing a stale callback.
 */

#ifndef SECMEM_SIM_EVENT_SLAB_HH
#define SECMEM_SIM_EVENT_SLAB_HH

#include <cstdint>
#include <cstring>
#include <memory>

#include "sim/event_fn.hh"
#include "sim/log.hh"
#include "sim/types.hh"

#if defined(__SANITIZE_ADDRESS__)
#define SECMEM_EVENT_SLAB_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SECMEM_EVENT_SLAB_ASAN 1
#endif
#endif

#if defined(SECMEM_EVENT_SLAB_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace secmem
{

/** One pooled event: key, tie-break, chain link, inline callable. */
struct EventNode
{
    Tick when = 0;
    std::uint64_t seq = 0;
    EventNode *next = nullptr; ///< bucket chain / free-list link
    bool live = false;         ///< allocated and not yet freed
    EventFn fn;
};

/** Chunked free-list allocator for EventNode (see file comment). */
class EventSlab
{
  public:
    static constexpr std::size_t kChunkNodes = 256;
    static constexpr unsigned char kPoisonByte = 0xDD;

    EventSlab() = default;
    EventSlab(const EventSlab &) = delete;
    EventSlab &operator=(const EventSlab &) = delete;
    ~EventSlab() { releaseAll(); }

    /** Take a node off the free list (carving a new chunk if dry). */
    EventNode *
    alloc()
    {
        if (!free_)
            grow();
        EventNode *n = free_;
#if defined(SECMEM_EVENT_SLAB_ASAN)
        ASAN_UNPOISON_MEMORY_REGION(n, sizeof(EventNode));
#endif
        SECMEM_ASSERT(!n->live, "event slab handed out a live node "
                                "(free-list corruption)");
        free_ = n->next;
        --freeNodes_;
        ++liveNodes_;
        n->next = nullptr;
        n->live = true;
        return n;
    }

    /**
     * Return a node to the free list. The callable must already be
     * destroyed (EventFn cleared); the payload is poisoned so stale
     * pointers into the node read garbage, and under ASan the node
     * body traps on any touch until it is reallocated.
     */
    void
    release(EventNode *n)
    {
        SECMEM_ASSERT(n->live, "double free of event node");
        n->fn = EventFn{};
        poison(n);
        n->live = false;
        n->next = free_;
        free_ = n;
        --liveNodes_;
        ++freeNodes_;
#if defined(SECMEM_EVENT_SLAB_ASAN)
        // Keep the chain link and live flag readable for the allocator
        // itself; everything else traps until realloc.
        ASAN_POISON_MEMORY_REGION(n, sizeof(EventNode));
        ASAN_UNPOISON_MEMORY_REGION(n, offsetof(EventNode, fn));
#endif
    }

    /** Nodes currently allocated to the queue. */
    std::uint64_t liveNodes() const { return liveNodes_; }
    /** Nodes parked on the free list. */
    std::uint64_t freeNodes() const { return freeNodes_; }
    /** Chunks ever carved (high-water footprint, never shrinks). */
    std::uint64_t chunks() const { return chunks_; }

    /**
     * True when every free-list node still carries the poison pattern
     * in its key bytes — the reuse-after-free tripwire is armed.
     */
    bool
    freeListPoisoned() const
    {
        for (EventNode *n = free_; n; n = n->next) {
#if defined(SECMEM_EVENT_SLAB_ASAN)
            ASAN_UNPOISON_MEMORY_REGION(n, sizeof(EventNode));
#endif
            unsigned char key[sizeof(n->when)];
            std::memcpy(key, &n->when, sizeof(key));
            bool ok = true;
            for (unsigned char b : key)
                ok = ok && b == kPoisonByte;
#if defined(SECMEM_EVENT_SLAB_ASAN)
            ASAN_POISON_MEMORY_REGION(n, sizeof(EventNode));
            ASAN_UNPOISON_MEMORY_REGION(n, offsetof(EventNode, fn));
#endif
            if (!ok)
                return false;
        }
        return true;
    }

  private:
    struct Chunk
    {
        EventNode nodes[kChunkNodes];
        std::unique_ptr<Chunk> next;
    };

    static void
    poison(EventNode *n)
    {
        // Poison the ordering key only: the chain link and live flag
        // stay meaningful for the free list itself, and EventFn was
        // already destroyed above.
        std::memset(&n->when, kPoisonByte, sizeof(n->when));
        std::memset(&n->seq, kPoisonByte, sizeof(n->seq));
    }

    void
    grow()
    {
        auto chunk = std::make_unique<Chunk>();
        for (std::size_t i = kChunkNodes; i-- > 0;) {
            EventNode *n = &chunk->nodes[i];
            poison(n);
            n->live = false;
            n->next = free_;
            free_ = n;
        }
        freeNodes_ += kChunkNodes;
        ++chunks_;
        chunk->next = std::move(chunks_head_);
        chunks_head_ = std::move(chunk);
#if defined(SECMEM_EVENT_SLAB_ASAN)
        for (std::size_t i = 0; i < kChunkNodes; ++i) {
            EventNode *n = &chunks_head_->nodes[i];
            ASAN_POISON_MEMORY_REGION(n, sizeof(EventNode));
            ASAN_UNPOISON_MEMORY_REGION(n, offsetof(EventNode, fn));
        }
#endif
    }

    void
    releaseAll()
    {
#if defined(SECMEM_EVENT_SLAB_ASAN)
        for (Chunk *c = chunks_head_.get(); c; c = c->next.get())
            ASAN_UNPOISON_MEMORY_REGION(c->nodes, sizeof(c->nodes));
#endif
        // Chunks own the nodes; unique_ptr chain tears them down.
        free_ = nullptr;
    }

    EventNode *free_ = nullptr;
    std::unique_ptr<Chunk> chunks_head_;
    std::uint64_t liveNodes_ = 0;
    std::uint64_t freeNodes_ = 0;
    std::uint64_t chunks_ = 0;
};

} // namespace secmem

#endif // SECMEM_SIM_EVENT_SLAB_HH
