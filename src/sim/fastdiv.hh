/**
 * @file
 * Division by a runtime-constant divisor without the hardware divider.
 *
 * The engine-scheduling hot path converts ticks to issue-slot indices
 * with a ceil-divide by the pipe's issue interval. The interval is
 * fixed at construction but not a compile-time constant, so the
 * compiler emits a 64-bit divide (~20-40 cycles) per probe. This
 * helper precomputes a Granlund-Montgomery reciprocal once and turns
 * the common case into a widening multiply plus shifts.
 *
 * Exactness: for a non-power-of-two divisor d, with l = ceil(log2 d)
 * and m = floor(2^(63+l) / d) + 1 (which always fits in 64 bits, since
 * 2^(l-1) < d implies m < 2^64), floor((m * x) / 2^(63+l)) equals
 * floor(x / d) for every x < 2^63 (Granlund & Montgomery 1994,
 * Theorem 4.2 with N = 63). Larger x — which simulated ticks never
 * reach, but the API must not silently corrupt — falls back to the
 * hardware divide, so results are bit-identical to plain division for
 * all inputs. Powers of two use a plain shift.
 */

#ifndef SECMEM_SIM_FASTDIV_HH
#define SECMEM_SIM_FASTDIV_HH

#include <cstdint>

namespace secmem
{

/** Exact floor/ceil division by a divisor fixed at construction. */
class FastDiv
{
  public:
    FastDiv() : FastDiv(1) {}

    explicit FastDiv(std::uint64_t d) : d_(d)
    {
        shift_ = 0;
        while ((std::uint64_t{1} << shift_) < d)
            ++shift_;
        if ((d & (d - 1)) == 0) {
            magic_ = 0; // power of two: shift only
        } else {
            unsigned __int128 num =
                static_cast<unsigned __int128>(1) << (63 + shift_);
            magic_ = static_cast<std::uint64_t>(num / d) + 1;
        }
    }

    /** floor(x / divisor), exact for all 64-bit x. */
    std::uint64_t
    div(std::uint64_t x) const
    {
        if (magic_ == 0)
            return x >> shift_;
        if (x >> 63) // out of the reciprocal's proven range: never in
            return x / d_; // practice (ticks), but stay exact anyway
        std::uint64_t hi = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * magic_) >> 64);
        return hi >> (shift_ - 1);
    }

    /**
     * ceil(x / divisor) computed as div(x + divisor - 1): the wrapping
     * behaviour near 2^64 matches the plain-division expression it
     * replaces, so callers stay bit-identical even out of range.
     */
    std::uint64_t ceilDiv(std::uint64_t x) const { return div(x + d_ - 1); }

    std::uint64_t divisor() const { return d_; }

  private:
    std::uint64_t d_;
    std::uint64_t magic_;
    unsigned shift_;
};

} // namespace secmem

#endif // SECMEM_SIM_FASTDIV_HH
