/**
 * @file
 * Lightweight statistics package: scalar counters, means, ratios and
 * fixed-bucket histograms, grouped per component and dumpable as text.
 *
 * Components own Stats::Group instances; the experiment harness reads
 * them after a run. No global registry — a simulated system carries its
 * stats explicitly, so multiple systems can coexist in one process.
 */

#ifndef SECMEM_SIM_STATS_HH
#define SECMEM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace secmem::stats
{

/** Monotonic scalar count (events, bytes, cycles...). */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Instantaneous level (queue depth, residency...) with a high-water
 * mark. Unlike Counter this is set, not accumulated: set() records the
 * current level and tracks the maximum ever seen, so "gauge = n" never
 * has to be faked with the reset()+inc(n) counter idiom (which briefly
 * reads as 0 and loses the high-water mark on every update).
 */
class Gauge
{
  public:
    void
    set(std::uint64_t v)
    {
        value_ = v;
        max_ = std::max(max_, v);
    }

    std::uint64_t value() const { return value_; }
    std::uint64_t max() const { return max_; }

    void
    reset()
    {
        value_ = 0;
        max_ = 0;
    }

  private:
    std::uint64_t value_ = 0;
    std::uint64_t max_ = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Sample
{
  public:
    void
    record(double v)
    {
        sum_ += v;
        ++count_;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width bucket histogram over [0, bucketWidth * nBuckets). */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t n_buckets = 32)
        : width_(bucket_width), buckets_(n_buckets, 0)
    {}

    void
    record(double v)
    {
        sample_.record(v);
        std::size_t idx = v < 0 ? 0 : static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }

    const Sample &sample() const { return sample_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return width_; }

    void
    reset()
    {
        sample_.reset();
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }

  private:
    Sample sample_;
    double width_;
    std::vector<std::uint64_t> buckets_;
};

/**
 * Named collection of stats belonging to one component.
 *
 * Stats are registered lazily by name; dump() emits "group.name value"
 * lines suitable for diffing across runs.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name) { return counters_[name]; }
    Gauge &gauge(const std::string &name) { return gauges_[name]; }
    Sample &sample(const std::string &name) { return samples_[name]; }

    /**
     * Named histogram; @p bucket_width and @p n_buckets apply on first
     * registration only (later calls return the existing instance).
     */
    Histogram &
    histogram(const std::string &name, double bucket_width = 1.0,
              std::size_t n_buckets = 32)
    {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_.emplace(name,
                                     Histogram(bucket_width, n_buckets))
                     .first;
        }
        return it->second;
    }

    const std::string &name() const { return name_; }

    /** Value of a counter, 0 if never touched. */
    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    // Read-only iteration, for the obs::StatRegistry dumpers.
    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, Gauge> &gauges() const { return gauges_; }
    const std::map<std::string, Sample> &samples() const { return samples_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    void dump(std::ostream &os) const;

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : gauges_)
            kv.second.reset();
        for (auto &kv : samples_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Sample> samples_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace secmem::stats

#endif // SECMEM_SIM_STATS_HH
