/**
 * @file
 * Lightweight statistics package: scalar counters, means, ratios and
 * fixed-bucket histograms, grouped per component and dumpable as text.
 *
 * Components own Stats::Group instances; the experiment harness reads
 * them after a run. No global registry — a simulated system carries its
 * stats explicitly, so multiple systems can coexist in one process.
 */

#ifndef SECMEM_SIM_STATS_HH
#define SECMEM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace secmem::stats
{

/** Monotonic scalar count (events, bytes, cycles...). */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Instantaneous level (queue depth, residency...) with a high-water
 * mark. Unlike Counter this is set, not accumulated: set() records the
 * current level and tracks the maximum ever seen, so "gauge = n" never
 * has to be faked with the reset()+inc(n) counter idiom (which briefly
 * reads as 0 and loses the high-water mark on every update).
 */
class Gauge
{
  public:
    void
    set(std::uint64_t v)
    {
        value_ = v;
        max_ = std::max(max_, v);
    }

    std::uint64_t value() const { return value_; }
    std::uint64_t max() const { return max_; }

    void
    reset()
    {
        value_ = 0;
        max_ = 0;
    }

  private:
    std::uint64_t value_ = 0;
    std::uint64_t max_ = 0;
};

/** Running mean/min/max of a sampled quantity. */
class Sample
{
  public:
    void
    record(double v)
    {
        sum_ += v;
        ++count_;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width bucket histogram over [0, bucketWidth * nBuckets). */
class Histogram
{
  public:
    Histogram(double bucket_width = 1.0, std::size_t n_buckets = 32)
        : width_(bucket_width), buckets_(n_buckets, 0)
    {}

    void
    record(double v)
    {
        sample_.record(v);
        std::size_t idx = v < 0 ? 0 : static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }

    const Sample &sample() const { return sample_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return width_; }

    void
    reset()
    {
        sample_.reset();
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }

  private:
    Sample sample_;
    double width_;
    std::vector<std::uint64_t> buckets_;
};

/**
 * Log-bucketed integer histogram with cheap percentile queries.
 *
 * Buckets are HDR-style: values below 2^kSubBits map to their own
 * bucket exactly; above that, each power of two is split into
 * 2^kSubBits sub-buckets, so relative resolution is bounded at
 * 2^-kSubBits (12.5%) across the whole 64-bit range while the bucket
 * array stays small and fixed-size. Unlike the fixed-width Histogram
 * this needs no a-priori range, which is what latency distributions
 * (ticks from one to millions) require. Mergeable, so per-shard
 * histograms can be combined into a fleet view.
 */
class LogHistogram
{
  public:
    static constexpr unsigned kSubBits = 3;
    static constexpr std::size_t kBuckets =
        (64 - kSubBits + 1) << kSubBits; // covers all of uint64_t

    void
    record(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        sum_ += v;
        ++count_;
        min_ = count_ == 1 ? v : std::min(min_, v);
        max_ = count_ == 1 ? v : std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Value at quantile @p q in [0, 1]: the lower bound of the bucket
     * holding the ceil(q * count)-th observation. Exact below
     * 2^kSubBits, within 12.5% above.
     */
    std::uint64_t
    percentile(double q) const
    {
        if (!count_)
            return 0;
        if (q <= 0.0)
            return min_;
        if (q >= 1.0)
            return max_;
        std::uint64_t target = static_cast<std::uint64_t>(
            q * static_cast<double>(count_));
        if (target * 1.0 < q * static_cast<double>(count_))
            ++target; // ceil
        if (!target)
            target = 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += buckets_[i];
            if (seen >= target)
                return std::max(bucketLow(i), min_);
        }
        return max_;
    }

    void
    merge(const LogHistogram &other)
    {
        if (!other.count_)
            return;
        for (std::size_t i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        sum_ += other.sum_;
        min_ = count_ ? std::min(min_, other.min_) : other.min_;
        max_ = count_ ? std::max(max_, other.max_) : other.max_;
        count_ += other.count_;
    }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        sum_ = count_ = 0;
        min_ = max_ = 0;
    }

    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < (std::uint64_t{1} << kSubBits))
            return static_cast<std::size_t>(v);
        unsigned lz = 63;
        while (!(v >> lz))
            --lz; // lz = floor(log2(v)), v >= 2^kSubBits so lz >= kSubBits
        std::size_t sub = static_cast<std::size_t>(
            (v >> (lz - kSubBits)) & ((std::uint64_t{1} << kSubBits) - 1));
        return ((static_cast<std::size_t>(lz) - kSubBits + 1) << kSubBits) +
               sub;
    }

    /** Smallest value mapping to bucket @p idx (inverse of bucketIndex). */
    static std::uint64_t
    bucketLow(std::size_t idx)
    {
        if (idx < (std::size_t{1} << kSubBits))
            return idx;
        std::size_t shift = (idx >> kSubBits) - 1;
        std::uint64_t sub = idx & ((std::size_t{1} << kSubBits) - 1);
        return ((std::uint64_t{1} << kSubBits) | sub) << shift;
    }

  private:
    std::vector<std::uint64_t> buckets_ =
        std::vector<std::uint64_t>(kBuckets, 0);
    std::uint64_t sum_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Named collection of stats belonging to one component.
 *
 * Stats are registered lazily by name; dump() emits "group.name value"
 * lines suitable for diffing across runs.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &name) { return counters_[name]; }
    Gauge &gauge(const std::string &name) { return gauges_[name]; }
    Sample &sample(const std::string &name) { return samples_[name]; }

    /**
     * Named histogram; @p bucket_width and @p n_buckets apply on first
     * registration only (later calls return the existing instance).
     */
    Histogram &
    histogram(const std::string &name, double bucket_width = 1.0,
              std::size_t n_buckets = 32)
    {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_.emplace(name,
                                     Histogram(bucket_width, n_buckets))
                     .first;
        }
        return it->second;
    }

    /** Named log-bucketed histogram (see LogHistogram). */
    LogHistogram &logHistogram(const std::string &name)
    {
        return logHistograms_[name];
    }

    const std::string &name() const { return name_; }

    /** Value of a counter, 0 if never touched. */
    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    // Read-only iteration, for the obs::StatRegistry dumpers.
    const std::map<std::string, Counter> &counters() const { return counters_; }
    const std::map<std::string, Gauge> &gauges() const { return gauges_; }
    const std::map<std::string, Sample> &samples() const { return samples_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, LogHistogram> &logHistograms() const
    {
        return logHistograms_;
    }

    void dump(std::ostream &os) const;

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : gauges_)
            kv.second.reset();
        for (auto &kv : samples_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
        for (auto &kv : logHistograms_)
            kv.second.reset();
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Sample> samples_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, LogHistogram> logHistograms_;
};

} // namespace secmem::stats

#endif // SECMEM_SIM_STATS_HH
