/**
 * @file
 * Crash-safe file emission: write-to-temp then rename.
 *
 * Every artifact the toolchain persists (result-store records, figure
 * CSV/JSON, stat dumps, traces) goes through atomicWriteFile so a
 * crashed or killed process never leaves a truncated file under the
 * final name — readers either see the old content or the complete new
 * content. The temporary lives in the same directory as the target
 * (rename(2) is atomic only within a filesystem) and is suffixed with
 * the writer's pid so concurrent writers cannot collide.
 */

#ifndef SECMEM_SIM_ATOMIC_FILE_HH
#define SECMEM_SIM_ATOMIC_FILE_HH

#include <string>

namespace secmem
{

/**
 * Atomically replace @p path with @p content. Returns false (leaving
 * any previous file intact and removing the temporary) on any failure.
 */
bool atomicWriteFile(const std::string &path, const std::string &content);

} // namespace secmem

#endif // SECMEM_SIM_ATOMIC_FILE_HH
