/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something suspicious but survivable happened.
 * inform() — plain status output.
 */

#ifndef SECMEM_SIM_LOG_HH
#define SECMEM_SIM_LOG_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace secmem
{

/**
 * Thrown instead of aborting when a PanicThrowScope is active on the
 * calling thread: lets a supervising engine contain a panicking
 * simulation job (one bad job must not take down the worker pool).
 */
class PanicError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

namespace log_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
/**
 * Rate-limited warning: each (file, line) site prints at most
 * kWarnSiteLimit messages, then one suppression notice; later
 * repetitions are counted silently. Keeps tamper campaigns and bad-env
 * loops from flooding stderr with identical lines. Thread-safe.
 */
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Per-site cap on printed warnings before suppression kicks in. */
constexpr std::uint64_t kWarnSiteLimit = 8;

/** Warnings actually printed / silently suppressed (process-wide). */
std::uint64_t warnEmitted();
std::uint64_t warnSuppressed();
/** Distinct (file, line) sites that warned at least once / that hit
 * the suppression cap. Together with the totals above these are what
 * SecureSystem::registerStats() exports as `log.*` formula stats. */
std::uint64_t warnSites();
std::uint64_t warnSuppressedSites();
/** Forget all per-site warning history (test support). */
void warnResetForTests();

/** True when panics on this thread throw instead of aborting. */
bool panicThrows();

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace log_detail

/**
 * RAII crash-isolation scope: while alive, SECMEM_PANIC (and failed
 * SECMEM_ASSERTs) on *this thread* throw PanicError instead of calling
 * abort(). Used by engine workers around each simulation job so an
 * internal invariant violation is contained, reported, and retried or
 * recorded as a job failure. Nests; other threads are unaffected.
 */
class PanicThrowScope
{
  public:
    PanicThrowScope();
    ~PanicThrowScope();

    PanicThrowScope(const PanicThrowScope &) = delete;
    PanicThrowScope &operator=(const PanicThrowScope &) = delete;

  private:
    unsigned prev_;
};

#define SECMEM_PANIC(...) \
    ::secmem::log_detail::panicImpl(__FILE__, __LINE__, \
        ::secmem::log_detail::format(__VA_ARGS__))

#define SECMEM_FATAL(...) \
    ::secmem::log_detail::fatalImpl(__FILE__, __LINE__, \
        ::secmem::log_detail::format(__VA_ARGS__))

#define SECMEM_WARN(...) \
    ::secmem::log_detail::warnImpl(__FILE__, __LINE__, \
        ::secmem::log_detail::format(__VA_ARGS__))

#define SECMEM_INFORM(...) \
    ::secmem::log_detail::informImpl(::secmem::log_detail::format(__VA_ARGS__))

/** Assert an invariant with a formatted message on failure. */
#define SECMEM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SECMEM_PANIC("assertion '%s' failed: %s", #cond, \
                ::secmem::log_detail::format(__VA_ARGS__).c_str()); \
        } \
    } while (0)

} // namespace secmem

#endif // SECMEM_SIM_LOG_HH
