/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something suspicious but survivable happened.
 * inform() — plain status output.
 */

#ifndef SECMEM_SIM_LOG_HH
#define SECMEM_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace secmem
{

namespace log_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace log_detail

#define SECMEM_PANIC(...) \
    ::secmem::log_detail::panicImpl(__FILE__, __LINE__, \
        ::secmem::log_detail::format(__VA_ARGS__))

#define SECMEM_FATAL(...) \
    ::secmem::log_detail::fatalImpl(__FILE__, __LINE__, \
        ::secmem::log_detail::format(__VA_ARGS__))

#define SECMEM_WARN(...) \
    ::secmem::log_detail::warnImpl(::secmem::log_detail::format(__VA_ARGS__))

#define SECMEM_INFORM(...) \
    ::secmem::log_detail::informImpl(::secmem::log_detail::format(__VA_ARGS__))

/** Assert an invariant with a formatted message on failure. */
#define SECMEM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SECMEM_PANIC("assertion '%s' failed: %s", #cond, \
                ::secmem::log_detail::format(__VA_ARGS__).c_str()); \
        } \
    } while (0)

} // namespace secmem

#endif // SECMEM_SIM_LOG_HH
