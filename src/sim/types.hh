/**
 * @file
 * Fundamental scalar types and global constants for the secmem simulator.
 *
 * Everything in the simulator is expressed in processor clock ticks
 * (Tick) and byte addresses (Addr). The structural constants below mirror
 * the experimental platform of Yan et al., ISCA 2006, Section 5.
 */

#ifndef SECMEM_SIM_TYPES_HH
#define SECMEM_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace secmem
{

/** Simulated processor cycle count. The core runs at 5 GHz. */
using Tick = std::uint64_t;

/** Physical byte address within the simulated machine. */
using Addr = std::uint64_t;

/** Sentinel for "no tick" / "not scheduled". */
constexpr Tick kTickNever = ~Tick(0);

/** Sentinel for "no address". */
constexpr Addr kAddrInvalid = ~Addr(0);

/** Cache block size used throughout the platform (L1, L2, counter cache). */
constexpr std::size_t kBlockBytes = 64;

/** AES operates on 16-byte chunks; a block holds four of them. */
constexpr std::size_t kChunkBytes = 16;
constexpr std::size_t kChunksPerBlock = kBlockBytes / kChunkBytes;

/** Simulated core clock (Hz): 5 GHz as in the paper. */
constexpr std::uint64_t kCoreHz = 5'000'000'000ull;

/** Round an address down to its block base. */
constexpr Addr
blockBase(Addr a)
{
    return a & ~Addr(kBlockBytes - 1);
}

/** Byte offset of an address within its block. */
constexpr std::size_t
blockOffset(Addr a)
{
    return static_cast<std::size_t>(a & (kBlockBytes - 1));
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace secmem

#endif // SECMEM_SIM_TYPES_HH
