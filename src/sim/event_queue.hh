/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-per-system EventQueue orders callbacks by (tick,
 * insertion sequence). Components schedule work in the future; the
 * system driver advances simulated time by draining events. Ties are
 * broken by insertion order, which makes runs fully deterministic.
 *
 * Two kernels implement that contract behind one API:
 *
 *  - **calendar** (default): a ring of kRingSlots one-tick buckets
 *    covering [now, now + kRingSlots), backed by a spill min-heap for
 *    events beyond the window. Event nodes come from a slab allocator
 *    and carry an EventFn inline callable, so the steady-state loop
 *    does no heap allocation. O(1) schedule and pop for the near-future
 *    traffic a cycle-level simulator generates.
 *  - **heap**: the original std::priority_queue kernel, kept as a
 *    *differential oracle* — same layering as the naive crypto
 *    reference (src/ref/naive.*). CI runs both and requires
 *    bit-identical stats and final tick.
 *
 * Because the ring spans exactly kRingSlots ticks with one-tick-wide
 * buckets, every bucket chain holds events of a single tick, and chain
 * order (FIFO append) *is* insertion-seq order. Spill events promote
 * into the ring in (when, seq) order before any same-tick event can be
 * scheduled directly, so the two kernels pop in exactly the same order.
 */

#ifndef SECMEM_SIM_EVENT_QUEUE_HH
#define SECMEM_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <queue>
#include <string_view>
#include <vector>

#include "sim/event_fn.hh"
#include "sim/event_slab.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Which event-queue implementation a queue instance runs on. */
enum class EventKernel
{
    Calendar,   ///< bucket-ring + spill heap, slab-allocated nodes
    LegacyHeap, ///< std::priority_queue oracle kernel
};

/** Deterministic event queue keyed by (tick, insertion seq). */
class EventQueue
{
  public:
    using Callback = EventFn;

    /** Bucket ring size; also the span of the near-future window. */
    static constexpr std::size_t kRingBits = 12;
    static constexpr std::size_t kRingSlots = std::size_t{1} << kRingBits;
    static constexpr std::size_t kRingMask = kRingSlots - 1;
    /** Occupancy bitmap words (64 slots per word). */
    static constexpr std::size_t kRingWords = kRingSlots / 64;

    explicit EventQueue(EventKernel kernel = defaultKernel())
        : kernel_(kernel)
    {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue() { clearPending(); }

    /**
     * Process-wide default kernel for new queues: setDefaultKernel()
     * override first, then the SECMEM_EVENT_KERNEL environment
     * variable, else Calendar. Unknown env names are hard errors.
     */
    static EventKernel defaultKernel();
    /** Override the default (CLI flag beats env beats built-in). */
    static void setDefaultKernel(EventKernel k);

    /** Canonical name of @p k: "calendar" or "heap". */
    static const char *kernelName(EventKernel k);
    /**
     * Parse a kernel name; unknown names are hard errors naming
     * @p source (e.g. "--event-kernel" or "SECMEM_EVENT_KERNEL").
     */
    static EventKernel parseKernelName(std::string_view name,
                                       const char *source);

    /** The kernel this queue instance runs on. */
    EventKernel kernel() const { return kernel_; }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return pendingCount_; }

    /** True when no events remain. */
    bool empty() const { return pendingCount_ == 0; }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void schedule(Tick when, Callback cb);

    /**
     * Schedule @p cb to run @p delta ticks from now. Saturates at
     * kTickNever: a kTickNever-derived timeout must park at the end of
     * time, not wrap Tick and trip the scheduled-in-the-past assert
     * (or silently reorder in release builds).
     */
    void
    scheduleIn(Tick delta, Callback cb)
    {
        Tick when =
            delta > kTickNever - now_ ? kTickNever : now_ + delta;
        schedule(when, std::move(cb));
    }

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Events scheduled exactly at @p limit still run.
     * @return the final simulated time.
     */
    Tick runUntil(Tick limit = kTickNever);

    /** Run exactly one event (if any); returns false when empty. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * Kernel statistics: "scheduled"/"executed" counters, a
     * "cb_heap_fallback" counter (callables too big for EventFn's
     * inline window), plus a "pending" gauge whose max() is the
     * high-water mark of queued events. The gauge is updated on
     * schedule only: depth can only grow on a push, so a pop-side
     * update can never advance the high-water mark and was pure
     * hot-loop overhead.
     */
    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    // Introspection for the kernel's own tests.
    /** Calendar kernel's node allocator (empty on the heap kernel). */
    const EventSlab &slab() const { return slab_; }
    /** Events parked beyond the ring window (calendar kernel). */
    std::size_t spillSize() const { return spill_.size(); }
    /** Events resident in the bucket ring (calendar kernel). */
    std::size_t ringSize() const { return ringCount_; }

  private:
    // ---- calendar kernel ----
    struct Bucket
    {
        EventNode *head = nullptr;
        EventNode *tail = nullptr;
    };

    /** Min-heap order over spill nodes: earliest (when, seq) first. */
    struct SpillLater
    {
        bool
        operator()(const EventNode *a, const EventNode *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    void
    appendToRing(EventNode *n)
    {
        std::size_t idx = n->when & kRingMask;
        Bucket &b = ring_[idx];
        n->next = nullptr;
        if (b.tail)
            b.tail->next = n;
        else
            b.head = n;
        b.tail = n;
        ringBits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        ++ringCount_;
    }

    /** Clear the occupancy bit of a just-emptied bucket. */
    void
    clearSlot(std::size_t idx)
    {
        ringBits_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /**
     * First occupied slot at or (circularly) after @p start. Requires
     * ringCount_ > 0. Word-granular: finding the next event costs at
     * most a 64-word scan instead of walking up to 4096 buckets —
     * the per-pop slot walk was measurable once everything around the
     * kernel got fast.
     */
    std::size_t
    nextOccupiedSlot(std::size_t start) const
    {
        std::size_t w = start >> 6;
        std::uint64_t first =
            ringBits_[w] & (~std::uint64_t{0} << (start & 63));
        if (first)
            return (w << 6) |
                   static_cast<std::size_t>(__builtin_ctzll(first));
        for (std::size_t k = 1; k <= kRingWords; ++k) {
            std::size_t w2 = (w + k) & (kRingWords - 1);
            if (ringBits_[w2])
                return (w2 << 6) | static_cast<std::size_t>(
                                       __builtin_ctzll(ringBits_[w2]));
        }
        SECMEM_FATAL("ring bitmap empty with ringCount_=%zu", ringCount_);
    }

    /**
     * Move every spill event inside the ring window [now_, now_ +
     * kRingSlots) into its bucket. Must run whenever now_ advances,
     * *before* any callback or caller can schedule() — that is what
     * keeps promoted events ahead of later same-tick direct schedules
     * in bucket-chain (= seq) order.
     */
    void
    promote()
    {
        while (!spill_.empty() &&
               spill_.front()->when - now_ < kRingSlots) {
            std::pop_heap(spill_.begin(), spill_.end(), SpillLater{});
            EventNode *n = spill_.back();
            spill_.pop_back();
            appendToRing(n);
        }
    }

    /**
     * Pop the earliest calendar event with when <= @p limit, advancing
     * now_ to its tick; nullptr when none qualifies (now_ is then left
     * at min(first-event tick, limit)).
     */
    EventNode *popCalendarUpTo(Tick limit);

    // ---- legacy heap kernel (differential oracle) ----
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Move the front entry out of the heap. std::priority_queue::top()
     * is const, so the const_cast-move idiom is needed to avoid a deep
     * copy; it is safe because the comparator orders by when/seq only
     * and the moved-from entry is popped before the heap is touched
     * again.
     */
    HeapEntry
    popEntry()
    {
        HeapEntry e = std::move(const_cast<HeapEntry &>(heap_.top()));
        heap_.pop();
        return e;
    }

    /** Destroy all pending events (reset / destruction). */
    void clearPending();

    EventKernel kernel_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t pendingCount_ = 0;

    std::array<Bucket, kRingSlots> ring_{};
    /** One bit per slot: bucket non-empty. Kept exactly in sync with
     *  the bucket chains by appendToRing / clearSlot. */
    std::array<std::uint64_t, kRingWords> ringBits_{};
    std::size_t ringCount_ = 0;
    std::vector<EventNode *> spill_;
    EventSlab slab_;

    std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;

    stats::Group stats_{"events"};
    // Cached references: schedule()/pop are hot, skip the map lookup.
    stats::Counter &scheduledStat_ = stats_.counter("scheduled");
    stats::Counter &executedStat_ = stats_.counter("executed");
    stats::Counter &cbHeapFallbackStat_ =
        stats_.counter("cb_heap_fallback");
    stats::Gauge &pendingStat_ = stats_.gauge("pending");
};

} // namespace secmem

#endif // SECMEM_SIM_EVENT_QUEUE_HH
