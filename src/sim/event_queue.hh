/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-per-system EventQueue orders callbacks by (tick,
 * insertion sequence). Components schedule work in the future; the
 * system driver advances simulated time by draining events. Ties are
 * broken by insertion order, which makes runs fully deterministic.
 */

#ifndef SECMEM_SIM_EVENT_QUEUE_HH
#define SECMEM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Deterministic min-heap event queue keyed by tick. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Schedule @p cb to run at absolute tick @p when.
     * Scheduling in the past is a simulator bug.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delta ticks from now. */
    void scheduleIn(Tick delta, Callback cb) { schedule(now_ + delta, std::move(cb)); }

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Events scheduled exactly at @p limit still run.
     * @return the final simulated time.
     */
    Tick runUntil(Tick limit = kTickNever);

    /** Run exactly one event (if any); returns false when empty. */
    bool step();

    /** Drop all pending events and reset time to zero. */
    void reset();

    /**
     * Kernel statistics: "scheduled"/"executed" counters plus a
     * "pending" gauge whose max() is the high-water mark of queued
     * events.
     */
    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Move the front entry out of the heap. std::priority_queue::top()
     * is const, so a plain `Entry e = heap_.top()` deep-copies the
     * std::function (and whatever captures it holds) on every pop. The
     * const_cast-move is safe here: the comparator orders by when/seq
     * only, and the moved-from entry is popped before the heap is
     * touched again.
     */
    Entry
    popEntry()
    {
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        return e;
    }

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    stats::Group stats_{"events"};
    // Cached references: schedule()/step() are hot, skip the map lookup.
    stats::Counter &scheduledStat_ = stats_.counter("scheduled");
    stats::Counter &executedStat_ = stats_.counter("executed");
    stats::Gauge &pendingStat_ = stats_.gauge("pending");
};

} // namespace secmem

#endif // SECMEM_SIM_EVENT_QUEUE_HH
