/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * A small, fast xoshiro256** generator seeded via splitmix64. All
 * randomness in the simulator flows through explicitly-seeded Rng
 * instances so that every experiment is exactly reproducible.
 */

#ifndef SECMEM_SIM_RNG_HH
#define SECMEM_SIM_RNG_HH

#include <cstdint>

namespace secmem
{

/** Deterministic 64-bit PRNG (xoshiro256**) with convenience helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5ec3e301ULL) { reseed(seed); }

    /** Re-initialise the state from a single 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 expansion of the seed.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free multiply-shift; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Integer threshold such that chanceThresh(threshFor(p)) draws the
     * same stream and returns the same answers as chance(p):
     * uniform() < p  ⟺  (next() >> 11) * 2^-53 < p  ⟺
     * next() >> 11 < ceil(p * 2^53), every step exact (the mantissa is
     * 53 bits wide and scaling by a power of two never rounds). Hoist
     * the threshold out of per-op loops to trade the int-to-double
     * conversion and FP compare for one integer compare.
     */
    static std::uint64_t
    threshFor(double p)
    {
        if (p <= 0.0)
            return 0;
        if (p >= 1.0)
            return std::uint64_t{1} << 53;
        double scaled = p * 0x1.0p53;
        auto t = static_cast<std::uint64_t>(scaled);
        return t + (static_cast<double>(t) < scaled ? 1 : 0);
    }

    /** chance(p) with a precomputed threshFor(p) threshold. */
    bool chanceThresh(std::uint64_t t) { return (next() >> 11) < t; }

  private:
    std::uint64_t state_[4];
};

} // namespace secmem

#endif // SECMEM_SIM_RNG_HH
