#include "sim/stats.hh"

#include <iomanip>

namespace secmem::stats
{

void
Group::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value() << '\n';
    for (const auto &kv : samples_) {
        const Sample &s = kv.second;
        os << name_ << '.' << kv.first
           << " mean=" << std::setprecision(6) << s.mean()
           << " count=" << s.count()
           << " min=" << s.min()
           << " max=" << s.max() << '\n';
    }
}

} // namespace secmem::stats
