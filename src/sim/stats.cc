#include "sim/stats.hh"

#include <iomanip>

namespace secmem::stats
{

void
Group::dump(std::ostream &os) const
{
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value() << '\n';
    for (const auto &kv : gauges_) {
        os << name_ << '.' << kv.first << ' ' << kv.second.value()
           << " max=" << kv.second.max() << '\n';
    }
    for (const auto &kv : samples_) {
        const Sample &s = kv.second;
        os << name_ << '.' << kv.first
           << " mean=" << std::setprecision(6) << s.mean()
           << " count=" << s.count()
           << " min=" << s.min()
           << " max=" << s.max() << '\n';
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        const Sample &s = h.sample();
        os << name_ << '.' << kv.first
           << " mean=" << std::setprecision(6) << s.mean()
           << " count=" << s.count()
           << " min=" << s.min()
           << " max=" << s.max()
           << " buckets=[";
        const auto &b = h.buckets();
        for (std::size_t i = 0; i < b.size(); ++i)
            os << (i ? "," : "") << b[i];
        os << "]\n";
    }
    for (const auto &kv : logHistograms_) {
        const LogHistogram &h = kv.second;
        os << name_ << '.' << kv.first
           << " mean=" << std::setprecision(6) << h.mean()
           << " count=" << h.count()
           << " min=" << h.min()
           << " p50=" << h.percentile(0.50)
           << " p90=" << h.percentile(0.90)
           << " p99=" << h.percentile(0.99)
           << " max=" << h.max() << '\n';
    }
}

} // namespace secmem::stats
