#include "sim/event_queue.hh"

#include <utility>

#include "obs/profiler.hh"
#include "sim/log.hh"

namespace secmem
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    SECMEM_ASSERT(when >= now_,
        "event scheduled in the past: when=%llu now=%llu",
        static_cast<unsigned long long>(when),
        static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, seq_++, std::move(cb)});
    scheduledStat_.inc();
    pendingStat_.set(heap_.size());
}

Tick
EventQueue::runUntil(Tick limit)
{
    SECMEM_PROF(EventQueue);
    while (!heap_.empty() && heap_.top().when <= limit) {
        // Move out before pop: the callback may schedule new events.
        Entry e = popEntry();
        pendingStat_.set(heap_.size());
        now_ = e.when;
        executedStat_.inc();
        e.cb();
    }
    if (now_ < limit && limit != kTickNever)
        now_ = limit;
    return now_;
}

bool
EventQueue::step()
{
    SECMEM_PROF(EventQueue);
    if (heap_.empty())
        return false;
    Entry e = popEntry();
    pendingStat_.set(heap_.size());
    now_ = e.when;
    executedStat_.inc();
    e.cb();
    return true;
}

void
EventQueue::reset()
{
    heap_ = {};
    now_ = 0;
    seq_ = 0;
    stats_.reset();
}

} // namespace secmem
