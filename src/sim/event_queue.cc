#include "sim/event_queue.hh"

#include <cstdlib>
#include <utility>

#include "obs/profiler.hh"
#include "sim/log.hh"

namespace secmem
{

namespace
{

/**
 * Process-wide default-kernel slot. Lazily seeded from the
 * SECMEM_EVENT_KERNEL environment variable on first use so headless
 * runs (tests, CI differential legs) can flip kernels without plumbing
 * a flag; setDefaultKernel() (the CLI flag) overwrites it.
 */
EventKernel &
defaultKernelSlot()
{
    static EventKernel slot = [] {
        const char *env = std::getenv("SECMEM_EVENT_KERNEL");
        if (env && *env)
            return EventQueue::parseKernelName(env,
                                               "SECMEM_EVENT_KERNEL");
        return EventKernel::Calendar;
    }();
    return slot;
}

} // namespace

EventKernel
EventQueue::defaultKernel()
{
    return defaultKernelSlot();
}

void
EventQueue::setDefaultKernel(EventKernel k)
{
    defaultKernelSlot() = k;
}

const char *
EventQueue::kernelName(EventKernel k)
{
    switch (k) {
      case EventKernel::Calendar:
        return "calendar";
      case EventKernel::LegacyHeap:
        return "heap";
    }
    return "?";
}

EventKernel
EventQueue::parseKernelName(std::string_view name, const char *source)
{
    if (name == "calendar")
        return EventKernel::Calendar;
    if (name == "heap" || name == "legacy-heap")
        return EventKernel::LegacyHeap;
    SECMEM_FATAL("unknown event kernel '%.*s' (from %s); "
                 "known kernels: calendar, heap",
        static_cast<int>(name.size()), name.data(), source);
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    SECMEM_ASSERT(when >= now_,
        "event scheduled in the past: when=%llu now=%llu",
        static_cast<unsigned long long>(when),
        static_cast<unsigned long long>(now_));
    if (cb.onHeap())
        cbHeapFallbackStat_.inc();
    scheduledStat_.inc();
    ++pendingCount_;
    pendingStat_.set(pendingCount_);
    if (kernel_ == EventKernel::LegacyHeap) {
        heap_.push(HeapEntry{when, seq_++, std::move(cb)});
        return;
    }
    EventNode *n = slab_.alloc();
    n->when = when;
    n->seq = seq_++;
    n->fn = std::move(cb);
    if (when - now_ < kRingSlots)
        appendToRing(n);
    else {
        spill_.push_back(n);
        std::push_heap(spill_.begin(), spill_.end(), SpillLater{});
    }
}

EventNode *
EventQueue::popCalendarUpTo(Tick limit)
{
    if (pendingCount_ == 0)
        return nullptr;
    promote();
    if (ringCount_ == 0) {
        // Everything pending is beyond the window: jump time to the
        // spill frontier (or stop at the limit, whichever is first).
        Tick first = spill_.front()->when;
        if (first > limit) {
            if (now_ < limit)
                now_ = limit;
            promote();
            return nullptr;
        }
        now_ = first;
        promote();
    }
    // Ring invariant: every resident event lies in [now_, now_ +
    // kRingSlots), so bucket (now_ + k) & mask holds only tick
    // now_ + k, and the circular slot distance from now_'s slot to the
    // first occupied slot is exactly the tick distance to the earliest
    // ring event.
    std::size_t s = now_ & kRingMask;
    std::size_t f = nextOccupiedSlot(s);
    Tick next = now_ + static_cast<Tick>((f - s) & kRingMask);
    if (next > limit) {
        if (now_ < limit) {
            now_ = limit;
            // Restore the promote-before-anyone-can-schedule invariant
            // for the ticks the window just slid over.
            promote();
        }
        return nullptr;
    }
    now_ = next;
    // now_ advanced: restore the promote-before-anyone-can-schedule
    // invariant before the caller runs the event's callback.
    promote();
    Bucket &b = ring_[f];
    EventNode *n = b.head;
    b.head = n->next;
    if (!b.head) {
        b.tail = nullptr;
        clearSlot(f);
    }
    --ringCount_;
    --pendingCount_;
    return n;
}

Tick
EventQueue::runUntil(Tick limit)
{
    // The profiler zone lives inside the pop loops, not around the
    // whole call: the core pumps this every few cycles and usually
    // finds nothing due, and a zone entry/exit per pump would cost
    // more than the bookkeeping it measures. Zone hits therefore
    // count executed events.
    if (kernel_ == EventKernel::LegacyHeap) {
        while (!heap_.empty() && heap_.top().when <= limit) {
            SECMEM_PROF(EventQueue);
            // Move out before pop: the callback may schedule events.
            HeapEntry e = popEntry();
            --pendingCount_;
            now_ = e.when;
            executedStat_.inc();
            e.cb();
        }
        if (now_ < limit && limit != kTickNever)
            now_ = limit;
        return now_;
    }
    if (limit < now_)
        return now_; // nothing can be due: events are never in the past
    while (EventNode *n = popCalendarUpTo(limit)) {
        SECMEM_PROF(EventQueue);
        executedStat_.inc();
        // Free the node before invoking so a rescheduling callback can
        // recycle it; the callable is moved out first.
        EventFn fn = std::move(n->fn);
        slab_.release(n);
        fn();
    }
    if (now_ < limit && limit != kTickNever) {
        now_ = limit;
        promote();
    }
    return now_;
}

bool
EventQueue::step()
{
    SECMEM_PROF(EventQueue);
    if (kernel_ == EventKernel::LegacyHeap) {
        if (heap_.empty())
            return false;
        HeapEntry e = popEntry();
        --pendingCount_;
        now_ = e.when;
        executedStat_.inc();
        e.cb();
        return true;
    }
    EventNode *n = popCalendarUpTo(kTickNever);
    if (!n)
        return false;
    executedStat_.inc();
    EventFn fn = std::move(n->fn);
    slab_.release(n);
    fn();
    return true;
}

void
EventQueue::clearPending()
{
    for (Bucket &b : ring_) {
        while (EventNode *n = b.head) {
            b.head = n->next;
            slab_.release(n);
        }
        b.tail = nullptr;
    }
    for (EventNode *n : spill_)
        slab_.release(n);
    spill_.clear();
    ringBits_.fill(0);
    ringCount_ = 0;
    heap_ = {};
    pendingCount_ = 0;
}

void
EventQueue::reset()
{
    clearPending();
    now_ = 0;
    seq_ = 0;
    stats_.reset();
}

} // namespace secmem
