/**
 * @file
 * EventFn: a move-only type-erased callable with inline storage, built
 * for the event kernel's hot path.
 *
 * std::function is the wrong tool for a discrete-event simulator: it
 * copy-constructs on heap pops unless carefully moved, its small-buffer
 * window is implementation-defined (16 bytes on libstdc++), and larger
 * captures silently heap-allocate on every schedule(). EventFn gives
 * the kernel a fixed, known inline window (kInlineBytes) sized for the
 * simulator's actual closures (a couple of pointers plus an address and
 * a generation counter), a hand-rolled two-entry vtable, and a stats
 * hook so the rare heap-fallback path is observable instead of silent.
 *
 * Callables larger than the inline window still work — they are boxed
 * on the heap — but the event queue counts them ("cb_heap_fallback")
 * so a hot path that regresses into the fallback shows up in stats
 * diffs rather than only in wall-clock.
 */

#ifndef SECMEM_SIM_EVENT_FN_HH
#define SECMEM_SIM_EVENT_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace secmem
{

/** Move-only void() callable with a fixed inline capture window. */
class EventFn
{
  public:
    /**
     * Inline capture budget. Sized for the kernel's real closures:
     * a this-pointer, a block address, a generation counter and one
     * spare word, with room left for lambdas tests write casually.
     */
    static constexpr std::size_t kInlineBytes = 48;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            vt_ = &inlineVTable<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            vt_ = &boxedVTable<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            destroy();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { destroy(); }

    void operator()() { vt_->invoke(buf_); }

    explicit operator bool() const { return vt_ != nullptr; }

    /** True when the wrapped callable lives in the heap fallback box. */
    bool onHeap() const { return vt_ && vt_->boxed; }

    /** Compile-time predicate: does @p Fn fit the inline window? */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        void (*moveTo)(void *from, void *to);
        void (*destroy)(void *);
        bool boxed;
    };

    template <typename Fn>
    static constexpr VTable inlineVTable = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *from, void *to) {
            Fn *f = std::launder(reinterpret_cast<Fn *>(from));
            ::new (to) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
        false,
    };

    template <typename Fn>
    static constexpr VTable boxedVTable = {
        [](void *p) { (**std::launder(reinterpret_cast<Fn **>(p)))(); },
        [](void *from, void *to) {
            Fn **slot = std::launder(reinterpret_cast<Fn **>(from));
            ::new (to) Fn *(*slot);
            *slot = nullptr;
        },
        [](void *p) {
            delete *std::launder(reinterpret_cast<Fn **>(p));
        },
        true,
    };

    void
    moveFrom(EventFn &o) noexcept
    {
        vt_ = o.vt_;
        if (vt_)
            vt_->moveTo(o.buf_, buf_);
        o.vt_ = nullptr;
    }

    void
    destroy() noexcept
    {
        if (vt_) {
            vt_->destroy(buf_);
            vt_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const VTable *vt_ = nullptr;
};

} // namespace secmem

#endif // SECMEM_SIM_EVENT_FN_HH
