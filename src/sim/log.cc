#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

namespace secmem
{
namespace log_detail
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

namespace
{

/** Depth of nested PanicThrowScopes on the calling thread. */
unsigned &
panicThrowDepth()
{
    thread_local unsigned depth = 0;
    return depth;
}

} // namespace

bool
panicThrows()
{
    return panicThrowDepth() > 0;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    if (panicThrows())
        throw PanicError(msg + " (" + file + ":" + std::to_string(line) +
                         ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

namespace
{

/** Per-site emission counts; pointer keys are fine (__FILE__ literals). */
struct WarnState
{
    std::mutex mutex;
    std::map<std::pair<const char *, int>, std::uint64_t> sites;
    std::uint64_t emitted = 0;
    std::uint64_t suppressed = 0;
};

WarnState &
warnState()
{
    static WarnState state;
    return state;
}

} // namespace

void
warnImpl(const char *file, int line, const std::string &msg)
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mutex);
    std::uint64_t n = ++state.sites[{file, line}];
    if (n > kWarnSiteLimit) {
        ++state.suppressed;
        return;
    }
    ++state.emitted;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    if (n == kWarnSiteLimit) {
        std::fprintf(stderr,
                     "warn: (%s:%d hit %llu warnings; further repeats "
                     "suppressed)\n",
                     file, line,
                     static_cast<unsigned long long>(kWarnSiteLimit));
    }
}

std::uint64_t
warnEmitted()
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.emitted;
}

std::uint64_t
warnSuppressed()
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.suppressed;
}

std::uint64_t
warnSites()
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.sites.size();
}

std::uint64_t
warnSuppressedSites()
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mutex);
    std::uint64_t n = 0;
    for (const auto &kv : state.sites)
        if (kv.second > kWarnSiteLimit)
            ++n;
    return n;
}

void
warnResetForTests()
{
    WarnState &state = warnState();
    std::lock_guard<std::mutex> lock(state.mutex);
    state.sites.clear();
    state.emitted = 0;
    state.suppressed = 0;
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail

PanicThrowScope::PanicThrowScope()
    : prev_(log_detail::panicThrowDepth()++)
{}

PanicThrowScope::~PanicThrowScope()
{
    log_detail::panicThrowDepth() = prev_;
}

} // namespace secmem
