#include "sim/log.hh"

#include <cstdarg>
#include <cstdio>

namespace secmem
{
namespace log_detail
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace secmem
