#include "sim/cancel.hh"

namespace secmem::cancel_detail
{

CancelToken *&
currentToken()
{
    thread_local CancelToken *token = nullptr;
    return token;
}

} // namespace secmem::cancel_detail
