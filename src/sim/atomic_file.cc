#include "sim/atomic_file.hh"

#include <filesystem>
#include <fstream>

#include <unistd.h>

namespace fs = std::filesystem;

namespace secmem
{

bool
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return false;
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        os.flush();
        if (!os.good()) {
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

} // namespace secmem
