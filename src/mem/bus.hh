/**
 * @file
 * Processor-memory bus and DRAM timing models.
 *
 * The platform of Yan et al. has a 128-bit data bus at 600 MHz under a
 * 5 GHz core: one bus beat moves 16 bytes and lasts 25/3 core ticks.
 * Bus time is tracked internally in thirds of a tick so repeated
 * transfers accumulate no rounding drift. The bus is a single shared
 * resource: data fetches, write-backs, counter fetches and MAC-tree
 * fetches all contend for it, which is what makes small split counters
 * cheaper than 64-bit monolithic ones at equal hit rates (paper §6.1).
 */

#ifndef SECMEM_MEM_BUS_HH
#define SECMEM_MEM_BUS_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Timing parameters for the memory subsystem. */
struct MemTimingParams
{
    /** Bus beat width in bytes (128-bit bus). */
    std::uint32_t busBytesPerBeat = 16;
    /** Core ticks per bus beat, as a ratio (5 GHz / 600 MHz = 25/3). */
    std::uint32_t beatTicksNum = 25;
    std::uint32_t beatTicksDen = 3;
    /** Uncontended DRAM round trip below the bus (paper: 200 cycles). */
    Tick dramLatency = 200;
};

/**
 * A single shared split-transaction bus.
 *
 * acquire() reserves the bus for a transfer of a given size at the
 * earliest opportunity at or after @p earliest, first-come-first-served
 * in call order (callers invoke it in simulated-time order).
 */
class Bus
{
  public:
    explicit Bus(const MemTimingParams &params = {})
        : params_(params), stats_("bus")
    {
        // Runtime-divide elimination for acquire(): the default shape
        // (16-byte beats, 25/3 tick ratio) divides exactly, and two
        // divisions per transfer were visible in profiles. Both fast
        // paths produce bit-identical values to the general forms.
        if (isPowerOfTwo(params_.busBytesPerBeat))
            beatShift_ = static_cast<int>(log2i(params_.busBytesPerBeat));
        std::uint64_t num3 =
            static_cast<std::uint64_t>(params_.beatTicksNum) * 3;
        if (num3 % params_.beatTicksDen == 0)
            dur3PerBeat_ = num3 / params_.beatTicksDen;
    }

    /**
     * Reserve the bus for @p bytes starting no earlier than @p earliest.
     * @return the tick at which the transfer completes.
     */
    Tick
    acquire(Tick earliest, std::uint32_t bytes)
    {
        std::uint64_t earliest3 = static_cast<std::uint64_t>(earliest) * 3;
        std::uint64_t start3 = std::max(nextFree3_, earliest3);
        std::uint64_t beats =
            beatShift_ >= 0
                ? (bytes + params_.busBytesPerBeat - 1) >> beatShift_
                : (bytes + params_.busBytesPerBeat - 1) /
                      params_.busBytesPerBeat;
        std::uint64_t dur3 =
            dur3PerBeat_
                ? beats * dur3PerBeat_
                : beats * params_.beatTicksNum * 3 / params_.beatTicksDen;
        nextFree3_ = start3 + dur3;
        bytesStat_.inc(bytes);
        transfersStat_.inc();
        busyThirdsStat_.inc(dur3);
        if (start3 > earliest3)
            contentionThirdsStat_.inc(start3 - earliest3);
        waitTicksStat_.record((start3 - earliest3) / 3);
        // Completion rounds up to a whole tick.
        return static_cast<Tick>((nextFree3_ + 2) / 3);
    }

    /** Tick at which the bus next becomes free. */
    Tick nextFree() const { return static_cast<Tick>((nextFree3_ + 2) / 3); }

    /** Fraction of [0, now] the bus spent busy. */
    double
    utilization(Tick now) const
    {
        if (now == 0)
            return 0.0;
        return static_cast<double>(busyThirdsStat_.value()) /
               (3.0 * static_cast<double>(now));
    }

    void
    reset()
    {
        nextFree3_ = 0;
        stats_.reset();
    }

    stats::Group &stats() { return stats_; }

  private:
    MemTimingParams params_;
    std::uint64_t nextFree3_ = 0; ///< next-free time in thirds of a tick
    int beatShift_ = -1;          ///< log2(bytes/beat), -1 = not a pow2
    std::uint64_t dur3PerBeat_ = 0; ///< thirds per beat, 0 = inexact
    stats::Group stats_;
    // Cached: acquire() runs several times per L2 miss (data, counter
    // and MAC transfers all pass through here); no map lookups on it.
    stats::Counter &bytesStat_ = stats_.counter("bytes");
    stats::Counter &transfersStat_ = stats_.counter("transfers");
    stats::Counter &busyThirdsStat_ = stats_.counter("busy_thirds");
    stats::Counter &contentionThirdsStat_ =
        stats_.counter("contention_thirds");
    stats::LogHistogram &waitTicksStat_ = stats_.logHistogram("wait_ticks");
};

/**
 * Timing front-end for main memory, with separate address and data
 * channels (as on a real front-side bus): a read sends its command on
 * the address channel, waits the DRAM access latency, then returns the
 * block on the data channel. The data channel is the contended
 * resource — demand fetches, write-backs, counter fetches and MAC-tree
 * fetches all share it, so metadata traffic slows data traffic exactly
 * as in the paper. The DRAM array itself is treated as fully banked
 * (no inter-access conflicts beyond the channels).
 */
class MemChannel
{
  public:
    explicit MemChannel(const MemTimingParams &params = {})
        : params_(params), addrBus_(params), dataBus_(params),
          stats_("dram_channel")
    {}

    /**
     * Schedule a read of @p bytes issued at @p when; returns the tick
     * at which the data is fully on-chip.
     */
    Tick
    readTiming(Tick when, std::uint32_t bytes)
    {
        readsStat_.inc();
        readBytesStat_.inc(bytes);
        // Command on the address channel.
        Tick req_done = addrBus_.acquire(when, params_.busBytesPerBeat);
        // DRAM access below the bus, then the data transfer back.
        Tick done = dataBus_.acquire(req_done + params_.dramLatency, bytes);
        readLatencyStat_.record(done - when);
        return done;
    }

    /** Schedule a write of @p bytes issued at @p when; returns done tick. */
    Tick
    writeTiming(Tick when, std::uint32_t bytes)
    {
        writesStat_.inc();
        writeBytesStat_.inc(bytes);
        Tick req_done = addrBus_.acquire(when, params_.busBytesPerBeat);
        return dataBus_.acquire(req_done, bytes);
    }

    /** Schedule a block read issued at @p when; returns data-on-chip tick. */
    Tick readBlockTiming(Tick when) { return readTiming(when, kBlockBytes); }

    /** Schedule a block write-back issued at @p when; returns done tick. */
    Tick writeBlockTiming(Tick when) { return writeTiming(when, kBlockBytes); }

    /** The contended data channel (utilization / contention stats). */
    Bus &bus() { return dataBus_; }
    const MemTimingParams &params() const { return params_; }

    /** Off-chip traffic counters: reads/writes and bytes each way. */
    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    void
    reset()
    {
        addrBus_.reset();
        dataBus_.reset();
        stats_.reset();
    }

  private:
    MemTimingParams params_;
    Bus addrBus_;
    Bus dataBus_;
    stats::Group stats_;
    // Cached: one read/write per off-chip transfer; see Bus above.
    stats::Counter &readsStat_ = stats_.counter("reads");
    stats::Counter &readBytesStat_ = stats_.counter("read_bytes");
    stats::Counter &writesStat_ = stats_.counter("writes");
    stats::Counter &writeBytesStat_ = stats_.counter("write_bytes");
    stats::LogHistogram &readLatencyStat_ =
        stats_.logHistogram("read_latency");
};

} // namespace secmem

#endif // SECMEM_MEM_BUS_HH
