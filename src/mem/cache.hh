/**
 * @file
 * Generic set-associative write-back cache with LRU replacement.
 *
 * One class serves all on-chip block stores in the platform: the L1s,
 * the unified L2, the 32 KB counter cache and the MAC cache. Lines
 * carry real 64-byte payloads so the functional model keeps distinct
 * on-chip vs. in-memory state — which is exactly what the counter
 * replay attack of paper Section 4.3 exploits.
 *
 * The cache is purely structural: it never talks to memory itself.
 * Misses and evictions are reported to the caller, which performs the
 * fill/writeback (and accounts for their latency).
 */

#ifndef SECMEM_MEM_CACHE_HH
#define SECMEM_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/bytes.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Outcome of inserting a block: possibly an evicted dirty victim. */
struct Eviction
{
    bool valid = false;      ///< a line was displaced
    bool dirty = false;      ///< ... and it needs writing back
    Addr addr = kAddrInvalid;
    Block64 data{};
};

/** Set-associative LRU cache of 64-byte blocks with payload storage. */
class Cache
{
  public:
    /**
     * @param name        stats group name (e.g. "l2", "ctrcache")
     * @param size_bytes  total capacity; must be a multiple of
     *                    assoc * kBlockBytes
     * @param assoc       associativity (1 = direct-mapped)
     */
    Cache(std::string name, std::size_t size_bytes, unsigned assoc);

    /** Number of sets. */
    std::size_t numSets() const { return sets_.size(); }
    unsigned assoc() const { return assoc_; }
    std::size_t capacityBytes() const { return numSets() * assoc_ * kBlockBytes; }

    /** True iff the block at @p addr is resident (no LRU update). */
    bool contains(Addr addr) const;

    /**
     * Look up a block; on hit, updates LRU and returns a pointer to the
     * line payload (mutable). On miss returns nullptr. Counts stats.
     */
    Block64 *access(Addr addr, bool is_write);

    /** Look up without touching LRU or stats (for probes / RSR scans). */
    const Block64 *peek(Addr addr) const;
    Block64 *peek(Addr addr);

    /**
     * Insert a block (fill after miss). The victim, if dirty, is
     * returned for write-back. Inserting an already-resident block
     * overwrites its payload in place.
     */
    Eviction insert(Addr addr, const Block64 &data, bool dirty);

    /** Mark a resident block dirty; no-op if absent. */
    void markDirty(Addr addr);

    /** Dirty status of a resident block (false if absent). */
    bool isDirty(Addr addr) const;

    /** Remove a block if resident; returns its eviction record. */
    Eviction invalidate(Addr addr);

    /** Apply @p fn(addr, data, dirty) to every valid line. */
    void forEachLine(
        const std::function<void(Addr, const Block64 &, bool)> &fn) const;

    /** Evict everything, returning dirty victims in eviction order. */
    std::vector<Eviction> flush();

    /** Invalidate all lines without returning victims (test support). */
    void clear();

    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    /** Hit rate across all accesses so far. */
    double hitRate() const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lru = 0; ///< larger = more recently used
        Block64 data{};
    };

    struct Set
    {
        std::vector<Line> ways;
    };

    std::size_t setIndex(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    unsigned assoc_;
    std::vector<Set> sets_;
    std::uint64_t lruClock_ = 0;
    stats::Group stats_;
};

} // namespace secmem

#endif // SECMEM_MEM_CACHE_HH
