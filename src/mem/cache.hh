/**
 * @file
 * Generic set-associative write-back cache with LRU replacement.
 *
 * One class serves all on-chip block stores in the platform: the L1s,
 * the unified L2, the 32 KB counter cache and the MAC cache. Lines
 * carry real 64-byte payloads so the functional model keeps distinct
 * on-chip vs. in-memory state — which is exactly what the counter
 * replay attack of paper Section 4.3 exploits.
 *
 * The cache is purely structural: it never talks to memory itself.
 * Misses and evictions are reported to the caller, which performs the
 * fill/writeback (and accounts for their latency).
 */

#ifndef SECMEM_MEM_CACHE_HH
#define SECMEM_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "crypto/bytes.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Outcome of inserting a block: possibly an evicted dirty victim. */
struct Eviction
{
    bool valid = false;      ///< a line was displaced
    bool dirty = false;      ///< ... and it needs writing back
    Addr addr = kAddrInvalid;
    Block64 data{};
};

/** Set-associative LRU cache of 64-byte blocks with payload storage. */
class Cache
{
  public:
    /**
     * @param name        stats group name (e.g. "l2", "ctrcache")
     * @param size_bytes  total capacity; must be a multiple of
     *                    assoc * kBlockBytes
     * @param assoc       associativity (1 = direct-mapped)
     */
    Cache(std::string name, std::size_t size_bytes, unsigned assoc);

    /** Number of sets. */
    std::size_t numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }
    std::size_t capacityBytes() const { return numSets() * assoc_ * kBlockBytes; }

    /** True iff the block at @p addr is resident (no LRU update). */
    bool contains(Addr addr) const { return findIndex(addr) != kNoLine; }

    /**
     * Look up a block; on hit, updates LRU and returns a pointer to the
     * line payload (mutable). On miss returns nullptr. Counts stats.
     *
     * Defined inline (with peek and the tag probe): every memory op
     * funnels through these from controller/system code in other TUs,
     * and the out-of-line call was the single largest remaining cost
     * on the probe path.
     */
    Block64 *
    access(Addr addr, bool is_write)
    {
        // No profiler zone here: the lookup itself is a handful of
        // loads, so a per-access probe would cost several times the
        // work it measures and dominate the zone table (it did, at
        // ~24% of wall).
        accessesStat_.inc();
        if (is_write)
            writesStat_.inc();
        std::size_t i = findIndex(addr);
        if (i == kNoLine) {
            missesStat_.inc();
            return nullptr;
        }
        hitsStat_.inc();
        lru_[i] = ++lruClock_;
        if (is_write)
            dirty_[i] = 1;
        return &data_[i].block;
    }

    /**
     * One-pass probe of a dispatch burst: performs
     * access(addrs[i], is_write[i]) in order, filling @p lines with
     * the hit payload pointers, and stops after the first miss.
     * Returns the number of leading hits; if that is < @p n, the probe
     * for the missing op HAS run (and counted its miss) and
     * lines[return] is nullptr — the caller continues that op below
     * this cache without re-probing, and re-batches the rest (their
     * outcome may depend on the miss's fill). Stats and LRU state are
     * exactly those of the equivalent sequential access() calls.
     */
    unsigned accessRun(const Addr *addrs, const std::uint8_t *is_write,
                       Block64 **lines, unsigned n);

    /** Look up without touching LRU or stats (for probes / RSR scans). */
    const Block64 *
    peek(Addr addr) const
    {
        std::size_t i = findIndex(addr);
        return i == kNoLine ? nullptr : &data_[i].block;
    }

    Block64 *
    peek(Addr addr)
    {
        std::size_t i = findIndex(addr);
        return i == kNoLine ? nullptr : &data_[i].block;
    }

    /**
     * Insert a block (fill after miss). The victim, if dirty, is
     * returned for write-back. Inserting an already-resident block
     * overwrites its payload in place.
     */
    Eviction insert(Addr addr, const Block64 &data, bool dirty);

    /** Mark a resident block dirty; no-op if absent. */
    void markDirty(Addr addr);

    /** Dirty status of a resident block (false if absent). */
    bool isDirty(Addr addr) const;

    /** Remove a block if resident; returns its eviction record. */
    Eviction invalidate(Addr addr);

    /** Apply @p fn(addr, data, dirty) to every valid line. */
    void forEachLine(
        const std::function<void(Addr, const Block64 &, bool)> &fn) const;

    /** Evict everything, returning dirty victims in eviction order. */
    std::vector<Eviction> flush();

    /** Invalidate all lines without returning victims (test support). */
    void clear();

    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    /** Hit rate across all accesses so far. */
    double hitRate() const;

  private:
    /** Sentinel way index: no matching line. */
    static constexpr std::size_t kNoLine = ~std::size_t{0};

    std::size_t
    setIndex(Addr addr) const
    {
        return (addr >> log2i(kBlockBytes)) & (numSets_ - 1);
    }

    /** Way-array index of @p addr's line, or kNoLine. */
    std::size_t
    findIndex(Addr addr) const
    {
        Addr base = blockBase(addr);
        std::size_t set = setIndex(addr);
        std::size_t hint = mru_[set];
        if (tags_[hint] == base)
            return hint;
        std::size_t begin = set * assoc_;
        for (std::size_t i = begin; i < begin + assoc_; ++i) {
            if (tags_[i] == base) {
                mru_[set] = i;
                return i;
            }
        }
        return kNoLine;
    }

    unsigned assoc_;
    std::size_t numSets_ = 0;
    std::uint64_t lruClock_ = 0;
    // Structure-of-arrays line state, indexed set * assoc_ + way. A
    // tag probe walks only tags_ (invalid lines hold kAddrInvalid, which
    // no block-aligned tag can equal) — with the 64-byte payloads stored
    // inline (the old layout), every probed way dragged its own cache
    // line through the L1 even on a first-way hit.
    /**
     * Payload storage that skips Block64's zero-initialization: a
     * line's data is always written (insert) before it can be read
     * (tag-gated access/peek/flush), so the construction-time zeroing
     * of the full data array — 1 MB for the L2, once per experiment
     * job — bought nothing.
     */
    union LineData
    {
        Block64 block;
        LineData() noexcept {} ///< deliberately leaves block uninitialized
    };

    std::vector<Addr> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint64_t> lru_; ///< larger = more recently used
    std::vector<LineData> data_;
    /** Per-set most-recently-matched way (absolute index): burst
     *  accesses re-touch the same line, so probe it before the scan.
     *  Pure lookup memo — never affects results, hence mutable. */
    mutable std::vector<std::size_t> mru_;
    stats::Group stats_;
    // Cached references: access() and insert() run once per memory
    // operation per cache level; the string-keyed map lookup behind
    // stats_.counter("...") is pure overhead at that rate.
    stats::Counter &accessesStat_ = stats_.counter("accesses");
    stats::Counter &hitsStat_ = stats_.counter("hits");
    stats::Counter &missesStat_ = stats_.counter("misses");
    stats::Counter &writesStat_ = stats_.counter("writes");
    stats::Counter &evictionsStat_ = stats_.counter("evictions");
    stats::Counter &writebacksStat_ = stats_.counter("writebacks");
    stats::Counter &fillsStat_ = stats_.counter("fills");
};

} // namespace secmem

#endif // SECMEM_MEM_CACHE_HH
