#include "mem/cache.hh"

#include <functional>

#include "obs/profiler.hh"
#include "sim/log.hh"

namespace secmem
{

Cache::Cache(std::string name, std::size_t size_bytes, unsigned assoc)
    : assoc_(assoc), stats_(std::move(name))
{
    SECMEM_ASSERT(assoc >= 1, "associativity must be >= 1");
    SECMEM_ASSERT(size_bytes % (assoc * kBlockBytes) == 0,
                  "cache size %zu not a multiple of assoc*block",
                  size_bytes);
    std::size_t n_sets = size_bytes / (assoc * kBlockBytes);
    SECMEM_ASSERT(isPowerOfTwo(n_sets), "set count %zu not a power of two",
                  n_sets);
    sets_.resize(n_sets);
    for (auto &set : sets_)
        set.ways.resize(assoc);

    // Pre-register the core counters so every cache dumps a uniform set
    // of stats even when a run never exercises some of them.
    stats_.counter("accesses");
    stats_.counter("hits");
    stats_.counter("misses");
    stats_.counter("writes");
    stats_.counter("evictions");
    stats_.counter("writebacks");
    stats_.counter("fills");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> log2i(kBlockBytes)) & (sets_.size() - 1);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    Addr base = blockBase(addr);
    for (auto &line : sets_[setIndex(addr)].ways) {
        if (line.valid && line.tag == base)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    Addr base = blockBase(addr);
    for (const auto &line : sets_[setIndex(addr)].ways) {
        if (line.valid && line.tag == base)
            return &line;
    }
    return nullptr;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

Block64 *
Cache::access(Addr addr, bool is_write)
{
    SECMEM_PROF(CacheLookup);
    stats_.counter("accesses").inc();
    if (is_write)
        stats_.counter("writes").inc();
    Line *line = findLine(addr);
    if (!line) {
        stats_.counter("misses").inc();
        return nullptr;
    }
    stats_.counter("hits").inc();
    line->lru = ++lruClock_;
    if (is_write)
        line->dirty = true;
    return &line->data;
}

const Block64 *
Cache::peek(Addr addr) const
{
    const Line *line = findLine(addr);
    return line ? &line->data : nullptr;
}

Block64 *
Cache::peek(Addr addr)
{
    Line *line = findLine(addr);
    return line ? &line->data : nullptr;
}

Eviction
Cache::insert(Addr addr, const Block64 &data, bool dirty)
{
    Addr base = blockBase(addr);
    if (Line *line = findLine(base)) {
        line->data = data;
        line->dirty = line->dirty || dirty;
        line->lru = ++lruClock_;
        return {};
    }

    Set &set = sets_[setIndex(base)];
    Line *victim = nullptr;
    for (auto &line : set.ways) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lru < victim->lru)
            victim = &line;
    }

    Eviction ev;
    if (victim->valid) {
        ev.valid = true;
        ev.dirty = victim->dirty;
        ev.addr = victim->tag;
        ev.data = victim->data;
        stats_.counter("evictions").inc();
        if (victim->dirty)
            stats_.counter("writebacks").inc();
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = base;
    victim->lru = ++lruClock_;
    victim->data = data;
    stats_.counter("fills").inc();
    return ev;
}

void
Cache::markDirty(Addr addr)
{
    if (Line *line = findLine(addr))
        line->dirty = true;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = findLine(addr);
    return line && line->dirty;
}

Eviction
Cache::invalidate(Addr addr)
{
    Line *line = findLine(addr);
    if (!line)
        return {};
    Eviction ev;
    ev.valid = true;
    ev.dirty = line->dirty;
    ev.addr = line->tag;
    ev.data = line->data;
    line->valid = false;
    line->dirty = false;
    return ev;
}

void
Cache::forEachLine(
    const std::function<void(Addr, const Block64 &, bool)> &fn) const
{
    for (const auto &set : sets_) {
        for (const auto &line : set.ways) {
            if (line.valid)
                fn(line.tag, line.data, line.dirty);
        }
    }
}

std::vector<Eviction>
Cache::flush()
{
    std::vector<Eviction> dirty;
    for (auto &set : sets_) {
        for (auto &line : set.ways) {
            if (!line.valid)
                continue;
            if (line.dirty) {
                Eviction ev;
                ev.valid = true;
                ev.dirty = true;
                ev.addr = line.tag;
                ev.data = line.data;
                dirty.push_back(ev);
            }
            line.valid = false;
            line.dirty = false;
        }
    }
    return dirty;
}

void
Cache::clear()
{
    for (auto &set : sets_) {
        for (auto &line : set.ways) {
            line.valid = false;
            line.dirty = false;
        }
    }
}

double
Cache::hitRate() const
{
    std::uint64_t acc = stats_.counterValue("accesses");
    return acc ? static_cast<double>(stats_.counterValue("hits")) /
                     static_cast<double>(acc)
               : 0.0;
}

} // namespace secmem
