#include "mem/cache.hh"

#include <algorithm>
#include <functional>

#include "sim/log.hh"

namespace secmem
{

Cache::Cache(std::string name, std::size_t size_bytes, unsigned assoc)
    : assoc_(assoc), stats_(std::move(name))
{
    SECMEM_ASSERT(assoc >= 1, "associativity must be >= 1");
    SECMEM_ASSERT(size_bytes % (assoc * kBlockBytes) == 0,
                  "cache size %zu not a multiple of assoc*block",
                  size_bytes);
    numSets_ = size_bytes / (assoc * kBlockBytes);
    SECMEM_ASSERT(isPowerOfTwo(numSets_), "set count %zu not a power of two",
                  numSets_);
    std::size_t n = numSets_ * assoc_;
    // kAddrInvalid doubles as the "no line" tag: real tags are always
    // block-aligned and the all-ones address is not, so a tag compare
    // alone decides residency (no valid_ load on the probe path).
    tags_.assign(n, kAddrInvalid);
    valid_.assign(n, 0);
    dirty_.assign(n, 0);
    lru_.assign(n, 0);
    data_.resize(n); // payloads stay uninitialized until first fill
    mru_.resize(numSets_);
    for (std::size_t s = 0; s < numSets_; ++s)
        mru_[s] = s * assoc_;
    // The cached stat references double as pre-registration: every
    // cache dumps a uniform set of counters even when a run never
    // exercises some of them.
}

unsigned
Cache::accessRun(const Addr *addrs, const std::uint8_t *is_write,
                 Block64 **lines, unsigned n)
{
    // The burst shares the callers' instruction cycle, so the probes
    // run back to back with the tag arrays and the per-set MRU memo
    // hot; access() is inline, making this the one out-of-line call
    // for the whole burst.
    for (unsigned i = 0; i < n; ++i) {
        Block64 *line = access(addrs[i], is_write[i] != 0);
        lines[i] = line;
        if (!line)
            return i;
    }
    return n;
}

Eviction
Cache::insert(Addr addr, const Block64 &data, bool dirty)
{
    Addr base = blockBase(addr);
    if (std::size_t i = findIndex(base); i != kNoLine) {
        data_[i].block = data;
        dirty_[i] = dirty_[i] || dirty;
        lru_[i] = ++lruClock_;
        return {};
    }

    // Pure first-argmin over lru_: invalid lines hold the 0 sentinel
    // (the clock starts at 1), so the first invalid way wins exactly as
    // the old explicit !valid_ scan did, without loading valid_ at all.
    std::size_t begin = setIndex(base) * assoc_;
    std::size_t victim = begin;
    for (std::size_t i = begin + 1; i < begin + assoc_; ++i) {
        if (lru_[i] < lru_[victim])
            victim = i;
    }

    Eviction ev;
    if (valid_[victim]) {
        ev.valid = true;
        ev.dirty = dirty_[victim];
        ev.addr = tags_[victim];
        ev.data = data_[victim].block;
        evictionsStat_.inc();
        if (dirty_[victim])
            writebacksStat_.inc();
    }

    valid_[victim] = 1;
    dirty_[victim] = dirty;
    tags_[victim] = base;
    lru_[victim] = ++lruClock_;
    data_[victim].block = data;
    mru_[setIndex(base)] = victim;
    fillsStat_.inc();
    return ev;
}

void
Cache::markDirty(Addr addr)
{
    if (std::size_t i = findIndex(addr); i != kNoLine)
        dirty_[i] = 1;
}

bool
Cache::isDirty(Addr addr) const
{
    std::size_t i = findIndex(addr);
    return i != kNoLine && dirty_[i];
}

Eviction
Cache::invalidate(Addr addr)
{
    std::size_t i = findIndex(addr);
    if (i == kNoLine)
        return {};
    Eviction ev;
    ev.valid = true;
    ev.dirty = dirty_[i];
    ev.addr = tags_[i];
    ev.data = data_[i].block;
    valid_[i] = 0;
    dirty_[i] = 0;
    tags_[i] = kAddrInvalid;
    lru_[i] = 0; // victim-scan sentinel: free way
    return ev;
}

void
Cache::forEachLine(
    const std::function<void(Addr, const Block64 &, bool)> &fn) const
{
    for (std::size_t i = 0; i < valid_.size(); ++i) {
        if (valid_[i])
            fn(tags_[i], data_[i].block, dirty_[i] != 0);
    }
}

std::vector<Eviction>
Cache::flush()
{
    std::vector<Eviction> dirty;
    for (std::size_t i = 0; i < valid_.size(); ++i) {
        if (!valid_[i])
            continue;
        if (dirty_[i]) {
            Eviction ev;
            ev.valid = true;
            ev.dirty = true;
            ev.addr = tags_[i];
            ev.data = data_[i].block;
            dirty.push_back(ev);
        }
        valid_[i] = 0;
        dirty_[i] = 0;
        tags_[i] = kAddrInvalid;
        lru_[i] = 0;
    }
    return dirty;
}

void
Cache::clear()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    std::fill(tags_.begin(), tags_.end(), kAddrInvalid);
    std::fill(lru_.begin(), lru_.end(), 0);
}

double
Cache::hitRate() const
{
    std::uint64_t acc = stats_.counterValue("accesses");
    return acc ? static_cast<double>(stats_.counterValue("hits")) /
                     static_cast<double>(acc)
               : 0.0;
}

} // namespace secmem
