/**
 * @file
 * Main-memory functional store.
 *
 * A sparse block-granular byte store covering the protected physical
 * address space (data region, counter region, MAC-tree regions). The
 * secure-memory controller writes only ciphertext, counters and MACs
 * here, so everything in this object models what a hardware attacker
 * positioned on the memory bus can see and modify.
 *
 * The tamper API (tamperXor / rawWrite / snapshot + replay) exists for
 * security tests and the attack-demo example; the simulated processor
 * never calls it.
 */

#ifndef SECMEM_MEM_DRAM_HH
#define SECMEM_MEM_DRAM_HH

#include <cstdint>
#include <unordered_map>

#include "crypto/bytes.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Sparse functional DRAM with an attacker-facing tamper interface. */
class Dram
{
  public:
    Dram() : stats_("dram") {}

    /** Read a 64-byte block; untouched blocks read as zero. */
    Block64
    readBlock(Addr addr) const
    {
        auto it = blocks_.find(blockBase(addr));
        return it == blocks_.end() ? Block64{} : it->second;
    }

    /** Write a 64-byte block. */
    void
    writeBlock(Addr addr, const Block64 &data)
    {
        blocks_[blockBase(addr)] = data;
    }

    /** Number of blocks ever written (footprint metric). */
    std::size_t footprintBlocks() const { return blocks_.size(); }

    // ---- attacker interface -------------------------------------------

    /** Flip bits: data[offset] ^= mask (a bus/mod-chip active attack). */
    void
    tamperXor(Addr addr, std::size_t offset, std::uint8_t mask)
    {
        Block64 blk = readBlock(addr);
        blk.b[offset % kBlockBytes] ^= mask;
        writeBlock(addr, blk);
    }

    /** Record the current value of a block (snooping). */
    Block64 snoop(Addr addr) const { return readBlock(addr); }

    /** Replay a previously snooped value (replay attack). */
    void replay(Addr addr, const Block64 &old) { writeBlock(addr, old); }

    stats::Group &stats() { return stats_; }

  private:
    std::unordered_map<Addr, Block64> blocks_;
    stats::Group stats_;
};

} // namespace secmem

#endif // SECMEM_MEM_DRAM_HH
