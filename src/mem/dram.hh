/**
 * @file
 * Main-memory functional store.
 *
 * A sparse block-granular byte store covering the protected physical
 * address space (data region, counter region, MAC-tree regions). The
 * secure-memory controller writes only ciphertext, counters and MACs
 * here, so everything in this object models what a hardware attacker
 * positioned on the memory bus can see and modify.
 *
 * The tamper API (tamperXor / rawWrite / snapshot + replay, plus the
 * one-shot transient-fault hook) exists for security tests, the
 * attack-demo example and the src/attack fault injector; the simulated
 * processor never calls it.
 */

#ifndef SECMEM_MEM_DRAM_HH
#define SECMEM_MEM_DRAM_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "crypto/bytes.hh"
#include "sim/flat_hash.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/**
 * Copy of a contiguous block range, recorded by an attacker for later
 * replay or splicing. Blocks are stored as they were at snapshot time;
 * never-written blocks read (and restore) as zero.
 */
struct DramSnapshot
{
    Addr base = 0;               ///< first block address covered
    std::vector<Block64> blocks; ///< one entry per consecutive block
};

/** Sparse functional DRAM with an attacker-facing tamper interface. */
class Dram
{
  public:
    Dram() : stats_("dram")
    {
        // Smoke-length runs write only a few thousand distinct blocks,
        // so a large up-front reserve costs more in page zeroing than
        // the growth ladder it avoids (32k slots = 2.3 MB zeroed per
        // run, ~0.4 ms, visible in per-job overhead). 4k slots covers
        // the short runs outright; longer runs ladder up from there,
        // and the ladder's recopy work is bounded by twice the final
        // table size anyway.
        blocks_.reserveSlots(std::size_t{1} << 12);
    }

    /** Read a 64-byte block; untouched blocks read as zero. */
    Block64
    readBlock(Addr addr) const
    {
        Addr base = blockBase(addr);
        Block64 out;
        if (const Block64 *blk = blocks_.find(base))
            out = *blk;
        // One-shot transient fault: corrupt this fetch only, leaving
        // the stored bits intact (a bus glitch, not a persistent mod).
        // Empty-map guard first: faults are armed only by attack tests,
        // so timing runs skip the hash probe entirely.
        if (!transient_.empty()) {
            auto tf = transient_.find(base);
            if (tf != transient_.end()) {
                for (std::size_t i = 0; i < kBlockBytes; ++i)
                    out.b[i] ^= tf->second.b[i];
                transient_.erase(tf);
            }
        }
        return out;
    }

    /** Write a 64-byte block. */
    void
    writeBlock(Addr addr, const Block64 &data)
    {
        blocks_[blockBase(addr)] = data;
    }

    /** Stored bits of a block, ignoring (and keeping) armed transients. */
    Block64
    peekBlock(Addr addr) const
    {
        const Block64 *blk = blocks_.find(blockBase(addr));
        return blk ? *blk : Block64{};
    }

    /** Number of blocks ever written (footprint metric). */
    std::size_t footprintBlocks() const { return blocks_.size(); }

    // ---- attacker interface -------------------------------------------
    //
    // All offsets are relative to the start of the 64-byte block that
    // contains @p addr. Offsets at or beyond kBlockBytes are a caller
    // bug and are rejected (no silent wraparound). Tampering a block
    // that was never written operates on its all-zero contents and
    // materialises the block.

    /** Flip bits: block[offset] ^= mask (a bus/mod-chip active attack). */
    void
    tamperXor(Addr addr, std::size_t offset, std::uint8_t mask)
    {
        SECMEM_ASSERT(offset < kBlockBytes,
                      "tamperXor offset %zu out of block range", offset);
        Block64 blk = peekBlock(addr);
        blk.b[offset] ^= mask;
        writeBlock(addr, blk);
        stats_.counter("tampers").inc();
    }

    /** Overwrite @p n raw bytes at @p offset within @p addr's block. */
    void
    rawWrite(Addr addr, std::size_t offset, const void *src, std::size_t n)
    {
        SECMEM_ASSERT(offset < kBlockBytes && n <= kBlockBytes - offset,
                      "rawWrite [%zu, %zu) out of block range", offset,
                      offset + n);
        Block64 blk = peekBlock(addr);
        std::memcpy(blk.b.data() + offset, src, n);
        writeBlock(addr, blk);
        stats_.counter("raw_writes").inc();
    }

    /** Record the current value of a block (snooping). */
    Block64 snoop(Addr addr) const { return peekBlock(addr); }

    /** Replay a previously snooped value (replay attack). */
    void replay(Addr addr, const Block64 &old) { writeBlock(addr, old); }

    /** Record @p n_blocks consecutive blocks starting at @p base. */
    DramSnapshot
    snapshot(Addr base, std::size_t n_blocks) const
    {
        DramSnapshot snap;
        snap.base = blockBase(base);
        snap.blocks.reserve(n_blocks);
        for (std::size_t i = 0; i < n_blocks; ++i)
            snap.blocks.push_back(
                peekBlock(snap.base + static_cast<Addr>(i * kBlockBytes)));
        return snap;
    }

    /** Replay a whole snapshot (replay / rollback attack). */
    void
    replay(const DramSnapshot &snap)
    {
        for (std::size_t i = 0; i < snap.blocks.size(); ++i)
            writeBlock(snap.base + static_cast<Addr>(i * kBlockBytes),
                       snap.blocks[i]);
    }

    /**
     * Arm a one-shot transient fault: the NEXT read of @p addr's block
     * sees block[offset] ^ mask, but DRAM itself is unmodified. Models
     * a transient bus/sensor glitch that a refetch recovers from.
     */
    void
    injectTransientXor(Addr addr, std::size_t offset, std::uint8_t mask)
    {
        SECMEM_ASSERT(offset < kBlockBytes,
                      "transient fault offset %zu out of block range",
                      offset);
        transient_[blockBase(addr)].b[offset] ^= mask;
        stats_.counter("transient_faults").inc();
    }

    /** Number of armed transient faults not yet consumed by a read. */
    std::size_t pendingTransients() const { return transient_.size(); }

    stats::Group &stats() { return stats_; }

  private:
    // Flat table: blocks are written once and probed on every off-chip
    // fetch; the node-based map's per-block allocation and rehashes
    // were measurable both in runs and at teardown.
    FlatAddrMap<Block64> blocks_;
    /** Pending one-shot read-path fault masks (consumed by readBlock). */
    mutable std::unordered_map<Addr, Block64> transient_;
    stats::Group stats_;
};

} // namespace secmem

#endif // SECMEM_MEM_DRAM_HH
