#include "ref/model.hh"

#include "crypto/gf128.hh"
#include "crypto/sha1.hh"
#include "enc/counters.hh"
#include "sim/log.hh"

namespace secmem::ref
{

namespace
{

/** Read one bit of the 448-bit minor field (bit 0 = byte 8, bit 0). */
unsigned
minorFieldBit(const Block64 &raw, unsigned bit)
{
    return (raw.b[8 + bit / 8] >> (bit % 8)) & 1u;
}

void
setMinorFieldBit(Block64 &raw, unsigned bit, unsigned value)
{
    std::uint8_t mask = static_cast<std::uint8_t>(1u << (bit % 8));
    if (value)
        raw.b[8 + bit / 8] |= mask;
    else
        raw.b[8 + bit / 8] &= static_cast<std::uint8_t>(~mask);
}

Block16
clipBits(const Block16 &tag, unsigned mac_bits)
{
    Block16 out{};
    for (unsigned i = 0; i < mac_bits / 8; ++i)
        out.b[i] = tag.b[i];
    return out;
}

} // namespace

std::uint64_t
splitMajor(const Block64 &raw)
{
    std::uint64_t m = 0;
    for (int i = 7; i >= 0; --i)
        m = (m << 8) | raw.b[i];
    return m;
}

void
splitSetMajor(Block64 &raw, std::uint64_t major)
{
    for (int i = 0; i < 8; ++i) {
        raw.b[i] = static_cast<std::uint8_t>(major & 0xff);
        major >>= 8;
    }
}

unsigned
splitMinor(const Block64 &raw, unsigned i)
{
    SECMEM_ASSERT(i < kBlocksPerPage, "ref minor index %u out of range", i);
    unsigned v = 0;
    for (unsigned b = 0; b < kMinorBits; ++b)
        v |= minorFieldBit(raw, i * kMinorBits + b) << b;
    return v;
}

void
splitSetMinor(Block64 &raw, unsigned i, unsigned value)
{
    SECMEM_ASSERT(i < kBlocksPerPage, "ref minor index %u out of range", i);
    SECMEM_ASSERT(value < (1u << kMinorBits), "ref minor value %u overflows",
                  value);
    for (unsigned b = 0; b < kMinorBits; ++b)
        setMinorFieldBit(raw, i * kMinorBits + b, (value >> b) & 1u);
}

std::uint64_t
splitCounterFor(const Block64 &raw, unsigned i)
{
    return (splitMajor(raw) << kMinorBits) | splitMinor(raw, i);
}

std::uint64_t
monoCounter(const Block64 &raw, unsigned width_bits, unsigned i)
{
    unsigned bytes = width_bits / 8;
    SECMEM_ASSERT(i * bytes + bytes <= kBlockBytes,
                  "ref mono slot %u out of range", i);
    std::uint64_t v = 0;
    for (unsigned k = bytes; k-- > 0;)
        v = (v << 8) | raw.b[i * bytes + k];
    return v;
}

void
monoSetCounter(Block64 &raw, unsigned width_bits, unsigned i,
               std::uint64_t value)
{
    unsigned bytes = width_bits / 8;
    SECMEM_ASSERT(i * bytes + bytes <= kBlockBytes,
                  "ref mono slot %u out of range", i);
    for (unsigned k = 0; k < bytes; ++k) {
        raw.b[i * bytes + k] = static_cast<std::uint8_t>(value & 0xff);
        value >>= 8;
    }
}

Block16
seedFor(Addr block_addr, std::uint64_t counter, unsigned chunk,
        bool auth_domain, std::uint8_t iv_byte)
{
    // Layout per crypto/seed.hh: bytes 0..5 block index (LE, 48 bits),
    // 6..13 counter (LE, 64 bits), 14 chunk | domain bit, 15 IV byte.
    Block16 seed{};
    std::uint64_t block_index = block_addr / kBlockBytes;
    for (int i = 0; i < 6; ++i) {
        seed.b[i] = static_cast<std::uint8_t>(block_index & 0xff);
        block_index >>= 8;
    }
    for (int i = 0; i < 8; ++i) {
        seed.b[6 + i] = static_cast<std::uint8_t>(counter & 0xff);
        counter >>= 8;
    }
    seed.b[14] = static_cast<std::uint8_t>(chunk | (auth_domain ? 0x80 : 0));
    seed.b[15] = iv_byte;
    return seed;
}

Block64
ctrPad(const AesNaive &aes, Addr block_addr, std::uint64_t counter,
       std::uint8_t iv_byte)
{
    Block64 pad;
    for (unsigned c = 0; c < kChunksPerBlock; ++c)
        pad.setChunk(c, aes.encrypt(seedFor(block_addr, counter, c, false,
                                            iv_byte)));
    return pad;
}

Block64
encryptBlock(const SecureMemConfig &cfg, const AesNaive &aes, Addr block_addr,
             const Block64 &pt, std::uint64_t ctr, std::uint8_t epoch)
{
    switch (cfg.enc) {
      case EncKind::None:
        return pt;
      case EncKind::Direct: {
        Block64 ct;
        for (unsigned c = 0; c < kChunksPerBlock; ++c)
            ct.setChunk(c, aes.encrypt(pt.chunk(c)));
        return ct;
      }
      default:
        return pt ^ ctrPad(aes, blockBase(block_addr), ctr,
                           static_cast<std::uint8_t>(cfg.eivByte ^ epoch));
    }
}

Block16
gcmTag(const AesNaive &aes, const Block16 &hash_subkey, Addr block_addr,
       const Block64 &ciphertext, std::uint64_t counter,
       std::uint8_t iv_byte)
{
    // GHASH composed directly over gf128MulNaive: Y_i = (Y_{i-1} ^ X_i) * H.
    Gf128 h = Gf128::fromBlock(hash_subkey);
    Gf128 y{0, 0};
    for (unsigned c = 0; c < kChunksPerBlock; ++c)
        y = gf128MulNaive(y ^ Gf128::fromBlock(ciphertext.chunk(c)), h);

    // Length block: [len(AAD)]_64 || [len(C)]_64, both big-endian bit
    // counts (NIST SP 800-38D step 5). AAD is empty in this setting.
    Block16 lenblk{};
    std::uint64_t ct_bits = kBlockBytes * 8;
    for (int i = 0; i < 8; ++i)
        lenblk.b[15 - i] = static_cast<std::uint8_t>(ct_bits >> (8 * i));
    y = gf128MulNaive(y ^ Gf128::fromBlock(lenblk), h);

    Block16 pad = aes.encrypt(seedFor(block_addr, counter, 0, true, iv_byte));
    return y.toBlock() ^ pad;
}

Block16
sha1Tag(const Block16 &key, Addr block_addr, const Block64 &ciphertext,
        std::uint64_t counter, std::uint8_t epoch)
{
    // SHA1(key || addr_le64 || counter_le64 || epoch || ct), 16 bytes.
    std::uint8_t msg[16 + 8 + 8 + 1 + kBlockBytes];
    std::size_t n = 0;
    for (std::size_t i = 0; i < key.b.size(); ++i)
        msg[n++] = key.b[i];
    for (int i = 0; i < 8; ++i)
        msg[n++] = static_cast<std::uint8_t>(block_addr >> (8 * i));
    for (int i = 0; i < 8; ++i)
        msg[n++] = static_cast<std::uint8_t>(counter >> (8 * i));
    msg[n++] = epoch;
    for (std::size_t i = 0; i < ciphertext.b.size(); ++i)
        msg[n++] = ciphertext.b[i];
    Sha1::Digest d = Sha1::digestOf(msg, n);
    Block16 tag;
    for (std::size_t i = 0; i < kChunkBytes; ++i)
        tag.b[i] = d[i];
    return tag;
}

Block16
nodeTag(const SecureMemConfig &cfg, const AesNaive &aes,
        const Block16 &hash_subkey, Addr node_addr, const Block64 &content,
        std::uint64_t counter, std::uint8_t epoch)
{
    if (cfg.auth == AuthKind::Gcm) {
        return clipBits(
            gcmTag(aes, hash_subkey, node_addr, content, counter,
                   static_cast<std::uint8_t>(cfg.aivByte ^ epoch)),
            cfg.macBits);
    }
    return clipBits(sha1Tag(cfg.macKey, node_addr, content, counter, epoch),
                    cfg.macBits);
}

} // namespace secmem::ref
