/**
 * @file
 * Naive reference crypto kernels for the differential oracle.
 *
 * These are the original straight-from-the-spec implementations that
 * used to be the production kernels in src/crypto/: a bit-at-a-time
 * GF(2^128) multiply (SP 800-38D Section 6.3) and a byte-wise AES-128
 * that walks SubBytes / ShiftRows / MixColumns exactly as FIPS-197
 * writes them, with a loop-based GF(2^8) multiply in InvMixColumns.
 *
 * They were moved here — not deleted — when the production kernels
 * became table-driven (Shoup GHASH tables, AES T-tables), so the
 * reference model keeps an implementation that shares NO tables, no
 * key-schedule layout and no word-level tricks with the code it
 * checks: a corrupted table entry or a mis-generated T-table cannot
 * cancel out against the same bug here. Both sides are pinned to the
 * NIST / FIPS vectors in tests/crypto/, and fast==naive is enforced on
 * randomized inputs by tests/ref/differential_test.cc.
 *
 * Performance is explicitly a non-goal; nothing in the production path
 * may call into this file.
 */

#ifndef SECMEM_REF_NAIVE_HH
#define SECMEM_REF_NAIVE_HH

#include <array>
#include <cstdint>

#include "crypto/bytes.hh"
#include "crypto/gf128.hh"

namespace secmem::ref
{

/** Bit-serial GCM GF(2^128) product of @p x and @p y. */
Gf128 gf128MulNaive(const Gf128 &x, const Gf128 &y);

/** Byte-wise AES-128 (FIPS-197 as written), reference-only. */
class AesNaive
{
  public:
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    AesNaive() = default;
    explicit AesNaive(const std::uint8_t key[kKeyBytes]) { setKey(key); }
    explicit AesNaive(const Block16 &key) { setKey(key.b.data()); }

    /** Expand @p key into the round keys. */
    void setKey(const std::uint8_t key[kKeyBytes]);

    /** Encrypt one 16-byte chunk. In-place operation is allowed. */
    void encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Decrypt one 16-byte chunk. In-place operation is allowed. */
    void decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    Block16
    encrypt(const Block16 &in) const
    {
        Block16 out;
        encryptBlock(in.b.data(), out.b.data());
        return out;
    }

    Block16
    decrypt(const Block16 &in) const
    {
        Block16 out;
        decryptBlock(in.b.data(), out.b.data());
        return out;
    }

  private:
    /** Round keys: (kRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, (kRounds + 1) * 16> rk_{};
};

} // namespace secmem::ref

#endif // SECMEM_REF_NAIVE_HH
