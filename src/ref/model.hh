/**
 * @file
 * Untimed reference model of the secure-memory crypto stack.
 *
 * Every function here recomputes, from first principles, a quantity
 * the timed SecureMemoryController also computes — counter-block
 * decoding, seed packing, counter-mode encryption, GCM / SHA-1 node
 * tags — but through deliberately different code:
 *
 *  - the split/mono counter codecs work bit-at-a-time instead of the
 *    production read-modify-write byte arithmetic (enc/counters.cc);
 *  - GHASH is composed directly from the bit-serial gf128MulNaive()
 *    and a hand-built big-endian length block instead of going through
 *    the table-driven Ghash class;
 *  - AES runs through ref::AesNaive, the byte-wise FIPS-197
 *    implementation, not the production T-table Aes128;
 *  - the SHA-1 MAC message is re-packed here instead of reusing
 *    sha1BlockTag().
 *
 * Since PR 5 not even the block-cipher and field-multiply kernels are
 * shared: the production side is table-driven (src/crypto), the
 * reference side is naive (ref/naive.hh), and both are pinned
 * separately by the NIST / FIPS test-vector suites under tests/crypto/
 * and tests/ref/. A corrupted lookup table, bit-order, packing or
 * composition bug in the production path cannot cancel out against the
 * same bug here. Sha1 remains shared — it has a single implementation,
 * pinned by the FIPS 180-1 vectors.
 */

#ifndef SECMEM_REF_MODEL_HH
#define SECMEM_REF_MODEL_HH

#include <cstdint>

#include "core/config.hh"
#include "crypto/bytes.hh"
#include "ref/naive.hh"
#include "sim/types.hh"

namespace secmem::ref
{

// ---- split counter-block codec (bit-at-a-time) -------------------------
std::uint64_t splitMajor(const Block64 &raw);
void splitSetMajor(Block64 &raw, std::uint64_t major);
unsigned splitMinor(const Block64 &raw, unsigned i);
void splitSetMinor(Block64 &raw, unsigned i, unsigned value);
/** (major << 7) | minor — the concatenated encryption counter. */
std::uint64_t splitCounterFor(const Block64 &raw, unsigned i);

// ---- monolithic counter-block codec ------------------------------------
std::uint64_t monoCounter(const Block64 &raw, unsigned width_bits,
                          unsigned i);
void monoSetCounter(Block64 &raw, unsigned width_bits, unsigned i,
                    std::uint64_t value);

// ---- seed / pad / tag recomputation ------------------------------------
/** The 16-byte AES input for (block, counter, chunk, domain, IV). */
Block16 seedFor(Addr block_addr, std::uint64_t counter, unsigned chunk,
                bool auth_domain, std::uint8_t iv_byte);

/** Counter-mode pad for one cache block (four chunk seeds). */
Block64 ctrPad(const AesNaive &aes, Addr block_addr, std::uint64_t counter,
               std::uint8_t iv_byte);

/** Functional encryption of one data block under @p cfg's scheme. */
Block64 encryptBlock(const SecureMemConfig &cfg, const AesNaive &aes,
                     Addr block_addr, const Block64 &pt, std::uint64_t ctr,
                     std::uint8_t epoch);

/**
 * GCM tag of one block: GHASH_H(ct, lengths) ^ AES_K(auth seed),
 * composed from gf128MulNaive directly.
 */
Block16 gcmTag(const AesNaive &aes, const Block16 &hash_subkey,
               Addr block_addr, const Block64 &ciphertext,
               std::uint64_t counter, std::uint8_t iv_byte);

/** SHA-1 MAC of one block (prior-scheme baseline), 16-byte truncation. */
Block16 sha1Tag(const Block16 &key, Addr block_addr,
                const Block64 &ciphertext, std::uint64_t counter,
                std::uint8_t epoch);

/**
 * The clipped tag the controller stores for a tree node: GCM or SHA-1
 * per @p cfg, epoch folded into the IV (GCM) or the message (SHA-1).
 */
Block16 nodeTag(const SecureMemConfig &cfg, const AesNaive &aes,
                const Block16 &hash_subkey, Addr node_addr,
                const Block64 &content, std::uint64_t counter,
                std::uint8_t epoch);

} // namespace secmem::ref

#endif // SECMEM_REF_MODEL_HH
