#include "ref/shadow.hh"

#include <atomic>
#include <type_traits>

#include "enc/counters.hh"
#include "ref/model.hh"
#include "sim/log.hh"

namespace secmem::ref
{

namespace
{

std::atomic<std::uint64_t> gEvents{0};
std::atomic<std::uint64_t> gChecks{0};
std::atomic<std::uint64_t> gDivs{0};

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Embedded derivative counter of a MAC block (leading 8 bytes, LE). */
std::uint64_t
embeddedDerivOf(const Block64 &blk)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(blk.b[i]) << (8 * i);
    return v;
}

} // namespace

ShadowTotals
shadowTotals()
{
    return {gEvents.load(std::memory_order_relaxed),
            gChecks.load(std::memory_order_relaxed),
            gDivs.load(std::memory_order_relaxed)};
}

std::string
formatDivergence(const Divergence &d)
{
    std::string s = "shadow-model divergence [" + d.kind + "] at addr=" +
                    hex64(d.addr);
    s += "\n  expect: " + d.expect;
    s += "\n  got:    " + d.got;
    if (!d.context.empty())
        s += "\n  context: " + d.context;
    return s;
}

ShadowModel::ShadowModel(const SecureMemConfig &cfg)
    : cfg_(cfg), map_(cfg), aes_(cfg.dataKey)
{
    // The oracle's independence hinges on running the naive kernels: if
    // aes_ ever silently became the production T-table Aes128, a table
    // bug could cancel out against itself and the oracle would go blind.
    static_assert(std::is_same_v<decltype(aes_), AesNaive>,
                  "shadow oracle must use the naive reference AES");
    hashSubkey_ = aes_.encrypt(Block16{});
}

void
ShadowModel::diverge(const std::string &kind, Addr addr, std::string expect,
                     std::string got, std::string context)
{
    gDivs.fetch_add(1, std::memory_order_relaxed);
    Divergence d{kind, addr, std::move(expect), std::move(got),
                 cfg_.schemeName() + ", event " + std::to_string(events_) +
                     (context.empty() ? "" : ", " + context)};
    divs_.push_back(d);
    if (panic_)
        SECMEM_PANIC("%s", formatDivergence(d).c_str());
}

// --------------------------------------------------------------------------
// Reference state
// --------------------------------------------------------------------------

void
ShadowModel::registerBlock(Addr base)
{
    // Mirrors the controller's lazy boot-time formatting: first touch
    // finds an all-zero plaintext encrypted under the block's current
    // counter at epoch 0. Counter state needs no reset — fresh map
    // entries default to zero, and a page's major survives from earlier
    // re-encryptions exactly as the shared counter block does.
    pt_.emplace(base, Block64{});
}

static bool
splitDiscipline(const SecureMemConfig &cfg)
{
    return cfg.enc == EncKind::CtrSplit ||
           (cfg.enc == EncKind::None && cfg.auth == AuthKind::Gcm);
}

std::uint64_t
ShadowModel::counterOf(Addr base) const
{
    if (splitDiscipline(cfg_)) {
        auto it = splitPages_.find(map_.ctrBlockAddrFor(base));
        if (it == splitPages_.end())
            return 0;
        return (it->second.major << kMinorBits) |
               it->second.minors[map_.ctrSlotFor(base)];
    }
    if (cfg_.enc == EncKind::CtrMono) {
        auto it = monoCount_.find(base);
        std::uint64_t c = it == monoCount_.end() ? 0 : it->second;
        return cfg_.monoBits < 64 ? c & ((1ull << cfg_.monoBits) - 1) : c;
    }
    if (cfg_.enc == EncKind::CtrPred) {
        auto it = predCount_.find(base);
        return it == predCount_.end() ? 0 : it->second;
    }
    return 0;
}

std::uint8_t
ShadowModel::epochOf(Addr base) const
{
    auto it = blockEpoch_.find(base);
    return it == blockEpoch_.end() ? 0 : it->second;
}

void
ShadowModel::applyPendingReenc(const ShadowView &v, Addr writing_base)
{
    PendingReenc p = std::move(pending_);
    pending_ = PendingReenc{};

    PageCtr &pc = splitPages_[p.ctrAddr];
    if (p.newMajor != pc.major + 1) {
        diverge("reenc_major", p.ctrAddr, std::to_string(pc.major + 1),
                std::to_string(p.newMajor));
    }
    pc.major = p.newMajor;
    pc.minors.fill(0);
    ++pageReencs_;

    for (Addr a : p.lazy) {
        if (!pt_.count(a)) {
            diverge("reenc_unknown_block", a, "initialized block",
                    "never-touched block marked dirty in L2");
        }
        stale_.insert(a);
    }

    // Off-chip blocks were decrypted and re-encrypted under the new
    // major on the spot; their DRAM bytes and leaf tags must already
    // reflect it by the time the triggering write completes.
    Addr page = map_.firstDataBlockOf(p.ctrAddr);
    std::uint64_t new_ctr = p.newMajor << kMinorBits;
    for (unsigned j = 0; j < kBlocksPerPage; ++j) {
        Addr a = page + static_cast<Addr>(j) * kBlockBytes;
        if (!pt_.count(a) || a == writing_base || stale_.count(a))
            continue;
        blockEpoch_[a] = epoch_;
        Block64 expect = encryptBlock(cfg_, aes_, a, pt_.at(a), new_ctr,
                                      epoch_);
        Block64 got = v.dram(a);
        ++checks_;
        gChecks.fetch_add(1, std::memory_order_relaxed);
        if (!(expect == got)) {
            diverge("reenc_ct", a, toHex(expect), toHex(got),
                    "page re-encryption to major " +
                        std::to_string(p.newMajor));
        }
        if (cfg_.auth != AuthKind::None && v.hasStoredTag(a)) {
            TagLocation loc = map_.tagOfLeaf(map_.leafIndexOfData(a));
            Block16 want = nodeTag(cfg_, aes_, hashSubkey_, a, got, new_ctr,
                                   epoch_);
            Block16 have = storedTag(v, loc);
            ++checks_;
            gChecks.fetch_add(1, std::memory_order_relaxed);
            if (!(want == have)) {
                diverge("reenc_tag", a, toHex(want), toHex(have),
                        "page re-encryption to major " +
                            std::to_string(p.newMajor));
            }
        }
    }
}

void
ShadowModel::advanceCounter(const ShadowView &v, Addr base)
{
    if (splitDiscipline(cfg_)) {
        Addr ca = map_.ctrBlockAddrFor(base);
        unsigned slot = map_.ctrSlotFor(base);
        PageCtr &pc = splitPages_[ca];
        if (pc.minors[slot] == SplitCounterBlock::maxMinor()) {
            if (pending_.valid && pending_.ctrAddr == ca) {
                applyPendingReenc(v, base);
            } else {
                diverge("missing_reenc", ca,
                        "page re-encryption at minor overflow",
                        "no re-encryption triggered");
                // Resync locally so later checks stay meaningful.
                pc.major += 1;
                pc.minors.fill(0);
            }
        } else if (pending_.valid) {
            diverge("unexpected_reenc", pending_.ctrAddr,
                    "no re-encryption (minor " +
                        std::to_string(pc.minors[slot]) + ")",
                    "re-encryption to major " +
                        std::to_string(pending_.newMajor));
            applyPendingReenc(v, base);
        }
        splitPages_[ca].minors[slot] += 1;
        return;
    }
    if (cfg_.enc == EncKind::CtrMono) {
        std::uint64_t c = ++monoCount_[base];
        std::uint64_t value =
            cfg_.monoBits < 64 ? c & ((1ull << cfg_.monoBits) - 1) : c;
        if (value == 0) {
            // Counter wrap: whole-memory re-encryption, emulated with
            // the epoch byte exactly as in the controller.
            ++freezes_;
            ++epoch_;
        }
        return;
    }
    if (cfg_.enc == EncKind::CtrPred)
        ++predCount_[base];
}

// --------------------------------------------------------------------------
// Stored-state readers
// --------------------------------------------------------------------------

Block16
ShadowModel::storedTag(const ShadowView &v, const TagLocation &loc) const
{
    Block64 blk;
    if (loc.pinned) {
        blk = v.pinnedTop();
    } else if (const Block64 *line = v.macLine(loc.blockAddr)) {
        blk = *line;
    } else {
        blk = v.dram(loc.blockAddr);
    }
    Block16 tag{};
    unsigned bytes = map_.macSlotBytes();
    unsigned off = map_.macSlotOffset(loc.slot);
    for (unsigned i = 0; i < bytes; ++i)
        tag.b[i] = blk.b[off + i];
    return tag;
}

std::uint64_t
ShadowModel::effectiveDeriv(const ShadowView &v, Addr ctr_addr) const
{
    std::uint64_t di = map_.derivIdxOfCtrBlock(ctr_addr);
    Addr da = map_.derivCtrBlockAddr(di);
    const Block64 *line = v.derivLine(da);
    Block64 raw = line ? *line : v.dram(da);
    return monoCounter(raw, 64, map_.derivSlot(di));
}

// --------------------------------------------------------------------------
// Checks
// --------------------------------------------------------------------------

void
ShadowModel::checkCounterSlot(const ShadowView &v, Addr base)
{
    Addr ca = map_.ctrBlockAddrFor(base);
    unsigned slot = map_.ctrSlotFor(base);
    const Block64 *line = v.ctrLine(ca);
    Block64 raw = line ? *line : v.dram(ca);

    std::uint64_t expect = counterOf(base);
    std::uint64_t got = cfg_.enc == EncKind::CtrMono
                            ? monoCounter(raw, cfg_.monoBits, slot)
                            : splitCounterFor(raw, slot);
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (expect != got) {
        diverge("ctr_slot", base, std::to_string(expect),
                std::to_string(got),
                "counter block " + hex64(ca) + " slot " +
                    std::to_string(slot) +
                    (line ? " (cached)" : " (DRAM)"));
    }
}

void
ShadowModel::checkDataCiphertext(const ShadowView &v, Addr base)
{
    Block64 expect = encryptBlock(cfg_, aes_, base, pt_.at(base),
                                  counterOf(base), epochOf(base));
    Block64 got = v.dram(base);
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (!(expect == got)) {
        diverge("dram_ct", base, toHex(expect), toHex(got),
                "ctr " + std::to_string(counterOf(base)) + ", epoch " +
                    std::to_string(epochOf(base)));
    }
}

void
ShadowModel::checkLeafTag(const ShadowView &v, Addr base)
{
    TagLocation loc = map_.tagOfLeaf(map_.leafIndexOfData(base));
    // The stored tag covers the block's current DRAM bytes — compute
    // the reference tag over those bytes directly, so this check stays
    // independent of checkDataCiphertext.
    Block16 expect = nodeTag(cfg_, aes_, hashSubkey_, base, v.dram(base),
                             counterOf(base), epochOf(base));
    Block16 got = storedTag(v, loc);
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (!(expect == got)) {
        diverge("leaf_tag", base, toHex(expect), toHex(got),
                "ctr " + std::to_string(counterOf(base)) + ", epoch " +
                    std::to_string(epochOf(base)));
    }
    checkAncestors(v, loc);
}

void
ShadowModel::checkCtrBlockTag(const ShadowView &v, Addr ctr_addr)
{
    if (!v.hasStoredTag(ctr_addr))
        return;
    std::uint64_t deriv =
        cfg_.auth == AuthKind::Gcm ? effectiveDeriv(v, ctr_addr) : 0;
    TagLocation loc = map_.tagOfLeaf(map_.leafIndexOfCtrBlock(ctr_addr));
    Block16 expect = nodeTag(cfg_, aes_, hashSubkey_, ctr_addr,
                             v.dram(ctr_addr), deriv, 0);
    Block16 got = storedTag(v, loc);
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (!(expect == got)) {
        diverge("ctr_tag", ctr_addr, toHex(expect), toHex(got),
                "deriv " + std::to_string(deriv));
    }
    checkAncestors(v, loc);
}

void
ShadowModel::checkAncestors(const ShadowView &v, TagLocation loc)
{
    while (!loc.pinned) {
        Addr m = loc.blockAddr;
        auto [level, idx] = map_.macLevelOf(m);
        TagLocation up = map_.tagOfMacBlock(level, idx);
        if (v.hasStoredTag(m)) {
            Block64 content = v.dram(m);
            std::uint64_t deriv = cfg_.auth == AuthKind::Gcm
                                      ? embeddedDerivOf(content)
                                      : 0;
            Block16 expect = nodeTag(cfg_, aes_, hashSubkey_, m, content,
                                     deriv, 0);
            Block16 got = storedTag(v, up);
            ++checks_;
            gChecks.fetch_add(1, std::memory_order_relaxed);
            if (!(expect == got)) {
                diverge("tree_tag", m, toHex(expect), toHex(got),
                        "MAC level " + std::to_string(level) + " idx " +
                            std::to_string(idx) + ", deriv " +
                            std::to_string(deriv));
            }
        }
        loc = up;
    }
}

void
ShadowModel::checkStats(const ShadowView &v)
{
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (v.pageReencCount() != pageReencs_) {
        diverge("page_reenc_count", 0, std::to_string(pageReencs_),
                std::to_string(v.pageReencCount()));
    }
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (v.freezeCount() != freezes_) {
        diverge("freeze_count", 0, std::to_string(freezes_),
                std::to_string(v.freezeCount()));
    }
}

void
ShadowModel::checkBlock(const ShadowView &v, Addr base)
{
    if (cfg_.usesCounterCache())
        checkCounterSlot(v, base);
    if (!stale_.count(base))
        checkDataCiphertext(v, base);
    if (cfg_.auth != AuthKind::None) {
        if (v.hasStoredTag(base) && !stale_.count(base))
            checkLeafTag(v, base);
        if (cfg_.usesCounterCache() && cfg_.authenticateCounters)
            checkCtrBlockTag(v, map_.ctrBlockAddrFor(base));
    }
    checkStats(v);
}

// --------------------------------------------------------------------------
// Events
// --------------------------------------------------------------------------

void
ShadowModel::onRead(const ShadowView &v, Addr base, const Block64 &returned)
{
    ++events_;
    gEvents.fetch_add(1, std::memory_order_relaxed);
    registerBlock(base);
    if (pending_.valid) {
        diverge("orphan_reenc", pending_.ctrAddr,
                "re-encryption consumed by its triggering write",
                "re-encryption still pending at a later event");
        pending_ = PendingReenc{};
    }
    if (stale_.count(base)) {
        // A lazily re-encrypted block must stay in the L2 (dirty) until
        // written back; a miss fill here would decrypt stale ciphertext
        // under the new counter.
        diverge("stale_read", base,
                "no controller read while DRAM copy is stale",
                "readBlock on lazily re-encrypted block");
        return;
    }
    Block64 expect = pt_.at(base);
    ++checks_;
    gChecks.fetch_add(1, std::memory_order_relaxed);
    if (!(expect == returned)) {
        diverge("read_data", base, toHex(expect), toHex(returned),
                "ctr " + std::to_string(counterOf(base)) + ", epoch " +
                    std::to_string(epochOf(base)));
    }
    checkBlock(v, base);
}

void
ShadowModel::onWrite(const ShadowView &v, Addr base, const Block64 &pt)
{
    ++events_;
    gEvents.fetch_add(1, std::memory_order_relaxed);
    registerBlock(base);
    advanceCounter(v, base);
    if (cfg_.enc == EncKind::Direct || cfg_.enc == EncKind::CtrMono ||
        cfg_.enc == EncKind::CtrSplit) {
        blockEpoch_[base] = epoch_;
    }
    pt_[base] = pt;
    stale_.erase(base);
    if (pending_.valid) {
        diverge("orphan_reenc", pending_.ctrAddr,
                "re-encryption consumed by its triggering write",
                "re-encryption pending after counter advance");
        pending_ = PendingReenc{};
    }
    checkBlock(v, base);
}

void
ShadowModel::onPageReenc(Addr ctr_addr, std::uint64_t new_major,
                         std::vector<Addr> lazy)
{
    if (pending_.valid) {
        diverge("orphan_reenc", pending_.ctrAddr,
                "at most one re-encryption per write",
                "second re-encryption before the first was consumed");
    }
    pending_.valid = true;
    pending_.ctrAddr = ctr_addr;
    pending_.newMajor = new_major;
    pending_.lazy = std::move(lazy);
}

} // namespace secmem::ref
