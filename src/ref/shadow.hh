/**
 * @file
 * Shadow execution of the untimed reference model (the differential
 * correctness oracle).
 *
 * A ShadowModel runs alongside one SecureMemoryController. It keeps its
 * own functional state — plaintext per data block, split/mono/pred
 * counter disciplines, per-block epochs, pending page re-encryptions —
 * and after every clean memory event recomputes what the controller's
 * architectural state MUST look like:
 *
 *  - the decrypted read data returned to the CPU,
 *  - the effective counter slot (cached line if resident, else DRAM),
 *  - the DRAM ciphertext of the accessed block,
 *  - the stored leaf tag of the block and of its counter block,
 *  - every ancestor MAC block's stored tag along the Merkle path
 *    (stored tags always cover the child's current DRAM bytes),
 *  - the page re-encryption and freeze counts.
 *
 * All recomputation goes through src/ref/model.hh, which runs on the
 * naive kernels in ref/naive.hh (AesNaive, gf128MulNaive) — the only
 * primitive shared with the production path is Sha1, pinned by its FIPS
 * vectors. On the first mismatch the model records a structured
 * Divergence and (by default) panics with a diff of the expected and
 * observed bytes.
 *
 * The oracle is purely observational: it never mutates controller
 * state, and it reads DRAM through Dram::peekBlock so transient-fault
 * state is untouched. It is only invoked for accesses that verified
 * cleanly — tamper campaigns exercise the detection machinery, not the
 * oracle.
 */

#ifndef SECMEM_REF_SHADOW_HH
#define SECMEM_REF_SHADOW_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.hh"
#include "core/layout.hh"
#include "crypto/bytes.hh"
#include "enc/counters.hh"
#include "ref/naive.hh"
#include "sim/types.hh"

namespace secmem::ref
{

/**
 * Read-only window onto the controller state the oracle cross-checks.
 * Implemented by an adapter inside controller.cc over public accessors.
 */
class ShadowView
{
  public:
    virtual ~ShadowView() = default;

    /** DRAM bytes of block @p a (must not consume transient faults). */
    virtual Block64 dram(Addr a) const = 0;
    /** Resident counter-cache line for @p a, or nullptr. */
    virtual const Block64 *ctrLine(Addr a) const = 0;
    /** Resident MAC-cache line for @p a, or nullptr. */
    virtual const Block64 *macLine(Addr a) const = 0;
    /** Resident derivative-counter-cache line for @p a, or nullptr. */
    virtual const Block64 *derivLine(Addr a) const = 0;
    /** The pinned on-chip top-of-tree block. */
    virtual const Block64 &pinnedTop() const = 0;
    /** True once the node at @p a has a valid stored tag. */
    virtual bool hasStoredTag(Addr a) const = 0;
    virtual std::uint64_t pageReencCount() const = 0;
    virtual std::uint64_t freezeCount() const = 0;
};

/** One functional mismatch between the controller and the model. */
struct Divergence
{
    std::string kind;    ///< e.g. "dram_ct", "leaf_tag", "ctr_slot"
    Addr addr = 0;       ///< block the check anchored to
    std::string expect;  ///< model value (hex / decimal)
    std::string got;     ///< controller value
    std::string context; ///< event number, scheme, extra detail
};

/** Render a divergence as the multi-line diff used in the panic. */
std::string formatDivergence(const Divergence &d);

/** Process-wide totals across every ShadowModel (for CLI summaries). */
struct ShadowTotals
{
    std::uint64_t events = 0;
    std::uint64_t checks = 0;
    std::uint64_t divergences = 0;
};
ShadowTotals shadowTotals();

/** The oracle attached to one controller. */
class ShadowModel
{
  public:
    explicit ShadowModel(const SecureMemConfig &cfg);

    /**
     * A clean readBlock returned plaintext @p returned_pt for the data
     * block at @p base. Registers first-touch blocks (mirroring the
     * controller's lazy boot-time formatting) and runs every check.
     */
    void onRead(const ShadowView &v, Addr base, const Block64 &returned_pt);

    /** A clean writeBlock stored plaintext @p pt at @p base. */
    void onWrite(const ShadowView &v, Addr base, const Block64 &pt);

    /**
     * The controller triggered a split-counter page re-encryption for
     * @p ctr_addr, moving to @p new_major; @p lazy lists the in-page
     * blocks handled lazily (marked dirty in the L2, DRAM left stale).
     * Recorded only; validated and applied by the enclosing onWrite.
     */
    void onPageReenc(Addr ctr_addr, std::uint64_t new_major,
                     std::vector<Addr> lazy);

    /** Forget a recorded re-encryption (enclosing access failed). */
    void dropPending() { pending_.valid = false; }

    /** When false, divergences are recorded but do not panic (tests). */
    void setPanic(bool on) { panic_ = on; }

    std::uint64_t events() const { return events_; }
    std::uint64_t checks() const { return checks_; }
    const std::vector<Divergence> &divergences() const { return divs_; }

  private:
    struct PageCtr
    {
        std::uint64_t major = 0;
        std::array<std::uint8_t, kBlocksPerPage> minors{};
    };

    void registerBlock(Addr base);
    std::uint64_t counterOf(Addr base) const;
    std::uint8_t epochOf(Addr base) const;
    void advanceCounter(const ShadowView &v, Addr base);
    void applyPendingReenc(const ShadowView &v, Addr writing_base);

    /** All per-event invariants for @p base (see file comment). */
    void checkBlock(const ShadowView &v, Addr base);
    void checkCounterSlot(const ShadowView &v, Addr base);
    void checkDataCiphertext(const ShadowView &v, Addr base);
    void checkLeafTag(const ShadowView &v, Addr base);
    void checkCtrBlockTag(const ShadowView &v, Addr ctr_addr);
    /** Stored tags of every MAC block from @p loc up to the pinned top. */
    void checkAncestors(const ShadowView &v, TagLocation loc);
    void checkStats(const ShadowView &v);

    Block16 storedTag(const ShadowView &v, const TagLocation &loc) const;
    std::uint64_t effectiveDeriv(const ShadowView &v, Addr ctr_addr) const;

    void diverge(const std::string &kind, Addr addr, std::string expect,
                 std::string got, std::string context = {});

    SecureMemConfig cfg_;
    AddressMap map_;
    AesNaive aes_;
    Block16 hashSubkey_{};

    std::unordered_map<Addr, PageCtr> splitPages_; ///< by ctr-block addr
    std::unordered_map<Addr, std::uint64_t> monoCount_; ///< by data block
    std::unordered_map<Addr, std::uint64_t> predCount_;
    std::unordered_map<Addr, Block64> pt_;
    std::unordered_map<Addr, std::uint8_t> blockEpoch_;
    /** Blocks lazily re-encrypted: DRAM stale until next write-back. */
    std::unordered_set<Addr> stale_;
    std::uint8_t epoch_ = 0;
    std::uint64_t pageReencs_ = 0;
    std::uint64_t freezes_ = 0;

    struct PendingReenc
    {
        bool valid = false;
        Addr ctrAddr = kAddrInvalid;
        std::uint64_t newMajor = 0;
        std::vector<Addr> lazy;
    } pending_;

    std::uint64_t events_ = 0;
    std::uint64_t checks_ = 0;
    std::vector<Divergence> divs_;
    bool panic_ = true;
};

} // namespace secmem::ref

#endif // SECMEM_REF_SHADOW_HH
