#include "ref/naive.hh"

#include <cstring>
#include <utility>

namespace secmem::ref
{

Gf128
gf128MulNaive(const Gf128 &x, const Gf128 &y)
{
    // Right-shift algorithm from SP 800-38D, Section 6.3. V starts as y
    // and is multiplied by x one bit at a time, MSB of the byte-stream
    // first (which is the x^0 coefficient in GCM's reflected convention).
    Gf128 z{0, 0};
    Gf128 v = y;
    for (int i = 0; i < 128; ++i) {
        bool xbit = i < 64 ? ((x.hi >> (63 - i)) & 1)
                           : ((x.lo >> (127 - i)) & 1);
        if (xbit) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        bool lsb = v.lo & 1;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ull; // R = 11100001 || 0^120
    }
    return z;
}

namespace
{

/** FIPS-197 S-box. */
const std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

/** Inverse S-box, generated from kSbox at static-init time. */
struct InvSbox
{
    std::uint8_t t[256];

    InvSbox()
    {
        for (int i = 0; i < 256; ++i)
            t[kSbox[i]] = static_cast<std::uint8_t>(i);
    }
};

const InvSbox kInvSbox;

/** Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1. */
inline std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

/** General GF(2^8) multiply (used by InvMixColumns). */
inline std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

inline void
subBytes(std::uint8_t s[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] = kSbox[s[i]];
}

inline void
invSubBytes(std::uint8_t s[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] = kInvSbox.t[s[i]];
}

/**
 * ShiftRows on the column-major state layout used by FIPS-197
 * (s[i] is byte i of the input, so row r of column c lives at
 * s[4c + r]).
 */
inline void
shiftRows(std::uint8_t s[16])
{
    std::uint8_t t;
    // Row 1: shift left by 1.
    t = s[1];
    s[1] = s[5];
    s[5] = s[9];
    s[9] = s[13];
    s[13] = t;
    // Row 2: shift left by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift left by 3 (== right by 1).
    t = s[15];
    s[15] = s[11];
    s[11] = s[7];
    s[7] = s[3];
    s[3] = t;
}

inline void
invShiftRows(std::uint8_t s[16])
{
    std::uint8_t t;
    // Row 1: shift right by 1.
    t = s[13];
    s[13] = s[9];
    s[9] = s[5];
    s[5] = s[1];
    s[1] = t;
    // Row 2: shift right by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift right by 3 (== left by 1).
    t = s[3];
    s[3] = s[7];
    s[7] = s[11];
    s[11] = s[15];
    s[15] = t;
}

inline void
mixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
        col[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
        col[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
        col[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
        col[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
    }
}

inline void
invMixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        col[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        col[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        col[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

inline void
addRoundKey(std::uint8_t s[16], const std::uint8_t rk[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

} // namespace

void
AesNaive::setKey(const std::uint8_t key[kKeyBytes])
{
    std::memcpy(rk_.data(), key, 16);
    std::uint8_t rcon = 1;
    for (int i = 16; i < (kRounds + 1) * 16; i += 4) {
        std::uint8_t t[4];
        std::memcpy(t, rk_.data() + i - 4, 4);
        if (i % 16 == 0) {
            // RotWord + SubWord + Rcon.
            std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ rcon);
            t[1] = kSbox[t[2]];
            t[2] = kSbox[t[3]];
            t[3] = kSbox[tmp];
            rcon = xtime(rcon);
        }
        for (int j = 0; j < 4; ++j)
            rk_[i + j] = rk_[i - 16 + j] ^ t[j];
    }
}

void
AesNaive::encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);
    addRoundKey(s, rk_.data());
    for (int round = 1; round < kRounds; ++round) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, rk_.data() + round * 16);
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, rk_.data() + kRounds * 16);
    std::memcpy(out, s, 16);
}

void
AesNaive::decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);
    addRoundKey(s, rk_.data() + kRounds * 16);
    for (int round = kRounds - 1; round >= 1; --round) {
        invShiftRows(s);
        invSubBytes(s);
        addRoundKey(s, rk_.data() + round * 16);
        invMixColumns(s);
    }
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, rk_.data());
    std::memcpy(out, s, 16);
}

} // namespace secmem::ref
