/**
 * @file
 * Work-stealing thread pool for simulation jobs.
 *
 * Jobs are distributed round-robin across per-worker deques up front;
 * a worker pops from the back of its own deque (LIFO keeps its cache
 * warm across same-figure jobs) and, when empty, steals from the front
 * of a victim's deque (FIFO takes the oldest — typically largest-
 * remaining — work first). Simulation jobs run for seconds, so the
 * deques are mutex-guarded rather than lock-free: contention is a few
 * dozen lock acquisitions per sweep, unmeasurable next to the work.
 *
 * The pool imposes *no ordering or affinity semantics*: tasks must be
 * independent (engine jobs are — each owns its System and RNG), and
 * result placement is by task index, so output order is deterministic
 * no matter which worker ran what.
 */

#ifndef SECMEM_EXP_SCHEDULER_HH
#define SECMEM_EXP_SCHEDULER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace secmem::exp
{

class WorkStealingPool
{
  public:
    /** @param threads worker count; 0 picks the hardware concurrency. */
    explicit WorkStealingPool(unsigned threads);

    /** A task; receives (task index, worker index). */
    using Task = std::function<void(std::size_t, unsigned)>;

    /**
     * Run @p count tasks to completion and return. With one worker (or
     * one task) everything executes inline on the calling thread, in
     * index order — the serial reference the determinism tests compare
     * against.
     *
     * Crash isolation: a task that lets an exception escape is counted
     * (see escapedExceptions()) and its slot abandoned, but the worker
     * thread and the remaining tasks keep running — one poisoned job
     * cannot take down the pool. Callers that care about individual
     * failures should catch inside the task (the engine does).
     */
    void run(std::size_t count, const Task &task);

    unsigned threads() const { return threads_; }

    /** Exceptions that escaped tasks and were absorbed (lifetime). */
    std::uint64_t
    escapedExceptions() const
    {
        return escaped_.load(std::memory_order_relaxed);
    }

    /** Tasks taken from another worker's deque (lifetime). */
    std::uint64_t
    steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** 1 ms waits with every deque empty but peers busy (lifetime). */
    std::uint64_t
    idleSleeps() const
    {
        return idleSleeps_.load(std::memory_order_relaxed);
    }

  private:
    void runGuarded(const Task &task, std::size_t idx, unsigned worker);

    unsigned threads_;
    std::atomic<std::uint64_t> escaped_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> idleSleeps_{0};
};

} // namespace secmem::exp

#endif // SECMEM_EXP_SCHEDULER_HH
