#include "exp/store_chaos.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "exp/result_store.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "workload/spec_profiles.hh"

namespace fs = std::filesystem;

namespace secmem::exp
{

namespace
{

/** A synthetic, deterministic job population (no simulation needed). */
JobSpec
specFor(unsigned i)
{
    JobSpec spec = makeJob("chaos-drill", profileByName("ammp"),
                           SecureMemConfig::splitGcm(),
                           RunLengths{1000, 2000 + i});
    spec.profile.seed = 0xd1200 + i;
    return spec;
}

RunOutput
outputFor(const JobSpec &spec, unsigned i)
{
    RunOutput out;
    out.workload = spec.profile.name;
    out.scheme = spec.scheme;
    out.instructions = 1000 + i;
    out.cycles = 5000 + 13ull * i;
    out.ipc = static_cast<double>(out.instructions) /
              static_cast<double>(out.cycles);
    out.writebacks = 7ull * i;
    out.l2MissRate = 0.01 * static_cast<double>(i % 50);
    out.statsJson = "{\"drill\": {\"index\": " + std::to_string(i) + "}}";
    return out;
}

} // namespace

StoreChaosResult
runStoreChaosDrill(const StoreChaosConfig &cfg)
{
    StoreChaosResult res;
    Rng rng(cfg.seed ^ 0x57c4a05ULL);

    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec) {
        SECMEM_WARN("store drill: cannot create '%s': %s", cfg.dir.c_str(),
                    ec.message().c_str());
        return res;
    }

    // Phase 1: a sweep persists its results...
    std::vector<JobSpec> specs;
    {
        ResultStore store(cfg.dir);
        for (unsigned i = 0; i < cfg.records; ++i) {
            specs.push_back(specFor(i));
            store.put(specs.back(), outputFor(specs.back(), i));
            ++res.written;
        }
    }

    // Phase 2: ...and the machine dies badly. Tear some records at an
    // arbitrary byte (crash mid-flush at the fs level), flip bits in
    // others (rot), and leave mid-write temporaries behind (writers
    // killed between create and rename).
    std::vector<bool> damaged(cfg.records, false);
    for (unsigned i = 0; i < cfg.records; ++i) {
        const std::string path = cfg.dir + "/" + specs[i].hash() + ".run";
        std::ifstream in(path, std::ios::binary);
        std::stringstream buf;
        buf << in.rdbuf();
        std::string bytes = buf.str();
        in.close();
        if (bytes.size() < 2)
            continue;
        bool changed = false;
        if (rng.chance(cfg.truncateRate)) {
            bytes.resize(1 + static_cast<std::size_t>(
                                 rng.below(bytes.size() - 1)));
            ++res.truncated;
            changed = true;
        }
        if (rng.chance(cfg.corruptRate)) {
            std::size_t off =
                static_cast<std::size_t>(rng.below(bytes.size()));
            bytes[off] = static_cast<char>(bytes[off] ^ 0xa5);
            ++res.corrupted;
            changed = true;
        }
        if (!changed)
            continue;
        damaged[i] = true;
        std::ofstream outf(path, std::ios::binary | std::ios::trunc);
        outf << bytes;
    }
    for (unsigned t = 0; t < cfg.tmpLitter; ++t) {
        std::ofstream litter(cfg.dir + "/crashed" + std::to_string(t) +
                                 ".run.tmp." + std::to_string(90000 + t),
                             std::ios::binary);
        litter << "partial";
        ++res.litterPlanted;
    }

    // Phase 3: the sweep restarts. Opening the store journal-recovers;
    // every lookup must then either hit with the exact original data
    // or miss (so the job reruns) — never return garbage.
    {
        ResultStore store(cfg.dir);
        res.tmpCleaned = store.tmpCleaned();
        res.corruptDiscarded = store.corruptDiscarded();
        for (unsigned i = 0; i < cfg.records; ++i) {
            RunOutput got;
            if (store.lookup(specs[i], &got)) {
                ++res.survivors;
                if (runOutputToJson(got) ==
                    runOutputToJson(outputFor(specs[i], i)))
                    ++res.survivorsExact;
                else
                    ++res.wrongData;
            } else if (!damaged[i]) {
                ++res.intactLost;
            }
        }
    }

    std::uint64_t leftoverTmp = 0;
    for (const auto &entry : fs::directory_iterator(cfg.dir, ec)) {
        if (entry.path().filename().string().find(".tmp.") !=
            std::string::npos)
            ++leftoverTmp;
    }

    res.ok = res.wrongData == 0 && res.intactLost == 0 && leftoverTmp == 0 &&
             res.tmpCleaned == res.litterPlanted;
    return res;
}

std::string
StoreChaosResult::toJson() const
{
    std::ostringstream os;
    os << "{";
    os << "\n  \"written\": " << written << ',';
    os << "\n  \"truncated\": " << truncated << ',';
    os << "\n  \"corrupted\": " << corrupted << ',';
    os << "\n  \"litter_planted\": " << litterPlanted << ',';
    os << "\n  \"tmp_cleaned\": " << tmpCleaned << ',';
    os << "\n  \"corrupt_discarded\": " << corruptDiscarded << ',';
    os << "\n  \"survivors\": " << survivors << ',';
    os << "\n  \"survivors_exact\": " << survivorsExact << ',';
    os << "\n  \"intact_lost\": " << intactLost << ',';
    os << "\n  \"wrong_data\": " << wrongData << ',';
    os << "\n  \"ok\": " << (ok ? "true" : "false");
    os << "\n}";
    return os.str();
}

} // namespace secmem::exp
