#include "exp/figures.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include <unistd.h>

#include "core/controller.hh"
#include "core/system.hh"
#include "cpu/core_loop.hh"
#include "crypto/backend/backend.hh"
#include "harness/table.hh"
#include "obs/profiler.hh"
#include "obs/registry.hh"
#include "ref/shadow.hh"
#include "sim/atomic_file.hh"
#include "sim/event_queue.hh"
#include "sim/log.hh"

namespace secmem::exp
{

namespace
{

constexpr RunLengths kSmokeLengths{40'000, 60'000};

unsigned long long
ull(std::uint64_t v)
{
    return static_cast<unsigned long long>(v);
}

std::string
avgLabel(std::size_t n)
{
    return "avg(" + std::to_string(n) + ")";
}

// ---------------------------------------------------------------------
// Figure 1: anatomy of an L2 miss — measured single-access timings on a
// bare controller; no sweep jobs (it is effectively free).
// ---------------------------------------------------------------------

SecureMemConfig
smallMem(SecureMemConfig cfg)
{
    cfg.memoryBytes = 32 << 20;
    return cfg;
}

AccessTiming
missLatency(SecureMemConfig cfg, bool warm_ctr, Tick *start)
{
    SecureMemoryController ctrl(smallMem(cfg));
    Tick t = ctrl.writeBlock(0x4000, Block64{}, 1);
    if (!warm_ctr && cfg.usesCounterCache())
        ctrl.evictCounterBlock(0x4000);
    // Quiesce resource models, then issue one clean miss.
    Tick now = t + 100'000;
    *start = now;
    Block64 out;
    return ctrl.readBlock(0x4000, now, &out);
}

void
runFig1(Engine &, const FigureContext &ctx)
{
    std::printf("=== Figure 1: anatomy of an L2 miss (measured) ===\n\n");

    TextTable table({"configuration", "data +cycles", "auth +cycles"});
    auto row = [&](const std::string &label, SecureMemConfig cfg,
                   bool warm_ctr) {
        Tick s;
        AccessTiming at = missLatency(std::move(cfg), warm_ctr, &s);
        table.addRow({label, std::to_string(ull(at.dataReady - s)),
                      std::to_string(ull(at.authDone - s))});
    };

    row("no protection", SecureMemConfig::baseline(), true);
    row("(a) direct encryption", SecureMemConfig::direct(), true);
    row("(b) counter mode, ctr-cache hit", SecureMemConfig::split(), true);
    row("(c) counter mode, ctr-cache miss", SecureMemConfig::split(), false);
    row("GCM (pad overlaps fetch)", SecureMemConfig::gcmAuthOnly(), true);
    for (Tick lat : {Tick(80), Tick(320)}) {
        row("SHA-1 " + std::to_string(ull(lat)) +
                "-cycle (starts after data)",
            SecureMemConfig::sha1AuthOnly(lat), true);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper Fig 1 / Sec 3): counter mode with a\n"
        "counter-cache hit adds almost nothing over the raw miss — the\n"
        "pad is ready before the data. Direct encryption adds the AES\n"
        "latency serially; a counter-cache miss adds a partially\n"
        "overlapped second memory access. GCM authentication completes a\n"
        "few cycles after the data arrives; SHA-1 adds its full hash\n"
        "latency on top.\n");
    emitArtifacts(ctx.outDir, "fig1", table.csv(), {}, {});
}

// ---------------------------------------------------------------------
// Figure 4: normalized IPC of the encryption schemes, no authentication.
// ---------------------------------------------------------------------

void
runFig4(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({600'000, 800'000});
    std::printf("=== Figure 4: normalized IPC, memory encryption only ===\n");
    std::printf("(%llu instructions per run after %llu warm-up; "
                "SECMEM_SIM_INSTRS overrides)\n\n",
                ull(lengths.sim), ull(lengths.warmup));

    SchemeList schemes = {
        {"Split", SecureMemConfig::split()},
        {"Mono8b", SecureMemConfig::mono(8)},
        {"Mono16b", SecureMemConfig::mono(16)},
        {"Mono32b", SecureMemConfig::mono(32)},
        {"Mono64b", SecureMemConfig::mono(64)},
        {"Direct", SecureMemConfig::direct()},
    };
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths);
    sweep.run();

    TextTable table({"app", "Split", "Mono8b", "Mono16b", "Mono32b",
                     "Mono64b", "Direct", "freezes(8b)"});
    std::uint64_t total_freezes = 0;
    for (const SpecProfile &p : ctx.workloads) {
        std::uint64_t freezes8 = sweep.at(p.name, "Mono8b").freezes;
        total_freezes += freezes8;
        if (sweep.nipc(p.name, "Direct") > 0.95)
            continue; // paper's >=5% penalty filter
        table.addRow({p.name, fmtDouble(sweep.nipc(p.name, "Split")),
                      fmtDouble(sweep.nipc(p.name, "Mono8b")),
                      fmtDouble(sweep.nipc(p.name, "Mono16b")),
                      fmtDouble(sweep.nipc(p.name, "Mono32b")),
                      fmtDouble(sweep.nipc(p.name, "Mono64b")),
                      fmtDouble(sweep.nipc(p.name, "Direct")),
                      std::to_string(freezes8)});
    }
    table.addRow({avgLabel(ctx.workloads.size()),
                  fmtDouble(sweep.avgNipc("Split")),
                  fmtDouble(sweep.avgNipc("Mono8b")),
                  fmtDouble(sweep.avgNipc("Mono16b")),
                  fmtDouble(sweep.avgNipc("Mono32b")),
                  fmtDouble(sweep.avgNipc("Mono64b")),
                  fmtDouble(sweep.avgNipc("Direct")),
                  std::to_string(total_freezes)});
    table.print();

    std::printf(
        "\nExpected shape (paper): Split tracks Mono8b (whose freezes the\n"
        "paper treats as free); larger monolithic counters are\n"
        "progressively worse; Direct is worst. Freeze counts are per-run\n"
        "observations; Table 2 extrapolates real-time overflow rates.\n");
    emitArtifacts(ctx.outDir, "fig4", table.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Table 2: counter growth rates and time to overflow.
// ---------------------------------------------------------------------

std::string
humanTime(double seconds)
{
    if (seconds < 120)
        return fmtDouble(seconds, 2) + " s";
    if (seconds < 2 * 3600)
        return fmtDouble(seconds / 60, 1) + " min";
    if (seconds < 2 * 86400)
        return fmtDouble(seconds / 3600, 1) + " h";
    if (seconds < 2 * 31557600.0)
        return fmtDouble(seconds / 86400, 1) + " days";
    if (seconds < 2000 * 31557600.0)
        return fmtDouble(seconds / 31557600.0, 1) + " years";
    return fmtDouble(seconds / 31557600.0 / 1000, 1) + " millennia";
}

void
runTable2(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({600'000, 800'000});
    std::printf("=== Table 2: counter growth rate and estimated time to "
                "overflow ===\n\n");

    const unsigned widths[4] = {8, 16, 32, 64};
    SchemeList schemes;
    for (unsigned w : widths)
        schemes.emplace_back("Mono" + std::to_string(w) + "b",
                             SecureMemConfig::mono(w));
    // No baseline: this table reports absolute write-back rates.
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths, {}, {},
                      /*withBaseline=*/false);
    sweep.run();

    struct Row
    {
        std::string app;
        double growth[4];
        double global;
    };
    std::vector<Row> rows;
    for (const SpecProfile &p : ctx.workloads) {
        Row row;
        row.app = p.name;
        for (int i = 0; i < 4; ++i) {
            const RunOutput &r =
                sweep.at(p.name, schemes[i].first);
            row.growth[i] = r.counterGrowthPerSec;
            if (i == 2)
                row.global = r.writebackRatePerSec;
        }
        rows.push_back(row);
    }

    // The paper lists the five fastest-growing applications + average.
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.growth[0] > b.growth[0];
    });

    TextTable growth({"app", "Mono8b/s", "Mono16b/s", "Mono32b/s",
                      "Mono64b/s", "Global32b/s"});
    TextTable overflow({"app", "Mono8b", "Mono16b", "Mono32b", "Mono64b",
                        "Global32b"});

    Row avg{avgLabel(rows.size()), {0, 0, 0, 0}, 0};
    for (const Row &r : rows) {
        for (int i = 0; i < 4; ++i)
            avg.growth[i] += r.growth[i] / rows.size();
        avg.global += r.global / rows.size();
    }

    auto emit = [&](const Row &r) {
        growth.addRow({r.app, fmtDouble(r.growth[0], 0),
                       fmtDouble(r.growth[1], 0), fmtDouble(r.growth[2], 0),
                       fmtDouble(r.growth[3], 0), fmtDouble(r.global, 0)});
        std::vector<std::string> times = {r.app};
        for (int i = 0; i < 4; ++i) {
            double rate = std::max(r.growth[i], 1e-9);
            times.push_back(humanTime(std::pow(2.0, widths[i]) / rate));
        }
        times.push_back(
            humanTime(std::pow(2.0, 32) / std::max(r.global, 1e-9)));
        overflow.addRow(times);
    };

    for (std::size_t i = 0; i < 5 && i < rows.size(); ++i)
        emit(rows[i]);
    emit(avg);

    std::printf("-- Counter growth rate (per simulated second) --\n");
    growth.print();
    std::printf("\n-- Estimated time to counter overflow --\n");
    overflow.print();

    std::printf(
        "\nExpected shape (paper): 8-bit counters overflow in under a\n"
        "second, 16-bit in minutes, 32-bit in days, 64-bit never within\n"
        "the machine's lifetime; the on-chip global 32-bit counter\n"
        "overflows in minutes because it advances with every write-back.\n"
        "Absolute rates run above the paper's (synthetic streams compress\n"
        "compute phases; see EXPERIMENTS.md) but the ordering and the\n"
        "orders-of-magnitude gaps between widths are preserved.\n");
    emitArtifacts(ctx.outDir, "table2", growth.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Figure 5: sensitivity to counter-cache size.
// ---------------------------------------------------------------------

void
runFig5(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({400'000, 400'000});
    std::printf("=== Figure 5: sensitivity to counter cache size ===\n\n");

    const std::size_t sizes[] = {16 << 10, 32 << 10, 64 << 10, 128 << 10};
    const char *size_labels[] = {"16KB", "32KB", "64KB", "128KB"};

    SchemeList schemes;
    for (bool split : {true, false}) {
        for (int i = 0; i < 4; ++i) {
            SecureMemConfig cfg = split ? SecureMemConfig::split()
                                        : SecureMemConfig::mono(64);
            cfg.ctrCacheBytes = sizes[i];
            schemes.emplace_back(std::string(split ? "split@" : "mono64@") +
                                     size_labels[i],
                                 cfg);
        }
    }
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths);
    sweep.run();

    TextTable table(
        {"scheme", "16KB", "32KB", "64KB", "128KB", "(avg normalized IPC)"});
    for (const char *scheme : {"split", "mono64"}) {
        std::vector<std::string> row = {scheme};
        for (const char *size : size_labels)
            row.push_back(fmtDouble(
                sweep.avgNipc(std::string(scheme) + "@" + size)));
        row.push_back("");
        table.addRow(row);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): the split row is flat and near 1.0 even\n"
        "at 16KB; the mono64 row climbs with cache size but stays below\n"
        "split-with-16KB even at 128KB (same counters on-chip, 8x the\n"
        "fetch bandwidth).\n");
    emitArtifacts(ctx.outDir, "fig5", table.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Figure 6: split counters vs. counter prediction (panel a), and the
// prediction-rate trend across execution (panel b).
// ---------------------------------------------------------------------

void
runFig6(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({600'000, 800'000});
    std::printf(
        "=== Figure 6(a): split counters vs counter prediction ===\n\n");

    SchemeList schemes = {
        {"Split", SecureMemConfig::split()},
        {"Pred", SecureMemConfig::pred(1)},
        {"Pred(2Eng)", SecureMemConfig::pred(2)},
    };
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths);
    sweep.run();

    double cc_hit = 0, cc_half = 0, pred_rate = 0;
    double timely_split = 0, timely_p1 = 0, timely_p2 = 0;
    for (const SpecProfile &p : ctx.workloads) {
        const RunOutput &s = sweep.at(p.name, "Split");
        const RunOutput &p1 = sweep.at(p.name, "Pred");
        const RunOutput &p2 = sweep.at(p.name, "Pred(2Eng)");
        cc_hit += s.ctrHitRate;
        cc_half += s.ctrHalfMissRate;
        pred_rate += p1.predRate;
        timely_split += s.timelyPadRate;
        timely_p1 += p1.timelyPadRate;
        timely_p2 += p2.timelyPadRate;
    }
    double n = static_cast<double>(ctx.workloads.size());

    TextTable a({"metric", "Split", "Pred", "Pred(2Eng)"});
    a.addRow({"ctr cache hit", fmtPercent(cc_hit / n), "-", "-"});
    a.addRow({"ctr cache hit+halfmiss", fmtPercent((cc_hit + cc_half) / n),
              "-", "-"});
    a.addRow({"prediction rate", "-", fmtPercent(pred_rate / n),
              fmtPercent(pred_rate / n)});
    a.addRow({"timely pads", fmtPercent(timely_split / n),
              fmtPercent(timely_p1 / n), fmtPercent(timely_p2 / n)});
    a.addRow({"normalized IPC", fmtDouble(sweep.avgNipc("Split")),
              fmtDouble(sweep.avgNipc("Pred")),
              fmtDouble(sweep.avgNipc("Pred(2Eng)"))});
    a.print();

    std::printf(
        "\nExpected shape (paper): prediction rate slightly above the\n"
        "counter-cache hit rate; timely pads ~61%% with one AES engine\n"
        "(5x pad bandwidth), ~96%% with two; Pred(2Eng) IPC roughly ties\n"
        "Split (its 64-bit in-memory counters cost bandwidth).\n");
    emitArtifacts(ctx.outDir, "fig6", a.csv(), sweep.specs(),
                  sweep.outputs());

    // ---- panel (b): trend across execution --------------------------
    // Eight *consecutive* segments of the same two live systems — the
    // divergence of per-block counters over time is the quantity under
    // study, so this part is inherently sequential and runs outside
    // the job engine.
    std::printf("\n=== Figure 6(b): prediction rate vs counter-cache hit "
                "rate across execution ===\n\n");

    // A write-back-churn variant of twolf: the dirty working set
    // slightly exceeds the L2 so written blocks cycle to memory and
    // back, letting per-block counters diverge (paper horizon: 5B
    // instructions; ours is scaled down).
    SpecProfile churn = profileByName("twolf");
    churn.warmKB = 1536;
    churn.streamFraction = 0.02;
    churn.storeFraction = 0.35;
    churn.hotStoreBoost = 1.0;

    SecureSystem pred_sys(SecureMemConfig::pred(1));
    SecureSystem split_sys(SecureMemConfig::split());
    SpecWorkload pred_gen(churn), split_gen(churn);

    TextTable b({"segment", "pred rate", "ctr cache hit"});
    Tick tp = 0, ts = 0;
    std::uint64_t ph = 0, pt = 0, sh = 0, sa = 0;
    const std::uint64_t seg = lengths.sim;
    for (int i = 0; i < 8; ++i) {
        tp = pred_sys.run(pred_gen, 0, seg, {}, tp).finalTick;
        ts = split_sys.run(split_gen, 0, seg, {}, ts).finalTick;
        auto &pc = pred_sys.controller().stats();
        std::uint64_t h = pc.counterValue("pred_hits");
        std::uint64_t t = pc.counterValue("pred_total");
        auto &sc = split_sys.controller().ctrCache().stats();
        std::uint64_t hh = sc.counterValue("hits");
        std::uint64_t aa = sc.counterValue("accesses");
        double pr = t > pt ? double(h - ph) / double(t - pt) : 1.0;
        double cr = aa > sa ? double(hh - sh) / double(aa - sa) : 1.0;
        b.addRow({std::to_string(i + 1), fmtPercent(pr), fmtPercent(cr)});
        ph = h;
        pt = t;
        sh = hh;
        sa = aa;
    }
    b.print();

    std::printf(
        "\nExpected shape (paper): the prediction rate starts near 100%%\n"
        "(all counters equal) and decays as counters diverge; the\n"
        "counter-cache hit rate stays flat.\n");
    emitArtifacts(ctx.outDir, "fig6b", b.csv(), {}, {});
}

// ---------------------------------------------------------------------
// Figure 7: authentication only, GCM vs. SHA-1 latencies.
// ---------------------------------------------------------------------

void
runFig7(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({600'000, 800'000});
    std::printf("=== Figure 7: normalized IPC, authentication only ===\n\n");

    SchemeList schemes = {
        {"GCM", SecureMemConfig::gcmAuthOnly()},
        {"SHA-1(80)", SecureMemConfig::sha1AuthOnly(80)},
        {"SHA-1(160)", SecureMemConfig::sha1AuthOnly(160)},
        {"SHA-1(320)", SecureMemConfig::sha1AuthOnly(320)},
        {"SHA-1(640)", SecureMemConfig::sha1AuthOnly(640)},
    };
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths);
    sweep.run();

    TextTable table({"app", "GCM", "SHA-1(80)", "SHA-1(160)", "SHA-1(320)",
                     "SHA-1(640)"});
    for (const SpecProfile &p : ctx.workloads) {
        if (sweep.nipc(p.name, "SHA-1(320)") > 0.95)
            continue;
        table.addRow({p.name, fmtDouble(sweep.nipc(p.name, "GCM")),
                      fmtDouble(sweep.nipc(p.name, "SHA-1(80)")),
                      fmtDouble(sweep.nipc(p.name, "SHA-1(160)")),
                      fmtDouble(sweep.nipc(p.name, "SHA-1(320)")),
                      fmtDouble(sweep.nipc(p.name, "SHA-1(640)"))});
    }
    table.addRow({avgLabel(ctx.workloads.size()),
                  fmtDouble(sweep.avgNipc("GCM")),
                  fmtDouble(sweep.avgNipc("SHA-1(80)")),
                  fmtDouble(sweep.avgNipc("SHA-1(160)")),
                  fmtDouble(sweep.avgNipc("SHA-1(320)")),
                  fmtDouble(sweep.avgNipc("SHA-1(640)"))});
    table.print();

    std::printf(
        "\nExpected shape (paper): GCM matches or beats even an\n"
        "unrealistically fast 80-cycle SHA-1, because its MAC pad\n"
        "generation overlaps the memory fetch; SHA-1 degrades steeply\n"
        "with latency (paper avg: GCM -4%%, SHA-1 -6/-10/-17/-26%%).\n"
        "The one exception is mcf, where GCM's counter-cache misses add\n"
        "bus contention and SHA-1(80) wins.\n");
    emitArtifacts(ctx.outDir, "fig7", table.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Figure 8: authentication requirements + parallel tree authentication.
// ---------------------------------------------------------------------

void
runFig8(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({400'000, 400'000});
    std::printf("=== Figure 8: authentication requirements and parallel "
                "tree authentication ===\n\n");

    // Ten labelled configurations; the engine dedups the ones that
    // coincide with the defaults (Commit mode, parallel tree), so only
    // the distinct ones simulate.
    SchemeList schemes;
    for (AuthMode mode :
         {AuthMode::Lazy, AuthMode::Commit, AuthMode::Safe}) {
        SecureMemConfig g = SecureMemConfig::gcmAuthOnly();
        SecureMemConfig s = SecureMemConfig::sha1AuthOnly(320);
        g.authMode = mode;
        s.authMode = mode;
        schemes.emplace_back(std::string("GCM/") + toString(mode), g);
        schemes.emplace_back(std::string("SHA/") + toString(mode), s);
    }
    for (bool parallel : {true, false}) {
        SecureMemConfig g = SecureMemConfig::gcmAuthOnly();
        SecureMemConfig s = SecureMemConfig::sha1AuthOnly(320);
        g.treeParallel = parallel;
        s.treeParallel = parallel;
        const char *suffix = parallel ? "/partree" : "/seqtree";
        schemes.emplace_back(std::string("GCM") + suffix, g);
        schemes.emplace_back(std::string("SHA") + suffix, s);
    }
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths);
    sweep.run();

    TextTable table({"configuration", "GCM", "SHA-1(320)"});
    for (AuthMode mode :
         {AuthMode::Lazy, AuthMode::Commit, AuthMode::Safe}) {
        table.addRow(
            {toString(mode),
             fmtDouble(sweep.avgNipc(std::string("GCM/") + toString(mode))),
             fmtDouble(
                 sweep.avgNipc(std::string("SHA/") + toString(mode)))});
    }
    table.addRow({"parallel tree auth", fmtDouble(sweep.avgNipc("GCM/partree")),
                  fmtDouble(sweep.avgNipc("SHA/partree"))});
    table.addRow({"sequential tree auth",
                  fmtDouble(sweep.avgNipc("GCM/seqtree")),
                  fmtDouble(sweep.avgNipc("SHA/seqtree"))});
    table.print();

    std::printf(
        "\nExpected shape (paper): under Lazy, authentication latency is\n"
        "irrelevant and GCM is slightly *worse* than SHA-1 (counter\n"
        "fetch bus traffic). Under Commit and especially Safe, GCM's\n"
        "overlapped pads win decisively (paper Safe: -6%% GCM vs -24%%\n"
        "SHA-1). Parallel tree authentication buys ~3%% (GCM) / ~2%%\n"
        "(SHA-1) over sequential.\n");
    emitArtifacts(ctx.outDir, "fig8", table.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Figure 9: combined encryption + authentication (headline result).
// ---------------------------------------------------------------------

SchemeList
combinedSchemes()
{
    return {
        {"Split+GCM", SecureMemConfig::splitGcm()},
        {"Mono+GCM", SecureMemConfig::monoGcm()},
        {"Split+SHA", SecureMemConfig::splitSha()},
        {"Mono+SHA", SecureMemConfig::monoSha()},
        {"XOM+SHA", SecureMemConfig::xomSha()},
    };
}

void
runFig9(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({600'000, 800'000});
    std::printf("=== Figure 9: combined encryption + authentication ===\n\n");

    SchemeSweep sweep(engine, combinedSchemes(), ctx.workloads, lengths);
    sweep.run();

    TextTable table({"app", "Split+GCM", "Mono+GCM", "Split+SHA",
                     "Mono+SHA", "XOM+SHA"});
    for (const SpecProfile &p : ctx.workloads) {
        if (sweep.nipc(p.name, "Mono+SHA") > 0.95)
            continue;
        table.addRow({p.name, fmtDouble(sweep.nipc(p.name, "Split+GCM")),
                      fmtDouble(sweep.nipc(p.name, "Mono+GCM")),
                      fmtDouble(sweep.nipc(p.name, "Split+SHA")),
                      fmtDouble(sweep.nipc(p.name, "Mono+SHA")),
                      fmtDouble(sweep.nipc(p.name, "XOM+SHA"))});
    }
    table.addRow({avgLabel(ctx.workloads.size()),
                  fmtDouble(sweep.avgNipc("Split+GCM")),
                  fmtDouble(sweep.avgNipc("Mono+GCM")),
                  fmtDouble(sweep.avgNipc("Split+SHA")),
                  fmtDouble(sweep.avgNipc("Mono+SHA")),
                  fmtDouble(sweep.avgNipc("XOM+SHA"))});
    table.print();

    std::printf(
        "\nExpected shape (paper): Split+GCM best (paper: -5%% average),\n"
        "Mono+GCM next (-8%%; split counters roughly halve the combined\n"
        "overhead), the SHA-1 variants far behind (~-20%%), XOM+SHA\n"
        "worst (serial AES on top of SHA-1).\n");
    emitArtifacts(ctx.outDir, "fig9", table.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Figure 10: combined-scheme sensitivity (auth mode / tree / MAC size).
// ---------------------------------------------------------------------

void
runFig10(Engine &engine, const FigureContext &ctx)
{
    RunLengths lengths = ctx.lengths({400'000, 400'000});
    std::printf("=== Figure 10: combined-scheme sensitivity ===\n");
    std::printf("(defaults elsewhere: commit, parallel, 64-bit MACs)\n\n");

    struct Variant
    {
        std::string label;
        void (*tweak)(SecureMemConfig &);
    };
    const std::vector<Variant> variants = {
        {"lazy", [](SecureMemConfig &c) { c.authMode = AuthMode::Lazy; }},
        {"commit",
         [](SecureMemConfig &c) { c.authMode = AuthMode::Commit; }},
        {"safe", [](SecureMemConfig &c) { c.authMode = AuthMode::Safe; }},
        {"parallel", [](SecureMemConfig &c) { c.treeParallel = true; }},
        {"nonparallel",
         [](SecureMemConfig &c) { c.treeParallel = false; }},
        {"128b MAC", [](SecureMemConfig &c) { c.macBits = 128; }},
        {"64b MAC", [](SecureMemConfig &c) { c.macBits = 64; }},
        {"32b MAC", [](SecureMemConfig &c) { c.macBits = 32; }},
    };

    // 8 variants x 5 schemes as labelled columns; the engine dedups the
    // commit/parallel/64-bit rows that all describe the default config.
    SchemeList schemes;
    for (const Variant &v : variants) {
        for (const auto &[name, base_cfg] : combinedSchemes()) {
            SecureMemConfig cfg = base_cfg;
            v.tweak(cfg);
            schemes.emplace_back(v.label + "/" + name, cfg);
        }
    }
    SchemeSweep sweep(engine, schemes, ctx.workloads, lengths);
    sweep.run();

    TextTable table({"variant", "Split+GCM", "Mono+GCM", "Split+SHA",
                     "Mono+SHA", "XOM+SHA"});
    for (const Variant &v : variants) {
        std::vector<std::string> row = {v.label};
        for (const auto &[name, cfg] : combinedSchemes())
            row.push_back(fmtDouble(sweep.avgNipc(v.label + "/" + name)));
        table.addRow(row);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): the scheme ordering (Split+GCM first,\n"
        "XOM+SHA last) holds in every row; lazy narrows the gap, safe\n"
        "widens it; larger MACs cost more (lower tree arity = more\n"
        "levels); sequential tree authentication costs a few percent.\n");
    emitArtifacts(ctx.outDir, "fig10", table.csv(), sweep.specs(),
                  sweep.outputs());
}

// ---------------------------------------------------------------------
// Re-encryption ablation (paper Sections 4.2 / 6.1).
// ---------------------------------------------------------------------

void
runAblation(Engine &engine, const FigureContext &ctx)
{
    std::printf("=== Re-encryption ablation (paper Sections 4.2 / 6.1) "
                "===\n\n");

    // Reaching a minor-counter overflow needs 128 write-backs of one
    // block; at default run lengths with the full-size hierarchy the
    // hot set never cycles that often. This ablation therefore runs
    // longer (unless the user overrides) on a scaled-down hierarchy
    // with a single-page hot set — the mechanism under test is
    // identical, only the aging is accelerated.
    RunLengths lengths = ctx.lengths({1'000'000, 4'500'000});
    SpecProfile hot = writeHotProfile();
    hot.hotKB = 8; // two encryption pages
    SystemParams sys;
    sys.l1Bytes = 4 << 10; // half the hot set stays on-chip
    sys.l2Bytes = 64 << 10;

    // Direct spec list (one profile, per-spec configs): the RSR-count
    // sweep reuses the split run, and the store dedups numRsrs=8 with
    // the default split config.
    std::vector<JobSpec> specs;
    specs.push_back(makeJob("Split", hot, SecureMemConfig::split(), lengths,
                            {}, sys));
    specs.push_back(makeJob("Mono8b", hot, SecureMemConfig::mono(8), lengths,
                            {}, sys));
    specs.push_back(makeJob("baseline", hot, SecureMemConfig::baseline(),
                            lengths, {}, sys));
    for (unsigned rsrs : {1u, 2u, 8u}) {
        SecureMemConfig cfg = SecureMemConfig::split();
        cfg.numRsrs = rsrs;
        specs.push_back(makeJob("Split/rsr" + std::to_string(rsrs), hot, cfg,
                                lengths, {}, sys));
    }
    std::vector<RunOutput> outs = engine.run(specs);
    const RunOutput &split = outs[0];
    const RunOutput &mono8 = outs[1];
    const RunOutput &base = outs[2];

    TextTable t({"metric", "value", "paper"});
    t.addRow({"page re-encryptions", std::to_string(split.pageReencs),
              "(workload-dependent)"});
    t.addRow({"blocks on-chip at trigger",
              fmtPercent(split.reencOnchipFraction), "~48%"});
    t.addRow({"avg page re-encryption cycles",
              fmtDouble(split.reencAvgCycles, 0), "5717"});
    t.addRow({"avg concurrent re-encryptions",
              fmtDouble(split.reencAvgConcurrent, 2), "<= 3"});
    t.addRow({"mono8b whole-memory freezes", std::to_string(mono8.freezes),
              "(counted, assumed free)"});

    // Re-encryption work comparison: split re-encrypts at most one
    // 64-block page per minor overflow; a monolithic freeze rewrites
    // the whole touched footprint.
    double split_blocks =
        static_cast<double>(split.pageReencs) * kBlocksPerPage;
    double mono_blocks = static_cast<double>(mono8.freezes) *
                         static_cast<double>(hot.workingSetKB) * 1024.0 /
                         kBlockBytes;
    if (mono_blocks > 0) {
        t.addRow({"split/mono re-encryption work",
                  fmtPercent(split_blocks / mono_blocks, 2), "~0.3%"});
    }
    t.addRow({"split IPC vs baseline", fmtDouble(split.ipc / base.ipc),
              "~1.0 (hidden by RSRs)"});
    t.print();

    std::printf("\n-- RSR ablation --\n");
    TextTable r({"RSRs", "normalized IPC", "rsr stalls", "page conflicts"});
    for (std::size_t i = 0; i < 3; ++i) {
        const RunOutput &out = outs[3 + i];
        unsigned rsrs = i == 0 ? 1 : i == 1 ? 2 : 8;
        r.addRow({std::to_string(rsrs), fmtDouble(out.ipc / base.ipc),
                  std::to_string(out.reencRsrStalls),
                  std::to_string(out.reencPageConflicts)});
    }
    r.print();

    std::printf(
        "\nExpected shape (paper): with enough RSRs, page re-encryption\n"
        "overlaps execution almost completely; roughly half the page is\n"
        "already on-chip and is re-encrypted lazily via dirty marking;\n"
        "split counters do orders of magnitude less re-encryption work\n"
        "than 8-bit monolithic counters.\n");
    emitArtifacts(ctx.outDir, "ablation", t.csv(), specs, outs);
}

} // namespace

RunLengths
FigureContext::lengths(RunLengths figureDefault) const
{
    RunLengths r = envRunLengths(figureDefault);
    if (smoke)
        r = kSmokeLengths;
    if (cliLengths.warmup)
        r.warmup = cliLengths.warmup;
    if (cliLengths.sim)
        r.sim = cliLengths.sim;
    return r;
}

const std::vector<Figure> &
figures()
{
    static const std::vector<Figure> kFigures = {
        {"fig1", "anatomy of an L2 miss (measured timelines)", runFig1},
        {"fig4", "normalized IPC, encryption only", runFig4},
        {"table2", "counter growth rate and time to overflow", runTable2},
        {"fig5", "sensitivity to counter cache size", runFig5},
        {"fig6", "split counters vs counter prediction", runFig6},
        {"fig7", "normalized IPC, authentication only", runFig7},
        {"fig8", "authentication requirements, parallel tree auth",
         runFig8},
        {"fig9", "combined encryption + authentication", runFig9},
        {"fig10", "combined-scheme sensitivity", runFig10},
        {"ablation", "page re-encryption ablation", runAblation},
    };
    return kFigures;
}

const Figure *
findFigure(const std::string &name)
{
    for (const Figure &f : figures())
        if (name == f.name)
            return &f;
    return nullptr;
}

namespace
{

struct CliOptions
{
    std::vector<std::string> figureNames;
    unsigned jobs = 0; ///< 0 = hardware concurrency
    std::string filter;
    std::string outDir;
    std::string storeDir;
    std::string statsOut;  ///< per-job stats JSON file, "-" = stdout
    std::string traceFile; ///< Chrome trace of the first simulated job
    std::string cryptoBackend; ///< --crypto-backend override, "" = auto
    std::string eventKernel;   ///< --event-kernel override, "" = default
    std::string coreLoop;      ///< --core-loop override, "" = default
    std::string metricsOut;    ///< BENCH_sim perf telemetry, "-" = stdout
    std::string sampleOut;     ///< time-series CSV file, "-" = stdout
    std::uint64_t sampleEvery = 0; ///< sampler period in simulated cycles
    bool profile = false;          ///< enable wall-clock zone profiling
    bool smoke = false;
    bool verifyModel = false;
    bool list = false;
    bool listStats = false;
    bool listCryptoBackends = false;
    int progress = -1; ///< -1 auto (stderr tty), 0 off, 1 on
    RunLengths cliLengths{};
};

[[noreturn]] void
usage(const char *argv0, bool unified)
{
    std::fprintf(
        stderr,
        "usage: %s%s [--jobs N] [--filter SUBSTR] [--smoke]\n"
        "          [--verify-model] [--out DIR] [--store DIR] [--no-store]\n"
        "          [--sim-instrs N] [--warmup-instrs N]\n"
        "          [--stats-out FILE|-] [--trace FILE]\n"
        "          [--profile] [--metrics-out FILE|-]\n"
        "          [--sample-every CYCLES] [--sample-out FILE|-]\n"
        "          [--crypto-backend NAME] [--event-kernel NAME]\n"
        "          [--core-loop NAME]\n"
        "          [--progress] [--no-progress]\n\n",
        argv0,
        unified ? " [--figure NAME]... [--all] [--list] [--list-stats]"
                  " [--list-crypto-backends]"
                : "");
    std::fprintf(stderr, "figures:\n");
    for (const Figure &f : figures())
        std::fprintf(stderr, "  %-10s %s\n", f.name, f.title);
    std::exit(2);
}

/**
 * Parse the shared flag set. @p unified enables figure selection
 * (--figure/--all/--list) and turns the result store on by default.
 */
CliOptions
parseCli(int argc, char **argv, bool unified)
{
    CliOptions opts;
    if (unified)
        opts.storeDir = "results/store";
    bool no_store = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0], unified);
            return argv[++i];
        };
        if (unified && arg == "--figure") {
            opts.figureNames.push_back(value());
        } else if (unified && arg == "--all") {
            for (const Figure &f : figures())
                opts.figureNames.push_back(f.name);
        } else if (unified && arg == "--list") {
            opts.list = true;
        } else if (unified && arg == "--list-stats") {
            opts.listStats = true;
        } else if (unified && arg == "--list-crypto-backends") {
            opts.listCryptoBackends = true;
        } else if (arg == "--crypto-backend") {
            opts.cryptoBackend = value();
        } else if (arg == "--event-kernel") {
            opts.eventKernel = value();
        } else if (arg == "--core-loop") {
            opts.coreLoop = value();
        } else if (arg == "--stats-out") {
            opts.statsOut = value();
        } else if (arg == "--trace") {
            opts.traceFile = value();
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--metrics-out") {
            opts.metricsOut = value();
        } else if (arg == "--sample-every") {
            opts.sampleEvery = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--sample-out") {
            opts.sampleOut = value();
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 0));
        } else if (arg == "--filter") {
            opts.filter = value();
        } else if (arg == "--out") {
            opts.outDir = value();
        } else if (arg == "--store") {
            opts.storeDir = value();
        } else if (arg == "--no-store") {
            no_store = true;
        } else if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--verify-model") {
            opts.verifyModel = true;
        } else if (arg == "--sim-instrs") {
            opts.cliLengths.sim = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--warmup-instrs") {
            opts.cliLengths.warmup = std::strtoull(value(), nullptr, 0);
        } else if (arg == "--progress") {
            opts.progress = 1;
        } else if (arg == "--no-progress") {
            opts.progress = 0;
        } else {
            usage(argv[0], unified);
        }
    }
    if (no_store)
        opts.storeDir.clear();
    return opts;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** {"jobs": [{workload, scheme, hash, stats}, ...]} from the history. */
int
writeStatsOut(const Engine &engine, const std::string &path)
{
    std::ostringstream os;
    os << "{\"jobs\": [";
    bool first = true;
    for (const Engine::JobRecord &rec : engine.history()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"workload\": \"" << jsonEscape(rec.workload)
           << "\", \"scheme\": \"" << jsonEscape(rec.scheme)
           << "\", \"hash\": \"" << rec.hash << "\", \"stats\": "
           << (rec.statsJson.empty() ? "null" : rec.statsJson) << "}";
    }
    os << "\n]}\n";

    if (path == "-") {
        std::fputs(os.str().c_str(), stdout);
        return 0;
    }
    if (!atomicWriteFile(path, os.str())) {
        std::fprintf(stderr, "cannot write stats file '%s'\n", path.c_str());
        return 1;
    }
    return 0;
}

std::string
jnum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/**
 * BENCH_sim.json: host-side performance telemetry of this invocation —
 * wall-clock, simulation throughput (cycles and instructions per wall
 * second), work-stealing pool telemetry, profiler zone self-times, a
 * representative per-job stats dump (which carries the latency
 * histograms), and the sampler time series. Schema ("secmem-bench-
 * sim-v1") documented in EXPERIMENTS.md; consumed and gated by
 * scripts/bench_json.py --sim-metrics.
 */
int
writeMetricsOut(const Engine &engine, const CliOptions &opts,
                double wallSeconds)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"secmem-bench-sim-v1\",\n";

    os << "  \"figures\": [";
    for (std::size_t i = 0; i < opts.figureNames.size(); ++i) {
        os << (i ? ", " : "") << '"' << jsonEscape(opts.figureNames[i])
           << '"';
    }
    os << "],\n";

    double cycles = static_cast<double>(engine.simCycles());
    double instrs = static_cast<double>(engine.simInstructions());
    double jobWall = 0.0;
    for (const Engine::JobRecord &rec : engine.history())
        jobWall += rec.wallSeconds;

    os << "  \"wall_seconds\": " << jnum(wallSeconds) << ",\n"
       << "  \"job_wall_seconds\": " << jnum(jobWall) << ",\n"
       << "  \"jobs_simulated\": " << ull(engine.executed()) << ",\n"
       << "  \"jobs_cached\": " << ull(engine.cached()) << ",\n"
       << "  \"sim_cycles\": " << ull(engine.simCycles()) << ",\n"
       << "  \"sim_instructions\": " << ull(engine.simInstructions())
       << ",\n"
       << "  \"events_per_sec\": "
       << jnum(wallSeconds > 0 ? cycles / wallSeconds : 0.0) << ",\n"
       << "  \"instructions_per_sec\": "
       << jnum(wallSeconds > 0 ? instrs / wallSeconds : 0.0) << ",\n";

    os << "  \"pool\": {\"threads\": " << engine.jobs()
       << ", \"steals\": " << ull(engine.pool().steals())
       << ", \"idle_sleeps\": " << ull(engine.pool().idleSleeps())
       << "},\n";

    obs::ProfReport prof = obs::Profiler::report();
    double shareTotal = 0.0;
    os << "  \"profile_enabled\": "
       << (obs::Profiler::enabled() ? "true" : "false") << ",\n"
       << "  \"tracked_seconds\": " << jnum(prof.trackedSeconds) << ",\n"
       << "  \"zones\": [";
    for (std::size_t i = 0; i < prof.zones.size(); ++i) {
        const obs::ZoneReport &z = prof.zones[i];
        shareTotal += z.share;
        os << (i ? "," : "") << "\n    {\"name\": \"" << jsonEscape(z.name)
           << "\", \"self_seconds\": " << jnum(z.selfSeconds)
           << ", \"share\": " << jnum(z.share)
           << ", \"hits\": " << ull(z.hits) << "}";
    }
    os << (prof.zones.empty() ? "]" : "\n  ]") << ",\n"
       << "  \"zone_share_total\": " << jnum(shareTotal) << ",\n";

    // A representative per-job stat dump: the last fresh job's (cached
    // records from pre-observability stores may lack one). This is
    // where the latency log-histograms (p50/p90/p99) live.
    const std::string *stats = nullptr;
    for (const Engine::JobRecord &rec : engine.history()) {
        if (!rec.statsJson.empty())
            stats = &rec.statsJson;
    }
    os << "  \"job_stats\": " << (stats ? *stats : "null") << ",\n";

    os << "  \"sampler\": "
       << (engine.samplerJson().empty() ? "null" : engine.samplerJson())
       << "\n}\n";

    if (opts.metricsOut == "-") {
        std::fputs(os.str().c_str(), stdout);
        return 0;
    }
    if (!atomicWriteFile(opts.metricsOut, os.str())) {
        std::fprintf(stderr, "cannot write metrics file '%s'\n",
                     opts.metricsOut.c_str());
        return 1;
    }
    return 0;
}

/** The compiled-in crypto backends (--list-crypto-backends). */
int
listCryptoBackends()
{
    const CryptoBackend &active = activeCryptoBackend();
    for (const CryptoBackend *b : cryptoBackends()) {
        const char *status = !b->available() ? "unavailable on this CPU"
                             : b == &active  ? "active"
                                             : "available";
        std::printf("%-10s %-24s %s\n", b->name(), status, b->description());
    }
    return 0;
}

/**
 * Apply the --crypto-backend override before any datapath object
 * binds to the active backend. Flag beats SECMEM_CRYPTO_BACKEND.
 */
bool
applyCryptoBackend(const CliOptions &opts)
{
    if (opts.cryptoBackend.empty())
        return true;
    std::string err;
    if (!setActiveCryptoBackend(opts.cryptoBackend, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return false;
    }
    return true;
}

/**
 * Apply the --event-kernel override before any EventQueue is built.
 * Flag beats SECMEM_EVENT_KERNEL; unknown names are a hard error
 * (parseKernelName aborts with the known-kernel list).
 */
void
applyEventKernel(const CliOptions &opts)
{
    if (opts.eventKernel.empty())
        return;
    EventQueue::setDefaultKernel(
        EventQueue::parseKernelName(opts.eventKernel, "--event-kernel"));
}

/**
 * Apply the --core-loop override before any core runs. Flag beats
 * SECMEM_CORE_LOOP; unknown names are a hard error (parseCoreLoopName
 * aborts with the known-loop list).
 */
void
applyCoreLoop(const CliOptions &opts)
{
    if (opts.coreLoop.empty())
        return;
    setDefaultCoreLoop(parseCoreLoopName(opts.coreLoop, "--core-loop"));
}

/** All stat paths of a representative system (--list-stats). */
int
listStats()
{
    // A small Split+GCM machine exposes the full hierarchy: counter and
    // MAC caches, both crypto engines, the tree walk and the RSRs.
    SecureSystem system(smallMem(SecureMemConfig::splitGcm()));
    obs::StatRegistry reg;
    system.registerStats(reg);
    for (const std::string &line : reg.statNames())
        std::printf("%s\n", line.c_str());
    return 0;
}

int
runFigures(const CliOptions &opts)
{
    FigureContext ctx;
    ctx.smoke = opts.smoke;
    ctx.outDir = opts.outDir;
    ctx.cliLengths = opts.cliLengths;
    for (const SpecProfile &p : specProfiles()) {
        if (!opts.filter.empty() &&
            p.name.find(opts.filter) == std::string::npos)
            continue;
        ctx.workloads.push_back(p);
    }
    if (ctx.workloads.empty()) {
        std::fprintf(stderr, "no workload matches filter '%s'\n",
                     opts.filter.c_str());
        return 2;
    }
    // Smoke sweeps a handful of contrasting applications, not all 21.
    if (opts.smoke && ctx.workloads.size() > 4)
        ctx.workloads.resize(4);

    EngineOptions eopts;
    eopts.jobs = opts.jobs;
    eopts.storeDir = opts.storeDir;
    eopts.progress = opts.progress == -1 ? isatty(2) : opts.progress;
    eopts.traceFile = opts.traceFile;
    eopts.verifyModel = opts.verifyModel;
    eopts.sampleEvery = opts.sampleEvery;
    eopts.sampleFile = opts.sampleOut;
    if (opts.verifyModel) {
        // A stored result would satisfy the spec without the oracle
        // ever executing; verification runs must simulate every job.
        eopts.storeDir.clear();
    }
    Engine engine(eopts);

    if (opts.profile)
        obs::Profiler::setEnabled(true);
    auto wallStart = std::chrono::steady_clock::now();

    bool first = true;
    for (const std::string &name : opts.figureNames) {
        const Figure *fig = findFigure(name);
        if (!fig) {
            std::fprintf(stderr, "unknown figure '%s' (try --list)\n",
                         name.c_str());
            return 2;
        }
        if (!first)
            std::printf("\n");
        first = false;
        fig->run(engine, ctx);
        std::fflush(stdout);
    }

    double wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wallStart)
                             .count();

    if (eopts.progress) {
        std::fprintf(stderr,
                     "engine: %llu simulations run, %llu served from "
                     "the result store%s%s\n",
                     static_cast<unsigned long long>(engine.executed()),
                     static_cast<unsigned long long>(engine.cached()),
                     engine.store().persistent() ? " at " : "",
                     engine.store().persistent()
                         ? engine.store().dir().c_str()
                         : "");
    }

    if (opts.verifyModel) {
        ref::ShadowTotals totals = ref::shadowTotals();
        std::fprintf(stderr,
                     "verify-model: %llu memory events shadowed, %llu "
                     "checks, %llu divergences\n",
                     static_cast<unsigned long long>(totals.events),
                     static_cast<unsigned long long>(totals.checks),
                     static_cast<unsigned long long>(totals.divergences));
        if (totals.events == 0) {
            std::fprintf(stderr,
                         "verify-model: oracle never ran (no memory "
                         "events?)\n");
            return 1;
        }
    }

    // The zone table goes to stderr: stdout carries figure tables that
    // CI diffs for bit-identity, and wall-clock numbers must never
    // land there.
    if (opts.profile) {
        obs::ProfReport prof = obs::Profiler::report();
        std::fprintf(stderr,
                     "\nprofile: %.2fs wall, %.2fs tracked across "
                     "threads\n%-16s %12s %8s %12s\n",
                     wallSeconds, prof.trackedSeconds, "zone",
                     "self(s)", "share", "hits");
        for (const obs::ZoneReport &z : prof.zones) {
            std::fprintf(stderr, "%-16s %12.3f %7.1f%% %12llu\n",
                         z.name.c_str(), z.selfSeconds, z.share * 100.0,
                         static_cast<unsigned long long>(z.hits));
        }
        double wall = wallSeconds > 0 ? wallSeconds : 1e-9;
        std::fprintf(stderr,
                     "profile: %.3g sim cycles/s, %.3g sim instrs/s\n",
                     static_cast<double>(engine.simCycles()) / wall,
                     static_cast<double>(engine.simInstructions()) / wall);
    }

    if (!opts.sampleOut.empty() && opts.sampleOut == "-")
        std::fputs(engine.samplerCsv().c_str(), stdout);

    if (!opts.metricsOut.empty()) {
        int rc = writeMetricsOut(engine, opts, wallSeconds);
        if (rc)
            return rc;
    }

    if (!opts.statsOut.empty())
        return writeStatsOut(engine, opts.statsOut);
    return 0;
}

} // namespace

int
benchMain(int argc, char **argv)
{
    CliOptions opts = parseCli(argc, argv, /*unified=*/true);
    if (!applyCryptoBackend(opts))
        return 2;
    applyEventKernel(opts);
    applyCoreLoop(opts);
    if (opts.list) {
        for (const Figure &f : figures())
            std::printf("%-10s %s\n", f.name, f.title);
        return 0;
    }
    if (opts.listStats)
        return listStats();
    if (opts.listCryptoBackends)
        return listCryptoBackends();
    if (opts.figureNames.empty())
        usage(argv[0], /*unified=*/true);
    return runFigures(opts);
}

int
figureMain(const char *figure, int argc, char **argv)
{
    CliOptions opts = parseCli(argc, argv, /*unified=*/false);
    if (!applyCryptoBackend(opts))
        return 2;
    applyEventKernel(opts);
    applyCoreLoop(opts);
    opts.figureNames = {figure};
    return runFigures(opts);
}

} // namespace secmem::exp
