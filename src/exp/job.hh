/**
 * @file
 * The unit of work of the experiment engine: one (workload profile x
 * secure-memory configuration x core/system parameters x instruction
 * budget) simulation job.
 *
 * A JobSpec is *self-contained and canonical*: canonical() serializes
 * every field that can influence the simulation into a stable
 * key=value string, and hash() digests it into the key the result
 * store files results under. Two specs with equal canonical strings
 * produce bit-identical RunOutputs no matter which thread, process or
 * machine runs them — each job builds its own SecureSystem and
 * workload generator (with the profile's own RNG seed), so parallel
 * and serial execution cannot diverge.
 */

#ifndef SECMEM_EXP_JOB_HH
#define SECMEM_EXP_JOB_HH

#include <string>

#include "harness/runner.hh"

namespace secmem::exp
{

/** One schedulable simulation: everything needed to reproduce a run. */
struct JobSpec
{
    /** Display label for the configuration ("Split+GCM", "baseline"). */
    std::string scheme;

    SpecProfile profile;
    SecureMemConfig config;
    CoreParams core{};
    SystemParams sys{};
    RunLengths lengths{};

    /**
     * Stable, human-readable serialization of every
     * simulation-relevant field (the scheme label is cosmetic and
     * excluded). Bump the leading version tag when the format — or
     * simulator semantics — changes, so stale disk caches invalidate
     * themselves.
     */
    std::string canonical() const;

    /** 128-bit FNV-1a digest of canonical(), as 32 hex characters. */
    std::string hash() const;
};

/** Convenience builder with the common defaults. */
JobSpec makeJob(std::string scheme, const SpecProfile &profile,
                const SecureMemConfig &config, RunLengths lengths,
                const CoreParams &core = {}, const SystemParams &sys = {});

/**
 * Execute one job (fresh system + generator; deterministic). The
 * observers, when attached, collect the run's cycle-level events and
 * stat time series (observation only — an observed job produces the
 * same RunOutput as an unobserved one).
 */
RunOutput runJob(const JobSpec &spec, const RunObservers &observers = {});

/**
 * Serialize a RunOutput as a flat JSON object (plus a trailing nested
 * "stats" object when the run captured one).
 */
std::string runOutputToJson(const RunOutput &out);

/**
 * Parse runOutputToJson() output back. Returns false (leaving @p out
 * unspecified) on malformed input or missing fields.
 */
bool runOutputFromJson(const std::string &json, RunOutput *out);

} // namespace secmem::exp

#endif // SECMEM_EXP_JOB_HH
