/**
 * @file
 * Result-store chaos drill: crash/corruption injection against the
 * on-disk result store, validating journal recovery end to end.
 *
 * The drill populates a store directory with synthetic records, then
 * plays the crashes the store's design claims to survive — kills a
 * writer mid-write (orphaned temp files), tears records at arbitrary
 * byte offsets (a crashed filesystem), and flips stored bits (rot) —
 * and finally reopens the store like a resumed sweep would. Success
 * means the journal-recovery pass cleaned every temporary, no lookup
 * ever returned wrong data, and every uncorrupted record survived
 * intact. Failed lookups of damaged records are the *correct* outcome:
 * they rerun instead of resuming from garbage.
 */

#ifndef SECMEM_EXP_STORE_CHAOS_HH
#define SECMEM_EXP_STORE_CHAOS_HH

#include <cstdint>
#include <string>

namespace secmem::exp
{

struct StoreChaosConfig
{
    std::uint64_t seed = 1;
    std::string dir; ///< store directory (created; litter removed)
    unsigned records = 64;
    /** Per-record probability of tearing (truncating) it. */
    double truncateRate = 0.15;
    /** Per-record probability of flipping one stored byte. */
    double corruptRate = 0.15;
    /** Orphaned mid-write temporaries to plant. */
    unsigned tmpLitter = 3;
};

struct StoreChaosResult
{
    std::uint64_t written = 0;    ///< records persisted before the crash
    std::uint64_t truncated = 0;  ///< records torn by the drill
    std::uint64_t corrupted = 0;  ///< records bit-flipped by the drill
    std::uint64_t litterPlanted = 0;

    std::uint64_t tmpCleaned = 0;       ///< reopened store: temps removed
    std::uint64_t corruptDiscarded = 0; ///< reopened store: records dropped

    std::uint64_t survivors = 0;      ///< lookups that hit after recovery
    std::uint64_t survivorsExact = 0; ///< ... and matched the original
    std::uint64_t intactLost = 0;     ///< undamaged records that missed
    std::uint64_t wrongData = 0;      ///< lookups returning wrong data

    /** Zero temporaries left, no wrong data, no intact record lost. */
    bool ok = false;

    std::string toJson() const;
};

/** Run the drill (deterministic in cfg; cfg.dir must be disposable). */
StoreChaosResult runStoreChaosDrill(const StoreChaosConfig &cfg);

} // namespace secmem::exp

#endif // SECMEM_EXP_STORE_CHAOS_HH
