/**
 * @file
 * Disk-backed, memory-cached store of simulation results keyed by the
 * canonical job hash.
 *
 * Purpose: baselines and shared configurations are simulated once
 * across every figure of a sweep, and an interrupted multi-hour sweep
 * resumes where it stopped instead of restarting — any job whose spec
 * hash is already on disk is served from the cache. Invalidation is
 * structural: the hash covers every simulation-relevant field
 * (profile, configuration, core/system parameters, instruction
 * budgets) plus a format version tag, so changing any of them simply
 * misses and reruns.
 *
 * Thread safety: lookup/put may be called concurrently from engine
 * workers. Each result is written to a temporary file and renamed into
 * place, so a crashed or interrupted sweep never leaves a truncated
 * entry behind.
 */

#ifndef SECMEM_EXP_RESULT_STORE_HH
#define SECMEM_EXP_RESULT_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "exp/job.hh"

namespace secmem::exp
{

class ResultStore
{
  public:
    /**
     * @param dir directory for persisted results (created on first
     *            put); empty for a memory-only store.
     */
    explicit ResultStore(std::string dir = "");

    /**
     * Fetch the cached result for @p spec. Disk entries are admitted
     * only when the stored canonical spec string matches exactly
     * (hash collisions and stale formats rerun instead of lying).
     */
    bool lookup(const JobSpec &spec, RunOutput *out);

    /** Record @p out for @p spec (memory always, disk when enabled). */
    void put(const JobSpec &spec, const RunOutput &out);

    const std::string &dir() const { return dir_; }
    bool persistent() const { return !dir_.empty(); }

    // Counters for progress reporting and tests.
    std::uint64_t memoryHits() const;
    std::uint64_t diskHits() const;
    std::uint64_t misses() const;

  private:
    std::string pathFor(const std::string &hash) const;

    std::string dir_;
    mutable std::mutex mutex_;
    std::map<std::string, RunOutput> memory_; ///< keyed by canonical()
    std::uint64_t memoryHits_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace secmem::exp

#endif // SECMEM_EXP_RESULT_STORE_HH
