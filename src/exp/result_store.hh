/**
 * @file
 * Disk-backed, memory-cached store of simulation results keyed by the
 * canonical job hash.
 *
 * Purpose: baselines and shared configurations are simulated once
 * across every figure of a sweep, and an interrupted multi-hour sweep
 * resumes where it stopped instead of restarting — any job whose spec
 * hash is already on disk is served from the cache. Invalidation is
 * structural: the hash covers every simulation-relevant field
 * (profile, configuration, core/system parameters, instruction
 * budgets) plus a format version tag, so changing any of them simply
 * misses and reruns.
 *
 * Thread safety: lookup/put may be called concurrently from engine
 * workers. Each result is written to a temporary file and renamed into
 * place, so a crashed or interrupted sweep never leaves a truncated
 * entry behind.
 *
 * Crash safety: every record carries a SHA-1 checksum over its spec
 * and payload lines, and opening a store runs a journal-recovery pass
 * that removes orphaned temporaries and discards torn or corrupt
 * records (they rerun instead of resuming from garbage). Records from
 * the pre-checksum format are still accepted.
 */

#ifndef SECMEM_EXP_RESULT_STORE_HH
#define SECMEM_EXP_RESULT_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "exp/job.hh"

namespace secmem::exp
{

class ResultStore
{
  public:
    /**
     * @param dir directory for persisted results (created on first
     *            put); empty for a memory-only store. An existing
     *            directory is journal-recovered on open: leftover
     *            temporaries from killed writers are removed and torn
     *            or checksum-corrupt records discarded.
     */
    explicit ResultStore(std::string dir = "");

    /**
     * Fetch the cached result for @p spec. Disk entries are admitted
     * only when the stored canonical spec string matches exactly
     * (hash collisions and stale formats rerun instead of lying).
     */
    bool lookup(const JobSpec &spec, RunOutput *out);

    /** Record @p out for @p spec (memory always, disk when enabled). */
    void put(const JobSpec &spec, const RunOutput &out);

    const std::string &dir() const { return dir_; }
    bool persistent() const { return !dir_.empty(); }

    // Counters for progress reporting and tests.
    std::uint64_t memoryHits() const;
    std::uint64_t diskHits() const;
    std::uint64_t misses() const;

    // Journal-recovery outcome of the opening pass (startup only).
    /** Orphaned .tmp files from killed writers that were removed. */
    std::uint64_t tmpCleaned() const { return tmpCleaned_; }
    /** Torn / checksum-corrupt records that were discarded. */
    std::uint64_t corruptDiscarded() const { return corruptDiscarded_; }

  private:
    /** A parsed on-disk record (structurally valid when ok). */
    struct DiskRecord
    {
        bool ok = false;
        std::string spec;
        std::string json;
    };

    std::string pathFor(const std::string &hash) const;
    /** Read and structurally validate (incl. checksum) one record. */
    static DiskRecord readRecord(const std::string &path);
    /** Startup pass: remove temporaries, discard torn records. */
    void recoverJournal();

    std::string dir_;
    mutable std::mutex mutex_;
    std::map<std::string, RunOutput> memory_; ///< keyed by canonical()
    std::uint64_t memoryHits_ = 0;
    std::uint64_t diskHits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t tmpCleaned_ = 0;
    std::uint64_t corruptDiscarded_ = 0;
};

} // namespace secmem::exp

#endif // SECMEM_EXP_RESULT_STORE_HH
