#include "exp/engine.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/atomic_file.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"

namespace secmem::exp
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Serialized stderr progress: done/total, ETA, per-worker job. */
class Progress
{
  public:
    Progress(std::size_t total, unsigned workers, bool enabled)
        : total_(total), current_(workers), start_(Clock::now()),
          enabled_(enabled)
    {}

    void
    began(unsigned worker, const JobSpec &spec)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        current_[worker] = spec.profile.name + "/" + spec.scheme;
        render();
    }

    void
    finished(unsigned worker)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        current_[worker].clear();
        render();
    }

    void
    close(std::uint64_t cached)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        double secs =
            std::chrono::duration<double>(Clock::now() - start_).count();
        std::fprintf(stderr,
                     "\r\033[K%zu/%zu jobs simulated in %.1fs "
                     "(%llu served from result store)\n",
                     done_, total_, secs,
                     static_cast<unsigned long long>(cached));
    }

  private:
    void
    render() const
    {
        double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        double eta = done_ ? elapsed / static_cast<double>(done_) *
                                 static_cast<double>(total_ - done_)
                           : 0.0;
        std::string line;
        char head[96];
        std::snprintf(head, sizeof(head), "[%zu/%zu] eta %.0fs |", done_,
                      total_, eta);
        line = head;
        for (std::size_t w = 0; w < current_.size(); ++w) {
            if (current_[w].empty())
                continue;
            line += " w" + std::to_string(w) + ":" + current_[w];
        }
        if (line.size() > 160)
            line.resize(160);
        std::fprintf(stderr, "\r\033[K%s", line.c_str());
        std::fflush(stderr);
    }

    std::mutex mutex_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::vector<std::string> current_;
    Clock::time_point start_;
    bool enabled_;
};

/**
 * Wall-clock watchdog for job attempts. Workers register their cancel
 * token with a deadline; one background thread raises tokens whose
 * deadline passed. Cancellation is cooperative — the simulated core
 * polls its token and unwinds with JobCancelled — so a hung job turns
 * into an ordinary failed attempt instead of a stuck worker.
 */
class Watchdog
{
  public:
    explicit Watchdog(double timeoutSec) : timeout_(timeoutSec)
    {
        if (timeout_ > 0.0)
            thread_ = std::thread([this] { loop(); });
    }

    ~Watchdog()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    /** RAII registration of one attempt; unregisters on destruction. */
    class Guard
    {
      public:
        Guard(Watchdog *wd, CancelToken *tok) : wd_(wd), tok_(tok) {}
        ~Guard()
        {
            if (wd_)
                wd_->remove(tok_);
        }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        Watchdog *wd_;
        CancelToken *tok_;
    };

    Guard
    watch(CancelToken *tok)
    {
        if (timeout_ <= 0.0)
            return Guard(nullptr, nullptr);
        std::lock_guard<std::mutex> lock(mutex_);
        deadlines_[tok] =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(timeout_));
        return Guard(this, tok);
    }

    double timeout() const { return timeout_; }

  private:
    void
    remove(CancelToken *tok)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        deadlines_.erase(tok);
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            cv_.wait_for(lock, std::chrono::milliseconds(20));
            Clock::time_point now = Clock::now();
            for (auto &[tok, deadline] : deadlines_) {
                if (now >= deadline)
                    tok->cancel();
            }
        }
    }

    double timeout_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::map<CancelToken *, Clock::time_point> deadlines_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

Engine::Engine(const EngineOptions &opts)
    : opts_(opts), store_(opts.storeDir), pool_(opts.jobs),
      runner_(opts.runner ? opts.runner
                          : [](const JobSpec &s, const RunObservers &o) {
                                return runJob(s, o);
                            })
{}

std::vector<RunOutput>
Engine::run(const std::vector<JobSpec> &specs)
{
    std::vector<RunOutput> results(specs.size());

    // Resolve store hits and batch-internal duplicates up front; only
    // genuinely new work reaches the pool.
    struct Pending
    {
        std::size_t specIndex;           ///< representative spec
        std::vector<std::size_t> targets; ///< all result slots it fills
    };
    std::vector<Pending> pending;
    std::map<std::string, std::size_t> byCanonical; ///< -> pending index

    for (std::size_t i = 0; i < specs.size(); ++i) {
        RunOutput cached_out;
        if (store_.lookup(specs[i], &cached_out)) {
            results[i] = cached_out;
            ++cached_;
            continue;
        }
        std::string canonical = specs[i].canonical();
        auto it = byCanonical.find(canonical);
        if (it != byCanonical.end()) {
            pending[it->second].targets.push_back(i);
            ++cached_;
            continue;
        }
        byCanonical.emplace(std::move(canonical), pending.size());
        pending.push_back({i, {i}});
    }

    Progress progress(pending.size(), pool_.threads(), opts_.progress);

    // Tracing and sampling: the first actually-simulated job (pending
    // index 0, a deterministic choice) carries the observers. Each job
    // owns its system, so the trace and time-series content is
    // identical under --jobs 1 and --jobs N.
    obs::TraceSink traceSink;
    const bool tracing = !opts_.traceFile.empty();
    obs::Sampler sampler(opts_.sampleEvery, opts_.samplePaths);
    const bool sampling = opts_.sampleEvery > 0;

    // Wall-clock spent simulating each spec (telemetry only; indexed
    // writes, one writer per slot — no lock needed).
    std::vector<double> wallSecs(specs.size(), 0.0);

    Watchdog watchdog(opts_.jobTimeoutSec);
    const unsigned maxAttempts = std::max(1u, opts_.jobAttempts);
    std::mutex failureMutex;
    std::vector<JobFailure> newFailures;

    pool_.run(pending.size(), [&](std::size_t idx, unsigned worker) {
        JobSpec spec = specs[pending[idx].specIndex];
        if (opts_.verifyModel)
            spec.config.verifyModel = true;
        progress.began(worker, spec);
        RunObservers observers;
        if (idx == 0) {
            if (tracing)
                observers.trace = &traceSink;
            if (sampling)
                observers.sampler = &sampler;
        }
        Clock::time_point jobStart = Clock::now();

        // Crash isolation: each attempt runs under a fresh cancel token
        // (for the watchdog) with panics converted to exceptions, so a
        // crashing, panicking or hung job costs only its own attempts —
        // never the worker, the pool, or the rest of the batch.
        RunOutput out;
        std::string lastError;
        bool timedOut = false;
        bool ok = false;
        unsigned attempts = 0;
        for (unsigned a = 0; a < maxAttempts && !ok; ++a) {
            if (a > 0 && opts_.backoffMs) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    static_cast<unsigned long long>(opts_.backoffMs)
                    << (a - 1)));
            }
            ++attempts;
            CancelToken token;
            Watchdog::Guard deadline = watchdog.watch(&token);
            try {
                CancelScope cancellable(&token);
                PanicThrowScope recoverable;
                out = runner_(spec, observers);
                ok = true;
            } catch (const JobCancelled &) {
                timedOut = true;
                lastError = "timed out after " +
                            std::to_string(watchdog.timeout()) + "s";
            } catch (const std::exception &e) {
                timedOut = false;
                lastError = e.what();
            } catch (...) {
                timedOut = false;
                lastError = "non-standard exception";
            }
            if (!ok && a + 1 < maxAttempts) {
                SECMEM_WARN("engine: job %s/%s attempt %u/%u failed "
                            "(%s); retrying",
                            spec.profile.name.c_str(), spec.scheme.c_str(),
                            a + 1, maxAttempts, lastError.c_str());
            }
        }

        wallSecs[pending[idx].specIndex] =
            std::chrono::duration<double>(Clock::now() - jobStart).count();

        if (ok) {
            store_.put(spec, out);
            simInstructions_.fetch_add(out.instructions,
                                       std::memory_order_relaxed);
            simCycles_.fetch_add(out.cycles, std::memory_order_relaxed);
        } else {
            out = RunOutput{};
            out.workload = spec.profile.name;
            out.scheme = spec.scheme;
            out.failed = true;
            out.error = lastError;
            SECMEM_WARN("engine: job %s/%s failed after %u attempts: %s",
                        out.workload.c_str(), out.scheme.c_str(), attempts,
                        lastError.c_str());
            std::lock_guard<std::mutex> lock(failureMutex);
            newFailures.push_back({pending[idx].specIndex, out.workload,
                                   out.scheme, lastError, attempts,
                                   timedOut});
        }
        for (std::size_t target : pending[idx].targets)
            results[target] = out;
        progress.finished(worker);
    });

    // Completion order depends on worker scheduling; spec order does
    // not. Sort so failures() is deterministic under any --jobs value.
    std::sort(newFailures.begin(), newFailures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.specIndex < b.specIndex;
              });
    failures_.insert(failures_.end(), newFailures.begin(),
                     newFailures.end());

    if (tracing && !traceSink.writeChromeJsonFile(opts_.traceFile))
        SECMEM_WARN("cannot write trace file '%s'", opts_.traceFile.c_str());

    // Keep the series of the last run() call that actually simulated
    // something; a fully-cached batch must not clobber it with an
    // empty one.
    if (sampling && !pending.empty()) {
        samplerCsv_ = sampler.csvString();
        samplerJson_ = sampler.jsonString();
        if (!opts_.sampleFile.empty() && opts_.sampleFile != "-" &&
            !atomicWriteFile(opts_.sampleFile, samplerCsv_)) {
            SECMEM_WARN("cannot write sample file '%s'",
                        opts_.sampleFile.c_str());
        }
    }

    executed_ += pending.size();
    progress.close(cached_);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        history_.push_back({specs[i].profile.name, specs[i].scheme,
                            specs[i].hash(), results[i].statsJson,
                            wallSecs[i]});
    }
    return results;
}

} // namespace secmem::exp
