#include "exp/engine.hh"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "obs/trace.hh"
#include "sim/log.hh"

namespace secmem::exp
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Serialized stderr progress: done/total, ETA, per-worker job. */
class Progress
{
  public:
    Progress(std::size_t total, unsigned workers, bool enabled)
        : total_(total), current_(workers), start_(Clock::now()),
          enabled_(enabled)
    {}

    void
    began(unsigned worker, const JobSpec &spec)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        current_[worker] = spec.profile.name + "/" + spec.scheme;
        render();
    }

    void
    finished(unsigned worker)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        current_[worker].clear();
        render();
    }

    void
    close(std::uint64_t cached)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        double secs =
            std::chrono::duration<double>(Clock::now() - start_).count();
        std::fprintf(stderr,
                     "\r\033[K%zu/%zu jobs simulated in %.1fs "
                     "(%llu served from result store)\n",
                     done_, total_, secs,
                     static_cast<unsigned long long>(cached));
    }

  private:
    void
    render() const
    {
        double elapsed =
            std::chrono::duration<double>(Clock::now() - start_).count();
        double eta = done_ ? elapsed / static_cast<double>(done_) *
                                 static_cast<double>(total_ - done_)
                           : 0.0;
        std::string line;
        char head[96];
        std::snprintf(head, sizeof(head), "[%zu/%zu] eta %.0fs |", done_,
                      total_, eta);
        line = head;
        for (std::size_t w = 0; w < current_.size(); ++w) {
            if (current_[w].empty())
                continue;
            line += " w" + std::to_string(w) + ":" + current_[w];
        }
        if (line.size() > 160)
            line.resize(160);
        std::fprintf(stderr, "\r\033[K%s", line.c_str());
        std::fflush(stderr);
    }

    std::mutex mutex_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::vector<std::string> current_;
    Clock::time_point start_;
    bool enabled_;
};

} // namespace

Engine::Engine(const EngineOptions &opts)
    : opts_(opts), store_(opts.storeDir), pool_(opts.jobs)
{}

std::vector<RunOutput>
Engine::run(const std::vector<JobSpec> &specs)
{
    std::vector<RunOutput> results(specs.size());

    // Resolve store hits and batch-internal duplicates up front; only
    // genuinely new work reaches the pool.
    struct Pending
    {
        std::size_t specIndex;           ///< representative spec
        std::vector<std::size_t> targets; ///< all result slots it fills
    };
    std::vector<Pending> pending;
    std::map<std::string, std::size_t> byCanonical; ///< -> pending index

    for (std::size_t i = 0; i < specs.size(); ++i) {
        RunOutput cached_out;
        if (store_.lookup(specs[i], &cached_out)) {
            results[i] = cached_out;
            ++cached_;
            continue;
        }
        std::string canonical = specs[i].canonical();
        auto it = byCanonical.find(canonical);
        if (it != byCanonical.end()) {
            pending[it->second].targets.push_back(i);
            ++cached_;
            continue;
        }
        byCanonical.emplace(std::move(canonical), pending.size());
        pending.push_back({i, {i}});
    }

    Progress progress(pending.size(), pool_.threads(), opts_.progress);

    // Tracing: the first actually-simulated job (pending index 0, a
    // deterministic choice) carries the sink. Each job owns its system,
    // so the trace content is identical under --jobs 1 and --jobs N.
    obs::TraceSink traceSink;
    const bool tracing = !opts_.traceFile.empty();

    pool_.run(pending.size(), [&](std::size_t idx, unsigned worker) {
        JobSpec spec = specs[pending[idx].specIndex];
        if (opts_.verifyModel)
            spec.config.verifyModel = true;
        progress.began(worker, spec);
        obs::TraceSink *sink = tracing && idx == 0 ? &traceSink : nullptr;
        RunOutput out = runJob(spec, sink);
        store_.put(spec, out);
        for (std::size_t target : pending[idx].targets)
            results[target] = out;
        progress.finished(worker);
    });

    if (tracing && !traceSink.writeChromeJsonFile(opts_.traceFile))
        SECMEM_WARN("cannot write trace file '%s'", opts_.traceFile.c_str());

    executed_ += pending.size();
    progress.close(cached_);

    for (std::size_t i = 0; i < specs.size(); ++i) {
        history_.push_back({specs[i].profile.name, specs[i].scheme,
                            specs[i].hash(), results[i].statsJson});
    }
    return results;
}

} // namespace secmem::exp
