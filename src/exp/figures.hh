/**
 * @file
 * Declarative registry of the paper's figure/table reproductions over
 * the experiment engine, and the CLI entry points that drive them.
 *
 * Each figure is a (name, title, run) triple whose run function builds
 * its sweep specs, hands them to the shared Engine (parallel execution
 * + result-store reuse), and renders the same tables the standalone
 * binaries always printed. `secmem-bench` drives any subset of figures
 * in one process — so the 21 baseline runs are simulated once for the
 * whole evaluation — and the per-figure binaries are thin wrappers
 * over figureMain().
 */

#ifndef SECMEM_EXP_FIGURES_HH
#define SECMEM_EXP_FIGURES_HH

#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/sweep.hh"

namespace secmem::exp
{

/** Per-invocation settings every figure sees. */
struct FigureContext
{
    /** Workloads to sweep (already filtered / smoke-reduced). */
    std::vector<SpecProfile> workloads;
    /** Short-sweep CI mode: tiny budgets, few workloads. */
    bool smoke = false;
    /** Artifact directory for CSV/JSON emitters; empty = print only. */
    std::string outDir;
    /** Explicit --warmup-instrs/--sim-instrs; 0 fields = unset. */
    RunLengths cliLengths{};

    /**
     * Resolve this figure's instruction budget. Priority (weakest to
     * strongest): @p figureDefault, the SECMEM_*_INSTRS environment,
     * --smoke, explicit --sim-instrs/--warmup-instrs flags.
     */
    RunLengths lengths(RunLengths figureDefault) const;
};

struct Figure
{
    const char *name;  ///< CLI name ("fig4", "table2", "ablation")
    const char *title; ///< one-line description for --list
    void (*run)(Engine &, const FigureContext &);
};

/** All registered figures, in the paper's order. */
const std::vector<Figure> &figures();

/** Lookup by CLI name; nullptr when unknown. */
const Figure *findFigure(const std::string &name);

/** main() of the unified `secmem-bench` CLI. */
int benchMain(int argc, char **argv);

/**
 * main() of a single-figure binary (the ported bench sources): same
 * flags as secmem-bench minus figure selection. Unlike secmem-bench,
 * the result store is off unless --store is given, so a standalone
 * figure run is self-contained.
 */
int figureMain(const char *figure, int argc, char **argv);

} // namespace secmem::exp

#endif // SECMEM_EXP_FIGURES_HH
