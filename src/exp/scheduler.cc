#include "exp/scheduler.hh"

#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/profiler.hh"
#include "sim/log.hh"

namespace secmem::exp
{

namespace
{

struct WorkerDeque
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;
};

bool
popOwn(WorkerDeque &dq, std::size_t *idx)
{
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty())
        return false;
    *idx = dq.tasks.back();
    dq.tasks.pop_back();
    return true;
}

bool
stealFrom(WorkerDeque &dq, std::size_t *idx)
{
    std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.tasks.empty())
        return false;
    *idx = dq.tasks.front();
    dq.tasks.pop_front();
    return true;
}

} // namespace

WorkStealingPool::WorkStealingPool(unsigned threads) : threads_(threads)
{
    if (threads_ == 0) {
        threads_ = std::thread::hardware_concurrency();
        if (threads_ == 0)
            threads_ = 4;
    }
}

void
WorkStealingPool::runGuarded(const Task &task, std::size_t idx,
                             unsigned worker)
{
    // Last-resort containment: an exception escaping a task would
    // std::terminate the worker thread (and the process). Absorb and
    // count it; the task's slot is abandoned but the pool survives.
    try {
        task(idx, worker);
    } catch (const std::exception &e) {
        escaped_.fetch_add(1, std::memory_order_relaxed);
        SECMEM_WARN("pool: task %zu raised '%s'; slot abandoned", idx,
                    e.what());
    } catch (...) {
        escaped_.fetch_add(1, std::memory_order_relaxed);
        SECMEM_WARN("pool: task %zu raised a non-standard exception; "
                    "slot abandoned",
                    idx);
    }
}

void
WorkStealingPool::run(std::size_t count, const Task &task)
{
    unsigned workers = threads_;
    if (count < workers)
        workers = static_cast<unsigned>(count);

    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) {
            SECMEM_PROF(EngineSchedule);
            runGuarded(task, i, 0);
        }
        return;
    }

    std::vector<WorkerDeque> deques(workers);
    for (std::size_t i = 0; i < count; ++i)
        deques[i % workers].tasks.push_back(i);

    std::atomic<std::size_t> remaining{count};

    auto worker_loop = [&](unsigned w) {
        for (;;) {
            // Everything a worker iteration spends outside the probed
            // simulation zones (deque locks, dispatch, idle waits)
            // shows up as EngineSchedule self-time in the profiler.
            SECMEM_PROF(EngineSchedule);
            std::size_t idx;
            bool found = popOwn(deques[w], &idx);
            for (unsigned v = 1; !found && v < workers; ++v) {
                if (stealFrom(deques[(w + v) % workers], &idx)) {
                    found = true;
                    steals_.fetch_add(1, std::memory_order_relaxed);
                }
            }
            if (found) {
                runGuarded(task, idx, w);
                remaining.fetch_sub(1, std::memory_order_release);
                continue;
            }
            if (remaining.load(std::memory_order_acquire) == 0)
                return;
            // All deques are empty but peers are still executing;
            // a late steal is impossible (tasks never spawn tasks),
            // so just wait for the stragglers cheaply.
            idleSleeps_.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker_loop, w);
    for (std::thread &t : pool)
        t.join();
}

} // namespace secmem::exp
