/**
 * @file
 * Declarative (scheme x workload) sweeps over the experiment engine,
 * plus the result emitters.
 *
 * SchemeSweep replaces the BaselineCache + normalized-IPC boilerplate
 * every figure binary used to repeat: it builds one JobSpec per
 * (workload, scheme) — implicitly adding the unprotected baseline the
 * figures normalize against — runs them all through the engine in one
 * batch (so they parallelize and dedup against the result store), and
 * serves per-cell results, normalized IPC and scheme averages.
 */

#ifndef SECMEM_EXP_SWEEP_HH
#define SECMEM_EXP_SWEEP_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/engine.hh"

namespace secmem::exp
{

/** A labelled configuration column of a sweep. */
using SchemeList = std::vector<std::pair<std::string, SecureMemConfig>>;

class SchemeSweep
{
  public:
    /**
     * @param withBaseline also run SecureMemConfig::baseline() per
     *        workload (required for nipc()/avgNipc()).
     */
    SchemeSweep(Engine &engine, SchemeList schemes,
                std::vector<SpecProfile> workloads, RunLengths lengths,
                CoreParams core = {}, SystemParams sys = {},
                bool withBaseline = true);

    /** Execute every job (engine order = workload-major, scheme-minor). */
    void run();

    const RunOutput &at(const std::string &workload,
                        const std::string &scheme) const;
    const RunOutput &baseline(const std::string &workload) const;

    /** IPC of (workload, scheme) normalized to the workload baseline. */
    double nipc(const std::string &workload,
                const std::string &scheme) const;
    /** Average of nipc() over every workload of the sweep. */
    double avgNipc(const std::string &scheme) const;

    const std::vector<SpecProfile> &workloads() const { return workloads_; }
    RunLengths lengths() const { return lengths_; }

    /** Specs/outputs in engine order, for the JSON emitter. */
    const std::vector<JobSpec> &specs() const { return specs_; }
    const std::vector<RunOutput> &outputs() const { return outputs_; }

  private:
    Engine &engine_;
    SchemeList schemes_;
    std::vector<SpecProfile> workloads_;
    RunLengths lengths_;
    CoreParams core_;
    SystemParams sys_;
    bool withBaseline_;

    std::vector<JobSpec> specs_;
    std::vector<RunOutput> outputs_;
    std::map<std::pair<std::string, std::string>, std::size_t> index_;
};

/**
 * Emit one figure's artifacts under @p outDir (created as needed):
 * <figure>.csv — the rendered table; <figure>.json — the raw per-job
 * RunOutputs with their spec hashes. Either vector may be empty.
 */
void emitArtifacts(const std::string &outDir, const std::string &figure,
                   const std::string &tableCsv,
                   const std::vector<JobSpec> &specs,
                   const std::vector<RunOutput> &outputs);

} // namespace secmem::exp

#endif // SECMEM_EXP_SWEEP_HH
