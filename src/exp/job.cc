#include "exp/job.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace secmem::exp
{

namespace
{

/**
 * Canonical double formatting: %.17g round-trips every IEEE-754 double
 * exactly, so profile fractions hash identically across builds.
 */
std::string
fmtExact(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
kv(std::ostringstream &os, const char *key, const std::string &value)
{
    os << key << '=' << value << ';';
}

void
kv(std::ostringstream &os, const char *key, std::uint64_t value)
{
    os << key << '=' << value << ';';
}

void
kv(std::ostringstream &os, const char *key, double value)
{
    os << key << '=' << fmtExact(value) << ';';
}

std::string
hex(const Block16 &b)
{
    std::string s;
    s.reserve(32);
    for (std::uint8_t byte : b.b) {
        static const char digits[] = "0123456789abcdef";
        s.push_back(digits[byte >> 4]);
        s.push_back(digits[byte & 0xf]);
    }
    return s;
}

} // namespace

std::string
JobSpec::canonical() const
{
    std::ostringstream os;
    os << "secmem-job-v1;";

    kv(os, "wl.name", profile.name);
    kv(os, "wl.workingSetKB", std::uint64_t(profile.workingSetKB));
    kv(os, "wl.memFraction", profile.memFraction);
    kv(os, "wl.storeFraction", profile.storeFraction);
    kv(os, "wl.streamFraction", profile.streamFraction);
    kv(os, "wl.chaseFraction", profile.chaseFraction);
    kv(os, "wl.hotFraction", profile.hotFraction);
    kv(os, "wl.hotKB", std::uint64_t(profile.hotKB));
    kv(os, "wl.hotStoreBoost", profile.hotStoreBoost);
    kv(os, "wl.burst", profile.burst);
    kv(os, "wl.warmKB", std::uint64_t(profile.warmKB));
    kv(os, "wl.warmFraction", profile.warmFraction);
    kv(os, "wl.seed", profile.seed);
    kv(os, "wl.streamStepBytes", std::uint64_t(profile.streamStepBytes));

    kv(os, "cfg.enc", toString(config.enc));
    kv(os, "cfg.monoBits", std::uint64_t(config.monoBits));
    kv(os, "cfg.auth", toString(config.auth));
    kv(os, "cfg.authMode", toString(config.authMode));
    kv(os, "cfg.treeParallel", std::uint64_t(config.treeParallel));
    kv(os, "cfg.macBits", std::uint64_t(config.macBits));
    kv(os, "cfg.authCtrs", std::uint64_t(config.authenticateCounters));
    kv(os, "cfg.memoryBytes", std::uint64_t(config.memoryBytes));
    kv(os, "cfg.ctrCacheBytes", std::uint64_t(config.ctrCacheBytes));
    kv(os, "cfg.ctrCacheAssoc", std::uint64_t(config.ctrCacheAssoc));
    kv(os, "cfg.macCacheBytes", std::uint64_t(config.macCacheBytes));
    kv(os, "cfg.macCacheAssoc", std::uint64_t(config.macCacheAssoc));
    kv(os, "cfg.aesLatency", std::uint64_t(config.aesLatency));
    kv(os, "cfg.aesStages", std::uint64_t(config.aesStages));
    kv(os, "cfg.aesEngines", std::uint64_t(config.aesEngines));
    kv(os, "cfg.shaLatency", std::uint64_t(config.shaLatency));
    kv(os, "cfg.shaStages", std::uint64_t(config.shaStages));
    kv(os, "cfg.ghashCycles", std::uint64_t(config.ghashCyclesPerChunk));
    kv(os, "cfg.numRsrs", std::uint64_t(config.numRsrs));
    kv(os, "cfg.predDepth", std::uint64_t(config.predDepth));
    kv(os, "cfg.busBytesPerBeat",
       std::uint64_t(config.memTiming.busBytesPerBeat));
    kv(os, "cfg.beatTicksNum", std::uint64_t(config.memTiming.beatTicksNum));
    kv(os, "cfg.beatTicksDen", std::uint64_t(config.memTiming.beatTicksDen));
    kv(os, "cfg.dramLatency", std::uint64_t(config.memTiming.dramLatency));
    kv(os, "cfg.dataKey", hex(config.dataKey));
    kv(os, "cfg.macKey", hex(config.macKey));
    kv(os, "cfg.eivByte", std::uint64_t(config.eivByte));
    kv(os, "cfg.aivByte", std::uint64_t(config.aivByte));

    kv(os, "core.width", std::uint64_t(core.width));
    kv(os, "core.robSize", std::uint64_t(core.robSize));
    kv(os, "core.mshrs", std::uint64_t(core.mshrs));

    kv(os, "sys.l1Bytes", std::uint64_t(sys.l1Bytes));
    kv(os, "sys.l1Assoc", std::uint64_t(sys.l1Assoc));
    kv(os, "sys.l1Latency", std::uint64_t(sys.l1Latency));
    kv(os, "sys.l2Bytes", std::uint64_t(sys.l2Bytes));
    kv(os, "sys.l2Assoc", std::uint64_t(sys.l2Assoc));
    kv(os, "sys.l2Latency", std::uint64_t(sys.l2Latency));

    kv(os, "run.warmup", lengths.warmup);
    kv(os, "run.sim", lengths.sim);

    return os.str();
}

std::string
JobSpec::hash() const
{
    const std::string c = canonical();
    // Two independent 64-bit FNV-1a streams give a 128-bit key; the
    // store additionally verifies the full canonical string on lookup,
    // so a collision can cost a rerun but never a wrong result.
    const std::uint64_t prime = 0x100000001b3ull;
    std::uint64_t h1 = 0xcbf29ce484222325ull;
    std::uint64_t h2 = 0x9ae16a3b2f90404full;
    for (unsigned char ch : c) {
        h1 = (h1 ^ ch) * prime;
        h2 = (h2 ^ (ch + 0x5bu)) * prime;
    }
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64 "%016" PRIx64, h1, h2);
    return buf;
}

JobSpec
makeJob(std::string scheme, const SpecProfile &profile,
        const SecureMemConfig &config, RunLengths lengths,
        const CoreParams &core, const SystemParams &sys)
{
    JobSpec spec;
    spec.scheme = std::move(scheme);
    spec.profile = profile;
    spec.config = config;
    spec.core = core;
    spec.sys = sys;
    spec.lengths = lengths;
    return spec;
}

RunOutput
runJob(const JobSpec &spec, const RunObservers &observers)
{
    return runWorkload(spec.profile, spec.config, spec.core, spec.sys,
                       spec.lengths, observers);
}

namespace
{

void
jsonStr(std::ostringstream &os, const char *key, const std::string &v)
{
    os << '"' << key << "\": \"";
    for (char c : v) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

// RunOutput fields, once, shared by the emitter and the parser. The
// X-macro keeps the two in lockstep: a field added to RunOutput only
// needs one line here to serialize, parse and round-trip.
#define SECMEM_RUNOUTPUT_U64_FIELDS(X) \
    X(instructions) \
    X(cycles) \
    X(writebacks) \
    X(maxBlockWritebacks) \
    X(freezes) \
    X(pageReencs) \
    X(authFailures) \
    X(reencRsrStalls) \
    X(reencPageConflicts)

#define SECMEM_RUNOUTPUT_DOUBLE_FIELDS(X) \
    X(ipc) \
    X(simSeconds) \
    X(l2MissRate) \
    X(ctrHitRate) \
    X(ctrHalfMissRate) \
    X(macHitRate) \
    X(timelyPadRate) \
    X(predRate) \
    X(busUtilization) \
    X(avgAuthLevels) \
    X(reencOnchipFraction) \
    X(reencAvgCycles) \
    X(reencAvgConcurrent) \
    X(counterGrowthPerSec) \
    X(writebackRatePerSec)

/**
 * Find `"key": ` in @p json and return a pointer to the first
 * character of the value, or nullptr when absent.
 */
const char *
findValue(const std::string &json, const char *key)
{
    std::string needle = std::string("\"") + key + "\":";
    std::size_t pos = json.find(needle);
    if (pos == std::string::npos)
        return nullptr;
    const char *p = json.c_str() + pos + needle.size();
    while (*p == ' ')
        ++p;
    return p;
}

bool
parseString(const std::string &json, const char *key, std::string *out)
{
    const char *p = findValue(json, key);
    if (!p || *p != '"')
        return false;
    ++p;
    out->clear();
    while (*p && *p != '"') {
        if (*p == '\\' && p[1])
            ++p;
        out->push_back(*p++);
    }
    return *p == '"';
}

bool
parseU64(const std::string &json, const char *key, std::uint64_t *out)
{
    const char *p = findValue(json, key);
    if (!p)
        return false;
    char *end = nullptr;
    *out = std::strtoull(p, &end, 10);
    return end != p;
}

bool
parseDouble(const std::string &json, const char *key, double *out)
{
    const char *p = findValue(json, key);
    if (!p)
        return false;
    char *end = nullptr;
    *out = std::strtod(p, &end);
    return end != p;
}

} // namespace

std::string
runOutputToJson(const RunOutput &out)
{
    std::ostringstream os;
    os << '{';
    jsonStr(os, "workload", out.workload);
    os << ", ";
    jsonStr(os, "scheme", out.scheme);
#define SECMEM_EMIT_U64(f) \
    os << ", \"" #f "\": " << out.f;
    SECMEM_RUNOUTPUT_U64_FIELDS(SECMEM_EMIT_U64)
#undef SECMEM_EMIT_U64
#define SECMEM_EMIT_DOUBLE(f) \
    os << ", \"" #f "\": " << fmtExact(out.f);
    SECMEM_RUNOUTPUT_DOUBLE_FIELDS(SECMEM_EMIT_DOUBLE)
#undef SECMEM_EMIT_DOUBLE
    if (out.failed) {
        os << ", \"failed\": true, ";
        jsonStr(os, "error", out.error);
    }
    // The hierarchical stat dump is already a JSON object; embed it
    // verbatim, last, so flat-field parsing never hits its keys first.
    if (!out.statsJson.empty())
        os << ", \"stats\": " << out.statsJson;
    os << '}';
    return os.str();
}

bool
runOutputFromJson(const std::string &json, RunOutput *out)
{
    RunOutput r;
    if (!parseString(json, "workload", &r.workload) ||
        !parseString(json, "scheme", &r.scheme))
        return false;
#define SECMEM_PARSE_U64(f) \
    if (!parseU64(json, #f, &r.f)) \
        return false;
    SECMEM_RUNOUTPUT_U64_FIELDS(SECMEM_PARSE_U64)
#undef SECMEM_PARSE_U64
#define SECMEM_PARSE_DOUBLE(f) \
    if (!parseDouble(json, #f, &r.f)) \
        return false;
    SECMEM_RUNOUTPUT_DOUBLE_FIELDS(SECMEM_PARSE_DOUBLE)
#undef SECMEM_PARSE_DOUBLE
    // Optional: failure marker (the store refuses failed outputs, but
    // the round-trip must still be faithful for in-memory use).
    if (const char *p = findValue(json, "failed")) {
        r.failed = *p == 't';
        if (r.failed)
            parseString(json, "error", &r.error);
    }
    // Optional (absent in pre-observability records): the embedded
    // stats object, extracted as its balanced-brace substring. Stat
    // names never contain braces, so a depth count suffices.
    if (const char *p = findValue(json, "stats")) {
        if (*p != '{')
            return false;
        const char *q = p;
        int depth = 0;
        do {
            if (*q == '{')
                ++depth;
            else if (*q == '}')
                --depth;
            ++q;
        } while (depth > 0 && *q);
        if (depth != 0)
            return false;
        r.statsJson.assign(p, q);
    }
    *out = r;
    return true;
}

} // namespace secmem::exp
