#include "exp/sweep.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/atomic_file.hh"
#include "sim/log.hh"

namespace secmem::exp
{

namespace
{
const std::string kBaselineLabel = "baseline";
} // namespace

SchemeSweep::SchemeSweep(Engine &engine, SchemeList schemes,
                         std::vector<SpecProfile> workloads,
                         RunLengths lengths, CoreParams core,
                         SystemParams sys, bool withBaseline)
    : engine_(engine), schemes_(std::move(schemes)),
      workloads_(std::move(workloads)), lengths_(lengths), core_(core),
      sys_(sys), withBaseline_(withBaseline)
{}

void
SchemeSweep::run()
{
    specs_.clear();
    index_.clear();
    for (const SpecProfile &p : workloads_) {
        if (withBaseline_) {
            index_[{p.name, kBaselineLabel}] = specs_.size();
            specs_.push_back(makeJob(kBaselineLabel, p,
                                     SecureMemConfig::baseline(), lengths_,
                                     core_, sys_));
        }
        for (const auto &[label, cfg] : schemes_) {
            index_[{p.name, label}] = specs_.size();
            specs_.push_back(makeJob(label, p, cfg, lengths_, core_, sys_));
        }
    }
    outputs_ = engine_.run(specs_);
}

const RunOutput &
SchemeSweep::at(const std::string &workload, const std::string &scheme) const
{
    auto it = index_.find({workload, scheme});
    SECMEM_ASSERT(it != index_.end(), "no sweep cell (%s, %s)",
                  workload.c_str(), scheme.c_str());
    SECMEM_ASSERT(!outputs_.empty(), "SchemeSweep::run() not called");
    return outputs_[it->second];
}

const RunOutput &
SchemeSweep::baseline(const std::string &workload) const
{
    return at(workload, kBaselineLabel);
}

double
SchemeSweep::nipc(const std::string &workload, const std::string &scheme) const
{
    return normalizedIpc(at(workload, scheme), baseline(workload));
}

double
SchemeSweep::avgNipc(const std::string &scheme) const
{
    double sum = 0;
    for (const SpecProfile &p : workloads_)
        sum += nipc(p.name, scheme);
    return workloads_.empty() ? 0.0
                              : sum / static_cast<double>(workloads_.size());
}

void
emitArtifacts(const std::string &outDir, const std::string &figure,
              const std::string &tableCsv,
              const std::vector<JobSpec> &specs,
              const std::vector<RunOutput> &outputs)
{
    if (outDir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    if (ec) {
        SECMEM_WARN("cannot create output dir '%s': %s", outDir.c_str(),
                    ec.message().c_str());
        return;
    }

    // Artifacts go through temp-file + rename so an interrupted sweep
    // leaves either the previous complete file or the new one — never
    // a truncated CSV/JSON that downstream plotting would misread.
    if (!tableCsv.empty()) {
        const std::string csvPath = outDir + "/" + figure + ".csv";
        if (!atomicWriteFile(csvPath, tableCsv))
            SECMEM_WARN("cannot write '%s'", csvPath.c_str());
    }

    SECMEM_ASSERT(specs.size() == outputs.size(),
                  "emitArtifacts: %zu specs vs %zu outputs", specs.size(),
                  outputs.size());
    if (specs.empty())
        return;
    std::ostringstream json;
    json << "[\n";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        json << "  {\"job\": \"" << specs[i].hash() << "\", \"scheme\": \""
             << specs[i].scheme << "\", \"result\": "
             << runOutputToJson(outputs[i]) << "}";
        json << (i + 1 < specs.size() ? ",\n" : "\n");
    }
    json << "]\n";
    const std::string jsonPath = outDir + "/" + figure + ".json";
    if (!atomicWriteFile(jsonPath, json.str()))
        SECMEM_WARN("cannot write '%s'", jsonPath.c_str());
}

} // namespace secmem::exp
