/**
 * @file
 * The experiment engine: executes batches of JobSpecs through the
 * work-stealing pool, backed by the ResultStore.
 *
 * Guarantees:
 *  - results are returned in spec order, bit-identical between
 *    --jobs 1 and --jobs N runs (each job owns its System and RNG);
 *  - identical specs inside a batch are simulated once and the result
 *    shared (Figure 8/10's "default configuration" rows, the baseline
 *    every figure normalizes against);
 *  - specs already in the store are never re-simulated, so a second
 *    invocation of a sweep reruns nothing and an interrupted sweep
 *    resumes from the jobs it completed.
 *
 * Live progress (jobs done/total, ETA, per-worker current job) is
 * reported to stderr while stdout stays clean for figure tables.
 */

#ifndef SECMEM_EXP_ENGINE_HH
#define SECMEM_EXP_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/job.hh"
#include "exp/result_store.hh"
#include "exp/scheduler.hh"

namespace secmem::exp
{

struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 1;
    /** Result-store directory; empty = in-memory cache only. */
    std::string storeDir;
    /** Emit live progress lines to stderr. */
    bool progress = false;
    /**
     * When non-empty, write a Chrome trace-event JSON of the first
     * actually-simulated job of each run() call here (later runs
     * overwrite). Tracing is an observation: the traced job's RunOutput
     * is bit-identical to an untraced run's.
     */
    std::string traceFile;
    /**
     * Shadow-execute every simulated job against the untimed reference
     * model (src/ref), panicking on the first functional divergence.
     * Observational — excluded from JobSpec canonicalization — so pair
     * it with an empty storeDir: a cached result would satisfy the spec
     * without the oracle ever running.
     */
    bool verifyModel = false;

    // Resilience knobs (appended last to keep aggregate initialization
    // of the fields above stable).
    /**
     * Attempts per job before declaring it failed. An attempt that
     * throws (or panics — panics are converted to exceptions for the
     * duration of a job) is retried after an exponentially growing
     * backoff; a job that exhausts its attempts is reported through
     * failures() with a failed RunOutput in its result slot, and the
     * rest of the batch completes normally.
     */
    unsigned jobAttempts = 1;
    /**
     * Per-job wall-clock timeout in seconds; 0 disables. A watchdog
     * cancels the job's simulation cooperatively (the core polls a
     * cancel token), which counts as a failed attempt.
     */
    double jobTimeoutSec = 0.0;
    /** Base backoff between attempts (doubles per retry). */
    unsigned backoffMs = 50;
    /**
     * Job runner; defaults to runJob. Injectable so resilience tests
     * (and chaos drills) can substitute crashing / hanging / flaky
     * runners without simulating anything.
     */
    std::function<RunOutput(const JobSpec &, const RunObservers &)> runner;

    // Observability knobs (appended last, like the resilience knobs).
    /**
     * Sample the stat registry every N *simulated* cycles (0 = off).
     * The sampler rides the same deterministic job as the trace sink
     * (first actually-simulated job of each run() call), so the series
     * is bit-identical across --jobs values. Observation only — never
     * part of JobSpec canonicalization.
     */
    std::uint64_t sampleEvery = 0;
    /** Registry paths to sample; empty = obs::Sampler::defaultPaths(). */
    std::vector<std::string> samplePaths;
    /** Time-series CSV destination; empty = keep in memory only. */
    std::string sampleFile;
};

class Engine
{
  public:
    explicit Engine(const EngineOptions &opts);

    /**
     * Run every spec (through the store and pool) and return outputs
     * in spec order.
     */
    std::vector<RunOutput> run(const std::vector<JobSpec> &specs);

    ResultStore &store() { return store_; }
    unsigned jobs() const { return pool_.threads(); }
    const WorkStealingPool &pool() const { return pool_; }

    /** Simulations actually executed (lifetime, across run() calls). */
    std::uint64_t executed() const { return executed_; }
    /** Jobs served from the result store (lifetime). */
    std::uint64_t cached() const { return cached_; }

    /** Instructions simulated by fresh (non-cached) jobs, lifetime. */
    std::uint64_t simInstructions() const { return simInstructions_; }
    /** Cycles simulated by fresh (non-cached) jobs, lifetime. */
    std::uint64_t simCycles() const { return simCycles_; }

    /**
     * Time series captured by the sampler of the most recent run()
     * call with sampleEvery set (see EngineOptions); empty strings
     * when sampling was off or everything was served from the store.
     */
    const std::string &samplerCsv() const { return samplerCsv_; }
    const std::string &samplerJson() const { return samplerJson_; }

    /** One completed job, for per-job stat dumps (--stats-out). */
    struct JobRecord
    {
        std::string workload;
        std::string scheme;
        std::string hash;      ///< JobSpec::hash() of the spec
        std::string statsJson; ///< hierarchical dump; may be empty for
                               ///< records cached before observability
        /**
         * Wall-clock seconds this engine spent simulating the job
         * (all attempts); 0 for results served from the store or
         * shared with an identical spec in the same batch. Telemetry
         * only — never stored, never part of RunOutput.
         */
        double wallSeconds = 0.0;
    };

    /**
     * Every job completed by this engine, in spec order, accumulated
     * across run() calls (cached and fresh alike).
     */
    const std::vector<JobRecord> &history() const { return history_; }

    /** One job that exhausted its attempts without completing. */
    struct JobFailure
    {
        std::size_t specIndex; ///< index into the run() specs vector
        std::string workload;
        std::string scheme;
        std::string error;    ///< cause of the final failed attempt
        unsigned attempts;    ///< attempts consumed
        bool timedOut;        ///< final attempt hit the watchdog
    };

    /**
     * Failed jobs, accumulated across run() calls, sorted by specIndex
     * within each call — deterministic under any worker count. Failed
     * jobs are never written to the result store; their result slots
     * carry RunOutput::failed = true.
     */
    const std::vector<JobFailure> &failures() const { return failures_; }

  private:
    EngineOptions opts_;
    ResultStore store_;
    WorkStealingPool pool_;
    std::function<RunOutput(const JobSpec &, const RunObservers &)> runner_;
    std::uint64_t executed_ = 0;
    std::uint64_t cached_ = 0;
    std::atomic<std::uint64_t> simInstructions_{0};
    std::atomic<std::uint64_t> simCycles_{0};
    std::string samplerCsv_;
    std::string samplerJson_;
    std::vector<JobRecord> history_;
    std::vector<JobFailure> failures_;
};

} // namespace secmem::exp

#endif // SECMEM_EXP_ENGINE_HH
