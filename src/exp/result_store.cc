#include "exp/result_store.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "crypto/sha1.hh"
#include "sim/atomic_file.hh"
#include "sim/log.hh"

namespace fs = std::filesystem;

namespace secmem::exp
{

/*
 * On-disk entry format (one file per job, named <hash>.run):
 *
 *   line 1: the canonical spec string (it contains no newlines)
 *   line 2: the RunOutput JSON
 *   line 3: "#sha1 <40 hex>" — digest of lines 1-2 (incl. newlines)
 *
 * The spec line makes entries self-describing and lets lookup verify
 * it is reading the result of exactly this job; the checksum line
 * catches torn or bit-corrupted records. Two-line records from the
 * pre-checksum format remain readable.
 */

namespace
{

constexpr const char *kChecksumPrefix = "#sha1 ";

std::string
recordChecksum(const std::string &spec, const std::string &json)
{
    Sha1 h;
    h.update(spec);
    h.update("\n");
    h.update(json);
    h.update("\n");
    Sha1::Digest d = h.final();
    static const char *hex = "0123456789abcdef";
    std::string out;
    out.reserve(2 * d.size());
    for (std::uint8_t b : d) {
        out.push_back(hex[b >> 4]);
        out.push_back(hex[b & 0xf]);
    }
    return out;
}

} // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir))
{
    recoverJournal();
}

ResultStore::DiskRecord
ResultStore::readRecord(const std::string &path)
{
    DiskRecord rec;
    std::ifstream in(path);
    if (!in)
        return rec;
    std::string checksum;
    if (!std::getline(in, rec.spec) || !std::getline(in, rec.json))
        return rec; // torn: fewer than two lines
    if (rec.spec.empty() || rec.json.empty())
        return rec;
    if (std::getline(in, checksum)) {
        // v2 record: the third line must carry a matching digest.
        if (checksum.rfind(kChecksumPrefix, 0) != 0)
            return rec;
        if (checksum.substr(std::strlen(kChecksumPrefix)) !=
            recordChecksum(rec.spec, rec.json))
            return rec;
    }
    rec.ok = true;
    return rec;
}

void
ResultStore::recoverJournal()
{
    if (dir_.empty())
        return;
    std::error_code ec;
    if (!fs::is_directory(dir_, ec))
        return;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos) {
            // A writer died between create and rename; the final name
            // was never exposed, so the temporary is pure litter.
            fs::remove(entry.path(), ec);
            ++tmpCleaned_;
            continue;
        }
        if (entry.path().extension() != ".run")
            continue;
        if (!readRecord(entry.path().string()).ok) {
            SECMEM_WARN("result store: discarding torn/corrupt record "
                        "'%s'",
                        entry.path().string().c_str());
            fs::remove(entry.path(), ec);
            ++corruptDiscarded_;
        }
    }
    if (tmpCleaned_ || corruptDiscarded_) {
        SECMEM_WARN("result store: journal recovery removed %llu "
                    "temporaries, discarded %llu corrupt records",
                    static_cast<unsigned long long>(tmpCleaned_),
                    static_cast<unsigned long long>(corruptDiscarded_));
    }
}

std::string
ResultStore::pathFor(const std::string &hash) const
{
    return dir_ + "/" + hash + ".run";
}

bool
ResultStore::lookup(const JobSpec &spec, RunOutput *out)
{
    const std::string canonical = spec.canonical();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memory_.find(canonical);
        if (it != memory_.end()) {
            *out = it->second;
            ++memoryHits_;
            return true;
        }
    }

    if (!dir_.empty()) {
        const std::string path = pathFor(spec.hash());
        std::error_code ec;
        if (fs::exists(path, ec)) {
            DiskRecord rec = readRecord(path);
            RunOutput parsed;
            if (rec.ok && rec.spec == canonical &&
                runOutputFromJson(rec.json, &parsed)) {
                std::lock_guard<std::mutex> lock(mutex_);
                memory_.emplace(canonical, parsed);
                ++diskHits_;
                *out = parsed;
                return true;
            }
            if (!rec.ok) {
                SECMEM_WARN("result store: torn or corrupt entry %s; "
                            "rerunning",
                            spec.hash().c_str());
            } else if (rec.spec != canonical) {
                SECMEM_WARN("result store: stale or colliding entry %s "
                            "(spec mismatch); rerunning",
                            spec.hash().c_str());
            } else {
                SECMEM_WARN("result store: unparsable entry %s; rerunning",
                            spec.hash().c_str());
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    return false;
}

void
ResultStore::put(const JobSpec &spec, const RunOutput &out)
{
    // A failed run carries no reusable data; caching it would replay
    // the failure into every later sweep that shares the spec.
    if (out.failed)
        return;

    const std::string canonical = spec.canonical();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memory_[canonical] = out;
    }
    if (dir_.empty())
        return;

    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        SECMEM_WARN("result store: cannot create '%s': %s", dir_.c_str(),
                    ec.message().c_str());
        return;
    }

    // Write-then-rename keeps concurrent writers and interrupted runs
    // from ever exposing a partial entry; the checksum line lets a
    // future open detect bit rot or filesystem-level tearing.
    const std::string json = runOutputToJson(out);
    const std::string content = canonical + '\n' + json + '\n' +
                                kChecksumPrefix +
                                recordChecksum(canonical, json) + '\n';
    const std::string final_path = pathFor(spec.hash());
    if (!atomicWriteFile(final_path, content))
        SECMEM_WARN("result store: cannot write '%s'", final_path.c_str());
}

std::uint64_t
ResultStore::memoryHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memoryHits_;
}

std::uint64_t
ResultStore::diskHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskHits_;
}

std::uint64_t
ResultStore::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace secmem::exp
