#include "exp/result_store.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "sim/log.hh"

namespace fs = std::filesystem;

namespace secmem::exp
{

/*
 * On-disk entry format (one file per job, named <hash>.run):
 *
 *   line 1: the canonical spec string (it contains no newlines)
 *   line 2: the RunOutput JSON
 *
 * The spec line makes entries self-describing and lets lookup verify
 * it is reading the result of exactly this job.
 */

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultStore::pathFor(const std::string &hash) const
{
    return dir_ + "/" + hash + ".run";
}

bool
ResultStore::lookup(const JobSpec &spec, RunOutput *out)
{
    const std::string canonical = spec.canonical();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = memory_.find(canonical);
        if (it != memory_.end()) {
            *out = it->second;
            ++memoryHits_;
            return true;
        }
    }

    if (!dir_.empty()) {
        std::ifstream in(pathFor(spec.hash()));
        if (in) {
            std::string stored_spec, json;
            std::getline(in, stored_spec);
            std::getline(in, json);
            RunOutput parsed;
            if (stored_spec == canonical &&
                runOutputFromJson(json, &parsed)) {
                std::lock_guard<std::mutex> lock(mutex_);
                memory_.emplace(canonical, parsed);
                ++diskHits_;
                *out = parsed;
                return true;
            }
            if (stored_spec != canonical) {
                SECMEM_WARN("result store: stale or colliding entry %s "
                            "(spec mismatch); rerunning",
                            spec.hash().c_str());
            } else {
                SECMEM_WARN("result store: unparsable entry %s; rerunning",
                            spec.hash().c_str());
            }
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    return false;
}

void
ResultStore::put(const JobSpec &spec, const RunOutput &out)
{
    const std::string canonical = spec.canonical();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memory_[canonical] = out;
    }
    if (dir_.empty())
        return;

    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        SECMEM_WARN("result store: cannot create '%s': %s", dir_.c_str(),
                    ec.message().c_str());
        return;
    }

    // Write-then-rename keeps concurrent writers and interrupted runs
    // from ever exposing a partial entry.
    const std::string final_path = pathFor(spec.hash());
    const std::string tmp_path =
        final_path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp_path, std::ios::trunc);
        if (!os) {
            SECMEM_WARN("result store: cannot write '%s'", tmp_path.c_str());
            return;
        }
        os << canonical << '\n' << runOutputToJson(out) << '\n';
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        SECMEM_WARN("result store: rename to '%s' failed: %s",
                    final_path.c_str(), ec.message().c_str());
        fs::remove(tmp_path, ec);
    }
}

std::uint64_t
ResultStore::memoryHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return memoryHits_;
}

std::uint64_t
ResultStore::diskHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return diskHits_;
}

std::uint64_t
ResultStore::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

} // namespace secmem::exp
