/**
 * @file
 * Timing models for pipelined cryptographic hardware engines.
 *
 * The paper's platform has a 128-bit AES engine with a 16-stage
 * pipeline and 80-cycle total latency (one new operation may enter
 * every 80/16 = 5 cycles), and a SHA-1 engine with a 32-stage pipeline
 * and a 320-cycle latency (one op per 10 cycles). GCM reuses the AES
 * engine for authentication pads, which is one of its cost advantages.
 *
 * Each pipe is modelled as an issue-slot calendar: one operation may
 * enter per issue interval, and an operation whose operands are ready
 * at tick R occupies the first free slot at or after R. The calendar
 * backfills — an operation waiting on a far-future operand does not
 * block the pipe for operations that are ready sooner (the hardware
 * pipeline has no such coupling either).
 *
 * Two priority classes exist: demand (read-path pads, tag checks) and
 * background (write-back encryption, tag generation, re-encryption).
 * Background work is additionally serialized against itself so a burst
 * of write-backs cannot monopolize future issue slots.
 */

#ifndef SECMEM_ENC_CRYPTO_ENGINE_HH
#define SECMEM_ENC_CRYPTO_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fastdiv.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** A bank of identical fully-pipelined fixed-latency functional units. */
class CryptoEngine
{
  public:
    /**
     * @param name     stats group name ("aes", "sha1")
     * @param latency  ticks from issue to result
     * @param stages   pipeline depth; issue interval = latency / stages
     * @param engines  number of parallel pipes
     */
    CryptoEngine(std::string name, Tick latency, unsigned stages,
                 unsigned engines = 1)
        : latency_(latency),
          interval_(std::max<Tick>(1, latency / stages)),
          intervalDiv_(interval_),
          pipes_(engines),
          stats_(std::move(name))
    {
        SECMEM_ASSERT(stages >= 1 && engines >= 1,
                      "bad engine shape: stages=%u engines=%u", stages,
                      engines);
    }

    /**
     * Issue one demand operation whose operands are ready at @p ready.
     * @return the tick at which the result is available.
     */
    Tick
    schedule(Tick ready)
    {
        Tick start = reserveEarliest(ready);
        opsStat_.inc();
        issueWaitStat_.record(start - ready);
        if (start > ready)
            issueStallTicksStat_.inc(start - ready);
        return start + latency_;
    }

    /**
     * Issue one background (write-back / re-encryption) operation.
     * Background operations serialize against each other so queued
     * write-back work trickles into the pipe instead of flooding it.
     */
    Tick
    scheduleBackground(Tick ready)
    {
        Tick start = reserveEarliest(std::max(ready, nextBackground_));
        nextBackground_ = start + interval_;
        backgroundOpsStat_.inc();
        return start + latency_;
    }

    /**
     * Issue @p n back-to-back operations (e.g. the four pad chunks of
     * one cache block); returns when the last result is available.
     */
    Tick
    scheduleBurst(Tick ready, unsigned n)
    {
        Tick done = ready;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done, schedule(ready));
        return done;
    }

    /** Background variant of scheduleBurst. */
    Tick
    scheduleBackgroundBurst(Tick ready, unsigned n)
    {
        Tick done = ready;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done, scheduleBackground(ready));
        return done;
    }

    Tick latency() const { return latency_; }
    Tick issueInterval() const { return interval_; }
    unsigned engines() const { return static_cast<unsigned>(pipes_.size()); }

    void
    reset()
    {
        for (auto &pipe : pipes_)
            pipe.clear();
        nextBackground_ = 0;
        stats_.reset();
    }

    stats::Group &stats() { return stats_; }

    /**
     * Occupied issue-slot indices as a flat open-addressing hash set.
     * Slot lookups dominate engine scheduling (one membership test per
     * probed slot, several probes per memory access), and the previous
     * std::set cost a pointer-chasing tree walk per test. Membership
     * semantics are exactly the set's, so schedules are bit-identical.
     */
    struct Pipe
    {
        /** Table; kEmpty-filled. Size is a power of two. */
        std::vector<std::uint64_t> table;
        std::size_t count = 0; ///< occupied entries
        /** Highest index ever inserted: issue slots advance with
         *  simulated time, so most probes land beyond every occupied
         *  slot and can skip the hash entirely. */
        std::uint64_t maxIdx = 0;

        static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

        bool
        contains(std::uint64_t idx) const
        {
            if (count == 0 || idx > maxIdx)
                return false;
            std::size_t mask = table.size() - 1;
            std::size_t h = hashOf(idx) & mask;
            while (table[h] != kEmpty) {
                if (table[h] == idx)
                    return true;
                h = (h + 1) & mask;
            }
            return false;
        }

        void
        insert(std::uint64_t idx)
        {
            if (table.empty() || (count + 1) * 4 > table.size() * 3)
                rehash(table.empty() ? 64 : table.size() * 2);
            std::size_t mask = table.size() - 1;
            std::size_t h = hashOf(idx) & mask;
            while (table[h] != kEmpty) {
                if (table[h] == idx)
                    return;
                h = (h + 1) & mask;
            }
            table[h] = idx;
            ++count;
            maxIdx = std::max(maxIdx, idx);
        }

        /** Drop every index below @p horizon (cold: calendar bound). */
        void
        pruneBelow(std::uint64_t horizon)
        {
            std::vector<std::uint64_t> old = std::move(table);
            table.assign(old.size(), kEmpty);
            count = 0;
            std::size_t mask = table.size() - 1;
            for (std::uint64_t idx : old) {
                if (idx == kEmpty || idx < horizon)
                    continue;
                std::size_t h = hashOf(idx) & mask;
                while (table[h] != kEmpty)
                    h = (h + 1) & mask;
                table[h] = idx;
                ++count;
            }
        }

        void
        clear()
        {
            table.clear();
            count = 0;
            maxIdx = 0;
        }

        static std::uint64_t
        hashOf(std::uint64_t v)
        {
            // splitmix64 finalizer: guards the power-of-two mask
            // against strided slot patterns from multi-slot bursts.
            v ^= v >> 30;
            v *= 0xbf58476d1ce4e5b9ull;
            v ^= v >> 27;
            v *= 0x94d049bb133111ebull;
            v ^= v >> 31;
            return v;
        }

        void
        rehash(std::size_t n)
        {
            std::vector<std::uint64_t> old = std::move(table);
            table.assign(n, kEmpty);
            std::size_t mask = n - 1;
            for (std::uint64_t idx : old) {
                if (idx == kEmpty)
                    continue;
                std::size_t h = hashOf(idx) & mask;
                while (table[h] != kEmpty)
                    h = (h + 1) & mask;
                table[h] = idx;
            }
        }
    };

    /** First free slot index at or after @p earliest on one pipe. */
    std::uint64_t
    probe(const Pipe &pipe, Tick earliest) const
    {
        // Ceil-divide via the precomputed reciprocal: the hardware
        // divide here was measurable at several probes per miss.
        std::uint64_t idx = intervalDiv_.ceilDiv(earliest);
        while (pipe.contains(idx))
            ++idx;
        return idx;
    }

    Tick
    reserveEarliest(Tick ready)
    {
        Pipe *best = &pipes_.front();
        std::uint64_t best_idx = probe(*best, ready);
        for (std::size_t i = 1; i < pipes_.size(); ++i) {
            std::uint64_t idx = probe(pipes_[i], ready);
            if (idx < best_idx) {
                best_idx = idx;
                best = &pipes_[i];
            }
        }
        best->insert(best_idx);
        // Bound the calendar: drop slots far behind the issue horizon
        // (nothing is ever requested that far in the past).
        if (best->count > kCalendarSlots) {
            std::uint64_t horizon =
                best_idx > kCalendarSlots ? best_idx - kCalendarSlots : 0;
            best->pruneBelow(horizon);
        }
        return best_idx * interval_;
    }

    static constexpr std::size_t kCalendarSlots = 16384;

    Tick latency_;
    Tick interval_;
    FastDiv intervalDiv_;
    std::vector<Pipe> pipes_;
    Tick nextBackground_ = 0;
    stats::Group stats_;
    // Cached: schedule() runs several times per miss (pads, tags,
    // MAC-tree levels); the refs double as pre-registration so every
    // configuration dumps the same stat set even when idle.
    stats::Counter &opsStat_ = stats_.counter("ops");
    stats::Counter &backgroundOpsStat_ = stats_.counter("background_ops");
    stats::Counter &issueStallTicksStat_ =
        stats_.counter("issue_stall_ticks");
    stats::LogHistogram &issueWaitStat_ = stats_.logHistogram("issue_wait");
};

} // namespace secmem

#endif // SECMEM_ENC_CRYPTO_ENGINE_HH
