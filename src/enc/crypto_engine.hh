/**
 * @file
 * Timing models for pipelined cryptographic hardware engines.
 *
 * The paper's platform has a 128-bit AES engine with a 16-stage
 * pipeline and 80-cycle total latency (one new operation may enter
 * every 80/16 = 5 cycles), and a SHA-1 engine with a 32-stage pipeline
 * and a 320-cycle latency (one op per 10 cycles). GCM reuses the AES
 * engine for authentication pads, which is one of its cost advantages.
 *
 * Each pipe is modelled as an issue-slot calendar: one operation may
 * enter per issue interval, and an operation whose operands are ready
 * at tick R occupies the first free slot at or after R. The calendar
 * backfills — an operation waiting on a far-future operand does not
 * block the pipe for operations that are ready sooner (the hardware
 * pipeline has no such coupling either).
 *
 * Two priority classes exist: demand (read-path pads, tag checks) and
 * background (write-back encryption, tag generation, re-encryption).
 * Background work is additionally serialized against itself so a burst
 * of write-backs cannot monopolize future issue slots.
 */

#ifndef SECMEM_ENC_CRYPTO_ENGINE_HH
#define SECMEM_ENC_CRYPTO_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/fastdiv.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** A bank of identical fully-pipelined fixed-latency functional units. */
class CryptoEngine
{
  public:
    /**
     * @param name     stats group name ("aes", "sha1")
     * @param latency  ticks from issue to result
     * @param stages   pipeline depth; issue interval = latency / stages
     * @param engines  number of parallel pipes
     */
    CryptoEngine(std::string name, Tick latency, unsigned stages,
                 unsigned engines = 1)
        : latency_(latency),
          interval_(std::max<Tick>(1, latency / stages)),
          intervalDiv_(interval_),
          pipes_(engines),
          stats_(std::move(name))
    {
        SECMEM_ASSERT(stages >= 1 && engines >= 1,
                      "bad engine shape: stages=%u engines=%u", stages,
                      engines);
    }

    /**
     * Issue one demand operation whose operands are ready at @p ready.
     * @return the tick at which the result is available.
     */
    Tick
    schedule(Tick ready)
    {
        Tick start = reserveEarliest(ready);
        opsStat_.inc();
        issueWaitStat_.record(start - ready);
        if (start > ready)
            issueStallTicksStat_.inc(start - ready);
        return start + latency_;
    }

    /**
     * Issue one background (write-back / re-encryption) operation.
     * Background operations serialize against each other so queued
     * write-back work trickles into the pipe instead of flooding it.
     */
    Tick
    scheduleBackground(Tick ready)
    {
        Tick start = reserveEarliest(std::max(ready, nextBackground_));
        nextBackground_ = start + interval_;
        backgroundOpsStat_.inc();
        return start + latency_;
    }

    /**
     * Issue @p n back-to-back operations (e.g. the four pad chunks of
     * one cache block); returns when the last result is available.
     */
    Tick
    scheduleBurst(Tick ready, unsigned n)
    {
        Tick done = ready;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done, schedule(ready));
        return done;
    }

    /** Background variant of scheduleBurst. */
    Tick
    scheduleBackgroundBurst(Tick ready, unsigned n)
    {
        Tick done = ready;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done, scheduleBackground(ready));
        return done;
    }

    Tick latency() const { return latency_; }
    Tick issueInterval() const { return interval_; }
    unsigned engines() const { return static_cast<unsigned>(pipes_.size()); }

    void
    reset()
    {
        for (auto &pipe : pipes_)
            pipe.clear();
        nextBackground_ = 0;
        stats_.reset();
    }

    stats::Group &stats() { return stats_; }

    /**
     * Occupied issue-slot indices as a flat bitmap (bit i = slot i
     * taken). Slot numbers are tick / interval, so even a long run
     * stays under ~1M slots (~128 KB of bits), and the live frontier
     * — the only region schedule() ever probes — spans a few cache
     * lines. The previous open-addressing hash set spread the same
     * membership over a 256 KB table, turning every frontier probe
     * into a cold miss; "first free slot at or after idx" is now a
     * word-wise scan instead of one hashed lookup per occupied slot.
     * Membership semantics are exactly the set's (including pruning,
     * which just clears low bits), so schedules are bit-identical.
     */
    struct Pipe
    {
        /** Occupancy bits; bit (w*64 + b) of words[w] = slot taken. */
        std::vector<std::uint64_t> words;
        std::size_t count = 0; ///< occupied slots
        /** Highest index ever inserted: issue slots advance with
         *  simulated time, so most probes land beyond every occupied
         *  slot and can skip the scan entirely. */
        std::uint64_t maxIdx = 0;

        bool
        contains(std::uint64_t idx) const
        {
            std::size_t w = idx >> 6;
            return w < words.size() &&
                   (words[w] >> (idx & 63)) & 1;
        }

        /** Smallest free slot index >= @p idx. */
        std::uint64_t
        firstFreeFrom(std::uint64_t idx) const
        {
            if (count == 0 || idx > maxIdx)
                return idx;
            std::size_t w = idx >> 6;
            if (w >= words.size())
                return idx;
            // Treat bits below idx as occupied so the scan cannot
            // land before the requested slot.
            std::uint64_t occ =
                words[w] | ((std::uint64_t{1} << (idx & 63)) - 1);
            while (occ == ~std::uint64_t{0}) {
                if (++w >= words.size())
                    return std::uint64_t{w} << 6;
                occ = words[w];
            }
            return (std::uint64_t{w} << 6) +
                   static_cast<unsigned>(__builtin_ctzll(~occ));
        }

        void
        insert(std::uint64_t idx)
        {
            std::size_t w = idx >> 6;
            if (w >= words.size())
                words.resize(
                    std::max({w + 1, words.size() * 2, std::size_t{256}}),
                    0);
            std::uint64_t bit = std::uint64_t{1} << (idx & 63);
            if (!(words[w] & bit)) {
                words[w] |= bit;
                ++count;
                maxIdx = std::max(maxIdx, idx);
            }
        }

        /** Drop every index below @p horizon (cold: calendar bound). */
        void
        pruneBelow(std::uint64_t horizon)
        {
            std::size_t wend = std::min(words.size(), horizon >> 6);
            for (std::size_t w = 0; w < wend; ++w) {
                count -= static_cast<std::size_t>(
                    __builtin_popcountll(words[w]));
                words[w] = 0;
            }
            std::size_t w = horizon >> 6;
            if (w < words.size() && (horizon & 63)) {
                std::uint64_t low =
                    (std::uint64_t{1} << (horizon & 63)) - 1;
                count -= static_cast<std::size_t>(
                    __builtin_popcountll(words[w] & low));
                words[w] &= ~low;
            }
        }

        void
        clear()
        {
            words.clear();
            count = 0;
            maxIdx = 0;
        }
    };

    /** First free slot index at or after @p earliest on one pipe. */
    std::uint64_t
    probe(const Pipe &pipe, Tick earliest) const
    {
        // Ceil-divide via the precomputed reciprocal: the hardware
        // divide here was measurable at several probes per miss.
        return pipe.firstFreeFrom(intervalDiv_.ceilDiv(earliest));
    }

    Tick
    reserveEarliest(Tick ready)
    {
        Pipe *best = &pipes_.front();
        std::uint64_t best_idx = probe(*best, ready);
        for (std::size_t i = 1; i < pipes_.size(); ++i) {
            std::uint64_t idx = probe(pipes_[i], ready);
            if (idx < best_idx) {
                best_idx = idx;
                best = &pipes_[i];
            }
        }
        best->insert(best_idx);
        // Bound the calendar: drop slots far behind the issue horizon
        // (nothing is ever requested that far in the past).
        if (best->count > kCalendarSlots) {
            std::uint64_t horizon =
                best_idx > kCalendarSlots ? best_idx - kCalendarSlots : 0;
            best->pruneBelow(horizon);
        }
        return best_idx * interval_;
    }

    static constexpr std::size_t kCalendarSlots = 16384;

    Tick latency_;
    Tick interval_;
    FastDiv intervalDiv_;
    std::vector<Pipe> pipes_;
    Tick nextBackground_ = 0;
    stats::Group stats_;
    // Cached: schedule() runs several times per miss (pads, tags,
    // MAC-tree levels); the refs double as pre-registration so every
    // configuration dumps the same stat set even when idle.
    stats::Counter &opsStat_ = stats_.counter("ops");
    stats::Counter &backgroundOpsStat_ = stats_.counter("background_ops");
    stats::Counter &issueStallTicksStat_ =
        stats_.counter("issue_stall_ticks");
    stats::LogHistogram &issueWaitStat_ = stats_.logHistogram("issue_wait");
};

} // namespace secmem

#endif // SECMEM_ENC_CRYPTO_ENGINE_HH
