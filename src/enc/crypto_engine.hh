/**
 * @file
 * Timing models for pipelined cryptographic hardware engines.
 *
 * The paper's platform has a 128-bit AES engine with a 16-stage
 * pipeline and 80-cycle total latency (one new operation may enter
 * every 80/16 = 5 cycles), and a SHA-1 engine with a 32-stage pipeline
 * and a 320-cycle latency (one op per 10 cycles). GCM reuses the AES
 * engine for authentication pads, which is one of its cost advantages.
 *
 * Each pipe is modelled as an issue-slot calendar: one operation may
 * enter per issue interval, and an operation whose operands are ready
 * at tick R occupies the first free slot at or after R. The calendar
 * backfills — an operation waiting on a far-future operand does not
 * block the pipe for operations that are ready sooner (the hardware
 * pipeline has no such coupling either).
 *
 * Two priority classes exist: demand (read-path pads, tag checks) and
 * background (write-back encryption, tag generation, re-encryption).
 * Background work is additionally serialized against itself so a burst
 * of write-backs cannot monopolize future issue slots.
 */

#ifndef SECMEM_ENC_CRYPTO_ENGINE_HH
#define SECMEM_ENC_CRYPTO_ENGINE_HH

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** A bank of identical fully-pipelined fixed-latency functional units. */
class CryptoEngine
{
  public:
    /**
     * @param name     stats group name ("aes", "sha1")
     * @param latency  ticks from issue to result
     * @param stages   pipeline depth; issue interval = latency / stages
     * @param engines  number of parallel pipes
     */
    CryptoEngine(std::string name, Tick latency, unsigned stages,
                 unsigned engines = 1)
        : latency_(latency),
          interval_(std::max<Tick>(1, latency / stages)),
          pipes_(engines),
          stats_(std::move(name))
    {
        SECMEM_ASSERT(stages >= 1 && engines >= 1,
                      "bad engine shape: stages=%u engines=%u", stages,
                      engines);
        // Pre-register so every configuration dumps the distribution,
        // even when an engine never issues.
        stats_.logHistogram("issue_wait");
    }

    /**
     * Issue one demand operation whose operands are ready at @p ready.
     * @return the tick at which the result is available.
     */
    Tick
    schedule(Tick ready)
    {
        Tick start = reserveEarliest(ready);
        stats_.counter("ops").inc();
        stats_.logHistogram("issue_wait").record(start - ready);
        if (start > ready)
            stats_.counter("issue_stall_ticks").inc(start - ready);
        return start + latency_;
    }

    /**
     * Issue one background (write-back / re-encryption) operation.
     * Background operations serialize against each other so queued
     * write-back work trickles into the pipe instead of flooding it.
     */
    Tick
    scheduleBackground(Tick ready)
    {
        Tick start = reserveEarliest(std::max(ready, nextBackground_));
        nextBackground_ = start + interval_;
        stats_.counter("background_ops").inc();
        return start + latency_;
    }

    /**
     * Issue @p n back-to-back operations (e.g. the four pad chunks of
     * one cache block); returns when the last result is available.
     */
    Tick
    scheduleBurst(Tick ready, unsigned n)
    {
        Tick done = ready;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done, schedule(ready));
        return done;
    }

    /** Background variant of scheduleBurst. */
    Tick
    scheduleBackgroundBurst(Tick ready, unsigned n)
    {
        Tick done = ready;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done, scheduleBackground(ready));
        return done;
    }

    Tick latency() const { return latency_; }
    Tick issueInterval() const { return interval_; }
    unsigned engines() const { return static_cast<unsigned>(pipes_.size()); }

    void
    reset()
    {
        for (auto &pipe : pipes_)
            pipe.busy.clear();
        nextBackground_ = 0;
        stats_.reset();
    }

    stats::Group &stats() { return stats_; }

  private:
    struct Pipe
    {
        std::set<std::uint64_t> busy; ///< occupied issue-slot indices
    };

    /** First free slot index at or after @p earliest on one pipe. */
    std::uint64_t
    probe(const Pipe &pipe, Tick earliest) const
    {
        std::uint64_t idx = (earliest + interval_ - 1) / interval_;
        while (pipe.busy.count(idx))
            ++idx;
        return idx;
    }

    Tick
    reserveEarliest(Tick ready)
    {
        Pipe *best = &pipes_.front();
        std::uint64_t best_idx = probe(*best, ready);
        for (std::size_t i = 1; i < pipes_.size(); ++i) {
            std::uint64_t idx = probe(pipes_[i], ready);
            if (idx < best_idx) {
                best_idx = idx;
                best = &pipes_[i];
            }
        }
        best->busy.insert(best_idx);
        // Bound the calendar: drop slots far behind the issue horizon
        // (nothing is ever requested that far in the past).
        if (best->busy.size() > kCalendarSlots) {
            std::uint64_t horizon =
                best_idx > kCalendarSlots ? best_idx - kCalendarSlots : 0;
            best->busy.erase(best->busy.begin(),
                             best->busy.lower_bound(horizon));
        }
        return best_idx * interval_;
    }

    static constexpr std::size_t kCalendarSlots = 16384;

    Tick latency_;
    Tick interval_;
    std::vector<Pipe> pipes_;
    Tick nextBackground_ = 0;
    stats::Group stats_;
};

} // namespace secmem

#endif // SECMEM_ENC_CRYPTO_ENGINE_HH
