#include "enc/counters.hh"

#include "sim/log.hh"

namespace secmem
{

std::uint64_t
SplitCounterBlock::major() const
{
    std::uint64_t m = 0;
    for (int i = 0; i < 8; ++i)
        m |= static_cast<std::uint64_t>(raw_.b[i]) << (8 * i);
    return m;
}

void
SplitCounterBlock::setMajor(std::uint64_t m)
{
    for (int i = 0; i < 8; ++i)
        raw_.b[i] = static_cast<std::uint8_t>(m >> (8 * i));
}

unsigned
SplitCounterBlock::minor(unsigned i) const
{
    SECMEM_ASSERT(i < kBlocksPerPage, "minor index %u out of range", i);
    // Minor counters are a 448-bit little-endian bit field starting at
    // byte 8: minor i occupies bits [7i, 7i+7).
    unsigned bit = i * kMinorBits;
    unsigned byte = 8 + bit / 8;
    unsigned shift = bit % 8;
    unsigned lo = raw_.b[byte] >> shift;
    unsigned hi = (byte + 1 < kBlockBytes)
                      ? static_cast<unsigned>(raw_.b[byte + 1]) << (8 - shift)
                      : 0;
    return (lo | hi) & maxMinor();
}

void
SplitCounterBlock::setMinor(unsigned i, unsigned value)
{
    SECMEM_ASSERT(i < kBlocksPerPage, "minor index %u out of range", i);
    SECMEM_ASSERT(value <= maxMinor(), "minor value %u overflows field",
                  value);
    unsigned bit = i * kMinorBits;
    unsigned byte = 8 + bit / 8;
    unsigned shift = bit % 8;
    unsigned mask = maxMinor() << shift;
    unsigned cur = raw_.b[byte] | (byte + 1 < kBlockBytes
                       ? static_cast<unsigned>(raw_.b[byte + 1]) << 8
                       : 0);
    cur = (cur & ~mask) | (value << shift);
    raw_.b[byte] = static_cast<std::uint8_t>(cur);
    if (byte + 1 < kBlockBytes && shift + kMinorBits > 8)
        raw_.b[byte + 1] = static_cast<std::uint8_t>(cur >> 8);
}

void
SplitCounterBlock::clearMinors()
{
    for (std::size_t i = 8; i < kBlockBytes; ++i)
        raw_.b[i] = 0;
}

MonoCounterBlock::MonoCounterBlock(unsigned width_bits, Block64 raw)
    : width_(width_bits), raw_(raw)
{
    SECMEM_ASSERT(width_bits == 8 || width_bits == 16 || width_bits == 32 ||
                      width_bits == 64,
                  "unsupported monolithic counter width %u", width_bits);
}

std::uint64_t
MonoCounterBlock::counter(unsigned i) const
{
    SECMEM_ASSERT(i < countersPerBlock(), "counter slot %u out of range", i);
    unsigned bytes = width_ / 8;
    std::uint64_t v = 0;
    for (unsigned k = 0; k < bytes; ++k)
        v |= static_cast<std::uint64_t>(raw_.b[i * bytes + k]) << (8 * k);
    return v;
}

void
MonoCounterBlock::setCounter(unsigned i, std::uint64_t value)
{
    SECMEM_ASSERT(i < countersPerBlock(), "counter slot %u out of range", i);
    unsigned bytes = width_ / 8;
    for (unsigned k = 0; k < bytes; ++k)
        raw_.b[i * bytes + k] = static_cast<std::uint8_t>(value >> (8 * k));
}

bool
MonoCounterBlock::increment(unsigned i)
{
    std::uint64_t v = counter(i) + 1;
    bool wrapped = width_ < 64 && v >= (std::uint64_t(1) << width_);
    if (width_ == 64)
        wrapped = v == 0;
    if (wrapped)
        v = 0;
    setCounter(i, v);
    return wrapped;
}

} // namespace secmem
