/**
 * @file
 * Counter-block layouts for counter-mode memory encryption.
 *
 * A counter block is one 64-byte memory block holding the counters for
 * a contiguous run of data blocks. Two layouts exist:
 *
 *  - SplitCounterBlock (the paper's contribution): one 64-bit major
 *    counter plus 64 seven-bit minor counters — 8 + 56 = 64 bytes,
 *    covering a 4 KB encryption page at exactly one counter byte per
 *    data block.
 *
 *  - MonoCounterBlock: 2^k-bit monolithic counters (8/16/32/64-bit)
 *    packed 64/32/16/8 to a block, as in prior schemes.
 *
 * Codecs operate on Block64 so counter blocks live in the same DRAM /
 * counter-cache fabric as everything else and are subject to the same
 * attacks and the same Merkle-tree protection.
 */

#ifndef SECMEM_ENC_COUNTERS_HH
#define SECMEM_ENC_COUNTERS_HH

#include <cstdint>

#include "crypto/bytes.hh"
#include "sim/types.hh"

namespace secmem
{

/** Bits per minor counter in the split scheme (paper default: 7). */
constexpr unsigned kMinorBits = 7;
/** Data blocks covered by one split counter block (the encryption page). */
constexpr unsigned kBlocksPerPage = 64;
/** Encryption page size: 64 blocks x 64 bytes. */
constexpr std::size_t kPageBytes = kBlocksPerPage * kBlockBytes;

/** Codec for the paper's split counter block layout. */
class SplitCounterBlock
{
  public:
    explicit SplitCounterBlock(Block64 raw = {}) : raw_(raw) {}

    std::uint64_t major() const;
    void setMajor(std::uint64_t m);

    /** Minor counter for in-page block index @p i (0..63). */
    unsigned minor(unsigned i) const;
    void setMinor(unsigned i, unsigned value);

    /** Zero all 64 minor counters (page re-encryption step). */
    void clearMinors();

    /** Maximum minor value before overflow: 2^7 - 1 = 127. */
    static constexpr unsigned maxMinor() { return (1u << kMinorBits) - 1; }

    /**
     * The overall counter fed to the encryption seed for block @p i:
     * (major << 7) | minor, the concatenation from paper Figure 2.
     */
    std::uint64_t
    counterFor(unsigned i) const
    {
        return (major() << kMinorBits) | minor(i);
    }

    const Block64 &raw() const { return raw_; }
    Block64 &raw() { return raw_; }

  private:
    Block64 raw_;
};

/** Codec for W-bit monolithic counters packed into one block. */
class MonoCounterBlock
{
  public:
    MonoCounterBlock(unsigned width_bits, Block64 raw = {});

    /** Counters stored per 64-byte block: 512 / width. */
    unsigned countersPerBlock() const { return 512 / width_; }

    /** Counter value for in-block slot @p i. */
    std::uint64_t counter(unsigned i) const;
    void setCounter(unsigned i, std::uint64_t value);

    /**
     * Increment slot @p i modulo 2^width.
     * @retval true the counter wrapped (whole-memory re-encryption in
     *              prior schemes).
     */
    bool increment(unsigned i);

    unsigned widthBits() const { return width_; }
    const Block64 &raw() const { return raw_; }
    Block64 &raw() { return raw_; }

  private:
    unsigned width_;
    Block64 raw_;
};

} // namespace secmem

#endif // SECMEM_ENC_COUNTERS_HH
