/**
 * @file
 * Experiment harness: runs (scheme x workload) sweeps and extracts the
 * metrics the paper's tables and figures report.
 *
 * Simulation length defaults come from the SECMEM_SIM_INSTRS and
 * SECMEM_WARMUP_INSTRS environment variables (defaults: 800,000
 * measured after 600,000 warm-up — the paper used 1 B after 5 B of
 * fast-forward; see EXPERIMENTS.md for the scaling discussion). The
 * environment is read once per process; callers that need different
 * lengths (figures with lighter sweeps, the src/exp job engine) pass
 * an explicit RunLengths instead of mutating the environment.
 */

#ifndef SECMEM_HARNESS_RUNNER_HH
#define SECMEM_HARNESS_RUNNER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/system.hh"
#include "workload/spec_profiles.hh"

namespace secmem
{

namespace obs
{
class Sampler;
class TraceSink;
} // namespace obs

/**
 * Observation-only attachments for one simulation run. Everything here
 * is read-out instrumentation: an attached observer never changes the
 * run's timing or its RunOutput (tested), so runs with and without
 * observers share result-store entries.
 */
struct RunObservers
{
    /** Cycle-level event trace of the memory controller. */
    obs::TraceSink *trace = nullptr;
    /** Periodic stat-registry time series (see obs::Sampler). */
    obs::Sampler *sampler = nullptr;
};

/** Everything a figure might want from one simulation run. */
struct RunOutput
{
    std::string workload;
    std::string scheme;

    double ipc = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double simSeconds = 0.0; ///< cycles / 5 GHz

    double l2MissRate = 0.0;
    double ctrHitRate = 0.0;
    double ctrHalfMissRate = 0.0;
    double macHitRate = 0.0;
    double timelyPadRate = 0.0;
    double predRate = 0.0;
    double busUtilization = 0.0;
    double avgAuthLevels = 0.0;

    std::uint64_t writebacks = 0;
    std::uint64_t maxBlockWritebacks = 0;
    std::uint64_t freezes = 0;
    std::uint64_t pageReencs = 0;
    std::uint64_t authFailures = 0;
    double reencOnchipFraction = 0.0;
    double reencAvgCycles = 0.0;
    double reencAvgConcurrent = 0.0;
    std::uint64_t reencRsrStalls = 0;
    std::uint64_t reencPageConflicts = 0;

    /** Fastest-counter growth rate per simulated second (Table 2). */
    double counterGrowthPerSec = 0.0;
    /** Global-counter (total write-back) rate per second (Table 2). */
    double writebackRatePerSec = 0.0;

    /**
     * Full hierarchical stat dump of the run's system, as the JSON
     * object produced by obs::StatRegistry::dumpJson (counter-cache
     * hits/misses, re-encryption counts, DRAM traffic, GHASH chunks,
     * ...). Purely an observation — never feeds back into timing.
     */
    std::string statsJson;

    /**
     * Set by the experiment engine when the job's simulation could not
     * complete (crashed, panicked, or timed out on every attempt); the
     * metric fields above are then meaningless. Failed outputs are
     * never persisted to the result store.
     */
    bool failed = false;
    std::string error; ///< human-readable failure cause when failed
};

/** Warm-up + measured instruction budget for one simulation run. */
struct RunLengths
{
    std::uint64_t warmup = 0;
    std::uint64_t sim = 0;

    bool operator==(const RunLengths &) const = default;
};

/**
 * Environment-derived run lengths. The environment variables are read
 * exactly once per process (the values are cached), so concurrent jobs
 * never race against getenv/setenv; later setenv calls have no effect.
 */
std::uint64_t simInstructions();
std::uint64_t warmupInstructions();

/** Cached {warmupInstructions(), simInstructions()} pair. */
RunLengths defaultRunLengths();

/**
 * Per-field environment override of @p fallback: each count comes from
 * its (cached) environment variable when that variable was set, and
 * from @p fallback otherwise. This is how figures with lighter default
 * sweeps (Figures 5/8/10, the re-encryption ablation) honour a pinned
 * SECMEM_*_INSTRS without mutating the environment.
 */
RunLengths envRunLengths(RunLengths fallback);

/** Run @p profile on a fresh system configured by @p cfg. */
RunOutput runWorkload(const SpecProfile &profile, const SecureMemConfig &cfg,
                      const CoreParams &core = {},
                      const SystemParams &sys = {});

/**
 * Same, with an explicit instruction budget instead of the cached env,
 * plus optional observers (trace sink, time-series sampler). Observers
 * never change timing or the returned RunOutput.
 */
RunOutput runWorkload(const SpecProfile &profile, const SecureMemConfig &cfg,
                      const CoreParams &core, const SystemParams &sys,
                      RunLengths lengths,
                      const RunObservers &observers = {});

/**
 * Run a whole sweep: every profile in @p workloads against @p cfg.
 * Results arrive in workload order.
 */
std::vector<RunOutput> runSweep(const std::vector<SpecProfile> &workloads,
                                const SecureMemConfig &cfg);

/** Normalized-IPC helper: ipc(run) / ipc(baseline of same workload). */
double normalizedIpc(const RunOutput &run, const RunOutput &baseline);

/**
 * Cache of baseline (no enc, no auth) runs keyed by workload name, so
 * figures that share the baseline don't re-simulate it.
 */
class BaselineCache
{
  public:
    const RunOutput &get(const SpecProfile &profile);

  private:
    std::map<std::string, RunOutput> cache_;
};

} // namespace secmem

#endif // SECMEM_HARNESS_RUNNER_HH
