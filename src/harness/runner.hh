/**
 * @file
 * Experiment harness: runs (scheme x workload) sweeps and extracts the
 * metrics the paper's tables and figures report.
 *
 * Simulation length is controlled by the SECMEM_SIM_INSTRS and
 * SECMEM_WARMUP_INSTRS environment variables (defaults: 1,000,000
 * measured after 100,000 warm-up — the paper used 1 B after 5 B of
 * fast-forward; see EXPERIMENTS.md for the scaling discussion).
 */

#ifndef SECMEM_HARNESS_RUNNER_HH
#define SECMEM_HARNESS_RUNNER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/system.hh"
#include "workload/spec_profiles.hh"

namespace secmem
{

/** Everything a figure might want from one simulation run. */
struct RunOutput
{
    std::string workload;
    std::string scheme;

    double ipc = 0.0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double simSeconds = 0.0; ///< cycles / 5 GHz

    double l2MissRate = 0.0;
    double ctrHitRate = 0.0;
    double ctrHalfMissRate = 0.0;
    double macHitRate = 0.0;
    double timelyPadRate = 0.0;
    double predRate = 0.0;
    double busUtilization = 0.0;
    double avgAuthLevels = 0.0;

    std::uint64_t writebacks = 0;
    std::uint64_t maxBlockWritebacks = 0;
    std::uint64_t freezes = 0;
    std::uint64_t pageReencs = 0;
    std::uint64_t authFailures = 0;
    double reencOnchipFraction = 0.0;
    double reencAvgCycles = 0.0;
    double reencAvgConcurrent = 0.0;
    std::uint64_t reencRsrStalls = 0;
    std::uint64_t reencPageConflicts = 0;

    /** Fastest-counter growth rate per simulated second (Table 2). */
    double counterGrowthPerSec = 0.0;
    /** Global-counter (total write-back) rate per second (Table 2). */
    double writebackRatePerSec = 0.0;
};

/** Measured-instruction count from the environment (default 1M). */
std::uint64_t simInstructions();
/** Warm-up instruction count from the environment (default 100k). */
std::uint64_t warmupInstructions();

/** Run @p profile on a fresh system configured by @p cfg. */
RunOutput runWorkload(const SpecProfile &profile, const SecureMemConfig &cfg,
                      const CoreParams &core = {},
                      const SystemParams &sys = {});

/**
 * Run a whole sweep: every profile in @p workloads against @p cfg.
 * Results arrive in workload order.
 */
std::vector<RunOutput> runSweep(const std::vector<SpecProfile> &workloads,
                                const SecureMemConfig &cfg);

/** Normalized-IPC helper: ipc(run) / ipc(baseline of same workload). */
double normalizedIpc(const RunOutput &run, const RunOutput &baseline);

/**
 * Cache of baseline (no enc, no auth) runs keyed by workload name, so
 * figures that share the baseline don't re-simulate it.
 */
class BaselineCache
{
  public:
    const RunOutput &get(const SpecProfile &profile);

  private:
    std::map<std::string, RunOutput> cache_;
};

} // namespace secmem

#endif // SECMEM_HARNESS_RUNNER_HH
