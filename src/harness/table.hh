/**
 * @file
 * Plain-text table formatting for the figure/table reproduction
 * binaries: fixed-width ASCII output plus optional CSV dumping.
 */

#ifndef SECMEM_HARNESS_TABLE_HH
#define SECMEM_HARNESS_TABLE_HH

#include <string>
#include <vector>

namespace secmem
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV. */
    std::string csv() const;

    /** Print render() to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers. */
std::string fmtDouble(double v, int precision = 3);
std::string fmtPercent(double v, int precision = 1);

} // namespace secmem

#endif // SECMEM_HARNESS_TABLE_HH
