/**
 * @file
 * Chaos campaign: end-to-end resilience validation of the secure
 * memory controller under sustained fault weather.
 *
 * A chaos campaign replays a synthetic SPEC workload against a live
 * controller while a FaultStorm (src/attack/chaos.hh) arms transient
 * read-path glitches — and optionally lands persistent DRAM damage —
 * on the access paths the workload is about to use. Unlike the probed
 * fault-injection campaign (campaign.hh), nothing is restored between
 * events; the campaign instead maintains an expected-plaintext oracle
 * and asserts the one property the whole recovery stack exists to
 * provide: *no silent corruption*. Every read that completes with
 * AccessStatus::Ok must return exactly the last value written (zero
 * for never-written blocks); faults must surface as recoveries,
 * quarantines, or at minimum structured tamper reports.
 *
 * runChaosFleet shards a campaign across seeds and runs the shards on
 * a small thread pool; results are aggregated in shard order, so fleet
 * totals are bit-identical between --jobs 1 and --jobs N.
 */

#ifndef SECMEM_HARNESS_CHAOS_HH
#define SECMEM_HARNESS_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/chaos.hh"
#include "core/tamper.hh"

namespace secmem
{

struct ChaosConfig
{
    std::uint64_t seed = 1;
    std::string workload = "ammp";
    std::string scheme = "splitGcm";
    /** Memory accesses to replay through the storm. */
    std::uint64_t events = 10000;
    TamperPolicy policy = TamperPolicy::Quarantine;
    RecoveryConfig recovery{};
    StormConfig storm{};
    /**
     * Shadow-execute against the untimed reference model. Forces
     * storm.persistentRate to zero: a write that lands on persistently
     * corrupted metadata "repairs" it in ways the reference model
     * cannot track, so only transient weather is oracle-compatible.
     */
    bool verifyModel = false;
};

/** Outcome of one chaos campaign shard. */
struct ChaosResult
{
    ChaosConfig cfg;

    std::uint64_t memOps = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    /** Oracle-checked clean reads (status Ok, value compared). */
    std::uint64_t checkedReads = 0;
    /** Clean reads whose data did not match the oracle — must be 0. */
    std::uint64_t silentCorruptions = 0;

    // Controller-side recovery accounting (from the stat registry).
    std::uint64_t detected = 0; ///< tamper reports raised
    std::uint64_t retries = 0;
    std::uint64_t recovered = 0;
    std::uint64_t escalations = 0;
    std::uint64_t exhausted = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t blockedReads = 0;
    std::uint64_t blockedWrites = 0;
    std::uint64_t quarantinedAtEnd = 0;

    /** Shadow-model divergences recorded (verify-model runs only). */
    std::uint64_t divergences = 0;

    StormStats storm;
    bool halted = false;

    std::string toJson() const;
};

/** Fleet = N shards of the same campaign under different seeds. */
struct ChaosFleetResult
{
    std::vector<ChaosResult> shards; ///< in shard order, always
    ChaosResult totals;              ///< field-wise sums (cfg = base)

    std::string toJson() const;
};

/** Run one chaos campaign (deterministic in cfg). */
ChaosResult runChaosCampaign(const ChaosConfig &cfg);

/**
 * Run @p shards campaigns (seed = base.seed + shard index) on up to
 * @p jobs threads. Aggregation is by shard order, independent of
 * completion order: fleet output is identical for any jobs value.
 */
ChaosFleetResult runChaosFleet(const ChaosConfig &base, unsigned shards,
                               unsigned jobs);

} // namespace secmem

#endif // SECMEM_HARNESS_CHAOS_HH
