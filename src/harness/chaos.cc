#include "harness/chaos.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "harness/campaign.hh"
#include "ref/shadow.hh"
#include "sim/log.hh"
#include "workload/spec_profiles.hh"

namespace secmem
{

namespace
{

void
jsonKey(std::ostream &os, const char *key)
{
    os << '"' << key << "\": ";
}

void
emitResultFields(std::ostream &os, const ChaosResult &r,
                 const std::string &indent)
{
    auto field = [&](const char *key, std::uint64_t v, bool comma = true) {
        os << '\n' << indent;
        jsonKey(os, key);
        os << v;
        if (comma)
            os << ',';
    };
    field("mem_ops", r.memOps);
    field("reads", r.reads);
    field("writes", r.writes);
    field("checked_reads", r.checkedReads);
    field("silent_corruptions", r.silentCorruptions);
    field("detected", r.detected);
    field("retries", r.retries);
    field("recovered", r.recovered);
    field("escalations", r.escalations);
    field("exhausted", r.exhausted);
    field("quarantines", r.quarantines);
    field("blocked_reads", r.blockedReads);
    field("blocked_writes", r.blockedWrites);
    field("quarantined_at_end", r.quarantinedAtEnd);
    field("divergences", r.divergences);
    field("transient_faults", r.storm.transientFaults);
    field("persistent_faults", r.storm.persistentFaults);
    field("data_faults", r.storm.dataFaults);
    field("ctr_faults", r.storm.ctrFaults);
    field("mac_faults", r.storm.macFaults);
    os << '\n' << indent;
    jsonKey(os, "halted");
    os << (r.halted ? "true" : "false");
}

} // namespace

ChaosResult
runChaosCampaign(const ChaosConfig &cfg_in)
{
    ChaosConfig cfg = cfg_in;
    if (cfg.verifyModel && cfg.storm.persistentRate > 0.0) {
        SECMEM_WARN("chaos: verify-model forces persistent fault rate "
                    "%.3f -> 0 (write-path repairs diverge the shadow "
                    "counter state legitimately)",
                    cfg.storm.persistentRate);
        cfg.storm.persistentRate = 0.0;
    }
    // Shadow-model campaigns also confine transients to load-path data
    // fetches: a fault consumed by a write's metadata fetch is detected,
    // yet the write commits, and the shadow (which only tracks clean
    // accesses) would legitimately diverge on the next read.
    if (cfg.verifyModel)
        cfg.storm.dataLoadsOnly = true;

    ChaosResult res;
    res.cfg = cfg;

    SecureMemConfig scfg = schemeConfigByName(cfg.scheme);
    scfg.verifyModel = cfg.verifyModel;
    SecureMemoryController ctrl(scfg);
    ctrl.setTamperPolicy(cfg.policy, cfg.recovery.maxRetries);
    ctrl.setRecoveryConfig(cfg.recovery);
    if (ctrl.shadowModel())
        ctrl.shadowModel()->setPanic(false);

    SpecProfile profile = profileByName(cfg.workload);
    profile.seed = cfg.seed;
    SpecWorkload wl(profile);

    StormConfig storm_cfg = cfg.storm;
    storm_cfg.seed = cfg.seed ^ storm_cfg.seed;
    FaultStorm storm(ctrl, storm_cfg);

    // Expected-plaintext oracle: last value the campaign wrote to each
    // block; unwritten blocks read as zero. A write blocked by
    // quarantine never reached the datapath, so it must not advance
    // the oracle either.
    std::unordered_map<Addr, Block64> expected;
    const Block64 kZero{};

    Tick now = 0;
    std::uint64_t store_serial = 0;
    while (res.memOps < cfg.events && !ctrl.halted()) {
        TraceOp op = wl.next();
        if (!op.isMem)
            continue;
        Addr base = blockBase(op.addr);
        storm.beforeAccess(base, op.isStore);
        if (op.isStore) {
            Block64 v;
            std::uint64_t fill =
                (++store_serial) * 0x9e3779b97f4a7c15ull ^ cfg.seed;
            std::memcpy(v.b.data(), &fill, sizeof(fill));
            bool blocked = ctrl.isQuarantined(base);
            now = ctrl.writeBlock(base, v, now + 1);
            if (!blocked)
                expected[base] = v;
            ++res.writes;
        } else {
            Block64 out;
            AccessTiming t = ctrl.readBlock(base, now + 1, &out);
            now = t.authDone;
            ++res.reads;
            if (t.status == AccessStatus::Ok) {
                auto it = expected.find(base);
                const Block64 &want =
                    it == expected.end() ? kZero : it->second;
                ++res.checkedReads;
                if (!(out == want)) {
                    ++res.silentCorruptions;
                    SECMEM_WARN("chaos: SILENT CORRUPTION at %#llx "
                                "(op %llu): clean read returned wrong "
                                "data",
                                static_cast<unsigned long long>(base),
                                static_cast<unsigned long long>(
                                    res.memOps));
                }
            }
        }
        ++res.memOps;
    }

    stats::Group &st = ctrl.stats();
    res.detected = ctrl.reports().size() + ctrl.reportsDropped();
    res.retries = st.counter("tamper_retries").value();
    res.recovered = st.counter("tamper_recoveries").value();
    res.escalations = st.counter("recovery_escalations").value();
    res.exhausted = st.counter("recovery_exhausted").value();
    res.quarantines = st.counter("quarantines").value();
    res.blockedReads = ctrl.quarantineBlockedReads();
    res.blockedWrites = ctrl.quarantineBlockedWrites();
    res.quarantinedAtEnd = ctrl.quarantineCount();
    if (ctrl.shadowModel())
        res.divergences = ctrl.shadowModel()->divergences().size();
    res.storm = storm.stats();
    res.halted = ctrl.halted();
    return res;
}

ChaosFleetResult
runChaosFleet(const ChaosConfig &base, unsigned shards, unsigned jobs)
{
    ChaosFleetResult fleet;
    fleet.shards.resize(std::max(1u, shards));
    if (jobs == 0)
        jobs = 1;

    // Shard i is fully determined by (base, i); which thread runs it
    // is irrelevant. Results land by shard index and are aggregated
    // below in shard order, so the fleet is deterministic in `jobs`.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= fleet.shards.size())
                return;
            ChaosConfig cfg = base;
            cfg.seed = base.seed + i;
            fleet.shards[i] = runChaosCampaign(cfg);
        }
    };

    unsigned n_threads =
        std::min<unsigned>(jobs, static_cast<unsigned>(fleet.shards.size()));
    if (n_threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n_threads);
        for (unsigned t = 0; t < n_threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    fleet.totals.cfg = base;
    for (const ChaosResult &r : fleet.shards) {
        fleet.totals.memOps += r.memOps;
        fleet.totals.reads += r.reads;
        fleet.totals.writes += r.writes;
        fleet.totals.checkedReads += r.checkedReads;
        fleet.totals.silentCorruptions += r.silentCorruptions;
        fleet.totals.detected += r.detected;
        fleet.totals.retries += r.retries;
        fleet.totals.recovered += r.recovered;
        fleet.totals.escalations += r.escalations;
        fleet.totals.exhausted += r.exhausted;
        fleet.totals.quarantines += r.quarantines;
        fleet.totals.blockedReads += r.blockedReads;
        fleet.totals.blockedWrites += r.blockedWrites;
        fleet.totals.quarantinedAtEnd += r.quarantinedAtEnd;
        fleet.totals.divergences += r.divergences;
        fleet.totals.storm.transientFaults += r.storm.transientFaults;
        fleet.totals.storm.persistentFaults += r.storm.persistentFaults;
        fleet.totals.storm.dataFaults += r.storm.dataFaults;
        fleet.totals.storm.ctrFaults += r.storm.ctrFaults;
        fleet.totals.storm.macFaults += r.storm.macFaults;
        fleet.totals.halted = fleet.totals.halted || r.halted;
    }
    return fleet;
}

std::string
ChaosResult::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"config\": {";
    jsonKey(os << "\n    ", "seed");
    os << cfg.seed << ',';
    jsonKey(os << "\n    ", "workload");
    os << '"' << cfg.workload << "\",";
    jsonKey(os << "\n    ", "scheme");
    os << '"' << cfg.scheme << "\",";
    jsonKey(os << "\n    ", "events");
    os << cfg.events << ',';
    jsonKey(os << "\n    ", "policy");
    os << '"' << toString(cfg.policy) << "\",";
    jsonKey(os << "\n    ", "max_retries");
    os << cfg.recovery.maxRetries << ',';
    jsonKey(os << "\n    ", "transient_rate");
    os << cfg.storm.transientRate << ',';
    jsonKey(os << "\n    ", "persistent_rate");
    os << cfg.storm.persistentRate << ',';
    jsonKey(os << "\n    ", "meta_fraction");
    os << cfg.storm.metaFraction << ',';
    jsonKey(os << "\n    ", "verify_model");
    os << (cfg.verifyModel ? "true" : "false");
    os << "\n  },";
    emitResultFields(os, *this, "  ");
    os << "\n}";
    return os.str();
}

std::string
ChaosFleetResult::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"shards\": [";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        os << (i ? "," : "") << "\n    {";
        jsonKey(os << "\n      ", "seed");
        os << shards[i].cfg.seed << ',';
        emitResultFields(os, shards[i], "      ");
        os << "\n    }";
    }
    os << "\n  ],\n  \"totals\": {";
    emitResultFields(os, totals, "    ");
    os << "\n  }\n}";
    return os.str();
}

} // namespace secmem
