#include "harness/table.hh"

#include <cstdio>
#include <sstream>

#include "sim/log.hh"

namespace secmem
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    SECMEM_ASSERT(cells.size() == headers_.size(),
                  "row has %zu cells, expected %zu", cells.size(),
                  headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(width[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TextTable::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtPercent(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

} // namespace secmem
