/**
 * @file
 * Adversarial fault-injection campaign: replay a trace workload against
 * a live secure-memory controller while a TamperInjector stages attacks
 * from every primitive class, then report detection coverage.
 *
 * The campaign is the robustness counterpart of the performance
 * harness: instead of IPC it measures whether the paper's protection
 * scheme catches every integrity-affecting modification, which check
 * catches it (GCM leaf tag, counter authentication, tree level), and
 * how long detection takes. Results serialize to JSON so external
 * tooling (and scripts/check.sh) can assert 100% detection.
 */

#ifndef SECMEM_HARNESS_CAMPAIGN_HH
#define SECMEM_HARNESS_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <string>

#include "attack/injector.hh"
#include "core/config.hh"
#include "core/tamper.hh"

namespace secmem
{

/** One campaign's parameters; everything needed to reproduce it. */
struct CampaignConfig
{
    std::uint64_t seed = 1;
    std::string workload = "mcf";     ///< SpecProfile name
    std::string scheme = "splitGcm";  ///< see schemeConfigByName()
    std::uint64_t memOps = 20000;     ///< memory operations to replay
    std::uint64_t injectEvery = 64;   ///< injection cadence (accesses)
    double transientFraction = 0.0;   ///< share of rounds gone transient
    TamperPolicy policy = TamperPolicy::ReportAndContinue;
    unsigned maxRetries = 2;          ///< RetryRefetch budget
};

/** Aggregate outcome for one attack class. */
struct AttackClassStats
{
    std::uint64_t attempted = 0;
    std::uint64_t staged = 0;   ///< bytes actually corrupted / armed
    std::uint64_t detected = 0;
    std::uint64_t recovered = 0; ///< detections that re-verified cleanly
    std::uint64_t quarantined = 0; ///< budget-exhausted quarantines
    double latencySum = 0.0;     ///< ticks, over detections
    double latencyMin = 0.0;
    double latencyMax = 0.0;
    /** Detections by detecting layer ("leaf-tag", "tree-node:L2"...). */
    std::map<std::string, std::uint64_t> byCheck;

    double
    latencyMean() const
    {
        return detected ? latencySum / static_cast<double>(detected) : 0.0;
    }
};

/** Full campaign outcome. */
struct CampaignResult
{
    CampaignConfig cfg;

    std::uint64_t memOps = 0;     ///< workload operations replayed
    std::uint64_t injections = 0; ///< rounds attempted
    std::uint64_t staged = 0;
    std::uint64_t detected = 0;
    std::uint64_t undetectedStaged = 0;
    std::uint64_t recovered = 0;
    std::uint64_t quarantined = 0; ///< budget-exhausted quarantines
    std::uint64_t escalations = 0; ///< recovery stage transitions
    std::uint64_t transientStaged = 0;
    std::uint64_t transientRecovered = 0;

    /** Distinct attack classes that staged at least one injection. */
    unsigned distinctClasses = 0;
    /** Controller reports not matched to an injection probe (want 0). */
    std::uint64_t unattributedReports = 0;
    /** True when a Halt-policy detection stopped the controller. */
    bool halted = false;
    /** Every staged (integrity-affecting) injection was detected. */
    bool allDetected = false;

    std::map<std::string, AttackClassStats> perClass; ///< by attack kind
    std::map<std::string, std::uint64_t> byRegion;    ///< staged, by region

    /** Serialize everything above as a self-contained JSON object. */
    std::string toJson() const;
};

/**
 * Resolve a scheme name to its configuration. Accepts the factory
 * names (baseline, direct, split, gcmAuthOnly, splitGcm, monoGcm,
 * splitSha, monoSha) plus "splitGcmNoCtrAuth" — splitGcm with counter
 * authentication disabled, the paper's §4.3 vulnerable variant.
 * Aborts on unknown names.
 */
SecureMemConfig schemeConfigByName(const std::string &name);

/** Run one campaign to completion. */
CampaignResult runCampaign(const CampaignConfig &cfg);

} // namespace secmem

#endif // SECMEM_HARNESS_CAMPAIGN_HH
