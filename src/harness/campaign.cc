#include "harness/campaign.hh"

#include <cstring>
#include <sstream>

#include "sim/log.hh"
#include "workload/spec_profiles.hh"

namespace secmem
{

SecureMemConfig
schemeConfigByName(const std::string &name)
{
    if (name == "baseline")
        return SecureMemConfig::baseline();
    if (name == "direct")
        return SecureMemConfig::direct();
    if (name == "split")
        return SecureMemConfig::split();
    if (name == "gcmAuthOnly")
        return SecureMemConfig::gcmAuthOnly();
    if (name == "splitGcm")
        return SecureMemConfig::splitGcm();
    if (name == "monoGcm")
        return SecureMemConfig::monoGcm();
    if (name == "splitSha")
        return SecureMemConfig::splitSha();
    if (name == "monoSha")
        return SecureMemConfig::monoSha();
    if (name == "splitGcmNoCtrAuth") {
        SecureMemConfig cfg = SecureMemConfig::splitGcm();
        cfg.authenticateCounters = false;
        return cfg;
    }
    SECMEM_PANIC("unknown scheme name '%s'", name.c_str());
}

namespace
{

/** Label the detecting layer: "leaf-tag", "ctr-auth", "tree-node:L2". */
std::string
checkLabel(const Injection &inj)
{
    std::string label = toString(inj.check);
    if (inj.check == TamperCheck::TreeNode)
        label += ":L" + std::to_string(inj.level);
    return label;
}

void
jsonKey(std::ostream &os, const std::string &key)
{
    os << '"' << key << "\": ";
}

} // namespace

CampaignResult
runCampaign(const CampaignConfig &cfg)
{
    CampaignResult res;
    res.cfg = cfg;

    SecureMemConfig scfg = schemeConfigByName(cfg.scheme);
    SecureMemoryController ctrl(scfg);
    ctrl.setTamperPolicy(cfg.policy, cfg.maxRetries);

    SpecProfile profile = profileByName(cfg.workload);
    profile.seed = cfg.seed;
    SpecWorkload wl(profile);

    TamperInjector inj(ctrl, cfg.seed ^ 0xadc0ffeeULL,
                       InjectionSchedule{cfg.injectEvery, 0.0});
    inj.setTransientFraction(cfg.transientFraction);

    Tick now = 0;
    std::uint64_t store_serial = 0;
    while (res.memOps < cfg.memOps && !ctrl.halted()) {
        TraceOp op = wl.next();
        if (!op.isMem)
            continue;
        Addr base = blockBase(op.addr);
        bool fire = inj.noteAccess(base, op.isStore);
        if (op.isStore) {
            Block64 v;
            std::uint64_t fill =
                (++store_serial) * 0x9e3779b97f4a7c15ull ^ cfg.seed;
            std::memcpy(v.b.data(), &fill, sizeof(fill));
            now = ctrl.writeBlock(base, v, now + 1);
        } else {
            Block64 out;
            AccessTiming t = ctrl.readBlock(base, now + 1, &out);
            now = t.authDone;
        }
        ++res.memOps;
        if (fire && !ctrl.halted())
            inj.injectNext(now);
    }

    // Aggregate the injection log.
    for (const Injection &i : inj.log()) {
        ++res.injections;
        std::string kind = toString(i.kind);
        if (i.transient)
            kind += "-transient";
        AttackClassStats &cls = res.perClass[kind];
        ++cls.attempted;
        if (!i.staged)
            continue;
        ++res.staged;
        ++cls.staged;
        res.byRegion[toString(i.region)] += 1;
        if (i.transient)
            ++res.transientStaged;
        if (i.detected) {
            ++res.detected;
            ++cls.detected;
            ++cls.byCheck[checkLabel(i)];
            double lat = static_cast<double>(i.latency);
            if (cls.detected == 1)
                cls.latencyMin = cls.latencyMax = lat;
            cls.latencyMin = std::min(cls.latencyMin, lat);
            cls.latencyMax = std::max(cls.latencyMax, lat);
            cls.latencySum += lat;
            if (i.recovered) {
                ++res.recovered;
                ++cls.recovered;
                if (i.transient)
                    ++res.transientRecovered;
            }
            if (i.quarantined) {
                ++res.quarantined;
                ++cls.quarantined;
            }
            res.escalations += i.escalations;
        } else {
            ++res.undetectedStaged;
        }
    }
    for (const auto &kv : res.perClass)
        if (kv.second.staged)
            ++res.distinctClasses;

    // Every controller report should correspond to an injection probe;
    // anything beyond that means an attack leaked into the workload.
    std::uint64_t total_reports =
        ctrl.reports().size() + ctrl.reportsDropped();
    res.unattributedReports =
        total_reports > res.detected ? total_reports - res.detected : 0;
    res.halted = ctrl.halted();
    res.allDetected = res.staged > 0 && res.undetectedStaged == 0;
    return res;
}

std::string
CampaignResult::toJson() const
{
    std::ostringstream os;
    os << "{\n  \"config\": {";
    jsonKey(os << "\n    ", "seed");
    os << cfg.seed << ',';
    jsonKey(os << "\n    ", "workload");
    os << '"' << cfg.workload << "\",";
    jsonKey(os << "\n    ", "scheme");
    os << '"' << cfg.scheme << "\",";
    jsonKey(os << "\n    ", "mem_ops");
    os << cfg.memOps << ',';
    jsonKey(os << "\n    ", "inject_every");
    os << cfg.injectEvery << ',';
    jsonKey(os << "\n    ", "transient_fraction");
    os << cfg.transientFraction << ',';
    jsonKey(os << "\n    ", "policy");
    os << '"' << toString(cfg.policy) << "\",";
    jsonKey(os << "\n    ", "max_retries");
    os << cfg.maxRetries;
    os << "\n  },";

    jsonKey(os << "\n  ", "mem_ops_replayed");
    os << memOps << ',';
    jsonKey(os << "\n  ", "injections");
    os << injections << ',';
    jsonKey(os << "\n  ", "staged");
    os << staged << ',';
    jsonKey(os << "\n  ", "detected");
    os << detected << ',';
    jsonKey(os << "\n  ", "undetected_staged");
    os << undetectedStaged << ',';
    jsonKey(os << "\n  ", "recovered");
    os << recovered << ',';
    jsonKey(os << "\n  ", "quarantined");
    os << quarantined << ',';
    jsonKey(os << "\n  ", "escalations");
    os << escalations << ',';
    jsonKey(os << "\n  ", "transient_staged");
    os << transientStaged << ',';
    jsonKey(os << "\n  ", "transient_recovered");
    os << transientRecovered << ',';
    jsonKey(os << "\n  ", "distinct_classes");
    os << distinctClasses << ',';
    jsonKey(os << "\n  ", "unattributed_reports");
    os << unattributedReports << ',';
    jsonKey(os << "\n  ", "halted");
    os << (halted ? "true" : "false") << ',';
    jsonKey(os << "\n  ", "all_detected");
    os << (allDetected ? "true" : "false") << ',';

    jsonKey(os << "\n  ", "by_region");
    os << '{';
    bool first = true;
    for (const auto &kv : byRegion) {
        os << (first ? "" : ", ") << '"' << kv.first << "\": " << kv.second;
        first = false;
    }
    os << "},";

    jsonKey(os << "\n  ", "per_class");
    os << '{';
    first = true;
    for (const auto &kv : perClass) {
        const AttackClassStats &c = kv.second;
        os << (first ? "" : ",") << "\n    \"" << kv.first << "\": {";
        jsonKey(os, "attempted");
        os << c.attempted << ", ";
        jsonKey(os, "staged");
        os << c.staged << ", ";
        jsonKey(os, "detected");
        os << c.detected << ", ";
        jsonKey(os, "recovered");
        os << c.recovered << ", ";
        jsonKey(os, "quarantined");
        os << c.quarantined << ", ";
        jsonKey(os, "latency");
        os << "{\"mean\": " << c.latencyMean() << ", \"min\": "
           << c.latencyMin << ", \"max\": " << c.latencyMax << "}, ";
        jsonKey(os, "by_check");
        os << '{';
        bool f2 = true;
        for (const auto &ck : c.byCheck) {
            os << (f2 ? "" : ", ") << '"' << ck.first << "\": " << ck.second;
            f2 = false;
        }
        os << "}}";
        first = false;
    }
    os << "\n  }\n}";
    return os.str();
}

} // namespace secmem
