#include "harness/runner.hh"

#include <cstdlib>

#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/log.hh"

namespace secmem
{

namespace
{

/** One environment count, parsed eagerly; set_ records presence. */
struct EnvCount
{
    EnvCount(const char *name, std::uint64_t fallback) : value(fallback)
    {
        const char *v = std::getenv(name);
        if (!v || !*v)
            return;
        char *end = nullptr;
        unsigned long long parsed = std::strtoull(v, &end, 10);
        if (end == v || parsed == 0) {
            SECMEM_WARN("ignoring bad %s='%s'", name, v);
            return;
        }
        value = parsed;
        fromEnv = true;
    }

    std::uint64_t value;
    bool fromEnv = false;
};

/**
 * The environment is sampled once, on first use (thread-safe static
 * initialization); simulation jobs may then run on any thread without
 * racing against getenv, and figures pass explicit RunLengths instead
 * of calling setenv.
 */
const EnvCount &
simEnv()
{
    static const EnvCount e("SECMEM_SIM_INSTRS", 800'000);
    return e;
}

const EnvCount &
warmupEnv()
{
    static const EnvCount e("SECMEM_WARMUP_INSTRS", 600'000);
    return e;
}

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

} // namespace

std::uint64_t
simInstructions()
{
    return simEnv().value;
}

std::uint64_t
warmupInstructions()
{
    return warmupEnv().value;
}

RunLengths
defaultRunLengths()
{
    return {warmupInstructions(), simInstructions()};
}

RunLengths
envRunLengths(RunLengths fallback)
{
    return {warmupEnv().fromEnv ? warmupEnv().value : fallback.warmup,
            simEnv().fromEnv ? simEnv().value : fallback.sim};
}

RunOutput
runWorkload(const SpecProfile &profile, const SecureMemConfig &cfg,
            const CoreParams &core, const SystemParams &sys)
{
    return runWorkload(profile, cfg, core, sys, defaultRunLengths());
}

RunOutput
runWorkload(const SpecProfile &profile, const SecureMemConfig &cfg,
            const CoreParams &core, const SystemParams &sys,
            RunLengths lengths, const RunObservers &observers)
{
    SecureSystem system(cfg, sys);
    if (observers.trace)
        system.setTraceSink(observers.trace);
    // The registry is built before the run (groups register by
    // reference, so counters created during the run still appear in
    // the final dump) — the sampler polls it while simulating.
    obs::StatRegistry reg;
    system.registerStats(reg);
    if (observers.sampler) {
        observers.sampler->bind(&reg);
        system.setSampler(observers.sampler);
    }
    SpecWorkload gen(profile);
    CoreRunResult r = system.run(gen, lengths.warmup, lengths.sim, core);

    SecureMemoryController &ctrl = system.controller();
    const stats::Group &cs = ctrl.stats();

    RunOutput out;
    out.workload = profile.name;
    out.scheme = cfg.schemeName();
    out.ipc = r.ipc;
    out.instructions = r.instructions;
    out.cycles = r.cycles;
    out.simSeconds =
        static_cast<double>(r.finalTick) / static_cast<double>(kCoreHz);

    out.l2MissRate = system.l2MissRate();
    out.ctrHitRate = ctrl.ctrCache().hitRate();
    {
        std::uint64_t acc = ctrl.ctrCache().stats().counterValue("accesses");
        out.ctrHalfMissRate = ratio(cs.counterValue("ctr_halfmiss"), acc);
    }
    out.macHitRate = ctrl.macCache().hitRate();
    out.timelyPadRate =
        ratio(cs.counterValue("pad_timely"), cs.counterValue("pad_total"));
    out.predRate =
        ratio(cs.counterValue("pred_hits"), cs.counterValue("pred_total"));
    out.busUtilization = ctrl.bus().utilization(r.finalTick);

    // stats::Group is logically const here; samples are read-only uses.
    auto &mutable_cs = const_cast<stats::Group &>(cs);
    out.avgAuthLevels = mutable_cs.sample("auth_walk_levels").mean();
    out.reencAvgCycles = mutable_cs.sample("reenc_duration").mean();
    out.reencAvgConcurrent = mutable_cs.sample("reenc_concurrent").mean();

    out.writebacks = ctrl.totalWritebacks();
    out.maxBlockWritebacks = ctrl.maxBlockWritebacks();
    out.freezes = ctrl.freezeCount();
    out.pageReencs = ctrl.pageReencCount();
    out.authFailures = ctrl.authFailures();
    {
        std::uint64_t on = cs.counterValue("reenc_onchip_blocks");
        std::uint64_t off = cs.counterValue("reenc_offchip_blocks");
        out.reencOnchipFraction = ratio(on, on + off);
    }
    out.reencRsrStalls = cs.counterValue("reenc_rsr_stalls");
    out.reencPageConflicts = cs.counterValue("reenc_page_conflicts");

    if (out.simSeconds > 0) {
        out.counterGrowthPerSec =
            static_cast<double>(out.maxBlockWritebacks) / out.simSeconds;
        out.writebackRatePerSec =
            static_cast<double>(out.writebacks) / out.simSeconds;
    }

    out.statsJson = reg.jsonString();
    return out;
}

std::vector<RunOutput>
runSweep(const std::vector<SpecProfile> &workloads,
         const SecureMemConfig &cfg)
{
    std::vector<RunOutput> results;
    results.reserve(workloads.size());
    for (const SpecProfile &p : workloads)
        results.push_back(runWorkload(p, cfg));
    return results;
}

double
normalizedIpc(const RunOutput &run, const RunOutput &baseline)
{
    return baseline.ipc > 0 ? run.ipc / baseline.ipc : 0.0;
}

const RunOutput &
BaselineCache::get(const SpecProfile &profile)
{
    auto it = cache_.find(profile.name);
    if (it == cache_.end()) {
        it = cache_
                 .emplace(profile.name,
                          runWorkload(profile, SecureMemConfig::baseline()))
                 .first;
    }
    return it->second;
}

} // namespace secmem
