/**
 * @file
 * Interface between the core model and the memory hierarchy.
 */

#ifndef SECMEM_CPU_MEMORY_SYSTEM_HH
#define SECMEM_CPU_MEMORY_SYSTEM_HH

#include "sim/types.hh"

namespace secmem
{

/** Timing outcome of one memory operation. */
struct MemAccess
{
    Tick dataReady = 0; ///< value available to dependent instructions
    Tick authDone = 0;  ///< authentication complete (== dataReady if off)
    bool l2Miss = false;
};

/**
 * One operation of a dispatch-burst batch (see MemorySystem::accessRun).
 * The core fills addr/now/isWrite; the hierarchy fills out.
 */
struct MemBurstOp
{
    Addr addr = 0;
    Tick now = 0;
    bool isWrite = false;
    MemAccess out{};
};

/** Anything the core can issue loads and stores to. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Perform a load/store issued at @p now. */
    virtual MemAccess access(Addr addr, bool is_write, Tick now) = 0;

    /**
     * Perform @p n operations in order, exactly as n successive
     * access() calls would. The batched core loop issues a whole
     * dispatch burst through this when no operation's issue tick
     * depends on an earlier result in the same burst, so the hierarchy
     * pays one virtual dispatch per burst and can probe/fill the burst
     * in one pass (SecureSystem overrides this with an inlined L1
     * probe loop). Results and stats must be bit-identical to the
     * sequential path.
     */
    virtual void
    accessRun(MemBurstOp *ops, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            ops[i].out = access(ops[i].addr, ops[i].isWrite, ops[i].now);
    }

    /**
     * Advance the hierarchy's event kernel to @p cycle, the core's
     * monotonic dispatch frontier. The core promises every later
     * access() will carry now >= cycle (individual issue ticks are not
     * monotonic — a dependent load can issue after a younger
     * independent one — but the dispatch cycle only moves forward), so
     * the hierarchy may safely retire any event at or before @p cycle.
     */
    virtual void advanceTo(Tick cycle) { (void)cycle; }
};

} // namespace secmem

#endif // SECMEM_CPU_MEMORY_SYSTEM_HH
