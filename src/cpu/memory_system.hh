/**
 * @file
 * Interface between the core model and the memory hierarchy.
 */

#ifndef SECMEM_CPU_MEMORY_SYSTEM_HH
#define SECMEM_CPU_MEMORY_SYSTEM_HH

#include "sim/types.hh"

namespace secmem
{

/** Timing outcome of one memory operation. */
struct MemAccess
{
    Tick dataReady = 0; ///< value available to dependent instructions
    Tick authDone = 0;  ///< authentication complete (== dataReady if off)
    bool l2Miss = false;
};

/** Anything the core can issue loads and stores to. */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /** Perform a load/store issued at @p now. */
    virtual MemAccess access(Addr addr, bool is_write, Tick now) = 0;
};

} // namespace secmem

#endif // SECMEM_CPU_MEMORY_SYSTEM_HH
