#include "cpu/ooo_core.hh"

#include <algorithm>
#include <type_traits>
#include <vector>

#include "obs/profiler.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"
#include "workload/spec_profiles.hh"

namespace secmem
{

namespace
{

/**
 * Kernel-pump quantum (log2 cycles): mem_.advanceTo fires once per
 * 16-cycle window, immediately before the window's first memory
 * access, with the window base as its argument — a pure function of
 * the dispatch cycle. The old cadence (every 16 loop *iterations*,
 * with the raw cycle as the argument) made event ticks — and, through
 * the schedule clamp in SecureSystem::access, the events stat group —
 * depend on how many iterations the loop happened to execute: a
 * skip-ahead jump stretched the gap to thousands of cycles, and a
 * batched loop could not reproduce the sequence at all. Both loop
 * implementations share this rule, so their advanceTo calls
 * interleave identically with their access calls.
 */
constexpr unsigned kPumpWindowLog2 = 4;

/**
 * Ops pulled per nextRun refill when the batched loop runs a generic
 * WorkloadGenerator (one virtual call per run instead of per op). The
 * SpecWorkload instantiation never buffers: its next() is inline.
 */
constexpr unsigned kGenRun = 32;

/** Widest dispatch group the burst path handles on the stack. */
constexpr unsigned kMaxGroup = 8;

/**
 * Cap on ops the ALU steady-state collapse consumes per outer loop
 * iteration, bounding the gap between watchdog cancellation polls on
 * ALU-only workloads (the collapse resumes on the next iteration).
 */
constexpr std::uint64_t kMaxCollapsePull = 16384;

} // namespace

CoreRunResult
OooCore::run(WorkloadGenerator &gen, std::uint64_t warmup,
             std::uint64_t measured, Tick start_tick)
{
    if (auto *spec = dynamic_cast<SpecWorkload *>(&gen)) {
        return loop_ == CoreLoop::PerCycle
                   ? runLoopPerCycle(*spec, warmup, measured, start_tick)
                   : runLoopBatched(*spec, warmup, measured, start_tick);
    }
    return loop_ == CoreLoop::PerCycle
               ? runLoopPerCycle(gen, warmup, measured, start_tick)
               : runLoopBatched(gen, warmup, measured, start_tick);
}

void
OooCore::finishRun(CoreRunResult &res, std::uint64_t measured, Tick cycle,
                   Tick warmupEndCycle, Tick robStallCycles)
{
    res.instructions = measured;
    res.cycles = cycle - warmupEndCycle;
    res.ipc = res.cycles
                  ? static_cast<double>(measured) /
                        static_cast<double>(res.cycles)
                  : 0.0;
    res.finalTick = cycle;

    if (stats_) {
        stats_->counter("instructions").inc(res.instructions);
        stats_->counter("cycles").inc(res.cycles);
        stats_->counter("loads").inc(res.loads);
        stats_->counter("stores").inc(res.stores);
        stats_->counter("l2_misses").inc(res.l2Misses);
        stats_->counter("rob_stall_cycles").inc(robStallCycles);
    }
}

/**
 * The original per-cycle loop, preserved as the differential oracle
 * for runLoopBatched (same layering as the heap event kernel and the
 * naive crypto reference). Any semantic change here must keep the two
 * loops bit-identical — the harness differential suite and the CI leg
 * compare whole stats dumps across them.
 */
template <typename Gen>
CoreRunResult
OooCore::runLoopPerCycle(Gen &gen, std::uint64_t warmup,
                         std::uint64_t measured, Tick start_tick)
{
    SECMEM_PROF(Core);
    const std::uint64_t total = warmup + measured;

    // Reorder buffer: a fixed ring of retirement ticks, sized once for
    // the whole run. A deque here cost a paged allocation every few
    // hundred instructions; the ring is allocation-free and its head
    // test is one load on the retire fast path.
    std::vector<Tick> rob(params_.robSize);
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    auto robAdvance = [&rob](std::size_t i) {
        return i + 1 == rob.size() ? 0 : i + 1;
    };

    Tick cycle = start_tick;
    std::uint64_t dispatched = 0;
    std::uint64_t retired = 0;
    Tick warmupEndCycle = start_tick;

    CoreRunResult res;

    // Last load's completion (for dependence chains).
    Tick lastLoadComplete = 0;
    Tick robStallCycles = 0;
    // Outstanding L2-miss completion times (MSHR occupancy).
    std::vector<Tick> outstanding;

    auto pruneOutstanding = [&](Tick now) {
        outstanding.erase(
            std::remove_if(outstanding.begin(), outstanding.end(),
                           [now](Tick t) { return t <= now; }),
            outstanding.end());
    };

    // MSHR gating, shared by loads and stores. Prune lazily: completed
    // entries only matter once the MSHR count could gate an issue, so
    // the common under-occupancy case skips the scan entirely. When
    // the unpruned count trips the check, prune and re-check —
    // decisions match the eager-prune original (stale entries are
    // <= issue, so they never raise free_at above it).
    auto mshrGate = [&](Tick issue) {
        if (outstanding.size() >= params_.mshrs) {
            pruneOutstanding(issue);
            if (outstanding.size() >= params_.mshrs) {
                Tick free_at = *std::min_element(outstanding.begin(),
                                                 outstanding.end());
                issue = std::max(issue, free_at);
                pruneOutstanding(issue);
            }
        }
        return issue;
    };

    // Measured-window counter snapshots: loads/stores/misses are
    // counted at dispatch, so the warmup share is the value when the
    // first measured instruction dispatches (instructions/cycles
    // already covered only the measured window; before this snapshot
    // the miss-rate style stats mixed the two windows).
    std::uint64_t warmLoads = 0;
    std::uint64_t warmStores = 0;
    std::uint64_t warmMisses = 0;
    bool snapped = false;

    // Cycle-quantized kernel pump (see kPumpWindowLog2 above).
    Tick pumpedWindow = ~Tick{0};
    auto pump = [&] {
        Tick w = cycle >> kPumpWindowLog2;
        if (w != pumpedWindow) {
            pumpedWindow = w;
            mem_.advanceTo(w << kPumpWindowLog2);
        }
    };

    std::uint64_t cancelPoll = 0;
    while (retired < total) {
        // Cooperative cancellation for the engine watchdog: polled
        // every ~4k cycles so a hung-looking or over-budget job can be
        // unwound without killing its worker thread. A nop (one
        // relaxed thread-local load) when no cancel scope is active.
        if ((++cancelPoll & 0xfff) == 0)
            pollCancellation();

        // Retire up to `width` completed instructions in order.
        unsigned n_retired = 0;
        while (n_retired < params_.width && robCount != 0 &&
               rob[robHead] <= cycle) {
            robHead = robAdvance(robHead);
            --robCount;
            ++retired;
            ++n_retired;
            if (retired == warmup && warmup > 0)
                warmupEndCycle = cycle;
        }

        // Dispatch up to `width` new instructions.
        unsigned n_dispatched = 0;
        while (n_dispatched < params_.width && dispatched < total &&
               robCount < rob.size()) {
            if (!snapped && dispatched >= warmup) {
                warmLoads = res.loads;
                warmStores = res.stores;
                warmMisses = res.l2Misses;
                snapped = true;
            }
            TraceOp op = gen.next();
            Tick retire_at = cycle + 1;
            if (op.isMem && !op.isStore) {
                ++res.loads;
                Tick issue = cycle;
                if (op.dependsOnPrev)
                    issue = std::max(issue, lastLoadComplete);
                issue = mshrGate(issue);
                pump();
                MemAccess acc = mem_.access(op.addr, false, issue);
                if (acc.l2Miss) {
                    ++res.l2Misses;
                    outstanding.push_back(acc.dataReady);
                }
                Tick complete = mode_ == AuthMode::Safe ? acc.authDone
                                                        : acc.dataReady;
                Tick done = mode_ == AuthMode::Lazy ? acc.dataReady
                                                    : acc.authDone;
                lastLoadComplete = complete;
                retire_at = std::max<Tick>(cycle + 1, done);
            } else if (op.isMem) {
                ++res.stores;
                // Stores retire through the store buffer — retirement
                // never waits on them — but their fills contend for
                // the same miss-handling registers as loads, so a
                // store miss occupies an MSHR slot and gates issue
                // like any other outstanding fill.
                Tick issue = mshrGate(cycle);
                pump();
                MemAccess acc = mem_.access(op.addr, true, issue);
                if (acc.l2Miss) {
                    ++res.l2Misses;
                    outstanding.push_back(acc.dataReady);
                }
            }
            std::size_t tail = robHead + robCount;
            if (tail >= rob.size())
                tail -= rob.size();
            rob[tail] = retire_at;
            ++robCount;
            ++dispatched;
            ++n_dispatched;
        }

        // Advance time. When blocked on the ROB head, jump straight to
        // its retirement tick instead of idling cycle by cycle.
        if (n_retired == 0 && n_dispatched == 0 && robCount != 0) {
            Tick next = std::max(cycle + 1, rob[robHead]);
            robStallCycles += next - cycle;
            cycle = next;
        } else {
            ++cycle;
        }
    }
    mem_.advanceTo(cycle);

    if (!snapped) {
        // measured == 0: everything dispatched was warmup.
        warmLoads = res.loads;
        warmStores = res.stores;
        warmMisses = res.l2Misses;
    }
    res.loads -= warmLoads;
    res.stores -= warmStores;
    res.l2Misses -= warmMisses;

    finishRun(res, measured, cycle, warmupEndCycle, robStallCycles);
    return res;
}

/**
 * The batched loop: same simulated machine, fewer host instructions.
 *
 *  - Lookahead without a buffer: the loop holds at most one parked op
 *    plus a count of pending ALU ops (which are fungible — every ALU
 *    TraceOp is identical), so for SpecWorkload — whose next() is
 *    already inlined into this template — ops never round-trip through
 *    memory. (A materialized run buffer measured ~6 ns/op of pure
 *    store/reload cost, more than every batching win combined.) Only
 *    the generic WorkloadGenerator instantiation buffers, via
 *    nextRun(), where it amortizes a real virtual call per op.
 *  - Full-width ALU steady state — the ROB holding exactly `width`
 *    entries that all retire this cycle, with a run of non-memory ops
 *    next — is collapsed arithmetically: k cycles of retire-width/
 *    dispatch-width advance in O(width) instead of O(k * width).
 *  - A dispatch group of independent memory ops (no load chasing a
 *    load issued in the same group, MSHR gate provably idle) issues as
 *    one MemorySystem::accessRun burst: one virtual call and one
 *    hierarchy pass per group instead of per op.
 *
 * Every deviation from runLoopPerCycle is an equivalence, not a model
 * change: the visited cycles, the access/advanceTo call sequence and
 * every counter are bit-identical, which the differential suite
 * enforces on whole stats dumps.
 */
template <typename Gen>
CoreRunResult
OooCore::runLoopBatched(Gen &gen, std::uint64_t warmup,
                        std::uint64_t measured, Tick start_tick)
{
    SECMEM_PROF(Core);
    const std::uint64_t total = warmup + measured;

    std::vector<Tick> rob(params_.robSize);
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    auto robAdvance = [&rob](std::size_t i) {
        return i + 1 == rob.size() ? 0 : i + 1;
    };
    auto robAt = [&](std::size_t off) -> Tick & {
        std::size_t i = robHead + off;
        if (i >= rob.size())
            i -= rob.size();
        return rob[i];
    };
    auto pushRob = [&](Tick retire_at) {
        std::size_t tail = robHead + robCount;
        if (tail >= rob.size())
            tail -= rob.size();
        rob[tail] = retire_at;
        ++robCount;
    };

    Tick cycle = start_tick;
    std::uint64_t dispatched = 0;
    std::uint64_t retired = 0;
    Tick warmupEndCycle = start_tick;

    CoreRunResult res;

    Tick lastLoadComplete = 0;
    Tick robStallCycles = 0;
    std::vector<Tick> outstanding;

    auto pruneOutstanding = [&](Tick now) {
        outstanding.erase(
            std::remove_if(outstanding.begin(), outstanding.end(),
                           [now](Tick t) { return t <= now; }),
            outstanding.end());
    };
    auto mshrGate = [&](Tick issue) {
        if (outstanding.size() >= params_.mshrs) {
            pruneOutstanding(issue);
            if (outstanding.size() >= params_.mshrs) {
                Tick free_at = *std::min_element(outstanding.begin(),
                                                 outstanding.end());
                issue = std::max(issue, free_at);
                pruneOutstanding(issue);
            }
        }
        return issue;
    };

    std::uint64_t warmLoads = 0;
    std::uint64_t warmStores = 0;
    std::uint64_t warmMisses = 0;
    bool snapped = false;
    auto snapWarmup = [&] {
        warmLoads = res.loads;
        warmStores = res.stores;
        warmMisses = res.l2Misses;
        snapped = true;
    };

    Tick pumpedWindow = ~Tick{0};
    auto pump = [&] {
        Tick w = cycle >> kPumpWindowLog2;
        if (w != pumpedWindow) {
            pumpedWindow = w;
            mem_.advanceTo(w << kPumpWindowLog2);
        }
    };

    // Op source. rawNext() hands out the stream one op at a time and is
    // called exactly `total` times per run (lookahead never pulls an op
    // it will not dispatch), so a generator shared across successive
    // run() calls stays in sync with the per-cycle oracle. SpecWorkload
    // reads the generator directly (next() is inline in this template);
    // other generators refill a small buffer through one virtual
    // nextRun() per kGenRun ops instead of one virtual next() per op.
    constexpr bool kBuffered = !std::is_same_v<Gen, SpecWorkload>;
    [[maybe_unused]] TraceOp buf[kGenRun];
    [[maybe_unused]] unsigned bufPos = 0;
    [[maybe_unused]] unsigned bufLen = 0;
    [[maybe_unused]] std::uint64_t pulled = 0;
    auto rawNext = [&]() -> TraceOp {
        if constexpr (kBuffered) {
            if (bufPos == bufLen) {
                unsigned want = static_cast<unsigned>(
                    std::min<std::uint64_t>(kGenRun, total - pulled));
                bufLen = gen.nextRun(buf, want);
                bufPos = 0;
            }
            ++pulled;
            return buf[bufPos++];
        } else {
            return gen.next();
        }
    };

    // Parked lookahead: at most one op pulled past the current dispatch
    // point (the op that ended an ALU run or a burst), plus a count of
    // already-pulled ALU ops (fungible, so a count is enough). Stream
    // order is pending ALU ops first, then the parked op, then fresh
    // pulls.
    TraceOp lookahead{};
    bool haveLookahead = false;
    std::uint64_t pendingAlu = 0;
    auto pull = [&]() -> TraceOp {
        if (pendingAlu != 0) {
            --pendingAlu;
            return TraceOp::alu();
        }
        if (haveLookahead) {
            haveLookahead = false;
            return lookahead;
        }
        return rawNext();
    };

    std::uint64_t cancelPoll = 0;
    while (retired < total) {
        // Outer iterations cover at least a cycle (the collapse, up to
        // kMaxCollapsePull ops), so a tighter mask than the per-cycle
        // loop's keeps the watchdog poll interval comparable.
        if ((++cancelPoll & 0xff) == 0)
            pollCancellation();

        // ---- ALU steady-state collapse ----------------------------
        // Signature of back-to-back full-width ALU cycles: exactly
        // `width` ROB entries, all retiring at `cycle` (each cycle
        // retires the previous cycle's dispatch group and refills).
        // With a ALU ops ahead, k = a / width such cycles advance in
        // one arithmetic step: per-cycle this would touch the ring
        // k * width times to write the same final picture.
        if (robCount == params_.width && dispatched < total &&
            !haveLookahead) {
            bool steady = true;
            for (unsigned w = 0; w < params_.width; ++w) {
                if (robAt(w) != cycle) {
                    steady = false;
                    break;
                }
            }
            if (steady) {
                // Pull ALU ops; the memory op that ends the run (if
                // one arrives) parks in the lookahead slot.
                std::uint64_t aluRun = pendingAlu;
                pendingAlu = 0;
                const std::uint64_t maxPull = std::min<std::uint64_t>(
                    total - dispatched, kMaxCollapsePull);
                while (aluRun < maxPull) {
                    TraceOp op = rawNext();
                    if (op.isMem) {
                        lookahead = op;
                        haveLookahead = true;
                        break;
                    }
                    ++aluRun;
                }
                std::uint64_t k = aluRun / params_.width;
                std::uint64_t nops = k * params_.width;
                pendingAlu = aluRun - nops;
                if (k != 0) {
                    // Warmup boundary retire lands at the cycle whose
                    // retire burst crosses `warmup`.
                    if (warmup > 0 && retired < warmup &&
                        retired + nops >= warmup) {
                        warmupEndCycle =
                            cycle + (warmup - retired - 1) / params_.width;
                    }
                    // Counters are unchanged across a pure-ALU run, so
                    // a snapshot anywhere inside it equals the oracle's
                    // at-the-boundary one.
                    if (!snapped && dispatched + nops > warmup)
                        snapWarmup();
                    retired += nops;
                    dispatched += nops;
                    cycle += k;
                    robHead = (robHead + nops) % rob.size();
                    for (unsigned w = 0; w < params_.width; ++w)
                        robAt(w) = cycle;
                    continue;
                }
            }
        }

        // ---- General cycle (oracle-equivalent) --------------------
        unsigned n_retired = 0;
        while (n_retired < params_.width && robCount != 0 &&
               rob[robHead] <= cycle) {
            robHead = robAdvance(robHead);
            --robCount;
            ++retired;
            ++n_retired;
            if (retired == warmup && warmup > 0)
                warmupEndCycle = cycle;
        }

        unsigned n_dispatched = 0;
        while (n_dispatched < params_.width && dispatched < total &&
               robCount < rob.size()) {
            if (!snapped && dispatched >= warmup)
                snapWarmup();
            const TraceOp op = pull();
            Tick retire_at = cycle + 1;

            if (!op.isMem) {
                pushRob(retire_at);
                ++dispatched;
                ++n_dispatched;
                continue;
            }

            if (!op.isStore && op.dependsOnPrev) {
                // Chased load: its issue tick consumes the previous
                // load's completion, so it can never join a burst led
                // by a load. Oracle body, statement for statement.
                ++res.loads;
                Tick issue = std::max(cycle, lastLoadComplete);
                issue = mshrGate(issue);
                pump();
                MemAccess acc = mem_.access(op.addr, false, issue);
                if (acc.l2Miss) {
                    ++res.l2Misses;
                    outstanding.push_back(acc.dataReady);
                }
                Tick complete = mode_ == AuthMode::Safe ? acc.authDone
                                                        : acc.dataReady;
                Tick done = mode_ == AuthMode::Lazy ? acc.dataReady
                                                    : acc.authDone;
                lastLoadComplete = complete;
                pushRob(std::max<Tick>(cycle + 1, done));
                ++dispatched;
                ++n_dispatched;
                continue;
            }

            // Independent load or store.
            if (outstanding.size() >= params_.mshrs) {
                // The MSHR gate may engage: oracle body, gate and all.
                ++(op.isStore ? res.stores : res.loads);
                Tick issue = mshrGate(cycle);
                pump();
                MemAccess acc = mem_.access(op.addr, op.isStore, issue);
                if (acc.l2Miss) {
                    ++res.l2Misses;
                    outstanding.push_back(acc.dataReady);
                }
                if (!op.isStore) {
                    Tick complete = mode_ == AuthMode::Safe ? acc.authDone
                                                            : acc.dataReady;
                    Tick done = mode_ == AuthMode::Lazy ? acc.dataReady
                                                        : acc.authDone;
                    lastLoadComplete = complete;
                    retire_at = std::max<Tick>(cycle + 1, done);
                }
                pushRob(retire_at);
                ++dispatched;
                ++n_dispatched;
                continue;
            }

            // Occupancy is below the MSHR limit, so the gate is a
            // provable no-op for this op — and stays one for every op
            // a burst adds while occupancy + group size - 1 holds
            // under the limit (each op can push at most one entry, and
            // the gate's pruning only ever removes entries that are
            // already stale for every later decision). Pair a
            // store-led op with following burst-safe mem ops. Only
            // store-led: finding a partner means pulling the next op
            // before this one dispatches, and when the pull comes up
            // non-mem (the majority, at SPEC memFraction) the op parks
            // in the lookahead slot — a round trip through memory that
            // measured ~20 ns, more than the one-pass fill saves on a
            // pair. Store-led groups keep that speculation off the
            // load path while still covering the write-clustered
            // traffic that groups most often. The op that ends a group
            // parks in the lookahead slot and dispatches through the
            // paths above with group-updated lastLoadComplete, exactly
            // as the oracle would order it.
            if (op.isStore && n_dispatched + 1 < params_.width &&
                robCount + 1 < rob.size() &&
                outstanding.size() + 1 < params_.mshrs &&
                dispatched + 1 < total) {
                TraceOp nx = rawNext();
                if (nx.isMem &&
                    (nx.isStore || !nx.dependsOnPrev || op.isStore)) {
                    // Group formed: one hierarchy pass for the run.
                    MemBurstOp burst[kMaxGroup];
                    burst[0] = MemBurstOp{op.addr, cycle, op.isStore, {}};
                    Tick at = cycle;
                    if (!nx.isStore && nx.dependsOnPrev)
                        at = std::max(at, lastLoadComplete);
                    burst[1] = MemBurstOp{nx.addr, at, nx.isStore, {}};
                    bool seenLoad = !op.isStore || !nx.isStore;
                    unsigned nMem = 2;
                    while (n_dispatched + nMem < params_.width &&
                           robCount + nMem < rob.size() &&
                           nMem < kMaxGroup &&
                           outstanding.size() + nMem < params_.mshrs &&
                           dispatched + nMem < total) {
                        TraceOp more = rawNext();
                        if (!more.isMem || (!more.isStore &&
                                            more.dependsOnPrev && seenLoad)) {
                            lookahead = more;
                            haveLookahead = true;
                            break;
                        }
                        at = cycle;
                        if (!more.isStore && more.dependsOnPrev)
                            at = std::max(at, lastLoadComplete);
                        burst[nMem] =
                            MemBurstOp{more.addr, at, more.isStore, {}};
                        seenLoad = seenLoad || !more.isStore;
                        ++nMem;
                    }

                    pump();
                    mem_.accessRun(burst, nMem);
                    for (unsigned j = 0; j < nMem; ++j) {
                        if (!snapped && dispatched >= warmup)
                            snapWarmup();
                        const MemAccess &acc = burst[j].out;
                        Tick rat = cycle + 1;
                        if (!burst[j].isWrite) {
                            ++res.loads;
                            if (acc.l2Miss) {
                                ++res.l2Misses;
                                outstanding.push_back(acc.dataReady);
                            }
                            Tick complete = mode_ == AuthMode::Safe
                                                ? acc.authDone
                                                : acc.dataReady;
                            Tick done = mode_ == AuthMode::Lazy
                                            ? acc.dataReady
                                            : acc.authDone;
                            lastLoadComplete = complete;
                            rat = std::max<Tick>(cycle + 1, done);
                        } else {
                            ++res.stores;
                            if (acc.l2Miss) {
                                ++res.l2Misses;
                                outstanding.push_back(acc.dataReady);
                            }
                        }
                        pushRob(rat);
                        ++dispatched;
                        ++n_dispatched;
                    }
                    continue;
                }
                lookahead = nx;
                haveLookahead = true;
            }

            // Isolated memory op: skip the accessRun machinery.
            ++(op.isStore ? res.stores : res.loads);
            pump();
            MemAccess acc = mem_.access(op.addr, op.isStore, cycle);
            if (acc.l2Miss) {
                ++res.l2Misses;
                outstanding.push_back(acc.dataReady);
            }
            if (!op.isStore) {
                Tick complete = mode_ == AuthMode::Safe ? acc.authDone
                                                        : acc.dataReady;
                Tick done = mode_ == AuthMode::Lazy ? acc.dataReady
                                                    : acc.authDone;
                lastLoadComplete = complete;
                retire_at = std::max<Tick>(cycle + 1, done);
            }
            pushRob(retire_at);
            ++dispatched;
            ++n_dispatched;
        }

        if (n_retired == 0 && n_dispatched == 0 && robCount != 0) {
            Tick next = std::max(cycle + 1, rob[robHead]);
            robStallCycles += next - cycle;
            cycle = next;
        } else {
            ++cycle;
        }
    }
    mem_.advanceTo(cycle);

    if (!snapped) {
        warmLoads = res.loads;
        warmStores = res.stores;
        warmMisses = res.l2Misses;
    }
    res.loads -= warmLoads;
    res.stores -= warmStores;
    res.l2Misses -= warmMisses;

    finishRun(res, measured, cycle, warmupEndCycle, robStallCycles);
    return res;
}

} // namespace secmem
