#include "cpu/ooo_core.hh"

#include <algorithm>
#include <vector>

#include "obs/profiler.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"

namespace secmem
{

CoreRunResult
OooCore::run(WorkloadGenerator &gen, std::uint64_t warmup,
             std::uint64_t measured, Tick start_tick)
{
    SECMEM_PROF(Core);
    const std::uint64_t total = warmup + measured;

    // Reorder buffer: completion wakes dependents, retireAt gates
    // in-order retirement.
    struct RobEntry
    {
        Tick retireAt;
    };
    std::deque<RobEntry> rob;

    Tick cycle = start_tick;
    std::uint64_t dispatched = 0;
    std::uint64_t retired = 0;
    Tick warmupEndCycle = start_tick;

    CoreRunResult res;

    // Last load's completion (for dependence chains).
    Tick lastLoadComplete = 0;
    Tick robStallCycles = 0;
    // Outstanding L2-miss completion times (MSHR occupancy).
    std::vector<Tick> outstanding;

    auto pruneOutstanding = [&](Tick now) {
        outstanding.erase(
            std::remove_if(outstanding.begin(), outstanding.end(),
                           [now](Tick t) { return t <= now; }),
            outstanding.end());
    };

    std::uint64_t cancelPoll = 0;
    while (retired < total) {
        // Cooperative cancellation for the engine watchdog: polled
        // every ~4k cycles so a hung-looking or over-budget job can be
        // unwound without killing its worker thread. A nop (one
        // relaxed thread-local load) when no cancel scope is active.
        if ((++cancelPoll & 0xfff) == 0)
            pollCancellation();

        // Retire up to `width` completed instructions in order.
        unsigned n_retired = 0;
        while (n_retired < params_.width && !rob.empty() &&
               rob.front().retireAt <= cycle) {
            rob.pop_front();
            ++retired;
            ++n_retired;
            if (retired == warmup && warmup > 0)
                warmupEndCycle = cycle;
        }

        // Dispatch up to `width` new instructions.
        unsigned n_dispatched = 0;
        while (n_dispatched < params_.width && dispatched < total &&
               rob.size() < params_.robSize) {
            TraceOp op = gen.next();
            RobEntry entry{cycle + 1};
            if (op.isMem && !op.isStore) {
                ++res.loads;
                Tick issue = cycle;
                if (op.dependsOnPrev)
                    issue = std::max(issue, lastLoadComplete);
                pruneOutstanding(issue);
                if (outstanding.size() >= params_.mshrs) {
                    Tick free_at =
                        *std::min_element(outstanding.begin(),
                                          outstanding.end());
                    issue = std::max(issue, free_at);
                    pruneOutstanding(issue);
                }
                MemAccess acc = mem_.access(op.addr, false, issue);
                if (acc.l2Miss) {
                    ++res.l2Misses;
                    outstanding.push_back(acc.dataReady);
                }
                Tick complete = mode_ == AuthMode::Safe ? acc.authDone
                                                        : acc.dataReady;
                Tick retire_at = mode_ == AuthMode::Lazy ? acc.dataReady
                                                         : acc.authDone;
                lastLoadComplete = complete;
                entry.retireAt = std::max<Tick>(cycle + 1, retire_at);
            } else if (op.isMem) {
                ++res.stores;
                // Stores retire through the store buffer; the memory
                // system sees them now for traffic and dirtying.
                MemAccess acc = mem_.access(op.addr, true, cycle);
                if (acc.l2Miss)
                    ++res.l2Misses;
            }
            rob.push_back(entry);
            ++dispatched;
            ++n_dispatched;
        }

        // Advance time. When blocked on the ROB head, jump straight to
        // its retirement tick instead of idling cycle by cycle.
        if (n_retired == 0 && n_dispatched == 0 && !rob.empty()) {
            Tick next = std::max(cycle + 1, rob.front().retireAt);
            robStallCycles += next - cycle;
            cycle = next;
        } else {
            ++cycle;
        }
    }

    res.instructions = measured;
    res.cycles = cycle - warmupEndCycle;
    res.ipc = res.cycles
                  ? static_cast<double>(measured) /
                        static_cast<double>(res.cycles)
                  : 0.0;
    res.finalTick = cycle;

    if (stats_) {
        stats_->counter("instructions").inc(res.instructions);
        stats_->counter("cycles").inc(res.cycles);
        stats_->counter("loads").inc(res.loads);
        stats_->counter("stores").inc(res.stores);
        stats_->counter("l2_misses").inc(res.l2Misses);
        stats_->counter("rob_stall_cycles").inc(robStallCycles);
    }
    return res;
}

} // namespace secmem
