#include "cpu/ooo_core.hh"

#include <algorithm>
#include <vector>

#include "obs/profiler.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"
#include "workload/spec_profiles.hh"

namespace secmem
{

CoreRunResult
OooCore::run(WorkloadGenerator &gen, std::uint64_t warmup,
             std::uint64_t measured, Tick start_tick)
{
    if (auto *spec = dynamic_cast<SpecWorkload *>(&gen))
        return runLoop(*spec, warmup, measured, start_tick);
    return runLoop(gen, warmup, measured, start_tick);
}

template <typename Gen>
CoreRunResult
OooCore::runLoop(Gen &gen, std::uint64_t warmup, std::uint64_t measured,
                 Tick start_tick)
{
    SECMEM_PROF(Core);
    const std::uint64_t total = warmup + measured;

    // Reorder buffer: a fixed ring of retirement ticks, sized once for
    // the whole run. A deque here cost a paged allocation every few
    // hundred instructions; the ring is allocation-free and its head
    // test is one load on the retire fast path.
    std::vector<Tick> rob(params_.robSize);
    std::size_t robHead = 0;
    std::size_t robCount = 0;
    auto robAdvance = [&rob](std::size_t i) {
        return i + 1 == rob.size() ? 0 : i + 1;
    };

    Tick cycle = start_tick;
    std::uint64_t dispatched = 0;
    std::uint64_t retired = 0;
    Tick warmupEndCycle = start_tick;

    CoreRunResult res;

    // Last load's completion (for dependence chains).
    Tick lastLoadComplete = 0;
    Tick robStallCycles = 0;
    // Outstanding L2-miss completion times (MSHR occupancy).
    std::vector<Tick> outstanding;

    auto pruneOutstanding = [&](Tick now) {
        outstanding.erase(
            std::remove_if(outstanding.begin(), outstanding.end(),
                           [now](Tick t) { return t <= now; }),
            outstanding.end());
    };

    std::uint64_t cancelPoll = 0;
    while (retired < total) {
        // Cooperative cancellation for the engine watchdog: polled
        // every ~4k cycles so a hung-looking or over-budget job can be
        // unwound without killing its worker thread. A nop (one
        // relaxed thread-local load) when no cancel scope is active.
        if ((++cancelPoll & 0xfff) == 0)
            pollCancellation();
        // Let the hierarchy retire completion events up to the dispatch
        // frontier (see MemorySystem::advanceTo). Every 16 iterations:
        // the pump amortizes to a no-op, but it is still a call. (The
        // cadence is NOT free to change: the kernel clock feeds the
        // completion-housekeeping schedule clamp in SecureSystem::
        // access, so a lazier pump shifts event ticks and the stats.)
        if ((cancelPoll & 0xf) == 0)
            mem_.advanceTo(cycle);

        // Retire up to `width` completed instructions in order.
        unsigned n_retired = 0;
        while (n_retired < params_.width && robCount != 0 &&
               rob[robHead] <= cycle) {
            robHead = robAdvance(robHead);
            --robCount;
            ++retired;
            ++n_retired;
            if (retired == warmup && warmup > 0)
                warmupEndCycle = cycle;
        }

        // Dispatch up to `width` new instructions.
        unsigned n_dispatched = 0;
        while (n_dispatched < params_.width && dispatched < total &&
               robCount < rob.size()) {
            TraceOp op = gen.next();
            Tick retire_at = cycle + 1;
            if (op.isMem && !op.isStore) {
                ++res.loads;
                Tick issue = cycle;
                if (op.dependsOnPrev)
                    issue = std::max(issue, lastLoadComplete);
                // Prune lazily: completed entries only matter once the
                // MSHR count could gate an issue, so the common
                // under-occupancy case skips the scan entirely. When
                // the unpruned count trips the check, prune and
                // re-check — decisions match the eager-prune original
                // (stale entries are <= issue, so they never raise
                // free_at above it).
                if (outstanding.size() >= params_.mshrs) {
                    pruneOutstanding(issue);
                    if (outstanding.size() >= params_.mshrs) {
                        Tick free_at =
                            *std::min_element(outstanding.begin(),
                                              outstanding.end());
                        issue = std::max(issue, free_at);
                        pruneOutstanding(issue);
                    }
                }
                MemAccess acc = mem_.access(op.addr, false, issue);
                if (acc.l2Miss) {
                    ++res.l2Misses;
                    outstanding.push_back(acc.dataReady);
                }
                Tick complete = mode_ == AuthMode::Safe ? acc.authDone
                                                        : acc.dataReady;
                Tick done = mode_ == AuthMode::Lazy ? acc.dataReady
                                                    : acc.authDone;
                lastLoadComplete = complete;
                retire_at = std::max<Tick>(cycle + 1, done);
            } else if (op.isMem) {
                ++res.stores;
                // Stores retire through the store buffer; the memory
                // system sees them now for traffic and dirtying.
                MemAccess acc = mem_.access(op.addr, true, cycle);
                if (acc.l2Miss)
                    ++res.l2Misses;
            }
            std::size_t tail = robHead + robCount;
            if (tail >= rob.size())
                tail -= rob.size();
            rob[tail] = retire_at;
            ++robCount;
            ++dispatched;
            ++n_dispatched;
        }

        // Advance time. When blocked on the ROB head, jump straight to
        // its retirement tick instead of idling cycle by cycle.
        if (n_retired == 0 && n_dispatched == 0 && robCount != 0) {
            Tick next = std::max(cycle + 1, rob[robHead]);
            robStallCycles += next - cycle;
            cycle = next;
        } else {
            ++cycle;
        }
    }
    mem_.advanceTo(cycle);

    res.instructions = measured;
    res.cycles = cycle - warmupEndCycle;
    res.ipc = res.cycles
                  ? static_cast<double>(measured) /
                        static_cast<double>(res.cycles)
                  : 0.0;
    res.finalTick = cycle;

    if (stats_) {
        stats_->counter("instructions").inc(res.instructions);
        stats_->counter("cycles").inc(res.cycles);
        stats_->counter("loads").inc(res.loads);
        stats_->counter("stores").inc(res.stores);
        stats_->counter("l2_misses").inc(res.l2Misses);
        stats_->counter("rob_stall_cycles").inc(robStallCycles);
    }
    return res;
}

} // namespace secmem
