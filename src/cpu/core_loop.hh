/**
 * @file
 * Runtime selection of the core cycle-loop implementation.
 *
 * The batched loop (retire/dispatch runs, ALU steady-state collapse,
 * bulk workload generation) is the production path; the original
 * per-cycle loop is preserved as a differential oracle, selected the
 * same way as the event kernels and crypto backends: a process-wide
 * default seeded from SECMEM_CORE_LOOP, overridden by the --core-loop
 * CLI flag (flag beats env), with unknown names a hard error naming
 * their source. Both loops must produce bit-identical CoreRunResult,
 * stats and final ticks — enforced by tests/harness/
 * core_loop_differential_test.cc and a CI leg.
 */

#ifndef SECMEM_CPU_CORE_LOOP_HH
#define SECMEM_CPU_CORE_LOOP_HH

#include <string_view>

namespace secmem
{

/** Which implementation OooCore::run uses for the cycle loop. */
enum class CoreLoop
{
    Batched,  ///< run-batched retire/dispatch with cycle skip-ahead
    PerCycle, ///< the original one-cycle-at-a-time loop (oracle)
};

/** Process-wide default; lazily seeded from SECMEM_CORE_LOOP. */
CoreLoop defaultCoreLoop();

/** Override the default (the --core-loop CLI path). */
void setDefaultCoreLoop(CoreLoop loop);

/** Canonical name ("batched", "percycle"). */
const char *coreLoopName(CoreLoop loop);

/**
 * Parse a loop name; @p source names the flag or env var for the
 * hard-error message on unknown names.
 */
CoreLoop parseCoreLoopName(std::string_view name, const char *source);

} // namespace secmem

#endif // SECMEM_CPU_CORE_LOOP_HH
