/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * Approximates the paper's 3-issue out-of-order processor with the
 * three first-order mechanisms that matter for memory encryption /
 * authentication studies:
 *
 *  - a finite reorder buffer with in-order retirement, which is what
 *    makes Commit-mode authentication (retire waits for the MAC check)
 *    cost performance;
 *  - load-dependence chains (pointer chasing), which is what makes
 *    Safe-mode authentication (data unusable until verified) cost more
 *    than Commit;
 *  - MSHR-limited memory-level parallelism.
 *
 * Non-memory instructions are single-cycle. The model advances cycle
 * by cycle, fast-forwarding across stall intervals, so simulating a
 * million instructions takes milliseconds.
 */

#ifndef SECMEM_CPU_OOO_CORE_HH
#define SECMEM_CPU_OOO_CORE_HH

#include <cstdint>

#include "core/config.hh"
#include "cpu/core_loop.hh"
#include "cpu/memory_system.hh"
#include "cpu/trace.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace secmem
{

/** Core structural parameters (paper Section 5). */
struct CoreParams
{
    unsigned width = 3;    ///< dispatch/retire width (3-issue)
    unsigned robSize = 96; ///< reorder buffer entries
    unsigned mshrs = 16;   ///< outstanding L2 misses
};

/** Outcome of a simulation run. */
struct CoreRunResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0; ///< measured window (after warm-up)
    double ipc = 0.0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l2Misses = 0;
    Tick finalTick = 0; ///< absolute end-of-run tick
};

/** The 3-issue out-of-order core. */
class OooCore
{
  public:
    /**
     * @p stats, when non-null, accumulates per-run core counters
     * (instructions, cycles, loads, stores, l2_misses, rob_stall_cycles)
     * across every run() call; it is never touched on the per-cycle path.
     * @p loop selects the cycle-loop implementation; it defaults to the
     * process-wide selection (--core-loop / SECMEM_CORE_LOOP). Both
     * implementations are bit-identical in results and stats.
     */
    OooCore(const CoreParams &params, MemorySystem &mem, AuthMode mode,
            stats::Group *stats = nullptr, CoreLoop loop = defaultCoreLoop())
        : params_(params), mem_(mem), mode_(mode), stats_(stats), loop_(loop)
    {}

    CoreLoop loop() const { return loop_; }

    /**
     * Execute @p warmup + @p measured instructions from @p gen;
     * IPC is reported over the measured window only (caches and
     * predictors stay warm across the boundary). @p start_tick lets
     * segmented runs continue the timing state of a previous segment.
     */
    CoreRunResult run(WorkloadGenerator &gen, std::uint64_t warmup,
                      std::uint64_t measured, Tick start_tick = 0);

  private:
    /**
     * The cycle loops, templated on the concrete generator type.
     * run() dispatches with the generator's dynamic type when it is
     * the (final) SpecWorkload, which devirtualizes and inlines the
     * per-instruction next()/nextRun() calls — the hottest calls in
     * timing runs — and falls back to the virtual interface for
     * everything else. All instantiations produce bit-identical
     * results, stats and event timelines:
     *
     *  - runLoopPerCycle is the original one-cycle-at-a-time walk,
     *    preserved as the differential oracle;
     *  - runLoopBatched retires/dispatches in runs, collapses ALU
     *    steady-state stretches arithmetically, pulls the workload
     *    through nextRun() and issues independent dispatch bursts
     *    through MemorySystem::accessRun (DESIGN.md §3d).
     */
    template <typename Gen>
    CoreRunResult runLoopPerCycle(Gen &gen, std::uint64_t warmup,
                                  std::uint64_t measured, Tick start_tick);

    template <typename Gen>
    CoreRunResult runLoopBatched(Gen &gen, std::uint64_t warmup,
                                 std::uint64_t measured, Tick start_tick);

    /** Shared epilogue: derived fields + stat-group accumulation. */
    void finishRun(CoreRunResult &res, std::uint64_t measured, Tick cycle,
                   Tick warmupEndCycle, Tick robStallCycles);

    CoreParams params_;
    MemorySystem &mem_;
    AuthMode mode_;
    stats::Group *stats_;
    CoreLoop loop_;
};

} // namespace secmem

#endif // SECMEM_CPU_OOO_CORE_HH
