/**
 * @file
 * Instruction-trace abstraction driving the out-of-order core model.
 *
 * The simulator is trace-driven: a WorkloadGenerator emits one
 * instruction per call — either a non-memory instruction or a load /
 * store with a physical block address and a dependence flag. The
 * generators in src/workload synthesize streams whose memory behaviour
 * (miss rate, write-back locality, dependence chains) matches the
 * paper's SPEC CPU 2000 benchmarks; see DESIGN.md for the substitution
 * argument.
 */

#ifndef SECMEM_CPU_TRACE_HH
#define SECMEM_CPU_TRACE_HH

#include <string>

#include "sim/types.hh"

namespace secmem
{

/** One dynamic instruction. */
struct TraceOp
{
    bool isMem = false;
    bool isStore = false;
    /** Load address depends on the previous load's value (pointer chase). */
    bool dependsOnPrev = false;
    Addr addr = 0;

    static TraceOp
    alu()
    {
        return {};
    }

    static TraceOp
    load(Addr a, bool dep = false)
    {
        TraceOp op;
        op.isMem = true;
        op.addr = a;
        op.dependsOnPrev = dep;
        return op;
    }

    static TraceOp
    store(Addr a)
    {
        TraceOp op;
        op.isMem = true;
        op.isStore = true;
        op.addr = a;
        return op;
    }
};

/** Deterministic instruction-stream source. */
class WorkloadGenerator
{
  public:
    virtual ~WorkloadGenerator() = default;

    /** Produce the next dynamic instruction. */
    virtual TraceOp next() = 0;

    /**
     * Fill @p out with the next @p n instructions and return n. The
     * stream is identical to n successive next() calls — the batched
     * core loop pulls runs through this so the per-op virtual dispatch
     * disappears from the hot path; generators with cheap per-op state
     * (SpecWorkload) override it with a register-resident loop.
     */
    virtual unsigned
    nextRun(TraceOp *out, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            out[i] = next();
        return n;
    }

    /** Workload label for reports. */
    virtual const std::string &name() const = 0;
};

} // namespace secmem

#endif // SECMEM_CPU_TRACE_HH
