#include "cpu/core_loop.hh"

#include <cstdlib>

#include "sim/log.hh"

namespace secmem
{

namespace
{

/**
 * Process-wide default-loop slot. Lazily seeded from the
 * SECMEM_CORE_LOOP environment variable on first use so headless runs
 * (tests, CI differential legs) can flip loops without plumbing a
 * flag; setDefaultCoreLoop() (the CLI flag) overwrites it.
 */
CoreLoop &
defaultCoreLoopSlot()
{
    static CoreLoop slot = [] {
        const char *env = std::getenv("SECMEM_CORE_LOOP");
        if (env && *env)
            return parseCoreLoopName(env, "SECMEM_CORE_LOOP");
        return CoreLoop::Batched;
    }();
    return slot;
}

} // namespace

CoreLoop
defaultCoreLoop()
{
    return defaultCoreLoopSlot();
}

void
setDefaultCoreLoop(CoreLoop loop)
{
    defaultCoreLoopSlot() = loop;
}

const char *
coreLoopName(CoreLoop loop)
{
    switch (loop) {
      case CoreLoop::Batched:
        return "batched";
      case CoreLoop::PerCycle:
        return "percycle";
    }
    return "?";
}

CoreLoop
parseCoreLoopName(std::string_view name, const char *source)
{
    if (name == "batched")
        return CoreLoop::Batched;
    if (name == "percycle" || name == "per-cycle")
        return CoreLoop::PerCycle;
    SECMEM_FATAL("unknown core loop '%.*s' (from %s); "
                 "known loops: batched, percycle",
        static_cast<int>(name.size()), name.data(), source);
}

} // namespace secmem
