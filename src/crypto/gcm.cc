#include "crypto/gcm.hh"

#include <cstring>

#include "crypto/ghash.hh"

namespace secmem
{

Gcm::Gcm(const Block16 &key) : Gcm(activeCryptoBackend(), key) {}

Gcm::Gcm(const CryptoBackend &be, const Block16 &key) : aes_(be, key)
{
    Block16 zero{};
    h_ = aes_.encrypt(zero);
    htab_ = Gf128Table(be, Gf128::fromBlock(h_));
}

Block16
Gcm::counterPad(const std::uint8_t *iv96, std::uint32_t ctr) const
{
    Block16 j;
    std::memcpy(j.b.data(), iv96, 12);
    j.b[12] = static_cast<std::uint8_t>(ctr >> 24);
    j.b[13] = static_cast<std::uint8_t>(ctr >> 16);
    j.b[14] = static_cast<std::uint8_t>(ctr >> 8);
    j.b[15] = static_cast<std::uint8_t>(ctr);
    return aes_.encrypt(j);
}

Block16
Gcm::ghashAll(const std::vector<std::uint8_t> &aad,
              const std::vector<std::uint8_t> &ct) const
{
    Ghash gh(htab_);
    auto absorb = [&gh](const std::vector<std::uint8_t> &data) {
        for (std::size_t off = 0; off < data.size(); off += 16) {
            Block16 chunk{};
            std::size_t n = std::min<std::size_t>(16, data.size() - off);
            std::memcpy(chunk.b.data(), data.data() + off, n);
            gh.update(chunk);
        }
    };
    absorb(aad);
    absorb(ct);
    gh.updateLengths(static_cast<std::uint64_t>(aad.size()) * 8,
                     static_cast<std::uint64_t>(ct.size()) * 8);
    return gh.digest();
}

GcmSealed
Gcm::seal(const std::uint8_t *iv96,
          const std::vector<std::uint8_t> &plaintext,
          const std::vector<std::uint8_t> &aad) const
{
    GcmSealed out;
    out.ciphertext.resize(plaintext.size());
    std::uint32_t ctr = 2; // counter 1 is reserved for the tag pad
    for (std::size_t off = 0; off < plaintext.size(); off += 16, ++ctr) {
        Block16 pad = counterPad(iv96, ctr);
        std::size_t n = std::min<std::size_t>(16, plaintext.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out.ciphertext[off + i] = plaintext[off + i] ^ pad.b[i];
    }
    out.tag = ghashAll(aad, out.ciphertext) ^ counterPad(iv96, 1);
    return out;
}

bool
Gcm::open(const std::uint8_t *iv96,
          const std::vector<std::uint8_t> &ciphertext,
          const Block16 &tag,
          std::vector<std::uint8_t> &plaintext_out,
          const std::vector<std::uint8_t> &aad) const
{
    Block16 expect = ghashAll(aad, ciphertext) ^ counterPad(iv96, 1);
    if (!(expect == tag))
        return false;
    plaintext_out.resize(ciphertext.size());
    std::uint32_t ctr = 2;
    for (std::size_t off = 0; off < ciphertext.size(); off += 16, ++ctr) {
        Block16 pad = counterPad(iv96, ctr);
        std::size_t n = std::min<std::size_t>(16, ciphertext.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            plaintext_out[off + i] = ciphertext[off + i] ^ pad.b[i];
    }
    return true;
}

} // namespace secmem
