/**
 * @file
 * AES-128 Galois/Counter Mode (GCM) authenticated encryption
 * (McGrew & Viega; NIST SP 800-38D).
 *
 * This general-purpose implementation (arbitrary-length plaintext, AAD,
 * 96-bit IVs) exists to validate the crypto substrate against the
 * published test vectors. The memory-authentication path in src/core uses
 * the same primitives (Aes128, Ghash) directly with the block-address /
 * counter seed construction from crypto/seed.hh.
 */

#ifndef SECMEM_CRYPTO_GCM_HH
#define SECMEM_CRYPTO_GCM_HH

#include <cstdint>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/bytes.hh"
#include "crypto/gf128.hh"

namespace secmem
{

/** Result of a GCM encryption: ciphertext plus 128-bit tag. */
struct GcmSealed
{
    std::vector<std::uint8_t> ciphertext;
    Block16 tag;
};

/** AES-128 GCM with 96-bit IVs. */
class Gcm
{
  public:
    /** Key the cipher on the process-wide active crypto backend. */
    explicit Gcm(const Block16 &key);

    /** Same, pinned to @p be (per-backend tests and benchmarks). */
    Gcm(const CryptoBackend &be, const Block16 &key);

    /** Encrypt @p plaintext and authenticate (@p aad, ciphertext). */
    GcmSealed seal(const std::uint8_t *iv96, // 12 bytes
                   const std::vector<std::uint8_t> &plaintext,
                   const std::vector<std::uint8_t> &aad = {}) const;

    /**
     * Verify the tag and decrypt.
     * @retval true  tag matched; @p plaintext_out holds the plaintext.
     * @retval false authentication failed; @p plaintext_out untouched.
     */
    bool open(const std::uint8_t *iv96,
              const std::vector<std::uint8_t> &ciphertext,
              const Block16 &tag,
              std::vector<std::uint8_t> &plaintext_out,
              const std::vector<std::uint8_t> &aad = {}) const;

    /** The hash subkey H = AES_K(0^128), exposed for tests. */
    const Block16 &hashSubkey() const { return h_; }

  private:
    Block16 counterPad(const std::uint8_t *iv96, std::uint32_t ctr) const;
    Block16 ghashAll(const std::vector<std::uint8_t> &aad,
                     const std::vector<std::uint8_t> &ct) const;

    Aes128 aes_;
    Block16 h_;
    Gf128Table htab_; ///< Shoup table for h_, built once per key
};

} // namespace secmem

#endif // SECMEM_CRYPTO_GCM_HH
