#include "crypto/sha1.hh"

#include <cstring>

namespace secmem
{

namespace
{

inline std::uint32_t
rotl(std::uint32_t v, int k)
{
    return (v << k) | (v >> (32 - k));
}

} // namespace

void
Sha1::reset()
{
    h_[0] = 0x67452301u;
    h_[1] = 0xefcdab89u;
    h_[2] = 0x98badcfeu;
    h_[3] = 0x10325476u;
    h_[4] = 0xc3d2e1f0u;
    bufLen_ = 0;
    totalBits_ = 0;
}

void
Sha1::processChunk(const std::uint8_t chunk[64])
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t(chunk[4 * i]) << 24) |
               (std::uint32_t(chunk[4 * i + 1]) << 16) |
               (std::uint32_t(chunk[4 * i + 2]) << 8) |
               std::uint32_t(chunk[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5a827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ed9eba1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8f1bbcdcu;
        } else {
            f = b ^ c ^ d;
            k = 0xca62c1d6u;
        }
        std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

void
Sha1::update(const std::uint8_t *data, std::size_t n)
{
    totalBits_ += static_cast<std::uint64_t>(n) * 8;
    while (n > 0) {
        std::size_t take = std::min<std::size_t>(64 - bufLen_, n);
        std::memcpy(buf_ + bufLen_, data, take);
        bufLen_ += take;
        data += take;
        n -= take;
        if (bufLen_ == 64) {
            processChunk(buf_);
            bufLen_ = 0;
        }
    }
}

Sha1::Digest
Sha1::final()
{
    std::uint64_t bits = totalBits_;
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    std::uint8_t zero = 0;
    while (bufLen_ != 56)
        update(&zero, 1);
    std::uint8_t len[8];
    for (int i = 0; i < 8; ++i)
        len[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    // Bypass update() for the length field so totalBits_ bookkeeping
    // doesn't matter anymore.
    std::memcpy(buf_ + 56, len, 8);
    processChunk(buf_);
    bufLen_ = 0;

    Digest d;
    for (int i = 0; i < 5; ++i) {
        d[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
        d[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
        d[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
        d[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
    }
    return d;
}

} // namespace secmem
