/**
 * @file
 * Small byte-array value types shared by the crypto layer.
 *
 * Block16 is one AES chunk; Block64 is one cache block worth of data.
 * Both are plain aggregates with value semantics so they can flow through
 * the functional model and be compared in tests.
 */

#ifndef SECMEM_CRYPTO_BYTES_HH
#define SECMEM_CRYPTO_BYTES_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "sim/types.hh"

namespace secmem
{

// ---- big-endian loads/stores -------------------------------------------
//
// The crypto layer views byte streams as big-endian words (GCM's GF(2^128)
// convention, AES state columns). These helpers compile to a single
// load/store plus byte swap; std::byteswap is C++23, so the swap itself
// goes through the compiler builtin.

/** Reverse the byte order of @p v. */
constexpr std::uint64_t
byteswap64(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap64(v);
#else
    v = ((v & 0x00ff00ff00ff00ffull) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffull);
    v = ((v & 0x0000ffff0000ffffull) << 16) |
        ((v >> 16) & 0x0000ffff0000ffffull);
    return (v << 32) | (v >> 32);
#endif
}

/** Reverse the byte order of @p v. */
constexpr std::uint32_t
byteswap32(std::uint32_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_bswap32(v);
#else
    return (v << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) |
           (v >> 24);
#endif
}

/** Load 8 bytes at @p p as a big-endian 64-bit value. */
inline std::uint64_t
loadBe64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    if constexpr (std::endian::native == std::endian::little)
        v = byteswap64(v);
    return v;
}

/** Store @p v at @p p as 8 big-endian bytes. */
inline void
storeBe64(std::uint8_t *p, std::uint64_t v)
{
    if constexpr (std::endian::native == std::endian::little)
        v = byteswap64(v);
    std::memcpy(p, &v, 8);
}

/** Load 4 bytes at @p p as a big-endian 32-bit value. */
inline std::uint32_t
loadBe32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    if constexpr (std::endian::native == std::endian::little)
        v = byteswap32(v);
    return v;
}

/** Store @p v at @p p as 4 big-endian bytes. */
inline void
storeBe32(std::uint8_t *p, std::uint32_t v)
{
    if constexpr (std::endian::native == std::endian::little)
        v = byteswap32(v);
    std::memcpy(p, &v, 4);
}

/** One 16-byte AES chunk. */
struct Block16
{
    std::array<std::uint8_t, kChunkBytes> b{};

    bool operator==(const Block16 &) const = default;

    Block16
    operator^(const Block16 &o) const
    {
        Block16 r;
        for (std::size_t i = 0; i < kChunkBytes; ++i)
            r.b[i] = b[i] ^ o.b[i];
        return r;
    }

    Block16 &
    operator^=(const Block16 &o)
    {
        for (std::size_t i = 0; i < kChunkBytes; ++i)
            b[i] ^= o.b[i];
        return *this;
    }
};

/** One 64-byte cache block. */
struct Block64
{
    std::array<std::uint8_t, kBlockBytes> b{};

    bool operator==(const Block64 &) const = default;

    /** Extract AES chunk @p i (0..3). */
    Block16
    chunk(std::size_t i) const
    {
        Block16 c;
        std::memcpy(c.b.data(), b.data() + i * kChunkBytes, kChunkBytes);
        return c;
    }

    /** Store AES chunk @p i (0..3). */
    void
    setChunk(std::size_t i, const Block16 &c)
    {
        std::memcpy(b.data() + i * kChunkBytes, c.b.data(), kChunkBytes);
    }

    Block64
    operator^(const Block64 &o) const
    {
        Block64 r;
        for (std::size_t i = 0; i < kBlockBytes; ++i)
            r.b[i] = b[i] ^ o.b[i];
        return r;
    }
};

/** Render bytes as lowercase hex (for tests and examples). */
std::string toHex(const std::uint8_t *data, std::size_t n);

inline std::string
toHex(const Block16 &x)
{
    return toHex(x.b.data(), x.b.size());
}

inline std::string
toHex(const Block64 &x)
{
    return toHex(x.b.data(), x.b.size());
}

/** Parse lowercase/uppercase hex into bytes; returns bytes written. */
std::size_t fromHex(const std::string &hex, std::uint8_t *out, std::size_t cap);

/** Parse a 32-hex-digit string into a Block16. */
Block16 block16FromHex(const std::string &hex);

} // namespace secmem

#endif // SECMEM_CRYPTO_BYTES_HH
