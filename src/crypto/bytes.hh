/**
 * @file
 * Small byte-array value types shared by the crypto layer.
 *
 * Block16 is one AES chunk; Block64 is one cache block worth of data.
 * Both are plain aggregates with value semantics so they can flow through
 * the functional model and be compared in tests.
 */

#ifndef SECMEM_CRYPTO_BYTES_HH
#define SECMEM_CRYPTO_BYTES_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "sim/types.hh"

namespace secmem
{

/** One 16-byte AES chunk. */
struct Block16
{
    std::array<std::uint8_t, kChunkBytes> b{};

    bool operator==(const Block16 &) const = default;

    Block16
    operator^(const Block16 &o) const
    {
        Block16 r;
        for (std::size_t i = 0; i < kChunkBytes; ++i)
            r.b[i] = b[i] ^ o.b[i];
        return r;
    }

    Block16 &
    operator^=(const Block16 &o)
    {
        for (std::size_t i = 0; i < kChunkBytes; ++i)
            b[i] ^= o.b[i];
        return *this;
    }
};

/** One 64-byte cache block. */
struct Block64
{
    std::array<std::uint8_t, kBlockBytes> b{};

    bool operator==(const Block64 &) const = default;

    /** Extract AES chunk @p i (0..3). */
    Block16
    chunk(std::size_t i) const
    {
        Block16 c;
        std::memcpy(c.b.data(), b.data() + i * kChunkBytes, kChunkBytes);
        return c;
    }

    /** Store AES chunk @p i (0..3). */
    void
    setChunk(std::size_t i, const Block16 &c)
    {
        std::memcpy(b.data() + i * kChunkBytes, c.b.data(), kChunkBytes);
    }

    Block64
    operator^(const Block64 &o) const
    {
        Block64 r;
        for (std::size_t i = 0; i < kBlockBytes; ++i)
            r.b[i] = b[i] ^ o.b[i];
        return r;
    }
};

/** Render bytes as lowercase hex (for tests and examples). */
std::string toHex(const std::uint8_t *data, std::size_t n);

inline std::string
toHex(const Block16 &x)
{
    return toHex(x.b.data(), x.b.size());
}

inline std::string
toHex(const Block64 &x)
{
    return toHex(x.b.data(), x.b.size());
}

/** Parse lowercase/uppercase hex into bytes; returns bytes written. */
std::size_t fromHex(const std::string &hex, std::uint8_t *out, std::size_t cap);

/** Parse a 32-hex-digit string into a Block16. */
Block16 block16FromHex(const std::string &hex);

} // namespace secmem

#endif // SECMEM_CRYPTO_BYTES_HH
