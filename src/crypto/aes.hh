/**
 * @file
 * Software AES-128 block cipher (FIPS-197).
 *
 * Bit-exact implementation used by the functional model: counter-mode
 * pad generation, GCM hash-subkey derivation and direct (XOM-style)
 * block encryption all run through this class. Hardware latency is
 * modelled separately by enc/AesEngine; this class is purely functional.
 *
 * The round function is table-driven: four 1 KiB T-tables fuse
 * SubBytes, ShiftRows and MixColumns into four lookups plus XORs per
 * state column (Rijndael's "32-bit fast" formulation). The key
 * schedule is cached per key — setKey() with the key already loaded is
 * a no-op, and the decryption schedule (which needs an extra
 * InvMixColumns pass) is derived lazily on first decryptBlock(), so
 * encrypt-only users such as counter-mode pad generation never pay for
 * it. The historical byte-wise implementation survives as
 * ref::AesNaive (src/ref/), the independent oracle for this one.
 */

#ifndef SECMEM_CRYPTO_AES_HH
#define SECMEM_CRYPTO_AES_HH

#include <array>
#include <cstdint>

#include "crypto/bytes.hh"

namespace secmem
{

/** AES-128 with precomputed round keys for both directions. */
class Aes128
{
  public:
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    Aes128() = default;
    explicit Aes128(const std::uint8_t key[kKeyBytes]) { setKey(key); }
    explicit Aes128(const Block16 &key) { setKey(key.b.data()); }

    /**
     * Expand @p key into the encryption round keys. A no-op when
     * @p key is the key already loaded, so re-keying call sites can
     * call this unconditionally without re-expanding.
     */
    void setKey(const std::uint8_t key[kKeyBytes]);

    /** Encrypt one 16-byte chunk. In-place operation is allowed. */
    void encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Decrypt one 16-byte chunk. In-place operation is allowed. */
    void decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    Block16
    encrypt(const Block16 &in) const
    {
        Block16 out;
        encryptBlock(in.b.data(), out.b.data());
        return out;
    }

    Block16
    decrypt(const Block16 &in) const
    {
        Block16 out;
        decryptBlock(in.b.data(), out.b.data());
        return out;
    }

  private:
    void buildDecSchedule() const;

    /** Encryption round keys: (kRounds + 1) big-endian column words. */
    std::array<std::uint32_t, 4 * (kRounds + 1)> ek_{};
    /** Decryption round keys (equivalent inverse cipher), lazy. */
    mutable std::array<std::uint32_t, 4 * (kRounds + 1)> dk_{};
    mutable bool dkValid_ = false;
    /** The loaded key, for the setKey() same-key fast path. */
    std::array<std::uint8_t, kKeyBytes> key_{};
    bool keyed_ = false;
};

} // namespace secmem

#endif // SECMEM_CRYPTO_AES_HH
