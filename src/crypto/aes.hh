/**
 * @file
 * AES-128 block cipher (FIPS-197), dispatched through the pluggable
 * crypto-backend layer.
 *
 * Bit-exact functional implementation used by the model: counter-mode
 * pad generation, GCM hash-subkey derivation and direct (XOM-style)
 * block encryption all run through this class. Hardware latency is
 * modelled separately by enc/AesEngine; this class is purely
 * functional.
 *
 * The actual round computation lives in a CryptoBackend
 * (crypto/backend/): T-table software on the portable tier, AES-NI on
 * the hw tier, masked byte-algebra on the ct tier. An Aes128 binds to
 * the process-wide active backend at construction (or to an explicit
 * one, for per-backend tests and benchmarks) and never rebinds. The
 * key schedule is cached per key — setKey() with the key already
 * loaded is a no-op — and both cipher directions are expanded eagerly,
 * so a keyed Aes128 is immutable and safe to share across worker
 * threads. The historical byte-wise implementation survives as
 * ref::AesNaive (src/ref/), the backend-independent oracle for every
 * tier.
 */

#ifndef SECMEM_CRYPTO_AES_HH
#define SECMEM_CRYPTO_AES_HH

#include <algorithm>
#include <array>
#include <cstdint>

#include "crypto/backend/backend.hh"
#include "crypto/bytes.hh"

namespace secmem
{

/** AES-128 with precomputed round keys for both directions. */
class Aes128
{
  public:
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    /** Bind to the process-wide active backend, no key loaded yet. */
    Aes128() : backend_(&activeCryptoBackend()) {}
    explicit Aes128(const std::uint8_t key[kKeyBytes]) : Aes128()
    {
        setKey(key);
    }
    explicit Aes128(const Block16 &key) : Aes128(key.b.data()) {}

    /** Pin to a specific backend (per-backend tests and benchmarks). */
    explicit Aes128(const CryptoBackend &be) : backend_(&be) {}
    Aes128(const CryptoBackend &be, const std::uint8_t key[kKeyBytes])
        : backend_(&be)
    {
        setKey(key);
    }
    Aes128(const CryptoBackend &be, const Block16 &key)
        : Aes128(be, key.b.data())
    {}

    /** The backend this instance dispatches to. */
    const CryptoBackend &backend() const { return *backend_; }

    /**
     * Expand @p key into the round keys for both directions. A no-op
     * when @p key is the key already loaded, so re-keying call sites
     * can call this unconditionally without re-expanding.
     */
    void
    setKey(const std::uint8_t key[kKeyBytes])
    {
        if (keyed_ && std::equal(key, key + kKeyBytes, key_.begin()))
            return;
        backend_->aesExpandKey(sched_, key);
        std::copy(key, key + kKeyBytes, key_.begin());
        keyed_ = true;
    }

    /** Encrypt one 16-byte chunk. In-place operation is allowed. */
    void
    encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
    {
        backend_->aesEncryptBlock(sched_, in, out);
    }

    /** Decrypt one 16-byte chunk. In-place operation is allowed. */
    void
    decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
    {
        backend_->aesDecryptBlock(sched_, in, out);
    }

    /**
     * Encrypt @p n consecutive 16-byte chunks in one backend call.
     * Identical output to n encryptBlock calls; pipelined backends
     * overlap the independent streams.
     */
    void
    encryptBlocks(const std::uint8_t *in, std::uint8_t *out,
                  unsigned n) const
    {
        backend_->aesEncryptBlocks(sched_, in, out, n);
    }

    Block16
    encrypt(const Block16 &in) const
    {
        Block16 out;
        encryptBlock(in.b.data(), out.b.data());
        return out;
    }

    Block16
    decrypt(const Block16 &in) const
    {
        Block16 out;
        decryptBlock(in.b.data(), out.b.data());
        return out;
    }

  private:
    const CryptoBackend *backend_;
    /** Backend-formatted round keys, both directions, eager. */
    AesSchedule sched_;
    /** The loaded key, for the setKey() same-key fast path. */
    std::array<std::uint8_t, kKeyBytes> key_{};
    bool keyed_ = false;
};

} // namespace secmem

#endif // SECMEM_CRYPTO_AES_HH
