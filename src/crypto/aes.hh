/**
 * @file
 * Software AES-128 block cipher (FIPS-197).
 *
 * Bit-exact implementation used by the functional model: counter-mode
 * pad generation, GCM hash-subkey derivation and direct (XOM-style)
 * block encryption all run through this class. Hardware latency is
 * modelled separately by enc/AesEngine; this class is purely functional.
 */

#ifndef SECMEM_CRYPTO_AES_HH
#define SECMEM_CRYPTO_AES_HH

#include <array>
#include <cstdint>

#include "crypto/bytes.hh"

namespace secmem
{

/** AES-128 with precomputed round keys for both directions. */
class Aes128
{
  public:
    static constexpr std::size_t kKeyBytes = 16;
    static constexpr int kRounds = 10;

    Aes128() = default;
    explicit Aes128(const std::uint8_t key[kKeyBytes]) { setKey(key); }
    explicit Aes128(const Block16 &key) { setKey(key.b.data()); }

    /** Expand @p key into encryption and decryption round keys. */
    void setKey(const std::uint8_t key[kKeyBytes]);

    /** Encrypt one 16-byte chunk. In-place operation is allowed. */
    void encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Decrypt one 16-byte chunk. In-place operation is allowed. */
    void decryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    Block16
    encrypt(const Block16 &in) const
    {
        Block16 out;
        encryptBlock(in.b.data(), out.b.data());
        return out;
    }

    Block16
    decrypt(const Block16 &in) const
    {
        Block16 out;
        decryptBlock(in.b.data(), out.b.data());
        return out;
    }

  private:
    /** Encryption round keys: (kRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, (kRounds + 1) * 16> rk_{};
};

} // namespace secmem

#endif // SECMEM_CRYPTO_AES_HH
