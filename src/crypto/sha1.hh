/**
 * @file
 * SHA-1 message digest (FIPS 180-1).
 *
 * Used functionally by the SHA-1 MAC baseline that the paper compares
 * GCM against. As with AES, hardware latency (80..640 cycles, 32-stage
 * pipeline) is modelled separately by the timing layer.
 */

#ifndef SECMEM_CRYPTO_SHA1_HH
#define SECMEM_CRYPTO_SHA1_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace secmem
{

/** Streaming SHA-1 with the usual update/final interface. */
class Sha1
{
  public:
    static constexpr std::size_t kDigestBytes = 20;
    using Digest = std::array<std::uint8_t, kDigestBytes>;

    Sha1() { reset(); }

    /** Restart hashing. */
    void reset();

    /** Absorb @p n bytes. */
    void update(const std::uint8_t *data, std::size_t n);

    void
    update(const std::string &s)
    {
        update(reinterpret_cast<const std::uint8_t *>(s.data()), s.size());
    }

    /** Finish and return the digest; the object needs reset() to reuse. */
    Digest final();

    /** One-shot convenience. */
    static Digest
    digestOf(const std::uint8_t *data, std::size_t n)
    {
        Sha1 h;
        h.update(data, n);
        return h.final();
    }

  private:
    void processChunk(const std::uint8_t chunk[64]);

    std::uint32_t h_[5];
    std::uint8_t buf_[64];
    std::size_t bufLen_ = 0;
    std::uint64_t totalBits_ = 0;
};

} // namespace secmem

#endif // SECMEM_CRYPTO_SHA1_HH
