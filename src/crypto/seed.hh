/**
 * @file
 * Counter-mode seed construction and per-block pad/MAC helpers.
 *
 * Following Yan et al. (ISCA 2006), the seed fed to AES when
 * encrypting chunk i of the cache block at address A with counter c is
 * the concatenation of the chunk address, the block counter and a
 * constant initialization vector. We pack these injectively into one
 * 16-byte AES input:
 *
 *   bytes  0..5   block index (A >> 6), little-endian, 48 bits
 *   bytes  6..13  block counter, little-endian, 64 bits
 *   byte   14     chunk index (bits 0..1) | domain (bit 7)
 *   byte   15     initialization-vector byte (EIV / AIV)
 *
 * The domain bit separates encryption pads from GCM authentication
 * pads so the two can never collide for the same (address, counter).
 * For split counters the 64-bit counter field carries
 * (major << minorBits) | minor, which is injective as long as the
 * major counter stays below 2^(64 - minorBits) — i.e. for millennia.
 */

#ifndef SECMEM_CRYPTO_SEED_HH
#define SECMEM_CRYPTO_SEED_HH

#include <cstdint>

#include "crypto/aes.hh"
#include "crypto/bytes.hh"
#include "crypto/gf128.hh"
#include "crypto/sha1.hh"
#include "sim/types.hh"

namespace secmem
{

/** Which pad a seed generates. */
enum class SeedDomain : std::uint8_t
{
    Encrypt = 0, ///< data-encryption pad (EIV)
    Auth = 1,    ///< GCM authentication pad (AIV)
};

/** Build the 16-byte AES input for (block, counter, chunk, domain). */
Block16 makeSeed(Addr block_addr, std::uint64_t counter, unsigned chunk,
                 SeedDomain domain, std::uint8_t iv_byte);

/** Generate the four-chunk encryption pad for one cache block. */
Block64 makePad(const Aes128 &aes, Addr block_addr, std::uint64_t counter,
                std::uint8_t iv_byte);

/** Counter-mode encrypt (or decrypt — the operation is its own inverse). */
Block64 ctrCrypt(const Aes128 &aes, const Block64 &in, Addr block_addr,
                 std::uint64_t counter, std::uint8_t iv_byte);

/**
 * GCM authentication tag for one cache block.
 *
 * tag = GHASH_H(C1..C4, len) ^ AES_K(seed(addr, counter, Auth)).
 * The counter binds the tag to the encryption counter, which is what
 * makes the counter "indirectly authenticated" (paper Section 4.3).
 */
Block16 gcmBlockTag(const Aes128 &aes, const Block16 &hash_subkey,
                    const Block64 &ciphertext, Addr block_addr,
                    std::uint64_t counter, std::uint8_t iv_byte);

/**
 * gcmBlockTag under a precomputed subkey table. Long-lived callers
 * (the memory controller tags every write-back and tree node under one
 * subkey) keep a Gf128Table so per-tag work is pure table lookups.
 */
Block16 gcmBlockTag(const Aes128 &aes, const Gf128Table &hash_subkey,
                    const Block64 &ciphertext, Addr block_addr,
                    std::uint64_t counter, std::uint8_t iv_byte);

/**
 * SHA-1 MAC baseline: SHA1(key || addr || counter || epoch || ct),
 * truncated to 16 bytes for storage symmetry with GCM tags. The epoch
 * byte tracks whole-memory re-encryption generations.
 */
Block16 sha1BlockTag(const Block16 &key, const Block64 &ciphertext,
                     Addr block_addr, std::uint64_t counter,
                     std::uint8_t epoch = 0);

/** Zero all but the leading @p mac_bits bits of @p tag (tag clipping). */
Block16 clipTag(const Block16 &tag, unsigned mac_bits);

} // namespace secmem

#endif // SECMEM_CRYPTO_SEED_HH
