/**
 * @file
 * The hardware crypto backend: AES-NI for the block cipher and
 * PCLMULQDQ carry-less multiplication for GHASH. Compiled only when
 * the toolchain accepts -maes -mpclmul (the build defines
 * SECMEM_HAVE_HW_CRYPTO and compiles this file with those flags);
 * selected at runtime only when CPUID reports both feature bits, so a
 * binary built with this backend still runs — on the portable tier —
 * on hosts without the instructions.
 *
 * Besides speed, the dedicated instructions are constant-time by
 * construction: no key- or data-dependent table lookups, unlike the
 * portable tier.
 *
 * The GF(2^128) multiply follows the classic Intel white-paper
 * formulation (Gueron & Kounavis, "Intel Carry-Less Multiplication
 * Instruction and its Usage for Computing the GCM Mode"): GCM's
 * reflected bit order means a byte-reversed block is a plain
 * little-endian polynomial, so the product is four PCLMULQDQs
 * (schoolbook over 64-bit halves), a 256-bit left shift by one to
 * undo the reflection offset, and the shift-based reduction modulo
 * x^128 + x^7 + x^2 + x + 1. Our Gf128{hi,lo} big-endian halves load
 * straight into that byte-reversed form via _mm_set_epi64x(hi, lo).
 */

#include "crypto/backend/backend.hh"

#include <cstring>
#include <new>
#include <wmmintrin.h>

#include "crypto/gf128.hh"

namespace secmem
{

namespace
{

constexpr int kRounds = 10;

/** Round keys for both directions, 11 xmm words each. */
struct HwSched
{
    __m128i ek[kRounds + 1];
    __m128i dk[kRounds + 1];
};

static_assert(sizeof(HwSched) <= AesSchedule::kBytes,
              "hw schedule must fit the opaque storage");
static_assert(alignof(HwSched) <= alignof(AesSchedule),
              "AesSchedule storage must satisfy xmm alignment");

inline const HwSched *
sched(const AesSchedule &s)
{
    return reinterpret_cast<const HwSched *>(s.bytes.data());
}

/**
 * One AES-128 key-schedule round: fold the previous round key into
 * itself (the running-XOR of its words) and mix in the rotated,
 * substituted last word that AESKEYGENASSIST produced in lane 3.
 */
inline __m128i
expandStep(__m128i key, __m128i assist)
{
    assist = _mm_shuffle_epi32(assist, _MM_SHUFFLE(3, 3, 3, 3));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
    return _mm_xor_si128(key, assist);
}

/**
 * Carry-less GF(2^128) GCM multiply of byte-reversed blocks (Intel
 * white-paper Algorithm 5 shape).
 */
inline __m128i
gfmul(__m128i a, __m128i b)
{
    // Schoolbook 64x64 halves: lo*lo, cross terms, hi*hi.
    __m128i t3 = _mm_clmulepi64_si128(a, b, 0x00);
    __m128i t4 = _mm_clmulepi64_si128(a, b, 0x10);
    __m128i t5 = _mm_clmulepi64_si128(a, b, 0x01);
    __m128i t6 = _mm_clmulepi64_si128(a, b, 0x11);

    t4 = _mm_xor_si128(t4, t5);
    t5 = _mm_slli_si128(t4, 8);
    t4 = _mm_srli_si128(t4, 8);
    t3 = _mm_xor_si128(t3, t5); // low 128 bits of the 256-bit product
    t6 = _mm_xor_si128(t6, t4); // high 128 bits

    // Shift the whole 256-bit product left by one: the reflected
    // representation makes the carry-less product land one bit right
    // of where the GCM convention wants it.
    __m128i t7 = _mm_srli_epi32(t3, 31);
    __m128i t8 = _mm_srli_epi32(t6, 31);
    t3 = _mm_slli_epi32(t3, 1);
    t6 = _mm_slli_epi32(t6, 1);
    __m128i t9 = _mm_srli_si128(t7, 12);
    t8 = _mm_slli_si128(t8, 4);
    t7 = _mm_slli_si128(t7, 4);
    t3 = _mm_or_si128(t3, t7);
    t6 = _mm_or_si128(t6, t8);
    t6 = _mm_or_si128(t6, t9);

    // Reduce modulo x^128 + x^7 + x^2 + x + 1 (shift-XOR form).
    t7 = _mm_slli_epi32(t3, 31);
    t8 = _mm_slli_epi32(t3, 30);
    t9 = _mm_slli_epi32(t3, 25);
    t7 = _mm_xor_si128(t7, t8);
    t7 = _mm_xor_si128(t7, t9);
    t8 = _mm_srli_si128(t7, 4);
    t7 = _mm_slli_si128(t7, 12);
    t3 = _mm_xor_si128(t3, t7);

    __m128i t2 = _mm_srli_epi32(t3, 1);
    t4 = _mm_srli_epi32(t3, 2);
    t5 = _mm_srli_epi32(t3, 7);
    t2 = _mm_xor_si128(t2, t4);
    t2 = _mm_xor_si128(t2, t5);
    t2 = _mm_xor_si128(t2, t8);
    t3 = _mm_xor_si128(t3, t2);
    return _mm_xor_si128(t6, t3);
}

/** Just H, preloaded into the byte-reversed xmm form. */
struct HwGhashKey final : GhashKey
{
    std::uint64_t hi = 0, lo = 0;
};

class HwBackend final : public CryptoBackend
{
  public:
    const char *
    name() const override
    {
        return "hw";
    }

    const char *
    description() const override
    {
        return "AES-NI + PCLMULQDQ carry-less GHASH (fastest, "
               "constant-time; needs CPU support)";
    }

    int
    rank() const override
    {
        return 100;
    }

    bool
    available() const override
    {
        return __builtin_cpu_supports("aes") &&
               __builtin_cpu_supports("pclmul");
    }

    void
    aesExpandKey(AesSchedule &s, const std::uint8_t key[16]) const override
    {
        auto *hs = new (s.bytes.data()) HwSched;
        __m128i k =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(key));
        hs->ek[0] = k;
        // AESKEYGENASSIST takes the round constant as an immediate, so
        // the ten schedule rounds are unrolled via a macro.
#define SECMEM_AES_EXPAND_ROUND(i, rcon)                                     \
    k = expandStep(k, _mm_aeskeygenassist_si128(k, rcon));                   \
    hs->ek[i] = k;
        SECMEM_AES_EXPAND_ROUND(1, 0x01)
        SECMEM_AES_EXPAND_ROUND(2, 0x02)
        SECMEM_AES_EXPAND_ROUND(3, 0x04)
        SECMEM_AES_EXPAND_ROUND(4, 0x08)
        SECMEM_AES_EXPAND_ROUND(5, 0x10)
        SECMEM_AES_EXPAND_ROUND(6, 0x20)
        SECMEM_AES_EXPAND_ROUND(7, 0x40)
        SECMEM_AES_EXPAND_ROUND(8, 0x80)
        SECMEM_AES_EXPAND_ROUND(9, 0x1b)
        SECMEM_AES_EXPAND_ROUND(10, 0x36)
#undef SECMEM_AES_EXPAND_ROUND
        // Equivalent inverse cipher: reversed order, middle keys
        // through AESIMC. Eager, so the schedule is immutable after
        // expansion (thread-shareable).
        hs->dk[0] = hs->ek[kRounds];
        for (int i = 1; i < kRounds; ++i)
            hs->dk[i] = _mm_aesimc_si128(hs->ek[kRounds - i]);
        hs->dk[kRounds] = hs->ek[0];
    }

    void
    aesEncryptBlock(const AesSchedule &s, const std::uint8_t in[16],
                    std::uint8_t out[16]) const override
    {
        const __m128i *ek = sched(s)->ek;
        __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
        b = _mm_xor_si128(b, ek[0]);
        for (int i = 1; i < kRounds; ++i)
            b = _mm_aesenc_si128(b, ek[i]);
        b = _mm_aesenclast_si128(b, ek[kRounds]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out), b);
    }

    void
    aesEncryptBlocks(const AesSchedule &s, const std::uint8_t *in,
                     std::uint8_t *out, unsigned n) const override
    {
        // Four independent streams per pass: AESENC latency is ~4
        // cycles but throughput is 1/cycle, so interleaving hides the
        // round-to-round dependency chain that serializes the
        // one-block path.
        const __m128i *ek = sched(s)->ek;
        unsigned i = 0;
        for (; i + 4 <= n; i += 4) {
            const __m128i *src =
                reinterpret_cast<const __m128i *>(in + 16 * i);
            __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), ek[0]);
            __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), ek[0]);
            __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), ek[0]);
            __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), ek[0]);
            for (int r = 1; r < kRounds; ++r) {
                b0 = _mm_aesenc_si128(b0, ek[r]);
                b1 = _mm_aesenc_si128(b1, ek[r]);
                b2 = _mm_aesenc_si128(b2, ek[r]);
                b3 = _mm_aesenc_si128(b3, ek[r]);
            }
            b0 = _mm_aesenclast_si128(b0, ek[kRounds]);
            b1 = _mm_aesenclast_si128(b1, ek[kRounds]);
            b2 = _mm_aesenclast_si128(b2, ek[kRounds]);
            b3 = _mm_aesenclast_si128(b3, ek[kRounds]);
            __m128i *dst = reinterpret_cast<__m128i *>(out + 16 * i);
            _mm_storeu_si128(dst + 0, b0);
            _mm_storeu_si128(dst + 1, b1);
            _mm_storeu_si128(dst + 2, b2);
            _mm_storeu_si128(dst + 3, b3);
        }
        for (; i < n; ++i)
            aesEncryptBlock(s, in + 16 * i, out + 16 * i);
    }

    void
    aesDecryptBlock(const AesSchedule &s, const std::uint8_t in[16],
                    std::uint8_t out[16]) const override
    {
        const __m128i *dk = sched(s)->dk;
        __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i *>(in));
        b = _mm_xor_si128(b, dk[0]);
        for (int i = 1; i < kRounds; ++i)
            b = _mm_aesdec_si128(b, dk[i]);
        b = _mm_aesdeclast_si128(b, dk[kRounds]);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out), b);
    }

    std::shared_ptr<const GhashKey>
    ghashKey(const Gf128 &h) const override
    {
        auto key = std::make_shared<HwGhashKey>();
        key->hi = h.hi;
        key->lo = h.lo;
        return key;
    }

    Gf128
    ghashMul(const GhashKey &key, const Gf128 &x) const override
    {
        const auto &k = static_cast<const HwGhashKey &>(key);
        // Gf128's big-endian halves ARE the byte-reversed (reflected)
        // polynomial halves gfmul() expects: set_epi64x(hi, lo).
        __m128i h = _mm_set_epi64x(static_cast<long long>(k.hi),
                                   static_cast<long long>(k.lo));
        __m128i v = _mm_set_epi64x(static_cast<long long>(x.hi),
                                   static_cast<long long>(x.lo));
        __m128i p = gfmul(v, h);
        alignas(16) std::uint64_t w[2];
        _mm_store_si128(reinterpret_cast<__m128i *>(w), p);
        return Gf128{w[1], w[0]};
    }
};

} // namespace

const CryptoBackend &
hwCryptoBackend()
{
    static const HwBackend backend;
    return backend;
}

} // namespace secmem
