/**
 * @file
 * The crypto-backend registry and process-wide active-backend state.
 *
 * The registry is the fixed list of backends compiled into this binary
 * (portable and ct always; hw when the toolchain supported
 * -maes -mpclmul), ordered by rank. The active backend is a single
 * atomic pointer: resolved lazily on first use from the
 * SECMEM_CRYPTO_BACKEND environment variable or rank-based
 * auto-selection, and settable explicitly (the --crypto-backend flag)
 * before the datapath objects that bind to it are constructed. Naming
 * an unknown or CPU-unsupported backend is a hard error — a security
 * artifact must never silently substitute a different cipher
 * implementation for the one the user asked for.
 */

#include "crypto/backend/backend.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "sim/log.hh"

namespace secmem
{

namespace
{

std::atomic<const CryptoBackend *> g_active{nullptr};

std::string
knownBackendNames()
{
    std::string names;
    for (const CryptoBackend *b : cryptoBackends()) {
        if (!names.empty())
            names += ", ";
        names += b->name();
    }
    return names;
}

} // namespace

const std::vector<const CryptoBackend *> &
cryptoBackends()
{
    static const std::vector<const CryptoBackend *> list = [] {
        std::vector<const CryptoBackend *> v;
#if SECMEM_HAVE_HW_CRYPTO
        v.push_back(&hwCryptoBackend());
#endif
        v.push_back(&portableCryptoBackend());
        v.push_back(&ctCryptoBackend());
        std::stable_sort(v.begin(), v.end(),
                         [](const CryptoBackend *a, const CryptoBackend *b) {
                             return a->rank() > b->rank();
                         });
        return v;
    }();
    return list;
}

const CryptoBackend *
findCryptoBackend(std::string_view name)
{
    for (const CryptoBackend *b : cryptoBackends())
        if (name == b->name())
            return b;
    return nullptr;
}

const CryptoBackend *
resolveCryptoBackend(const char *flag_name, const char *env_name,
                     std::string *err)
{
    const char *name = nullptr;
    const char *source = nullptr;
    if (flag_name && *flag_name) {
        name = flag_name;
        source = "--crypto-backend";
    } else if (env_name && *env_name) {
        name = env_name;
        source = "SECMEM_CRYPTO_BACKEND";
    }
    if (!name) {
        // Auto-selection: highest rank whose CPUID check passes. The
        // portable backend is always compiled in and always available,
        // so this cannot come up empty.
        for (const CryptoBackend *b : cryptoBackends())
            if (b->available())
                return b;
        if (err)
            *err = "no available crypto backend (broken registry)";
        return nullptr;
    }
    const CryptoBackend *b = findCryptoBackend(name);
    if (!b) {
        if (err)
            *err = std::string("unknown crypto backend '") + name +
                   "' (from " + source +
                   "); compiled-in backends: " + knownBackendNames();
        return nullptr;
    }
    if (!b->available()) {
        if (err)
            *err = std::string("crypto backend '") + name + "' (from " +
                   source + ") is not supported on this CPU";
        return nullptr;
    }
    return b;
}

const CryptoBackend &
activeCryptoBackend()
{
    const CryptoBackend *b = g_active.load(std::memory_order_acquire);
    if (b)
        return *b;
    std::string err;
    const CryptoBackend *resolved = resolveCryptoBackend(
        nullptr, std::getenv("SECMEM_CRYPTO_BACKEND"), &err);
    if (!resolved)
        SECMEM_FATAL("%s", err.c_str());
    // First resolver to publish wins; a concurrent racer resolved the
    // same inputs to the same backend, so either store is fine.
    const CryptoBackend *expected = nullptr;
    g_active.compare_exchange_strong(expected, resolved,
                                     std::memory_order_acq_rel);
    return *g_active.load(std::memory_order_acquire);
}

bool
setActiveCryptoBackend(std::string_view name, std::string *err)
{
    const CryptoBackend *b = findCryptoBackend(name);
    if (!b) {
        if (err)
            *err = std::string("unknown crypto backend '") +
                   std::string(name) +
                   "'; compiled-in backends: " + knownBackendNames();
        return false;
    }
    if (!b->available()) {
        if (err)
            *err = std::string("crypto backend '") + std::string(name) +
                   "' is not supported on this CPU";
        return false;
    }
    g_active.store(b, std::memory_order_release);
    return true;
}

} // namespace secmem
