/**
 * @file
 * Internal Shoup-table GF(2^128) machinery shared between the portable
 * crypto backend (which wraps the sixteen positional tables behind the
 * CryptoBackend interface) and the one-shot gf128Mul() convenience in
 * crypto/gf128.cc (which uses the single-table serial form). Both live
 * in backend/portable.cc; nothing outside src/crypto should include
 * this header.
 */

#ifndef SECMEM_CRYPTO_BACKEND_SHOUP_HH
#define SECMEM_CRYPTO_BACKEND_SHOUP_HH

#include <array>

#include "crypto/gf128.hh"

namespace secmem::detail
{

/**
 * Sixteen 256-entry tables for one fixed operand H, one per byte
 * position k of the other operand: t[k][b] = b * H * x^(8k), with the
 * index byte read in GCM's reflected bit order (bit 7 of the index is
 * the x^0-side coefficient). A product is then the XOR of sixteen
 * independent lookups — no serial shift-and-reduce chain, so the
 * lookups pipeline. The tables cost 64 KiB and ~4k word operations to
 * build, which is why one table set per hash subkey is cached (via the
 * portable backend's GhashKey) rather than rebuilt per tag.
 */
struct ShoupTable
{
    std::array<std::array<Gf128, 256>, 16> t{};

    /** The product x * H. */
    Gf128 mul(const Gf128 &x) const;
};

/** Build the sixteen positional tables for @p h into @p out. */
void buildShoupTable(ShoupTable &out, const Gf128 &h);

/**
 * One-shot serial Shoup multiply x * y: builds a single 256-entry
 * table for @p y and walks the bytes of @p x with a shift-plus-
 * reduction step per byte. Backs the generic gf128Mul() helper, where
 * building all sixteen positional tables would dominate.
 */
Gf128 shoupMulSerial(const Gf128 &x, const Gf128 &y);

} // namespace secmem::detail

#endif // SECMEM_CRYPTO_BACKEND_SHOUP_HH
