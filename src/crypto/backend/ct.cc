/**
 * @file
 * The constant-time crypto backend: table-free software kernels whose
 * memory-access pattern and branch trace are independent of key and
 * data. For timing-sensitive use (and as a timing-channel-free
 * cross-check on the table-driven tiers) — it trades roughly two
 * orders of magnitude of throughput for that uniformity, so it ranks
 * below portable and is only ever selected by explicit request.
 *
 * AES-128 computes the S-box algebraically per byte: GF(2^8) inversion
 * as a^254 via a fixed square-and-multiply chain of masked (branch-
 * free, table-free) multiplies, followed by the affine transform as
 * XORs of bit-rotations. Secret bytes select values only through
 * arithmetic masks (mask = -(bit & 1)), never through array indices or
 * branches. Decryption runs the textbook inverse cipher off the
 * encryption schedule, so no equivalent-inverse key transform is
 * needed.
 *
 * GHASH is the bit-serial shift-and-add multiply with the conditional
 * accumulate and conditional reduction both applied through 64-bit
 * masks — 128 uniform iterations per chunk, no tables.
 */

#include "crypto/backend/backend.hh"

#include <cstring>
#include <new>

#include "crypto/gf128.hh"

namespace secmem
{

namespace
{

/** All-ones when the low bit of @p b is set, else zero. */
inline std::uint8_t
maskOf(std::uint8_t b)
{
    return static_cast<std::uint8_t>(-(b & 1));
}

/** Branch-free multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1. */
inline std::uint8_t
xtimeCt(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^
                                     (maskOf(a >> 7) & 0x1b));
}

/** Branch-free GF(2^8) multiply: eight masked accumulate steps. */
inline std::uint8_t
gmulCt(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        p ^= maskOf(b) & a;
        a = xtimeCt(a);
        b >>= 1;
    }
    return p;
}

/**
 * GF(2^8) inversion as a^254 (Fermat), via the fixed chain
 * a^254 = a^2 * a^4 * ... * a^128: seven squarings, six multiplies,
 * identical for every input. Maps 0 to 0 as the S-box requires.
 */
inline std::uint8_t
inv8(std::uint8_t a)
{
    std::uint8_t s = gmulCt(a, a); // a^2
    std::uint8_t r = s;
    for (int i = 0; i < 6; ++i) {
        s = gmulCt(s, s); // a^(2^(i+2))
        r = gmulCt(r, s);
    }
    return r; // a^(2+4+8+...+128) = a^254
}

inline std::uint8_t
rotl8(std::uint8_t a, int n)
{
    return static_cast<std::uint8_t>((a << n) | (a >> (8 - n)));
}

/** SubBytes on one byte: inversion then the FIPS-197 affine map. */
inline std::uint8_t
sboxCt(std::uint8_t a)
{
    std::uint8_t i = inv8(a);
    return static_cast<std::uint8_t>(i ^ rotl8(i, 1) ^ rotl8(i, 2) ^
                                     rotl8(i, 3) ^ rotl8(i, 4) ^ 0x63);
}

/** InvSubBytes on one byte: inverse affine map, then inversion. */
inline std::uint8_t
invSboxCt(std::uint8_t a)
{
    std::uint8_t b = static_cast<std::uint8_t>(rotl8(a, 1) ^ rotl8(a, 3) ^
                                               rotl8(a, 6) ^ 0x05);
    return inv8(b);
}

constexpr int kRounds = 10;

/** Encryption round keys only; decryption inverts them in place. */
struct CtSched
{
    std::uint8_t rk[16 * (kRounds + 1)];
};

static_assert(sizeof(CtSched) <= AesSchedule::kBytes,
              "ct schedule must fit the opaque storage");

inline const CtSched *
sched(const AesSchedule &s)
{
    return reinterpret_cast<const CtSched *>(s.bytes.data());
}

/** ShiftRows / InvShiftRows, state byte index = 4*column + row. */
inline void
shiftRows(std::uint8_t s[16], bool inverse)
{
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r) {
            int src = inverse ? (c - r + 4) % 4 : (c + r) % 4;
            t[4 * c + r] = s[4 * src + r];
        }
    std::memcpy(s, t, 16);
}

inline void
mixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *p = s + 4 * c;
        std::uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
        std::uint8_t all = static_cast<std::uint8_t>(a0 ^ a1 ^ a2 ^ a3);
        p[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtimeCt(a0 ^ a1));
        p[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtimeCt(a1 ^ a2));
        p[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtimeCt(a2 ^ a3));
        p[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtimeCt(a3 ^ a0));
    }
}

inline void
invMixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *p = s + 4 * c;
        std::uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
        p[0] = static_cast<std::uint8_t>(gmulCt(a0, 14) ^ gmulCt(a1, 11) ^
                                         gmulCt(a2, 13) ^ gmulCt(a3, 9));
        p[1] = static_cast<std::uint8_t>(gmulCt(a0, 9) ^ gmulCt(a1, 14) ^
                                         gmulCt(a2, 11) ^ gmulCt(a3, 13));
        p[2] = static_cast<std::uint8_t>(gmulCt(a0, 13) ^ gmulCt(a1, 9) ^
                                         gmulCt(a2, 14) ^ gmulCt(a3, 11));
        p[3] = static_cast<std::uint8_t>(gmulCt(a0, 11) ^ gmulCt(a1, 13) ^
                                         gmulCt(a2, 9) ^ gmulCt(a3, 14));
    }
}

inline void
addRoundKey(std::uint8_t s[16], const std::uint8_t rk[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

/** All-ones u64 when the low bit of @p b is set, else zero. */
inline std::uint64_t
maskOf64(std::uint64_t b)
{
    return static_cast<std::uint64_t>(-static_cast<std::int64_t>(b & 1));
}

/** The ct tier keeps only H itself — no precomputed tables to leak. */
struct CtGhashKey final : GhashKey
{
    Gf128 h;
};

class CtBackend final : public CryptoBackend
{
  public:
    const char *
    name() const override
    {
        return "ct";
    }

    const char *
    description() const override
    {
        return "constant-time software AES + table-free GHASH (slow, "
               "timing-uniform)";
    }

    int
    rank() const override
    {
        // Below portable: never auto-selected, explicit request only.
        return 10;
    }

    bool
    available() const override
    {
        return true;
    }

    void
    aesExpandKey(AesSchedule &s, const std::uint8_t key[16]) const override
    {
        auto *cs = new (s.bytes.data()) CtSched;
        std::memcpy(cs->rk, key, 16);
        std::uint8_t rcon = 1;
        for (int i = 16; i < 16 * (kRounds + 1); i += 4) {
            std::uint8_t t[4];
            std::memcpy(t, cs->rk + i - 4, 4);
            if (i % 16 == 0) {
                std::uint8_t t0 = t[0];
                t[0] = static_cast<std::uint8_t>(sboxCt(t[1]) ^ rcon);
                t[1] = sboxCt(t[2]);
                t[2] = sboxCt(t[3]);
                t[3] = sboxCt(t0);
                rcon = xtimeCt(rcon);
            }
            for (int j = 0; j < 4; ++j)
                cs->rk[i + j] = static_cast<std::uint8_t>(
                    cs->rk[i - 16 + j] ^ t[j]);
        }
    }

    void
    aesEncryptBlock(const AesSchedule &s, const std::uint8_t in[16],
                    std::uint8_t out[16]) const override
    {
        const std::uint8_t *rk = sched(s)->rk;
        std::uint8_t st[16];
        std::memcpy(st, in, 16);
        addRoundKey(st, rk);
        for (int round = 1; round < kRounds; ++round) {
            for (int i = 0; i < 16; ++i)
                st[i] = sboxCt(st[i]);
            shiftRows(st, false);
            mixColumns(st);
            addRoundKey(st, rk + 16 * round);
        }
        for (int i = 0; i < 16; ++i)
            st[i] = sboxCt(st[i]);
        shiftRows(st, false);
        addRoundKey(st, rk + 16 * kRounds);
        std::memcpy(out, st, 16);
    }

    void
    aesDecryptBlock(const AesSchedule &s, const std::uint8_t in[16],
                    std::uint8_t out[16]) const override
    {
        // Textbook inverse cipher: walk the encryption schedule
        // backwards, no equivalent-inverse key transform.
        const std::uint8_t *rk = sched(s)->rk;
        std::uint8_t st[16];
        std::memcpy(st, in, 16);
        addRoundKey(st, rk + 16 * kRounds);
        for (int round = kRounds - 1; round >= 1; --round) {
            shiftRows(st, true);
            for (int i = 0; i < 16; ++i)
                st[i] = invSboxCt(st[i]);
            addRoundKey(st, rk + 16 * round);
            invMixColumns(st);
        }
        shiftRows(st, true);
        for (int i = 0; i < 16; ++i)
            st[i] = invSboxCt(st[i]);
        addRoundKey(st, rk);
        std::memcpy(out, st, 16);
    }

    std::shared_ptr<const GhashKey>
    ghashKey(const Gf128 &h) const override
    {
        auto key = std::make_shared<CtGhashKey>();
        key->h = h;
        return key;
    }

    Gf128
    ghashMul(const GhashKey &key, const Gf128 &x) const override
    {
        // Bit-serial shift-and-add over the 128 coefficients of x
        // (x^0-side first = MSB of hi), accumulate and reduction both
        // masked — uniform work per bit regardless of operand values.
        Gf128 v = static_cast<const CtGhashKey &>(key).h;
        std::uint64_t zhi = 0, zlo = 0;
        for (int half = 0; half < 2; ++half) {
            std::uint64_t bits =
                half == 0 ? x.hi : x.lo;
            for (int i = 63; i >= 0; --i) {
                std::uint64_t m = maskOf64(bits >> i);
                zhi ^= m & v.hi;
                zlo ^= m & v.lo;
                std::uint64_t r = maskOf64(v.lo);
                v.lo = (v.lo >> 1) | (v.hi << 63);
                v.hi = (v.hi >> 1) ^ (r & 0xe100000000000000ull);
            }
        }
        return Gf128{zhi, zlo};
    }
};

} // namespace

const CryptoBackend &
ctCryptoBackend()
{
    static const CtBackend backend;
    return backend;
}

} // namespace secmem
