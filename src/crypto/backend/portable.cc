/**
 * @file
 * The portable crypto backend: table-driven software kernels that run
 * on any host. This is the code that was crypto/aes.cc and the table
 * half of crypto/gf128.cc before the backend registry existed, moved
 * behind the CryptoBackend interface unchanged in substance.
 *
 * AES-128 is T-table based: four 1 KiB fused SubBytes+ShiftRows+
 * MixColumns tables, generated at compile time from the S-box so the
 * 8 KiB of constants cannot drift from the reference byte-wise
 * transform. GHASH uses Shoup's precomputed-table method with 8-bit
 * windows (sixteen positional 256-entry tables per subkey).
 *
 * Fast and portable, but NOT constant-time: both the T-tables and the
 * Shoup tables index memory with secret-derived bytes, so cache-timing
 * observation can in principle leak key material. Hosts with AES-NI
 * get the hw backend by default; timing-sensitive software-only use
 * should select the ct backend.
 */

#include "crypto/backend/backend.hh"

#include <cstring>
#include <new>

#include "crypto/backend/shoup.hh"
#include "crypto/bytes.hh"
#include "crypto/gf128.hh"

namespace secmem
{

namespace
{

// ---- AES-128: T-table cipher -------------------------------------------

/** FIPS-197 S-box. */
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

/** Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1. */
constexpr std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

/** General GF(2^8) multiply (table generation only). */
constexpr std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

constexpr std::uint32_t
packColumn(std::uint8_t r0, std::uint8_t r1, std::uint8_t r2, std::uint8_t r3)
{
    return (std::uint32_t(r0) << 24) | (std::uint32_t(r1) << 16) |
           (std::uint32_t(r2) << 8) | r3;
}

/**
 * Fused SubBytes+ShiftRows+MixColumns lookup tables, generated at
 * compile time from the S-box so the 8 KiB of constants cannot drift
 * from the reference byte-wise transform.
 *
 * TeN[b] is the contribution of state byte b arriving (post-ShiftRows)
 * in row N of a column: the S-box output scattered through the
 * MixColumns matrix {02,03,01,01}. TdN likewise applies the inverse
 * S-box and the InvMixColumns matrix {0e,0b,0d,09}. A full round is
 * then four lookups + XORs per output column.
 */
struct AesTables
{
    std::uint32_t Te[4][256]{};
    std::uint32_t Td[4][256]{};
    std::uint8_t inv[256]{}; ///< inverse S-box (final decrypt round)
};

constexpr AesTables
buildTables()
{
    AesTables t{};
    for (unsigned i = 0; i < 256; ++i) {
        std::uint8_t s = kSbox[i];
        t.inv[s] = static_cast<std::uint8_t>(i);
        std::uint32_t w = packColumn(gmul(s, 2), s, s, gmul(s, 3));
        for (int n = 0; n < 4; ++n) {
            t.Te[n][i] = w;
            w = (w >> 8) | (w << 24); // next row: rotate the column
        }
    }
    for (unsigned i = 0; i < 256; ++i) {
        std::uint8_t s = t.inv[i];
        std::uint32_t w = packColumn(gmul(s, 14), gmul(s, 9), gmul(s, 13),
                                     gmul(s, 11));
        for (int n = 0; n < 4; ++n) {
            t.Td[n][i] = w;
            w = (w >> 8) | (w << 24);
        }
    }
    return t;
}

constexpr AesTables kT = buildTables();

/** SubWord(RotWord(w)) for the key schedule. */
inline std::uint32_t
subRotWord(std::uint32_t w)
{
    return packColumn(kSbox[(w >> 16) & 0xff], kSbox[(w >> 8) & 0xff],
                      kSbox[w & 0xff], kSbox[w >> 24]);
}

/** InvMixColumns of one round-key word, via the decryption tables. */
inline std::uint32_t
invMixColumn(std::uint32_t w)
{
    // Td already folds in the inverse S-box, so feed it S-box outputs.
    return kT.Td[0][kSbox[w >> 24]] ^ kT.Td[1][kSbox[(w >> 16) & 0xff]] ^
           kT.Td[2][kSbox[(w >> 8) & 0xff]] ^ kT.Td[3][kSbox[w & 0xff]];
}

constexpr int kRounds = 10;

/** Round keys for both directions, laid out inside AesSchedule. */
struct PortableSched
{
    /** Encryption round keys: (kRounds + 1) big-endian column words. */
    std::uint32_t ek[4 * (kRounds + 1)];
    /** Decryption round keys (equivalent inverse cipher). */
    std::uint32_t dk[4 * (kRounds + 1)];
};

static_assert(sizeof(PortableSched) <= AesSchedule::kBytes,
              "portable schedule must fit the opaque storage");

inline PortableSched *
sched(AesSchedule &s)
{
    return reinterpret_cast<PortableSched *>(s.bytes.data());
}

inline const PortableSched *
sched(const AesSchedule &s)
{
    return reinterpret_cast<const PortableSched *>(s.bytes.data());
}

// ---- GHASH: Shoup tables ------------------------------------------------

/**
 * Multiply @p v by x in the reflected GCM representation: a right
 * shift of the byte stream, folding the dropped x^127 coefficient
 * back in through R = 11100001 || 0^120.
 */
inline void
mulByX(Gf128 &v)
{
    bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb)
        v.hi ^= 0xe100000000000000ull;
}

/**
 * Reduction constants for the 8-bit windowed multiply: kRem[r] is the
 * polynomial r * x^128 reduced mod the GCM polynomial, where r holds
 * the eight coefficients shifted off the low end of the accumulator.
 * Computed once from first principles (eight single-bit reductions)
 * rather than transcribed, so a typo cannot silently corrupt tags.
 */
struct RemTable
{
    std::array<std::uint64_t, 256> r{};

    RemTable()
    {
        for (unsigned i = 0; i < 256; ++i) {
            Gf128 v{0, i};
            for (int b = 0; b < 8; ++b)
                mulByX(v);
            r[i] = v.hi; // only the top 16 bits can be set
        }
    }
};

const RemTable kRem;

using Table256 = std::array<Gf128, 256>;

/**
 * Fill @p t with the 256 multiples b*H. Index bit 7 is the x^0-side
 * coefficient within a window, so the powers H * x^k land on
 * descending powers of two: t[0x80] = H, t[0x40] = H*x, ...,
 * t[0x01] = H*x^7. Every other entry is the XOR of the power-of-two
 * entries of its set bits; t[0] stays zero.
 */
void
buildLowTable(Table256 &t, const Gf128 &h)
{
    Gf128 v = h;
    for (unsigned i = 0x80; i >= 1; i >>= 1) {
        t[i] = v;
        mulByX(v);
    }
    for (unsigned i = 2; i < 256; i <<= 1)
        for (unsigned j = 1; j < i; ++j)
            t[i + j] = t[i] ^ t[j];
}

/** The portable backend's per-subkey state: the 64 KiB table set. */
struct ShoupKey final : GhashKey
{
    detail::ShoupTable table;
};

// ---- the backend --------------------------------------------------------

class PortableBackend final : public CryptoBackend
{
  public:
    const char *
    name() const override
    {
        return "portable";
    }

    const char *
    description() const override
    {
        return "T-table AES + Shoup-table GHASH (fast anywhere, "
               "not constant-time)";
    }

    int
    rank() const override
    {
        return 50;
    }

    bool
    available() const override
    {
        return true;
    }

    void
    aesExpandKey(AesSchedule &s, const std::uint8_t key[16]) const override
    {
        auto *ps = new (s.bytes.data()) PortableSched;
        for (int i = 0; i < 4; ++i)
            ps->ek[i] = loadBe32(key + 4 * i);
        std::uint8_t rcon = 1;
        for (int i = 4; i < 4 * (kRounds + 1); ++i) {
            std::uint32_t t = ps->ek[i - 1];
            if (i % 4 == 0) {
                t = subRotWord(t) ^ (std::uint32_t(rcon) << 24);
                rcon = xtime(rcon);
            }
            ps->ek[i] = ps->ek[i - 4] ^ t;
        }
        // Equivalent inverse cipher: reverse the round-key order and
        // run the middle keys through InvMixColumns so decryption can
        // use the same fused-table round shape as encryption. Built
        // here, not lazily on first decrypt, so a schedule shared by
        // worker threads is immutable after this call.
        for (int i = 0; i < 4; ++i) {
            ps->dk[i] = ps->ek[4 * kRounds + i];
            ps->dk[4 * kRounds + i] = ps->ek[i];
        }
        for (int round = 1; round < kRounds; ++round)
            for (int i = 0; i < 4; ++i)
                ps->dk[4 * round + i] =
                    invMixColumn(ps->ek[4 * (kRounds - round) + i]);
    }

    void
    aesEncryptBlock(const AesSchedule &s, const std::uint8_t in[16],
                    std::uint8_t out[16]) const override
    {
        const std::uint32_t *ek = sched(s)->ek;
        std::uint32_t s0 = loadBe32(in) ^ ek[0];
        std::uint32_t s1 = loadBe32(in + 4) ^ ek[1];
        std::uint32_t s2 = loadBe32(in + 8) ^ ek[2];
        std::uint32_t s3 = loadBe32(in + 12) ^ ek[3];
        for (int round = 1; round < kRounds; ++round) {
            const std::uint32_t *rk = ek + 4 * round;
            std::uint32_t t0 = kT.Te[0][s0 >> 24] ^
                               kT.Te[1][(s1 >> 16) & 0xff] ^
                               kT.Te[2][(s2 >> 8) & 0xff] ^
                               kT.Te[3][s3 & 0xff] ^ rk[0];
            std::uint32_t t1 = kT.Te[0][s1 >> 24] ^
                               kT.Te[1][(s2 >> 16) & 0xff] ^
                               kT.Te[2][(s3 >> 8) & 0xff] ^
                               kT.Te[3][s0 & 0xff] ^ rk[1];
            std::uint32_t t2 = kT.Te[0][s2 >> 24] ^
                               kT.Te[1][(s3 >> 16) & 0xff] ^
                               kT.Te[2][(s0 >> 8) & 0xff] ^
                               kT.Te[3][s1 & 0xff] ^ rk[2];
            std::uint32_t t3 = kT.Te[0][s3 >> 24] ^
                               kT.Te[1][(s0 >> 16) & 0xff] ^
                               kT.Te[2][(s1 >> 8) & 0xff] ^
                               kT.Te[3][s2 & 0xff] ^ rk[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        // Final round: SubBytes + ShiftRows only.
        const std::uint32_t *rk = ek + 4 * kRounds;
        storeBe32(out, packColumn(kSbox[s0 >> 24], kSbox[(s1 >> 16) & 0xff],
                                  kSbox[(s2 >> 8) & 0xff], kSbox[s3 & 0xff]) ^
                           rk[0]);
        storeBe32(out + 4,
                  packColumn(kSbox[s1 >> 24], kSbox[(s2 >> 16) & 0xff],
                             kSbox[(s3 >> 8) & 0xff], kSbox[s0 & 0xff]) ^
                      rk[1]);
        storeBe32(out + 8,
                  packColumn(kSbox[s2 >> 24], kSbox[(s3 >> 16) & 0xff],
                             kSbox[(s0 >> 8) & 0xff], kSbox[s1 & 0xff]) ^
                      rk[2]);
        storeBe32(out + 12,
                  packColumn(kSbox[s3 >> 24], kSbox[(s0 >> 16) & 0xff],
                             kSbox[(s1 >> 8) & 0xff], kSbox[s2 & 0xff]) ^
                      rk[3]);
    }

    void
    aesDecryptBlock(const AesSchedule &s, const std::uint8_t in[16],
                    std::uint8_t out[16]) const override
    {
        const std::uint32_t *dk = sched(s)->dk;
        std::uint32_t s0 = loadBe32(in) ^ dk[0];
        std::uint32_t s1 = loadBe32(in + 4) ^ dk[1];
        std::uint32_t s2 = loadBe32(in + 8) ^ dk[2];
        std::uint32_t s3 = loadBe32(in + 12) ^ dk[3];
        for (int round = 1; round < kRounds; ++round) {
            const std::uint32_t *rk = dk + 4 * round;
            std::uint32_t t0 = kT.Td[0][s0 >> 24] ^
                               kT.Td[1][(s3 >> 16) & 0xff] ^
                               kT.Td[2][(s2 >> 8) & 0xff] ^
                               kT.Td[3][s1 & 0xff] ^ rk[0];
            std::uint32_t t1 = kT.Td[0][s1 >> 24] ^
                               kT.Td[1][(s0 >> 16) & 0xff] ^
                               kT.Td[2][(s3 >> 8) & 0xff] ^
                               kT.Td[3][s2 & 0xff] ^ rk[1];
            std::uint32_t t2 = kT.Td[0][s2 >> 24] ^
                               kT.Td[1][(s1 >> 16) & 0xff] ^
                               kT.Td[2][(s0 >> 8) & 0xff] ^
                               kT.Td[3][s3 & 0xff] ^ rk[2];
            std::uint32_t t3 = kT.Td[0][s3 >> 24] ^
                               kT.Td[1][(s2 >> 16) & 0xff] ^
                               kT.Td[2][(s1 >> 8) & 0xff] ^
                               kT.Td[3][s0 & 0xff] ^ rk[3];
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        const std::uint32_t *rk = dk + 4 * kRounds;
        storeBe32(out, packColumn(kT.inv[s0 >> 24], kT.inv[(s3 >> 16) & 0xff],
                                  kT.inv[(s2 >> 8) & 0xff],
                                  kT.inv[s1 & 0xff]) ^
                           rk[0]);
        storeBe32(out + 4,
                  packColumn(kT.inv[s1 >> 24], kT.inv[(s0 >> 16) & 0xff],
                             kT.inv[(s3 >> 8) & 0xff], kT.inv[s2 & 0xff]) ^
                      rk[1]);
        storeBe32(out + 8,
                  packColumn(kT.inv[s2 >> 24], kT.inv[(s1 >> 16) & 0xff],
                             kT.inv[(s0 >> 8) & 0xff], kT.inv[s3 & 0xff]) ^
                      rk[2]);
        storeBe32(out + 12,
                  packColumn(kT.inv[s3 >> 24], kT.inv[(s2 >> 16) & 0xff],
                             kT.inv[(s1 >> 8) & 0xff], kT.inv[s0 & 0xff]) ^
                      rk[3]);
    }

    std::shared_ptr<const GhashKey>
    ghashKey(const Gf128 &h) const override
    {
        auto key = std::make_shared<ShoupKey>();
        detail::buildShoupTable(key->table, h);
        return key;
    }

    Gf128
    ghashMul(const GhashKey &key, const Gf128 &x) const override
    {
        return static_cast<const ShoupKey &>(key).table.mul(x);
    }
};

} // namespace

namespace detail
{

void
buildShoupTable(ShoupTable &out, const Gf128 &h)
{
    // t[k][b] = shift8^k(b * H): byte position k's table is the
    // previous one advanced by x^8, i.e. the same shift-plus-reduction
    // step the serial multiply applies to its accumulator, applied once
    // per entry at build time instead of once per byte at mul time.
    buildLowTable(out.t[0], h);
    for (unsigned k = 1; k < out.t.size(); ++k) {
        for (unsigned b = 0; b < 256; ++b) {
            const Gf128 &p = out.t[k - 1][b];
            std::uint64_t rem = p.lo & 0xff;
            out.t[k][b].lo = (p.lo >> 8) | (p.hi << 56);
            out.t[k][b].hi = (p.hi >> 8) ^ kRem.r[rem];
        }
    }
}

Gf128
ShoupTable::mul(const Gf128 &x) const
{
    // Z = XOR over k of t[k][byte_k(x)], where byte 0 is the leading
    // (x^0-side) byte. Equivalent to the serial Shoup accumulation —
    // each summand carries its x^(8k) factor in its own table — but the
    // sixteen lookups are independent, so they overlap instead of
    // waiting on a shift-and-reduce chain.
    std::uint64_t hi = 0, lo = 0;
    for (unsigned k = 0; k < 8; ++k) {
        const Gf128 &a = t[k][(x.hi >> (8 * (7 - k))) & 0xff];
        const Gf128 &b = t[k + 8][(x.lo >> (8 * (7 - k))) & 0xff];
        hi ^= a.hi ^ b.hi;
        lo ^= a.lo ^ b.lo;
    }
    return Gf128{hi, lo};
}

Gf128
shoupMulSerial(const Gf128 &x, const Gf128 &y)
{
    // Z = (Z * x^8 + t[byte]) over the bytes of x from byte 15
    // (highest powers of x) down to byte 0, with the x^8 step done as
    // one shift plus a 256-entry reduction lookup.
    Table256 t{};
    buildLowTable(t, y);
    Gf128 z = t[x.lo & 0xff];
    for (int byte = 14; byte >= 0; --byte) {
        std::uint64_t rem = z.lo & 0xff;
        z.lo = (z.lo >> 8) | (z.hi << 56);
        z.hi = (z.hi >> 8) ^ kRem.r[rem];
        std::uint64_t b = byte >= 8 ? (x.lo >> (8 * (15 - byte))) & 0xff
                                    : (x.hi >> (8 * (7 - byte))) & 0xff;
        z.hi ^= t[b].hi;
        z.lo ^= t[b].lo;
    }
    return z;
}

} // namespace detail

const CryptoBackend &
portableCryptoBackend()
{
    static const PortableBackend backend;
    return backend;
}

} // namespace secmem
