/**
 * @file
 * Pluggable crypto-backend interface and registry.
 *
 * The functional crypto substrate (AES-128 block cipher, GHASH
 * multiply) has more than one reasonable implementation: the portable
 * table-driven kernels (fast everywhere, but T-tables are cache-timing
 * leaky), dedicated hardware instructions (AES-NI + PCLMULQDQ, compiled
 * in only when the toolchain supports them and selected only when
 * CPUID reports them), and a table-free constant-time software tier for
 * timing-sensitive use. This header makes that choice a first-class,
 * runtime-dispatched axis: each implementation is a CryptoBackend, the
 * registry lists every backend compiled into the binary, and the
 * wrapper classes (Aes128, Gf128Table, Ghash, Gcm) bind to the active
 * backend at construction so the whole controller datapath runs on it.
 *
 * Selection order for the process-wide active backend:
 *
 *   1. an explicit name (the `--crypto-backend` CLI flag, applied via
 *      setActiveCryptoBackend());
 *   2. the SECMEM_CRYPTO_BACKEND environment variable;
 *   3. the highest-ranked backend whose available() check (CPUID)
 *      passes — hw when the host supports it, else portable.
 *
 * Naming an unknown or CPU-unsupported backend is a hard error, never a
 * silent fallback. The naive oracle in src/ref/ deliberately does NOT
 * go through a backend: it stays the independent reference that the
 * differential tests run every backend against.
 *
 * Thread safety: backends are stateless singletons; AesSchedule and
 * GhashKey are immutable once built (aesExpandKey fills BOTH cipher
 * directions eagerly), so a const Aes128 / Gf128Table may be shared
 * across worker threads freely.
 */

#ifndef SECMEM_CRYPTO_BACKEND_BACKEND_HH
#define SECMEM_CRYPTO_BACKEND_BACKEND_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace secmem
{

struct Gf128; // crypto/gf128.hh

/**
 * Backend-laid-out AES-128 key schedule storage. Plain bytes so Aes128
 * keeps value semantics; each backend formats its own expanded
 * schedule inside (e.g. 44+44 round-key words for the portable
 * T-table cipher, 11+11 xmm round keys for AES-NI). Both directions
 * are expanded eagerly by aesExpandKey so the schedule is immutable —
 * and therefore safely shareable across threads — from then on.
 */
struct AesSchedule
{
    static constexpr std::size_t kBytes = 768;
    alignas(16) std::array<std::uint8_t, kBytes> bytes{};
};

/**
 * Opaque per-subkey GHASH state — whatever a backend precomputes for a
 * fixed hash subkey H (64 KiB of Shoup tables for the portable tier,
 * just H itself for the carry-less and constant-time tiers). Immutable
 * once built; shared by every Gf128Table copy for that subkey.
 */
class GhashKey
{
  public:
    virtual ~GhashKey() = default;
};

/**
 * One interchangeable implementation of the crypto substrate. All
 * backends compute the same functions (FIPS-197 AES-128, SP 800-38D
 * GF(2^128) multiply), so swapping backends never changes simulation
 * results — only host-side speed and timing-channel behaviour.
 */
class CryptoBackend
{
  public:
    virtual ~CryptoBackend() = default;

    /** Registry name ("portable", "hw", "ct"). */
    virtual const char *name() const = 0;
    /** One-line human description for --list-crypto-backends. */
    virtual const char *description() const = 0;
    /**
     * Rank for automatic selection; the highest-ranked available
     * backend wins. The ct tier ranks below portable: it trades a lot
     * of speed for timing uniformity and is only used when asked for.
     */
    virtual int rank() const = 0;
    /** Can this backend run on this host (CPUID feature checks)? */
    virtual bool available() const = 0;

    /**
     * Expand @p key into @p s for both cipher directions. Eager on
     * purpose: a lazily built decryption schedule would race when two
     * experiment-engine jobs share one Aes128 for their first decrypt.
     */
    virtual void aesExpandKey(AesSchedule &s,
                              const std::uint8_t key[16]) const = 0;
    /** Encrypt one 16-byte chunk. In-place (in == out) is allowed. */
    virtual void aesEncryptBlock(const AesSchedule &s,
                                 const std::uint8_t in[16],
                                 std::uint8_t out[16]) const = 0;
    /** Decrypt one 16-byte chunk. In-place (in == out) is allowed. */
    virtual void aesDecryptBlock(const AesSchedule &s,
                                 const std::uint8_t in[16],
                                 std::uint8_t out[16]) const = 0;

    /**
     * Encrypt @p n consecutive 16-byte chunks (in/out may alias).
     * Semantically identical to n aesEncryptBlock calls; backends with
     * pipelined cipher units override it to run the independent
     * streams in flight together — a single AES block is latency-bound
     * (~10 dependent rounds), so four interleaved blocks cost barely
     * more than one. Counter-mode pad generation feeds every data
     * block through here four chunks at a time.
     */
    virtual void
    aesEncryptBlocks(const AesSchedule &s, const std::uint8_t *in,
                     std::uint8_t *out, unsigned n) const
    {
        for (unsigned i = 0; i < n; ++i)
            aesEncryptBlock(s, in + 16 * i, out + 16 * i);
    }

    /** Precompute whatever this backend wants for a fixed subkey H. */
    virtual std::shared_ptr<const GhashKey>
    ghashKey(const Gf128 &h) const = 0;
    /** The GCM GF(2^128) product x * H under @p key. */
    virtual Gf128 ghashMul(const GhashKey &key, const Gf128 &x) const = 0;
};

// ---- registry -----------------------------------------------------------

/** Every backend compiled into this binary, highest rank first. */
const std::vector<const CryptoBackend *> &cryptoBackends();

/** Look up a compiled-in backend by name; null when unknown. */
const CryptoBackend *findCryptoBackend(std::string_view name);

/**
 * The process-wide backend that new Aes128 / Gf128Table / Ghash / Gcm
 * instances bind to. Resolved on first use from SECMEM_CRYPTO_BACKEND
 * (a bad name panics — loud, not a silent fallback) or the best
 * available backend; overridable via setActiveCryptoBackend().
 */
const CryptoBackend &activeCryptoBackend();

/**
 * Select the active backend by name (the --crypto-backend flag).
 * @retval false unknown name or backend unsupported on this CPU;
 *               @p err (when non-null) describes the failure and the
 *               active backend is left unchanged.
 */
bool setActiveCryptoBackend(std::string_view name, std::string *err = nullptr);

/**
 * Pure selection logic, exposed for tests: an explicit @p flag_name
 * beats @p env_name beats rank-based auto-selection. Returns null with
 * @p err filled when a named backend is unknown or unavailable; never
 * falls back silently past an explicit name. With neither name set the
 * result is the highest-ranked available backend (portable is always
 * compiled in and always available, so auto-selection cannot fail).
 */
const CryptoBackend *resolveCryptoBackend(const char *flag_name,
                                          const char *env_name,
                                          std::string *err);

// Concrete backend singletons (registry building blocks; tests and
// benchmarks also pin these directly for per-backend measurements).
const CryptoBackend &portableCryptoBackend();
const CryptoBackend &ctCryptoBackend();
#if SECMEM_HAVE_HW_CRYPTO
const CryptoBackend &hwCryptoBackend();
#endif

} // namespace secmem

#endif // SECMEM_CRYPTO_BACKEND_BACKEND_HH
