/**
 * @file
 * The GHASH universal hash from GCM (NIST SP 800-38D).
 *
 * GHASH_H(X) = X1*H^m + X2*H^(m-1) + ... + Xm*H over GF(2^128),
 * computed incrementally: Y_i = (Y_{i-1} ^ X_i) * H.
 *
 * The multiply runs on the active crypto backend via Gf128Table:
 * constructing a Ghash from the raw subkey precomputes the backend's
 * per-subkey state (Shoup tables on the portable tier) once per
 * message. Callers that hash many messages under one subkey (the
 * controller, Gcm) should build a single Gf128Table and construct
 * Ghash instances from it, which shares even that per-subkey state.
 *
 * In the memory-authentication setting of Yan et al. each chunk update
 * corresponds to one single-cycle Galois-field multiply-accumulate in
 * hardware; the timing model charges one cycle per update.
 */

#ifndef SECMEM_CRYPTO_GHASH_HH
#define SECMEM_CRYPTO_GHASH_HH

#include <cstdint>
#include <memory>

#include "crypto/bytes.hh"
#include "crypto/gf128.hh"

namespace secmem
{

/** Incremental GHASH computation under a fixed hash subkey H. */
class Ghash
{
  public:
    /**
     * Build the multiply-by-H state for subkey @p h on the active
     * backend.
     */
    explicit Ghash(const Block16 &h) : table_(Gf128::fromBlock(h)) {}

    /** Same, pinned to @p be (per-backend tests and benchmarks). */
    Ghash(const CryptoBackend &be, const Block16 &h)
        : table_(be, Gf128::fromBlock(h))
    {}

    /**
     * Hash under a caller-built table, skipping the per-subkey
     * precomputation. The underlying state is shared, not copied.
     */
    explicit Ghash(const Gf128Table &table) : table_(table) {}

    /** Absorb one 16-byte chunk. */
    void
    update(const Block16 &chunk)
    {
        y_ = table_.mul(y_ ^ Gf128::fromBlock(chunk));
    }

    /** Absorb a GCM length block for @p aad_bits and @p ct_bits. */
    void
    updateLengths(std::uint64_t aad_bits, std::uint64_t ct_bits)
    {
        update(Gf128{aad_bits, ct_bits}.toBlock());
    }

    /** Current hash value. */
    Block16 digest() const { return y_.toBlock(); }

    /** Restart the accumulator (same subkey). */
    void reset() { y_ = Gf128{0, 0}; }

  private:
    Gf128Table table_;
    Gf128 y_{0, 0};
};

} // namespace secmem

#endif // SECMEM_CRYPTO_GHASH_HH
