/**
 * @file
 * The GHASH universal hash from GCM (NIST SP 800-38D).
 *
 * GHASH_H(X) = X1*H^m + X2*H^(m-1) + ... + Xm*H over GF(2^128),
 * computed incrementally: Y_i = (Y_{i-1} ^ X_i) * H.
 *
 * The multiply is table-driven: constructing a Ghash from the raw
 * subkey builds the Shoup tables (Gf128Table) once, and every update()
 * is then the XOR of 16 independent lookups instead of 128 bit-serial
 * rounds. Callers that hash many messages under one subkey (the
 * controller, Gcm) should build a single Gf128Table and construct
 * Ghash instances from it, which skips even the per-message table
 * build.
 *
 * In the memory-authentication setting of Yan et al. each chunk update
 * corresponds to one single-cycle Galois-field multiply-accumulate in
 * hardware; the timing model charges one cycle per update.
 */

#ifndef SECMEM_CRYPTO_GHASH_HH
#define SECMEM_CRYPTO_GHASH_HH

#include <cstdint>
#include <memory>

#include "crypto/bytes.hh"
#include "crypto/gf128.hh"

namespace secmem
{

/** Incremental GHASH computation under a fixed hash subkey H. */
class Ghash
{
  public:
    /** Build (and own) the multiplication table for subkey @p h. */
    explicit Ghash(const Block16 &h)
        : own_(std::make_unique<Gf128Table>(Gf128::fromBlock(h))),
          table_(own_.get())
    {}

    /**
     * Hash under a caller-owned precomputed table, skipping the table
     * build. @p table must outlive this Ghash.
     */
    explicit Ghash(const Gf128Table &table) : table_(&table) {}

    /** Absorb one 16-byte chunk. */
    void
    update(const Block16 &chunk)
    {
        y_ = table_->mul(y_ ^ Gf128::fromBlock(chunk));
    }

    /** Absorb a GCM length block for @p aad_bits and @p ct_bits. */
    void
    updateLengths(std::uint64_t aad_bits, std::uint64_t ct_bits)
    {
        update(Gf128{aad_bits, ct_bits}.toBlock());
    }

    /** Current hash value. */
    Block16 digest() const { return y_.toBlock(); }

    /** Restart the accumulator (same subkey). */
    void reset() { y_ = Gf128{0, 0}; }

  private:
    std::unique_ptr<Gf128Table> own_; ///< null when table_ is external
    const Gf128Table *table_;
    Gf128 y_{0, 0};
};

} // namespace secmem

#endif // SECMEM_CRYPTO_GHASH_HH
