#include "crypto/bytes.hh"

#include "sim/log.hh"

namespace secmem
{

std::string
toHex(const std::uint8_t *data, std::size_t n)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(digits[data[i] >> 4]);
        out.push_back(digits[data[i] & 0xf]);
    }
    return out;
}

namespace
{

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::size_t
fromHex(const std::string &hex, std::uint8_t *out, std::size_t cap)
{
    SECMEM_ASSERT(hex.size() % 2 == 0, "odd-length hex string");
    std::size_t n = hex.size() / 2;
    SECMEM_ASSERT(n <= cap, "hex string too long for buffer");
    for (std::size_t i = 0; i < n; ++i) {
        int hi = hexVal(hex[2 * i]);
        int lo = hexVal(hex[2 * i + 1]);
        SECMEM_ASSERT(hi >= 0 && lo >= 0, "bad hex digit in '%s'", hex.c_str());
        out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
    return n;
}

Block16
block16FromHex(const std::string &hex)
{
    Block16 x;
    std::size_t n = fromHex(hex, x.b.data(), x.b.size());
    SECMEM_ASSERT(n == kChunkBytes, "Block16 hex must be 32 digits");
    return x;
}

} // namespace secmem
