/**
 * @file
 * Arithmetic in GF(2^128) as specified for GCM (NIST SP 800-38D).
 *
 * Elements are 128-bit strings with the GCM bit convention: the first
 * (leftmost) bit of the byte stream is the coefficient of x^0. The
 * reduction polynomial is x^128 + x^7 + x^2 + x + 1.
 *
 * The production multiply is dispatched through the crypto-backend
 * layer (crypto/backend/): a Gf128Table binds one fixed operand H to
 * the active backend's precomputed per-subkey state — Shoup's 8-bit-
 * window tables on the portable tier, just H itself on the PCLMULQDQ
 * and constant-time tiers — and mul() runs the backend's multiply.
 * The historical bit-at-a-time multiply lives on as
 * ref::gf128MulNaive (src/ref/) and serves as the independent oracle
 * for every tier.
 */

#ifndef SECMEM_CRYPTO_GF128_HH
#define SECMEM_CRYPTO_GF128_HH

#include <cstdint>
#include <memory>

#include "crypto/backend/backend.hh"
#include "crypto/bytes.hh"

namespace secmem
{

/** A GF(2^128) element stored as two big-endian 64-bit halves. */
struct Gf128
{
    std::uint64_t hi = 0; ///< Bytes 0..7 of the block (big-endian).
    std::uint64_t lo = 0; ///< Bytes 8..15 of the block (big-endian).

    bool operator==(const Gf128 &) const = default;

    static Gf128 fromBlock(const Block16 &b);
    Block16 toBlock() const;

    Gf128
    operator^(const Gf128 &o) const
    {
        return Gf128{hi ^ o.hi, lo ^ o.lo};
    }
};

/**
 * Precomputed multiply-by-H state for one fixed operand H.
 *
 * What "precomputed" means is the backend's business: 64 KiB of Shoup
 * tables on the portable tier (which is why one Gf128Table per hash
 * subkey is cached by long-lived users — Ghash, Gcm, the memory
 * controller — rather than rebuilt per tag), a single xmm-ready H on
 * the hw tier. The state is immutable and shared, so copies are cheap
 * and a const Gf128Table is safe to use from many threads.
 */
class Gf128Table
{
  public:
    Gf128Table() = default; ///< table for H = 0 (every product is 0)

    /** Bind @p h on the process-wide active backend. */
    explicit Gf128Table(const Gf128 &h)
        : Gf128Table(activeCryptoBackend(), h)
    {}

    /** Bind @p h on a specific backend (per-backend tests/benches). */
    Gf128Table(const CryptoBackend &be, const Gf128 &h)
        : backend_(&be), key_(be.ghashKey(h))
    {}

    /** The product x * H. */
    Gf128
    mul(const Gf128 &x) const
    {
        if (!key_)
            return Gf128{}; // default table: H = 0
        return backend_->ghashMul(*key_, x);
    }

  private:
    const CryptoBackend *backend_ = nullptr;
    std::shared_ptr<const GhashKey> key_;
};

/**
 * GCM GF(2^128) product of @p x and @p y. One-shot convenience that
 * runs a backend-independent serial multiply; callers multiplying
 * repeatedly by the same operand should keep a Gf128Table instead.
 */
Gf128 gf128Mul(const Gf128 &x, const Gf128 &y);

} // namespace secmem

#endif // SECMEM_CRYPTO_GF128_HH
