/**
 * @file
 * Arithmetic in GF(2^128) as specified for GCM (NIST SP 800-38D).
 *
 * Elements are 128-bit strings with the GCM bit convention: the first
 * (leftmost) bit of the byte stream is the coefficient of x^0. The
 * reduction polynomial is x^128 + x^7 + x^2 + x + 1.
 *
 * The production multiply is table-driven (Shoup's precomputed-table
 * method, 8-bit windows): a Gf128Table holds, for each of the 16 byte
 * positions, the 256 multiples b * H * x^(8k) of one fixed operand H,
 * and each product is then the XOR of 16 independent table lookups
 * instead of 128 bit-serial rounds. The historical bit-at-a-time
 * multiply lives on as ref::gf128MulNaive (src/ref/) and serves as the
 * independent oracle for this code.
 */

#ifndef SECMEM_CRYPTO_GF128_HH
#define SECMEM_CRYPTO_GF128_HH

#include <array>
#include <cstdint>

#include "crypto/bytes.hh"

namespace secmem
{

/** A GF(2^128) element stored as two big-endian 64-bit halves. */
struct Gf128
{
    std::uint64_t hi = 0; ///< Bytes 0..7 of the block (big-endian).
    std::uint64_t lo = 0; ///< Bytes 8..15 of the block (big-endian).

    bool operator==(const Gf128 &) const = default;

    static Gf128 fromBlock(const Block16 &b);
    Block16 toBlock() const;

    Gf128
    operator^(const Gf128 &o) const
    {
        return Gf128{hi ^ o.hi, lo ^ o.lo};
    }
};

/**
 * Precomputed multiplication tables for one fixed operand H.
 *
 * Sixteen 256-entry tables, one per byte position k of the other
 * operand: t_[k][b] = b * H * x^(8k), with the index byte read in
 * GCM's reflected bit order (bit 7 of the index is the x^0-side
 * coefficient). A product is then the XOR of sixteen independent
 * lookups — no serial shift-and-reduce chain, so the lookups pipeline.
 * The tables cost 64 KiB and ~4k word operations to build, which is
 * why one Gf128Table per hash subkey is cached by long-lived users
 * (Ghash, Gcm, the memory controller) rather than rebuilt per tag.
 */
class Gf128Table
{
  public:
    Gf128Table() = default; ///< table for H = 0 (every product is 0)
    explicit Gf128Table(const Gf128 &h);

    /** The product x * H. */
    Gf128 mul(const Gf128 &x) const;

  private:
    std::array<std::array<Gf128, 256>, 16> t_{};
};

/**
 * GCM GF(2^128) product of @p x and @p y. One-shot convenience that
 * builds a table for @p y internally; callers multiplying repeatedly
 * by the same operand should keep a Gf128Table instead.
 */
Gf128 gf128Mul(const Gf128 &x, const Gf128 &y);

} // namespace secmem

#endif // SECMEM_CRYPTO_GF128_HH
