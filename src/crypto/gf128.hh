/**
 * @file
 * Arithmetic in GF(2^128) as specified for GCM (NIST SP 800-38D).
 *
 * Elements are 128-bit strings with the GCM bit convention: the first
 * (leftmost) bit of the byte stream is the coefficient of x^0. The
 * reduction polynomial is x^128 + x^7 + x^2 + x + 1.
 */

#ifndef SECMEM_CRYPTO_GF128_HH
#define SECMEM_CRYPTO_GF128_HH

#include <cstdint>

#include "crypto/bytes.hh"

namespace secmem
{

/** A GF(2^128) element stored as two big-endian 64-bit halves. */
struct Gf128
{
    std::uint64_t hi = 0; ///< Bytes 0..7 of the block (big-endian).
    std::uint64_t lo = 0; ///< Bytes 8..15 of the block (big-endian).

    bool operator==(const Gf128 &) const = default;

    static Gf128 fromBlock(const Block16 &b);
    Block16 toBlock() const;

    Gf128
    operator^(const Gf128 &o) const
    {
        return Gf128{hi ^ o.hi, lo ^ o.lo};
    }
};

/** GCM GF(2^128) product of @p x and @p y. */
Gf128 gf128Mul(const Gf128 &x, const Gf128 &y);

} // namespace secmem

#endif // SECMEM_CRYPTO_GF128_HH
