#include "crypto/seed.hh"

#include "crypto/ghash.hh"
#include "sim/log.hh"

namespace secmem
{

Block16
makeSeed(Addr block_addr, std::uint64_t counter, unsigned chunk,
         SeedDomain domain, std::uint8_t iv_byte)
{
    SECMEM_ASSERT(chunk < kChunksPerBlock, "chunk index %u out of range",
                  chunk);
    Block16 seed{};
    std::uint64_t block_index = block_addr >> log2i(kBlockBytes);
    for (int i = 0; i < 6; ++i)
        seed.b[i] = static_cast<std::uint8_t>(block_index >> (8 * i));
    for (int i = 0; i < 8; ++i)
        seed.b[6 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
    seed.b[14] = static_cast<std::uint8_t>(
        chunk | (domain == SeedDomain::Auth ? 0x80 : 0x00));
    seed.b[15] = iv_byte;
    return seed;
}

Block64
makePad(const Aes128 &aes, Addr block_addr, std::uint64_t counter,
        std::uint8_t iv_byte)
{
    // All four chunk seeds up front, then one batched encrypt: the
    // chunks are independent AES streams, and pipelined backends
    // overlap them instead of paying the full cipher latency four
    // times back to back.
    Block64 seeds;
    for (unsigned c = 0; c < kChunksPerBlock; ++c)
        seeds.setChunk(c, makeSeed(block_addr, counter, c,
                                   SeedDomain::Encrypt, iv_byte));
    Block64 pad;
    aes.encryptBlocks(seeds.b.data(), pad.b.data(), kChunksPerBlock);
    return pad;
}

Block64
ctrCrypt(const Aes128 &aes, const Block64 &in, Addr block_addr,
         std::uint64_t counter, std::uint8_t iv_byte)
{
    return in ^ makePad(aes, block_addr, counter, iv_byte);
}

namespace
{

Block16
gcmBlockTagWith(Ghash &gh, const Aes128 &aes, const Block64 &ciphertext,
                Addr block_addr, std::uint64_t counter, std::uint8_t iv_byte)
{
    for (unsigned c = 0; c < kChunksPerBlock; ++c)
        gh.update(ciphertext.chunk(c));
    gh.updateLengths(0, kBlockBytes * 8);
    Block16 auth_pad = aes.encrypt(
        makeSeed(block_addr, counter, 0, SeedDomain::Auth, iv_byte));
    return gh.digest() ^ auth_pad;
}

} // namespace

Block16
gcmBlockTag(const Aes128 &aes, const Block16 &hash_subkey,
            const Block64 &ciphertext, Addr block_addr,
            std::uint64_t counter, std::uint8_t iv_byte)
{
    Ghash gh(hash_subkey);
    return gcmBlockTagWith(gh, aes, ciphertext, block_addr, counter, iv_byte);
}

Block16
gcmBlockTag(const Aes128 &aes, const Gf128Table &hash_subkey,
            const Block64 &ciphertext, Addr block_addr,
            std::uint64_t counter, std::uint8_t iv_byte)
{
    Ghash gh(hash_subkey);
    return gcmBlockTagWith(gh, aes, ciphertext, block_addr, counter, iv_byte);
}

Block16
sha1BlockTag(const Block16 &key, const Block64 &ciphertext, Addr block_addr,
             std::uint64_t counter, std::uint8_t epoch)
{
    Sha1 h;
    h.update(key.b.data(), key.b.size());
    std::uint8_t meta[17];
    for (int i = 0; i < 8; ++i)
        meta[i] = static_cast<std::uint8_t>(block_addr >> (8 * i));
    for (int i = 0; i < 8; ++i)
        meta[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
    meta[16] = epoch;
    h.update(meta, sizeof(meta));
    h.update(ciphertext.b.data(), ciphertext.b.size());
    Sha1::Digest d = h.final();
    Block16 tag;
    for (std::size_t i = 0; i < kChunkBytes; ++i)
        tag.b[i] = d[i];
    return tag;
}

Block16
clipTag(const Block16 &tag, unsigned mac_bits)
{
    SECMEM_ASSERT(mac_bits >= 8 && mac_bits <= 128 && mac_bits % 8 == 0,
                  "unsupported MAC size %u", mac_bits);
    Block16 out{};
    for (unsigned i = 0; i < mac_bits / 8; ++i)
        out.b[i] = tag.b[i];
    return out;
}

} // namespace secmem
