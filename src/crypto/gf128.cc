#include "crypto/gf128.hh"

namespace secmem
{

Gf128
Gf128::fromBlock(const Block16 &blk)
{
    Gf128 g;
    for (int i = 0; i < 8; ++i)
        g.hi = (g.hi << 8) | blk.b[i];
    for (int i = 8; i < 16; ++i)
        g.lo = (g.lo << 8) | blk.b[i];
    return g;
}

Block16
Gf128::toBlock() const
{
    Block16 blk;
    for (int i = 0; i < 8; ++i)
        blk.b[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
        blk.b[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    return blk;
}

Gf128
gf128Mul(const Gf128 &x, const Gf128 &y)
{
    // Right-shift algorithm from SP 800-38D, Section 6.3. V starts as y
    // and is multiplied by x one bit at a time, MSB of the byte-stream
    // first (which is the x^0 coefficient in GCM's reflected convention).
    Gf128 z{0, 0};
    Gf128 v = y;
    for (int i = 0; i < 128; ++i) {
        bool xbit = i < 64 ? ((x.hi >> (63 - i)) & 1)
                           : ((x.lo >> (127 - i)) & 1);
        if (xbit) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        bool lsb = v.lo & 1;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ull; // R = 11100001 || 0^120
    }
    return z;
}

} // namespace secmem
