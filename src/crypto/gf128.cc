#include "crypto/gf128.hh"

namespace secmem
{

namespace
{

/**
 * Multiply @p v by x in the reflected GCM representation: a right
 * shift of the byte stream, folding the dropped x^127 coefficient
 * back in through R = 11100001 || 0^120.
 */
inline void
mulByX(Gf128 &v)
{
    bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb)
        v.hi ^= 0xe100000000000000ull;
}

/**
 * Reduction constants for the 8-bit windowed multiply: kRem[r] is the
 * polynomial r * x^128 reduced mod the GCM polynomial, where r holds
 * the eight coefficients shifted off the low end of the accumulator.
 * Computed once from first principles (eight single-bit reductions)
 * rather than transcribed, so a typo cannot silently corrupt tags.
 */
struct RemTable
{
    std::array<std::uint64_t, 256> r{};

    RemTable()
    {
        for (unsigned i = 0; i < 256; ++i) {
            Gf128 v{0, i};
            for (int b = 0; b < 8; ++b)
                mulByX(v);
            r[i] = v.hi; // only the top 16 bits can be set
        }
    }
};

const RemTable kRem;

using Table256 = std::array<Gf128, 256>;

/**
 * Fill @p t with the 256 multiples b*H. Index bit 7 is the x^0-side
 * coefficient within a window, so the powers H * x^k land on
 * descending powers of two: t[0x80] = H, t[0x40] = H*x, ...,
 * t[0x01] = H*x^7. Every other entry is the XOR of the power-of-two
 * entries of its set bits; t[0] stays zero.
 */
void
buildLowTable(Table256 &t, const Gf128 &h)
{
    Gf128 v = h;
    for (unsigned i = 0x80; i >= 1; i >>= 1) {
        t[i] = v;
        mulByX(v);
    }
    for (unsigned i = 2; i < 256; i <<= 1)
        for (unsigned j = 1; j < i; ++j)
            t[i + j] = t[i] ^ t[j];
}

/**
 * Serial Shoup multiply over one 256-entry table, processing the byte
 * stream from byte 15 (highest powers of x) down to byte 0:
 * Z = (Z * x^8 + t[byte]) with the x^8 step done as one shift plus a
 * 256-entry reduction lookup. Used by the one-shot gf128Mul(), where
 * building the sixteen positional tables would dominate.
 */
Gf128
mulSerial(const Table256 &t, const Gf128 &x)
{
    Gf128 z = t[x.lo & 0xff];
    for (int byte = 14; byte >= 0; --byte) {
        std::uint64_t rem = z.lo & 0xff;
        z.lo = (z.lo >> 8) | (z.hi << 56);
        z.hi = (z.hi >> 8) ^ kRem.r[rem];
        std::uint64_t b = byte >= 8 ? (x.lo >> (8 * (15 - byte))) & 0xff
                                    : (x.hi >> (8 * (7 - byte))) & 0xff;
        z.hi ^= t[b].hi;
        z.lo ^= t[b].lo;
    }
    return z;
}

} // namespace

Gf128
Gf128::fromBlock(const Block16 &blk)
{
    return Gf128{loadBe64(blk.b.data()), loadBe64(blk.b.data() + 8)};
}

Block16
Gf128::toBlock() const
{
    Block16 blk;
    storeBe64(blk.b.data(), hi);
    storeBe64(blk.b.data() + 8, lo);
    return blk;
}

Gf128Table::Gf128Table(const Gf128 &h)
{
    // t_[k][b] = shift8^k(b * H): byte position k's table is the
    // previous one advanced by x^8, i.e. the same shift-plus-reduction
    // step the serial multiply applies to its accumulator, applied once
    // per entry at build time instead of once per byte at mul time.
    buildLowTable(t_[0], h);
    for (unsigned k = 1; k < t_.size(); ++k) {
        for (unsigned b = 0; b < 256; ++b) {
            const Gf128 &p = t_[k - 1][b];
            std::uint64_t rem = p.lo & 0xff;
            t_[k][b].lo = (p.lo >> 8) | (p.hi << 56);
            t_[k][b].hi = (p.hi >> 8) ^ kRem.r[rem];
        }
    }
}

Gf128
Gf128Table::mul(const Gf128 &x) const
{
    // Z = XOR over k of t_[k][byte_k(x)], where byte 0 is the leading
    // (x^0-side) byte. Equivalent to the serial Shoup accumulation —
    // each summand carries its x^(8k) factor in its own table — but the
    // sixteen lookups are independent, so they overlap instead of
    // waiting on a shift-and-reduce chain.
    std::uint64_t hi = 0, lo = 0;
    for (unsigned k = 0; k < 8; ++k) {
        const Gf128 &a = t_[k][(x.hi >> (8 * (7 - k))) & 0xff];
        const Gf128 &b = t_[k + 8][(x.lo >> (8 * (7 - k))) & 0xff];
        hi ^= a.hi ^ b.hi;
        lo ^= a.lo ^ b.lo;
    }
    return Gf128{hi, lo};
}

Gf128
gf128Mul(const Gf128 &x, const Gf128 &y)
{
    Table256 t{};
    buildLowTable(t, y);
    return mulSerial(t, x);
}

} // namespace secmem
