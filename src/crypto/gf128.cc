#include "crypto/gf128.hh"

#include "crypto/backend/shoup.hh"

namespace secmem
{

Gf128
Gf128::fromBlock(const Block16 &blk)
{
    return Gf128{loadBe64(blk.b.data()), loadBe64(blk.b.data() + 8)};
}

Block16
Gf128::toBlock() const
{
    Block16 blk;
    storeBe64(blk.b.data(), hi);
    storeBe64(blk.b.data() + 8, lo);
    return blk;
}

Gf128
gf128Mul(const Gf128 &x, const Gf128 &y)
{
    // Deliberately backend-independent (plain serial Shoup): used by
    // code that multiplies by arbitrary operands once, where no
    // per-subkey precomputation could pay off.
    return detail::shoupMulSerial(x, y);
}

} // namespace secmem
