/**
 * @file
 * Synthetic stand-ins for the paper's 21 SPEC CPU 2000 benchmarks.
 *
 * We do not have SPEC binaries or an ISA simulator; instead each
 * benchmark is modelled as a parameterised address-stream generator
 * whose memory behaviour — L2 miss rate, store fraction, write-back
 * locality, streaming vs. random access, pointer-chase dependence —
 * is tuned to reproduce the qualitative behaviour the paper reports
 * (e.g. mcf is dependence-bound and counter-cache hungry; swim and
 * applu stream through large arrays; equake and twolf write small hot
 * sets frequently). DESIGN.md documents why this substitution
 * preserves the experiments.
 */

#ifndef SECMEM_WORKLOAD_SPEC_PROFILES_HH
#define SECMEM_WORKLOAD_SPEC_PROFILES_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "enc/counters.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace secmem
{

/** Tunable description of one benchmark's memory behaviour. */
struct SpecProfile
{
    std::string name;
    std::size_t workingSetKB;  ///< total touched footprint
    double memFraction;        ///< memory ops per instruction
    double storeFraction;      ///< stores among memory ops
    double streamFraction;     ///< sequential-scan share of accesses
    double chaseFraction;      ///< dependent (pointer-chase) loads
    double hotFraction;        ///< accesses hitting the hot set
    std::size_t hotKB;         ///< hot-set size
    double hotStoreBoost;      ///< extra store probability in hot set
    double burst;              ///< mean consecutive accesses per block
    std::size_t warmKB;        ///< warm (roughly L2-sized) region
    double warmFraction;       ///< non-hot, non-stream share going warm
    std::uint64_t seed;
    /** Stream advance per access: 8 = word-sequential (spatial
     *  locality), 64 = block-per-access (maximum eviction pressure). */
    std::size_t streamStepBytes = 8;
};

/** The 21 benchmarks of paper Table 1, in its order. */
const std::vector<SpecProfile> &specProfiles();

/** Profile lookup by name; aborts on unknown names. */
const SpecProfile &profileByName(const std::string &name);

/** The benchmarks the paper plots individually in Figure 4/7/9. */
const std::vector<std::string> &memoryIntensiveNames();

/** An artificially write-hot profile for the re-encryption ablation. */
SpecProfile writeHotProfile();

/**
 * Generator implementing a SpecProfile.
 *
 * `final`, with next() defined inline below: the out-of-order core
 * runs a devirtualized loop for this concrete type (see OooCore::run),
 * and the generator is the single hottest function in timing runs —
 * one call per simulated instruction.
 */
class SpecWorkload final : public WorkloadGenerator
{
  public:
    explicit SpecWorkload(const SpecProfile &profile);

    TraceOp next() override;

    /**
     * Bulk generation for the batched core loop: the same stream as n
     * next() calls (next() is inline and this class is final, so the
     * whole run compiles into one loop with the generator state —
     * rng, burst and region cursors — held in registers across ops
     * instead of reloaded per call).
     */
    unsigned
    nextRun(TraceOp *out, unsigned n) override
    {
        for (unsigned i = 0; i < n; ++i)
            out[i] = next();
        return n;
    }

    const std::string &name() const override { return profile_.name; }

    const SpecProfile &profile() const { return profile_; }

  private:
    Addr
    randomBlockIn(Addr base, std::size_t bytes)
    {
        std::uint64_t blocks = bytes / kBlockBytes;
        return base + rng_.below(blocks) * kBlockBytes;
    }

    Addr skewedBlockIn(Addr base, std::size_t bytes);

    SpecProfile profile_;
    Rng rng_;
    Addr wsBytes_;
    Addr hotBytes_;
    Addr warmBytes_;
    // Hoisted per-op constants (identical values to computing them
    // inline; next() runs once per simulated instruction). The tXxx_
    // members are Rng::threshFor() integer thresholds: same draws and
    // same decisions as chance() on the corresponding probability.
    double pCont_;     ///< geometric burst continuation probability
    double hotStoreP_; ///< boosted store probability in the hot set
    std::uint64_t tMem_;
    std::uint64_t tHot_;
    std::uint64_t tStream_;
    std::uint64_t tWarm_;
    std::uint64_t tStore_;
    std::uint64_t tChase_;
    std::uint64_t tCont_;
    std::uint64_t tHotStore_;
    Addr streamCursor_ = 0;

    // Burst state: consecutive accesses to the current block model the
    // intra-block spatial/temporal locality real programs have (without
    // it the L1 would be useless and every scheme would look identical).
    Addr curBlock_ = 0;
    unsigned remBurst_ = 0;
    bool curHot_ = false;

    // Cold-region page clustering (pool-allocation locality).
    Addr coldPage_ = 0;
    unsigned coldPageRem_ = 0;
};

inline Addr
SpecWorkload::skewedBlockIn(Addr base, std::size_t bytes)
{
    // Page- and block-level popularity skew (min of two uniforms gives
    // a linear ramp at each granularity). Some pages are written back
    // far more than others, and within every page some blocks advance
    // their counters much faster than their neighbours — the behaviour
    // behind the paper's Table 2 counter-growth spread, the 0.3%
    // re-encryption-work result and the decay of counter-prediction
    // rates in Figure 6(b).
    std::uint64_t pages = std::max<std::uint64_t>(1, bytes / kPageBytes);
    std::uint64_t page = std::min(rng_.below(pages), rng_.below(pages));
    std::uint64_t blocks_per_page =
        std::min<std::uint64_t>(kPageBytes / kBlockBytes,
                                bytes / kBlockBytes);
    std::uint64_t blk =
        std::min(rng_.below(blocks_per_page), rng_.below(blocks_per_page));
    return base + page * kPageBytes + blk * kBlockBytes;
}

inline TraceOp
SpecWorkload::next()
{
    if (!rng_.chanceThresh(tMem_))
        return TraceOp::alu();

    Addr addr;
    bool fresh_block = false;
    if (remBurst_ > 0) {
        // Continue the burst on the current block (varying word).
        --remBurst_;
        addr = curBlock_ + rng_.below(kBlockBytes / 8) * 8;
    } else {
        bool hot = rng_.chanceThresh(tHot_);
        if (hot) {
            curBlock_ = skewedBlockIn(0, hotBytes_);
        } else if (rng_.chanceThresh(tStream_)) {
            // Sequential scan in 8-byte words through the cold region:
            // consecutive accesses share a block (spatial locality),
            // blocks never revisited until the stream wraps.
            Addr stream_base = hotBytes_ + warmBytes_;
            addr = stream_base + streamCursor_;
            streamCursor_ += profile_.streamStepBytes;
            if (stream_base + streamCursor_ >= wsBytes_)
                streamCursor_ = 0;
            curHot_ = false;
            bool st = rng_.chanceThresh(tStore_);
            return st ? TraceOp::store(addr) : TraceOp::load(addr);
        } else if (rng_.chanceThresh(tWarm_)) {
            // Warm region: roughly L2-sized, mostly resident.
            curBlock_ = skewedBlockIn(hotBytes_, warmBytes_);
        } else {
            // Cold region: real heaps are pool-allocated, so cold
            // traffic clusters at page granularity — a new 4 KB page
            // is picked only every few fresh blocks. This gives cold
            // misses the counter-cache and MAC-tree page locality real
            // programs have.
            if (coldPageRem_ == 0) {
                Addr cold_base = hotBytes_ + warmBytes_;
                std::uint64_t pages =
                    (wsBytes_ - cold_base) / kPageBytes;
                coldPage_ = cold_base + rng_.below(pages) * kPageBytes;
                coldPageRem_ = 1 + static_cast<unsigned>(rng_.below(11));
            }
            --coldPageRem_;
            curBlock_ = coldPage_ + rng_.below(kPageBytes / kBlockBytes) *
                                        kBlockBytes;
        }
        curHot_ = hot;
        fresh_block = true;
        // Geometric burst length with the profile's mean.
        remBurst_ = 0;
        while (rng_.chanceThresh(tCont_) && remBurst_ < 64)
            ++remBurst_;
        addr = curBlock_ + rng_.below(kBlockBytes / 8) * 8;
    }

    std::uint64_t store_t = curHot_ ? tHotStore_ : tStore_;
    if (rng_.chanceThresh(store_t))
        return TraceOp::store(addr);

    // Pointer-chase dependence applies to the dereference that reaches
    // a new node (fresh block), not to the within-block field accesses.
    bool dep = fresh_block && rng_.chanceThresh(tChase_);
    return TraceOp::load(addr, dep);
}

} // namespace secmem

#endif // SECMEM_WORKLOAD_SPEC_PROFILES_HH
