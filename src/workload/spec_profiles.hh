/**
 * @file
 * Synthetic stand-ins for the paper's 21 SPEC CPU 2000 benchmarks.
 *
 * We do not have SPEC binaries or an ISA simulator; instead each
 * benchmark is modelled as a parameterised address-stream generator
 * whose memory behaviour — L2 miss rate, store fraction, write-back
 * locality, streaming vs. random access, pointer-chase dependence —
 * is tuned to reproduce the qualitative behaviour the paper reports
 * (e.g. mcf is dependence-bound and counter-cache hungry; swim and
 * applu stream through large arrays; equake and twolf write small hot
 * sets frequently). DESIGN.md documents why this substitution
 * preserves the experiments.
 */

#ifndef SECMEM_WORKLOAD_SPEC_PROFILES_HH
#define SECMEM_WORKLOAD_SPEC_PROFILES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "enc/counters.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace secmem
{

/** Tunable description of one benchmark's memory behaviour. */
struct SpecProfile
{
    std::string name;
    std::size_t workingSetKB;  ///< total touched footprint
    double memFraction;        ///< memory ops per instruction
    double storeFraction;      ///< stores among memory ops
    double streamFraction;     ///< sequential-scan share of accesses
    double chaseFraction;      ///< dependent (pointer-chase) loads
    double hotFraction;        ///< accesses hitting the hot set
    std::size_t hotKB;         ///< hot-set size
    double hotStoreBoost;      ///< extra store probability in hot set
    double burst;              ///< mean consecutive accesses per block
    std::size_t warmKB;        ///< warm (roughly L2-sized) region
    double warmFraction;       ///< non-hot, non-stream share going warm
    std::uint64_t seed;
    /** Stream advance per access: 8 = word-sequential (spatial
     *  locality), 64 = block-per-access (maximum eviction pressure). */
    std::size_t streamStepBytes = 8;
};

/** The 21 benchmarks of paper Table 1, in its order. */
const std::vector<SpecProfile> &specProfiles();

/** Profile lookup by name; aborts on unknown names. */
const SpecProfile &profileByName(const std::string &name);

/** The benchmarks the paper plots individually in Figure 4/7/9. */
const std::vector<std::string> &memoryIntensiveNames();

/** An artificially write-hot profile for the re-encryption ablation. */
SpecProfile writeHotProfile();

/** Generator implementing a SpecProfile. */
class SpecWorkload : public WorkloadGenerator
{
  public:
    explicit SpecWorkload(const SpecProfile &profile);

    TraceOp next() override;
    const std::string &name() const override { return profile_.name; }

    const SpecProfile &profile() const { return profile_; }

  private:
    Addr randomBlockIn(Addr base, std::size_t bytes);
    Addr skewedBlockIn(Addr base, std::size_t bytes);

    SpecProfile profile_;
    Rng rng_;
    Addr wsBytes_;
    Addr hotBytes_;
    Addr warmBytes_;
    Addr streamCursor_ = 0;

    // Burst state: consecutive accesses to the current block model the
    // intra-block spatial/temporal locality real programs have (without
    // it the L1 would be useless and every scheme would look identical).
    Addr curBlock_ = 0;
    unsigned remBurst_ = 0;
    bool curHot_ = false;

    // Cold-region page clustering (pool-allocation locality).
    Addr coldPage_ = 0;
    unsigned coldPageRem_ = 0;
};

} // namespace secmem

#endif // SECMEM_WORKLOAD_SPEC_PROFILES_HH
