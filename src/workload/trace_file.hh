/**
 * @file
 * Trace-file workloads: record any generator's instruction stream to a
 * portable text format and replay it later, so users can drive the
 * simulator with traces captured from real programs (e.g. via Pin or
 * valgrind) instead of the synthetic SPEC profiles.
 *
 * Format: one record per line.
 *   A <count>        — <count> non-memory instructions
 *   L <hex-addr>     — load
 *   D <hex-addr>     — dependent load (address depends on prior load)
 *   S <hex-addr>     — store
 * Lines starting with '#' are comments. The stream loops when replay
 * reaches the end, so short traces can drive long simulations.
 */

#ifndef SECMEM_WORKLOAD_TRACE_FILE_HH
#define SECMEM_WORKLOAD_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace secmem
{

/** Replay a recorded trace, looping at end-of-trace. */
class TraceFileWorkload : public WorkloadGenerator
{
  public:
    /** Load a trace from @p path; aborts on parse errors. */
    explicit TraceFileWorkload(const std::string &path);

    /** Build from an in-memory op list (testing / programmatic use). */
    TraceFileWorkload(std::string name, std::vector<TraceOp> ops);

    TraceOp next() override;
    const std::string &name() const override { return name_; }

    /** Number of (expanded) instructions per loop iteration. */
    std::size_t length() const { return ops_.size(); }

  private:
    std::string name_;
    std::vector<TraceOp> ops_;
    std::size_t cursor_ = 0;
};

/**
 * Record @p n instructions of @p gen to @p path in the format above
 * (runs of non-memory instructions are compressed into A-records).
 */
void recordTrace(WorkloadGenerator &gen, std::uint64_t n,
                 const std::string &path);

} // namespace secmem

#endif // SECMEM_WORKLOAD_TRACE_FILE_HH
