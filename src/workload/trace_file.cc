#include "workload/trace_file.hh"

#include <cinttypes>
#include <cstdio>

#include "sim/log.hh"

namespace secmem
{

TraceFileWorkload::TraceFileWorkload(const std::string &path) : name_(path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        SECMEM_FATAL("cannot open trace file '%s'", path.c_str());
    char line[128];
    std::size_t line_no = 0;
    while (std::fgets(line, sizeof(line), f)) {
        ++line_no;
        char kind = line[0];
        if (kind == '#' || kind == '\n' || kind == '\0')
            continue;
        std::uint64_t value = 0;
        if (std::sscanf(line + 1, "%" SCNx64, &value) != 1 &&
            kind != 'A') {
            std::fclose(f);
            SECMEM_FATAL("%s:%zu: malformed record '%s'", path.c_str(),
                         line_no, line);
        }
        switch (kind) {
          case 'A': {
            std::uint64_t count = 0;
            if (std::sscanf(line + 1, "%" SCNu64, &count) != 1) {
                std::fclose(f);
                SECMEM_FATAL("%s:%zu: malformed A-record", path.c_str(),
                             line_no);
            }
            for (std::uint64_t i = 0; i < count; ++i)
                ops_.push_back(TraceOp::alu());
            break;
          }
          case 'L':
            ops_.push_back(TraceOp::load(value));
            break;
          case 'D':
            ops_.push_back(TraceOp::load(value, true));
            break;
          case 'S':
            ops_.push_back(TraceOp::store(value));
            break;
          default:
            std::fclose(f);
            SECMEM_FATAL("%s:%zu: unknown record kind '%c'", path.c_str(),
                         line_no, kind);
        }
    }
    std::fclose(f);
    if (ops_.empty())
        SECMEM_FATAL("trace file '%s' contains no instructions",
                     path.c_str());
}

TraceFileWorkload::TraceFileWorkload(std::string name,
                                     std::vector<TraceOp> ops)
    : name_(std::move(name)), ops_(std::move(ops))
{
    SECMEM_ASSERT(!ops_.empty(), "empty programmatic trace");
}

TraceOp
TraceFileWorkload::next()
{
    TraceOp op = ops_[cursor_];
    cursor_ = (cursor_ + 1) % ops_.size();
    return op;
}

void
recordTrace(WorkloadGenerator &gen, std::uint64_t n,
            const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        SECMEM_FATAL("cannot create trace file '%s'", path.c_str());
    std::fprintf(f, "# secmem trace recorded from '%s'\n",
                 gen.name().c_str());
    std::uint64_t alu_run = 0;
    auto flush_alu = [&] {
        if (alu_run > 0) {
            std::fprintf(f, "A %" PRIu64 "\n", alu_run);
            alu_run = 0;
        }
    };
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceOp op = gen.next();
        if (!op.isMem) {
            ++alu_run;
            continue;
        }
        flush_alu();
        char kind = op.isStore ? 'S' : (op.dependsOnPrev ? 'D' : 'L');
        std::fprintf(f, "%c %" PRIx64 "\n", kind, op.addr);
    }
    flush_alu();
    std::fclose(f);
}

} // namespace secmem
