#include "workload/spec_profiles.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace secmem
{

namespace
{

/**
 * Parameter table for the 21 benchmarks of paper Table 1.
 *
 * The tuning intent, per the paper's observations:
 *  - swim / mgrid / applu / art / wupwise: large-footprint streaming
 *    FP codes with high store rates — high L2 miss rates and fast
 *    counter growth (applu and art fastest, Table 2);
 *  - equake / twolf: small hot sets written back very frequently
 *    (high counter growth despite moderate total write-back rates);
 *  - mcf: huge pointer-chasing working set — most latency-bound and
 *    most sensitive to counter-cache bus contention (Figure 7);
 *  - parser / vpr / gcc / gap / vortex / apsi / ammp / bzip2: moderate;
 *  - crafty / eon / gzip / mesa / perlbmk: cache-resident, little
 *    memory traffic, near-zero overhead in every scheme.
 */
std::vector<SpecProfile>
makeProfiles()
{
    // name         wsKB  mem   store strm  chase hot  hotKB boost brst warmKB wfrac seed
    return {
        {"bzip2",    4096, 0.32, 0.25, 0.025, 0.05, 0.50, 32, 0.3, 7.0,  704, 0.99, 101},
        {"crafty",   2048, 0.30, 0.20, 0.008, 0.10, 0.70, 32, 0.2, 8.0,  640, 0.995, 102},
        {"eon",      1024, 0.33, 0.30, 0.004, 0.05, 0.80, 24, 0.2, 8.0,  448, 0.995, 103},
        {"gap",      8192, 0.35, 0.25, 0.02,  0.10, 0.40, 32, 0.5, 6.0,  704, 0.99, 104},
        {"gcc",      6144, 0.36, 0.28, 0.015, 0.12, 0.45, 32, 0.4, 6.0,  704, 0.99, 105},
        {"gzip",     3072, 0.30, 0.22, 0.03,  0.03, 0.55, 32, 0.3, 7.0,  704, 0.99, 106},
        {"mcf",     65536, 0.45, 0.18, 0.02,  0.40, 0.20, 64, 0.5, 4.0,  896, 0.94, 107},
        {"parser",  12288, 0.38, 0.25, 0.015, 0.30, 0.40, 48, 0.8, 5.0,  768, 0.985, 108},
        {"perlbmk",  3072, 0.34, 0.28, 0.008, 0.12, 0.65, 32, 0.3, 7.0,  640, 0.995, 109},
        {"twolf",   10240, 0.40, 0.26, 0.01,  0.25, 0.42, 48, 2.2, 5.0,  768, 0.985, 110},
        {"vortex",   8192, 0.37, 0.30, 0.015, 0.15, 0.45, 32, 0.5, 6.0,  704, 0.99, 111},
        {"vpr",      9216, 0.38, 0.27, 0.012, 0.20, 0.45, 48, 0.6, 6.0,  768, 0.985, 112},
        {"ammp",    16384, 0.40, 0.25, 0.035, 0.15, 0.32, 64, 1.0, 5.0,  832, 0.98, 113},
        {"applu",   32768, 0.42, 0.30, 0.06,  0.02, 0.22, 96, 1.5, 6.0,  832, 0.985, 114},
        {"apsi",     8192, 0.38, 0.30, 0.03,  0.05, 0.35, 48, 0.5, 6.0,  768, 0.985, 115},
        {"art",     24576, 0.44, 0.30, 0.08,  0.05, 0.25, 64, 1.5, 5.0,  768, 0.975, 116},
        {"equake",  20480, 0.40, 0.28, 0.04,  0.10, 0.35, 48, 2.0, 5.0,  832, 0.98, 117},
        {"mesa",     2048, 0.34, 0.30, 0.01,  0.03, 0.65, 32, 0.3, 8.0,  640, 0.995, 118},
        {"mgrid",   28672, 0.40, 0.25, 0.05,  0.02, 0.18, 64, 1.0, 6.0,  832, 0.985, 119},
        {"swim",    49152, 0.44, 0.25, 0.08,  0.01, 0.12, 64, 1.0, 6.0,  832, 0.98, 120},
        {"wupwise", 24576, 0.40, 0.28, 0.045, 0.05, 0.25, 64, 1.2, 6.0,  832, 0.98, 121},
    };
}

} // namespace

const std::vector<SpecProfile> &
specProfiles()
{
    static const std::vector<SpecProfile> profiles = makeProfiles();
    return profiles;
}

const SpecProfile &
profileByName(const std::string &name)
{
    for (const SpecProfile &p : specProfiles()) {
        if (p.name == name)
            return p;
    }
    SECMEM_FATAL("unknown workload '%s'", name.c_str());
}

const std::vector<std::string> &
memoryIntensiveNames()
{
    static const std::vector<std::string> names = {
        "ammp", "applu", "apsi", "art",  "equake",  "gap",
        "mcf",  "mgrid", "parser", "swim", "twolf", "vortex",
        "vpr",  "wupwise",
    };
    return names;
}

SpecProfile
writeHotProfile()
{
    // Deliberately write-hot: a 16 KB set absorbing half of all
    // accesses with boosted stores, evicted continuously by an 8 MB
    // stream — drives minor counters to overflow quickly so the RSR
    // machinery is exercised within short runs.
    SpecProfile p{"writehot", 8192, 0.45, 0.50, 0.90, 0.0, 0.50, 16,
                  1.0,        2.0,  1024, 0.0,  999};
    p.streamStepBytes = kBlockBytes; // maximum eviction pressure
    return p;
}

SpecWorkload::SpecWorkload(const SpecProfile &profile)
    : profile_(profile),
      rng_(profile.seed),
      wsBytes_(static_cast<Addr>(profile.workingSetKB) * 1024),
      hotBytes_(static_cast<Addr>(profile.hotKB) * 1024),
      warmBytes_(static_cast<Addr>(profile.warmKB) * 1024),
      pCont_(1.0 - 1.0 / std::max(1.0, profile.burst)),
      hotStoreP_(std::min(0.95, profile.storeFraction *
                                    (1.0 + profile.hotStoreBoost))),
      tMem_(Rng::threshFor(profile.memFraction)),
      tHot_(Rng::threshFor(profile.hotFraction)),
      tStream_(Rng::threshFor(profile.streamFraction)),
      tWarm_(Rng::threshFor(profile.warmFraction)),
      tStore_(Rng::threshFor(profile.storeFraction)),
      tChase_(Rng::threshFor(profile.chaseFraction)),
      tCont_(Rng::threshFor(pCont_)),
      tHotStore_(Rng::threshFor(hotStoreP_))
{
    SECMEM_ASSERT(hotBytes_ + warmBytes_ < wsBytes_,
                  "hot + warm sets must fit the working set");
}

} // namespace secmem
