/**
 * @file
 * TamperInjector: randomized, deterministic-seeded fault injection
 * against a live SecureMemoryController.
 *
 * The injector plays the hardware attacker of the paper's threat
 * model. It owns a library of attack primitives —
 *
 *   BitFlip       single-bit ciphertext flip in a data block
 *   ByteCorrupt   multi-byte corruption of a data block
 *   Splice        relocate a valid ciphertext to another address
 *   DataReplay    roll a data block back to a previously snooped value
 *   CtrRollback   roll a counter block back (paper §4.3 precondition)
 *   MacReplay     roll a Merkle-tree MAC block back
 *   RegionFuzz    random multi-byte corruption targeted at a random
 *                 region (data / counter / MAC)
 *
 * — plus transient (non-persistent) variants of the bit flip that
 * corrupt a single fetch without modifying DRAM, exercising the
 * RetryRefetch recovery policy.
 *
 * Every injection is immediately *probed*: the injector issues a read
 * of the affected data address through the controller and records
 * whether (and by which check, at what latency) the corruption was
 * detected. DRAM is restored and poisoned clean cache lines are
 * dropped afterwards, so a campaign can keep running the workload
 * between injections without cross-contamination.
 *
 * All randomness flows through an explicitly seeded sim/rng.hh Rng, so
 * a campaign is exactly reproducible from (seed, schedule, workload).
 */

#ifndef SECMEM_ATTACK_INJECTOR_HH
#define SECMEM_ATTACK_INJECTOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/controller.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace secmem
{

/** The injector's attack primitive library. */
enum class AttackKind
{
    BitFlip,
    ByteCorrupt,
    Splice,
    DataReplay,
    CtrRollback,
    MacReplay,
    RegionFuzz,
};
constexpr unsigned kNumAttackKinds = 7;

const char *toString(AttackKind k);

/** When injections fire relative to the access stream. */
struct InjectionSchedule
{
    /** Inject every N memory accesses (0 disables the periodic mode). */
    std::uint64_t everyN = 64;
    /** Per-access injection probability, used when everyN == 0. */
    double probability = 0.0;
};

/** Outcome of one staged injection + detection probe. */
struct Injection
{
    std::uint64_t serial = 0;  ///< injection sequence number
    AttackKind kind = AttackKind::BitFlip;
    MemRegion region = MemRegion::Unknown;
    Addr victim = kAddrInvalid; ///< tampered block
    Addr probe = kAddrInvalid;  ///< data address read to observe it
    bool staged = false;    ///< bytes were actually corrupted / armed
    bool transient = false; ///< read-path-only fault, DRAM untouched
    bool detected = false;  ///< the probe read reported a failure
    bool recovered = false; ///< RetryRefetch re-verified cleanly
    bool quarantined = false; ///< budget exhausted under Quarantine
    unsigned escalations = 0; ///< recovery stage transitions observed
    TamperCheck check = TamperCheck::LeafTag; ///< detecting layer
    unsigned level = 0;     ///< tree level for TreeNode detections
    Tick latency = 0;       ///< issue-to-detection ticks
};

/** Deterministic adversarial fault injector. */
class TamperInjector
{
  public:
    TamperInjector(SecureMemoryController &ctrl, std::uint64_t seed,
                   InjectionSchedule schedule = {});

    /**
     * Record one workload access *before* it is issued to the
     * controller; grows the victim pool and captures pre-store data
     * snapshots for later replay attacks. Returns true when the
     * schedule calls for an injection after this access completes.
     */
    bool noteAccess(Addr addr, bool is_store);

    /**
     * Stage one attack of @p kind at simulated time @p now, probe
     * detection with a controller read, then restore DRAM and drop
     * poisoned clean cache lines. Returns the outcome (staged == false
     * when the primitive had no usable victim this round).
     */
    Injection injectAndProbe(Tick now, AttackKind kind);

    /** As above, cycling round-robin through all applicable kinds. */
    Injection injectNext(Tick now);

    /**
     * Stage a transient (non-persistent) bit flip: the probe's next
     * fetch is corrupted, DRAM is untouched. Under RetryRefetch the
     * controller recovers; under other policies it reports.
     */
    Injection injectTransient(Tick now);

    /**
     * Fraction of injectNext() rounds delivered as transient bit
     * flips (DRAM untouched) instead of the cycled persistent kind.
     */
    void setTransientFraction(double f) { transientFraction_ = f; }

    /** True when @p kind can target this controller's configuration. */
    bool applicable(AttackKind kind) const;

    /** All injections performed so far, oldest first. */
    const std::vector<Injection> &log() const { return log_; }

    /** Distinct data blocks seen so far (victim candidates). */
    std::size_t poolSize() const { return pool_.size(); }

    stats::Group &stats() { return stats_; }

  private:
    /** Corrupt-then-restore bookkeeping for one injection. */
    struct Undo
    {
        Addr addr;
        Block64 value;
    };

    Addr pickPoolAddr();
    /** Stage the primitive; fills victim/region, appends undo entries. */
    bool stage(AttackKind kind, Injection &inj, std::vector<Undo> &undo);
    void captureHistories(Addr probe);

    SecureMemoryController &ctrl_;
    Rng rng_;
    InjectionSchedule sched_;
    double transientFraction_ = 0.0;

    const bool hasCtrRegion_;
    const bool hasMacRegion_;

    std::uint64_t accesses_ = 0;
    std::uint64_t serial_ = 0;
    unsigned nextKind_ = 0; ///< round-robin cursor for injectNext

    /** Victim pool: every data block the workload has touched. */
    std::vector<Addr> pool_;
    std::set<Addr> poolSet_;

    /** Replay material: old values of data / counter / MAC blocks. */
    std::map<Addr, Block64> dataHist_;
    struct MetaHist
    {
        Block64 value; ///< DRAM value at capture time
        Addr probe;    ///< data address whose path covers this block
    };
    std::map<Addr, MetaHist> ctrHist_;
    std::map<Addr, MetaHist> macHist_;

    std::vector<Injection> log_;
    stats::Group stats_;
};

} // namespace secmem

#endif // SECMEM_ATTACK_INJECTOR_HH
