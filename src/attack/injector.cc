#include "attack/injector.hh"

#include <string>

#include "enc/counters.hh"
#include "sim/log.hh"

namespace secmem
{

const char *
toString(AttackKind k)
{
    switch (k) {
      case AttackKind::BitFlip:
        return "bitflip";
      case AttackKind::ByteCorrupt:
        return "bytecorrupt";
      case AttackKind::Splice:
        return "splice";
      case AttackKind::DataReplay:
        return "datareplay";
      case AttackKind::CtrRollback:
        return "ctrrollback";
      case AttackKind::MacReplay:
        return "macreplay";
      case AttackKind::RegionFuzz:
        return "regionfuzz";
    }
    SECMEM_PANIC("bad AttackKind");
}

TamperInjector::TamperInjector(SecureMemoryController &ctrl,
                               std::uint64_t seed, InjectionSchedule schedule)
    : ctrl_(ctrl),
      rng_(seed),
      sched_(schedule),
      hasCtrRegion_(ctrl.config().usesCounterCache()),
      hasMacRegion_(ctrl.config().auth != AuthKind::None),
      stats_("injector")
{
}

bool
TamperInjector::noteAccess(Addr addr, bool is_store)
{
    Addr base = blockBase(addr);
    // Pre-store snoop: once the store lands this value is stale, which
    // makes it DataReplay material (a genuine old ciphertext).
    if (is_store && poolSet_.count(base) && !dataHist_.count(base))
        dataHist_.emplace(base, ctrl_.dram().snoop(base));
    if (poolSet_.insert(base).second)
        pool_.push_back(base);
    ++accesses_;
    if (sched_.everyN)
        return accesses_ % sched_.everyN == 0;
    return sched_.probability > 0.0 && rng_.chance(sched_.probability);
}

bool
TamperInjector::applicable(AttackKind kind) const
{
    switch (kind) {
      case AttackKind::CtrRollback:
        return hasCtrRegion_;
      case AttackKind::MacReplay:
        return hasMacRegion_;
      default:
        return true;
    }
}

Addr
TamperInjector::pickPoolAddr()
{
    return pool_[static_cast<std::size_t>(rng_.below(pool_.size()))];
}

void
TamperInjector::captureHistories(Addr probe)
{
    // Flush dirty metadata so (a) DRAM is the authoritative current
    // state for snapshots and rollback comparisons, and (b) the probe
    // read fetches — and therefore verifies — straight from DRAM with
    // no dirty victims to write back mid-probe.
    if (hasCtrRegion_)
        ctrl_.flushCtrCache();
    if (hasMacRegion_)
        ctrl_.flushMacCache();

    Dram &dram = ctrl_.dram();
    const AddressMap &map = ctrl_.map();
    if (hasCtrRegion_) {
        Addr ca = map.ctrBlockAddrFor(probe);
        if (!ctrHist_.count(ca))
            ctrHist_.emplace(ca, MetaHist{dram.snoop(ca), probe});
    }
    if (hasMacRegion_) {
        TagLocation loc = map.tagOfLeaf(map.leafIndexOfData(probe));
        if (!loc.pinned && !macHist_.count(loc.blockAddr))
            macHist_.emplace(loc.blockAddr,
                             MetaHist{dram.snoop(loc.blockAddr), probe});
    }
}

bool
TamperInjector::stage(AttackKind kind, Injection &inj,
                      std::vector<Undo> &undo)
{
    Dram &dram = ctrl_.dram();
    const AddressMap &map = ctrl_.map();
    const Addr probe = inj.probe;

    auto corrupt = [&](Addr victim, unsigned n_bytes) {
        undo.push_back({victim, dram.snoop(victim)});
        for (unsigned i = 0; i < n_bytes; ++i) {
            std::size_t off = static_cast<std::size_t>(
                rng_.below(kBlockBytes));
            auto mask = static_cast<std::uint8_t>(1 + rng_.below(255));
            dram.tamperXor(victim, off, mask);
        }
    };

    switch (kind) {
      case AttackKind::BitFlip: {
        inj.victim = probe;
        inj.region = MemRegion::Data;
        std::size_t off = static_cast<std::size_t>(rng_.below(kBlockBytes));
        auto mask = static_cast<std::uint8_t>(1u << rng_.below(8));
        if (inj.transient) {
            dram.injectTransientXor(probe, off, mask);
        } else {
            undo.push_back({probe, dram.snoop(probe)});
            dram.tamperXor(probe, off, mask);
        }
        return true;
      }

      case AttackKind::ByteCorrupt:
        inj.victim = probe;
        inj.region = MemRegion::Data;
        corrupt(probe, static_cast<unsigned>(2 + rng_.below(15)));
        return true;

      case AttackKind::Splice: {
        if (pool_.size() < 2)
            return false;
        Addr src = pickPoolAddr();
        for (int i = 0; i < 8 && src == probe; ++i)
            src = pickPoolAddr();
        if (src == probe)
            return false;
        Block64 sv = dram.snoop(src);
        Block64 dv = dram.snoop(probe);
        if (sv == dv)
            return false; // relocation would be a no-op
        inj.victim = probe;
        inj.region = MemRegion::Data;
        undo.push_back({probe, dv});
        dram.writeBlock(probe, sv);
        return true;
      }

      case AttackKind::DataReplay: {
        for (auto it = dataHist_.begin(); it != dataHist_.end(); ++it) {
          Block64 cur = dram.snoop(it->first);
          if (cur == it->second)
              continue; // block not rewritten yet: replay is a no-op
          inj.victim = it->first;
          inj.probe = it->first;
          inj.region = MemRegion::Data;
          undo.push_back({it->first, cur});
          dram.replay(it->first, it->second);
          dataHist_.erase(it); // allow a fresh capture next time
          return true;
        }
        return false;
      }

      case AttackKind::CtrRollback: {
        // captureHistories flushed the counter cache, so DRAM holds
        // every counter block's current value. A counter block packs a
        // whole page of slots; only roll back when the probe's own
        // slot advanced, otherwise the rollback garbles a sibling the
        // probe read cannot observe.
        const SecureMemConfig &cfg = ctrl_.config();
        auto slotCounter = [&](Addr data_addr, const Block64 &blk) {
            unsigned slot = map.ctrSlotFor(data_addr);
            if (cfg.enc == EncKind::CtrMono)
                return MonoCounterBlock(cfg.monoBits, blk).counter(slot);
            return SplitCounterBlock(blk).counterFor(slot);
        };
        for (auto it = ctrHist_.begin(); it != ctrHist_.end(); ++it) {
            Block64 cur = dram.snoop(it->first);
            if (slotCounter(it->second.probe, cur) ==
                slotCounter(it->second.probe, it->second.value))
                continue; // probe's counter has not advanced since capture
            inj.victim = it->first;
            inj.probe = it->second.probe;
            inj.region = MemRegion::Counter;
            undo.push_back({it->first, cur});
            dram.replay(it->first, it->second.value);
            ctrHist_.erase(it);
            return true;
        }
        return false;
      }

      case AttackKind::MacReplay: {
        for (auto it = macHist_.begin(); it != macHist_.end(); ++it) {
            Block64 cur = dram.snoop(it->first);
            if (cur == it->second.value)
                continue;
            inj.victim = it->first;
            inj.probe = it->second.probe;
            inj.region = MemRegion::Mac;
            undo.push_back({it->first, cur});
            dram.replay(it->first, it->second.value);
            macHist_.erase(it);
            return true;
        }
        return false;
      }

      case AttackKind::RegionFuzz: {
        MemRegion choices[3];
        unsigned n = 0;
        choices[n++] = MemRegion::Data;
        if (hasCtrRegion_)
            choices[n++] = MemRegion::Counter;
        if (hasMacRegion_)
            choices[n++] = MemRegion::Mac;
        MemRegion r = choices[rng_.below(n)];
        Addr victim;
        if (r == MemRegion::Data) {
            victim = probe;
        } else if (r == MemRegion::Counter) {
            victim = map.ctrBlockAddrFor(probe);
        } else {
            TagLocation loc = map.tagOfLeaf(map.leafIndexOfData(probe));
            if (loc.pinned)
                return false; // top of tree is out of the attacker's reach
            victim = loc.blockAddr;
        }
        inj.victim = victim;
        inj.region = r;
        if (r == MemRegion::Counter) {
            // A counter block packs many data blocks' counters; sparse
            // byte damage may only hit siblings, whose corruption the
            // probe address cannot observe. Garble the whole block so
            // the probe's own slot is guaranteed affected.
            undo.push_back({victim, dram.snoop(victim)});
            for (std::size_t off = 0; off < kBlockBytes; ++off)
                dram.tamperXor(victim, off,
                               static_cast<std::uint8_t>(1 + rng_.below(255)));
        } else {
            corrupt(victim, static_cast<unsigned>(1 + rng_.below(8)));
        }
        return true;
      }
    }
    return false;
}

Injection
TamperInjector::injectAndProbe(Tick now, AttackKind kind)
{
    Injection inj;
    inj.serial = serial_++;
    inj.kind = kind;
    stats_.counter(std::string("attempt_") + toString(kind)).inc();

    if (pool_.empty() || !applicable(kind) || ctrl_.halted()) {
        log_.push_back(inj);
        return inj;
    }

    inj.probe = pickPoolAddr();
    captureHistories(inj.probe);

    std::vector<Undo> undo;
    inj.staged = stage(kind, inj, undo);
    if (!inj.staged) {
        stats_.counter(std::string("skipped_") + toString(kind)).inc();
        log_.push_back(inj);
        return inj;
    }
    stats_.counter(std::string("staged_") + toString(kind)).inc();

    // Probe: a read of the affected data address; any surviving
    // corruption must surface through the controller's checks here.
    std::uint64_t before = ctrl_.reports().size() + ctrl_.reportsDropped();
    Block64 out;
    (void)ctrl_.readBlock(inj.probe, now, &out);
    if (ctrl_.reports().size() + ctrl_.reportsDropped() > before) {
        const TamperReport &r = ctrl_.lastReport();
        inj.detected = true;
        inj.check = r.check;
        inj.level = r.level;
        inj.latency = r.latency();
        inj.recovered = r.recovered;
        inj.quarantined = r.recovery.quarantined;
        inj.escalations = r.recovery.escalations;
        stats_.counter(std::string("detected_") + toString(kind)).inc();
        stats_.sample("detect_latency").record(
            static_cast<double>(inj.latency));
        if (inj.quarantined)
            stats_.counter("quarantined").inc();
    }

    // Restore DRAM and drop the (clean) poisoned copies the probe may
    // have parked in the metadata caches, so the workload continues on
    // pristine state. Nothing is dirty at this point — the pre-stage
    // flush cleaned the caches and the probe was a read — so these
    // flushes are pure invalidation.
    for (auto it = undo.rbegin(); it != undo.rend(); ++it)
        ctrl_.dram().replay(it->addr, it->value);
    if (hasCtrRegion_)
        ctrl_.flushCtrCache();
    if (hasMacRegion_)
        ctrl_.flushMacCache();
    // DRAM is pristine again: model the operator repairing the fault
    // and releasing the probe's block, so a Quarantine campaign keeps
    // exercising every attack class instead of starving its pool.
    if (inj.quarantined)
        ctrl_.releaseQuarantine(inj.probe);

    log_.push_back(inj);
    return inj;
}

Injection
TamperInjector::injectNext(Tick now)
{
    // A slice of rounds goes to transient bit flips so recovery
    // policies see non-persistent faults among the persistent ones.
    if (transientFraction_ > 0.0 && rng_.chance(transientFraction_))
        return injectTransient(now);
    for (unsigned i = 0; i < kNumAttackKinds; ++i) {
        auto k = static_cast<AttackKind>(nextKind_);
        nextKind_ = (nextKind_ + 1) % kNumAttackKinds;
        if (applicable(k))
            return injectAndProbe(now, k);
    }
    return injectAndProbe(now, AttackKind::BitFlip);
}

Injection
TamperInjector::injectTransient(Tick now)
{
    Injection inj;
    inj.serial = serial_++;
    inj.kind = AttackKind::BitFlip;
    inj.transient = true;
    stats_.counter("attempt_transient").inc();

    if (pool_.empty() || ctrl_.halted()) {
        log_.push_back(inj);
        return inj;
    }
    inj.probe = pickPoolAddr();
    captureHistories(inj.probe);

    std::vector<Undo> undo;
    inj.staged = stage(AttackKind::BitFlip, inj, undo);
    stats_.counter("staged_transient").inc();

    std::uint64_t before = ctrl_.reports().size() + ctrl_.reportsDropped();
    Block64 out;
    (void)ctrl_.readBlock(inj.probe, now, &out);
    if (ctrl_.reports().size() + ctrl_.reportsDropped() > before) {
        const TamperReport &r = ctrl_.lastReport();
        inj.detected = true;
        inj.check = r.check;
        inj.level = r.level;
        inj.latency = r.latency();
        inj.recovered = r.recovered;
        inj.quarantined = r.recovery.quarantined;
        inj.escalations = r.recovery.escalations;
        stats_.counter("detected_transient").inc();
        if (inj.recovered)
            stats_.counter("recovered_transient").inc();
    }
    // DRAM was never modified; just drop poisoned clean cache copies.
    if (hasCtrRegion_)
        ctrl_.flushCtrCache();
    if (hasMacRegion_)
        ctrl_.flushMacCache();
    // The fault was transient, so the block's storage is sound; an
    // exhausted zero-budget recovery still quarantines, and the
    // operator releases it once the glitch passes.
    if (inj.quarantined)
        ctrl_.releaseQuarantine(inj.probe);
    log_.push_back(inj);
    return inj;
}

} // namespace secmem
