/**
 * @file
 * FaultStorm: sustained, deterministic-seeded fault pressure against a
 * live SecureMemoryController.
 *
 * Where TamperInjector stages one carefully probed attack at a time
 * (inject, read, restore), the storm models an unreliable environment:
 * before workload accesses it arms transient read-path faults — and
 * optionally lands persistent DRAM corruption — on the access path of
 * the block about to be touched (the data block itself, its counter
 * block, or its leaf-MAC block). Nothing is probed or restored; the
 * workload runs straight through the weather and the chaos campaign
 * (src/harness/chaos.hh) checks end-to-end that every surviving fault
 * was either recovered, quarantined, or at minimum reported — never
 * silently returned as clean data.
 *
 * All randomness flows through one seeded Rng, so a storm is exactly
 * reproducible from (seed, workload, scheme).
 */

#ifndef SECMEM_ATTACK_CHAOS_HH
#define SECMEM_ATTACK_CHAOS_HH

#include <cstdint>
#include <map>

#include "core/controller.hh"
#include "sim/rng.hh"

namespace secmem
{

/** Storm intensity knobs. */
struct StormConfig
{
    std::uint64_t seed = 1;
    /** Per-access probability of arming a transient fault burst. */
    double transientRate = 0.02;
    /**
     * Per-access probability of landing persistent DRAM corruption.
     * Incompatible with the shadow-model oracle: a later write
     * "repairs" the corrupted metadata in ways the reference model
     * cannot see, so verify-model campaigns force this to zero.
     */
    double persistentRate = 0.0;
    /** Transient faults per burst: uniform in [1, maxBurst]. */
    unsigned maxBurst = 3;
    /** Fraction of faults aimed at metadata (counter / MAC) blocks. */
    double metaFraction = 0.4;
    /**
     * Restrict faults to the data fetches of loads. Required for
     * shadow-model campaigns: a fault consumed by a *write's* metadata
     * fetch is detected but the write still commits, which the shadow
     * (that skips non-clean accesses) cannot track; and a fault armed
     * on a metadata block can linger in DRAM until exactly such a
     * write consumes it. Data-block faults on loads are consumed by
     * that same load and either recovered or reported on the spot.
     */
    bool dataLoadsOnly = false;
};

/** What the storm delivered (for campaign reporting). */
struct StormStats
{
    std::uint64_t transientFaults = 0;
    std::uint64_t persistentFaults = 0;
    std::uint64_t dataFaults = 0;
    std::uint64_t ctrFaults = 0;
    std::uint64_t macFaults = 0;
};

/** Deterministic environmental fault generator. */
class FaultStorm
{
  public:
    FaultStorm(SecureMemoryController &ctrl, const StormConfig &cfg);

    /**
     * Roll the weather for the access about to be issued to @p addr
     * (a data address) and arm / land any faults it produces.
     */
    void beforeAccess(Addr addr, bool is_store);

    /**
     * Restore the original bytes of every persistently corrupted block
     * that the workload has not since overwritten (operator repair at
     * campaign teardown).
     */
    void repairPersistent();

    const StormStats &stats() const { return stats_; }

  private:
    /** Pick a victim block on @p addr's access path per metaFraction. */
    Addr pickVictim(Addr addr, MemRegion *region);

    SecureMemoryController &ctrl_;
    StormConfig cfg_;
    Rng rng_;
    StormStats stats_;

    const bool hasCtrRegion_;
    const bool hasMacRegion_;

    /** Repair bookkeeping for persistently corrupted blocks. */
    struct Damage
    {
        Block64 pristine;  ///< value before the first corruption
        Block64 corrupted; ///< value right after the last corruption
    };
    std::map<Addr, Damage> damage_;
};

} // namespace secmem

#endif // SECMEM_ATTACK_CHAOS_HH
