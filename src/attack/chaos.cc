#include "attack/chaos.hh"

#include <algorithm>

namespace secmem
{

FaultStorm::FaultStorm(SecureMemoryController &ctrl, const StormConfig &cfg)
    : ctrl_(ctrl),
      cfg_(cfg),
      rng_(cfg.seed ^ 0x5707b1a57ULL),
      hasCtrRegion_(ctrl.config().usesCounterCache()),
      hasMacRegion_(ctrl.config().auth != AuthKind::None)
{
}

Addr
FaultStorm::pickVictim(Addr addr, MemRegion *region)
{
    Addr base = blockBase(addr);
    if (!cfg_.dataLoadsOnly && rng_.chance(cfg_.metaFraction)) {
        const AddressMap &map = ctrl_.map();
        // Counter and MAC region in proportion to availability.
        bool wantCtr = hasCtrRegion_ &&
                       (!hasMacRegion_ || rng_.chance(0.5));
        if (wantCtr) {
            *region = MemRegion::Counter;
            return map.ctrBlockAddrFor(base);
        }
        if (hasMacRegion_) {
            TagLocation loc = map.tagOfLeaf(map.leafIndexOfData(base));
            if (!loc.pinned) {
                *region = MemRegion::Mac;
                return loc.blockAddr;
            }
        }
    }
    *region = MemRegion::Data;
    return base;
}

void
FaultStorm::beforeAccess(Addr addr, bool is_store)
{
    if (cfg_.dataLoadsOnly && is_store)
        return;

    if (cfg_.transientRate > 0.0 && rng_.chance(cfg_.transientRate)) {
        unsigned burst = 1 + static_cast<unsigned>(
                                 rng_.below(std::max(1u, cfg_.maxBurst)));
        for (unsigned i = 0; i < burst; ++i) {
            MemRegion region;
            Addr victim = pickVictim(addr, &region);
            std::size_t off =
                static_cast<std::size_t>(rng_.below(kBlockBytes));
            auto mask = static_cast<std::uint8_t>(1u << rng_.below(8));
            ctrl_.dram().injectTransientXor(victim, off, mask);
            ++stats_.transientFaults;
            switch (region) {
              case MemRegion::Counter:
                ++stats_.ctrFaults;
                break;
              case MemRegion::Mac:
                ++stats_.macFaults;
                break;
              default:
                ++stats_.dataFaults;
            }
        }
    }

    if (cfg_.persistentRate > 0.0 && rng_.chance(cfg_.persistentRate)) {
        MemRegion region;
        Addr victim = pickVictim(addr, &region);
        // Make the corruption visible to the very next fetch: a stale
        // clean cached copy of a metadata block would otherwise mask
        // the DRAM damage indefinitely.
        if (hasCtrRegion_)
            ctrl_.flushCtrCache();
        if (hasMacRegion_)
            ctrl_.flushMacCache();
        damage_.emplace(victim, Damage{ctrl_.dram().snoop(victim), {}});
        std::size_t off = static_cast<std::size_t>(rng_.below(kBlockBytes));
        auto mask = static_cast<std::uint8_t>(1 + rng_.below(255));
        ctrl_.dram().tamperXor(victim, off, mask);
        damage_[victim].corrupted = ctrl_.dram().snoop(victim);
        ++stats_.persistentFaults;
        switch (region) {
          case MemRegion::Counter:
            ++stats_.ctrFaults;
            break;
          case MemRegion::Mac:
            ++stats_.macFaults;
            break;
          default:
            ++stats_.dataFaults;
        }
    }
}

void
FaultStorm::repairPersistent()
{
    for (const auto &kv : damage_) {
        // Only blocks still carrying exactly the corruption we landed
        // are rolled back; a block the workload has since rewritten is
        // already sound, and replaying its pristine value would stage a
        // rollback attack of our own.
        if (ctrl_.dram().snoop(kv.first) == kv.second.corrupted)
            ctrl_.dram().replay(kv.first, kv.second.pristine);
    }
    damage_.clear();
    if (hasCtrRegion_)
        ctrl_.flushCtrCache();
    if (hasMacRegion_)
        ctrl_.flushMacCache();
}

} // namespace secmem
