/**
 * @file
 * Reproduces paper Figure 7: IPC with memory authentication only (no
 * encryption) — GCM vs. SHA-1 at hardware latencies of 80..640 cycles.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig7`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig7", argc, argv);
}
