/**
 * @file
 * Reproduces paper Figure 7: IPC with memory authentication only (no
 * encryption) — GCM vs. SHA-1 at hardware latencies of 80, 160, 320
 * and 640 cycles, Commit-mode authentication, Merkle tree enabled.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main()
{
    std::printf("=== Figure 7: normalized IPC, authentication only ===\n\n");

    std::vector<std::pair<std::string, SecureMemConfig>> schemes = {
        {"GCM", SecureMemConfig::gcmAuthOnly()},
        {"SHA-1(80)", SecureMemConfig::sha1AuthOnly(80)},
        {"SHA-1(160)", SecureMemConfig::sha1AuthOnly(160)},
        {"SHA-1(320)", SecureMemConfig::sha1AuthOnly(320)},
        {"SHA-1(640)", SecureMemConfig::sha1AuthOnly(640)},
    };

    TextTable table({"app", "GCM", "SHA-1(80)", "SHA-1(160)", "SHA-1(320)",
                     "SHA-1(640)"});

    BaselineCache baselines;
    std::map<std::string, double> sum;

    for (const SpecProfile &p : specProfiles()) {
        const RunOutput &base = baselines.get(p);
        std::map<std::string, double> nipc;
        for (auto &[name, cfg] : schemes) {
            RunOutput r = runWorkload(p, cfg);
            nipc[name] = normalizedIpc(r, base);
            sum[name] += nipc[name];
        }
        bool plot = nipc["SHA-1(320)"] <= 0.95;
        if (plot) {
            table.addRow({p.name, fmtDouble(nipc["GCM"]),
                          fmtDouble(nipc["SHA-1(80)"]),
                          fmtDouble(nipc["SHA-1(160)"]),
                          fmtDouble(nipc["SHA-1(320)"]),
                          fmtDouble(nipc["SHA-1(640)"])});
        }
    }

    double n = static_cast<double>(specProfiles().size());
    table.addRow({"avg(21)", fmtDouble(sum["GCM"] / n),
                  fmtDouble(sum["SHA-1(80)"] / n),
                  fmtDouble(sum["SHA-1(160)"] / n),
                  fmtDouble(sum["SHA-1(320)"] / n),
                  fmtDouble(sum["SHA-1(640)"] / n)});
    table.print();

    std::printf(
        "\nExpected shape (paper): GCM matches or beats even an\n"
        "unrealistically fast 80-cycle SHA-1, because its MAC pad\n"
        "generation overlaps the memory fetch; SHA-1 degrades steeply\n"
        "with latency (paper avg: GCM -4%%, SHA-1 -6/-10/-17/-26%%).\n"
        "The one exception is mcf, where GCM's counter-cache misses add\n"
        "bus contention and SHA-1(80) wins.\n");
    return 0;
}
