/**
 * @file
 * google-benchmark microbenchmarks for the software crypto substrate:
 * AES-128, GF(2^128) multiply, GHASH, GCM seal, SHA-1, and the
 * block-level pad/tag helpers used by the secure memory controller.
 * These measure the simulator's own functional speed (host cycles),
 * not the modelled hardware latencies.
 *
 * Two families of benchmarks:
 *
 *  - The statically registered BM_* names are pinned to the portable
 *    backend (plus the *Naive reference kernels from ref/naive.hh), so
 *    the historical names keep meaning the same code no matter which
 *    backend the host would auto-select — scripts/bench_json.py's
 *    speedup gates stay a statement about the portable tier.
 *  - One BM_<op>/be:<name> copy per compiled-in, CPU-supported backend
 *    is registered at runtime; bench_json.py turns those into the
 *    per-backend rows of BENCH_crypto.json.
 *
 * Run with --benchmark_format=json for the machine-readable output the
 * scripts consume.
 */

#include <benchmark/benchmark.h>

#include "crypto/aes.hh"
#include "crypto/backend/backend.hh"
#include "crypto/gcm.hh"
#include "crypto/ghash.hh"
#include "crypto/seed.hh"
#include "crypto/sha1.hh"
#include "ref/naive.hh"

namespace secmem
{
namespace
{

const Block16 kKey{{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab,
                    0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}};

// ---- per-backend measurement loops --------------------------------------

void
aesEncryptLoop(benchmark::State &state, const CryptoBackend &be)
{
    Aes128 aes(be, kKey);
    Block16 block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * kChunkBytes);
    state.SetItemsProcessed(state.iterations());
}

void
aesKeyExpansionLoop(benchmark::State &state, const CryptoBackend &be)
{
    Aes128 aes(be);
    Block16 key = kKey;
    for (auto _ : state) {
        aes.setKey(key.b.data());
        key.b[0] += 1;
        benchmark::DoNotOptimize(aes);
    }
}

/**
 * Steady-state GHASH chunk throughput: the per-subkey state is built
 * once (as in the controller, which keeps it for the whole run) and
 * the accumulator is advanced one 16-byte chunk per iteration.
 * items/s is the chunks/s figure in BENCH_crypto.json.
 */
void
ghashChunkLoop(benchmark::State &state, const CryptoBackend &be)
{
    Aes128 aes(be, kKey);
    Ghash gh(be, aes.encrypt(Block16{}));
    Block16 chunk{};
    for (auto _ : state) {
        gh.update(chunk);
        benchmark::DoNotOptimize(gh);
    }
    state.SetBytesProcessed(state.iterations() * kChunkBytes);
    state.SetItemsProcessed(state.iterations());
}

void
ghashCacheBlockLoop(benchmark::State &state, const CryptoBackend &be)
{
    Aes128 aes(be, kKey);
    Block16 h = aes.encrypt(Block16{});
    Gf128Table table(be, Gf128::fromBlock(h));
    Block64 data{};
    for (auto _ : state) {
        // Borrow the prebuilt table, as gcmBlockTag does per node tag.
        Ghash gh(table);
        for (unsigned c = 0; c < kChunksPerBlock; ++c)
            gh.update(data.chunk(c));
        gh.updateLengths(0, kBlockBytes * 8);
        benchmark::DoNotOptimize(gh.digest());
    }
    state.SetBytesProcessed(state.iterations() * kBlockBytes);
    state.SetItemsProcessed(state.iterations());
}

void
gcmSeal4KLoop(benchmark::State &state, const CryptoBackend &be)
{
    Gcm gcm(be, kKey);
    std::vector<std::uint8_t> pt(4096, 0x42);
    std::uint8_t iv[12] = {};
    for (auto _ : state) {
        GcmSealed sealed = gcm.seal(iv, pt);
        benchmark::DoNotOptimize(sealed);
        iv[0] += 1;
    }
    state.SetBytesProcessed(state.iterations() * pt.size());
}

/** One counter-mode pad + XOR per iteration; items/s is the pads/s
 * figure in BENCH_crypto.json. The key schedule is cached in `aes`, so
 * this measures pad generation alone — no per-pad re-expansion. */
void
ctrCryptLoop(benchmark::State &state, const CryptoBackend &be)
{
    Aes128 aes(be, kKey);
    Block64 data{};
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        data = ctrCrypt(aes, data, 0x1000, ++ctr, 0x5a);
        benchmark::DoNotOptimize(data);
    }
    state.SetBytesProcessed(state.iterations() * kBlockBytes);
    state.SetItemsProcessed(state.iterations());
}

void
gcmBlockTagLoop(benchmark::State &state, const CryptoBackend &be)
{
    Aes128 aes(be, kKey);
    Block16 h = aes.encrypt(Block16{});
    Gf128Table table(be, Gf128::fromBlock(h));
    Block64 ct{};
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        Block16 tag = gcmBlockTag(aes, table, ct, 0x1000, ++ctr, 0xa5);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(state.iterations() * kBlockBytes);
    state.SetItemsProcessed(state.iterations());
}

// ---- historical names: portable tier + naive references -----------------

void
BM_AesEncryptBlock(benchmark::State &state)
{
    aesEncryptLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_AesEncryptBlock);

void
BM_AesEncryptBlockNaive(benchmark::State &state)
{
    ref::AesNaive aes(kKey);
    Block16 block{};
    for (auto _ : state) {
        block = aes.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * kChunkBytes);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AesEncryptBlockNaive);

void
BM_AesKeyExpansion(benchmark::State &state)
{
    aesKeyExpansionLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_AesKeyExpansion);

void
BM_Gf128Mul(benchmark::State &state)
{
    Gf128 x{0x0123456789abcdefull, 0xfedcba9876543210ull};
    Gf128 h{0xaaaaaaaaaaaaaaaaull, 0x5555555555555555ull};
    for (auto _ : state) {
        x = gf128Mul(x, h);
        benchmark::DoNotOptimize(x);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gf128Mul);

void
BM_Gf128MulNaive(benchmark::State &state)
{
    Gf128 x{0x0123456789abcdefull, 0xfedcba9876543210ull};
    Gf128 h{0xaaaaaaaaaaaaaaaaull, 0x5555555555555555ull};
    for (auto _ : state) {
        x = ref::gf128MulNaive(x, h);
        benchmark::DoNotOptimize(x);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Gf128MulNaive);

void
BM_GhashChunkUpdate(benchmark::State &state)
{
    ghashChunkLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_GhashChunkUpdate);

/** The same per-chunk loop on the bit-serial multiply (the baseline
 * for the table-driven speedup ratio). */
void
BM_GhashChunkUpdateNaive(benchmark::State &state)
{
    Aes128 aes(kKey);
    Gf128 h = Gf128::fromBlock(aes.encrypt(Block16{}));
    Gf128 y{0, 0};
    Block16 chunk{};
    for (auto _ : state) {
        y = ref::gf128MulNaive(y ^ Gf128::fromBlock(chunk), h);
        benchmark::DoNotOptimize(y);
    }
    state.SetBytesProcessed(state.iterations() * kChunkBytes);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GhashChunkUpdateNaive);

void
BM_GhashCacheBlock(benchmark::State &state)
{
    ghashCacheBlockLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_GhashCacheBlock);

void
BM_GcmSeal4K(benchmark::State &state)
{
    gcmSeal4KLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_GcmSeal4K);

void
BM_Sha1CacheBlock(benchmark::State &state)
{
    Block64 data{};
    for (auto _ : state) {
        auto d = Sha1::digestOf(data.b.data(), data.b.size());
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * kBlockBytes);
}
BENCHMARK(BM_Sha1CacheBlock);

void
BM_CtrCryptBlock(benchmark::State &state)
{
    ctrCryptLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_CtrCryptBlock);

void
BM_GcmBlockTag(benchmark::State &state)
{
    gcmBlockTagLoop(state, portableCryptoBackend());
}
BENCHMARK(BM_GcmBlockTag);

void
BM_Sha1BlockTag(benchmark::State &state)
{
    Block64 ct{};
    std::uint64_t ctr = 0;
    for (auto _ : state) {
        Block16 tag = sha1BlockTag(kKey, ct, 0x1000, ++ctr);
        benchmark::DoNotOptimize(tag);
    }
    state.SetBytesProcessed(state.iterations() * kBlockBytes);
}
BENCHMARK(BM_Sha1BlockTag);

// ---- per-backend copies -------------------------------------------------

/**
 * Register one copy of each backend-sensitive benchmark per compiled-in,
 * CPU-supported backend, named BM_<op>/be:<name>. bench_json.py groups
 * these by the be: suffix into the per-backend rows of
 * BENCH_crypto.json.
 */
void
registerBackendBenchmarks()
{
    struct Op
    {
        const char *name;
        void (*loop)(benchmark::State &, const CryptoBackend &);
    };
    static constexpr Op kOps[] = {
        {"BM_AesEncryptBlock", aesEncryptLoop},
        {"BM_AesKeyExpansion", aesKeyExpansionLoop},
        {"BM_GhashChunkUpdate", ghashChunkLoop},
        {"BM_GhashCacheBlock", ghashCacheBlockLoop},
        {"BM_GcmSeal4K", gcmSeal4KLoop},
        {"BM_CtrCryptBlock", ctrCryptLoop},
        {"BM_GcmBlockTag", gcmBlockTagLoop},
    };
    for (const CryptoBackend *be : cryptoBackends()) {
        if (!be->available())
            continue;
        for (const Op &op : kOps) {
            std::string name = std::string(op.name) + "/be:" + be->name();
            auto loop = op.loop;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [loop, be](benchmark::State &state) { loop(state, *be); });
        }
    }
}

} // namespace
} // namespace secmem

int
main(int argc, char **argv)
{
    secmem::registerBackendBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
