/**
 * @file
 * Reproduces paper Table 2: counter growth rates and estimated time to
 * counter overflow for monolithic counters of different widths and a
 * global 32-bit counter.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * table2`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("table2", argc, argv);
}
