/**
 * @file
 * Reproduces paper Table 2: counter growth rates and estimated time to
 * counter overflow for monolithic counters of different widths and a
 * global 32-bit counter.
 *
 * As in the paper, growth rates are measured per simulated second
 * (fastest-growing block counter = max write-backs of any one block /
 * simulated time; global counter = total write-back rate), and the
 * time to overflow of a W-bit counter is 2^W / rate, reported in the
 * paper's units per column.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

namespace
{

std::string
humanTime(double seconds)
{
    if (seconds < 120)
        return fmtDouble(seconds, 2) + " s";
    if (seconds < 2 * 3600)
        return fmtDouble(seconds / 60, 1) + " min";
    if (seconds < 2 * 86400)
        return fmtDouble(seconds / 3600, 1) + " h";
    if (seconds < 2 * 31557600.0)
        return fmtDouble(seconds / 86400, 1) + " days";
    if (seconds < 2000 * 31557600.0)
        return fmtDouble(seconds / 31557600.0, 1) + " years";
    return fmtDouble(seconds / 31557600.0 / 1000, 1) + " millennia";
}

} // namespace

int
main()
{
    std::printf("=== Table 2: counter growth rate and estimated time to "
                "overflow ===\n\n");

    struct Row
    {
        std::string app;
        double growth[4]; // Mono8b/16b/32b/64b measured growth per second
        double global;    // global counter (total write-backs) per second
    };

    const unsigned widths[4] = {8, 16, 32, 64};
    std::vector<Row> rows;

    for (const SpecProfile &p : specProfiles()) {
        Row row;
        row.app = p.name;
        for (int i = 0; i < 4; ++i) {
            RunOutput r = runWorkload(p, SecureMemConfig::mono(widths[i]));
            row.growth[i] = r.counterGrowthPerSec;
            if (i == 2)
                row.global = r.writebackRatePerSec;
        }
        rows.push_back(row);
    }

    // The paper lists the five fastest-growing applications + average.
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.growth[0] > b.growth[0];
    });

    TextTable growth({"app", "Mono8b/s", "Mono16b/s", "Mono32b/s",
                      "Mono64b/s", "Global32b/s"});
    TextTable overflow({"app", "Mono8b", "Mono16b", "Mono32b", "Mono64b",
                        "Global32b"});

    Row avg{"avg(21)", {0, 0, 0, 0}, 0};
    for (const Row &r : rows) {
        for (int i = 0; i < 4; ++i)
            avg.growth[i] += r.growth[i] / rows.size();
        avg.global += r.global / rows.size();
    }

    auto emit = [&](const Row &r) {
        growth.addRow({r.app, fmtDouble(r.growth[0], 0),
                       fmtDouble(r.growth[1], 0), fmtDouble(r.growth[2], 0),
                       fmtDouble(r.growth[3], 0), fmtDouble(r.global, 0)});
        std::vector<std::string> times = {r.app};
        for (int i = 0; i < 4; ++i) {
            double rate = std::max(r.growth[i], 1e-9);
            times.push_back(humanTime(std::pow(2.0, widths[i]) / rate));
        }
        times.push_back(
            humanTime(std::pow(2.0, 32) / std::max(r.global, 1e-9)));
        overflow.addRow(times);
    };

    for (std::size_t i = 0; i < 5 && i < rows.size(); ++i)
        emit(rows[i]);
    emit(avg);

    std::printf("-- Counter growth rate (per simulated second) --\n");
    growth.print();
    std::printf("\n-- Estimated time to counter overflow --\n");
    overflow.print();

    std::printf(
        "\nExpected shape (paper): 8-bit counters overflow in under a\n"
        "second, 16-bit in minutes, 32-bit in days, 64-bit never within\n"
        "the machine's lifetime; the on-chip global 32-bit counter\n"
        "overflows in minutes because it advances with every write-back.\n"
        "Absolute rates run above the paper's (synthetic streams compress\n"
        "compute phases; see EXPERIMENTS.md) but the ordering and the\n"
        "orders-of-magnitude gaps between widths are preserved.\n");
    return 0;
}
