/**
 * @file
 * Reproduces paper Figure 9: normalized IPC with combined encryption
 * AND authentication — the paper's headline result. Split+GCM (this
 * paper, ~5% average overhead) vs Mono+GCM, Split+SHA, Mono+SHA
 * (~20%) and XOM+SHA (direct AES + SHA-1).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main()
{
    std::printf("=== Figure 9: combined encryption + authentication ===\n\n");

    std::vector<std::pair<std::string, SecureMemConfig>> schemes = {
        {"Split+GCM", SecureMemConfig::splitGcm()},
        {"Mono+GCM", SecureMemConfig::monoGcm()},
        {"Split+SHA", SecureMemConfig::splitSha()},
        {"Mono+SHA", SecureMemConfig::monoSha()},
        {"XOM+SHA", SecureMemConfig::xomSha()},
    };

    TextTable table({"app", "Split+GCM", "Mono+GCM", "Split+SHA",
                     "Mono+SHA", "XOM+SHA"});

    BaselineCache baselines;
    std::map<std::string, double> sum;

    for (const SpecProfile &p : specProfiles()) {
        const RunOutput &base = baselines.get(p);
        std::map<std::string, double> nipc;
        for (auto &[name, cfg] : schemes) {
            RunOutput r = runWorkload(p, cfg);
            nipc[name] = normalizedIpc(r, base);
            sum[name] += nipc[name];
        }
        bool plot = nipc["Mono+SHA"] <= 0.95;
        if (plot) {
            table.addRow({p.name, fmtDouble(nipc["Split+GCM"]),
                          fmtDouble(nipc["Mono+GCM"]),
                          fmtDouble(nipc["Split+SHA"]),
                          fmtDouble(nipc["Mono+SHA"]),
                          fmtDouble(nipc["XOM+SHA"])});
        }
    }

    double n = static_cast<double>(specProfiles().size());
    table.addRow({"avg(21)", fmtDouble(sum["Split+GCM"] / n),
                  fmtDouble(sum["Mono+GCM"] / n),
                  fmtDouble(sum["Split+SHA"] / n),
                  fmtDouble(sum["Mono+SHA"] / n),
                  fmtDouble(sum["XOM+SHA"] / n)});
    table.print();

    std::printf(
        "\nExpected shape (paper): Split+GCM best (paper: -5%% average),\n"
        "Mono+GCM next (-8%%; split counters roughly halve the combined\n"
        "overhead), the SHA-1 variants far behind (~-20%%), XOM+SHA\n"
        "worst (serial AES on top of SHA-1).\n");
    return 0;
}
