/**
 * @file
 * Reproduces paper Figure 9: normalized IPC with combined encryption
 * AND authentication — the paper's headline result.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig9`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig9", argc, argv);
}
