/**
 * @file
 * Reproduces paper Figure 5: sensitivity of split vs. monolithic
 * (64-bit) counter-mode encryption to counter-cache size, 16..128 KB.
 * The paper's headline: split@16KB outperforms mono64@128KB because a
 * split counter block covers 8x the data for the same cache space.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main()
{
    if (!std::getenv("SECMEM_SIM_INSTRS"))
        setenv("SECMEM_SIM_INSTRS", "400000", 1);
    if (!std::getenv("SECMEM_WARMUP_INSTRS"))
        setenv("SECMEM_WARMUP_INSTRS", "400000", 1);
    std::printf("=== Figure 5: sensitivity to counter cache size ===\n\n");

    const std::size_t sizes[] = {16 << 10, 32 << 10, 64 << 10, 128 << 10};

    TextTable table(
        {"scheme", "16KB", "32KB", "64KB", "128KB", "(avg normalized IPC)"});

    BaselineCache baselines;

    for (bool split : {true, false}) {
        std::vector<std::string> row = {split ? "split" : "mono64"};
        for (std::size_t size : sizes) {
            double sum = 0;
            for (const SpecProfile &p : specProfiles()) {
                SecureMemConfig cfg = split ? SecureMemConfig::split()
                                            : SecureMemConfig::mono(64);
                cfg.ctrCacheBytes = size;
                RunOutput r = runWorkload(p, cfg);
                sum += normalizedIpc(r, baselines.get(p));
            }
            row.push_back(fmtDouble(sum / specProfiles().size()));
        }
        row.push_back("");
        table.addRow(row);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): the split row is flat and near 1.0 even\n"
        "at 16KB; the mono64 row climbs with cache size but stays below\n"
        "split-with-16KB even at 128KB (same counters on-chip, 8x the\n"
        "fetch bandwidth).\n");
    return 0;
}
