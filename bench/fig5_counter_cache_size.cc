/**
 * @file
 * Reproduces paper Figure 5: sensitivity of split vs. monolithic
 * (64-bit) counter-mode encryption to counter-cache size, 16..128 KB.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig5`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig5", argc, argv);
}
