/**
 * @file
 * Reproduces the paper's in-text re-encryption results (Sections 4.2
 * and 6.1) on a deliberately write-hot workload:
 *
 *  - fraction of a page's blocks already on-chip when re-encryption
 *    triggers (paper: ~48%, which halves re-encryption work);
 *  - average page re-encryption time (paper: 5717 cycles, overlapped
 *    with execution via RSRs);
 *  - RSR concurrency (paper: at most ~3 in flight; 8 RSRs suffice);
 *  - split vs. monolithic re-encryption work: blocks re-encrypted per
 *    page re-encryption vs. the whole memory footprint a monolithic
 *    freeze would rewrite (paper: split does ~0.3% of Mono8b's work);
 *  - RSR ablation: IPC with 8 vs. 1 RSRs and the stall statistics.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main()
{
    std::printf("=== Re-encryption ablation (paper Sections 4.2 / 6.1) "
                "===\n\n");

    // Reaching a minor-counter overflow needs 128 write-backs of one
    // block; at default run lengths with the full-size hierarchy the
    // hot set never cycles that often. This ablation therefore runs
    // longer (unless the user overrides) on a scaled-down hierarchy
    // with a single-page hot set — the mechanism under test is
    // identical, only the aging is accelerated.
    if (!std::getenv("SECMEM_SIM_INSTRS"))
        setenv("SECMEM_SIM_INSTRS", "4500000", 1);
    if (!std::getenv("SECMEM_WARMUP_INSTRS"))
        setenv("SECMEM_WARMUP_INSTRS", "1000000", 1);
    SpecProfile hot = writeHotProfile();
    hot.hotKB = 8; // two encryption pages
    SystemParams sys;
    sys.l1Bytes = 4 << 10; // half the hot set stays on-chip
    sys.l2Bytes = 64 << 10;

    RunOutput split = runWorkload(hot, SecureMemConfig::split(), {}, sys);
    RunOutput mono8 = runWorkload(hot, SecureMemConfig::mono(8), {}, sys);
    RunOutput base = runWorkload(hot, SecureMemConfig::baseline(), {}, sys);

    TextTable t({"metric", "value", "paper"});
    t.addRow({"page re-encryptions", std::to_string(split.pageReencs),
              "(workload-dependent)"});
    t.addRow({"blocks on-chip at trigger",
              fmtPercent(split.reencOnchipFraction), "~48%"});
    t.addRow({"avg page re-encryption cycles",
              fmtDouble(split.reencAvgCycles, 0), "5717"});
    t.addRow({"avg concurrent re-encryptions",
              fmtDouble(split.reencAvgConcurrent, 2), "<= 3"});
    t.addRow({"mono8b whole-memory freezes", std::to_string(mono8.freezes),
              "(counted, assumed free)"});

    // Re-encryption work comparison: split re-encrypts at most one
    // 64-block page per minor overflow; a monolithic freeze rewrites
    // the whole touched footprint.
    double split_blocks =
        static_cast<double>(split.pageReencs) * kBlocksPerPage;
    double mono_blocks = static_cast<double>(mono8.freezes) *
                         static_cast<double>(hot.workingSetKB) * 1024.0 /
                         kBlockBytes;
    if (mono_blocks > 0) {
        t.addRow({"split/mono re-encryption work",
                  fmtPercent(split_blocks / mono_blocks, 2), "~0.3%"});
    }
    t.addRow({"split IPC vs baseline",
              fmtDouble(split.ipc / base.ipc), "~1.0 (hidden by RSRs)"});
    t.print();

    // ---- RSR count ablation ---------------------------------------------
    std::printf("\n-- RSR ablation --\n");
    TextTable r({"RSRs", "normalized IPC", "rsr stalls", "page conflicts"});
    for (unsigned rsrs : {1u, 2u, 8u}) {
        SecureMemConfig cfg = SecureMemConfig::split();
        cfg.numRsrs = rsrs;
        RunOutput out = runWorkload(hot, cfg, {}, sys);
        r.addRow({std::to_string(rsrs), fmtDouble(out.ipc / base.ipc),
                  std::to_string(out.reencRsrStalls),
                  std::to_string(out.reencPageConflicts)});
    }
    r.print();

    std::printf(
        "\nExpected shape (paper): with enough RSRs, page re-encryption\n"
        "overlaps execution almost completely; roughly half the page is\n"
        "already on-chip and is re-encrypted lazily via dirty marking;\n"
        "split counters do orders of magnitude less re-encryption work\n"
        "than 8-bit monolithic counters.\n");
    return 0;
}
