/**
 * @file
 * Reproduces the paper's in-text re-encryption results (Sections 4.2
 * and 6.1) on a deliberately write-hot workload.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * ablation`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("ablation", argc, argv);
}
