/**
 * @file
 * Reproduces paper Figure 1: the latency anatomy of an L2 cache miss
 * under direct encryption and counter mode (ctr-cache hit/miss), plus
 * the GCM vs SHA-1 authentication timeline — measured on the actual
 * controller rather than drawn.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig1`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig1", argc, argv);
}
