/**
 * @file
 * Reproduces paper Figure 1: the latency anatomy of an L2 cache miss
 * under (a) direct encryption, (b) counter mode with a counter-cache
 * hit, and (c) counter mode with a counter-cache miss — measured on
 * the actual controller rather than drawn.
 *
 * Also prints the GCM vs SHA-1 authentication timeline (the paper's
 * Section 3 argument): the GCM pad overlaps the fetch while SHA-1
 * starts hashing only after the data arrives.
 */

#include <cstdio>

#include "core/controller.hh"

using namespace secmem;

namespace
{

SecureMemConfig
small(SecureMemConfig cfg)
{
    cfg.memoryBytes = 32 << 20;
    return cfg;
}

/** One L2-miss latency, with the counter cache warm or cold. */
AccessTiming
missLatency(SecureMemConfig cfg, bool warm_ctr, Tick *start)
{
    SecureMemoryController ctrl(small(cfg));
    Tick t = ctrl.writeBlock(0x4000, Block64{}, 1);
    if (!warm_ctr && cfg.usesCounterCache())
        ctrl.evictCounterBlock(0x4000);
    // Quiesce resource models, then issue one clean miss.
    Tick now = t + 100'000;
    *start = now;
    Block64 out;
    return ctrl.readBlock(0x4000, now, &out);
}

void
row(const char *label, Tick start, const AccessTiming &at)
{
    std::printf("%-34s data +%4llu cycles   auth +%4llu cycles\n", label,
                static_cast<unsigned long long>(at.dataReady - start),
                static_cast<unsigned long long>(at.authDone - start));
}

} // namespace

int
main()
{
    std::printf("=== Figure 1: anatomy of an L2 miss (measured) ===\n\n");
    Tick s;

    AccessTiming plain = missLatency(SecureMemConfig::baseline(), true, &s);
    row("no protection", s, plain);

    AccessTiming direct = missLatency(SecureMemConfig::direct(), true, &s);
    row("(a) direct encryption", s, direct);

    AccessTiming hit = missLatency(SecureMemConfig::split(), true, &s);
    row("(b) counter mode, ctr-cache hit", s, hit);

    AccessTiming miss = missLatency(SecureMemConfig::split(), false, &s);
    row("(c) counter mode, ctr-cache miss", s, miss);

    std::printf("\n=== Section 3: authentication timeline ===\n\n");

    AccessTiming gcm = missLatency(SecureMemConfig::gcmAuthOnly(), true, &s);
    row("GCM (pad overlaps fetch)", s, gcm);

    for (Tick lat : {Tick(80), Tick(320)}) {
        AccessTiming sha =
            missLatency(SecureMemConfig::sha1AuthOnly(lat), true, &s);
        char label[64];
        std::snprintf(label, sizeof(label),
                      "SHA-1 %llu-cycle (starts after data)",
                      static_cast<unsigned long long>(lat));
        row(label, s, sha);
    }

    std::printf(
        "\nExpected shape (paper Fig 1 / Sec 3): counter mode with a\n"
        "counter-cache hit adds almost nothing over the raw miss — the\n"
        "pad is ready before the data. Direct encryption adds the AES\n"
        "latency serially; a counter-cache miss adds a partially\n"
        "overlapped second memory access. GCM authentication completes a\n"
        "few cycles after the data arrives; SHA-1 adds its full hash\n"
        "latency on top.\n");
    return 0;
}
