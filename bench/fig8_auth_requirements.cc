/**
 * @file
 * Reproduces paper Figure 8: IPC of GCM vs SHA-1 (320-cycle)
 * authentication under the three authentication requirements — Lazy,
 * Commit, Safe — and with parallel vs. sequential authentication of
 * Merkle-tree levels.
 */

#include <cstdio>
#include <cstdlib>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

namespace
{

double
averageNipc(SecureMemConfig cfg, BaselineCache &baselines)
{
    double sum = 0;
    for (const SpecProfile &p : specProfiles())
        sum += normalizedIpc(runWorkload(p, cfg), baselines.get(p));
    return sum / specProfiles().size();
}

} // namespace

int
main()
{
    if (!std::getenv("SECMEM_SIM_INSTRS"))
        setenv("SECMEM_SIM_INSTRS", "400000", 1);
    if (!std::getenv("SECMEM_WARMUP_INSTRS"))
        setenv("SECMEM_WARMUP_INSTRS", "400000", 1);
    std::printf("=== Figure 8: authentication requirements and parallel "
                "tree authentication ===\n\n");

    BaselineCache baselines;

    TextTable table({"configuration", "GCM", "SHA-1(320)"});

    for (AuthMode mode :
         {AuthMode::Lazy, AuthMode::Commit, AuthMode::Safe}) {
        SecureMemConfig g = SecureMemConfig::gcmAuthOnly();
        SecureMemConfig s = SecureMemConfig::sha1AuthOnly(320);
        g.authMode = mode;
        s.authMode = mode;
        table.addRow({toString(mode), fmtDouble(averageNipc(g, baselines)),
                      fmtDouble(averageNipc(s, baselines))});
    }

    for (bool parallel : {true, false}) {
        SecureMemConfig g = SecureMemConfig::gcmAuthOnly();
        SecureMemConfig s = SecureMemConfig::sha1AuthOnly(320);
        g.treeParallel = parallel;
        s.treeParallel = parallel;
        table.addRow({parallel ? "parallel tree auth"
                               : "sequential tree auth",
                      fmtDouble(averageNipc(g, baselines)),
                      fmtDouble(averageNipc(s, baselines))});
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): under Lazy, authentication latency is\n"
        "irrelevant and GCM is slightly *worse* than SHA-1 (counter\n"
        "fetch bus traffic). Under Commit and especially Safe, GCM's\n"
        "overlapped pads win decisively (paper Safe: -6%% GCM vs -24%%\n"
        "SHA-1). Parallel tree authentication buys ~3%% (GCM) / ~2%%\n"
        "(SHA-1) over sequential.\n");
    return 0;
}
