/**
 * @file
 * Reproduces paper Figure 8: IPC of GCM vs SHA-1 (320-cycle)
 * authentication under the three authentication requirements — Lazy,
 * Commit, Safe — and with parallel vs. sequential tree authentication.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig8`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig8", argc, argv);
}
