/**
 * @file
 * Unified evaluation CLI: runs any subset of the paper's figure/table
 * reproductions through the parallel experiment engine.
 *
 *     secmem-bench --all --jobs 8 --out results/
 *     secmem-bench --figure fig4 --figure fig9 --filter mcf
 *     secmem-bench --figure fig4 --smoke          # CI short sweep
 *
 * Jobs are cached in a result store (default: results/store/), so a
 * second invocation — or an interrupted sweep rerun — simulates
 * nothing it already has. Parallel (--jobs N) and serial (--jobs 1)
 * runs produce bit-identical metrics; every job owns its RNG seed and
 * simulated system.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::benchMain(argc, argv);
}
