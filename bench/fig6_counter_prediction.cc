/**
 * @file
 * Reproduces paper Figure 6: split counters vs. the counter prediction
 * + pad precomputation scheme of Shi et al. [16] — panel (a) sweeps
 * through the engine, panel (b)'s across-execution trend runs its two
 * live systems sequentially (the divergence over time is the point).
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig6`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig6", argc, argv);
}
