/**
 * @file
 * Reproduces paper Figure 6: split counters vs. the counter prediction
 * + pad precomputation scheme of Shi et al. [16].
 *
 * Panel (a): counter-cache hit/half-miss rate vs. prediction rate;
 * timely pad generation (split, pred with one engine, pred with two);
 * average normalized IPC of the three configurations.
 *
 * Panel (b): trend of the prediction rate vs. the counter-cache hit
 * rate across execution, on a write-back-churn workload (see
 * EXPERIMENTS.md for the horizon discussion).
 */

#include <cstdio>

#include "core/system.hh"
#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main()
{
    std::printf("=== Figure 6(a): split counters vs counter prediction ===\n\n");

    BaselineCache baselines;
    double cc_hit = 0, cc_half = 0, pred_rate = 0;
    double timely_split = 0, timely_p1 = 0, timely_p2 = 0;
    double ipc_split = 0, ipc_p1 = 0, ipc_p2 = 0;

    const auto &profiles = specProfiles();
    for (const SpecProfile &p : profiles) {
        const RunOutput &base = baselines.get(p);
        RunOutput s = runWorkload(p, SecureMemConfig::split());
        RunOutput p1 = runWorkload(p, SecureMemConfig::pred(1));
        RunOutput p2 = runWorkload(p, SecureMemConfig::pred(2));
        cc_hit += s.ctrHitRate;
        cc_half += s.ctrHalfMissRate;
        pred_rate += p1.predRate;
        timely_split += s.timelyPadRate;
        timely_p1 += p1.timelyPadRate;
        timely_p2 += p2.timelyPadRate;
        ipc_split += normalizedIpc(s, base);
        ipc_p1 += normalizedIpc(p1, base);
        ipc_p2 += normalizedIpc(p2, base);
    }
    double n = static_cast<double>(profiles.size());

    TextTable a({"metric", "Split", "Pred", "Pred(2Eng)"});
    a.addRow({"ctr cache hit", fmtPercent(cc_hit / n), "-", "-"});
    a.addRow({"ctr cache hit+halfmiss",
              fmtPercent((cc_hit + cc_half) / n), "-", "-"});
    a.addRow({"prediction rate", "-", fmtPercent(pred_rate / n),
              fmtPercent(pred_rate / n)});
    a.addRow({"timely pads", fmtPercent(timely_split / n),
              fmtPercent(timely_p1 / n), fmtPercent(timely_p2 / n)});
    a.addRow({"normalized IPC", fmtDouble(ipc_split / n),
              fmtDouble(ipc_p1 / n), fmtDouble(ipc_p2 / n)});
    a.print();

    std::printf(
        "\nExpected shape (paper): prediction rate slightly above the\n"
        "counter-cache hit rate; timely pads ~61%% with one AES engine\n"
        "(5x pad bandwidth), ~96%% with two; Pred(2Eng) IPC roughly ties\n"
        "Split (its 64-bit in-memory counters cost bandwidth).\n");

    // ---- panel (b): trend across execution ------------------------------
    std::printf("\n=== Figure 6(b): prediction rate vs counter-cache hit "
                "rate across execution ===\n\n");

    // A write-back-churn variant of twolf: the dirty working set
    // slightly exceeds the L2 so written blocks cycle to memory and
    // back, letting per-block counters diverge (paper horizon: 5B
    // instructions; ours is scaled down).
    SpecProfile churn = profileByName("twolf");
    churn.warmKB = 1536;
    churn.streamFraction = 0.02;
    churn.storeFraction = 0.35;
    churn.hotStoreBoost = 1.0;

    SecureSystem pred_sys(SecureMemConfig::pred(1));
    SecureSystem split_sys(SecureMemConfig::split());
    SpecWorkload pred_gen(churn), split_gen(churn);

    TextTable b({"segment", "pred rate", "ctr cache hit"});
    Tick tp = 0, ts = 0;
    std::uint64_t ph = 0, pt = 0, sh = 0, sa = 0;
    const std::uint64_t seg = simInstructions();
    for (int i = 0; i < 8; ++i) {
        tp = pred_sys.run(pred_gen, 0, seg, {}, tp).finalTick;
        ts = split_sys.run(split_gen, 0, seg, {}, ts).finalTick;
        auto &pc = pred_sys.controller().stats();
        std::uint64_t h = pc.counterValue("pred_hits");
        std::uint64_t t = pc.counterValue("pred_total");
        auto &sc = split_sys.controller().ctrCache().stats();
        std::uint64_t hh = sc.counterValue("hits");
        std::uint64_t aa = sc.counterValue("accesses");
        double pr = t > pt ? double(h - ph) / double(t - pt) : 1.0;
        double cr = aa > sa ? double(hh - sh) / double(aa - sa) : 1.0;
        b.addRow({std::to_string(i + 1), fmtPercent(pr), fmtPercent(cr)});
        ph = h;
        pt = t;
        sh = hh;
        sa = aa;
    }
    b.print();

    std::printf(
        "\nExpected shape (paper): the prediction rate starts near 100%%\n"
        "(all counters equal) and decays as counters diverge; the\n"
        "counter-cache hit rate stays flat.\n");
    return 0;
}
