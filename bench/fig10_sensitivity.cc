/**
 * @file
 * Reproduces paper Figure 10: sensitivity of the combined schemes to
 * the authentication requirement (lazy/commit/safe), parallel vs.
 * sequential tree authentication, and the MAC size (128/64/32 bits).
 * One parameter varies per group; the arrow configuration in the paper
 * (commit, parallel, 64-bit MACs) is the default elsewhere.
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

namespace
{

std::vector<std::pair<std::string, SecureMemConfig>>
combinedSchemes()
{
    return {
        {"Split+GCM", SecureMemConfig::splitGcm()},
        {"Mono+GCM", SecureMemConfig::monoGcm()},
        {"Split+SHA", SecureMemConfig::splitSha()},
        {"Mono+SHA", SecureMemConfig::monoSha()},
        {"XOM+SHA", SecureMemConfig::xomSha()},
    };
}

double
averageNipc(SecureMemConfig cfg, BaselineCache &baselines)
{
    double sum = 0;
    for (const SpecProfile &p : specProfiles())
        sum += normalizedIpc(runWorkload(p, cfg), baselines.get(p));
    return sum / specProfiles().size();
}

} // namespace

int
main()
{
    // This figure sweeps 6 variants x 5 schemes x 21 workloads; run a
    // lighter default length unless the user pinned one.
    if (!std::getenv("SECMEM_SIM_INSTRS"))
        setenv("SECMEM_SIM_INSTRS", "400000", 1);
    if (!std::getenv("SECMEM_WARMUP_INSTRS"))
        setenv("SECMEM_WARMUP_INSTRS", "400000", 1);

    std::printf("=== Figure 10: combined-scheme sensitivity ===\n");
    std::printf("(defaults elsewhere: commit, parallel, 64-bit MACs)\n\n");

    BaselineCache baselines;

    struct Variant
    {
        std::string label;
        std::function<void(SecureMemConfig &)> tweak;
    };
    std::vector<Variant> variants = {
        {"lazy", [](SecureMemConfig &c) { c.authMode = AuthMode::Lazy; }},
        {"commit",
         [](SecureMemConfig &c) { c.authMode = AuthMode::Commit; }},
        {"safe", [](SecureMemConfig &c) { c.authMode = AuthMode::Safe; }},
        {"parallel", [](SecureMemConfig &c) { c.treeParallel = true; }},
        {"nonparallel",
         [](SecureMemConfig &c) { c.treeParallel = false; }},
        {"128b MAC", [](SecureMemConfig &c) { c.macBits = 128; }},
        {"64b MAC", [](SecureMemConfig &c) { c.macBits = 64; }},
        {"32b MAC", [](SecureMemConfig &c) { c.macBits = 32; }},
    };

    TextTable table({"variant", "Split+GCM", "Mono+GCM", "Split+SHA",
                     "Mono+SHA", "XOM+SHA"});

    // The commit / parallel / 64-bit rows are all the default
    // configuration; compute each distinct config once.
    std::map<std::string, double> memo;
    for (const Variant &v : variants) {
        std::vector<std::string> row = {v.label};
        for (auto &[name, base_cfg] : combinedSchemes()) {
            SecureMemConfig cfg = base_cfg;
            v.tweak(cfg);
            std::string key = name + "/" + toString(cfg.authMode) +
                              (cfg.treeParallel ? "/par/" : "/seq/") +
                              std::to_string(cfg.macBits);
            auto it = memo.find(key);
            if (it == memo.end())
                it = memo.emplace(key, averageNipc(cfg, baselines)).first;
            row.push_back(fmtDouble(it->second));
        }
        table.addRow(row);
    }
    table.print();

    std::printf(
        "\nExpected shape (paper): the scheme ordering (Split+GCM first,\n"
        "XOM+SHA last) holds in every row; lazy narrows the gap, safe\n"
        "widens it; larger MACs cost more (lower tree arity = more\n"
        "levels); sequential tree authentication costs a few percent.\n");
    return 0;
}
