/**
 * @file
 * Reproduces paper Figure 10: sensitivity of the combined schemes to
 * the authentication requirement, parallel vs. sequential tree
 * authentication, and the MAC size.
 *
 * Thin wrapper over src/exp/figures.cc; see `secmem-bench --figure
 * fig10`.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig10", argc, argv);
}
