/**
 * @file
 * Reproduces paper Figure 4: normalized IPC of memory encryption
 * schemes with no authentication — split counters vs. monolithic
 * 8/16/32/64-bit counters vs. direct AES encryption.
 *
 * The paper plots individual bars for applications with >= 5% direct-
 * encryption penalty and an average over all 21; freeze counts
 * (whole-memory re-encryptions) are printed above the Mono8b bars.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main()
{
    std::printf("=== Figure 4: normalized IPC, memory encryption only ===\n");
    std::printf("(%llu instructions per run after %llu warm-up; "
                "SECMEM_SIM_INSTRS overrides)\n\n",
                static_cast<unsigned long long>(simInstructions()),
                static_cast<unsigned long long>(warmupInstructions()));

    std::vector<std::pair<std::string, SecureMemConfig>> schemes = {
        {"Split", SecureMemConfig::split()},
        {"Mono8b", SecureMemConfig::mono(8)},
        {"Mono16b", SecureMemConfig::mono(16)},
        {"Mono32b", SecureMemConfig::mono(32)},
        {"Mono64b", SecureMemConfig::mono(64)},
        {"Direct", SecureMemConfig::direct()},
    };

    TextTable table({"app", "Split", "Mono8b", "Mono16b", "Mono32b",
                     "Mono64b", "Direct", "freezes(8b)"});

    BaselineCache baselines;
    std::map<std::string, double> sum;
    std::uint64_t total_freezes = 0;

    for (const SpecProfile &p : specProfiles()) {
        const RunOutput &base = baselines.get(p);
        std::map<std::string, double> nipc;
        std::uint64_t freezes8 = 0;
        for (auto &[name, cfg] : schemes) {
            RunOutput r = runWorkload(p, cfg);
            nipc[name] = normalizedIpc(r, base);
            sum[name] += nipc[name];
            if (name == "Mono8b")
                freezes8 = r.freezes;
        }
        total_freezes += freezes8;
        bool plot = nipc["Direct"] <= 0.95; // paper's >=5% penalty filter
        if (plot) {
            table.addRow({p.name, fmtDouble(nipc["Split"]),
                          fmtDouble(nipc["Mono8b"]),
                          fmtDouble(nipc["Mono16b"]),
                          fmtDouble(nipc["Mono32b"]),
                          fmtDouble(nipc["Mono64b"]),
                          fmtDouble(nipc["Direct"]),
                          std::to_string(freezes8)});
        }
    }

    double n = static_cast<double>(specProfiles().size());
    table.addRow({"avg(21)", fmtDouble(sum["Split"] / n),
                  fmtDouble(sum["Mono8b"] / n),
                  fmtDouble(sum["Mono16b"] / n),
                  fmtDouble(sum["Mono32b"] / n),
                  fmtDouble(sum["Mono64b"] / n),
                  fmtDouble(sum["Direct"] / n),
                  std::to_string(total_freezes)});
    table.print();

    std::printf(
        "\nExpected shape (paper): Split tracks Mono8b (whose freezes the\n"
        "paper treats as free); larger monolithic counters are\n"
        "progressively worse; Direct is worst. Freeze counts are per-run\n"
        "observations; Table 2 extrapolates real-time overflow rates.\n");
    return 0;
}
