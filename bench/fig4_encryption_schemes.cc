/**
 * @file
 * Reproduces paper Figure 4: normalized IPC of memory encryption
 * schemes with no authentication — split counters vs. monolithic
 * 8/16/32/64-bit counters vs. direct AES encryption.
 *
 * Thin wrapper over the src/exp/ experiment engine; the sweep spec and
 * rendering live in src/exp/figures.cc, and `secmem-bench --figure
 * fig4` runs the same figure with cross-figure result sharing.
 */

#include "exp/figures.hh"

int
main(int argc, char **argv)
{
    return secmem::exp::figureMain("fig4", argc, argv);
}
