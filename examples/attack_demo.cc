/**
 * @file
 * Hardware-attack gallery against the secure memory, including the
 * counter replay attack the paper identifies in Section 4.3.
 *
 * Four attacks are staged against real DRAM contents:
 *   1. snooping       — passive read of the bus (defeated by encryption)
 *   2. tampering      — flip ciphertext bits (defeated by GCM tags)
 *   3. data replay    — roll a block back to an old value (defeated by
 *                       the Merkle tree)
 *   4. counter replay — roll a COUNTER back to force pad reuse; this
 *                       breaks secrecy when counters are not
 *                       authenticated, and is caught when they are —
 *                       the paper's Section 4.3 contribution.
 *
 *   ./build/examples/attack_demo
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/controller.hh"
#include "crypto/bytes.hh"

using namespace secmem;

namespace
{

Block64
blockFromString(const std::string &s)
{
    Block64 b{};
    std::memcpy(b.b.data(), s.data(), std::min(s.size(), kBlockBytes));
    return b;
}

SecureMemConfig
demoConfig(bool authenticate_counters)
{
    SecureMemConfig cfg = SecureMemConfig::splitGcm();
    cfg.memoryBytes = 32 << 20;
    cfg.authenticateCounters = authenticate_counters;
    return cfg;
}

void
banner(const char *title)
{
    std::printf("\n--- %s ---\n", title);
}

} // namespace

int
main()
{
    std::printf("=== Hardware attacks vs split-counter + GCM memory ===\n");
    int broken = 0;

    banner("attack 1: bus snooping");
    {
        SecureMemoryController ctrl(demoConfig(true));
        Block64 secret = blockFromString("wire $1M to account 12345678");
        ctrl.writeBlock(0x1000, secret, 1);
        Block64 snooped = ctrl.dram().snoop(0x1000);
        bool leaked = snooped == secret;
        std::printf("snooped bytes: %s...\n",
                    toHex(snooped.b.data(), 16).c_str());
        std::printf("secrecy %s\n", leaked ? "BROKEN" : "held: ciphertext only");
        broken += leaked;
    }

    banner("attack 2: ciphertext tampering");
    {
        SecureMemoryController ctrl(demoConfig(true));
        Tick t = ctrl.writeBlock(0x2000, blockFromString("balance: 100"), 1);
        ctrl.dram().tamperXor(0x2000, 9, 0x08); // try to edit the balance
        Block64 out;
        AccessTiming at = ctrl.readBlock(0x2000, t + 1, &out);
        std::printf("integrity %s\n",
                    at.authOk ? "BROKEN: tamper accepted"
                              : "held: tamper detected by GCM tag");
        broken += at.authOk;
    }

    banner("attack 3: data replay (rollback)");
    {
        SecureMemoryController ctrl(demoConfig(true));
        Tick t = ctrl.writeBlock(0x3000, blockFromString("balance: 100"), 1);
        Block64 rich = ctrl.dram().snoop(0x3000);
        t = ctrl.writeBlock(0x3000, blockFromString("balance: 0"), t + 1);
        ctrl.dram().replay(0x3000, rich); // roll the spend back
        Block64 out;
        AccessTiming at = ctrl.readBlock(0x3000, t + 1, &out);
        std::printf("freshness %s\n",
                    at.authOk ? "BROKEN: stale data accepted"
                              : "held: replay detected by Merkle tree");
        broken += at.authOk;
    }

    banner("attack 4: counter replay (paper Section 4.3)");
    for (bool protected_ctrs : {false, true}) {
        SecureMemoryController ctrl(demoConfig(protected_ctrs));
        const Addr addr = 0x4000;
        const Addr ctr_addr = ctrl.map().ctrBlockAddrFor(addr);
        Block64 p1 = blockFromString("PIN = 4921; do not disclose");
        Block64 p2 = blockFromString("PIN = ????; redacted value!");

        Tick t = ctrl.writeBlock(addr, Block64{}, 1); // counter -> 1
        ctrl.evictCounterBlock(addr);                 // counter to DRAM
        Block64 old_ctr = ctrl.dram().snoop(ctr_addr);

        t = ctrl.writeBlock(addr, p1, t + 1); // pad(counter=2) used
        Block64 ct1 = ctrl.dram().snoop(addr);

        ctrl.evictCounterBlock(addr);        // counter leaves the chip
        ctrl.dram().replay(ctr_addr, old_ctr); // attacker rolls it back

        std::uint64_t fails = ctrl.authFailures();
        t = ctrl.writeBlock(addr, p2, t + 1); // pad(counter=2) REUSED
        Block64 ct2 = ctrl.dram().snoop(addr);

        bool detected = ctrl.authFailures() > fails;
        Block64 leak = ct1 ^ ct2; // == p1 ^ p2 under pad reuse
        bool pad_reused = leak == (p1 ^ p2);

        std::printf("counters %sauthenticated: %s",
                    protected_ctrs ? "" : "NOT ",
                    detected ? "rollback DETECTED before use\n"
                             : "rollback unnoticed");
        if (!detected) {
            std::printf(" -> pad reuse %s", pad_reused ? "achieved" : "failed");
            if (pad_reused) {
                // With p2 known/guessable, the attacker recovers p1.
                Block64 recovered = leak ^ p2;
                std::printf("; attacker recovers: \"%.28s\"",
                            reinterpret_cast<const char *>(
                                recovered.b.data()));
                broken += std::memcmp(recovered.b.data(), p1.b.data(),
                                      28) == 0;
            }
            std::printf("\n");
        }
    }

    std::printf("\n=== %d attack(s) succeeded against the full scheme; "
                "counter replay succeeds only with Section-4.3 "
                "protection disabled ===\n",
                broken - 1); // the unprotected variant is the demo
    return 0;
}
