/**
 * @file
 * Quickstart: the SecureMemory byte-level API in five minutes.
 *
 * Creates a protected memory using the paper's full scheme (split
 * counters + GCM Merkle tree), stores a secret, shows that DRAM holds
 * only ciphertext, reads it back, and demonstrates that a one-bit
 * hardware tamper is detected.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/secure_memory.hh"
#include "crypto/bytes.hh"

using namespace secmem;

int
main()
{
    // The default configuration is the paper's: AES counter-mode
    // encryption with split counters (7-bit minors + shared 64-bit
    // major per 4 KB page) and a GCM-tag Merkle tree over data and
    // counters. Every knob lives in SecureMemConfig.
    SecureMemConfig cfg = SecureMemConfig::splitGcm();
    cfg.memoryBytes = 64 << 20; // 64 MB protected space
    SecureMemory mem(cfg);

    std::printf("secure memory: %s, %zu MB protected\n",
                cfg.schemeName().c_str(), cfg.memoryBytes >> 20);

    // 1. Store a secret through the secure path.
    const std::string secret =
        "the launch code is 0000 (please rotate soon)";
    const Addr addr = 0x1000;
    mem.write(addr, secret.data(), secret.size());
    std::printf("\nwrote   %zu bytes at 0x%llx\n", secret.size(),
                static_cast<unsigned long long>(addr));

    // 2. What the attacker on the memory bus sees: ciphertext only.
    Block64 raw = mem.dram().readBlock(addr);
    std::printf("DRAM    %s...\n", toHex(raw.b.data(), 24).c_str());
    bool leaked = std::memcmp(raw.b.data(), secret.data(), 16) == 0;
    std::printf("plaintext visible in DRAM? %s\n", leaked ? "YES" : "no");

    // 3. Read back: decrypts and authenticates through the Merkle tree.
    std::string back(secret.size(), '\0');
    mem.read(addr, back.data(), back.size());
    std::printf("\nread    \"%s\"\n", back.c_str());
    std::printf("authenticated: %s\n", mem.lastAuthOk() ? "yes" : "NO");

    // 4. A hardware attack: flip one ciphertext bit on the bus.
    mem.dram().tamperXor(addr, 7, 0x20);
    mem.read(addr, back.data(), back.size());
    std::printf("\nafter 1-bit tamper: authenticated: %s "
                "(failures so far: %llu)\n",
                mem.lastAuthOk() ? "yes (BROKEN!)" : "no - detected",
                static_cast<unsigned long long>(mem.authFailures()));

    // 5. Counters are the freshness mechanism: each write-back of a
    //    block advances its (split) counter.
    SecureMemoryController &ctrl = mem.controller();
    std::printf("\nblock counter after %s writes: %llu "
                "(major<<7 | minor)\n",
                "two", static_cast<unsigned long long>(ctrl.counterOf(addr)));

    return mem.lastAuthOk() ? 1 : 0; // tamper must have been caught
}
