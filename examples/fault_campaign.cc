/**
 * @file
 * Adversarial fault-injection campaign CLI.
 *
 * Replays a synthetic SPEC workload against a secure-memory controller
 * while the TamperInjector stages every applicable attack primitive
 * (bit flips, multi-byte corruption, splicing, data replay, counter
 * rollback, MAC replay, region fuzz, optional transient faults), then
 * prints a JSON coverage report on stdout.
 *
 * Exit status is 0 only when every integrity-affecting injection was
 * detected, so the binary doubles as a self-checking regression:
 *
 *     fault_campaign --seed 7 --ops 20000 --every 64 \
 *         --scheme splitGcm --policy retry --transient 0.25
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/campaign.hh"

using namespace secmem;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--ops N] [--every N]\n"
                 "          [--workload NAME] [--scheme NAME]\n"
                 "          [--policy halt|report|retry|quarantine]\n"
                 "          [--retries N]\n"
                 "          [--transient FRACTION]\n"
                 "\n"
                 "schemes: baseline direct split gcmAuthOnly splitGcm\n"
                 "         monoGcm splitSha monoSha splitGcmNoCtrAuth\n",
                 argv0);
    std::exit(2);
}

TamperPolicy
parsePolicy(const std::string &s)
{
    if (s == "halt")
        return TamperPolicy::Halt;
    if (s == "report")
        return TamperPolicy::ReportAndContinue;
    if (s == "retry")
        return TamperPolicy::RetryRefetch;
    if (s == "quarantine")
        return TamperPolicy::Quarantine;
    std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    CampaignConfig cfg;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--seed")
            cfg.seed = std::strtoull(value(), nullptr, 0);
        else if (arg == "--ops")
            cfg.memOps = std::strtoull(value(), nullptr, 0);
        else if (arg == "--every")
            cfg.injectEvery = std::strtoull(value(), nullptr, 0);
        else if (arg == "--workload")
            cfg.workload = value();
        else if (arg == "--scheme")
            cfg.scheme = value();
        else if (arg == "--policy")
            cfg.policy = parsePolicy(value());
        else if (arg == "--retries")
            cfg.maxRetries =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
        else if (arg == "--transient")
            cfg.transientFraction = std::strtod(value(), nullptr);
        else
            usage(argv[0]);
    }

    CampaignResult res = runCampaign(cfg);
    std::printf("%s\n", res.toJson().c_str());

    if (!res.allDetected || res.unattributedReports != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu staged injections undetected, "
                     "%llu unattributed reports\n",
                     static_cast<unsigned long long>(res.undetectedStaged),
                     static_cast<unsigned long long>(res.unattributedReports));
        return 1;
    }
    std::fprintf(stderr,
                 "OK: %llu/%llu staged injections detected across %u "
                 "attack classes\n",
                 static_cast<unsigned long long>(res.detected),
                 static_cast<unsigned long long>(res.staged),
                 res.distinctClasses);
    return 0;
}
