/**
 * @file
 * Tour of the timing simulator: runs one SPEC-like workload through a
 * few representative configurations and walks through the statistics
 * the paper's evaluation is built from — normalized IPC, counter-cache
 * behaviour, timely pad generation, MAC-tree traffic and bus load.
 *
 *   ./build/examples/simulation_tour [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/system.hh"
#include "workload/spec_profiles.hh"

using namespace secmem;

namespace
{

struct TourResult
{
    std::string label;
    CoreRunResult run;
    double ctrHit;
    double macHit;
    double timely;
    double busUtil;
    std::uint64_t authFails;
};

TourResult
tour(const SpecProfile &profile, const SecureMemConfig &cfg,
     std::uint64_t instrs)
{
    SecureSystem sys(cfg);
    SpecWorkload gen(profile);
    TourResult r;
    r.label = cfg.schemeName();
    r.run = sys.run(gen, instrs / 2, instrs);
    SecureMemoryController &ctrl = sys.controller();
    r.ctrHit = ctrl.ctrCache().hitRate();
    r.macHit = ctrl.macCache().hitRate();
    std::uint64_t pt = ctrl.stats().counterValue("pad_total");
    r.timely = pt ? double(ctrl.stats().counterValue("pad_timely")) / pt : 0;
    r.busUtil = ctrl.bus().utilization(r.run.finalTick);
    r.authFails = ctrl.authFailures();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "twolf";
    std::uint64_t instrs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                    : 400'000;
    const SpecProfile &profile = profileByName(workload);

    std::printf("=== Simulation tour: %s, %llu measured instructions ===\n",
                workload.c_str(), static_cast<unsigned long long>(instrs));
    std::printf("3-issue OoO @5GHz | L1 16KB | L2 1MB | ctr cache 32KB | "
                "bus 128b@600MHz | mem 200cyc | AES 80cyc | SHA-1 320cyc\n\n");

    TourResult base = tour(profile, SecureMemConfig::baseline(), instrs);

    std::printf("%-12s %6s %8s %7s %7s %7s %6s %6s\n", "scheme", "IPC",
                "normIPC", "ctrHit", "macHit", "timely", "bus", "fails");
    auto show = [&](const TourResult &r) {
        std::printf("%-12s %6.3f %8.3f %6.1f%% %6.1f%% %6.1f%% %5.1f%% %6llu\n",
                    r.label.c_str(), r.run.ipc, r.run.ipc / base.run.ipc,
                    r.ctrHit * 100, r.macHit * 100, r.timely * 100,
                    r.busUtil * 100,
                    static_cast<unsigned long long>(r.authFails));
    };
    show(base);
    show(tour(profile, SecureMemConfig::direct(), instrs));
    show(tour(profile, SecureMemConfig::mono(64), instrs));
    show(tour(profile, SecureMemConfig::split(), instrs));
    show(tour(profile, SecureMemConfig::gcmAuthOnly(), instrs));
    show(tour(profile, SecureMemConfig::sha1AuthOnly(320), instrs));
    show(tour(profile, SecureMemConfig::splitGcm(), instrs));
    show(tour(profile, SecureMemConfig::monoSha(), instrs));

    std::printf(
        "\nHow to read this: Split hides pad generation behind the fetch\n"
        "(high 'timely'), so its normalized IPC stays near 1.0 while\n"
        "Direct pays serial AES latency. GCM authentication rides the\n"
        "same AES engine and overlaps the walk; SHA-1 at 320 cycles\n"
        "cannot. Split+GCM is the paper's combined scheme. 'fails' must\n"
        "be 0 in any untampered run.\n");
    return 0;
}
