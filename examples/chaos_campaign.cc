/**
 * @file
 * Chaos-testing CLI: sustained fault storms against the controller's
 * recovery state machine, plus crash/corruption drills against the
 * on-disk result store.
 *
 * Replays a synthetic SPEC workload while a FaultStorm arms transient
 * read-path glitches (and, optionally, persistent DRAM damage) on the
 * blocks about to be accessed, then prints a JSON resilience report.
 * An expected-plaintext oracle checks every clean read; the exit
 * status is 0 only when the campaign saw *zero silent corruptions*
 * (and, with --store-chaos, the store drill recovered cleanly; with
 * --verify-model, the shadow oracle recorded zero divergences).
 *
 *     chaos_campaign --events 10000 --seed 7 --scheme splitGcm \
 *         --policy quarantine --transient-rate 0.05 \
 *         --shards 4 --jobs 4 --store-chaos /tmp/chaos-store
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exp/store_chaos.hh"
#include "harness/chaos.hh"

using namespace secmem;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--events N] [--seed N] [--workload NAME]\n"
        "          [--scheme NAME] [--policy halt|report|retry|quarantine]\n"
        "          [--retries N] [--transient-rate F] [--persistent-rate F]\n"
        "          [--meta-fraction F] [--burst N]\n"
        "          [--shards N] [--jobs N] [--verify-model]\n"
        "          [--store-chaos DIR] [--store-records N]\n"
        "\n"
        "schemes: baseline direct split gcmAuthOnly splitGcm\n"
        "         monoGcm splitSha monoSha splitGcmNoCtrAuth\n",
        argv0);
    std::exit(2);
}

TamperPolicy
parsePolicy(const std::string &s)
{
    if (s == "halt")
        return TamperPolicy::Halt;
    if (s == "report")
        return TamperPolicy::ReportAndContinue;
    if (s == "retry")
        return TamperPolicy::RetryRefetch;
    if (s == "quarantine")
        return TamperPolicy::Quarantine;
    std::fprintf(stderr, "unknown policy '%s'\n", s.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    ChaosConfig cfg;
    unsigned shards = 1;
    unsigned jobs = 1;
    std::string storeDir;
    exp::StoreChaosConfig storeCfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--events")
            cfg.events = std::strtoull(value(), nullptr, 0);
        else if (arg == "--seed")
            cfg.seed = std::strtoull(value(), nullptr, 0);
        else if (arg == "--workload")
            cfg.workload = value();
        else if (arg == "--scheme")
            cfg.scheme = value();
        else if (arg == "--policy")
            cfg.policy = parsePolicy(value());
        else if (arg == "--retries")
            cfg.recovery.maxRetries =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
        else if (arg == "--transient-rate")
            cfg.storm.transientRate = std::strtod(value(), nullptr);
        else if (arg == "--persistent-rate")
            cfg.storm.persistentRate = std::strtod(value(), nullptr);
        else if (arg == "--meta-fraction")
            cfg.storm.metaFraction = std::strtod(value(), nullptr);
        else if (arg == "--burst")
            cfg.storm.maxBurst =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
        else if (arg == "--shards")
            shards = static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
        else if (arg == "--jobs")
            jobs = static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
        else if (arg == "--verify-model")
            cfg.verifyModel = true;
        else if (arg == "--store-chaos")
            storeDir = value();
        else if (arg == "--store-records")
            storeCfg.records =
                static_cast<unsigned>(std::strtoul(value(), nullptr, 0));
        else
            usage(argv[0]);
    }

    bool fail = false;

    ChaosFleetResult fleet = runChaosFleet(cfg, shards, jobs);
    std::printf("%s\n", fleet.toJson().c_str());
    if (fleet.totals.silentCorruptions != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu silent corruptions across %u shards\n",
                     static_cast<unsigned long long>(
                         fleet.totals.silentCorruptions),
                     shards);
        fail = true;
    }
    if (fleet.totals.divergences != 0) {
        std::fprintf(
            stderr, "FAIL: %llu shadow-model divergences\n",
            static_cast<unsigned long long>(fleet.totals.divergences));
        fail = true;
    }
    if (fleet.totals.halted) {
        std::fprintf(stderr, "FAIL: a shard's controller halted\n");
        fail = true;
    }

    if (!storeDir.empty()) {
        storeCfg.seed = cfg.seed;
        storeCfg.dir = storeDir;
        exp::StoreChaosResult drill = exp::runStoreChaosDrill(storeCfg);
        std::printf("%s\n", drill.toJson().c_str());
        if (!drill.ok) {
            std::fprintf(stderr, "FAIL: store chaos drill did not recover "
                                 "cleanly\n");
            fail = true;
        }
    }

    if (fail)
        return 1;
    std::fprintf(
        stderr,
        "OK: %llu events, %llu faults delivered, %llu detected, "
        "%llu recovered, %llu quarantines, 0 silent corruptions\n",
        static_cast<unsigned long long>(fleet.totals.memOps),
        static_cast<unsigned long long>(fleet.totals.storm.transientFaults +
                                        fleet.totals.storm.persistentFaults),
        static_cast<unsigned long long>(fleet.totals.detected),
        static_cast<unsigned long long>(fleet.totals.recovered),
        static_cast<unsigned long long>(fleet.totals.quarantines));
    return 0;
}
