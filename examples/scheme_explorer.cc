/**
 * @file
 * Scheme explorer: interactive-grade sweep over the configuration
 * space for one workload — counter organisations, counter-cache sizes,
 * MAC sizes and authentication requirements — printing the cost of
 * each choice. A miniature version of the paper's whole evaluation for
 * a single application.
 *
 *   ./build/examples/scheme_explorer [workload]
 */

#include <cstdio>
#include <string>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace secmem;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "equake";
    setenv("SECMEM_SIM_INSTRS", "300000", 0);
    setenv("SECMEM_WARMUP_INSTRS", "300000", 0);
    const SpecProfile &p = profileByName(workload);

    std::printf("=== Scheme explorer: %s ===\n\n", workload.c_str());
    RunOutput base = runWorkload(p, SecureMemConfig::baseline());

    auto nipc = [&](const SecureMemConfig &cfg) {
        return fmtDouble(normalizedIpc(runWorkload(p, cfg), base));
    };

    std::printf("-- encryption only --\n");
    TextTable enc({"scheme", "normalized IPC"});
    enc.addRow({"direct AES", nipc(SecureMemConfig::direct())});
    for (unsigned bits : {8u, 16u, 32u, 64u})
        enc.addRow({"mono " + std::to_string(bits) + "b",
                    nipc(SecureMemConfig::mono(bits))});
    enc.addRow({"split (paper)", nipc(SecureMemConfig::split())});
    enc.addRow({"prediction [16]", nipc(SecureMemConfig::pred(1))});
    enc.print();

    std::printf("\n-- split counters: counter-cache size --\n");
    TextTable cc({"ctr cache", "normalized IPC"});
    for (std::size_t kb : {8u, 16u, 32u, 64u, 128u}) {
        SecureMemConfig cfg = SecureMemConfig::split();
        cfg.ctrCacheBytes = kb << 10;
        cc.addRow({std::to_string(kb) + "KB", nipc(cfg)});
    }
    cc.print();

    std::printf("\n-- combined scheme: MAC size (tree arity) --\n");
    TextTable mac({"MAC bits", "tree levels", "normalized IPC"});
    for (unsigned bits : {128u, 64u, 32u}) {
        SecureMemConfig cfg = SecureMemConfig::splitGcm();
        cfg.macBits = bits;
        AddressMap map(cfg);
        mac.addRow({std::to_string(bits), std::to_string(map.numLevels()),
                    nipc(cfg)});
    }
    mac.print();

    std::printf("\n-- combined scheme: authentication requirement --\n");
    TextTable mode({"mode", "Split+GCM", "Mono+SHA"});
    for (AuthMode m : {AuthMode::Lazy, AuthMode::Commit, AuthMode::Safe}) {
        SecureMemConfig g = SecureMemConfig::splitGcm();
        SecureMemConfig s = SecureMemConfig::monoSha();
        g.authMode = m;
        s.authMode = m;
        mode.addRow({toString(m), nipc(g), nipc(s)});
    }
    mode.print();

    return 0;
}
