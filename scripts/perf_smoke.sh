#!/usr/bin/env bash
# Wall-clock performance smoke: Release build, crypto microbenchmarks
# in machine-readable form, a timed end-to-end fig4 smoke run, and the
# assembled/validated BENCH_crypto.json (see EXPERIMENTS.md for the
# schema and scripts/bench_json.py for the gates: GHASH table speedup
# >= 5x, no >2x regression vs bench/BENCH_crypto.baseline.json).
#
# A second profiled fig4 run then emits the simulator telemetry
# (--profile --metrics-out: events/s, instructions/s, zone self-times,
# latency histograms, sampler series), which bench_json.py
# --sim-metrics validates and gates into BENCH_sim.json against
# bench/BENCH_sim.baseline.json with the same 2x tolerance.
#
# Usage: scripts/perf_smoke.sh [--write-baseline] [--out DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

write_baseline=0
outdir=perf
while [[ $# -gt 0 ]]; do
    case "$1" in
        --write-baseline) write_baseline=1; shift ;;
        --out) outdir="$2"; shift 2 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 4)
mkdir -p "$outdir"

echo "== Release build =="
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j "$jobs" --target crypto_microbench secmem-bench

echo "== crypto microbenchmarks =="
./build-perf/bench/crypto_microbench \
    --benchmark_format=json \
    --benchmark_min_time=0.2 \
    > "$outdir/microbench.json"

echo "== timed fig4 smoke (end to end) =="
start=$(date +%s.%N)
./build-perf/bench/secmem-bench --figure fig4 --smoke --jobs "$jobs" \
    --no-store --no-progress >/dev/null
end=$(date +%s.%N)
fig4_seconds=$(awk -v a="$start" -v b="$end" 'BEGIN { print b - a }')
echo "fig4 smoke: ${fig4_seconds}s"

echo "== BENCH_crypto.json =="
baseline_args=(--baseline bench/BENCH_crypto.baseline.json)
if [[ "$write_baseline" == 1 ]]; then
    baseline_args+=(--write-baseline)
fi
python3 scripts/bench_json.py \
    --microbench "$outdir/microbench.json" \
    --fig4-seconds "$fig4_seconds" \
    --out "$outdir/BENCH_crypto.json" \
    "${baseline_args[@]}"

echo "== BENCH_sim.json (profiled fig4 smoke) =="
./build-perf/bench/secmem-bench --figure fig4 --smoke --jobs "$jobs" \
    --no-store --no-progress --profile --sample-every 200000 \
    --metrics-out "$outdir/bench_sim_raw.json" >/dev/null
sim_baseline_args=(--baseline bench/BENCH_sim.baseline.json)
if [[ "$write_baseline" == 1 ]]; then
    sim_baseline_args+=(--write-baseline)
fi
python3 scripts/bench_json.py \
    --sim-metrics "$outdir/bench_sim_raw.json" \
    --out "$outdir/BENCH_sim.json" \
    "${sim_baseline_args[@]}"

echo "== percycle-oracle reference run (original core loop) =="
# Same profiled workload on the original one-cycle-at-a-time core
# loop. Validated but not baseline-gated: the per-cycle loop is the
# differential oracle for the batched retire/dispatch loop and is
# expected to be slower — the comparison table below is the
# before/after evidence for the core-loop swap.
./build-perf/bench/secmem-bench --figure fig4 --smoke --jobs "$jobs" \
    --no-store --no-progress --profile --sample-every 200000 \
    --core-loop percycle \
    --metrics-out "$outdir/bench_sim_percycle_raw.json" >/dev/null
python3 scripts/bench_json.py \
    --sim-metrics "$outdir/bench_sim_percycle_raw.json" \
    --out "$outdir/BENCH_sim_percycle.json"

echo "== core-loop before/after (percycle oracle vs batched) =="
python3 - "$outdir/BENCH_sim_percycle.json" "$outdir/BENCH_sim.json" <<'EOF'
import json, sys

pc = json.load(open(sys.argv[1]))
bat = json.load(open(sys.argv[2]))

print(f"{'metric':<28}{'percycle (before)':>18}{'batched (after)':>17}"
      f"{'gain':>8}")
for field in ("events_per_sec", "instructions_per_sec"):
    p, b = pc[field], bat[field]
    print(f"{field:<28}{p:>18,.0f}{b:>17,.0f}{b / p:>7.2f}x")
p, b = pc["wall_seconds"], bat["wall_seconds"]
print(f"{'wall_seconds':<28}{p:>18.3f}{b:>17.3f}{p / b:>7.2f}x")

print()
print(f"{'zone self-time':<28}{'percycle (before)':>18}{'batched (after)':>17}")
zones = {z["name"]: z for z in pc["zones"]}
for z in bat["zones"]:
    before = zones.get(z["name"], {}).get("share")
    before = f"{before:.1%}" if before is not None else "-"
    print(f"{z['name']:<28}{before:>18}{z['share']:>16.1%}")
EOF

echo "== heap-oracle reference run (legacy event kernel) =="
# Same profiled workload on the legacy heap kernel. Validated but not
# baseline-gated: the heap is the differential oracle and is expected
# to be slower than the calendar queue — the comparison table below is
# the before/after evidence for the kernel swap.
SECMEM_EVENT_KERNEL=heap \
    ./build-perf/bench/secmem-bench --figure fig4 --smoke --jobs "$jobs" \
    --no-store --no-progress --profile --sample-every 200000 \
    --metrics-out "$outdir/bench_sim_heap_raw.json" >/dev/null
python3 scripts/bench_json.py \
    --sim-metrics "$outdir/bench_sim_heap_raw.json" \
    --out "$outdir/BENCH_sim_heap.json"

echo "== event-kernel before/after (heap oracle vs calendar) =="
python3 - "$outdir/BENCH_sim_heap.json" "$outdir/BENCH_sim.json" <<'EOF'
import json, sys

heap = json.load(open(sys.argv[1]))
cal = json.load(open(sys.argv[2]))

print(f"{'metric':<28}{'heap (before)':>16}{'calendar (after)':>18}"
      f"{'gain':>8}")
for field in ("events_per_sec", "instructions_per_sec"):
    h, c = heap[field], cal[field]
    print(f"{field:<28}{h:>16,.0f}{c:>18,.0f}{c / h:>7.2f}x")
h, c = heap["wall_seconds"], cal["wall_seconds"]
print(f"{'wall_seconds':<28}{h:>16.3f}{c:>18.3f}{h / c:>7.2f}x")

print()
print(f"{'zone self-time':<28}{'heap (before)':>16}{'calendar (after)':>18}")
zones = {z["name"]: z for z in heap["zones"]}
for z in cal["zones"]:
    before = zones.get(z["name"], {}).get("share")
    before = f"{before:.1%}" if before is not None else "-"
    print(f"{z['name']:<28}{before:>16}{z['share']:>17.1%}")
EOF

echo "perf_smoke.sh: all green"
