#!/usr/bin/env bash
# Wall-clock performance smoke: Release build, crypto microbenchmarks
# in machine-readable form, a timed end-to-end fig4 smoke run, and the
# assembled/validated BENCH_crypto.json (see EXPERIMENTS.md for the
# schema and scripts/bench_json.py for the gates: GHASH table speedup
# >= 5x, no >2x regression vs bench/BENCH_crypto.baseline.json).
#
# A second profiled fig4 run then emits the simulator telemetry
# (--profile --metrics-out: events/s, instructions/s, zone self-times,
# latency histograms, sampler series), which bench_json.py
# --sim-metrics validates and gates into BENCH_sim.json against
# bench/BENCH_sim.baseline.json with the same 2x tolerance.
#
# Usage: scripts/perf_smoke.sh [--write-baseline] [--out DIR]
set -euo pipefail

cd "$(dirname "$0")/.."

write_baseline=0
outdir=perf
while [[ $# -gt 0 ]]; do
    case "$1" in
        --write-baseline) write_baseline=1; shift ;;
        --out) outdir="$2"; shift 2 ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 4)
mkdir -p "$outdir"

echo "== Release build =="
cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-perf -j "$jobs" --target crypto_microbench secmem-bench

echo "== crypto microbenchmarks =="
./build-perf/bench/crypto_microbench \
    --benchmark_format=json \
    --benchmark_min_time=0.2 \
    > "$outdir/microbench.json"

echo "== timed fig4 smoke (end to end) =="
start=$(date +%s.%N)
./build-perf/bench/secmem-bench --figure fig4 --smoke --jobs "$jobs" \
    --no-store --no-progress >/dev/null
end=$(date +%s.%N)
fig4_seconds=$(awk -v a="$start" -v b="$end" 'BEGIN { print b - a }')
echo "fig4 smoke: ${fig4_seconds}s"

echo "== BENCH_crypto.json =="
baseline_args=(--baseline bench/BENCH_crypto.baseline.json)
if [[ "$write_baseline" == 1 ]]; then
    baseline_args+=(--write-baseline)
fi
python3 scripts/bench_json.py \
    --microbench "$outdir/microbench.json" \
    --fig4-seconds "$fig4_seconds" \
    --out "$outdir/BENCH_crypto.json" \
    "${baseline_args[@]}"

echo "== BENCH_sim.json (profiled fig4 smoke) =="
./build-perf/bench/secmem-bench --figure fig4 --smoke --jobs "$jobs" \
    --no-store --no-progress --profile --sample-every 200000 \
    --metrics-out "$outdir/bench_sim_raw.json" >/dev/null
sim_baseline_args=(--baseline bench/BENCH_sim.baseline.json)
if [[ "$write_baseline" == 1 ]]; then
    sim_baseline_args+=(--write-baseline)
fi
python3 scripts/bench_json.py \
    --sim-metrics "$outdir/bench_sim_raw.json" \
    --out "$outdir/BENCH_sim.json" \
    "${sim_baseline_args[@]}"

echo "perf_smoke.sh: all green"
