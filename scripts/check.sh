#!/usr/bin/env bash
# Full verification sweep: tier-1 build + tests, a sanitizer build of
# the same test suite, a fault-injection campaign smoke run that
# asserts 100% detection (the fault_campaign binary exits non-zero on
# any undetected or unattributed tampering), and a short parallel
# secmem-bench figure run.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."

sanitize=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
    sanitize=0
fi

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1 build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$sanitize" == 1 ]]; then
    echo "== sanitizer build + tests (ASan + UBSan) =="
    cmake -B build-asan -S . -DSECMEM_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$jobs"
    # Death tests fork under ASan; keep them on the fast path.
    ASAN_OPTIONS=detect_leaks=1 \
        ctest --test-dir build-asan --output-on-failure -j "$jobs"
fi

echo "== fault-injection campaign smoke =="
./build/examples/fault_campaign --seed 7 --ops 6000 --every 32 \
    --scheme splitGcm >/dev/null
./build/examples/fault_campaign --seed 7 --ops 4000 --every 32 \
    --scheme splitGcm --policy retry --transient 0.4 >/dev/null

echo "== chaos campaign smoke (fault storm + store crash drill) =="
# Exits non-zero on any silent corruption, shadow divergence,
# controller halt, or store record that fails to journal-recover.
./build/examples/chaos_campaign --events 4000 --seed 7 \
    --transient-rate 0.03 --persistent-rate 0.002 --shards 2 --jobs 2 \
    --store-chaos build/chaos-store --store-records 48 >/dev/null
./build/examples/chaos_campaign --events 2000 --seed 9 \
    --transient-rate 0.05 --verify-model >/dev/null

echo "== secmem-bench smoke (fig4, parallel, no store) =="
./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress >/dev/null

echo "== event-kernel differential smoke (calendar vs heap oracle) =="
# Both kernels implement the same (tick, insertion-seq) contract, so
# the figure tables and the full stats dump must match byte for byte.
./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress --stats-out build/stats-cal.json > build/fig4-cal.txt
./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress --event-kernel heap \
    --stats-out build/stats-heap.json > build/fig4-heap.txt
diff -u build/fig4-cal.txt build/fig4-heap.txt
diff -u build/stats-cal.json build/stats-heap.json

echo "== core-loop differential smoke (batched vs per-cycle oracle) =="
# The per-cycle loop is the differential oracle for the batched
# retire/dispatch loop; the figure tables and the full stats dump must
# match byte for byte, through both selection paths (flag and env).
./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress --core-loop batched \
    --stats-out build/stats-batched.json > build/fig4-batched.txt
SECMEM_CORE_LOOP=percycle \
    ./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress \
    --stats-out build/stats-percycle.json > build/fig4-percycle.txt
diff -u build/fig4-batched.txt build/fig4-percycle.txt
diff -u build/stats-batched.json build/stats-percycle.json

echo "== profiler + telemetry smoke (fig4 --profile --metrics-out) =="
# The profiled run must emit a valid BENCH_sim telemetry JSON (zone
# self-times, latency histograms, sampler series) and a zone table on
# stderr — while leaving the figure tables bit-identical to the
# unprofiled run above (the CI bench-smoke job diffs them; here we
# just prove the plumbing works end to end).
./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress --profile --sample-every 200000 \
    --metrics-out build/bench_sim_raw.json \
    >/dev/null 2>build/profile-err.txt
grep -q "^profile:" build/profile-err.txt
python3 scripts/bench_json.py --sim-metrics build/bench_sim_raw.json \
    --out build/BENCH_sim.json

echo "== crypto backend smoke (registry + per-backend oracle) =="
# Every compiled-in, CPU-supported backend must drive the whole fig4
# datapath bit-exactly against the untimed reference model; a bad
# backend name must be a hard error, never a silent fallback.
./build/bench/secmem-bench --list-crypto-backends | tee build/backends.txt
grep -q '^portable ' build/backends.txt
grep -q '^ct ' build/backends.txt
while read -r be status _; do
    [[ "$status" == active || "$status" == available ]] || continue
    ./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
        --no-progress --verify-model --crypto-backend "$be" >/dev/null
done < build/backends.txt
if ./build/bench/secmem-bench --figure fig4 --smoke --crypto-backend bogus \
    >/dev/null 2>build/backend-err.txt; then
    echo "check.sh: unknown crypto backend must be a hard error" >&2
    exit 1
fi
grep -q "unknown crypto backend" build/backend-err.txt
# Re-run the registry/KAT/differential suites pinned to the ct tier,
# which auto-selection never picks.
SECMEM_CRYPTO_BACKEND=ct ctest --test-dir build --output-on-failure \
    -j "$jobs" -R "Backend" >/dev/null

echo "== differential-oracle smoke (fig4 + fig9 under --verify-model) =="
# The reference model shadow-executes every job and panics on the
# first functional divergence; the CLI exits non-zero if the oracle
# never ran (e.g. results served from a store).
./build/bench/secmem-bench --figure fig4 --smoke --jobs 2 --no-store \
    --no-progress --verify-model >/dev/null
./build/bench/secmem-bench --figure fig9 --smoke --jobs 2 --no-store \
    --no-progress --verify-model >/dev/null

echo "check.sh: all green"
