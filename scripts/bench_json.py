#!/usr/bin/env python3
"""Assemble and validate BENCH_crypto.json from microbenchmark output.

Reads the google-benchmark JSON emitted by crypto_microbench
(--benchmark_format=json) plus the wall-clock seconds of the fig4
smoke run (measured by scripts/perf_smoke.sh), distills both into the
flat BENCH_crypto.json schema documented in EXPERIMENTS.md, and gates:

  * schema validity — every required figure present and positive;
  * the table-driven GHASH chunk throughput must be >= MIN_GHASH_SPEEDUP
    over the bit-serial baseline measured in the same process;
  * per crypto backend (the BM_<op>/be:<name> benchmark copies), one
    row in the "backends" array with chunk/pad/tag throughputs and the
    speedups over the naive reference kernels; the portable row must be
    present, and when a hw row is present it must be strictly faster
    than portable (AES-NI/PCLMULQDQ beaten by T-tables means the hw
    backend is broken);
  * against a checked-in baseline (bench/BENCH_crypto.baseline.json),
    no throughput figure may regress by more than the tolerance (2x by
    default) and the fig4 smoke may not take more than tolerance times
    longer. Absolute numbers vary across hosts; a 2x window catches
    real algorithmic regressions (e.g. losing the precomputed tables)
    while tolerating hardware spread.

Usage:
  bench_json.py --microbench out.json --fig4-seconds 12.3 \
      --out BENCH_crypto.json [--baseline bench/BENCH_crypto.baseline.json]
      [--write-baseline] [--tolerance 2.0]

Second mode (--sim-metrics): validate, distill and gate the simulator
telemetry JSON emitted by `secmem-bench --profile --metrics-out`
(schema "secmem-bench-sim-v1") into BENCH_sim.json:

  * schema validity — positive wall-clock, events/s and instructions/s,
    at least one simulated job;
  * the representative job stats must carry >= MIN_SIM_HISTOGRAMS
    latency log-histograms (objects with both p50 and p99);
  * profiler zone shares must each lie in [0, 1] and sum to <= 100%;
  * against bench/BENCH_sim.baseline.json, events/s and instructions/s
    may not drop more than the tolerance (2x default) and the fig4
    smoke wall-clock may not grow more than the tolerance.

Usage:
  bench_json.py --sim-metrics raw.json --out BENCH_sim.json \
      [--baseline bench/BENCH_sim.baseline.json]
      [--write-baseline] [--tolerance 2.0]

Exit status is non-zero on any validation or regression failure.
"""

import argparse
import json
import sys

MIN_GHASH_SPEEDUP = 5.0
MIN_SIM_HISTOGRAMS = 5

SIM_SCHEMA = "secmem-bench-sim-v1"
# Baseline-gated fields of BENCH_sim.json: higher is better for the
# throughputs, lower is better for the wall-clock.
SIM_THROUGHPUT_FIELDS = ["events_per_sec", "instructions_per_sec"]
SIM_LATENCY_FIELDS = ["wall_seconds"]

# BENCH_crypto.json field  ->  (microbench name, counter)
FIELDS = {
    "ghash_chunks_per_sec": ("BM_GhashChunkUpdate", "items_per_second"),
    "ghash_chunks_per_sec_naive": ("BM_GhashChunkUpdateNaive",
                                   "items_per_second"),
    "aes_blocks_per_sec": ("BM_AesEncryptBlock", "items_per_second"),
    "aes_blocks_per_sec_naive": ("BM_AesEncryptBlockNaive",
                                 "items_per_second"),
    "pads_per_sec": ("BM_CtrCryptBlock", "items_per_second"),
    "gcm_tags_per_sec": ("BM_GcmBlockTag", "items_per_second"),
}

# Per-backend row field  ->  (microbench op, counter); the actual
# benchmark name is "<op>/be:<backend>".
BACKEND_FIELDS = {
    "ghash_chunks_per_sec": ("BM_GhashChunkUpdate", "items_per_second"),
    "aes_blocks_per_sec": ("BM_AesEncryptBlock", "items_per_second"),
    "pads_per_sec": ("BM_CtrCryptBlock", "items_per_second"),
    "gcm_tags_per_sec": ("BM_GcmBlockTag", "items_per_second"),
}

# Fields compared against the baseline: higher is better for
# throughputs, lower is better for seconds. The per-backend rows are
# deliberately not baselined: which backends exist varies per build
# configuration and host, so cross-host comparison would be noise.
THROUGHPUT_FIELDS = sorted(FIELDS) + ["ghash_speedup"]
LATENCY_FIELDS = ["fig4_smoke_seconds"]


def fail(msg):
    print(f"bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_microbench(path):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" not in doc:
        fail(f"{path} has no 'benchmarks' array (not google-benchmark JSON?)")
    by_name = {}
    for b in doc["benchmarks"]:
        by_name[b.get("name", "")] = b
    return doc, by_name


def build(args):
    doc, by_name = load_microbench(args.microbench)
    out = {}
    for field, (name, counter) in FIELDS.items():
        if name not in by_name:
            fail(f"benchmark '{name}' missing from {args.microbench}")
        value = by_name[name].get(counter)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"benchmark '{name}' has no positive '{counter}'")
        out[field] = value

    out["ghash_speedup"] = (out["ghash_chunks_per_sec"] /
                            out["ghash_chunks_per_sec_naive"])
    out["aes_speedup"] = (out["aes_blocks_per_sec"] /
                          out["aes_blocks_per_sec_naive"])
    out["backends"] = build_backend_rows(by_name, out, args.microbench)
    out["fig4_smoke_seconds"] = args.fig4_seconds
    if args.fig4_seconds <= 0:
        fail(f"fig4 smoke seconds must be positive, got {args.fig4_seconds}")

    context = doc.get("context", {})
    out["host"] = {
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
        "library_build_type": context.get("library_build_type"),
    }
    return out


def build_backend_rows(by_name, out, path):
    backends = sorted({name.split("/be:", 1)[1]
                       for name in by_name if "/be:" in name})
    rows = []
    for backend in backends:
        row = {"name": backend}
        for field, (op, counter) in BACKEND_FIELDS.items():
            name = f"{op}/be:{backend}"
            if name not in by_name:
                fail(f"benchmark '{name}' missing from {path}")
            value = by_name[name].get(counter)
            if not isinstance(value, (int, float)) or value <= 0:
                fail(f"benchmark '{name}' has no positive '{counter}'")
            row[field] = value
        row["ghash_speedup_vs_naive"] = (
            row["ghash_chunks_per_sec"] / out["ghash_chunks_per_sec_naive"])
        row["aes_speedup_vs_naive"] = (
            row["aes_blocks_per_sec"] / out["aes_blocks_per_sec_naive"])
        rows.append(row)
    return rows


def check_backends(out):
    rows = {row["name"]: row for row in out["backends"]}
    if "portable" not in rows:
        fail("no 'portable' backend row in the microbench output (the "
             "portable backend is always compiled in)")
    if "hw" in rows:
        slower = [field for field in BACKEND_FIELDS
                  if rows["hw"][field] <= rows["portable"][field]]
        if slower:
            fail("hw backend not strictly faster than portable on: " +
                 ", ".join(slower))
    print(f"bench_json: backend rows: {', '.join(sorted(rows))}")


def check_speedup(out):
    speedup = out["ghash_speedup"]
    if speedup < MIN_GHASH_SPEEDUP:
        fail(f"GHASH table speedup {speedup:.2f}x is below the required "
             f"{MIN_GHASH_SPEEDUP:.1f}x over the bit-serial baseline")
    print(f"bench_json: GHASH chunk speedup {speedup:.2f}x "
          f"(>= {MIN_GHASH_SPEEDUP:.1f}x required)")


def check_baseline(out, path, tolerance):
    try:
        with open(path) as f:
            base = json.load(f)
    except FileNotFoundError:
        fail(f"baseline {path} not found (generate with --write-baseline)")

    bad = []
    for field in THROUGHPUT_FIELDS:
        if field not in base:
            continue
        if out[field] * tolerance < base[field]:
            bad.append(f"{field}: {out[field]:.3g} vs baseline "
                       f"{base[field]:.3g} (>{tolerance:.1f}x slower)")
    for field in LATENCY_FIELDS:
        if field not in base:
            continue
        if out[field] > base[field] * tolerance:
            bad.append(f"{field}: {out[field]:.3g}s vs baseline "
                       f"{base[field]:.3g}s (>{tolerance:.1f}x slower)")
    if bad:
        fail("performance regression vs " + path + ":\n  " +
             "\n  ".join(bad))
    print(f"bench_json: no regression vs {path} "
          f"(tolerance {tolerance:.1f}x)")


def collect_histograms(node, path=""):
    """Dotted paths of every log-histogram object (has p50 and p99)."""
    found = {}
    if not isinstance(node, dict):
        return found
    if "p50" in node and "p99" in node:
        found[path] = node
    for key, value in node.items():
        child = f"{path}.{key}" if path else key
        found.update(collect_histograms(value, child))
    return found


def build_sim(args):
    with open(args.sim_metrics) as f:
        raw = json.load(f)
    if raw.get("schema") != SIM_SCHEMA:
        fail(f"{args.sim_metrics} schema is {raw.get('schema')!r}, "
             f"expected {SIM_SCHEMA!r}")

    for field in ("wall_seconds", "events_per_sec", "instructions_per_sec"):
        value = raw.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            fail(f"{field} must be positive, got {value!r}")
    if raw.get("jobs_simulated", 0) <= 0:
        fail("no jobs were simulated (everything served from a store?)")

    hists = collect_histograms(raw.get("job_stats") or {})
    if len(hists) < MIN_SIM_HISTOGRAMS:
        fail(f"job_stats carries {len(hists)} latency histograms "
             f"(p50+p99), need >= {MIN_SIM_HISTOGRAMS}: "
             f"{sorted(hists) or 'none'}")
    print(f"bench_json: {len(hists)} latency histograms: "
          + ", ".join(sorted(hists)))

    zones = raw.get("zones") or []
    share_total = 0.0
    for zone in zones:
        share = zone.get("share", 0.0)
        if not 0.0 <= share <= 1.0:
            fail(f"zone {zone.get('name')!r} share {share} outside [0, 1]")
        share_total += share
    if share_total > 1.0 + 1e-6:
        fail(f"zone shares sum to {share_total:.3f} > 1.0 — self-time "
             "attribution is double-counting")
    if raw.get("profile_enabled") and not zones:
        fail("profiling was enabled but no zones reported any self-time")
    if zones:
        top = ", ".join(f"{z['name']} {z['share']:.0%}" for z in zones[:3])
        print(f"bench_json: zone self-time {share_total:.0%} tracked "
              f"({top})")

    out = {
        "schema": SIM_SCHEMA,
        "figures": raw.get("figures", []),
        "wall_seconds": raw["wall_seconds"],
        "job_wall_seconds": raw.get("job_wall_seconds", 0.0),
        "jobs_simulated": raw["jobs_simulated"],
        "jobs_cached": raw.get("jobs_cached", 0),
        "sim_cycles": raw.get("sim_cycles", 0),
        "sim_instructions": raw.get("sim_instructions", 0),
        "events_per_sec": raw["events_per_sec"],
        "instructions_per_sec": raw["instructions_per_sec"],
        "pool": raw.get("pool", {}),
        "zones": zones,
        "zone_share_total": share_total,
        "histograms": {
            path: {k: hist[k] for k in ("count", "mean", "p50", "p90",
                                        "p99", "max") if k in hist}
            for path, hist in sorted(hists.items())
        },
        "sampler_rows": len((raw.get("sampler") or {}).get("rows", [])),
    }
    return out


def check_sim_baseline(out, path, tolerance):
    try:
        with open(path) as f:
            base = json.load(f)
    except FileNotFoundError:
        fail(f"baseline {path} not found (generate with --write-baseline)")

    bad = []
    for field in SIM_THROUGHPUT_FIELDS:
        if field in base and out[field] * tolerance < base[field]:
            bad.append(f"{field}: {out[field]:.3g} vs baseline "
                       f"{base[field]:.3g} (>{tolerance:.1f}x slower)")
    for field in SIM_LATENCY_FIELDS:
        if field in base and out[field] > base[field] * tolerance:
            bad.append(f"{field}: {out[field]:.3g}s vs baseline "
                       f"{base[field]:.3g}s (>{tolerance:.1f}x slower)")
    if bad:
        fail("simulator performance regression vs " + path + ":\n  " +
             "\n  ".join(bad))
    print(f"bench_json: no sim regression vs {path} "
          f"(tolerance {tolerance:.1f}x)")


def run_sim_mode(args):
    out = build_sim(args)

    if args.baseline and not args.write_baseline:
        check_sim_baseline(out, args.baseline, args.tolerance)

    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_json: wrote {args.out}")

    if args.write_baseline:
        if not args.baseline:
            fail("--write-baseline needs --baseline for the target path")
        base = {field: out[field]
                for field in SIM_THROUGHPUT_FIELDS + SIM_LATENCY_FIELDS}
        with open(args.baseline, "w") as f:
            json.dump(base, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_json: wrote baseline {args.baseline}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--microbench",
                    help="google-benchmark JSON from crypto_microbench")
    ap.add_argument("--fig4-seconds", type=float,
                    help="wall-clock seconds of the fig4 smoke run")
    ap.add_argument("--sim-metrics",
                    help="secmem-bench --metrics-out JSON; switches to "
                         "the BENCH_sim flow")
    ap.add_argument("--out", required=True,
                    help="where to write BENCH_crypto.json / BENCH_sim.json")
    ap.add_argument("--baseline", default=None,
                    help="checked-in baseline to compare against")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write the baseline instead of comparing")
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="allowed slowdown factor vs the baseline")
    args = ap.parse_args()

    if args.sim_metrics:
        run_sim_mode(args)
        return
    if not args.microbench or args.fig4_seconds is None:
        fail("--microbench and --fig4-seconds are required without "
             "--sim-metrics")

    out = build(args)
    check_speedup(out)
    check_backends(out)

    if args.baseline and not args.write_baseline:
        check_baseline(out, args.baseline, args.tolerance)

    with open(args.out, "w") as f:
        json.dump(out, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_json: wrote {args.out}")

    if args.write_baseline:
        if not args.baseline:
            fail("--write-baseline needs --baseline for the target path")
        base = {k: v for k, v in out.items()
                if k not in ("host", "backends")}
        with open(args.baseline, "w") as f:
            json.dump(base, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"bench_json: wrote baseline {args.baseline}")


if __name__ == "__main__":
    main()
