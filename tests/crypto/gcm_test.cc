/**
 * @file
 * AES-GCM validation against the McGrew-Viega test vectors plus
 * seal/open round-trip and tamper-detection properties.
 */

#include <gtest/gtest.h>

#include <vector>

#include "crypto/bytes.hh"
#include "crypto/gcm.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

std::vector<std::uint8_t>
bytesFromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out(hex.size() / 2);
    fromHex(hex, out.data(), out.size());
    return out;
}

struct Vectors
{
    std::string key, iv, pt, aad, ct, tag;
};

// McGrew & Viega, "The Galois/Counter Mode of Operation", AES-128 cases.
const Vectors kCases[] = {
    // Test case 1: empty plaintext.
    {"00000000000000000000000000000000", "000000000000000000000000", "", "",
     "", "58e2fccefa7e3061367f1d57a4e7455a"},
    // Test case 2: one zero block.
    {"00000000000000000000000000000000", "000000000000000000000000",
     "00000000000000000000000000000000", "",
     "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    // Test case 3: four blocks.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    // Test case 4: partial last block + AAD.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
};

class GcmVectorTest : public ::testing::TestWithParam<int>
{
};

TEST_P(GcmVectorTest, SealMatchesPublishedVector)
{
    const Vectors &v = kCases[GetParam()];
    Gcm gcm(block16FromHex(v.key));
    std::uint8_t iv[12];
    fromHex(v.iv, iv, sizeof(iv));
    GcmSealed sealed = gcm.seal(iv, bytesFromHex(v.pt), bytesFromHex(v.aad));
    EXPECT_EQ(toHex(sealed.ciphertext.data(), sealed.ciphertext.size()),
              v.ct);
    EXPECT_EQ(toHex(sealed.tag), v.tag);
}

TEST_P(GcmVectorTest, OpenAcceptsAndRecovers)
{
    const Vectors &v = kCases[GetParam()];
    Gcm gcm(block16FromHex(v.key));
    std::uint8_t iv[12];
    fromHex(v.iv, iv, sizeof(iv));
    std::vector<std::uint8_t> pt;
    ASSERT_TRUE(gcm.open(iv, bytesFromHex(v.ct), block16FromHex(v.tag), pt,
                         bytesFromHex(v.aad)));
    EXPECT_EQ(toHex(pt.data(), pt.size()), v.pt);
}

INSTANTIATE_TEST_SUITE_P(McGrewViega, GcmVectorTest,
                         ::testing::Range(0, 4));

TEST(Gcm, TamperedCiphertextRejected)
{
    Gcm gcm(block16FromHex("feffe9928665731c6d6a8f9467308308"));
    std::uint8_t iv[12];
    fromHex("cafebabefacedbaddecaf888", iv, sizeof(iv));
    std::vector<std::uint8_t> pt(64, 0x42);
    GcmSealed sealed = gcm.seal(iv, pt);

    Rng rng(21);
    for (int trial = 0; trial < 64; ++trial) {
        auto ct = sealed.ciphertext;
        ct[rng.below(ct.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(gcm.open(iv, ct, sealed.tag, out));
    }
}

TEST(Gcm, TamperedTagRejected)
{
    Gcm gcm(block16FromHex("feffe9928665731c6d6a8f9467308308"));
    std::uint8_t iv[12];
    fromHex("cafebabefacedbaddecaf888", iv, sizeof(iv));
    std::vector<std::uint8_t> pt(48, 0x17);
    GcmSealed sealed = gcm.seal(iv, pt);
    for (int bit = 0; bit < 128; ++bit) {
        Block16 bad = sealed.tag;
        bad.b[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        std::vector<std::uint8_t> out;
        EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, bad, out));
    }
}

TEST(Gcm, TamperedAadRejected)
{
    Gcm gcm(block16FromHex("feffe9928665731c6d6a8f9467308308"));
    std::uint8_t iv[12];
    fromHex("cafebabefacedbaddecaf888", iv, sizeof(iv));
    std::vector<std::uint8_t> pt(32, 0x01), aad(20, 0x02);
    GcmSealed sealed = gcm.seal(iv, pt, aad);
    aad[3] ^= 0x80;
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(gcm.open(iv, sealed.ciphertext, sealed.tag, out, aad));
}

TEST(Gcm, RoundTripRandomSizes)
{
    Gcm gcm(block16FromHex("000102030405060708090a0b0c0d0e0f"));
    Rng rng(22);
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 65u, 255u}) {
        std::vector<std::uint8_t> pt(len), out;
        for (auto &byte : pt)
            byte = static_cast<std::uint8_t>(rng.next());
        std::uint8_t iv[12];
        for (auto &byte : iv)
            byte = static_cast<std::uint8_t>(rng.next());
        GcmSealed sealed = gcm.seal(iv, pt);
        ASSERT_TRUE(gcm.open(iv, sealed.ciphertext, sealed.tag, out));
        EXPECT_EQ(out, pt) << "length " << len;
    }
}

TEST(Gcm, PadReuseLeaksXorOfPlaintexts)
{
    // The fundamental counter-mode hazard the paper's split counters are
    // designed to avoid: same key + same IV => C1 ^ C2 == P1 ^ P2.
    Gcm gcm(block16FromHex("000102030405060708090a0b0c0d0e0f"));
    std::uint8_t iv[12] = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    std::vector<std::uint8_t> p1(32), p2(32);
    for (std::size_t i = 0; i < 32; ++i) {
        p1[i] = static_cast<std::uint8_t>(i);
        p2[i] = static_cast<std::uint8_t>(0xa0 + i);
    }
    GcmSealed s1 = gcm.seal(iv, p1);
    GcmSealed s2 = gcm.seal(iv, p2);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_EQ(s1.ciphertext[i] ^ s2.ciphertext[i], p1[i] ^ p2[i]);
    }
}

} // namespace
} // namespace secmem
