/**
 * @file
 * Tests for the crypto-backend registry and selection logic, plus
 * per-backend known-answer and thread-safety checks.
 *
 * The selection tests go through resolveCryptoBackend(), the pure
 * flag/env/auto precedence function, so they cover every combination
 * without mutating the process environment. The known-answer vectors
 * (FIPS-197 Appendix C.1, the SP 800-38D test cases) run once per
 * compiled-in, CPU-supported backend through the pinned-backend
 * constructors; the heavier randomized validation lives in
 * tests/ref/differential_test.cc.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/backend/backend.hh"
#include "crypto/gcm.hh"

namespace secmem
{
namespace
{

std::vector<const CryptoBackend *>
availableBackends()
{
    std::vector<const CryptoBackend *> v;
    for (const CryptoBackend *b : cryptoBackends())
        if (b->available())
            v.push_back(b);
    return v;
}

// ---- registry shape -----------------------------------------------------

TEST(BackendRegistry, PortableAndCtAreAlwaysCompiledIn)
{
    ASSERT_NE(findCryptoBackend("portable"), nullptr);
    ASSERT_NE(findCryptoBackend("ct"), nullptr);
    EXPECT_TRUE(findCryptoBackend("portable")->available())
        << "the portable backend must run on every host";
    EXPECT_TRUE(findCryptoBackend("ct")->available());
}

TEST(BackendRegistry, ListIsSortedByRankWithUniqueNames)
{
    const auto &list = cryptoBackends();
    ASSERT_GE(list.size(), 2u);
    std::set<std::string> names;
    for (std::size_t i = 0; i < list.size(); ++i) {
        EXPECT_TRUE(names.insert(list[i]->name()).second)
            << "duplicate backend name " << list[i]->name();
        if (i > 0)
            EXPECT_GE(list[i - 1]->rank(), list[i]->rank());
    }
}

TEST(BackendRegistry, FindRejectsUnknownNames)
{
    EXPECT_EQ(findCryptoBackend("nope"), nullptr);
    EXPECT_EQ(findCryptoBackend(""), nullptr);
    EXPECT_EQ(findCryptoBackend("Portable"), nullptr) << "names are exact";
}

// ---- flag / env / auto precedence ---------------------------------------

TEST(BackendSelection, FlagBeatsEnv)
{
    std::string err;
    const CryptoBackend *b = resolveCryptoBackend("ct", "portable", &err);
    ASSERT_NE(b, nullptr) << err;
    EXPECT_STREQ(b->name(), "ct");
}

TEST(BackendSelection, EnvUsedWhenNoFlag)
{
    std::string err;
    const CryptoBackend *b = resolveCryptoBackend(nullptr, "ct", &err);
    ASSERT_NE(b, nullptr) << err;
    EXPECT_STREQ(b->name(), "ct");
}

TEST(BackendSelection, EmptyNamesMeanAuto)
{
    std::string err;
    const CryptoBackend *b = resolveCryptoBackend("", "", &err);
    ASSERT_NE(b, nullptr) << err;
    EXPECT_TRUE(b->available());
}

TEST(BackendSelection, AutoPicksHighestAvailableRankAndNeverCt)
{
    std::string err;
    const CryptoBackend *b = resolveCryptoBackend(nullptr, nullptr, &err);
    ASSERT_NE(b, nullptr) << err;
    EXPECT_TRUE(b->available());
    // The ct tier ranks below portable precisely so that slow,
    // timing-uniform code is never chosen implicitly.
    EXPECT_STRNE(b->name(), "ct");
    for (const CryptoBackend *other : availableBackends())
        EXPECT_GE(b->rank(), other->rank());
}

TEST(BackendSelection, ForcedPortableOverridesAutoSelection)
{
    // The fallback path, forced: even when a better backend is
    // available, naming portable must pin portable.
    std::string err;
    const CryptoBackend *b = resolveCryptoBackend("portable", nullptr, &err);
    ASSERT_NE(b, nullptr) << err;
    EXPECT_STREQ(b->name(), "portable");
}

TEST(BackendSelection, UnknownFlagNameIsAnErrorNamingTheFlag)
{
    std::string err;
    EXPECT_EQ(resolveCryptoBackend("nope", nullptr, &err), nullptr);
    EXPECT_NE(err.find("nope"), std::string::npos) << err;
    EXPECT_NE(err.find("--crypto-backend"), std::string::npos) << err;
    EXPECT_NE(err.find("portable"), std::string::npos)
        << "error should list the compiled-in backends: " << err;
}

TEST(BackendSelection, UnknownEnvNameIsAnErrorNamingTheVariable)
{
    std::string err;
    EXPECT_EQ(resolveCryptoBackend(nullptr, "nope", &err), nullptr);
    EXPECT_NE(err.find("SECMEM_CRYPTO_BACKEND"), std::string::npos) << err;
}

TEST(BackendSelection, UnknownFlagDoesNotFallBackToEnv)
{
    // An explicit name must never be silently papered over by the
    // weaker setting.
    std::string err;
    EXPECT_EQ(resolveCryptoBackend("nope", "portable", &err), nullptr);
}

TEST(BackendSelection, SetActiveRoundTripsAndRejectsUnknown)
{
    std::string original = activeCryptoBackend().name();

    std::string err;
    ASSERT_TRUE(setActiveCryptoBackend("portable", &err)) << err;
    EXPECT_STREQ(activeCryptoBackend().name(), "portable");
    // New datapath objects bind to the newly active backend.
    EXPECT_STREQ(Aes128().backend().name(), "portable");

    ASSERT_TRUE(setActiveCryptoBackend("ct", &err)) << err;
    EXPECT_STREQ(activeCryptoBackend().name(), "ct");

    EXPECT_FALSE(setActiveCryptoBackend("nope", &err));
    EXPECT_NE(err.find("nope"), std::string::npos);
    EXPECT_STREQ(activeCryptoBackend().name(), "ct")
        << "a failed set must leave the active backend unchanged";

    ASSERT_TRUE(setActiveCryptoBackend(original, &err)) << err;
    EXPECT_EQ(std::string(activeCryptoBackend().name()), original);
}

// ---- per-backend known answers ------------------------------------------

class BackendKat : public ::testing::TestWithParam<const CryptoBackend *>
{};

TEST_P(BackendKat, Fips197AppendixC1)
{
    const CryptoBackend &be = *GetParam();
    const std::uint8_t key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                  0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                  0x0e, 0x0f};
    Block16 pt{{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99,
                0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}};
    Block16 expect{{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8,
                    0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a}};
    Aes128 aes(be, key);
    EXPECT_EQ(aes.encrypt(pt), expect);
    EXPECT_EQ(aes.decrypt(expect), pt);
}

TEST_P(BackendKat, Sp800_38dTestCase2)
{
    // All-zero key, IV and one zero plaintext block: exercises the AES
    // pad path, the hash-subkey derivation and the GHASH multiply in
    // one known vector.
    const CryptoBackend &be = *GetParam();
    Gcm gcm(be, Block16{});
    Block16 h_expect{{0x66, 0xe9, 0x4b, 0xd4, 0xef, 0x8a, 0x2c, 0x3b, 0x88,
                      0x4c, 0xfa, 0x59, 0xca, 0x34, 0x2b, 0x2e}};
    EXPECT_EQ(gcm.hashSubkey(), h_expect);

    std::uint8_t iv[12] = {};
    GcmSealed sealed = gcm.seal(iv, std::vector<std::uint8_t>(16, 0));
    const std::uint8_t ct_expect[16] = {0x03, 0x88, 0xda, 0xce, 0x60, 0xb6,
                                        0xa3, 0x92, 0xf3, 0x28, 0xc2, 0xb9,
                                        0x71, 0xb2, 0xfe, 0x78};
    Block16 tag_expect{{0xab, 0x6e, 0x47, 0xd4, 0x2c, 0xec, 0x13, 0xbd,
                        0xf5, 0x3a, 0x67, 0xb2, 0x12, 0x57, 0xbd, 0xdf}};
    ASSERT_EQ(sealed.ciphertext.size(), 16u);
    EXPECT_EQ(std::memcmp(sealed.ciphertext.data(), ct_expect, 16), 0);
    EXPECT_EQ(sealed.tag, tag_expect);
}

TEST_P(BackendKat, AgreesWithPortableOnRandomishBlocks)
{
    const CryptoBackend &be = *GetParam();
    const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                  0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                  0x4f, 0x3c};
    Aes128 mine(be, key);
    Aes128 portable(portableCryptoBackend(), key);
    Block16 pt{};
    for (int round = 0; round < 256; ++round) {
        pt.b[round % 16] ^= static_cast<std::uint8_t>(round * 37 + 11);
        Block16 ct = mine.encrypt(pt);
        EXPECT_EQ(ct, portable.encrypt(pt)) << "round " << round;
        EXPECT_EQ(mine.decrypt(ct), pt) << "round " << round;
    }
}

TEST_P(BackendKat, CopiedCipherIsIndependentlyUsable)
{
    // AesSchedule is plain bytes: a copied Aes128 must work without
    // any rebinding, whatever layout the backend placed inside.
    const CryptoBackend &be = *GetParam();
    const std::uint8_t key[16] = {1, 2, 3, 4, 5, 6, 7, 8,
                                  9, 10, 11, 12, 13, 14, 15, 16};
    Aes128 a(be, key);
    Aes128 b = a;
    Block16 pt{{0xde, 0xad, 0xbe, 0xef}};
    EXPECT_EQ(a.encrypt(pt), b.encrypt(pt));
    EXPECT_EQ(b.decrypt(a.encrypt(pt)), pt);
}

TEST_P(BackendKat, SharedCipherDecryptsSafelyFromManyThreads)
{
    // Regression test for the lazily built decryption schedule: the
    // work-stealing engine shares one keyed Aes128 between jobs, and
    // the first decrypt used to build mutable state on demand. The
    // schedule is now expanded eagerly for both directions, so
    // concurrent first decrypts must all succeed bit-exactly.
    const CryptoBackend &be = *GetParam();
    const std::uint8_t key[16] = {0xfe, 0xed, 0xfa, 0xce, 0xde, 0xad, 0xbe,
                                  0xef, 0xfe, 0xed, 0xfa, 0xce, 0xde, 0xad,
                                  0xbe, 0xef};
    Block16 pt{{0x42}};
    Block16 ct = Aes128(be, key).encrypt(pt);

    const Aes128 shared(be, key); // never encrypted/decrypted yet
    constexpr int kThreads = 4;
    constexpr int kIters = 200;
    std::vector<int> bad(kThreads, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i)
                if (!(shared.decrypt(ct) == pt))
                    ++bad[t];
        });
    for (auto &th : threads)
        th.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(bad[t], 0) << "thread " << t << " saw corrupt decrypts";
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendKat, ::testing::ValuesIn(availableBackends()),
    [](const ::testing::TestParamInfo<const CryptoBackend *> &info) {
        return std::string(info.param->name());
    });

} // namespace
} // namespace secmem
