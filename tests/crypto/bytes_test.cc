/**
 * @file
 * Byte-container and hex-codec tests.
 */

#include <gtest/gtest.h>

#include "crypto/bytes.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

TEST(Bytes, HexRoundTrip)
{
    std::uint8_t data[4] = {0x00, 0x7f, 0x80, 0xff};
    EXPECT_EQ(toHex(data, 4), "007f80ff");
    std::uint8_t back[4];
    EXPECT_EQ(fromHex("007f80ff", back, 4), 4u);
    EXPECT_EQ(std::memcmp(back, data, 4), 0);
}

TEST(Bytes, FromHexAcceptsUppercase)
{
    std::uint8_t out[2];
    fromHex("ABcd", out, 2);
    EXPECT_EQ(out[0], 0xab);
    EXPECT_EQ(out[1], 0xcd);
}

TEST(Bytes, Block16FromHex)
{
    Block16 b = block16FromHex("000102030405060708090a0b0c0d0e0f");
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(b.b[i], i);
}

TEST(Bytes, Block16Xor)
{
    Block16 a = block16FromHex("ffffffffffffffffffffffffffffffff");
    Block16 b = block16FromHex("0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f0f");
    Block16 c = a ^ b;
    for (auto byte : c.b)
        EXPECT_EQ(byte, 0xf0);
    a ^= b;
    EXPECT_EQ(a, c);
}

TEST(Bytes, Block64ChunkAccessors)
{
    Block64 blk;
    for (std::size_t i = 0; i < kBlockBytes; ++i)
        blk.b[i] = static_cast<std::uint8_t>(i);
    for (unsigned c = 0; c < kChunksPerBlock; ++c) {
        Block16 chunk = blk.chunk(c);
        for (unsigned i = 0; i < kChunkBytes; ++i)
            EXPECT_EQ(chunk.b[i], c * 16 + i);
    }
    Block16 replacement{};
    for (auto &byte : replacement.b)
        byte = 0xee;
    blk.setChunk(2, replacement);
    EXPECT_EQ(blk.chunk(2), replacement);
    EXPECT_EQ(blk.b[31], 31); // neighbour chunk untouched
    EXPECT_EQ(blk.b[48], 48);
}

TEST(Bytes, Block64XorIsElementwise)
{
    Rng rng(5);
    Block64 a, b;
    for (std::size_t i = 0; i < kBlockBytes; ++i) {
        a.b[i] = static_cast<std::uint8_t>(rng.next());
        b.b[i] = static_cast<std::uint8_t>(rng.next());
    }
    Block64 c = a ^ b;
    for (std::size_t i = 0; i < kBlockBytes; ++i)
        EXPECT_EQ(c.b[i], a.b[i] ^ b.b[i]);
    // Self-inverse.
    EXPECT_EQ((c ^ b), a);
}

TEST(Bytes, EqualityIsValueBased)
{
    Block64 a{}, b{};
    EXPECT_EQ(a, b);
    b.b[63] = 1;
    EXPECT_NE(a, b);
}

TEST(Types, BlockBaseAndOffset)
{
    EXPECT_EQ(blockBase(0x1234), 0x1200u);
    EXPECT_EQ(blockOffset(0x1234), 0x34u);
    EXPECT_EQ(blockBase(0x1200), 0x1200u);
}

TEST(Types, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(96));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(1ull << 32), 32u);
}

} // namespace
} // namespace secmem
