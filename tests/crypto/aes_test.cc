/**
 * @file
 * AES-128 validation against FIPS-197 vectors plus round-trip and
 * diffusion property tests.
 */

#include <gtest/gtest.h>

#include "crypto/aes.hh"
#include "crypto/bytes.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

TEST(Aes128, Fips197AppendixCVector)
{
    // FIPS-197 Appendix C.1: AES-128 known-answer test.
    Block16 key = block16FromHex("000102030405060708090a0b0c0d0e0f");
    Block16 pt = block16FromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key);
    EXPECT_EQ(toHex(aes.encrypt(pt)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Fips197AppendixBVector)
{
    // FIPS-197 Appendix B worked example.
    Block16 key = block16FromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Block16 pt = block16FromHex("3243f6a8885a308d313198a2e0370734");
    Aes128 aes(key);
    EXPECT_EQ(toHex(aes.encrypt(pt)), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, GcmHashSubkeyVector)
{
    // McGrew-Viega GCM test case 1: H = AES_K(0) for the zero key.
    Block16 key{};
    Block16 zero{};
    Aes128 aes(key);
    EXPECT_EQ(toHex(aes.encrypt(zero)),
              "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        Block16 key, pt;
        for (auto &byte : key.b)
            byte = static_cast<std::uint8_t>(rng.next());
        for (auto &byte : pt.b)
            byte = static_cast<std::uint8_t>(rng.next());
        Aes128 aes(key);
        EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
}

TEST(Aes128, InPlaceOperationWorks)
{
    Block16 key = block16FromHex("000102030405060708090a0b0c0d0e0f");
    Block16 buf = block16FromHex("00112233445566778899aabbccddeeff");
    Aes128 aes(key);
    aes.encryptBlock(buf.b.data(), buf.b.data());
    EXPECT_EQ(toHex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.decryptBlock(buf.b.data(), buf.b.data());
    EXPECT_EQ(toHex(buf), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, SingleBitKeyChangeDiffuses)
{
    Block16 key{};
    Block16 pt{};
    Aes128 a(key);
    key.b[0] ^= 1;
    Aes128 b(key);
    Block16 ca = a.encrypt(pt), cb = b.encrypt(pt);
    int differing_bits = 0;
    for (std::size_t i = 0; i < kChunkBytes; ++i)
        differing_bits += __builtin_popcount(ca.b[i] ^ cb.b[i]);
    // Avalanche: expect roughly half of 128 bits to flip.
    EXPECT_GT(differing_bits, 30);
    EXPECT_LT(differing_bits, 98);
}

TEST(Aes128, SingleBitPlaintextChangeDiffuses)
{
    Block16 key = block16FromHex("2b7e151628aed2a6abf7158809cf4f3c");
    Aes128 aes(key);
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        Block16 pt;
        for (auto &byte : pt.b)
            byte = static_cast<std::uint8_t>(rng.next());
        Block16 pt2 = pt;
        pt2.b[rng.below(16)] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        Block16 ca = aes.encrypt(pt), cb = aes.encrypt(pt2);
        int differing_bits = 0;
        for (std::size_t i = 0; i < kChunkBytes; ++i)
            differing_bits += __builtin_popcount(ca.b[i] ^ cb.b[i]);
        EXPECT_GT(differing_bits, 30);
    }
}

TEST(Aes128, RekeyingChangesOutput)
{
    Block16 pt = block16FromHex("00112233445566778899aabbccddeeff");
    Aes128 aes;
    Block16 k1 = block16FromHex("000102030405060708090a0b0c0d0e0f");
    Block16 k2 = block16FromHex("0f0e0d0c0b0a09080706050403020100");
    aes.setKey(k1.b.data());
    Block16 c1 = aes.encrypt(pt);
    aes.setKey(k2.b.data());
    Block16 c2 = aes.encrypt(pt);
    EXPECT_NE(c1, c2);
    aes.setKey(k1.b.data());
    EXPECT_EQ(aes.encrypt(pt), c1);
}

} // namespace
} // namespace secmem
