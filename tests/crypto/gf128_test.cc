/**
 * @file
 * GF(2^128) algebraic property tests and a known product from the
 * GCM specification.
 */

#include <gtest/gtest.h>

#include "crypto/bytes.hh"
#include "crypto/gf128.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

Gf128
randomElem(Rng &rng)
{
    return Gf128{rng.next(), rng.next()};
}

TEST(Gf128, BlockRoundTrip)
{
    Block16 b = block16FromHex("0123456789abcdeffedcba9876543210");
    EXPECT_EQ(Gf128::fromBlock(b).toBlock(), b);
}

TEST(Gf128, MulByZeroIsZero)
{
    Rng rng(11);
    Gf128 zero{0, 0};
    for (int i = 0; i < 20; ++i) {
        Gf128 x = randomElem(rng);
        EXPECT_EQ(gf128Mul(x, zero), zero);
        EXPECT_EQ(gf128Mul(zero, x), zero);
    }
}

TEST(Gf128, MulByOneIsIdentity)
{
    // In GCM's reflected convention the element "1" is the block
    // 0x80000000...0 (leftmost bit set = coefficient of x^0).
    Gf128 one{0x8000000000000000ull, 0};
    Rng rng(12);
    for (int i = 0; i < 20; ++i) {
        Gf128 x = randomElem(rng);
        EXPECT_EQ(gf128Mul(x, one), x);
        EXPECT_EQ(gf128Mul(one, x), x);
    }
}

TEST(Gf128, Commutative)
{
    Rng rng(13);
    for (int i = 0; i < 50; ++i) {
        Gf128 x = randomElem(rng), y = randomElem(rng);
        EXPECT_EQ(gf128Mul(x, y), gf128Mul(y, x));
    }
}

TEST(Gf128, Associative)
{
    Rng rng(14);
    for (int i = 0; i < 30; ++i) {
        Gf128 x = randomElem(rng), y = randomElem(rng), z = randomElem(rng);
        EXPECT_EQ(gf128Mul(gf128Mul(x, y), z), gf128Mul(x, gf128Mul(y, z)));
    }
}

TEST(Gf128, DistributesOverXor)
{
    Rng rng(15);
    for (int i = 0; i < 30; ++i) {
        Gf128 x = randomElem(rng), y = randomElem(rng), z = randomElem(rng);
        EXPECT_EQ(gf128Mul(x, y ^ z), gf128Mul(x, y) ^ gf128Mul(x, z));
    }
}

TEST(Gf128, KnownProductFromGcmSpec)
{
    // From the GCM spec's worked example (test case 2 intermediate):
    // X1 = C1 = 0388dace60b6a392f328c2b971b2fe78,
    // H = 66e94bd4ef8a2c3b884cfa59ca342b2e,
    // X1 * H = 5e2ec746917062882c85b0685353deb7.
    Gf128 c1 = Gf128::fromBlock(
        block16FromHex("0388dace60b6a392f328c2b971b2fe78"));
    Gf128 h = Gf128::fromBlock(
        block16FromHex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
    EXPECT_EQ(toHex(gf128Mul(c1, h).toBlock()),
              "5e2ec746917062882c85b0685353deb7");
}

} // namespace
} // namespace secmem
