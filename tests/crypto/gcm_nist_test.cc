/**
 * @file
 * AES-128-GCM validation against NIST CAVS (gcmEncryptExtIV128)
 * vectors — 96-bit IVs, with and without AAD, including AAD-only
 * (GMAC) and non-multiple-of-16 plaintext/AAD lengths — plus GHASH
 * composition and length-encoding checks against raw gf128Mul().
 *
 * These vectors pin the exact bit order and length encoding of
 * gf128.cc / ghash.hh that the reference model (src/ref) assumes
 * when it recomputes GCM tags from gf128Mul() directly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hh"
#include "crypto/gcm.hh"
#include "crypto/ghash.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

std::vector<std::uint8_t>
bytesFromHex(const std::string &hex)
{
    std::vector<std::uint8_t> out(hex.size() / 2);
    fromHex(hex, out.data(), out.size());
    return out;
}

struct NistVector
{
    const char *name;
    std::string key, iv, pt, aad, ct, tag;
};

// NIST CAVS 14.0 gcmEncryptExtIV128, 96-bit IV, 128-bit tag.
const NistVector kNist[] = {
    {"EmptyPtEmptyAad",
     "00000000000000000000000000000000", "000000000000000000000000",
     "", "", "", "58e2fccefa7e3061367f1d57a4e7455a"},
    {"OneZeroBlock",
     "00000000000000000000000000000000", "000000000000000000000000",
     "00000000000000000000000000000000", "",
     "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    {"OneBlockNoAad",
     "7fddb57453c241d03efbed3ac44e371c", "ee283a3fc75575e33efd4887",
     "d5de42b461646c255c87bd2962d3b9a2", "",
     "2ccda4a5415cb91e135c2a0f78c9b2fd",
     "b36d1df9b9d5e596f83e8b7f52971cb3"},
    {"OneBlockWithAad",
     "c939cc13397c1d37de6ae0e1cb7c423c", "b3d8cc017cbb89b39e0f67e2",
     "c3b3c41f113a31b73d9a5cd432103069",
     "24825602bd12a984e0092d3e448eda5f",
     "93fe7d9e9bfd10348a5606e5cafa7354",
     "0032a1dc85f1c9786925a2e71d8272dd"},
    {"AadOnlyGmac",
     "77be63708971c4e240d1cb79e8d77feb", "e0e00f19fed7ba0136a797f3",
     "", "7a43ec1d9c0a5a78a0b16533a6213cab",
     "", "209fcc8d3675ed938e9c7166709dd946"},
    {"PartialBlocks51ByPt20ByAad",
     "fe47fcce5fc32665d2ae399e4eec72ba", "5adb9609dbaeb58cbd6e7275",
     "7c0e88c88899a779228465074797cd4c2e1498d259b54390b85e3eef1c02df60"
     "e743f1b840382c4bccaf3bafb4ca8429bea063",
     "88319d6e1d3ffa5f987199166c8a9b56c2aeba5a",
     "98f4826f05a265e6dd2be82db241c0fbbbf9ffb1c173aa83964b7cf539304373"
     "6365253ddbc5db8778371495da76d269e5db3e",
     "291ef1982e4defedaa2249f898556b47"},
};

class GcmNistTest : public ::testing::TestWithParam<int>
{
};

TEST_P(GcmNistTest, SealMatchesNistVector)
{
    const NistVector &v = kNist[GetParam()];
    Gcm gcm(block16FromHex(v.key));
    std::uint8_t iv[12];
    fromHex(v.iv, iv, sizeof(iv));
    GcmSealed sealed = gcm.seal(iv, bytesFromHex(v.pt), bytesFromHex(v.aad));
    EXPECT_EQ(toHex(sealed.ciphertext.data(), sealed.ciphertext.size()),
              v.ct)
        << v.name;
    EXPECT_EQ(toHex(sealed.tag), v.tag) << v.name;
}

TEST_P(GcmNistTest, OpenAcceptsAndRecovers)
{
    const NistVector &v = kNist[GetParam()];
    Gcm gcm(block16FromHex(v.key));
    std::uint8_t iv[12];
    fromHex(v.iv, iv, sizeof(iv));
    std::vector<std::uint8_t> pt_out;
    EXPECT_TRUE(gcm.open(iv, bytesFromHex(v.ct), block16FromHex(v.tag),
                         pt_out, bytesFromHex(v.aad)))
        << v.name;
    EXPECT_EQ(toHex(pt_out.data(), pt_out.size()), v.pt) << v.name;
}

TEST_P(GcmNistTest, OpenRejectsCorruptedTag)
{
    const NistVector &v = kNist[GetParam()];
    Gcm gcm(block16FromHex(v.key));
    std::uint8_t iv[12];
    fromHex(v.iv, iv, sizeof(iv));
    Block16 bad_tag = block16FromHex(v.tag);
    bad_tag.b[0] ^= 0x01;
    std::vector<std::uint8_t> pt_out;
    EXPECT_FALSE(gcm.open(iv, bytesFromHex(v.ct), bad_tag, pt_out,
                          bytesFromHex(v.aad)))
        << v.name;
}

INSTANTIATE_TEST_SUITE_P(Vectors, GcmNistTest,
                         ::testing::Range(0, int(std::size(kNist))));

// ---- GHASH vs raw gf128Mul composition ---------------------------------

TEST(GhashComposition, MatchesDirectGf128MulChain)
{
    Rng rng(11);
    Block16 h;
    for (auto &byte : h.b)
        byte = static_cast<std::uint8_t>(rng.next());

    std::vector<Block16> chunks(7);
    for (auto &c : chunks)
        for (auto &byte : c.b)
            byte = static_cast<std::uint8_t>(rng.next());

    // Y_i = (Y_{i-1} ^ X_i) * H, built from gf128Mul alone.
    Gf128 hh = Gf128::fromBlock(h);
    Gf128 y{0, 0};
    for (const Block16 &c : chunks)
        y = gf128Mul(y ^ Gf128::fromBlock(c), hh);

    Ghash ghash(h);
    for (const Block16 &c : chunks)
        ghash.update(c);
    EXPECT_EQ(ghash.digest(), y.toBlock());
}

TEST(GhashComposition, UpdateLengthsEncodesBigEndianBitCounts)
{
    Block16 h = block16FromHex("66e94bd4ef8a2c3b884cfa59ca342b2e");
    const std::uint64_t aad_bits = 0x0123456789abcdefULL;
    const std::uint64_t ct_bits = 0xfedcba9876543210ULL;

    // GCM length block: [aad_bits]_64 || [ct_bits]_64, big-endian.
    Block16 lenblk;
    for (unsigned i = 0; i < 8; ++i) {
        lenblk.b[7 - i] = static_cast<std::uint8_t>(aad_bits >> (8 * i));
        lenblk.b[15 - i] = static_cast<std::uint8_t>(ct_bits >> (8 * i));
    }

    Ghash via_lengths(h);
    via_lengths.updateLengths(aad_bits, ct_bits);
    Ghash via_block(h);
    via_block.update(lenblk);
    EXPECT_EQ(via_lengths.digest(), via_block.digest());
}

// ---- gf128 algebraic identities ----------------------------------------

TEST(Gf128Algebra, IdentityElementIsLeadingBit)
{
    // In the GCM bit convention the polynomial "1" is the block
    // 0x80 00 .. 00 (leftmost bit of the byte stream = x^0).
    Gf128 one = Gf128::fromBlock(
        block16FromHex("80000000000000000000000000000000"));
    Rng rng(12);
    for (int i = 0; i < 32; ++i) {
        Block16 xb;
        for (auto &byte : xb.b)
            byte = static_cast<std::uint8_t>(rng.next());
        Gf128 x = Gf128::fromBlock(xb);
        EXPECT_EQ(gf128Mul(x, one), x);
        EXPECT_EQ(gf128Mul(one, x), x);
    }
}

TEST(Gf128Algebra, CommutativeAndDistributive)
{
    Rng rng(13);
    auto randElem = [&rng]() {
        Block16 b;
        for (auto &byte : b.b)
            byte = static_cast<std::uint8_t>(rng.next());
        return Gf128::fromBlock(b);
    };
    for (int i = 0; i < 32; ++i) {
        Gf128 x = randElem(), y = randElem(), z = randElem();
        EXPECT_EQ(gf128Mul(x, y), gf128Mul(y, x));
        EXPECT_EQ(gf128Mul(x ^ y, z), gf128Mul(x, z) ^ gf128Mul(y, z));
    }
}

TEST(Gf128Algebra, ZeroAnnihilates)
{
    Gf128 zero{0, 0};
    Gf128 x = Gf128::fromBlock(
        block16FromHex("66e94bd4ef8a2c3b884cfa59ca342b2e"));
    EXPECT_EQ(gf128Mul(x, zero), zero);
    EXPECT_EQ(gf128Mul(zero, x), zero);
}

} // namespace
} // namespace secmem
