/**
 * @file
 * Properties of the memory-encryption seed construction, counter-mode
 * block encryption and the per-block GCM / SHA-1 tags.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/bytes.hh"
#include "crypto/seed.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

Block64
randomBlock(Rng &rng)
{
    Block64 blk;
    for (auto &byte : blk.b)
        byte = static_cast<std::uint8_t>(rng.next());
    return blk;
}

TEST(Seed, InjectiveAcrossAddressCounterChunkDomain)
{
    std::set<std::string> seen;
    for (Addr addr : {Addr(0), Addr(64), Addr(4096), Addr(1) << 28}) {
        for (std::uint64_t ctr : {0ull, 1ull, 127ull, 1ull << 40}) {
            for (unsigned chunk = 0; chunk < kChunksPerBlock; ++chunk) {
                for (auto dom : {SeedDomain::Encrypt, SeedDomain::Auth}) {
                    Block16 s = makeSeed(addr, ctr, chunk, dom, 0xA5);
                    EXPECT_TRUE(seen.insert(toHex(s)).second)
                        << "seed collision at addr=" << addr
                        << " ctr=" << ctr << " chunk=" << chunk;
                }
            }
        }
    }
}

TEST(Seed, IvByteChangesSeed)
{
    Block16 a = makeSeed(64, 5, 0, SeedDomain::Encrypt, 0x00);
    Block16 b = makeSeed(64, 5, 0, SeedDomain::Encrypt, 0xFF);
    EXPECT_NE(a, b);
}

TEST(CtrCrypt, IsItsOwnInverse)
{
    Aes128 aes(block16FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Rng rng(31);
    for (int trial = 0; trial < 100; ++trial) {
        Block64 pt = randomBlock(rng);
        Addr addr = blockBase(rng.next() & 0x0fffffff);
        std::uint64_t ctr = rng.next();
        Block64 ct = ctrCrypt(aes, pt, addr, ctr, 0x11);
        EXPECT_NE(ct, pt);
        EXPECT_EQ(ctrCrypt(aes, ct, addr, ctr, 0x11), pt);
    }
}

TEST(CtrCrypt, DifferentCountersGiveDifferentCiphertext)
{
    Aes128 aes(block16FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Block64 pt{};
    Block64 c0 = ctrCrypt(aes, pt, 0, 0, 0x11);
    Block64 c1 = ctrCrypt(aes, pt, 0, 1, 0x11);
    EXPECT_NE(c0, c1);
}

TEST(CtrCrypt, DifferentAddressesGiveDifferentCiphertext)
{
    Aes128 aes(block16FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Block64 pt{};
    EXPECT_NE(ctrCrypt(aes, pt, 0, 0, 0x11),
              ctrCrypt(aes, pt, 64, 0, 0x11));
}

TEST(CtrCrypt, PadReuseLeaksPlaintextXor)
{
    // Demonstrates the counter-replay hazard of Section 4.3: encrypting
    // two values of the same block under the same counter leaks their XOR.
    Aes128 aes(block16FromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Rng rng(32);
    Block64 p1 = randomBlock(rng), p2 = randomBlock(rng);
    Block64 c1 = ctrCrypt(aes, p1, 4096, 42, 0x11);
    Block64 c2 = ctrCrypt(aes, p2, 4096, 42, 0x11);
    EXPECT_EQ(c1 ^ c2, p1 ^ p2);
}

TEST(GcmBlockTag, BindsCiphertextAddressAndCounter)
{
    Aes128 aes(block16FromHex("000102030405060708090a0b0c0d0e0f"));
    Block16 h = aes.encrypt(Block16{});
    Rng rng(33);
    Block64 ct = randomBlock(rng);

    Block16 base = gcmBlockTag(aes, h, ct, 4096, 7, 0x22);

    Block64 ct2 = ct;
    ct2.b[17] ^= 1;
    EXPECT_NE(gcmBlockTag(aes, h, ct2, 4096, 7, 0x22), base);
    EXPECT_NE(gcmBlockTag(aes, h, ct, 4160, 7, 0x22), base);
    EXPECT_NE(gcmBlockTag(aes, h, ct, 4096, 8, 0x22), base);
    EXPECT_NE(gcmBlockTag(aes, h, ct, 4096, 7, 0x23), base);
    EXPECT_EQ(gcmBlockTag(aes, h, ct, 4096, 7, 0x22), base);
}

TEST(Sha1BlockTag, BindsCiphertextAddressAndCounter)
{
    Block16 key = block16FromHex("00112233445566778899aabbccddeeff");
    Rng rng(34);
    Block64 ct = randomBlock(rng);
    Block16 base = sha1BlockTag(key, ct, 4096, 7);

    Block64 ct2 = ct;
    ct2.b[0] ^= 0x80;
    EXPECT_NE(sha1BlockTag(key, ct2, 4096, 7), base);
    EXPECT_NE(sha1BlockTag(key, ct, 4160, 7), base);
    EXPECT_NE(sha1BlockTag(key, ct, 4096, 8), base);
    EXPECT_EQ(sha1BlockTag(key, ct, 4096, 7), base);
}

TEST(ClipTag, KeepsLeadingBitsZeroesRest)
{
    Block16 tag = block16FromHex("ffffffffffffffffffffffffffffffff");
    Block16 c64 = clipTag(tag, 64);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(c64.b[i], 0xff);
    for (int i = 8; i < 16; ++i)
        EXPECT_EQ(c64.b[i], 0x00);

    Block16 c32 = clipTag(tag, 32);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c32.b[i], 0xff);
    for (int i = 4; i < 16; ++i)
        EXPECT_EQ(c32.b[i], 0x00);

    EXPECT_EQ(clipTag(tag, 128), tag);
}

TEST(ClipTag, CollisionProbabilityScalesWithSize)
{
    // Property sanity: random 32-bit-clipped tags collide no more often
    // than chance would suggest across a small sample.
    Aes128 aes(block16FromHex("000102030405060708090a0b0c0d0e0f"));
    Block16 h = aes.encrypt(Block16{});
    Rng rng(35);
    std::set<std::string> tags;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        Block64 ct = randomBlock(rng);
        tags.insert(toHex(clipTag(gcmBlockTag(aes, h, ct, 0, 0, 0), 32)));
    }
    // Expected collisions for 2000 samples over 2^32 is ~0.0005.
    EXPECT_GE(static_cast<int>(tags.size()), n - 1);
}

} // namespace
} // namespace secmem
