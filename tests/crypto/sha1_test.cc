/**
 * @file
 * SHA-1 validation against FIPS 180-1 vectors plus streaming-equivalence
 * properties.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/bytes.hh"
#include "crypto/sha1.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

std::string
hexDigest(const Sha1::Digest &d)
{
    return toHex(d.data(), d.size());
}

TEST(Sha1, EmptyString)
{
    Sha1 h;
    EXPECT_EQ(hexDigest(h.final()),
              "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc)
{
    Sha1 h;
    h.update("abc");
    EXPECT_EQ(hexDigest(h.final()),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage)
{
    Sha1 h;
    h.update("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
    EXPECT_EQ(hexDigest(h.final()),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs)
{
    Sha1 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(hexDigest(h.final()),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot)
{
    Rng rng(3);
    std::vector<std::uint8_t> data(1 << 12);
    for (auto &byte : data)
        byte = static_cast<std::uint8_t>(rng.next());

    Sha1::Digest oneshot = Sha1::digestOf(data.data(), data.size());

    // Feed in randomly sized pieces.
    Sha1 h;
    std::size_t off = 0;
    while (off < data.size()) {
        std::size_t n = 1 + rng.below(97);
        n = std::min(n, data.size() - off);
        h.update(data.data() + off, n);
        off += n;
    }
    EXPECT_EQ(h.final(), oneshot);
}

TEST(Sha1, ResetAllowsReuse)
{
    Sha1 h;
    h.update("abc");
    (void)h.final();
    h.reset();
    h.update("abc");
    EXPECT_EQ(hexDigest(h.final()),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, PaddingBoundaryKnownDigests)
{
    // FIPS 180-1 digests of 'a' * N at the padding boundaries: 55 is the
    // longest message padded within one block, 56 forces a second block,
    // 63/64 straddle the block edge, 119 is the two-block analogue of 55.
    struct BoundaryCase
    {
        std::size_t len;
        const char *digest;
    };
    const BoundaryCase kCases[] = {
        {55, "c1c8bbdc22796e28c0e15163d20899b65621d65a"},
        {56, "c2db330f6083854c99d4b5bfb6e8f29f201be699"},
        {63, "03f09f5b158a7a8cdad920bddc29b81c18a551f5"},
        {64, "0098ba824b5c16427bd7a1122a5a442a25ec644d"},
        {119, "ee971065aaa017e0632a8ca6c77bb3bf8b1dfc56"},
    };
    for (const BoundaryCase &c : kCases) {
        std::vector<std::uint8_t> msg(c.len, 'a');
        EXPECT_EQ(toHex(Sha1::digestOf(msg.data(), msg.size()).data(), 20),
                  c.digest)
            << "length " << c.len;
    }
}

TEST(Sha1, LengthExtensionBoundaries)
{
    // Hash messages of every length around the 55/56/64-byte padding
    // boundaries; verify streaming equals one-shot at each.
    for (std::size_t len = 50; len <= 70; ++len) {
        std::vector<std::uint8_t> msg(len, 0x5a);
        Sha1 stream;
        for (std::size_t i = 0; i < len; ++i)
            stream.update(&msg[i], 1);
        EXPECT_EQ(stream.final(), Sha1::digestOf(msg.data(), msg.size()))
            << "length " << len;
    }
}

} // namespace
} // namespace secmem
