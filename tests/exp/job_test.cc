/**
 * @file
 * JobSpec canonicalization/hash tests and RunOutput JSON round-trips.
 */

#include <gtest/gtest.h>

#include "exp/job.hh"

namespace secmem::exp
{
namespace
{

JobSpec
sampleSpec()
{
    return makeJob("Split", profileByName("gzip"), SecureMemConfig::split(),
                   RunLengths{10'000, 40'000});
}

TEST(JobSpec, HashIsStableAcrossCalls)
{
    JobSpec a = sampleSpec();
    JobSpec b = sampleSpec();
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.hash().size(), 32u);
    EXPECT_EQ(a.hash().find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

TEST(JobSpec, SchemeLabelIsCosmetic)
{
    JobSpec a = sampleSpec();
    JobSpec b = sampleSpec();
    b.scheme = "renamed";
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(JobSpec, ConfigChangesChangeTheHash)
{
    JobSpec base = sampleSpec();

    JobSpec cache = base;
    cache.config.ctrCacheBytes = 64 << 10;
    EXPECT_NE(base.hash(), cache.hash());

    JobSpec mode = base;
    mode.config.authMode = AuthMode::Safe;
    EXPECT_NE(base.hash(), mode.hash());

    JobSpec key = base;
    key.config.dataKey.b[0] ^= 0xff;
    EXPECT_NE(base.hash(), key.hash());
}

TEST(JobSpec, InstructionCountsChangeTheHash)
{
    JobSpec base = sampleSpec();

    JobSpec sim = base;
    sim.lengths.sim = 80'000;
    EXPECT_NE(base.hash(), sim.hash());

    JobSpec warm = base;
    warm.lengths.warmup = 20'000;
    EXPECT_NE(base.hash(), warm.hash());
}

TEST(JobSpec, ProfileAndPlatformChangesChangeTheHash)
{
    JobSpec base = sampleSpec();

    JobSpec wl = base;
    wl.profile = profileByName("mcf");
    EXPECT_NE(base.hash(), wl.hash());

    JobSpec seed = base;
    seed.profile.seed ^= 1;
    EXPECT_NE(base.hash(), seed.hash());

    JobSpec core = base;
    core.core.robSize = 128;
    EXPECT_NE(base.hash(), core.hash());

    JobSpec sys = base;
    sys.sys.l2Bytes = 512 << 10;
    EXPECT_NE(base.hash(), sys.hash());
}

TEST(RunOutputJson, RoundTripsEveryField)
{
    RunOutput out;
    out.workload = "mcf";
    out.scheme = "Split+GCM \"quoted\\\"";
    out.ipc = 1.234567890123456789;
    out.instructions = 800'000;
    out.cycles = 1'234'567;
    out.simSeconds = 2.469e-4;
    out.l2MissRate = 0.125;
    out.ctrHitRate = 0.875;
    out.ctrHalfMissRate = 0.0625;
    out.macHitRate = 0.99;
    out.timelyPadRate = 0.61;
    out.predRate = 0.93;
    out.busUtilization = 0.42;
    out.avgAuthLevels = 2.5;
    out.writebacks = 4242;
    out.maxBlockWritebacks = 17;
    out.freezes = 3;
    out.pageReencs = 7;
    out.authFailures = 0;
    out.reencOnchipFraction = 0.48;
    out.reencAvgCycles = 5717.0;
    out.reencAvgConcurrent = 2.9;
    out.reencRsrStalls = 11;
    out.reencPageConflicts = 5;
    out.counterGrowthPerSec = 2169.5;
    out.writebackRatePerSec = 1e6;

    RunOutput back;
    ASSERT_TRUE(runOutputFromJson(runOutputToJson(out), &back));
    EXPECT_EQ(back.workload, out.workload);
    EXPECT_EQ(back.scheme, out.scheme);
    EXPECT_EQ(back.ipc, out.ipc); // exact: %.17g round-trips doubles
    EXPECT_EQ(back.instructions, out.instructions);
    EXPECT_EQ(back.cycles, out.cycles);
    EXPECT_EQ(back.simSeconds, out.simSeconds);
    EXPECT_EQ(back.ctrHalfMissRate, out.ctrHalfMissRate);
    EXPECT_EQ(back.reencAvgCycles, out.reencAvgCycles);
    EXPECT_EQ(back.counterGrowthPerSec, out.counterGrowthPerSec);
    EXPECT_EQ(back.writebackRatePerSec, out.writebackRatePerSec);
    EXPECT_EQ(back.maxBlockWritebacks, out.maxBlockWritebacks);
    EXPECT_EQ(back.reencPageConflicts, out.reencPageConflicts);
    // Full-structure check via re-serialization.
    EXPECT_EQ(runOutputToJson(back), runOutputToJson(out));
}

TEST(RunOutputJson, RejectsMalformedInput)
{
    RunOutput out;
    EXPECT_FALSE(runOutputFromJson("", &out));
    EXPECT_FALSE(runOutputFromJson("{}", &out));
    EXPECT_FALSE(runOutputFromJson("{\"workload\": \"x\"}", &out));
    std::string valid = runOutputToJson(RunOutput{});
    EXPECT_TRUE(runOutputFromJson(valid, &out));
    EXPECT_FALSE(
        runOutputFromJson(valid.substr(0, valid.size() / 2), &out));
}

} // namespace
} // namespace secmem::exp
