/**
 * @file
 * WorkStealingPool tests and the engine determinism guarantee: a
 * 4-thread sweep must produce RunOutputs identical to the same sweep
 * run serially.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exp/engine.hh"
#include "exp/scheduler.hh"

namespace secmem::exp
{
namespace
{

TEST(WorkStealingPool, SerialPoolRunsInIndexOrder)
{
    WorkStealingPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);

    std::vector<std::size_t> order;
    pool.run(8, [&](std::size_t index, unsigned worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(index);
    });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce)
{
    WorkStealingPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    constexpr std::size_t kTasks = 64;
    std::vector<std::atomic<int>> hits(kTasks);
    pool.run(kTasks, [&](std::size_t index, unsigned worker) {
        EXPECT_LT(worker, 4u);
        // Uneven durations force stealing across the round-robin
        // initial distribution.
        if (index % 7 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        hits[index].fetch_add(1);
    });
    for (std::size_t i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(WorkStealingPool, HandlesFewerTasksThanWorkers)
{
    WorkStealingPool pool(4);
    std::atomic<int> ran{0};
    pool.run(1, [&](std::size_t, unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
    pool.run(0, [&](std::size_t, unsigned) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);
}

TEST(WorkStealingPool, ZeroThreadsPicksAPositiveCount)
{
    WorkStealingPool pool(0);
    EXPECT_GE(pool.threads(), 1u);
}

TEST(EngineDeterminism, ParallelSweepMatchesSerialBitForBit)
{
    // A small but real sweep: 3 workloads x {baseline, Split}.
    const RunLengths lengths{10'000, 20'000};
    std::vector<JobSpec> specs;
    for (const char *wl : {"gzip", "mcf", "twolf"}) {
        specs.push_back(makeJob("baseline", profileByName(wl),
                                SecureMemConfig::baseline(), lengths));
        specs.push_back(makeJob("Split", profileByName(wl),
                                SecureMemConfig::split(), lengths));
    }

    EngineOptions serialOpts;
    serialOpts.jobs = 1;
    Engine serial(serialOpts);
    std::vector<RunOutput> a = serial.run(specs);
    EXPECT_EQ(serial.executed(), specs.size());

    EngineOptions parallelOpts;
    parallelOpts.jobs = 4;
    Engine parallel(parallelOpts);
    std::vector<RunOutput> b = parallel.run(specs);
    EXPECT_EQ(parallel.executed(), specs.size());

    ASSERT_EQ(a.size(), specs.size());
    ASSERT_EQ(b.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // The JSON encoding covers every metric at full precision, so
        // string equality is bit-identity over the whole RunOutput.
        EXPECT_EQ(runOutputToJson(a[i]), runOutputToJson(b[i]))
            << specs[i].scheme << " on " << specs[i].profile.name;
    }
}

} // namespace
} // namespace secmem::exp
