/**
 * @file
 * Per-job stats flowing through the experiment layer: serial/parallel
 * determinism with stats attached, tracing as a pure observation,
 * JSON round-trips of the embedded stats object, and the engine's
 * per-job history used by --stats-out.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "exp/engine.hh"
#include "obs/trace.hh"

namespace secmem::exp
{
namespace
{

RunLengths
tinyLengths()
{
    return RunLengths{5'000, 20'000};
}

std::vector<JobSpec>
sampleBatch()
{
    return {
        makeJob("baseline", profileByName("gzip"),
                SecureMemConfig::baseline(), tinyLengths()),
        makeJob("Split", profileByName("gzip"), SecureMemConfig::split(),
                tinyLengths()),
        makeJob("Split+GCM", profileByName("mcf"),
                SecureMemConfig::splitGcm(), tinyLengths()),
    };
}

TEST(StatsFlow, RunOutputCarriesHierarchicalStats)
{
    RunOutput out = runJob(sampleBatch()[1]);
    ASSERT_FALSE(out.statsJson.empty());
    EXPECT_EQ(out.statsJson.front(), '{');
    EXPECT_NE(out.statsJson.find("\"ctrcache\""), std::string::npos);
    EXPECT_NE(out.statsJson.find("\"hits\""), std::string::npos);
    EXPECT_NE(out.statsJson.find("\"dram\""), std::string::npos);
    EXPECT_NE(out.statsJson.find("\"cpu\""), std::string::npos);
}

TEST(StatsFlow, SerialAndParallelRunsAreBitIdentical)
{
    std::vector<JobSpec> specs = sampleBatch();
    Engine serial(EngineOptions{1, "", false, ""});
    Engine parallel(EngineOptions{4, "", false, ""});
    std::vector<RunOutput> a = serial.run(specs);
    std::vector<RunOutput> b = parallel.run(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(runOutputToJson(a[i]), runOutputToJson(b[i])) << i;
        EXPECT_EQ(a[i].statsJson, b[i].statsJson) << i;
    }
}

TEST(StatsFlow, TracingIsAPureObservation)
{
    JobSpec spec = sampleBatch()[2];
    obs::TraceSink sink;
    RunOutput plain = runJob(spec);
    RunOutput traced = runJob(spec, &sink);

    EXPECT_GT(sink.size(), 0u);
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.instructions, traced.instructions);
    EXPECT_EQ(runOutputToJson(plain), runOutputToJson(traced));
}

TEST(StatsFlow, EngineTraceFileIsValidAndHarmless)
{
    const char *path = "stats_flow_trace_tmp.json";
    std::vector<JobSpec> specs = {sampleBatch()[0]};

    Engine plain(EngineOptions{1, "", false, ""});
    Engine traced(EngineOptions{1, "", false, path});
    std::string a = runOutputToJson(plain.run(specs)[0]);
    std::string b = runOutputToJson(traced.run(specs)[0]);
    EXPECT_EQ(a, b);

    std::FILE *f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path);
    ASSERT_GT(n, 0u);
    EXPECT_NE(std::string(buf).find("traceEvents"), std::string::npos);
}

TEST(StatsFlow, JsonRoundTripPreservesStats)
{
    RunOutput out = runJob(sampleBatch()[1]);
    std::string json = runOutputToJson(out);
    RunOutput back;
    ASSERT_TRUE(runOutputFromJson(json, &back));
    EXPECT_EQ(back.statsJson, out.statsJson);
    EXPECT_EQ(back.cycles, out.cycles);
    EXPECT_DOUBLE_EQ(back.ipc, out.ipc);
    // Flat fields parse from the top level even though the nested stats
    // object repeats names like "cycles" deeper down.
    EXPECT_EQ(runOutputToJson(back), json);
}

TEST(StatsFlow, LegacyRecordsWithoutStatsStillParse)
{
    RunOutput out = runJob(sampleBatch()[0]);
    out.statsJson.clear();
    std::string json = runOutputToJson(out);
    EXPECT_EQ(json.find("\"stats\""), std::string::npos);
    RunOutput back;
    ASSERT_TRUE(runOutputFromJson(json, &back));
    EXPECT_TRUE(back.statsJson.empty());
    EXPECT_EQ(back.cycles, out.cycles);
}

TEST(StatsFlow, HistoryRecordsEveryJobInSpecOrder)
{
    // Batch with an internal duplicate: history still gets one record
    // per spec, in order, each carrying the stats dump.
    std::vector<JobSpec> specs = sampleBatch();
    specs.push_back(specs[0]);

    Engine engine(EngineOptions{2, "", false, ""});
    engine.run(specs);
    const std::vector<Engine::JobRecord> &hist = engine.history();
    ASSERT_EQ(hist.size(), specs.size());
    for (std::size_t i = 0; i < hist.size(); ++i) {
        EXPECT_EQ(hist[i].workload, specs[i].profile.name) << i;
        EXPECT_EQ(hist[i].scheme, specs[i].scheme) << i;
        EXPECT_EQ(hist[i].hash, specs[i].hash()) << i;
        EXPECT_FALSE(hist[i].statsJson.empty()) << i;
    }
    EXPECT_EQ(hist[0].statsJson, hist.back().statsJson);
}

} // namespace
} // namespace secmem::exp
