/**
 * @file
 * Per-job stats flowing through the experiment layer: serial/parallel
 * determinism with stats attached, tracing as a pure observation,
 * JSON round-trips of the embedded stats object, and the engine's
 * per-job history used by --stats-out.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "exp/engine.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace secmem::exp
{
namespace
{

RunLengths
tinyLengths()
{
    return RunLengths{5'000, 20'000};
}

std::vector<JobSpec>
sampleBatch()
{
    return {
        makeJob("baseline", profileByName("gzip"),
                SecureMemConfig::baseline(), tinyLengths()),
        makeJob("Split", profileByName("gzip"), SecureMemConfig::split(),
                tinyLengths()),
        makeJob("Split+GCM", profileByName("mcf"),
                SecureMemConfig::splitGcm(), tinyLengths()),
    };
}

TEST(StatsFlow, RunOutputCarriesHierarchicalStats)
{
    RunOutput out = runJob(sampleBatch()[1]);
    ASSERT_FALSE(out.statsJson.empty());
    EXPECT_EQ(out.statsJson.front(), '{');
    EXPECT_NE(out.statsJson.find("\"ctrcache\""), std::string::npos);
    EXPECT_NE(out.statsJson.find("\"hits\""), std::string::npos);
    EXPECT_NE(out.statsJson.find("\"dram\""), std::string::npos);
    EXPECT_NE(out.statsJson.find("\"cpu\""), std::string::npos);
}

TEST(StatsFlow, SerialAndParallelRunsAreBitIdentical)
{
    std::vector<JobSpec> specs = sampleBatch();
    Engine serial(EngineOptions{1, "", false, ""});
    Engine parallel(EngineOptions{4, "", false, ""});
    std::vector<RunOutput> a = serial.run(specs);
    std::vector<RunOutput> b = parallel.run(specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(runOutputToJson(a[i]), runOutputToJson(b[i])) << i;
        EXPECT_EQ(a[i].statsJson, b[i].statsJson) << i;
    }
}

TEST(StatsFlow, TracingIsAPureObservation)
{
    JobSpec spec = sampleBatch()[2];
    obs::TraceSink sink;
    RunOutput plain = runJob(spec);
    RunOutput traced = runJob(spec, {&sink});

    EXPECT_GT(sink.size(), 0u);
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.instructions, traced.instructions);
    EXPECT_EQ(runOutputToJson(plain), runOutputToJson(traced));
}

TEST(StatsFlow, EngineTraceFileIsValidAndHarmless)
{
    const char *path = "stats_flow_trace_tmp.json";
    std::vector<JobSpec> specs = {sampleBatch()[0]};

    Engine plain(EngineOptions{1, "", false, ""});
    Engine traced(EngineOptions{1, "", false, path});
    std::string a = runOutputToJson(plain.run(specs)[0]);
    std::string b = runOutputToJson(traced.run(specs)[0]);
    EXPECT_EQ(a, b);

    std::FILE *f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path);
    ASSERT_GT(n, 0u);
    EXPECT_NE(std::string(buf).find("traceEvents"), std::string::npos);
}

TEST(StatsFlow, JsonRoundTripPreservesStats)
{
    RunOutput out = runJob(sampleBatch()[1]);
    std::string json = runOutputToJson(out);
    RunOutput back;
    ASSERT_TRUE(runOutputFromJson(json, &back));
    EXPECT_EQ(back.statsJson, out.statsJson);
    EXPECT_EQ(back.cycles, out.cycles);
    EXPECT_DOUBLE_EQ(back.ipc, out.ipc);
    // Flat fields parse from the top level even though the nested stats
    // object repeats names like "cycles" deeper down.
    EXPECT_EQ(runOutputToJson(back), json);
}

TEST(StatsFlow, LegacyRecordsWithoutStatsStillParse)
{
    RunOutput out = runJob(sampleBatch()[0]);
    out.statsJson.clear();
    std::string json = runOutputToJson(out);
    EXPECT_EQ(json.find("\"stats\""), std::string::npos);
    RunOutput back;
    ASSERT_TRUE(runOutputFromJson(json, &back));
    EXPECT_TRUE(back.statsJson.empty());
    EXPECT_EQ(back.cycles, out.cycles);
}

TEST(StatsFlow, HistoryRecordsEveryJobInSpecOrder)
{
    // Batch with an internal duplicate: history still gets one record
    // per spec, in order, each carrying the stats dump.
    std::vector<JobSpec> specs = sampleBatch();
    specs.push_back(specs[0]);

    Engine engine(EngineOptions{2, "", false, ""});
    engine.run(specs);
    const std::vector<Engine::JobRecord> &hist = engine.history();
    ASSERT_EQ(hist.size(), specs.size());
    for (std::size_t i = 0; i < hist.size(); ++i) {
        EXPECT_EQ(hist[i].workload, specs[i].profile.name) << i;
        EXPECT_EQ(hist[i].scheme, specs[i].scheme) << i;
        EXPECT_EQ(hist[i].hash, specs[i].hash()) << i;
        EXPECT_FALSE(hist[i].statsJson.empty()) << i;
    }
    EXPECT_EQ(hist[0].statsJson, hist.back().statsJson);
}

TEST(StatsFlow, SamplerSeriesIsIdenticalAcrossWorkerCounts)
{
    // The sampler is triggered by simulated cycles only, so the
    // time-series must be byte-identical between serial and parallel
    // runs of the same batch — wall clock never enters the data.
    std::vector<JobSpec> specs = sampleBatch();

    EngineOptions serialOpts;
    serialOpts.jobs = 1;
    serialOpts.sampleEvery = 2'000;
    EngineOptions parallelOpts = serialOpts;
    parallelOpts.jobs = 4;

    Engine serial(serialOpts);
    Engine parallel(parallelOpts);
    serial.run(specs);
    parallel.run(specs);

    ASSERT_FALSE(serial.samplerCsv().empty());
    EXPECT_EQ(serial.samplerCsv(), parallel.samplerCsv());
    EXPECT_EQ(serial.samplerJson(), parallel.samplerJson());
    // Header plus at least one data row.
    EXPECT_NE(serial.samplerCsv().find("cycle,"), std::string::npos);
    EXPECT_GT(std::count(serial.samplerCsv().begin(),
                         serial.samplerCsv().end(), '\n'),
              1);
}

TEST(StatsFlow, ProfilingIsAPureObservation)
{
    // Probes change only what lands on stderr/telemetry, never the
    // simulated results: enabled vs disabled runs are bit-identical.
    std::vector<JobSpec> specs = sampleBatch();

    Engine plain(EngineOptions{2, "", false, ""});
    std::vector<RunOutput> a = plain.run(specs);

    obs::Profiler::reset();
    obs::Profiler::setEnabled(true);
    Engine profiled(EngineOptions{2, "", false, ""});
    std::vector<RunOutput> b = profiled.run(specs);
    obs::Profiler::setEnabled(false);

    obs::ProfReport rep = obs::Profiler::report();
    obs::Profiler::reset();

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(runOutputToJson(a[i]), runOutputToJson(b[i])) << i;
        EXPECT_EQ(a[i].statsJson, b[i].statsJson) << i;
    }
    // The profiled run did record zone data (core at minimum).
    EXPECT_FALSE(rep.zones.empty());
    EXPECT_GT(rep.trackedSeconds, 0.0);
    double shareTotal = 0.0;
    for (const auto &z : rep.zones)
        shareTotal += z.share;
    EXPECT_LE(shareTotal, 1.001);
}

TEST(StatsFlow, HistoryCarriesWallClockAndPoolTelemetry)
{
    // Fresh jobs get a positive wall-clock; duplicates served from the
    // in-batch cache stay at 0 (nothing was simulated for them). The
    // telemetry lives next to, never inside, the simulated results.
    std::vector<JobSpec> specs = sampleBatch();
    specs.push_back(specs[0]); // in-batch duplicate

    Engine engine(EngineOptions{2, "", false, ""});
    engine.run(specs);
    const std::vector<Engine::JobRecord> &hist = engine.history();
    ASSERT_EQ(hist.size(), specs.size());
    for (std::size_t i = 0; i + 1 < hist.size(); ++i)
        EXPECT_GT(hist[i].wallSeconds, 0.0) << i;
    EXPECT_EQ(hist.back().wallSeconds, 0.0);

    // Simulated totals aggregate the three fresh jobs.
    EXPECT_GT(engine.simCycles(), 0u);
    EXPECT_GT(engine.simInstructions(), 0u);
    // Pool telemetry is readable after the run (values are
    // scheduling-dependent, so only sanity-check accessibility).
    EXPECT_GE(engine.pool().steals(), 0u);
    EXPECT_GE(engine.pool().idleSleeps(), 0u);
}

} // namespace
} // namespace secmem::exp
