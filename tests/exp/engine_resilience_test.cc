/**
 * @file
 * Engine resilience tests: per-job retry with backoff, crash isolation
 * (throwing and panicking runners cost only their own job), watchdog
 * timeouts via cooperative cancellation, and the deterministic
 * failures() report. All use injected runners — no simulation runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "exp/engine.hh"
#include "sim/cancel.hh"
#include "sim/log.hh"

namespace secmem::exp
{
namespace
{

JobSpec
spec(const char *workload, std::uint64_t sim = 40'000)
{
    return makeJob("Split", profileByName(workload),
                   SecureMemConfig::split(), RunLengths{10'000, sim});
}

RunOutput
okOutput(const JobSpec &s)
{
    RunOutput out;
    out.workload = s.profile.name;
    out.scheme = s.scheme;
    out.ipc = 1.0;
    out.instructions = 1;
    return out;
}

TEST(EngineResilience, FlakyRunnerSucceedsOnRetry)
{
    std::atomic<unsigned> calls{0};
    EngineOptions opts;
    opts.jobs = 1;
    opts.jobAttempts = 3;
    opts.backoffMs = 1;
    opts.runner = [&](const JobSpec &s, const RunObservers &) {
        if (calls.fetch_add(1) < 2)
            throw std::runtime_error("transient infrastructure failure");
        return okOutput(s);
    };
    Engine engine(opts);
    std::vector<RunOutput> outs = engine.run({spec("gzip")});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_FALSE(outs[0].failed);
    EXPECT_EQ(outs[0].ipc, 1.0);
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_TRUE(engine.failures().empty());
}

TEST(EngineResilience, CrashingJobIsIsolatedFromTheBatch)
{
    EngineOptions opts;
    opts.jobs = 2;
    opts.jobAttempts = 2;
    opts.backoffMs = 1;
    opts.runner = [&](const JobSpec &s, const RunObservers &) {
        if (s.profile.name == "mcf")
            throw std::runtime_error("boom");
        return okOutput(s);
    };
    Engine engine(opts);
    std::vector<JobSpec> specs = {spec("gzip"), spec("mcf"), spec("ammp")};
    std::vector<RunOutput> outs = engine.run(specs);
    ASSERT_EQ(outs.size(), 3u);

    // Healthy jobs complete; the crasher carries a structured failure.
    EXPECT_FALSE(outs[0].failed);
    EXPECT_FALSE(outs[2].failed);
    EXPECT_TRUE(outs[1].failed);
    EXPECT_EQ(outs[1].error, "boom");
    ASSERT_EQ(engine.failures().size(), 1u);
    const Engine::JobFailure &f = engine.failures()[0];
    EXPECT_EQ(f.specIndex, 1u);
    EXPECT_EQ(f.workload, "mcf");
    EXPECT_EQ(f.attempts, 2u);
    EXPECT_FALSE(f.timedOut);
}

TEST(EngineResilience, PanickingRunnerIsContained)
{
    EngineOptions opts;
    opts.jobs = 1;
    opts.jobAttempts = 1;
    opts.runner = [](const JobSpec &s, const RunObservers &) -> RunOutput {
        if (s.profile.name == "gzip")
            SECMEM_PANIC("runner panicked on %s", s.profile.name.c_str());
        return okOutput(s);
    };
    Engine engine(opts);
    std::vector<RunOutput> outs = engine.run({spec("gzip"), spec("mcf")});
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_TRUE(outs[0].failed);
    EXPECT_NE(outs[0].error.find("runner panicked"), std::string::npos);
    EXPECT_FALSE(outs[1].failed);
}

TEST(EngineResilience, WatchdogCancelsHungJobs)
{
    EngineOptions opts;
    opts.jobs = 1;
    opts.jobAttempts = 1;
    opts.jobTimeoutSec = 0.2;
    opts.runner = [](const JobSpec &s, const RunObservers &) -> RunOutput {
        if (s.profile.name == "gzip") {
            // A hung simulation: spins forever, but polls its cancel
            // token the way OooCore::run does.
            for (;;)
                pollCancellation();
        }
        return okOutput(s);
    };
    Engine engine(opts);
    std::vector<RunOutput> outs = engine.run({spec("gzip"), spec("mcf")});
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_TRUE(outs[0].failed);
    EXPECT_NE(outs[0].error.find("timed out"), std::string::npos);
    EXPECT_FALSE(outs[1].failed);
    ASSERT_EQ(engine.failures().size(), 1u);
    EXPECT_TRUE(engine.failures()[0].timedOut);
}

TEST(EngineResilience, FailureReportIsDeterministicAcrossJobCounts)
{
    auto runWith = [&](unsigned jobs) {
        EngineOptions opts;
        opts.jobs = jobs;
        opts.jobAttempts = 2;
        opts.backoffMs = 1;
        opts.runner = [](const JobSpec &s, const RunObservers &) -> RunOutput {
            if (s.lengths.sim % 2 == 1)
                throw std::runtime_error("odd jobs fail");
            return okOutput(s);
        };
        Engine engine(opts);
        engine.run({spec("gzip", 40'000), spec("gzip", 40'001),
                    spec("mcf", 40'002), spec("mcf", 40'003),
                    spec("ammp", 40'005)});
        return engine.failures();
    };

    std::vector<Engine::JobFailure> serial = runWith(1);
    std::vector<Engine::JobFailure> parallel = runWith(4);
    ASSERT_EQ(serial.size(), 3u);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].specIndex, parallel[i].specIndex);
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(serial[i].error, parallel[i].error);
        EXPECT_EQ(serial[i].attempts, parallel[i].attempts);
    }
}

TEST(EngineResilience, FailedJobsAreNotPersisted)
{
    EngineOptions opts;
    opts.jobs = 1;
    opts.jobAttempts = 1;
    opts.runner = [](const JobSpec &, const RunObservers &) -> RunOutput {
        throw std::runtime_error("always fails");
    };
    Engine engine(opts);
    engine.run({spec("gzip")});
    // A retry with a healthy runner must actually re-execute: nothing
    // may have been cached for the failed spec.
    RunOutput cached;
    EXPECT_FALSE(engine.store().lookup(spec("gzip"), &cached));
}

} // namespace
} // namespace secmem::exp
