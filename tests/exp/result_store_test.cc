/**
 * @file
 * ResultStore tests: memory/disk hits, persistence across store
 * instances (sweep resume), spec-mismatch rejection, and engine-level
 * caching.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/engine.hh"
#include "exp/result_store.hh"
#include "exp/store_chaos.hh"

namespace fs = std::filesystem;

namespace secmem::exp
{
namespace
{

class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::path(::testing::TempDir()) /
               ("secmem_store_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    static JobSpec
    spec(const char *workload = "gzip", std::uint64_t sim = 40'000)
    {
        return makeJob("Split", profileByName(workload),
                       SecureMemConfig::split(), RunLengths{10'000, sim});
    }

    static RunOutput
    output(double ipc)
    {
        RunOutput out;
        out.workload = "gzip";
        out.scheme = "Split";
        out.ipc = ipc;
        out.instructions = 40'000;
        return out;
    }

    fs::path dir_;
};

TEST_F(ResultStoreTest, MemoryOnlyPutLookup)
{
    ResultStore store; // no dir
    RunOutput out;
    EXPECT_FALSE(store.lookup(spec(), &out));
    EXPECT_EQ(store.misses(), 1u);

    store.put(spec(), output(1.5));
    ASSERT_TRUE(store.lookup(spec(), &out));
    EXPECT_EQ(out.ipc, 1.5);
    EXPECT_EQ(store.memoryHits(), 1u);
    EXPECT_FALSE(fs::exists(dir_)); // nothing persisted
}

TEST_F(ResultStoreTest, PersistsAcrossStoreInstances)
{
    {
        ResultStore store(dir_.string());
        store.put(spec(), output(2.25));
    }
    // A fresh store (fresh process, conceptually) resumes from disk.
    ResultStore store(dir_.string());
    RunOutput out;
    ASSERT_TRUE(store.lookup(spec(), &out));
    EXPECT_EQ(out.ipc, 2.25);
    EXPECT_EQ(store.diskHits(), 1u);
    EXPECT_EQ(store.memoryHits(), 0u);
    // Second lookup is served from memory.
    ASSERT_TRUE(store.lookup(spec(), &out));
    EXPECT_EQ(store.memoryHits(), 1u);
}

TEST_F(ResultStoreTest, DifferentSpecsDoNotCollide)
{
    ResultStore store(dir_.string());
    store.put(spec("gzip"), output(1.0));

    RunOutput out;
    EXPECT_FALSE(store.lookup(spec("mcf"), &out));
    EXPECT_FALSE(store.lookup(spec("gzip", 80'000), &out));

    JobSpec bigger_cache = spec();
    bigger_cache.config.ctrCacheBytes = 128 << 10;
    EXPECT_FALSE(store.lookup(bigger_cache, &out));

    ASSERT_TRUE(store.lookup(spec(), &out));
    EXPECT_EQ(out.ipc, 1.0);
}

TEST_F(ResultStoreTest, RejectsEntryWithMismatchedSpec)
{
    ResultStore writer(dir_.string());
    writer.put(spec(), output(1.0));

    // Corrupt the stored spec line: a hash collision / stale format
    // must rerun, not return the wrong result.
    fs::path file;
    for (const auto &e : fs::directory_iterator(dir_))
        file = e.path();
    ASSERT_FALSE(file.empty());
    std::string json;
    {
        std::ifstream in(file);
        std::string specline;
        std::getline(in, specline);
        std::getline(in, json);
    }
    {
        std::ofstream outf(file, std::ios::trunc);
        outf << "secmem-job-v0;tampered;\n" << json << '\n';
    }

    ResultStore reader(dir_.string());
    RunOutput out;
    EXPECT_FALSE(reader.lookup(spec(), &out));
    EXPECT_EQ(reader.misses(), 1u);
}

TEST_F(ResultStoreTest, ChecksumCatchesBitCorruption)
{
    {
        ResultStore writer(dir_.string());
        writer.put(spec(), output(1.0));
    }
    fs::path file;
    for (const auto &e : fs::directory_iterator(dir_))
        file = e.path();
    ASSERT_FALSE(file.empty());

    // Flip one byte inside the JSON payload; the record stays
    // structurally valid, so only the checksum can catch it.
    std::string bytes;
    {
        std::ifstream in(file, std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        bytes = ss.str();
    }
    std::size_t payload = bytes.find('\n') + 4;
    ASSERT_LT(payload, bytes.size());
    bytes[payload] = static_cast<char>(bytes[payload] ^ 0x10);
    {
        std::ofstream outf(file, std::ios::binary | std::ios::trunc);
        outf << bytes;
    }

    // Journal recovery discards the rotten record; the lookup reruns.
    ResultStore reader(dir_.string());
    EXPECT_EQ(reader.corruptDiscarded(), 1u);
    RunOutput out;
    EXPECT_FALSE(reader.lookup(spec(), &out));
    EXPECT_FALSE(fs::exists(file));
}

TEST_F(ResultStoreTest, TornRecordIsDiscardedOnRecovery)
{
    {
        ResultStore writer(dir_.string());
        writer.put(spec(), output(3.0));
    }
    fs::path file;
    for (const auto &e : fs::directory_iterator(dir_))
        file = e.path();
    ASSERT_FALSE(file.empty());

    // Tear the record inside its first line (crash mid-flush at the
    // filesystem level; the atomic writer itself can't produce this).
    {
        std::ofstream outf(file, std::ios::binary | std::ios::trunc);
        outf << "secmem-job";
    }
    ResultStore reader(dir_.string());
    EXPECT_EQ(reader.corruptDiscarded(), 1u);
    RunOutput out;
    EXPECT_FALSE(reader.lookup(spec(), &out));
}

TEST_F(ResultStoreTest, OrphanedTemporariesAreCleaned)
{
    {
        ResultStore writer(dir_.string());
        writer.put(spec(), output(4.0));
    }
    // A writer killed between create and rename leaves a temporary.
    {
        std::ofstream tmp(dir_ / "deadbeef.run.tmp.12345",
                          std::ios::binary);
        tmp << "partial rec";
    }
    ResultStore reader(dir_.string());
    EXPECT_EQ(reader.tmpCleaned(), 1u);
    EXPECT_EQ(reader.corruptDiscarded(), 0u);
    EXPECT_FALSE(fs::exists(dir_ / "deadbeef.run.tmp.12345"));
    // The real record is untouched.
    RunOutput out;
    ASSERT_TRUE(reader.lookup(spec(), &out));
    EXPECT_EQ(out.ipc, 4.0);
}

TEST_F(ResultStoreTest, LegacyTwoLineRecordsStillLoad)
{
    {
        ResultStore writer(dir_.string());
        writer.put(spec(), output(5.0));
    }
    fs::path file;
    for (const auto &e : fs::directory_iterator(dir_))
        file = e.path();
    ASSERT_FALSE(file.empty());

    // Strip the checksum line, reverting to the pre-checksum format.
    std::string specline, json;
    {
        std::ifstream in(file);
        std::getline(in, specline);
        std::getline(in, json);
    }
    {
        std::ofstream outf(file, std::ios::trunc);
        outf << specline << '\n' << json << '\n';
    }
    ResultStore reader(dir_.string());
    EXPECT_EQ(reader.corruptDiscarded(), 0u);
    RunOutput out;
    ASSERT_TRUE(reader.lookup(spec(), &out));
    EXPECT_EQ(out.ipc, 5.0);
}

TEST_F(ResultStoreTest, FailedOutputsAreNeverStored)
{
    ResultStore store(dir_.string());
    RunOutput bad = output(0.0);
    bad.failed = true;
    bad.error = "simulated crash";
    store.put(spec(), bad);

    RunOutput out;
    EXPECT_FALSE(store.lookup(spec(), &out));
    EXPECT_TRUE(!fs::exists(dir_) || fs::is_empty(dir_));
}

TEST_F(ResultStoreTest, EngineSecondRunSimulatesNothing)
{
    std::vector<JobSpec> specs = {spec("gzip"), spec("mcf")};

    EngineOptions opts;
    opts.jobs = 1;
    opts.storeDir = dir_.string();
    Engine first(opts);
    std::vector<RunOutput> a = first.run(specs);
    EXPECT_EQ(first.executed(), 2u);
    EXPECT_EQ(first.cached(), 0u);

    // Same sweep, fresh engine: everything resumes from disk.
    Engine second(opts);
    std::vector<RunOutput> b = second.run(specs);
    EXPECT_EQ(second.executed(), 0u);
    EXPECT_EQ(second.cached(), 2u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(runOutputToJson(a[i]), runOutputToJson(b[i]));
}

TEST_F(ResultStoreTest, EngineDedupsIdenticalSpecsWithinABatch)
{
    // Same config under two labels (Figure 8/10's "default" rows).
    JobSpec a = spec();
    JobSpec b = spec();
    b.scheme = "Split/default";

    EngineOptions opts;
    opts.jobs = 1;
    Engine engine(opts);
    std::vector<RunOutput> outs = engine.run({a, b});
    EXPECT_EQ(engine.executed(), 1u);
    EXPECT_EQ(engine.cached(), 1u);
    EXPECT_EQ(runOutputToJson(outs[0]), runOutputToJson(outs[1]));
}

TEST_F(ResultStoreTest, ChaosDrillRecoversCleanly)
{
    StoreChaosConfig cfg;
    cfg.seed = 2;
    cfg.dir = dir_.string();
    cfg.records = 48;
    StoreChaosResult res = runStoreChaosDrill(cfg);
    EXPECT_EQ(res.written, 48u);
    EXPECT_GT(res.truncated + res.corrupted, 0u);
    EXPECT_EQ(res.tmpCleaned, res.litterPlanted);
    EXPECT_EQ(res.wrongData, 0u);
    EXPECT_EQ(res.intactLost, 0u);
    EXPECT_EQ(res.survivors, res.survivorsExact);
    EXPECT_TRUE(res.ok);
}

} // namespace
} // namespace secmem::exp
