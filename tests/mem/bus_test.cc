/**
 * @file
 * Bus and memory-channel timing model tests: beat arithmetic,
 * first-come-first-served contention, utilization accounting and the
 * read/write channel composition.
 */

#include <gtest/gtest.h>

#include "mem/bus.hh"
#include "mem/dram.hh"

namespace secmem
{
namespace
{

TEST(Bus, SingleBlockTransferDuration)
{
    // 64 bytes = 4 beats x 25/3 ticks = 33.3 ticks, rounded up to 34.
    Bus bus;
    Tick done = bus.acquire(0, kBlockBytes);
    EXPECT_EQ(done, 34u);
}

TEST(Bus, SingleBeatDuration)
{
    // 16 bytes = 1 beat = 8.33 ticks -> 9.
    Bus bus;
    EXPECT_EQ(bus.acquire(0, 16), 9u);
}

TEST(Bus, BackToBackTransfersAccumulateWithoutDrift)
{
    Bus bus;
    Tick done = 0;
    for (int i = 0; i < 3; ++i)
        done = bus.acquire(0, kBlockBytes);
    // 3 x 100/3 ticks = exactly 100 — thirds bookkeeping avoids drift.
    EXPECT_EQ(done, 100u);
}

TEST(Bus, ContentionDelaysSecondRequest)
{
    Bus bus;
    bus.acquire(0, kBlockBytes); // busy until 33.3
    Tick done = bus.acquire(10, kBlockBytes);
    EXPECT_EQ(done, 67u); // starts at 33.3, ends at 66.7 -> 67
    EXPECT_GT(bus.stats().counterValue("contention_thirds"), 0u);
}

TEST(Bus, IdleGapRespected)
{
    Bus bus;
    bus.acquire(0, kBlockBytes);
    Tick done = bus.acquire(1000, kBlockBytes);
    EXPECT_EQ(done, 1034u);
}

TEST(Bus, UtilizationFractionIsSane)
{
    Bus bus;
    for (int i = 0; i < 10; ++i)
        bus.acquire(i * 100, kBlockBytes);
    double util = bus.utilization(1000);
    EXPECT_NEAR(util, 10 * (100.0 / 3.0) / 1000.0, 0.01);
}

TEST(Bus, ResetClearsState)
{
    Bus bus;
    bus.acquire(0, kBlockBytes);
    bus.reset();
    EXPECT_EQ(bus.nextFree(), 0u);
    EXPECT_EQ(bus.acquire(0, 16), 9u);
}

TEST(MemChannel, UncontendedReadLatency)
{
    // Request beat (9) + DRAM (200) + data transfer (34) ~= 243.
    MemChannel ch;
    Tick done = ch.readBlockTiming(0);
    EXPECT_EQ(done, 243u);
}

TEST(MemChannel, ReadsPipelineOverDram)
{
    MemChannel ch;
    Tick first = ch.readBlockTiming(0);
    Tick second = ch.readBlockTiming(1);
    // The second read overlaps the first's DRAM access; it finishes one
    // data-transfer slot later, not a full round trip later.
    EXPECT_EQ(first, 243u);
    EXPECT_LT(second, first + 50);
    EXPECT_GT(second, first);
}

TEST(MemChannel, WriteOccupiesDataBus)
{
    MemChannel ch;
    Tick w = ch.writeBlockTiming(0);
    EXPECT_GE(w, 34u);
    EXPECT_LE(w, 50u);
}

TEST(MemChannel, WiderReadTakesLonger)
{
    MemChannel a, b;
    Tick t64 = a.readTiming(0, 64);
    Tick t72 = b.readTiming(0, 72); // data + 8-byte counter (CtrPred)
    EXPECT_GT(t72, t64);
}

TEST(MemChannel, CustomTimingParams)
{
    MemTimingParams p;
    p.dramLatency = 100;
    MemChannel ch(p);
    EXPECT_EQ(ch.readBlockTiming(0), 143u);
}

TEST(Dram, ReadsBackWrites)
{
    Dram d;
    Block64 val;
    val.b[0] = 0xab;
    val.b[63] = 0xcd;
    d.writeBlock(0x1000, val);
    EXPECT_EQ(d.readBlock(0x1000), val);
    EXPECT_EQ(d.readBlock(0x1040), Block64{});
}

TEST(Dram, SubBlockAddressesAlias)
{
    Dram d;
    Block64 val;
    val.b[5] = 0x5a;
    d.writeBlock(0x1008, val);
    EXPECT_EQ(d.readBlock(0x1000), val);
}

TEST(Dram, TamperXorFlipsBits)
{
    Dram d;
    Block64 val{};
    d.writeBlock(0x2000, val);
    d.tamperXor(0x2000, 3, 0x80);
    EXPECT_EQ(d.readBlock(0x2000).b[3], 0x80);
    d.tamperXor(0x2000, 3, 0x80);
    EXPECT_EQ(d.readBlock(0x2000).b[3], 0x00);
}

TEST(Dram, SnoopAndReplay)
{
    Dram d;
    Block64 v1, v2;
    v1.b[0] = 1;
    v2.b[0] = 2;
    d.writeBlock(0x3000, v1);
    Block64 old = d.snoop(0x3000);
    d.writeBlock(0x3000, v2);
    d.replay(0x3000, old);
    EXPECT_EQ(d.readBlock(0x3000), v1);
}

TEST(Dram, FootprintCountsBlocks)
{
    Dram d;
    EXPECT_EQ(d.footprintBlocks(), 0u);
    d.writeBlock(0, {});
    d.writeBlock(64, {});
    d.writeBlock(0, {}); // same block
    EXPECT_EQ(d.footprintBlocks(), 2u);
}

} // namespace
} // namespace secmem
