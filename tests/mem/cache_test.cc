/**
 * @file
 * Set-associative cache behaviour: LRU, write-back, eviction,
 * invalidation and flushing, across several geometries.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

Block64
pattern(std::uint8_t seed)
{
    Block64 b;
    for (std::size_t i = 0; i < kBlockBytes; ++i)
        b.b[i] = static_cast<std::uint8_t>(seed + i);
    return b;
}

TEST(Cache, MissThenHitAfterInsert)
{
    Cache c("t", 4096, 4);
    EXPECT_EQ(c.access(0x100, false), nullptr);
    c.insert(0x100, pattern(1), false);
    Block64 *line = c.access(0x100, false);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(*line, pattern(1));
}

TEST(Cache, SubBlockAddressesAlias)
{
    Cache c("t", 4096, 4);
    c.insert(0x140, pattern(2), false);
    EXPECT_NE(c.access(0x147, false), nullptr);
    EXPECT_NE(c.access(0x17f, true), nullptr);
    EXPECT_TRUE(c.isDirty(0x140));
}

TEST(Cache, LruEvictsLeastRecent)
{
    // Direct construct a 2-way cache with 1 set: 128 bytes total.
    Cache c("t", 128, 2);
    ASSERT_EQ(c.numSets(), 1u);
    c.insert(0x000, pattern(0), false);
    c.insert(0x040, pattern(1), false);
    // Touch block 0 so block 1 becomes LRU.
    c.access(0x000, false);
    Eviction ev = c.insert(0x080, pattern(2), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.addr, 0x040u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x080));
}

TEST(Cache, DirtyVictimReturnsData)
{
    Cache c("t", 128, 2);
    c.insert(0x000, pattern(7), true);
    c.insert(0x040, pattern(8), false);
    Eviction ev = c.insert(0x080, pattern(9), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.addr, 0x000u);
    EXPECT_EQ(ev.data, pattern(7));
}

TEST(Cache, CleanVictimNotDirty)
{
    Cache c("t", 128, 2);
    c.insert(0x000, pattern(7), false);
    c.insert(0x040, pattern(8), false);
    Eviction ev = c.insert(0x080, pattern(9), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_FALSE(ev.dirty);
}

TEST(Cache, InsertExistingOverwritesInPlace)
{
    Cache c("t", 4096, 4);
    c.insert(0x100, pattern(1), false);
    Eviction ev = c.insert(0x100, pattern(2), true);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(*c.peek(0x100), pattern(2));
    EXPECT_TRUE(c.isDirty(0x100));
}

TEST(Cache, InsertExistingKeepsDirtyBit)
{
    Cache c("t", 4096, 4);
    c.insert(0x100, pattern(1), true);
    c.insert(0x100, pattern(2), false);
    EXPECT_TRUE(c.isDirty(0x100)) << "dirty must not be lost by a refill";
}

TEST(Cache, WriteAccessSetsDirty)
{
    Cache c("t", 4096, 4);
    c.insert(0x100, pattern(1), false);
    EXPECT_FALSE(c.isDirty(0x100));
    c.access(0x100, true);
    EXPECT_TRUE(c.isDirty(0x100));
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache c("t", 128, 2);
    c.insert(0x000, pattern(0), false);
    c.insert(0x040, pattern(1), false);
    // Peek block 0 (no LRU update): it stays LRU and gets evicted.
    c.peek(0x000);
    Eviction ev = c.insert(0x080, pattern(2), false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.addr, 0x000u);
}

TEST(Cache, InvalidateRemovesAndReports)
{
    Cache c("t", 4096, 4);
    c.insert(0x200, pattern(3), true);
    Eviction ev = c.invalidate(0x200);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.data, pattern(3));
    EXPECT_FALSE(c.contains(0x200));
    EXPECT_FALSE(c.invalidate(0x200).valid);
}

TEST(Cache, FlushReturnsOnlyDirtyLines)
{
    Cache c("t", 4096, 4);
    c.insert(0x000, pattern(0), true);
    c.insert(0x040, pattern(1), false);
    c.insert(0x080, pattern(2), true);
    auto dirty = c.flush();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x040));
}

TEST(Cache, StatsCountHitsAndMisses)
{
    Cache c("t", 4096, 4);
    c.access(0x100, false); // miss
    c.insert(0x100, pattern(1), false);
    c.access(0x100, false); // hit
    c.access(0x100, true);  // hit
    EXPECT_EQ(c.stats().counterValue("accesses"), 3u);
    EXPECT_EQ(c.stats().counterValue("hits"), 2u);
    EXPECT_EQ(c.stats().counterValue("misses"), 1u);
    EXPECT_NEAR(c.hitRate(), 2.0 / 3.0, 1e-9);
}

TEST(Cache, ForEachLineVisitsAllValid)
{
    Cache c("t", 4096, 4);
    c.insert(0x000, pattern(0), false);
    c.insert(0x040, pattern(1), true);
    std::set<Addr> seen;
    int dirty_count = 0;
    c.forEachLine([&](Addr a, const Block64 &, bool dirty) {
        seen.insert(a);
        dirty_count += dirty;
    });
    EXPECT_EQ(seen, (std::set<Addr>{0x000, 0x040}));
    EXPECT_EQ(dirty_count, 1);
}

struct CacheGeom
{
    std::size_t size;
    unsigned assoc;
};

class CacheGeometryTest : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheGeometryTest, CapacityIsRespected)
{
    auto [size, assoc] = GetParam();
    Cache c("t", size, assoc);
    EXPECT_EQ(c.capacityBytes(), size);
    std::size_t blocks = size / kBlockBytes;
    // Fill exactly to capacity with a stride hitting all sets evenly.
    for (std::size_t i = 0; i < blocks; ++i)
        c.insert(i * kBlockBytes, pattern(static_cast<std::uint8_t>(i)),
                 false);
    for (std::size_t i = 0; i < blocks; ++i)
        EXPECT_TRUE(c.contains(i * kBlockBytes)) << i;
    // One more block must evict something.
    Eviction ev = c.insert(blocks * kBlockBytes, pattern(0xee), false);
    EXPECT_TRUE(ev.valid);
}

TEST_P(CacheGeometryTest, RandomizedContentsConsistent)
{
    auto [size, assoc] = GetParam();
    Cache c("t", size, assoc);
    Rng rng(99);
    std::unordered_map<Addr, Block64> shadow;
    for (int op = 0; op < 4000; ++op) {
        Addr a = rng.below(512) * kBlockBytes;
        if (rng.chance(0.5)) {
            Block64 val = pattern(static_cast<std::uint8_t>(rng.next()));
            Eviction ev = c.insert(a, val, rng.chance(0.5));
            shadow[a] = val;
            if (ev.valid)
                shadow.erase(ev.addr);
        } else if (Block64 *line = c.access(a, false)) {
            auto it = shadow.find(a);
            ASSERT_NE(it, shadow.end());
            EXPECT_EQ(*line, it->second);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometryTest,
                         ::testing::Values(CacheGeom{1024, 1},
                                           CacheGeom{4096, 4},
                                           CacheGeom{16384, 8},
                                           CacheGeom{32768, 16}));

} // namespace
} // namespace secmem
