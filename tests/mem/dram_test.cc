/**
 * @file
 * Dram tamper-interface tests: the attacker-facing API must behave
 * exactly as documented — explicit bounds (no silent wraparound into a
 * neighbouring block), zero-filled semantics for never-written blocks,
 * faithful snapshot/replay, and one-shot transient faults that corrupt
 * a single fetch without touching the stored bits.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

Block64
patternBlock(std::uint8_t base)
{
    Block64 b;
    for (std::size_t i = 0; i < kBlockBytes; ++i)
        b.b[i] = static_cast<std::uint8_t>(base + i);
    return b;
}

TEST(Dram, RawWriteOverwritesRange)
{
    Dram dram;
    dram.writeBlock(0x1000, patternBlock(0));
    const std::uint8_t patch[4] = {0xde, 0xad, 0xbe, 0xef};
    dram.rawWrite(0x1000, 10, patch, sizeof(patch));
    Block64 got = dram.readBlock(0x1000);
    EXPECT_EQ(got.b[9], 9);
    EXPECT_EQ(got.b[10], 0xde);
    EXPECT_EQ(got.b[13], 0xef);
    EXPECT_EQ(got.b[14], 14);
    EXPECT_EQ(dram.stats().counterValue("raw_writes"), 1u);
}

TEST(Dram, RawWriteOnNeverWrittenBlockStartsFromZero)
{
    Dram dram;
    const std::uint8_t patch[2] = {0x11, 0x22};
    dram.rawWrite(0x2000, 62, patch, 2);
    Block64 got = dram.readBlock(0x2000);
    EXPECT_EQ(got.b[0], 0);
    EXPECT_EQ(got.b[61], 0);
    EXPECT_EQ(got.b[62], 0x11);
    EXPECT_EQ(got.b[63], 0x22);
}

TEST(DramDeathTest, RawWriteRejectsOutOfBlockRange)
{
    Dram dram;
    const std::uint8_t patch[4] = {1, 2, 3, 4};
    // Starting inside but running past the block end must not wrap.
    EXPECT_DEATH(dram.rawWrite(0x1000, 62, patch, 4), "out of block range");
    // Starting past the end is equally rejected.
    EXPECT_DEATH(dram.rawWrite(0x1000, kBlockBytes, patch, 1),
                 "out of block range");
}

TEST(Dram, TamperXorFlipsExactlyTheRequestedBits)
{
    Dram dram;
    dram.writeBlock(0x3000, patternBlock(0x40));
    dram.tamperXor(0x3000, 5, 0x81);
    Block64 got = dram.readBlock(0x3000);
    EXPECT_EQ(got.b[5], static_cast<std::uint8_t>((0x40 + 5) ^ 0x81));
    // Flip back: the block must round-trip to its original value.
    dram.tamperXor(0x3000, 5, 0x81);
    EXPECT_EQ(dram.readBlock(0x3000), patternBlock(0x40));
}

TEST(Dram, TamperXorOnNeverWrittenBlockMaterializesZeroes)
{
    // Tampering an untouched block operates on its all-zero contents;
    // the result must be visible to subsequent reads.
    Dram dram;
    EXPECT_EQ(dram.footprintBlocks(), 0u);
    dram.tamperXor(0x9000, 0, 0xff);
    EXPECT_EQ(dram.footprintBlocks(), 1u);
    Block64 got = dram.readBlock(0x9000);
    EXPECT_EQ(got.b[0], 0xff);
    for (std::size_t i = 1; i < kBlockBytes; ++i)
        EXPECT_EQ(got.b[i], 0);
}

TEST(DramDeathTest, TamperXorRejectsOffsetBeyondBlock)
{
    // The documented contract: offsets at or past kBlockBytes are a
    // caller bug, never a silent wrap into the neighbouring block.
    Dram dram;
    EXPECT_DEATH(dram.tamperXor(0x1000, kBlockBytes, 0x01),
                 "out of block range");
}

TEST(Dram, SnapshotAndReplayRestoreARange)
{
    Dram dram;
    for (int i = 0; i < 4; ++i)
        dram.writeBlock(0x4000 + i * kBlockBytes,
                        patternBlock(static_cast<std::uint8_t>(i)));
    DramSnapshot snap = dram.snapshot(0x4000, 4);
    ASSERT_EQ(snap.blocks.size(), 4u);
    EXPECT_EQ(snap.base, 0x4000u);

    for (int i = 0; i < 4; ++i)
        dram.writeBlock(0x4000 + i * kBlockBytes, patternBlock(0xaa));
    dram.replay(snap);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(dram.readBlock(0x4000 + i * kBlockBytes),
                  patternBlock(static_cast<std::uint8_t>(i)));
}

TEST(Dram, SnapshotOfNeverWrittenBlocksReadsZero)
{
    Dram dram;
    DramSnapshot snap = dram.snapshot(0x8000, 2);
    EXPECT_EQ(snap.blocks[0], Block64{});
    EXPECT_EQ(snap.blocks[1], Block64{});
    // Replaying it zeroes whatever was written since.
    dram.writeBlock(0x8000, patternBlock(1));
    dram.replay(snap);
    EXPECT_EQ(dram.readBlock(0x8000), Block64{});
}

TEST(Dram, TransientFaultCorruptsExactlyOneRead)
{
    Dram dram;
    dram.writeBlock(0x5000, patternBlock(0));
    dram.injectTransientXor(0x5000, 3, 0x10);
    EXPECT_EQ(dram.pendingTransients(), 1u);

    Block64 first = dram.readBlock(0x5000);
    EXPECT_EQ(first.b[3], static_cast<std::uint8_t>(3 ^ 0x10));
    EXPECT_EQ(dram.pendingTransients(), 0u);

    // The glitch is consumed: stored bits were never modified.
    EXPECT_EQ(dram.readBlock(0x5000), patternBlock(0));
}

TEST(Dram, PeekIgnoresAndPreservesArmedTransients)
{
    // Attacker-side helpers (snoop, snapshot, tamperXor) use the
    // peek path: they must see the stored bits and must not consume a
    // transient armed for the victim's next fetch.
    Dram dram;
    dram.writeBlock(0x6000, patternBlock(7));
    dram.injectTransientXor(0x6000, 0, 0xff);

    EXPECT_EQ(dram.peekBlock(0x6000), patternBlock(7));
    EXPECT_EQ(dram.snoop(0x6000), patternBlock(7));
    EXPECT_EQ(dram.snapshot(0x6000, 1).blocks[0], patternBlock(7));
    EXPECT_EQ(dram.pendingTransients(), 1u)
        << "peeking must not consume the armed fault";

    Block64 read = dram.readBlock(0x6000);
    EXPECT_NE(read, patternBlock(7));
    EXPECT_EQ(dram.pendingTransients(), 0u);
}

TEST(Dram, TransientFaultsOnDistinctBlocksAreIndependent)
{
    Dram dram;
    dram.injectTransientXor(0x7000, 0, 0x01);
    dram.injectTransientXor(0x7000 + kBlockBytes, 0, 0x02);
    EXPECT_EQ(dram.pendingTransients(), 2u);
    (void)dram.readBlock(0x7000);
    EXPECT_EQ(dram.pendingTransients(), 1u);
    Block64 second = dram.readBlock(0x7000 + kBlockBytes);
    EXPECT_EQ(second.b[0], 0x02);
    EXPECT_EQ(dram.pendingTransients(), 0u);
}

} // namespace
} // namespace secmem
