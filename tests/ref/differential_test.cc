/**
 * @file
 * Fuzz-style differential tests of the table-driven production crypto
 * kernels against the naive reference kernels in ref/naive.hh.
 *
 * The production side (crypto/aes.hh, crypto/gf128.hh, crypto/ghash.hh)
 * computes through precomputed tables: AES T-tables with a cached key
 * schedule and the Shoup 8-bit per-subkey GHASH table. The reference
 * side is the original straight-from-the-spec code: byte-wise FIPS-197
 * AES and the bit-serial SP 800-38D multiply. The two share no tables,
 * no key-schedule layout and no word-level tricks, so agreement on tens
 * of thousands of random inputs pins the table generation itself — a
 * single wrong T-table or remainder-table entry shows up here long
 * before it would show up in a handful of fixed vectors.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/controller.hh"
#include "crypto/aes.hh"
#include "crypto/backend/backend.hh"
#include "crypto/gf128.hh"
#include "crypto/ghash.hh"
#include "ref/naive.hh"
#include "ref/shadow.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

// The whole point of the split: the production cipher and the oracle's
// cipher must be different types with different code behind them.
static_assert(!std::is_same_v<Aes128, ref::AesNaive>,
              "production and reference AES must be distinct kernels");

Gf128
randomGf(Rng &rng)
{
    return Gf128{rng.next(), rng.next()};
}

Block16
randomChunk(Rng &rng)
{
    Block16 b;
    for (auto &byte : b.b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

// ---- GF(2^128): table-driven vs bit-serial -----------------------------

TEST(DifferentialGf128, FastMatchesNaiveOnRandomInputs)
{
    Rng rng(61);
    for (int round = 0; round < 10000; ++round) {
        Gf128 x = randomGf(rng);
        Gf128 y = randomGf(rng);
        Gf128 fast = gf128Mul(x, y);
        Gf128 naive = ref::gf128MulNaive(x, y);
        ASSERT_EQ(fast.hi, naive.hi) << "round " << round;
        ASSERT_EQ(fast.lo, naive.lo) << "round " << round;
    }
}

TEST(DifferentialGf128, TableReuseMatchesNaive)
{
    // One table, many multiplicands — the production usage pattern
    // (the subkey H is fixed for a run, the data varies).
    Rng rng(62);
    Gf128 h = randomGf(rng);
    Gf128Table table(h);
    for (int round = 0; round < 10000; ++round) {
        Gf128 x = randomGf(rng);
        Gf128 fast = table.mul(x);
        Gf128 naive = ref::gf128MulNaive(x, h);
        ASSERT_EQ(fast.hi, naive.hi) << "round " << round;
        ASSERT_EQ(fast.lo, naive.lo) << "round " << round;
    }
}

TEST(DifferentialGf128, EdgeOperandsMatchNaive)
{
    // Sparse / degenerate operands exercise every remainder-table slot
    // reachable from a single set bit.
    std::vector<Gf128> edges = {Gf128{0, 0}, Gf128{0, 1},
                                Gf128{1ull << 63, 0}, Gf128{0, 1ull << 63},
                                Gf128{~0ull, ~0ull}, Gf128{~0ull, 0},
                                Gf128{0, ~0ull}};
    for (int bit = 0; bit < 128; ++bit) {
        Gf128 one_hot{bit < 64 ? 1ull << (63 - bit) : 0,
                      bit >= 64 ? 1ull << (127 - bit) : 0};
        edges.push_back(one_hot);
    }
    for (const Gf128 &x : edges) {
        for (const Gf128 &y : edges) {
            Gf128 fast = gf128Mul(x, y);
            Gf128 naive = ref::gf128MulNaive(x, y);
            ASSERT_EQ(fast.hi, naive.hi);
            ASSERT_EQ(fast.lo, naive.lo);
        }
    }
}

// ---- GHASH: streaming class vs hand-rolled naive fold ------------------

TEST(DifferentialGhash, StreamingMatchesNaiveFold)
{
    Rng rng(63);
    for (int round = 0; round < 500; ++round) {
        Block16 h = randomChunk(rng);
        Gf128 hg = Gf128::fromBlock(h);
        Ghash gh(h);
        Gf128 y{0, 0};
        unsigned chunks = 1 + static_cast<unsigned>(rng.below(16));
        for (unsigned c = 0; c < chunks; ++c) {
            Block16 chunk = randomChunk(rng);
            gh.update(chunk);
            y = ref::gf128MulNaive(y ^ Gf128::fromBlock(chunk), hg);
        }
        std::uint64_t aad_bits = rng.next() & 0xffff;
        std::uint64_t ct_bits = rng.next() & 0xffff;
        gh.updateLengths(aad_bits, ct_bits);
        Block16 lenblk{};
        for (int i = 0; i < 8; ++i) {
            lenblk.b[7 - i] = static_cast<std::uint8_t>(aad_bits >> (8 * i));
            lenblk.b[15 - i] = static_cast<std::uint8_t>(ct_bits >> (8 * i));
        }
        y = ref::gf128MulNaive(y ^ Gf128::fromBlock(lenblk), hg);
        ASSERT_EQ(gh.digest(), y.toBlock()) << "round " << round;
    }
}

// ---- AES-128: T-tables vs byte-wise FIPS-197 ---------------------------

TEST(DifferentialAes, FastMatchesNaiveAcrossKeysAndBlocks)
{
    Rng rng(64);
    Aes128 fast;
    ref::AesNaive naive;
    Block16 key = randomChunk(rng);
    fast.setKey(key.b.data());
    naive.setKey(key.b.data());
    for (int round = 0; round < 10000; ++round) {
        if (round % 64 == 0) {
            // New key for both sides; the production side's cached
            // schedule must be rebuilt, not reused.
            key = randomChunk(rng);
            fast.setKey(key.b.data());
            naive.setKey(key.b.data());
        }
        Block16 pt = randomChunk(rng);
        Block16 ct = fast.encrypt(pt);
        ASSERT_EQ(ct, naive.encrypt(pt)) << "round " << round;
        ASSERT_EQ(fast.decrypt(ct), pt) << "round " << round;
        ASSERT_EQ(naive.decrypt(ct), pt) << "round " << round;
    }
}

TEST(DifferentialAes, SameKeySetKeyIsIdempotent)
{
    Rng rng(65);
    Block16 key = randomChunk(rng);
    Block16 pt = randomChunk(rng);

    Aes128 aes(key);
    Block16 ct = aes.encrypt(pt);
    // Re-setting the identical key must leave the schedule usable and
    // produce identical output (the cache hit must not corrupt state).
    for (int i = 0; i < 4; ++i) {
        aes.setKey(key.b.data());
        EXPECT_EQ(aes.encrypt(pt), ct);
        EXPECT_EQ(aes.decrypt(ct), pt);
    }
}

TEST(DifferentialAes, KeyChangeInvalidatesCachedSchedules)
{
    Rng rng(66);
    for (int round = 0; round < 200; ++round) {
        Block16 k1 = randomChunk(rng);
        Block16 k2 = randomChunk(rng);
        if (k1 == k2)
            continue;
        Block16 pt = randomChunk(rng);

        Aes128 aes(k1);
        // Decrypt first so the lazy decryption schedule for k1 exists
        // before the key changes.
        Block16 ct1 = aes.encrypt(pt);
        EXPECT_EQ(aes.decrypt(ct1), pt);

        aes.setKey(k2.b.data());
        Aes128 fresh(k2);
        Block16 ct2 = aes.encrypt(pt);
        EXPECT_EQ(ct2, fresh.encrypt(pt)) << "stale encryption schedule";
        EXPECT_EQ(aes.decrypt(ct2), pt) << "stale decryption schedule";
        EXPECT_NE(ct2, ct1) << "key change had no effect";

        // And decrypt-before-encrypt on a fresh object: the decryption
        // schedule must be derivable without an encrypt call first.
        Aes128 dec_first(k2);
        EXPECT_EQ(dec_first.decrypt(ct2), pt);
    }
}

// ---- every registered backend vs the naive oracle ----------------------

/**
 * The suites above validate whichever backend is active for the
 * process (normally the auto-selected best). These run the same
 * fast-vs-naive fuzz once per compiled-in, CPU-supported backend via
 * the pinned-backend constructors, so a broken backend cannot hide
 * behind the auto-selection picking a different one.
 */
class BackendDifferential
    : public ::testing::TestWithParam<const CryptoBackend *>
{};

TEST_P(BackendDifferential, AesMatchesNaiveAcrossKeysAndBlocks)
{
    const CryptoBackend &be = *GetParam();
    Rng rng(68);
    Aes128 fast(be);
    ref::AesNaive naive;
    Block16 key = randomChunk(rng);
    fast.setKey(key.b.data());
    naive.setKey(key.b.data());
    for (int round = 0; round < 10000; ++round) {
        if (round % 64 == 0) {
            key = randomChunk(rng);
            fast.setKey(key.b.data());
            naive.setKey(key.b.data());
        }
        Block16 pt = randomChunk(rng);
        Block16 ct = fast.encrypt(pt);
        ASSERT_EQ(ct, naive.encrypt(pt)) << "round " << round;
        ASSERT_EQ(fast.decrypt(ct), pt) << "round " << round;
    }
}

TEST_P(BackendDifferential, GhashMulMatchesNaive)
{
    const CryptoBackend &be = *GetParam();
    Rng rng(69);
    Gf128 h = randomGf(rng);
    Gf128Table table(be, h);
    for (int round = 0; round < 10000; ++round) {
        Gf128 x = randomGf(rng);
        Gf128 fast = table.mul(x);
        Gf128 naive = ref::gf128MulNaive(x, h);
        ASSERT_EQ(fast.hi, naive.hi) << "round " << round;
        ASSERT_EQ(fast.lo, naive.lo) << "round " << round;
    }
}

TEST_P(BackendDifferential, GhashEdgeOperandsMatchNaive)
{
    const CryptoBackend &be = *GetParam();
    std::vector<Gf128> edges = {Gf128{0, 0}, Gf128{0, 1},
                                Gf128{1ull << 63, 0}, Gf128{0, 1ull << 63},
                                Gf128{~0ull, ~0ull}};
    for (int bit = 0; bit < 128; ++bit)
        edges.push_back(Gf128{bit < 64 ? 1ull << (63 - bit) : 0,
                              bit >= 64 ? 1ull << (127 - bit) : 0});
    for (const Gf128 &h : edges) {
        Gf128Table table(be, h);
        for (const Gf128 &x : edges) {
            Gf128 fast = table.mul(x);
            Gf128 naive = ref::gf128MulNaive(x, h);
            ASSERT_EQ(fast.hi, naive.hi);
            ASSERT_EQ(fast.lo, naive.lo);
        }
    }
}

std::vector<const CryptoBackend *>
availableBackends()
{
    std::vector<const CryptoBackend *> v;
    for (const CryptoBackend *b : cryptoBackends())
        if (b->available())
            v.push_back(b);
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDifferential, ::testing::ValuesIn(availableBackends()),
    [](const ::testing::TestParamInfo<const CryptoBackend *> &info) {
        return std::string(info.param->name());
    });

// ---- end-to-end: the oracle (naive path) checks the table path ---------

TEST(DifferentialShadow, OracleOnNaivePathValidatesTableDrivenController)
{
    // A ShadowModel recomputes every ciphertext and tag through
    // ref::AesNaive / gf128MulNaive (enforced by the static_assert in
    // shadow.cc); the controller computes them through T-tables and the
    // Shoup table. A clean run is therefore a whole-system differential
    // test of the table generation.
    SecureMemConfig cfg = SecureMemConfig::splitGcm();
    cfg.memoryBytes = 16 << 20;
    cfg.verifyModel = true;
    SecureMemoryController ctrl(cfg);
    ref::ShadowModel *shadow = ctrl.shadowModel();
    ASSERT_NE(shadow, nullptr);

    Rng rng(67);
    Tick t = 0;
    for (int op = 0; op < 300; ++op) {
        Addr a = rng.below(1024) * kBlockBytes;
        if (rng.below(2)) {
            Block64 data;
            for (auto &byte : data.b)
                byte = static_cast<std::uint8_t>(rng.next());
            t = ctrl.writeBlock(a, data, t + 1);
        } else {
            Block64 out;
            t = ctrl.readBlock(a, t + 1, &out).authDone;
        }
    }
    EXPECT_GT(shadow->checks(), 0u);
    EXPECT_TRUE(shadow->divergences().empty())
        << ref::formatDivergence(shadow->divergences().front());
}

} // namespace
} // namespace secmem
