/**
 * @file
 * Differential tests: the untimed reference model (src/ref) against the
 * production crypto/codec path, over randomized inputs.
 *
 * The two sides are deliberately independent implementations (see
 * ref/model.hh), so agreement here pins the split-counter bitfield
 * layout, the seed packing, the counter-mode pad, and the GCM / SHA-1
 * block-tag constructions — any packing or bit-order bug would have to
 * appear identically in both to slip through.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "crypto/seed.hh"
#include "enc/counters.hh"
#include "ref/model.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

Block64
randomBlock(Rng &rng)
{
    Block64 b;
    for (auto &byte : b.b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

TEST(RefSplitCodec, AgreesWithProductionOnRandomBlocks)
{
    Rng rng(21);
    for (int round = 0; round < 50; ++round) {
        Block64 raw = randomBlock(rng);
        SplitCounterBlock prod(raw);
        EXPECT_EQ(ref::splitMajor(raw), prod.major());
        for (unsigned i = 0; i < kBlocksPerPage; ++i) {
            EXPECT_EQ(ref::splitMinor(raw, i), prod.minor(i));
            EXPECT_EQ(ref::splitCounterFor(raw, i), prod.counterFor(i));
        }
    }
}

TEST(RefSplitCodec, WritesAgreeWithProduction)
{
    Rng rng(22);
    Block64 raw{};
    SplitCounterBlock prod;
    for (int op = 0; op < 2000; ++op) {
        if (rng.below(8) == 0) {
            std::uint64_t major = rng.next();
            ref::splitSetMajor(raw, major);
            prod.setMajor(major);
        } else {
            unsigned i = static_cast<unsigned>(rng.below(kBlocksPerPage));
            unsigned v = static_cast<unsigned>(rng.below(128));
            ref::splitSetMinor(raw, i, v);
            prod.setMinor(i, v);
        }
        ASSERT_EQ(raw, prod.raw()) << "after op " << op;
    }
}

TEST(RefMonoCodec, AgreesWithProductionAtEveryWidth)
{
    for (unsigned w : {8u, 16u, 32u, 64u}) {
        Rng rng(23 + w);
        Block64 raw = randomBlock(rng);
        MonoCounterBlock prod(w, raw);
        for (unsigned i = 0; i < prod.countersPerBlock(); ++i)
            EXPECT_EQ(ref::monoCounter(raw, w, i), prod.counter(i))
                << "width " << w << " slot " << i;

        // Write path: random values into random slots, byte-compare.
        std::uint64_t mask = w == 64 ? ~0ull : ((1ull << w) - 1);
        for (int op = 0; op < 500; ++op) {
            unsigned i =
                static_cast<unsigned>(rng.below(prod.countersPerBlock()));
            std::uint64_t v = rng.next() & mask;
            ref::monoSetCounter(raw, w, i, v);
            prod.setCounter(i, v);
            ASSERT_EQ(raw, prod.raw()) << "width " << w << " op " << op;
        }
    }
}

TEST(RefSeed, AgreesWithMakeSeed)
{
    Rng rng(24);
    for (int round = 0; round < 200; ++round) {
        Addr addr = (rng.next() & 0xffffffffffffull) * kBlockBytes;
        std::uint64_t ctr = rng.next();
        unsigned chunk = static_cast<unsigned>(rng.below(4));
        std::uint8_t iv = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(ref::seedFor(addr, ctr, chunk, false, iv),
                  makeSeed(addr, ctr, chunk, SeedDomain::Encrypt, iv));
        EXPECT_EQ(ref::seedFor(addr, ctr, chunk, true, iv),
                  makeSeed(addr, ctr, chunk, SeedDomain::Auth, iv));
    }
}

TEST(RefPad, AgreesWithMakePad)
{
    SecureMemConfig cfg = SecureMemConfig::splitGcm();
    Aes128 aes(cfg.dataKey);
    ref::AesNaive naes(cfg.dataKey);
    Rng rng(25);
    for (int round = 0; round < 50; ++round) {
        Addr addr = rng.below(1 << 20) * kBlockBytes;
        std::uint64_t ctr = rng.next();
        EXPECT_EQ(ref::ctrPad(naes, addr, ctr, cfg.eivByte),
                  makePad(aes, addr, ctr, cfg.eivByte));
    }
}

TEST(RefEncrypt, CtrModeAgreesWithCtrCrypt)
{
    SecureMemConfig cfg = SecureMemConfig::split();
    Aes128 aes(cfg.dataKey);
    ref::AesNaive naes(cfg.dataKey);
    Rng rng(26);
    for (int round = 0; round < 50; ++round) {
        Addr addr = rng.below(1 << 20) * kBlockBytes;
        std::uint64_t ctr = rng.next();
        std::uint8_t epoch = static_cast<std::uint8_t>(rng.below(4));
        Block64 pt = randomBlock(rng);
        Block64 ct = ref::encryptBlock(cfg, naes, addr, pt, ctr, epoch);
        EXPECT_EQ(ct, ctrCrypt(aes, pt, addr, ctr,
                               static_cast<std::uint8_t>(cfg.eivByte ^
                                                         epoch)));
        // Counter mode is an involution.
        EXPECT_EQ(ref::encryptBlock(cfg, naes, addr, ct, ctr, epoch), pt);
    }
}

TEST(RefGcmTag, AgreesWithGcmBlockTag)
{
    SecureMemConfig cfg = SecureMemConfig::splitGcm();
    Aes128 aes(cfg.dataKey);
    ref::AesNaive naes(cfg.dataKey);
    Block16 subkey = aes.encrypt(Block16{});
    Rng rng(27);
    for (int round = 0; round < 50; ++round) {
        Addr addr = rng.below(1 << 20) * kBlockBytes;
        std::uint64_t ctr = rng.next();
        std::uint8_t iv = static_cast<std::uint8_t>(rng.next());
        Block64 ct = randomBlock(rng);
        EXPECT_EQ(ref::gcmTag(naes, subkey, addr, ct, ctr, iv),
                  gcmBlockTag(aes, subkey, ct, addr, ctr, iv));
    }
}

TEST(RefSha1Tag, AgreesWithSha1BlockTag)
{
    SecureMemConfig cfg = SecureMemConfig::splitSha();
    Rng rng(28);
    for (int round = 0; round < 50; ++round) {
        Addr addr = rng.below(1 << 20) * kBlockBytes;
        std::uint64_t ctr = rng.next();
        std::uint8_t epoch = static_cast<std::uint8_t>(rng.next());
        Block64 ct = randomBlock(rng);
        EXPECT_EQ(ref::sha1Tag(cfg.macKey, addr, ct, ctr, epoch),
                  sha1BlockTag(cfg.macKey, ct, addr, ctr, epoch));
    }
}

TEST(RefNodeTag, ClipsToConfiguredMacBits)
{
    for (unsigned mac_bits : {32u, 64u, 128u}) {
        SecureMemConfig cfg = SecureMemConfig::splitGcm();
        cfg.macBits = mac_bits;
        ref::AesNaive naes(cfg.dataKey);
        Block16 subkey = naes.encrypt(Block16{});
        Rng rng(29);
        Block64 content = randomBlock(rng);
        Block16 tag =
            ref::nodeTag(cfg, naes, subkey, 0x1000, content, 7, 0);
        for (unsigned byte = mac_bits / 8; byte < kChunkBytes; ++byte)
            EXPECT_EQ(tag.b[byte], 0u) << "macBits " << mac_bits;
        EXPECT_EQ(tag, clipTag(ref::gcmTag(naes, subkey, 0x1000, content, 7,
                                           cfg.aivByte),
                               mac_bits));
    }
}

} // namespace
} // namespace secmem
