/**
 * @file
 * Randomized property tests: seeded workloads over the counter-block
 * codecs and round-trip laws of the protected-address-space layout.
 *
 * These pin the invariants the reference model (src/ref) relies on when
 * it reuses the production AddressMap: if region arithmetic or tag
 * placement drifted, the shadow oracle's checks would be anchored to
 * the wrong blocks and silently vacuous.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "enc/counters.hh"
#include "ref/model.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

SecureMemConfig
shrink(SecureMemConfig cfg)
{
    cfg.memoryBytes = 16 << 20;
    return cfg;
}

// ---- layout round-trips ------------------------------------------------

class LayoutPropertyTest : public ::testing::TestWithParam<SecureMemConfig>
{
};

TEST_P(LayoutPropertyTest, CtrBlockMappingRoundTrips)
{
    const SecureMemConfig cfg = GetParam();
    if (!cfg.usesCounterCache())
        GTEST_SKIP() << "no counter blocks in this scheme";
    AddressMap map(cfg);
    Rng rng(31);
    for (int round = 0; round < 500; ++round) {
        Addr a = rng.below(map.numDataBlocks()) * kBlockBytes;
        Addr ctr = map.ctrBlockAddrFor(a);
        unsigned slot = map.ctrSlotFor(a);
        EXPECT_TRUE(map.isCtr(ctr));
        EXPECT_LT(slot, cfg.blocksPerCtrBlock());
        // firstDataBlockOf inverts the mapping: the covered run starts
        // there and slot indexes into it.
        EXPECT_EQ(map.firstDataBlockOf(ctr) +
                      static_cast<Addr>(slot) * kBlockBytes,
                  a);
        // All blocks of the covered run share the counter block.
        Addr first = map.firstDataBlockOf(ctr);
        EXPECT_EQ(map.ctrBlockAddrFor(first), ctr);
        EXPECT_EQ(map.ctrSlotFor(first), 0u);
    }
}

TEST_P(LayoutPropertyTest, MacLevelRoundTrips)
{
    AddressMap map(GetParam());
    if (map.numLevels() == 0)
        GTEST_SKIP() << "no authentication tree";
    Rng rng(32);
    for (unsigned level = 1; level <= map.numLevels(); ++level) {
        for (int round = 0; round < 100; ++round) {
            std::uint64_t idx = rng.below(map.macBlocksAtLevel(level));
            Addr mac = map.macBlockAddr(level, idx);
            if (!map.isMac(mac))
                continue; // pinned top may live outside the MAC region
            auto [l2, i2] = map.macLevelOf(mac);
            EXPECT_EQ(l2, level);
            EXPECT_EQ(i2, idx);
        }
    }
}

TEST_P(LayoutPropertyTest, LeafTagsLandOnLevelOne)
{
    const SecureMemConfig cfg = GetParam();
    AddressMap map(cfg);
    if (map.numLevels() == 0)
        GTEST_SKIP() << "no authentication tree";
    Rng rng(33);
    for (int round = 0; round < 200; ++round) {
        Addr a = rng.below(map.numDataBlocks()) * kBlockBytes;
        TagLocation loc = map.tagOfLeaf(map.leafIndexOfData(a));
        EXPECT_EQ(loc.level, 1u);
        EXPECT_EQ(loc.blockAddr, map.macBlockAddr(1, loc.blockIdx));
        EXPECT_EQ(loc.pinned, map.isTopLevel(1));
        // The slot must fit in the block, after the embedded derivative
        // counter when GCM reserves the leading eight bytes.
        EXPECT_LE(map.macSlotOffset(loc.slot) + map.macSlotBytes(),
                  kBlockBytes);
    }
}

TEST_P(LayoutPropertyTest, AncestorChainReachesPinnedTop)
{
    AddressMap map(GetParam());
    if (map.numLevels() == 0)
        GTEST_SKIP() << "no authentication tree";
    Rng rng(34);
    for (int round = 0; round < 100; ++round) {
        Addr a = rng.below(map.numDataBlocks()) * kBlockBytes;
        TagLocation loc = map.tagOfLeaf(map.leafIndexOfData(a));
        unsigned steps = 0;
        while (!loc.pinned) {
            // Each step must strictly ascend one level.
            TagLocation up = map.tagOfMacBlock(loc.level, loc.blockIdx);
            EXPECT_EQ(up.level, loc.level + 1);
            loc = up;
            ASSERT_LT(++steps, 64u) << "unbounded ancestor chain";
        }
        EXPECT_EQ(loc.level, map.numLevels());
    }
}

TEST_P(LayoutPropertyTest, CtrLeafAndDerivMappingsAreConsistent)
{
    const SecureMemConfig cfg = GetParam();
    AddressMap map(cfg);
    if (map.numLevels() == 0 || !cfg.usesCounterCache())
        GTEST_SKIP() << "no counter-block leaves";
    Rng rng(35);
    for (int round = 0; round < 200; ++round) {
        Addr a = rng.below(map.numDataBlocks()) * kBlockBytes;
        Addr ctr = map.ctrBlockAddrFor(a);
        // Counter blocks are leaves after the data blocks.
        std::uint64_t leaf = map.leafIndexOfCtrBlock(ctr);
        EXPECT_GE(leaf, map.numDataBlocks());
        TagLocation loc = map.tagOfLeaf(leaf);
        EXPECT_EQ(loc.level, 1u);
        if (cfg.auth == AuthKind::Gcm) {
            std::uint64_t didx = map.derivIdxOfCtrBlock(ctr);
            Addr dblk = map.derivCtrBlockAddr(didx);
            EXPECT_TRUE(map.isDerivCtr(dblk));
            EXPECT_EQ(map.derivSlot(didx), didx % 8);
        }
    }
}

TEST_P(LayoutPropertyTest, RegionsPartitionTheSpace)
{
    AddressMap map(GetParam());
    Rng rng(36);
    for (int round = 0; round < 500; ++round) {
        Addr a = rng.below(map.totalBlocks()) * kBlockBytes;
        int regions = int(map.isData(a)) + int(map.isCtr(a)) +
                      int(map.isMac(a)) + int(map.isDerivCtr(a));
        EXPECT_EQ(regions, 1) << "addr " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LayoutPropertyTest,
    ::testing::Values(shrink(SecureMemConfig::split()),
                      shrink(SecureMemConfig::splitGcm()),
                      shrink(SecureMemConfig::monoGcm()),
                      shrink(SecureMemConfig::splitSha()),
                      shrink(SecureMemConfig::monoSha()),
                      shrink(SecureMemConfig::xomSha())));

// ---- seeded counter-block workloads ------------------------------------

TEST(CounterWorkload, SplitBlockTracksShadowArrays)
{
    // A seeded write stream over one split counter block, mirrored in
    // plain shadow arrays; the production codec and the reference codec
    // must both track it. Models the per-page flow: minor increments
    // with page re-encryption (major++, minors cleared) on overflow.
    Rng rng(41);
    SplitCounterBlock prod;
    Block64 refRaw{};
    std::uint64_t shadowMajor = 0;
    std::vector<unsigned> shadowMinor(kBlocksPerPage, 0);

    for (int op = 0; op < 20000; ++op) {
        unsigned i = static_cast<unsigned>(rng.below(kBlocksPerPage));
        if (shadowMinor[i] == SplitCounterBlock::maxMinor()) {
            ++shadowMajor;
            std::fill(shadowMinor.begin(), shadowMinor.end(), 0u);
            prod.setMajor(shadowMajor);
            prod.clearMinors();
            ref::splitSetMajor(refRaw, shadowMajor);
            for (unsigned k = 0; k < kBlocksPerPage; ++k)
                ref::splitSetMinor(refRaw, k, 0);
        }
        ++shadowMinor[i];
        prod.setMinor(i, shadowMinor[i]);
        ref::splitSetMinor(refRaw, i, shadowMinor[i]);

        unsigned probe = static_cast<unsigned>(rng.below(kBlocksPerPage));
        std::uint64_t want =
            (shadowMajor << kMinorBits) | shadowMinor[probe];
        ASSERT_EQ(prod.counterFor(probe), want) << "op " << op;
        ASSERT_EQ(ref::splitCounterFor(refRaw, probe), want) << "op " << op;
        ASSERT_EQ(prod.raw(), refRaw) << "op " << op;
    }
}

TEST(CounterWorkload, MonoBlockTracksShadowArrays)
{
    for (unsigned w : {8u, 16u, 32u, 64u}) {
        Rng rng(42 + w);
        MonoCounterBlock prod(w);
        Block64 refRaw{};
        std::vector<std::uint64_t> shadow(prod.countersPerBlock(), 0);
        std::uint64_t mask = w == 64 ? ~0ull : ((1ull << w) - 1);

        for (int op = 0; op < 20000; ++op) {
            unsigned i =
                static_cast<unsigned>(rng.below(prod.countersPerBlock()));
            bool expect_wrap = shadow[i] == mask;
            shadow[i] = (shadow[i] + 1) & mask;
            ASSERT_EQ(prod.increment(i), expect_wrap)
                << "width " << w << " op " << op;
            ref::monoSetCounter(refRaw, w, i, shadow[i]);

            unsigned probe =
                static_cast<unsigned>(rng.below(prod.countersPerBlock()));
            ASSERT_EQ(prod.counter(probe), shadow[probe])
                << "width " << w << " op " << op;
            ASSERT_EQ(ref::monoCounter(refRaw, w, probe), shadow[probe])
                << "width " << w << " op " << op;
        }
        ASSERT_EQ(prod.raw(), refRaw) << "width " << w;
    }
}

} // namespace
} // namespace secmem
