/**
 * @file
 * Differential-oracle tests: the ShadowModel cross-checking a live
 * SecureMemoryController, scheme by scheme.
 *
 * Positive direction: random workloads over every scheme must shadow
 * with zero divergences (the controller and the independent reference
 * model agree on every counter, ciphertext, tag and returned byte).
 * Negative direction: a tampered DRAM block must produce a recorded
 * divergence, proving the oracle actually looks at the bytes.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/controller.hh"
#include "harness/runner.hh"
#include "ref/shadow.hh"
#include "sim/rng.hh"

namespace secmem
{
namespace
{

SecureMemConfig
verified(SecureMemConfig cfg)
{
    cfg.memoryBytes = 16 << 20;
    cfg.verifyModel = true;
    return cfg;
}

Block64
randomBlock(Rng &rng)
{
    Block64 b;
    for (auto &byte : b.b)
        byte = static_cast<std::uint8_t>(rng.next());
    return b;
}

class ShadowSchemeTest : public ::testing::TestWithParam<SecureMemConfig>
{
};

TEST_P(ShadowSchemeTest, RandomWorkloadShadowsCleanly)
{
    SecureMemoryController ctrl(GetParam());
    ref::ShadowModel *shadow = ctrl.shadowModel();
    ASSERT_NE(shadow, nullptr) << "verifyModel must attach the oracle";

    Rng rng(51);
    Tick t = 0;
    for (int op = 0; op < 400; ++op) {
        // A 64-block window concentrates traffic so split pages see
        // deep minor-counter histories, plus a wider stream for
        // coverage of many counter blocks and tree paths.
        Addr a = (op % 3 == 0 ? rng.below(64) : rng.below(4096)) *
                 kBlockBytes;
        if (rng.below(2)) {
            t = ctrl.writeBlock(a, randomBlock(rng), t + 1);
        } else {
            Block64 out;
            AccessTiming at = ctrl.readBlock(a, t + 1, &out);
            t = at.authDone;
        }
    }

    EXPECT_GT(shadow->events(), 0u);
    EXPECT_GT(shadow->checks(), 0u);
    EXPECT_TRUE(shadow->divergences().empty())
        << ref::formatDivergence(shadow->divergences().front());
    EXPECT_EQ(ctrl.authFailures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ShadowSchemeTest,
    ::testing::Values(verified(SecureMemConfig::baseline()),
                      verified(SecureMemConfig::direct()),
                      verified(SecureMemConfig::mono(8)),
                      verified(SecureMemConfig::mono(64)),
                      verified(SecureMemConfig::split()),
                      verified(SecureMemConfig::pred(1)),
                      verified(SecureMemConfig::gcmAuthOnly()),
                      verified(SecureMemConfig::splitGcm()),
                      verified(SecureMemConfig::monoGcm()),
                      verified(SecureMemConfig::splitSha()),
                      verified(SecureMemConfig::monoSha()),
                      verified(SecureMemConfig::xomSha())));

TEST(ShadowModel, AbsentUnlessConfigured)
{
    SecureMemConfig cfg = SecureMemConfig::split();
    cfg.memoryBytes = 16 << 20;
    SecureMemoryController ctrl(cfg);
    EXPECT_EQ(ctrl.shadowModel(), nullptr);
}

TEST(ShadowModel, MinorOverflowTriggersExactlyOnePageReenc)
{
    // 127 writes fill the 7-bit minor counter; the 128th overflows it
    // and must re-encrypt the page exactly once, after which the
    // counter reads (major=1 << 7) | minor=1.
    SecureMemoryController ctrl(verified(SecureMemConfig::split()));
    ref::ShadowModel *shadow = ctrl.shadowModel();
    Rng rng(52);
    const Addr addr = 3 * kBlockBytes;
    Tick t = 0;
    for (int i = 0; i < 128; ++i) {
        EXPECT_EQ(ctrl.pageReencCount(), 0u) << "before write " << i + 1;
        t = ctrl.writeBlock(addr, randomBlock(rng), t + 1);
    }
    EXPECT_EQ(ctrl.pageReencCount(), 1u);
    EXPECT_EQ(ctrl.stats().counter("page_reencs").value(), 1u);
    EXPECT_EQ(ctrl.counterOf(addr), (1ull << kMinorBits) | 1u);
    EXPECT_TRUE(shadow->divergences().empty())
        << ref::formatDivergence(shadow->divergences().front());
}

TEST(ShadowModel, MonoWrapTriggersExactlyOneFreeze)
{
    // An 8-bit monolithic counter wraps after 256 increments, forcing
    // one whole-memory re-encryption "freeze" (epoch bump).
    SecureMemoryController ctrl(verified(SecureMemConfig::mono(8)));
    ref::ShadowModel *shadow = ctrl.shadowModel();
    Rng rng(53);
    const Addr addr = 5 * kBlockBytes;
    Tick t = 0;
    for (int i = 0; i < 256; ++i)
        t = ctrl.writeBlock(addr, randomBlock(rng), t + 1);
    EXPECT_EQ(ctrl.freezeCount(), 1u);
    EXPECT_EQ(ctrl.stats().counter("freezes").value(), 1u);

    // The block stays readable across the epoch change.
    Block64 out;
    AccessTiming at = ctrl.readBlock(addr, t + 1, &out);
    EXPECT_TRUE(at.authOk);
    EXPECT_TRUE(shadow->divergences().empty())
        << ref::formatDivergence(shadow->divergences().front());
}

TEST(ShadowModel, TamperedCiphertextIsReportedAsDivergence)
{
    // Unauthenticated counter mode: a tampered ciphertext decrypts to
    // garbage without tripping any controller check, so only the
    // oracle can notice. With panic disabled it must record (not
    // abort) the divergence.
    SecureMemoryController ctrl(verified(SecureMemConfig::split()));
    ref::ShadowModel *shadow = ctrl.shadowModel();
    shadow->setPanic(false);

    Rng rng(54);
    const Addr addr = 7 * kBlockBytes;
    Tick t = ctrl.writeBlock(addr, randomBlock(rng), 1);
    ctrl.dram().tamperXor(addr, 0, 0xff);

    Block64 out;
    ctrl.readBlock(addr, t + 1, &out);
    ASSERT_FALSE(shadow->divergences().empty());
    const ref::Divergence &d = shadow->divergences().front();
    EXPECT_TRUE(d.kind == "read_data" || d.kind == "dram_ct") << d.kind;
    EXPECT_EQ(d.addr, addr);
    EXPECT_NE(d.expect, d.got);
    // The formatted diff names the kind and both byte strings.
    std::string diff = ref::formatDivergence(d);
    EXPECT_NE(diff.find(d.kind), std::string::npos);
    EXPECT_NE(diff.find(d.expect), std::string::npos);
}

TEST(ShadowModel, FullSystemRunShadowsCleanly)
{
    // End-to-end through the CPU + L2 + controller stack: this is the
    // path where split-counter page re-encryptions hit L2-resident
    // blocks and take the lazy (mark-dirty) route the oracle tracks as
    // stale. Totals are process-wide, so measure the delta.
    ref::ShadowTotals before = ref::shadowTotals();
    SecureMemConfig cfg = SecureMemConfig::splitGcm();
    cfg.verifyModel = true;
    RunOutput out = runWorkload(profileByName("gzip"), cfg, {}, {},
                                RunLengths{2000, 20000});
    ref::ShadowTotals after = ref::shadowTotals();
    EXPECT_GT(out.ipc, 0.0);
    EXPECT_GT(after.events, before.events);
    EXPECT_EQ(after.divergences, before.divergences);
}

} // namespace
} // namespace secmem
