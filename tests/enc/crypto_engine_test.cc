/**
 * @file
 * Pipelined crypto-engine timing model tests: latency, issue-slot
 * calendar backfill and priority classes.
 */

#include <gtest/gtest.h>

#include "enc/crypto_engine.hh"

namespace secmem
{
namespace
{

TEST(CryptoEngine, SingleOpLatency)
{
    CryptoEngine e("t", 80, 16);
    EXPECT_EQ(e.issueInterval(), 5u);
    EXPECT_EQ(e.schedule(0), 80u);
}

TEST(CryptoEngine, BackToBackOpsSpacedByInterval)
{
    CryptoEngine e("t", 80, 16);
    EXPECT_EQ(e.schedule(0), 80u);
    EXPECT_EQ(e.schedule(0), 85u);
    EXPECT_EQ(e.schedule(0), 90u);
}

TEST(CryptoEngine, BurstOfFourPads)
{
    CryptoEngine e("t", 80, 16);
    // Four chunk pads: last issues at +15, completes at +95.
    EXPECT_EQ(e.scheduleBurst(0, 4), 95u);
}

TEST(CryptoEngine, BackfillAroundFutureReservation)
{
    CryptoEngine e("t", 80, 16);
    // An op waiting on a far-future operand must not block ops that
    // are ready now (the fix for the mcf pathology).
    Tick far = e.schedule(10'000);
    EXPECT_EQ(far, 10'080u);
    Tick near = e.schedule(0);
    EXPECT_EQ(near, 80u);
}

TEST(CryptoEngine, SlotCollisionPushesByInterval)
{
    CryptoEngine e("t", 80, 16);
    e.schedule(100);
    EXPECT_EQ(e.schedule(100), 185u);
}

TEST(CryptoEngine, TwoEnginesDoubleIssueRate)
{
    CryptoEngine e("t", 80, 16, 2);
    EXPECT_EQ(e.schedule(0), 80u);
    EXPECT_EQ(e.schedule(0), 80u); // second pipe
    EXPECT_EQ(e.schedule(0), 85u);
    EXPECT_EQ(e.schedule(0), 85u);
}

TEST(CryptoEngine, ShaEngineShape)
{
    CryptoEngine e("sha", 320, 32);
    EXPECT_EQ(e.issueInterval(), 10u);
    EXPECT_EQ(e.schedule(0), 320u);
    EXPECT_EQ(e.schedule(0), 330u);
}

TEST(CryptoEngine, BackgroundSerializesAgainstItself)
{
    CryptoEngine e("t", 80, 16);
    Tick a = e.scheduleBackground(0);
    Tick b = e.scheduleBackground(0);
    EXPECT_EQ(a, 80u);
    EXPECT_EQ(b, 85u);
}

TEST(CryptoEngine, BackgroundDoesNotBlockFutureDemand)
{
    CryptoEngine e("t", 80, 16);
    // Flood with background work...
    for (int i = 0; i < 100; ++i)
        e.scheduleBackground(0);
    // ... demand issued later backfills into a free slot shortly after
    // its ready time rather than behind all 100 background ops.
    Tick d = e.schedule(1000);
    EXPECT_LE(d, 1000u + 80 + e.issueInterval());
}

TEST(CryptoEngine, StatsCountClasses)
{
    CryptoEngine e("t", 80, 16);
    e.schedule(0);
    e.scheduleBackground(0);
    e.scheduleBackground(0);
    EXPECT_EQ(e.stats().counterValue("ops"), 1u);
    EXPECT_EQ(e.stats().counterValue("background_ops"), 2u);
}

TEST(CryptoEngine, ResetRestoresIdle)
{
    CryptoEngine e("t", 80, 16);
    e.scheduleBurst(0, 8);
    e.reset();
    EXPECT_EQ(e.schedule(0), 80u);
}

TEST(CryptoEngine, StallStatsAccumulate)
{
    CryptoEngine e("t", 80, 16);
    e.schedule(0);
    e.schedule(0); // stalls 5 ticks
    EXPECT_EQ(e.stats().counterValue("issue_stall_ticks"), 5u);
}

} // namespace
} // namespace secmem
